GO ?= go

.PHONY: build test vet race bench bench-json verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The concurrency gate: the sharded map service and the core pipelines
# under the race detector (the shard tests drive >= 4 producers).
race:
	$(GO) test -race ./internal/shard/... ./internal/core/...

bench:
	$(GO) test -bench . -benchtime 1x ./...

# Machine-readable perf snapshot: per-pipeline insert ns/op, allocs/op,
# and the serial cache hit rate. BENCHTIME=50ms makes a CI smoke run.
BENCHTIME ?= 1s
bench-json:
	$(GO) run ./cmd/benchjson -benchtime $(BENCHTIME) -o BENCH_core.json

verify: vet race
	$(GO) build ./... && $(GO) test ./...
