GO ?= go

.PHONY: build test vet race bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The concurrency gate: the sharded map service and the core pipelines
# under the race detector (the shard tests drive >= 4 producers).
race:
	$(GO) test -race ./internal/shard/... ./internal/core/...

bench:
	$(GO) test -bench . -benchtime 1x ./...

verify: vet race
	$(GO) build ./... && $(GO) test ./...
