GO ?= go

.PHONY: build test vet lint-imports race bench bench-json smoke-service verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Backend encapsulation gate: the raw octree is an implementation detail
# behind core.Backend/core.Snapshot. Only internal/core and the octree
# package itself may import it in non-test code; everything else goes
# through the backend-neutral surface. Tests anywhere may reach in.
# Same rule for the durable store (WAL + snapshots + spill frames): it
# serves the window and durability policies in internal/core (and the
# stores it evicts from), not general file I/O.
lint-imports:
	@bad=$$(grep -rl '"octocache/internal/octree"' --include='*.go' . \
		| grep -v '_test\.go$$' \
		| grep -v '^\./internal/core/' \
		| grep -v '^\./internal/octree/' || true); \
	if [ -n "$$bad" ]; then \
		echo "internal/octree imported outside internal/core in:"; \
		echo "$$bad"; exit 1; \
	fi
	@bad=$$(grep -rl '"octocache/internal/durable"' --include='*.go' . \
		| grep -v '_test\.go$$' \
		| grep -v '^\./internal/core/' \
		| grep -v '^\./internal/octree/' \
		| grep -v '^\./internal/vdbgrid/' \
		| grep -v '^\./internal/durable/' || true); \
	if [ -n "$$bad" ]; then \
		echo "internal/durable imported outside internal/core and the backends in:"; \
		echo "$$bad"; exit 1; \
	fi
	@bad=$$(grep -rl '"octocache/internal/wire"' --include='*.go' . \
		| grep -v '^\./server/' \
		| grep -v '^\./client/' \
		| grep -v '^\./internal/wire/' || true); \
	if [ -n "$$bad" ]; then \
		echo "internal/wire imported outside server and client in:"; \
		echo "$$bad"; exit 1; \
	fi

# The concurrency gate: the sharded map service and the core pipelines
# under the race detector (the shard tests drive >= 4 producers). nav
# runs twice: missions are deterministic under the virtual clock, so
# repeated identical runs are the flake tripwire — any divergence or
# second-run failure is a real regression, not host load. The third line
# gates compaction: the arena rebuild racing inserts, queries, and Close
# at every layer (octree, engine, sharded map, public API), twice. The
# fourth line gates the grid backend: the brick-grid unit/differential
# suite plus the full backend × mode × shard consistency matrix, whose
# ModeParallel/grid cells drive the async applier against a grid store.
# The next two lines gate the bounded-memory window: the durable store's
# crash/truncation/rewrite suite, then the windowed consistency matrix
# (whole-scene differential, traverse memory bound, sharded Open
# round-trip) with ModeParallel cells racing eviction against the
# async applier. The last line is the durability crash matrix: WAL +
# snapshot recovery cut at batch boundaries and arbitrary byte offsets
# across backend × mode × shards, with background snapshot writers
# racing inserts in the SnapshotEvery cells. The final line gates the
# trace modes: the boundary-vs-DDA differential suite (including the
# parallel marking pass OR-ing into shared bit planes and the fan
# tracer's worker goroutines) plus the map-level trace-mode consistency
# matrix, twice — trace output is deterministic by construction, so any
# second-run divergence is a real race, not noise.
# The final line gates the network layer: the frame codec, the
# multi-tenant server, and the client library at -count=2 — the e2e
# test multiplexes concurrent producers, queriers, and a snapshot
# download per tenant and then demands the downloaded bytes match
# Map.WriteTo bit for bit, so any wire-level race shows up as a
# divergence even when the race detector misses it.
race:
	$(GO) test -race ./internal/shard/... ./internal/core/...
	$(GO) test -race -count=2 ./internal/nav/... ./internal/clock/... ./internal/spsc/...
	$(GO) test -race -count=2 -run Compact ./internal/octree/... ./internal/core/... ./internal/shard/... .
	$(GO) test -race ./internal/vdbgrid/...
	$(GO) test -race -run 'Backend|OpenAcrossBackends|SnapshotAndWalkLeaves' .
	$(GO) test -race ./internal/durable/...
	$(GO) test -race -run 'Window|Recenter' ./internal/core/... .
	$(GO) test -race -run 'Durable|Recover' ./internal/core/... .
	$(GO) test -race -count=2 -run 'Trace|Boundary|Fan' ./internal/raytrace/... ./internal/core/... .
	$(GO) test -race -count=2 ./internal/wire/... ./server/... ./client/...

bench:
	$(GO) test -bench . -benchtime 1x ./...

# Machine-readable perf snapshot: per-pipeline insert ns/op, allocs/op,
# and the serial cache hit rate. BENCHTIME=50ms makes a CI smoke run.
BENCHTIME ?= 1s
bench-json:
	$(GO) run ./cmd/benchjson -benchtime $(BENCHTIME) -o BENCH_core.json

# End-to-end service smoke: loopback server, wire-protocol ingest, and
# a bit-identical diff of the streamed snapshot against an offline
# mapbuilder run of the same dataset.
smoke-service:
	GO="$(GO)" sh scripts/smoke_service.sh

verify: vet lint-imports race
	$(GO) build ./... && $(GO) test ./...
