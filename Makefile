GO ?= go

.PHONY: build test vet race bench bench-json verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The concurrency gate: the sharded map service and the core pipelines
# under the race detector (the shard tests drive >= 4 producers). nav
# runs twice: missions are deterministic under the virtual clock, so
# repeated identical runs are the flake tripwire — any divergence or
# second-run failure is a real regression, not host load. The third line
# gates compaction: the arena rebuild racing inserts, queries, and Close
# at every layer (octree, engine, sharded map, public API), twice.
race:
	$(GO) test -race ./internal/shard/... ./internal/core/...
	$(GO) test -race -count=2 ./internal/nav/... ./internal/clock/... ./internal/spsc/...
	$(GO) test -race -count=2 -run Compact ./internal/octree/... ./internal/core/... ./internal/shard/... .

bench:
	$(GO) test -bench . -benchtime 1x ./...

# Machine-readable perf snapshot: per-pipeline insert ns/op, allocs/op,
# and the serial cache hit rate. BENCHTIME=50ms makes a CI smoke run.
BENCHTIME ?= 1s
bench-json:
	$(GO) run ./cmd/benchjson -benchtime $(BENCHTIME) -o BENCH_core.json

verify: vet race
	$(GO) build ./... && $(GO) test ./...
