package octocache

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// TestBackendMatrixConsistency is the gate on the pluggable-backend
// redesign: every pipeline mode × shard count × backend combination fed
// the same scan stream must answer Occupancy, OccupiedKey, and CastRay
// bit-identically to the unsharded serial octree reference after every
// batch, and serialize to the exact same bytes once closed. The byte
// check is what licenses backends to share .bt files: a grid-backed
// map's snapshot rebuild and an octree's direct write converge on the
// canonical pruned form.
func TestBackendMatrixConsistency(t *testing.T) {
	ref := MustNew(Options{Resolution: 0.1, Mode: ModeSerial, CacheBuckets: 1 << 10})

	type entry struct {
		name string
		m    *Map
	}
	var maps []entry
	for _, backend := range []Backend{BackendOctree, BackendGrid} {
		for _, mode := range []Mode{ModeSerial, ModeParallel, ModeOctoMap} {
			for _, shards := range []int{0, 1, 2, 8} {
				opts := Options{
					Resolution: 0.1, Mode: mode, Shards: shards,
					Backend: backend, CacheBuckets: 1 << 10,
				}
				maps = append(maps, entry{
					name: fmt.Sprintf("%v/mode=%d/shards=%d", backend, mode, shards),
					m:    MustNew(opts),
				})
			}
		}
	}

	origin := V(0, 0, 0.5)
	rng := rand.New(rand.NewSource(17))
	var probes []Vec3
	for batch := 0; batch < 4; batch++ {
		var pts []Vec3
		for j := 0; j < 120; j++ {
			ang := rng.Float64() * 2 * math.Pi
			r := 1 + rng.Float64()*2.5
			pts = append(pts, origin.Add(V(r*math.Cos(ang), r*math.Sin(ang), rng.Float64()-0.5)))
		}
		if err := ref.Insert(origin, pts); err != nil {
			t.Fatal(err)
		}
		for _, e := range maps {
			if err := e.m.Insert(origin, pts); err != nil {
				t.Fatalf("%s: Insert: %v", e.name, err)
			}
		}
		probes = append(probes, pts[:20]...)
		probes = append(probes, origin)
		for _, p := range probes {
			lw, kw := ref.Occupancy(p)
			kref, inMap := ref.CoordToKey(p)
			for _, e := range maps {
				if lg, kg := e.m.Occupancy(p); lg != lw || kg != kw {
					t.Fatalf("batch %d %s: Occupancy(%v) = (%v,%v), ref (%v,%v)",
						batch, e.name, p, lg, kg, lw, kw)
				}
				if inMap && e.m.OccupiedKey(kref) != ref.OccupiedKey(kref) {
					t.Fatalf("batch %d %s: OccupiedKey(%v) disagrees", batch, e.name, kref)
				}
			}
		}
		for _, dir := range []Vec3{V(1, 0.2, 0), V(-0.7, 1, 0.1), V(0, -1, -0.2)} {
			hw, okw := ref.CastRay(origin, dir, 8, true)
			for _, e := range maps {
				if hg, okg := e.m.CastRay(origin, dir, 8, true); okg != okw || hg != hw {
					t.Fatalf("batch %d %s: CastRay(%v) = (%v,%v), ref (%v,%v)",
						batch, e.name, dir, hg, okg, hw, okw)
				}
			}
		}
	}

	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if _, err := ref.WriteTo(&want); err != nil {
		t.Fatal(err)
	}
	for _, e := range maps {
		if e.m.Backend() == BackendGrid {
			if st := e.m.Stats(); st.Backend != BackendGrid {
				t.Errorf("%s: Stats().Backend = %v", e.name, st.Backend)
			}
		}
		if err := e.m.Close(); err != nil {
			t.Fatalf("%s: Close: %v", e.name, err)
		}
		var got bytes.Buffer
		if _, err := e.m.WriteTo(&got); err != nil {
			t.Fatalf("%s: WriteTo: %v", e.name, err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Errorf("%s: serialization differs from serial octree reference", e.name)
		}
	}
}

// TestOpenAcrossBackends: a stream written by one backend loads into a
// map of the other, answers identically, and — untouched — reserializes
// to the source bytes. Sharded targets split the loaded leaves by
// Morton prefix, so they are exercised too.
func TestOpenAcrossBackends(t *testing.T) {
	src := MustNew(Options{Resolution: 0.1, Mode: ModeSerial, Backend: BackendGrid, CacheBuckets: 1 << 10})
	origin := V(0, 0, 0.5)
	var probes []Vec3
	rng := rand.New(rand.NewSource(23))
	for batch := 0; batch < 3; batch++ {
		var pts []Vec3
		for j := 0; j < 150; j++ {
			ang := rng.Float64() * 2 * math.Pi
			r := 1 + rng.Float64()*3
			pts = append(pts, origin.Add(V(r*math.Cos(ang), r*math.Sin(ang), rng.Float64()-0.5)))
		}
		if err := src.Insert(origin, pts); err != nil {
			t.Fatal(err)
		}
		probes = append(probes, pts[:30]...)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	var blob bytes.Buffer
	if _, err := src.WriteTo(&blob); err != nil {
		t.Fatal(err)
	}

	for _, opts := range []Options{
		{Backend: BackendOctree},
		{Backend: BackendGrid},
		{Backend: BackendOctree, Shards: 4},
		{Backend: BackendGrid, Shards: 4},
		{Backend: BackendGrid, Mode: ModeOctoMap},
	} {
		m, err := Open(bytes.NewReader(blob.Bytes()), opts)
		if err != nil {
			t.Fatalf("Open(%+v): %v", opts, err)
		}
		for _, p := range probes {
			lw, kw := src.Occupancy(p)
			if lg, kg := m.Occupancy(p); lg != lw || kg != kw {
				t.Fatalf("Open(%+v): disagrees with source at %v", opts, p)
			}
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		var again bytes.Buffer
		if _, err := m.WriteTo(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again.Bytes(), blob.Bytes()) {
			t.Errorf("Open(%+v): reserialization differs from the grid-written source", opts)
		}
	}
}

// TestSnapshotAndWalkLeaves covers the backend-neutral replacements for
// the removed Tree() escape hatch: on a LIVE map — default cache
// sizing, so most updates are still cache-resident, not yet applied to
// the store — Snapshot and WriteTo must answer and serialize exactly
// like the map queries, and WalkLeaves streams the same content in
// ascending Morton order.
func TestSnapshotAndWalkLeaves(t *testing.T) {
	for _, backend := range []Backend{BackendOctree, BackendGrid} {
		for _, shards := range []int{0, 2} {
			m := MustNew(Options{Resolution: 0.1, Backend: backend, Shards: shards})
			origin := V(0, 0, 1)
			pts := scanRing(origin, 2, 200)
			if err := m.Insert(origin, pts); err != nil {
				t.Fatal(err)
			}
			snap := m.Snapshot()
			for _, p := range append(pts[:50:50], origin, V(1, 0, 1)) {
				lw, kw := m.Occupancy(p)
				if lg, kg := snap.Occupancy(p); lg != lw || kg != kw {
					t.Fatalf("%v/shards=%d: snapshot disagrees with live map at %v: (%v,%v) vs (%v,%v)",
						backend, shards, p, lg, kg, lw, kw)
				}
			}
			if snap.NumLeaves() == 0 {
				t.Fatalf("%v/shards=%d: live snapshot is empty", backend, shards)
			}
			// A live map serializes its complete state — snapshot bytes.
			var live, want bytes.Buffer
			if _, err := m.WriteTo(&live); err != nil {
				t.Fatal(err)
			}
			if _, err := snap.WriteTo(&want); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(live.Bytes(), want.Bytes()) {
				t.Errorf("%v/shards=%d: live WriteTo differs from snapshot bytes", backend, shards)
			}
			walked := 0
			last := uint64(0)
			m.WalkLeaves(func(l Leaf) bool {
				if mo := l.Key.Morton(); walked > 0 && mo <= last {
					t.Fatalf("%v/shards=%d: WalkLeaves not ascending", backend, shards)
				} else {
					last = mo
				}
				walked++
				return true
			})
			if walked != snap.NumLeaves() {
				t.Errorf("%v/shards=%d: WalkLeaves saw %d leaves, snapshot has %d",
					backend, shards, walked, snap.NumLeaves())
			}
			m.Close()
		}
	}
}
