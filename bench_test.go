package octocache

// testing.B wrappers: one benchmark per paper table/figure, delegating to
// the experiment harness at a small scale so `go test -bench=.` finishes
// in minutes. For paper-sized runs use cmd/octobench with -scale 1.0.

import (
	"math"
	"testing"

	"octocache/internal/bench"
)

const benchScale = 0.12

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.Find(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(bench.Options{Scale: benchScale}); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

func BenchmarkFig6Breakdown(b *testing.B)       { runExperiment(b, "fig6") }
func BenchmarkFig8Overlap(b *testing.B)         { runExperiment(b, "fig8") }
func BenchmarkFig10Ordering(b *testing.B)       { runExperiment(b, "fig10") }
func BenchmarkFig16UAVNav(b *testing.B)         { runExperiment(b, "fig16") }
func BenchmarkFig17UAVNavRT(b *testing.B)       { runExperiment(b, "fig17") }
func BenchmarkFig18Sweeps(b *testing.B)         { runExperiment(b, "fig18") }
func BenchmarkFig19SweepsRT(b *testing.B)       { runExperiment(b, "fig19") }
func BenchmarkFig20Construction(b *testing.B)   { runExperiment(b, "fig20") }
func BenchmarkFig21ConstructionRT(b *testing.B) { runExperiment(b, "fig21") }
func BenchmarkFig22Decomposition(b *testing.B)  { runExperiment(b, "fig22") }
func BenchmarkFig23HitRatio(b *testing.B)       { runExperiment(b, "fig23") }
func BenchmarkFig24Tau(b *testing.B)            { runExperiment(b, "fig24") }
func BenchmarkTable1Baselines(b *testing.B)     { runExperiment(b, "tab1") }
func BenchmarkTable2Datasets(b *testing.B)      { runExperiment(b, "tab2") }
func BenchmarkTable3QueueOverhead(b *testing.B) { runExperiment(b, "tab3") }
func BenchmarkFig1Overview(b *testing.B)        { runExperiment(b, "fig1") }
func BenchmarkAblationOrdering(b *testing.B)    { runExperiment(b, "abl-order") }
func BenchmarkAblationArena(b *testing.B)       { runExperiment(b, "abl-arena") }
func BenchmarkAblationDownsample(b *testing.B)  { runExperiment(b, "abl-downsample") }

// BenchmarkInsert measures the public API's steady-state per-scan
// insertion cost with a warm cache.
func BenchmarkInsert(b *testing.B) {
	for _, mode := range []struct {
		name string
		mode Mode
	}{
		{"octomap", ModeOctoMap},
		{"serial", ModeSerial},
		{"parallel", ModeParallel},
	} {
		b.Run(mode.name, func(b *testing.B) {
			m := MustNew(Options{Resolution: 0.1, Mode: mode.mode, MaxRange: 8, CacheBuckets: 1 << 14})
			origin := V(0, 0, 1.2)
			var pts []Vec3
			for i := 0; i < 360; i++ {
				ang := float64(i) * math.Pi / 180
				pts = append(pts, V(4*math.Cos(ang), 4*math.Sin(ang), 1.2))
			}
			m.Insert(origin, pts) // warm up
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Insert(origin, pts)
			}
			b.StopTimer()
			m.Close()
		})
	}
}

// BenchmarkQuery measures point queries against a populated map.
func BenchmarkQuery(b *testing.B) {
	m := MustNew(Options{Resolution: 0.1, MaxRange: 8, CacheBuckets: 1 << 14})
	origin := V(0, 0, 1.2)
	var pts []Vec3
	for i := 0; i < 720; i++ {
		ang := float64(i) * math.Pi / 360
		pts = append(pts, V(4*math.Cos(ang), 4*math.Sin(ang), 1.2))
	}
	for s := 0; s < 5; s++ {
		m.Insert(origin, pts)
	}
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		p := V(4*math.Cos(float64(i)), 4*math.Sin(float64(i)), 1.2)
		if m.Occupied(p) {
			hits++
		}
	}
	b.StopTimer()
	m.Close()
	_ = hits
}
func BenchmarkExtShardScaling(b *testing.B) { runExperiment(b, "ext-shard") }
