// Package client is the typed Go client for the octocache map service
// (octocache/server): it dials the server's frame protocol and exposes
// the familiar map verbs — Insert, Occupied, Occupancy, CastRay,
// Snapshot — against a named remote tenant.
//
// One Client owns one connection and one attached tenant. Requests
// multiplex on the connection: a demultiplexing reader routes each
// response to its caller by request ID, so queries from many
// goroutines and a stream of inserts share the socket safely.
//
// Insert is pipelined: it sends the batch and returns as soon as the
// in-flight window (Config.Window) has room, without waiting for the
// server's ack. When the window is full — the server's applier is a
// full window behind — Insert blocks. That is the protocol's
// backpressure showing up where it belongs: a slow map slows the
// producer instead of growing a buffer. Flush waits for every
// outstanding batch to be acked; any batch the server failed is
// reported by the next Insert/Flush call as a sticky error.
//
// Snapshot downloads the tenant chunk-by-chunk and rebuilds it into
// the repo's canonical snapshot form: the reassembled bytes
// (WriteSnapshot, or Snapshot().WriteTo) are bit-identical to what
// Map.WriteTo would produce on the server.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"octocache"
	"octocache/internal/core"
	"octocache/internal/wire"
)

// DefaultWindow is the insert pipelining depth when Config.Window is
// zero: how many scan batches may be on the wire awaiting ack before
// Insert blocks.
const DefaultWindow = 32

// Config configures a Client. The zero value is usable.
type Config struct {
	// Window caps unacknowledged Insert batches in flight. 0 means
	// DefaultWindow; 1 degenerates to fully synchronous inserts.
	Window int
}

// MapOptions selects the shape of a tenant created through the client —
// the remote subset of octocache.Options. Zero values mean the server
// defaults (parallel mode, octree backend, DDA tracing, one shard).
type MapOptions struct {
	// Resolution is the voxel edge length in meters. Required on
	// Create.
	Resolution float64
	// MaxRange truncates rays longer than this; 0 disables.
	MaxRange float64
	// Mode selects the ingestion pipeline.
	Mode octocache.Mode
	// Backend selects the voxel store.
	Backend octocache.Backend
	// Trace selects the ray discretization.
	Trace octocache.TraceMode
	// Shards is the parallelism degree (rounded up to a power of two;
	// the server enforces at least 1).
	Shards int
	// CacheBuckets and CacheTau shape the voxel cache, as in
	// octocache.Options.
	CacheBuckets int
	CacheTau     int
	// Durable asks the server to keep the tenant on disk (WAL +
	// snapshots under the server's data dir) so it survives restarts.
	Durable bool
	// Sync is the WAL sync policy for durable tenants.
	Sync octocache.SyncPolicy
	// SnapshotEvery checkpoints durable tenants every N admitted
	// batches; 0 means WAL-only between explicit Checkpoint calls.
	SnapshotEvery int
}

func (o MapOptions) wire() wire.TenantOptions {
	return wire.TenantOptions{
		Resolution:    o.Resolution,
		MaxRange:      o.MaxRange,
		Mode:          o.Mode.String(),
		Backend:       o.Backend.String(),
		Trace:         o.Trace.String(),
		Sync:          o.Sync.String(),
		Shards:        uint16(max(o.Shards, 0)),
		CacheBuckets:  uint32(max(o.CacheBuckets, 0)),
		CacheTau:      uint16(max(o.CacheTau, 0)),
		Durable:       o.Durable,
		SnapshotEvery: uint32(max(o.SnapshotEvery, 0)),
	}
}

// TenantInfo describes the attached tenant as the server actually runs
// it: effective options (defaults resolved, shards rounded) and the
// occupancy model.
type TenantInfo struct {
	Name       string
	Resolution float64
	Shards     int
	Mode       string
	Backend    string
	Trace      string
	Durable    bool
}

// ServerError is a failure the server reported for a request.
type ServerError struct {
	Code uint16
	Msg  string
}

func (e *ServerError) Error() string { return fmt.Sprintf("server: %s (code %d)", e.Msg, e.Code) }

// Error codes a ServerError may carry, mirroring the wire protocol.
const (
	CodeInternal     = wire.CodeInternal
	CodeBadRequest   = wire.CodeBadRequest
	CodeNoTenant     = wire.CodeNoTenant
	CodeTenantExists = wire.CodeTenantExists
	CodeNotAttached  = wire.CodeNotAttached
	CodeTenantBusy   = wire.CodeTenantBusy
	CodeVersion      = wire.CodeVersion
)

// Client is a connection to one octocache map service, attached to at
// most one tenant at a time. Methods are safe for concurrent use.
type Client struct {
	nc net.Conn
	br *bufio.Reader

	wmu  sync.Mutex // serializes frame writes
	wbuf []byte

	reqID atomic.Uint64

	// pending routes responses to waiting callers by request ID.
	pmu     sync.Mutex
	pending map[uint64]*waiter
	dead    error // set once the reader exits; all calls fail fast

	// tokens implements the insert window: Insert takes a token,
	// the ack (or failure) returns it.
	tokens chan struct{}
	// insertErr latches the first failed insert ack; Insert and Flush
	// report and clear it.
	emu       sync.Mutex
	insertErr error
	// outstanding counts unacked inserts; Flush waits for zero.
	omu         sync.Mutex
	ocond       *sync.Cond
	outstanding int

	info atomic.Pointer[TenantInfo]

	closeOnce sync.Once
	readerWG  sync.WaitGroup
}

// Dial connects to an octocache map service and performs the protocol
// handshake. The client is not attached to any tenant yet; follow with
// Create, Open, or Attach.
func Dial(addr string, cfg Config) (*Client, error) {
	if cfg.Window < 0 {
		return nil, fmt.Errorf("client: Window must be >= 0, got %d", cfg.Window)
	}
	if cfg.Window == 0 {
		cfg.Window = DefaultWindow
	}
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		nc:      nc,
		br:      bufio.NewReaderSize(nc, 64<<10),
		pending: make(map[uint64]*waiter),
		tokens:  make(chan struct{}, cfg.Window),
	}
	c.ocond = sync.NewCond(&c.omu)
	for i := 0; i < cfg.Window; i++ {
		c.tokens <- struct{}{}
	}
	if err := c.handshake(); err != nil {
		nc.Close()
		return nil, err
	}
	c.readerWG.Add(1)
	go c.reader()
	return c, nil
}

func (c *Client) handshake() error {
	if err := c.writeFrame(wire.AppendHello(nil)); err != nil {
		return fmt.Errorf("client: handshake: %w", err)
	}
	payload, _, err := wire.ReadFrame(c.br, nil)
	if err != nil {
		return fmt.Errorf("client: handshake: %w", err)
	}
	t, err := wire.PayloadType(payload)
	if err != nil {
		return fmt.Errorf("client: handshake: %w", err)
	}
	if t == wire.TErr {
		e, derr := wire.DecodeErr(payload)
		if derr != nil {
			return fmt.Errorf("client: handshake: %w", derr)
		}
		return &ServerError{Code: e.Code, Msg: e.Msg}
	}
	w, err := wire.DecodeWelcome(payload)
	if err != nil {
		return fmt.Errorf("client: handshake: %w", err)
	}
	if w.Version != wire.Version {
		return fmt.Errorf("client: server speaks protocol %d, want %d", w.Version, wire.Version)
	}
	return nil
}

func (c *Client) writeFrame(payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf = wire.AppendFrame(c.wbuf[:0], payload)
	_, err := c.nc.Write(c.wbuf)
	return err
}

// waiter is one pending request's response mailbox. gone is closed at
// unregistration so a delivery blocked on a full mailbox (a snapshot
// stream outrunning its consumer — that backpressure is intended) can
// never wedge the reader after the caller gives up.
type waiter struct {
	ch   chan any
	gone chan struct{}
}

// register allocates a request ID and its response mailbox. Snapshot
// streams push several messages, hence the small buffer; the reader
// blocks on overflow, bounding client-side buffering per stream.
func (c *Client) register() (uint64, *waiter, error) {
	id := c.reqID.Add(1)
	w := &waiter{ch: make(chan any, 4), gone: make(chan struct{})}
	c.pmu.Lock()
	defer c.pmu.Unlock()
	if c.dead != nil {
		return 0, nil, c.dead
	}
	c.pending[id] = w
	return id, w, nil
}

func (c *Client) unregister(id uint64) {
	c.pmu.Lock()
	w := c.pending[id]
	delete(c.pending, id)
	c.pmu.Unlock()
	if w != nil {
		close(w.gone)
	}
}

// deliver hands a response to its waiter. Unmatched IDs are dropped:
// they belong to requests whose callers already gave up.
func (c *Client) deliver(id uint64, msg any) {
	c.pmu.Lock()
	w := c.pending[id]
	c.pmu.Unlock()
	if w == nil {
		return
	}
	select {
	case w.ch <- msg:
	case <-w.gone:
	}
}

// fail marks the connection dead and wakes every waiter.
func (c *Client) fail(err error) {
	c.pmu.Lock()
	if c.dead == nil {
		c.dead = err
	}
	for id, w := range c.pending {
		close(w.ch)
		delete(c.pending, id)
	}
	c.pmu.Unlock()
	// Unstick Insert/Flush waiters too: latch the error, refill the
	// token window so a blocked Insert wakes (it re-checks dead), and
	// zero the outstanding count for Flush.
	c.setInsertErr(err)
refill:
	for {
		select {
		case c.tokens <- struct{}{}:
		default:
			break refill
		}
	}
	c.omu.Lock()
	c.outstanding = 0
	c.ocond.Broadcast()
	c.omu.Unlock()
}

func (c *Client) setInsertErr(err error) {
	c.emu.Lock()
	if c.insertErr == nil {
		c.insertErr = err
	}
	c.emu.Unlock()
}

// takeInsertErr returns and clears the sticky insert error.
func (c *Client) takeInsertErr() error {
	c.emu.Lock()
	err := c.insertErr
	c.insertErr = nil
	c.emu.Unlock()
	return err
}

// insertDone retires one in-flight insert: returns its token, drops
// the outstanding count, wakes Flush.
func (c *Client) insertDone() {
	select {
	case c.tokens <- struct{}{}:
	default: // fail() may have already refilled; never block the reader
	}
	c.omu.Lock()
	if c.outstanding > 0 {
		c.outstanding--
	}
	if c.outstanding == 0 {
		c.ocond.Broadcast()
	}
	c.omu.Unlock()
}

// reader demultiplexes every inbound frame until the connection dies.
func (c *Client) reader() {
	defer c.readerWG.Done()
	var buf []byte
	for {
		payload, nbuf, err := wire.ReadFrame(c.br, buf)
		buf = nbuf
		if err != nil {
			if errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			c.fail(fmt.Errorf("client: connection lost: %w", err))
			return
		}
		t, err := wire.PayloadType(payload)
		if err != nil {
			c.fail(err)
			return
		}
		switch t {
		case wire.TOK:
			m, err := wire.DecodeOK(payload)
			if err != nil {
				c.fail(err)
				return
			}
			if c.isInsertID(m.ID) {
				c.insertDone()
			} else {
				c.deliver(m.ID, m)
			}
		case wire.TErr:
			m, err := wire.DecodeErr(payload)
			if err != nil {
				c.fail(err)
				return
			}
			serr := &ServerError{Code: m.Code, Msg: m.Msg}
			if c.isInsertID(m.ID) {
				c.setInsertErr(serr)
				c.insertDone()
			} else {
				c.deliver(m.ID, serr)
			}
		case wire.TTenantInfo:
			m, err := wire.DecodeTenantInfo(payload)
			if err != nil {
				c.fail(err)
				return
			}
			c.deliver(m.ID, m)
		case wire.TOccupiedResp:
			id, m, err := wire.DecodeOccupiedResp(payload)
			if err != nil {
				c.fail(err)
				return
			}
			c.deliver(id, m)
		case wire.TOccupancyResp:
			id, cells, err := wire.DecodeOccupancyResp(payload)
			if err != nil {
				c.fail(err)
				return
			}
			c.deliver(id, cells)
		case wire.TCastRayResp:
			id, m, err := wire.DecodeCastRayResp(payload)
			if err != nil {
				c.fail(err)
				return
			}
			c.deliver(id, m)
		case wire.TSnapBegin:
			id, p, err := wire.DecodeSnapBegin(payload)
			if err != nil {
				c.fail(err)
				return
			}
			c.deliver(id, snapBegin{params: p})
		case wire.TSnapChunk:
			id, leaves, err := wire.DecodeSnapChunk(payload, nil)
			if err != nil {
				c.fail(err)
				return
			}
			c.deliver(id, snapChunk{leaves: leaves})
		case wire.TSnapEnd:
			id, total, err := wire.DecodeSnapEnd(payload)
			if err != nil {
				c.fail(err)
				return
			}
			c.deliver(id, snapEnd{total: total})
		default:
			c.fail(fmt.Errorf("client: unexpected frame type 0x%02x", uint8(t)))
			return
		}
	}
}

type (
	snapBegin struct{ params wire.Params }
	snapChunk struct{ leaves []wire.Leaf }
	snapEnd   struct{ total uint64 }
)

// Insert request IDs live in their own half of the ID space so the
// reader can retire them without a pending-table entry per batch.
const insertIDBit = uint64(1) << 63

func (c *Client) isInsertID(id uint64) bool { return id&insertIDBit != 0 }

// call sends one request and waits for its single response.
func (c *Client) call(build func(id uint64) []byte) (any, error) {
	id, w, err := c.register()
	if err != nil {
		return nil, err
	}
	defer c.unregister(id)
	if err := c.writeFrame(build(id)); err != nil {
		return nil, err
	}
	msg, ok := <-w.ch
	if !ok {
		c.pmu.Lock()
		err := c.dead
		c.pmu.Unlock()
		return nil, err
	}
	if serr, isErr := msg.(*ServerError); isErr {
		return nil, serr
	}
	return msg, nil
}

func (c *Client) noteInfo(m wire.TenantInfo) TenantInfo {
	info := TenantInfo{
		Name:       m.Name,
		Resolution: m.Params.Resolution,
		Shards:     int(m.Opts.Shards),
		Mode:       m.Opts.Mode,
		Backend:    m.Opts.Backend,
		Trace:      m.Opts.Trace,
		Durable:    m.Opts.Durable,
	}
	c.info.Store(&info)
	return info
}

// Create creates the named tenant and attaches to it. It fails with
// CodeTenantExists if the name is taken; use Open for
// create-or-attach.
func (c *Client) Create(name string, opts MapOptions) (TenantInfo, error) {
	return c.create(name, false, opts)
}

// Open attaches to the named tenant, creating it with opts if it does
// not exist. When the tenant already exists its shape wins; inspect
// the returned TenantInfo.
func (c *Client) Open(name string, opts MapOptions) (TenantInfo, error) {
	return c.create(name, true, opts)
}

func (c *Client) create(name string, ifAbsent bool, opts MapOptions) (TenantInfo, error) {
	msg, err := c.call(func(id uint64) []byte {
		return wire.AppendCreate(nil, id, name, ifAbsent, opts.wire())
	})
	if err != nil {
		return TenantInfo{}, err
	}
	return c.noteInfo(msg.(wire.TenantInfo)), nil
}

// Attach attaches to an existing tenant; CodeNoTenant if absent.
func (c *Client) Attach(name string) (TenantInfo, error) {
	msg, err := c.call(func(id uint64) []byte {
		return wire.AppendAttach(nil, id, name)
	})
	if err != nil {
		return TenantInfo{}, err
	}
	return c.noteInfo(msg.(wire.TenantInfo)), nil
}

// Drop closes and deletes the named tenant. The server refuses
// (CodeTenantBusy) while other connections are attached.
func (c *Client) Drop(name string) error {
	_, err := c.call(func(id uint64) []byte {
		return wire.AppendDrop(nil, id, name)
	})
	if err == nil {
		if info := c.info.Load(); info != nil && info.Name == name {
			c.info.Store(nil)
		}
	}
	return err
}

// Info returns the attached tenant's description, or false if the
// client is not attached.
func (c *Client) Info() (TenantInfo, bool) {
	info := c.info.Load()
	if info == nil {
		return TenantInfo{}, false
	}
	return *info, true
}

// Insert streams one scan batch into the attached tenant. It returns
// once the batch is on the wire and the in-flight window has room —
// not once it is applied; call Flush for that barrier. When the server
// lags a full window, Insert blocks: that is backpressure, not a bug.
// A failed batch surfaces as an error from a later Insert or Flush.
func (c *Client) Insert(origin octocache.Vec3, points []octocache.Vec3) error {
	if err := c.takeInsertErr(); err != nil {
		return err
	}
	<-c.tokens
	c.pmu.Lock()
	dead := c.dead
	c.pmu.Unlock()
	if dead != nil {
		return dead
	}
	c.omu.Lock()
	c.outstanding++
	c.omu.Unlock()
	id := c.reqID.Add(1) | insertIDBit
	if err := c.writeFrame(wire.AppendInsert(nil, id, origin, points)); err != nil {
		c.insertDone()
		return err
	}
	return nil
}

// Flush blocks until every in-flight Insert has been acknowledged and
// returns the sticky error if any batch failed.
func (c *Client) Flush() error {
	c.omu.Lock()
	for c.outstanding > 0 {
		c.ocond.Wait()
	}
	c.omu.Unlock()
	return c.takeInsertErr()
}

// Occupied reports whether the voxel containing p crosses the
// occupancy threshold.
func (c *Client) Occupied(p octocache.Vec3) (bool, error) {
	r, err := c.OccupiedBatch([]octocache.Vec3{p})
	if err != nil {
		return false, err
	}
	return r.Occupied(0), nil
}

// OccupiedSet is a batched Occupied answer: a bitmask over the queried
// points, read with Occupied(i).
type OccupiedSet = wire.OccupiedResp

// OccupiedBatch answers Occupied for many points in one round trip.
func (c *Client) OccupiedBatch(points []octocache.Vec3) (OccupiedSet, error) {
	msg, err := c.call(func(id uint64) []byte {
		return wire.AppendQueryOccupied(nil, id, points)
	})
	if err != nil {
		return OccupiedSet{}, err
	}
	return msg.(wire.OccupiedResp), nil
}

// Occupancy returns the accumulated log-odds of the voxel key k.
func (c *Client) Occupancy(k octocache.Key) (octocache.CellState, error) {
	cells, err := c.OccupancyKeys([]octocache.Key{k})
	if err != nil {
		return octocache.CellState{}, err
	}
	return cells[0], nil
}

// OccupancyKeys answers key-space occupancy for many voxels in one
// round trip, mirroring Map.OccupancyBatch.
func (c *Client) OccupancyKeys(keys []octocache.Key) ([]octocache.CellState, error) {
	msg, err := c.call(func(id uint64) []byte {
		return wire.AppendQueryOccupancy(nil, id, keys)
	})
	if err != nil {
		return nil, err
	}
	wcells := msg.([]wire.CellState)
	cells := make([]octocache.CellState, len(wcells))
	for i, w := range wcells {
		cells[i] = octocache.CellState{LogOdds: w.LogOdds, Known: w.Known}
	}
	return cells, nil
}

// CastRay casts a ray through the attached tenant, mirroring
// Map.CastRay.
func (c *Client) CastRay(origin, dir octocache.Vec3, maxRange float64, ignoreUnknown bool) (hit octocache.Vec3, ok bool, err error) {
	msg, err := c.call(func(id uint64) []byte {
		return wire.AppendCastRay(nil, id, origin, dir, maxRange, ignoreUnknown)
	})
	if err != nil {
		return octocache.Vec3{}, false, err
	}
	r := msg.(wire.CastRayResp)
	return r.Hit, r.OK, nil
}

// Checkpoint forces a consistent-cut snapshot of a durable tenant.
func (c *Client) Checkpoint() error {
	_, err := c.call(func(id uint64) []byte {
		return wire.AppendCheckpoint(nil, id)
	})
	return err
}

// Snapshot downloads the attached tenant as a consistent snapshot,
// reassembled into the canonical form: its WriteTo bytes are
// bit-identical to Map.WriteTo on the server at the moment the stream
// began. The download is chunked; neither side ever holds the whole
// serialized stream in memory.
func (c *Client) Snapshot() (*octocache.Snapshot, error) {
	id, w, err := c.register()
	if err != nil {
		return nil, err
	}
	defer c.unregister(id)
	if err := c.writeFrame(wire.AppendSnapshotReq(nil, id)); err != nil {
		return nil, err
	}
	recv := func() (any, error) {
		msg, ok := <-w.ch
		if !ok {
			c.pmu.Lock()
			defer c.pmu.Unlock()
			return nil, c.dead
		}
		if serr, isErr := msg.(*ServerError); isErr {
			return nil, serr
		}
		return msg, nil
	}
	msg, err := recv()
	if err != nil {
		return nil, err
	}
	begin, ok := msg.(snapBegin)
	if !ok {
		return nil, fmt.Errorf("client: snapshot stream opened with %T", msg)
	}
	snap := core.NewSnapshot(begin.params.ToVoxel())
	var total uint64
	for {
		msg, err := recv()
		if err != nil {
			return nil, err
		}
		switch m := msg.(type) {
		case snapChunk:
			for _, l := range m.leaves {
				snap.Add(octocache.Leaf{Key: l.Key, Depth: int(l.Depth), LogOdds: l.LogOdds})
			}
			total += uint64(len(m.leaves))
		case snapEnd:
			if m.total != total {
				return nil, fmt.Errorf("client: snapshot truncated: got %d leaves, server sent %d", total, m.total)
			}
			return snap, nil
		default:
			return nil, fmt.Errorf("client: unexpected %T in snapshot stream", msg)
		}
	}
}

// WriteSnapshot downloads the tenant and writes its serialized form to
// w — the bytes Map.WriteTo would produce on the server.
func (c *Client) WriteSnapshot(w io.Writer) (int64, error) {
	snap, err := c.Snapshot()
	if err != nil {
		return 0, err
	}
	return snap.WriteTo(w)
}

// Close flushes in-flight inserts (best effort) and closes the
// connection.
func (c *Client) Close() error {
	var err error
	c.closeOnce.Do(func() {
		err = c.Flush()
		c.nc.Close()
		c.readerWG.Wait()
	})
	return err
}
