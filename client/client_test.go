package client

import (
	"errors"
	"net"
	"testing"

	"octocache"
	"octocache/internal/wire"
)

// TestMapOptionsWireMapping pins the client-side enum spelling: every
// MapOptions enum must cross the wire as its canonical flag string.
func TestMapOptionsWireMapping(t *testing.T) {
	o := MapOptions{
		Resolution: 0.2,
		Mode:       octocache.ModeOctoMap,
		Backend:    octocache.BackendGrid,
		Trace:      octocache.TraceBoundary,
		Sync:       octocache.SyncEveryBatch,
		Shards:     3,
		Durable:    true,
	}
	w := o.wire()
	if w.Mode != "octomap" || w.Backend != "grid" || w.Trace != "boundary" || w.Sync != "batch" {
		t.Fatalf("enum spellings wrong: %+v", w)
	}
	if w.Shards != 3 || !w.Durable || w.Resolution != 0.2 {
		t.Fatalf("fields dropped: %+v", w)
	}
	// The zero value must spell the defaults, never empty garbage.
	z := MapOptions{}.wire()
	if z.Mode != "parallel" || z.Backend != "octree" || z.Trace != "dda" || z.Sync != "none" {
		t.Fatalf("zero-value spellings wrong: %+v", z)
	}
}

// TestDialVersionRejection pins the client's handling of a handshake
// refusal: a server speaking another protocol version must surface as
// ServerError{CodeVersion}, not a hang or a decode panic.
func TestDialVersionRejection(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		if _, _, err := wire.ReadFrame(nc, nil); err != nil {
			return
		}
		nc.Write(wire.AppendFrame(nil, wire.AppendErr(nil, 0, wire.CodeVersion, "too old")))
	}()

	_, err = Dial(ln.Addr().String(), Config{})
	var serr *ServerError
	if !errors.As(err, &serr) || serr.Code != CodeVersion {
		t.Fatalf("got %v, want ServerError with CodeVersion", err)
	}
}

// TestDialGarbageServer pins that a non-protocol peer fails the
// handshake with an error rather than hanging.
func TestDialGarbageServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		nc.Write([]byte("HTTP/1.1 400 Bad Request\r\n\r\n"))
		nc.Close()
	}()
	if _, err := Dial(ln.Addr().String(), Config{}); err == nil {
		t.Fatal("handshake against a garbage server succeeded")
	}
}
