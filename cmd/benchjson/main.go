// Command benchjson measures the core insertion path and emits a small
// machine-readable snapshot (BENCH_core.json) so the perf trajectory —
// insert ns/op, allocs/op, cache hit rate — is tracked across PRs
// instead of living only in ad-hoc benchmark logs.
//
// The workload mirrors the public BenchmarkInsert: a fixed 360-point
// ring scan inserted repeatedly into a warm map, per pipeline mode. It
// uses testing.Benchmark so the numbers are directly comparable to
// `go test -bench Insert` output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"octocache"
)

type insertResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

type report struct {
	Schema       string                  `json:"schema"`
	GoVersion    string                  `json:"go_version"`
	GOOS         string                  `json:"goos"`
	GOARCH       string                  `json:"goarch"`
	Insert       map[string]insertResult `json:"insert"`
	CacheHitRate float64                 `json:"cache_hit_rate"`
}

// scanRing is the benchmark scan: a cylindrical wall 4 m out, one point
// per degree, re-observed every iteration so the cache absorbs most of
// the update stream (the steady state the paper measures).
func scanRing() []octocache.Vec3 {
	pts := make([]octocache.Vec3, 0, 360)
	for i := 0; i < 360; i++ {
		ang := float64(i) * math.Pi / 180
		pts = append(pts, octocache.V(4*math.Cos(ang), 4*math.Sin(ang), 1.2))
	}
	return pts
}

func benchInsert(mode octocache.Mode) (insertResult, float64) {
	origin := octocache.V(0, 0, 1.2)
	pts := scanRing()
	var hitRate float64
	r := testing.Benchmark(func(b *testing.B) {
		m := octocache.New(octocache.Options{
			Resolution:   0.1,
			Mode:         mode,
			MaxRange:     8,
			CacheBuckets: 1 << 14,
		})
		m.Insert(origin, pts) // warm up
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Insert(origin, pts)
		}
		b.StopTimer()
		m.Close()
		hitRate = m.Stats().CacheHitRate
	})
	return insertResult{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}, hitRate
}

func main() {
	out := flag.String("o", "BENCH_core.json", "output file (- for stdout)")
	benchtime := flag.Duration("benchtime", time.Second, "target run time per benchmark")
	flag.Parse()

	// testing.Benchmark reads the package-level -test.benchtime flag;
	// register the testing flags and set it explicitly.
	testing.Init()
	if err := flag.CommandLine.Lookup("test.benchtime").Value.Set(benchtime.String()); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	rep := report{
		Schema:    "octocache-bench-core/v1",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Insert:    make(map[string]insertResult),
	}
	for _, mc := range []struct {
		name string
		mode octocache.Mode
	}{
		{"octomap", octocache.ModeOctoMap},
		{"serial", octocache.ModeSerial},
		{"parallel", octocache.ModeParallel},
	} {
		res, hitRate := benchInsert(mc.mode)
		rep.Insert[mc.name] = res
		if mc.name == "serial" {
			rep.CacheHitRate = hitRate
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
