// Command benchjson measures the core insertion path and emits a small
// machine-readable snapshot (BENCH_core.json) so the perf trajectory —
// insert ns/op, allocs/op, cache hit rate — is tracked across PRs
// instead of living only in ad-hoc benchmark logs.
//
// The workload mirrors the public BenchmarkInsert: a fixed 360-point
// ring scan inserted repeatedly into a warm map, per pipeline mode. It
// uses testing.Benchmark so the numbers are directly comparable to
// `go test -bench Insert` output. A second, prune-heavy workload
// measures arena fragmentation before/after an explicit Compact and the
// rebuild pause (schema v2). Schema v3 adds per-backend insert rows:
// the octree rows keep their v2 keys ("octomap", "serial", "parallel")
// so trajectories stay comparable across PRs, and the brick-grid
// backend appends "-grid" variants. Schema v4 adds point-query and
// raycast rows per backend × shard count, and a windowed-traverse
// workload comparing a bounded-memory map's resident footprint against
// the unbounded baseline. Schema v5 adds a "durable" section measuring
// the WAL's insert-path overhead: serial-pipeline insert ns/op with the
// log off, armed without fsync, and armed with per-batch fsync. Schema
// v6 adds "-boundary" insert rows running the boundary (D-BDM) trace
// mode, deduplicating each scan by rasterization before admission.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"octocache"
)

type insertResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

type compactionResult struct {
	FragmentationBefore float64 `json:"fragmentation_before"`
	FragmentationAfter  float64 `json:"fragmentation_after"`
	OccupancyBefore     float64 `json:"occupancy_before"`
	OccupancyAfter      float64 `json:"occupancy_after"`
	CapacityBefore      int     `json:"capacity_before"`
	CapacityAfter       int     `json:"capacity_after"`
	SlotsReclaimed      int64   `json:"slots_reclaimed"`
	CompactNs           int64   `json:"compact_ns"`
}

type queryResult struct {
	QueryNsPerOp   float64 `json:"query_ns_per_op"`
	RaycastNsPerOp float64 `json:"raycast_ns_per_op"`
}

type windowResult struct {
	UnboundedBytes int64 `json:"unbounded_bytes"`
	WindowedBytes  int64 `json:"windowed_bytes"`
	SpilledTiles   int   `json:"spilled_tiles"`
	BytesOnDisk    int64 `json:"bytes_on_disk"`
	Evictions      int64 `json:"evictions"`
	Reloads        int64 `json:"reloads"`
	MaxPauseNs     int64 `json:"max_pause_ns"`
}

type durableResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// OverheadVsOff is this policy's ns/op relative to the WAL-off row
	// ("off" itself reports 1.0).
	OverheadVsOff float64 `json:"overhead_vs_off"`
	WALBytes      int64   `json:"wal_bytes"`
}

type report struct {
	Schema         string                   `json:"schema"`
	GoVersion      string                   `json:"go_version"`
	GOOS           string                   `json:"goos"`
	GOARCH         string                   `json:"goarch"`
	Insert         map[string]insertResult  `json:"insert"`
	Query          map[string]queryResult   `json:"query"`
	Durable        map[string]durableResult `json:"durable"`
	Window         windowResult             `json:"window"`
	CacheHitRate   float64                  `json:"cache_hit_rate"`
	ArenaOccupancy float64                  `json:"arena_occupancy"`
	Compaction     compactionResult         `json:"compaction"`
}

// scanRing is the benchmark scan: a cylindrical wall 4 m out, one point
// per degree, re-observed every iteration so the cache absorbs most of
// the update stream (the steady state the paper measures).
func scanRing() []octocache.Vec3 {
	pts := make([]octocache.Vec3, 0, 360)
	for i := 0; i < 360; i++ {
		ang := float64(i) * math.Pi / 180
		pts = append(pts, octocache.V(4*math.Cos(ang), 4*math.Sin(ang), 1.2))
	}
	return pts
}

func benchInsert(mode octocache.Mode, backend octocache.Backend, trace octocache.TraceMode) (insertResult, float64, float64) {
	origin := octocache.V(0, 0, 1.2)
	pts := scanRing()
	var hitRate, occupancy float64
	r := testing.Benchmark(func(b *testing.B) {
		m := octocache.MustNew(octocache.Options{
			Resolution:   0.1,
			Mode:         mode,
			Backend:      backend,
			MaxRange:     8,
			Trace:        trace,
			CacheBuckets: 1 << 14,
		})
		m.Insert(origin, pts) // warm up
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Insert(origin, pts)
		}
		b.StopTimer()
		m.Close()
		st := m.Stats()
		hitRate = st.Cache.HitRate
		occupancy = st.Arena.Occupancy()
	})
	return insertResult{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}, hitRate, occupancy
}

// benchQuery measures the read side on a warm, still-live map: point
// queries cycling through a mix of occupied, free, and unknown probes,
// and full raycasts from the map center. Sharded rows route each probe
// through the shard service's per-shard read locks.
func benchQuery(backend octocache.Backend, shards int) queryResult {
	origin := octocache.V(0, 0, 1.2)
	pts := scanRing()
	m := octocache.MustNew(octocache.Options{
		Resolution:   0.1,
		Mode:         octocache.ModeSerial,
		Backend:      backend,
		Shards:       shards,
		MaxRange:     8,
		CacheBuckets: 1 << 14,
	})
	for i := 0; i < 8; i++ {
		m.Insert(origin, pts)
	}
	probes := append([]octocache.Vec3{}, pts[:180]...)
	for i := 0; i < 90; i++ { // known-free mid-ray and unknown far points
		ang := float64(i) * 4 * math.Pi / 180
		probes = append(probes, octocache.V(2*math.Cos(ang), 2*math.Sin(ang), 1.2))
		probes = append(probes, octocache.V(20*math.Cos(ang), 20*math.Sin(ang), 1.2))
	}
	q := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Occupied(probes[i%len(probes)])
		}
	})
	dirs := make([]octocache.Vec3, 36)
	for i := range dirs {
		ang := float64(i) * 10 * math.Pi / 180
		dirs[i] = octocache.V(math.Cos(ang), math.Sin(ang), 0)
	}
	rc := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.CastRay(origin, dirs[i%len(dirs)], 8, true)
		}
	})
	m.Close()
	return queryResult{
		QueryNsPerOp:   float64(q.T.Nanoseconds()) / float64(q.N),
		RaycastNsPerOp: float64(rc.T.Nanoseconds()) / float64(rc.N),
	}
}

// benchDurable measures what arming the WAL costs the insert path: the
// same warm ring-scan workload as the insert rows, run with the log off,
// with the log on at SyncNone (page-cache writes), and at SyncEveryBatch
// (one fsync per scan). A production-shaped snapshot cadence keeps the
// log bounded via the store's auto-rewrite, so the numbers amortize the
// whole durable pipeline, not just the append.
func benchDurable() map[string]durableResult {
	origin := octocache.V(0, 0, 1.2)
	pts := scanRing()
	out := make(map[string]durableResult)
	run := func(armed bool, sync octocache.SyncPolicy) durableResult {
		var walBytes int64
		r := testing.Benchmark(func(b *testing.B) {
			opts := octocache.Options{
				Resolution:   0.1,
				Mode:         octocache.ModeSerial,
				MaxRange:     8,
				CacheBuckets: 1 << 14,
			}
			var dir string
			if armed {
				var err error
				dir, err = os.MkdirTemp("", "benchjson-durable")
				if err != nil {
					b.Fatal(err)
				}
				defer os.RemoveAll(dir)
				opts.Durable = octocache.Durable{Dir: dir, Sync: sync, SnapshotEvery: 256}
			}
			m := octocache.MustNew(opts)
			m.Insert(origin, pts) // warm up
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Insert(origin, pts)
			}
			b.StopTimer()
			if armed {
				walBytes = m.Stats().Durable.BytesOnDisk
			}
			m.Close()
		})
		return durableResult{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			WALBytes:    walBytes,
		}
	}
	off := run(false, octocache.SyncNone)
	off.OverheadVsOff = 1
	out["off"] = off
	for name, sync := range map[string]octocache.SyncPolicy{
		"sync-none":  octocache.SyncNone,
		"sync-batch": octocache.SyncEveryBatch,
	} {
		res := run(true, sync)
		if off.NsPerOp > 0 {
			res.OverheadVsOff = res.NsPerOp / off.NsPerOp
		}
		out[name] = res
	}
	return out
}

// benchWindow drives the same long traverse through an unbounded map and
// a tightly windowed one (0.8 m tiles, radius 1) and reports the
// resident-footprint split: how many bytes stay in memory, how much
// spilled to disk, and the worst single eviction pause.
func benchWindow() windowResult {
	dir, err := os.MkdirTemp("", "benchjson-window")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)

	// Compaction is armed so the windowed arena can actually shrink
	// after evictions; without it Arena.Bytes only reports the
	// high-water capacity and the two runs land in the same size class.
	base := octocache.Options{
		Resolution:   0.1,
		Mode:         octocache.ModeSerial,
		MaxRange:     8,
		CacheBuckets: 1 << 10,
		Compaction:   octocache.CompactionPolicy{MinFreeFraction: 0.25, MinFreeSlots: 1024},
	}
	ref := octocache.MustNew(base)
	// The evict cap is raised above the per-insert default so the
	// window converges within the short traverse instead of leaving a
	// backlog of out-of-window tiles resident.
	winOpts := base
	winOpts.Window = octocache.Window{Radius: 1, TileDepth: 13, Dir: dir, MaxEvictPerCycle: 512}
	win := octocache.MustNew(winOpts)

	rng := rand.New(rand.NewSource(47))
	winRNG := rand.New(rand.NewSource(47))
	scan := func(r *rand.Rand, origin octocache.Vec3) []octocache.Vec3 {
		pts := make([]octocache.Vec3, 0, 200)
		for j := 0; j < 200; j++ {
			ang := r.Float64() * 2 * math.Pi
			rad := 1 + r.Float64()*2
			pts = append(pts, origin.Add(octocache.V(rad*math.Cos(ang), rad*math.Sin(ang), r.Float64()-0.5)))
		}
		return pts
	}
	for i := 0; i < 30; i++ {
		origin := octocache.V(3*float64(i), 0, 1.2)
		ref.Insert(origin, scan(rng, origin))
		win.Insert(origin, scan(winRNG, origin))
	}
	refBytes := ref.Stats().Arena.Bytes
	ws := win.Stats()
	ref.Close()
	win.Close()
	return windowResult{
		UnboundedBytes: refBytes,
		WindowedBytes:  ws.Arena.Bytes,
		SpilledTiles:   ws.Window.SpilledTiles,
		BytesOnDisk:    ws.Window.BytesOnDisk,
		Evictions:      ws.Window.Evictions,
		Reloads:        ws.Window.Reloads,
		MaxPauseNs:     ws.Window.MaxPause.Nanoseconds(),
	}
}

// benchCompaction builds a prune-heavy map — jittered ring scans from
// shifting origins grow structure, then repeated re-observation
// saturates free-space voxels to the clamp so whole octants prune into
// the arena free lists — and measures one explicit compaction:
// fragmentation before/after and the rebuild pause.
func benchCompaction() compactionResult {
	m := octocache.MustNew(octocache.Options{
		Resolution:   0.1,
		Mode:         octocache.ModeSerial,
		MaxRange:     8,
		CacheBuckets: 1 << 10,
	})
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 6; i++ {
		origin := octocache.V(0.4*float64(i), 0.3*float64(i%3), 1.2)
		pts := make([]octocache.Vec3, 0, 300)
		for j := 0; j < 300; j++ {
			ang := rng.Float64() * 2 * math.Pi
			r := 1.2 + rng.Float64()*2.2
			pts = append(pts, origin.Add(octocache.V(r*math.Cos(ang), r*math.Sin(ang), rng.Float64()-0.5)))
		}
		for rep := 0; rep < 12; rep++ {
			m.Insert(origin, pts)
		}
	}
	before := m.Stats().Arena
	if err := m.Compact(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: compact:", err)
		os.Exit(1)
	}
	st := m.Stats()
	m.Close()
	return compactionResult{
		FragmentationBefore: before.Fragmentation(),
		FragmentationAfter:  st.Arena.Fragmentation(),
		OccupancyBefore:     before.Occupancy(),
		OccupancyAfter:      st.Arena.Occupancy(),
		CapacityBefore:      before.Capacity,
		CapacityAfter:       st.Arena.Capacity,
		SlotsReclaimed:      st.Compaction.SlotsReclaimed,
		CompactNs:           st.Compaction.LastDuration.Nanoseconds(),
	}
}

func main() {
	out := flag.String("o", "BENCH_core.json", "output file (- for stdout)")
	benchtime := flag.Duration("benchtime", time.Second, "target run time per benchmark")
	flag.Parse()

	// testing.Benchmark reads the package-level -test.benchtime flag;
	// register the testing flags and set it explicitly.
	testing.Init()
	if err := flag.CommandLine.Lookup("test.benchtime").Value.Set(benchtime.String()); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	rep := report{
		Schema:    "octocache-bench-core/v6",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Insert:    make(map[string]insertResult),
		Query:     make(map[string]queryResult),
	}
	for _, mc := range []struct {
		name    string
		mode    octocache.Mode
		backend octocache.Backend
		trace   octocache.TraceMode
	}{
		// Octree-backend rows keep their v2 keys.
		{"octomap", octocache.ModeOctoMap, octocache.BackendOctree, octocache.TraceDDA},
		{"serial", octocache.ModeSerial, octocache.BackendOctree, octocache.TraceDDA},
		{"parallel", octocache.ModeParallel, octocache.BackendOctree, octocache.TraceDDA},
		{"octomap-grid", octocache.ModeOctoMap, octocache.BackendGrid, octocache.TraceDDA},
		{"serial-grid", octocache.ModeSerial, octocache.BackendGrid, octocache.TraceDDA},
		{"parallel-grid", octocache.ModeParallel, octocache.BackendGrid, octocache.TraceDDA},
		{"octomap-boundary", octocache.ModeOctoMap, octocache.BackendOctree, octocache.TraceBoundary},
		{"serial-boundary", octocache.ModeSerial, octocache.BackendOctree, octocache.TraceBoundary},
		{"parallel-boundary", octocache.ModeParallel, octocache.BackendOctree, octocache.TraceBoundary},
		{"serial-boundary-grid", octocache.ModeSerial, octocache.BackendGrid, octocache.TraceBoundary},
	} {
		res, hitRate, occupancy := benchInsert(mc.mode, mc.backend, mc.trace)
		rep.Insert[mc.name] = res
		if mc.name == "serial" {
			rep.CacheHitRate = hitRate
			rep.ArenaOccupancy = occupancy
		}
	}
	for _, qc := range []struct {
		name    string
		backend octocache.Backend
		shards  int
	}{
		{"octree", octocache.BackendOctree, 0},
		{"grid", octocache.BackendGrid, 0},
		{"octree-sharded-8", octocache.BackendOctree, 8},
		{"grid-sharded-8", octocache.BackendGrid, 8},
	} {
		rep.Query[qc.name] = benchQuery(qc.backend, qc.shards)
	}
	rep.Durable = benchDurable()
	rep.Window = benchWindow()
	rep.Compaction = benchCompaction()

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
