// Command mapbuilder builds a 3D occupancy map from one of the synthetic
// scan datasets using a selected pipeline, prints the runtime
// decomposition and cache statistics, and optionally serializes the
// resulting octree — the "3D environment construction" task of §5.2 as a
// standalone tool.
//
// Usage:
//
//	mapbuilder -dataset fr079 -pipeline parallel -res 0.1 -scale 0.5
//	mapbuilder -dataset campus -pipeline octomap -rt -out campus.ot
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"octocache"
	"octocache/internal/core"
	"octocache/internal/dataset"
	"octocache/internal/viz"
)

func main() {
	var (
		dsName    = flag.String("dataset", "fr079", "dataset: fr079, campus, or newcollege")
		pipeline  = flag.String("pipeline", "parallel", "pipeline: octomap, serial, parallel, voxelcache, or naive")
		res       = flag.Float64("res", 0.1, "mapping resolution in meters")
		scale     = flag.Float64("scale", 0.5, "dataset scale (1.0 = paper-sized)")
		rt        = flag.Bool("rt", false, "use deduplicating (OctoMap-RT style) ray tracing")
		trace     = flag.String("trace", "dda", "scan tracing: dda (per-ray marching) or boundary (per-batch rasterization)")
		traceW    = flag.Int("trace-workers", 0, "goroutines per scan for the trace stage (0 = serial)")
		backend   = flag.String("backend", "octree", "voxel store backend: octree or grid")
		tau       = flag.Int("tau", 4, "cache bucket depth τ")
		buckets   = flag.Int("buckets", 0, "cache bucket count w (0 = auto-size at 3.5x batch distinct voxels)")
		out       = flag.String("out", "", "write the finished octree to this file")
		slice     = flag.String("slice", "", "write a horizontal PGM slice of the map to this file")
		sliceZ    = flag.Float64("slicez", 1.2, "slice height in meters")
		winRadius = flag.Int("window-radius", 0, "bounded-memory window radius in tiles (0 = unbounded)")
		winDir    = flag.String("window-dir", "", "spill directory for evicted tiles (default: a temp dir)")
		durDir    = flag.String("durable-dir", "", "write-ahead log + snapshot directory; recovers any map found there (empty = not durable)")
		syncPol   = flag.String("sync", "none", "WAL sync policy: none (page cache) or batch (fsync per scan)")
	)
	flag.Parse()

	kind, ok := map[string]core.Kind{
		"octomap":    core.KindOctoMap,
		"serial":     core.KindSerial,
		"parallel":   core.KindParallel,
		"voxelcache": core.KindVoxelCache,
		"naive":      core.KindNaive,
	}[*pipeline]
	if !ok {
		fmt.Fprintf(os.Stderr, "mapbuilder: unknown pipeline %q\n", *pipeline)
		os.Exit(1)
	}

	fmt.Printf("generating dataset %s (scale %.2f)...\n", *dsName, *scale)
	ds, err := dataset.Named(*dsName, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mapbuilder:", err)
		os.Exit(1)
	}
	fmt.Printf("  %d scans, %d points\n", len(ds.Scans), ds.TotalPoints())

	cfg := core.DefaultConfig(*res)
	cfg.Backend, err = octocache.ParseBackend(*backend)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mapbuilder:", err)
		os.Exit(1)
	}
	cfg.MaxRange = ds.Sensor.MaxRange
	cfg.RT = *rt
	cfg.Trace, err = octocache.ParseTraceMode(*trace)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mapbuilder:", err)
		os.Exit(1)
	}
	cfg.TraceWorkers = *traceW
	cfg.CacheTau = *tau
	if *buckets > 0 {
		cfg.CacheBuckets = *buckets
	} else {
		cfg.CacheBuckets = 1 << 15
	}
	if *winRadius > 0 {
		dir := *winDir
		if dir == "" {
			dir, err = os.MkdirTemp("", "mapbuilder-window")
			if err != nil {
				fmt.Fprintln(os.Stderr, "mapbuilder:", err)
				os.Exit(1)
			}
			defer os.RemoveAll(dir)
		}
		cfg.Window = core.Window{Radius: *winRadius, Dir: dir}
		fmt.Printf("bounded-memory window: radius %d tiles, spilling to %s\n", *winRadius, dir)
	}
	if *durDir != "" {
		sp, err := octocache.ParseSyncPolicy(*syncPol)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mapbuilder:", err)
			os.Exit(1)
		}
		cfg.Durable = core.Durable{Dir: *durDir, Sync: sp}
		// Resume the log if one is already there, else start fresh.
		single, _, err := octocache.ScanDurableDir(*durDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mapbuilder:", err)
			os.Exit(1)
		}
		cfg.DurableRecover = single
	}
	m, err := core.New(kind, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mapbuilder:", err)
		os.Exit(1)
	}
	if d, ok := m.(core.Durabler); ok && cfg.Durable.Enabled() {
		if ds := d.DurableStats(); ds.ReplayedBatches > 0 || ds.LastSnapshotSeq > 0 {
			fmt.Printf("recovered durable map from %s: replayed %d WAL batches over snapshot cut %d\n",
				*durDir, ds.ReplayedBatches, ds.LastSnapshotSeq)
		} else {
			fmt.Printf("durable map: logging to %s (sync=%s)\n", *durDir, *syncPol)
		}
	}

	fmt.Printf("building map with %s at %.2fm resolution...\n", m.Name(), *res)
	start := time.Now()
	for _, s := range ds.Scans {
		m.Insert(s.Origin, s.Points)
	}
	m.Close()
	wall := time.Since(start)

	tm := m.Timings()
	fmt.Printf("\nconstruction wall time: %.3fs over %d batches\n", wall.Seconds(), tm.Batches)
	fmt.Printf("  ray tracing:   %8.3fs\n", tm.RayTracing.Seconds())
	fmt.Printf("  cache insert:  %8.3fs\n", tm.CacheInsert.Seconds())
	fmt.Printf("  cache evict:   %8.3fs\n", tm.CacheEvict.Seconds())
	fmt.Printf("  octree update: %8.3fs\n", tm.OctreeUpdate.Seconds())
	fmt.Printf("  enqueue/dequeue: %.3fs / %.3fs\n", tm.Enqueue.Seconds(), tm.Dequeue.Seconds())
	fmt.Printf("  thread-1 wait: %8.3fs\n", tm.Wait.Seconds())
	fmt.Printf("voxels traced: %d, reached octree: %d (%.1f%% absorbed)\n",
		tm.VoxelsTraced, tm.VoxelsToOctree,
		100*(1-float64(tm.VoxelsToOctree)/float64(max64(tm.VoxelsTraced, 1))))
	if cs := m.CacheStats(); cs.Inserts > 0 {
		fmt.Printf("cache: %.1f%% hit rate (%d hits / %d inserts), %d evicted\n",
			100*cs.HitRate(), cs.Hits, cs.Inserts, cs.Evicted)
	}
	if w, ok := m.(core.Windower); ok {
		if ws := w.WindowStats(); ws.Enabled {
			fmt.Printf("window: %d tiles resident, %d spilled (%.1f MB on disk), %d evictions, %d reloads, max pause %v\n",
				ws.ResidentTiles, ws.SpilledTiles, float64(ws.BytesOnDisk)/(1<<20),
				ws.Evictions, ws.Reloads, ws.MaxPause)
		}
	}
	if d, ok := m.(core.Durabler); ok {
		if ds := d.DurableStats(); ds.Enabled {
			fmt.Printf("durable: %d WAL batches logged (%.1f MB on disk), %d snapshots, durable through seq %d\n",
				ds.WALBatches, float64(ds.BytesOnDisk)/(1<<20), ds.Snapshots, ds.Seq)
		}
	}
	snap := m.Snapshot()
	fmt.Printf("map (%s backend): %d nodes, %d leaves, ~%.1f MB\n",
		m.Backend(), snap.NumNodes(), snap.NumLeaves(), float64(snap.MemoryBytes())/(1<<20))

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mapbuilder:", err)
			os.Exit(1)
		}
		n, err := snap.WriteTo(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "mapbuilder:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d bytes)\n", *out, n)
	}
	if *slice != "" {
		bounds := ds.World.Bounds
		s := viz.Sample(snap, bounds.Min, bounds.Max, *sliceZ,
			*res, cfg.Octree.OccupancyThreshold)
		f, err := os.Create(*slice)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mapbuilder:", err)
			os.Exit(1)
		}
		err = s.WritePGM(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "mapbuilder:", err)
			os.Exit(1)
		}
		un, fr, oc := s.Counts()
		fmt.Printf("wrote slice %s at z=%.2f (%d occupied / %d free / %d unknown cells)\n",
			*slice, *sliceZ, oc, fr, un)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
