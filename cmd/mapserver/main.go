// Command mapserver demonstrates the sharded concurrent map service: a
// single octocache.Map shared by several producer goroutines feeding
// scan streams and several querier goroutines probing occupancy and
// casting rays — the multi-client deployment the redesigned public API
// (Options.Shards, Insert, Close) exists for. It prints aggregate and
// per-shard statistics and optionally serializes the merged octree.
//
// Usage:
//
//	mapserver -dataset fr079 -shards 8 -producers 4 -queriers 2
//	mapserver -dataset campus -shards 4 -res 0.4 -out campus.ot
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"octocache"
	"octocache/internal/dataset"
)

func main() {
	var (
		dsName    = flag.String("dataset", "fr079", "dataset: fr079, campus, or newcollege")
		shards    = flag.Int("shards", 8, "shard count (rounded up to a power of two)")
		mode      = flag.String("mode", "parallel", "per-shard pipeline: parallel (background octree applier), serial, or octomap")
		producers = flag.Int("producers", 4, "concurrent scan-inserting goroutines")
		queriers  = flag.Int("queriers", 2, "concurrent query goroutines")
		res       = flag.Float64("res", 0.1, "mapping resolution in meters")
		scale     = flag.Float64("scale", 0.5, "dataset scale (1.0 = paper-sized)")
		backend   = flag.String("backend", "octree", "voxel store backend: octree or grid")
		trace     = flag.String("trace", "dda", "scan tracing: dda (per-ray marching) or boundary (per-batch rasterization)")
		traceW    = flag.Int("trace-workers", 0, "goroutines per scan for the trace stage (0 = serial)")
		out       = flag.String("out", "", "write the merged octree to this file")
		winRadius = flag.Int("window-radius", 0, "bounded-memory window radius in tiles (0 = unbounded)")
		winDir    = flag.String("window-dir", "", "spill directory for evicted tiles (default: a temp dir)")
		durDir    = flag.String("durable-dir", "", "write-ahead log + snapshot directory; recovers any map found there (empty = not durable)")
		syncPol   = flag.String("sync", "none", "WAL sync policy: none (page cache) or batch (fsync per scan)")
		snapEvery = flag.Int("snapshot-every", 64, "background snapshot cadence in batches per shard (0 = only on close)")
	)
	flag.Parse()
	if *producers < 1 || *queriers < 0 {
		fmt.Fprintln(os.Stderr, "mapserver: need producers >= 1 and queriers >= 0")
		os.Exit(1)
	}

	fmt.Printf("generating dataset %s (scale %.2f)...\n", *dsName, *scale)
	ds, err := dataset.Named(*dsName, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mapserver:", err)
		os.Exit(1)
	}
	fmt.Printf("  %d scans, %d points\n", len(ds.Scans), ds.TotalPoints())

	var bk octocache.Backend
	switch *backend {
	case "octree":
		bk = octocache.BackendOctree
	case "grid":
		bk = octocache.BackendGrid
	default:
		fmt.Fprintf(os.Stderr, "mapserver: unknown -backend %q (want octree or grid)\n", *backend)
		os.Exit(1)
	}

	var md octocache.Mode
	switch *mode {
	case "parallel":
		md = octocache.ModeParallel
	case "serial":
		md = octocache.ModeSerial
	case "octomap":
		md = octocache.ModeOctoMap
	default:
		fmt.Fprintf(os.Stderr, "mapserver: unknown -mode %q (want parallel, serial, or octomap)\n", *mode)
		os.Exit(1)
	}

	var window octocache.Window
	if *winRadius > 0 {
		dir := *winDir
		if dir == "" {
			dir, err = os.MkdirTemp("", "mapserver-window")
			if err != nil {
				fmt.Fprintln(os.Stderr, "mapserver:", err)
				os.Exit(1)
			}
			defer os.RemoveAll(dir)
		}
		window = octocache.Window{Radius: *winRadius, Dir: dir}
		fmt.Printf("bounded-memory window: radius %d tiles, spilling to %s\n", *winRadius, dir)
	}

	var tm octocache.TraceMode
	switch *trace {
	case "dda":
		tm = octocache.TraceDDA
	case "boundary":
		tm = octocache.TraceBoundary
	default:
		fmt.Fprintf(os.Stderr, "mapserver: unknown -trace %q (want dda or boundary)\n", *trace)
		os.Exit(1)
	}

	opts := octocache.Options{
		Resolution:   *res,
		Mode:         md,
		Shards:       *shards,
		Backend:      bk,
		MaxRange:     ds.Sensor.MaxRange,
		Trace:        tm,
		TraceWorkers: *traceW,
		Compaction:   octocache.CompactionPolicy{MinFreeFraction: 0.25, MinFreeSlots: 1024},
		Window:       window,
	}
	var m *octocache.Map
	if *durDir != "" {
		var sp octocache.SyncPolicy
		switch *syncPol {
		case "none":
			sp = octocache.SyncNone
		case "batch":
			sp = octocache.SyncEveryBatch
		default:
			fmt.Fprintf(os.Stderr, "mapserver: unknown -sync %q (want none or batch)\n", *syncPol)
			os.Exit(1)
		}
		opts.Durable = octocache.Durable{Sync: sp, SnapshotEvery: *snapEvery}
		existing := hasLogs(*durDir)
		m, err = octocache.Recover(*durDir, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mapserver:", err)
			os.Exit(1)
		}
		if existing {
			dst := m.Stats().Durable
			fmt.Printf("recovered durable map from %s: replayed %d WAL batches, last snapshot cut %d\n",
				*durDir, dst.ReplayedBatches, dst.LastSnapshotSeq)
		} else {
			fmt.Printf("durable map: logging to %s (sync=%s, snapshot every %d batches)\n",
				*durDir, *syncPol, *snapEvery)
		}
	} else {
		m, err = octocache.New(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mapserver:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("serving %d %s-pipeline shards (%s backend) to %d producers and %d queriers...\n",
		m.Shards(), *mode, m.Backend(), *producers, *queriers)

	// Queriers probe scan endpoints (mix of occupied surfaces and not-yet
	// -mapped space) and cast rays from scan origins until producers stop.
	var queries, rays atomic.Int64
	stop := make(chan struct{})
	var qwg sync.WaitGroup
	for q := 0; q < *queriers; q++ {
		qwg.Add(1)
		go func(q int) {
			defer qwg.Done()
			i := q
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := ds.Scans[i%len(ds.Scans)]
				for _, p := range s.Points[:min(32, len(s.Points))] {
					m.Occupied(p)
					queries.Add(1)
				}
				if len(s.Points) > 0 {
					m.CastRay(s.Origin, s.Points[0].Sub(s.Origin), 0, true)
					rays.Add(1)
				}
				i++
			}
		}(q)
	}

	start := time.Now()
	var pwg sync.WaitGroup
	for w := 0; w < *producers; w++ {
		pwg.Add(1)
		go func(w int) {
			defer pwg.Done()
			for i := w; i < len(ds.Scans); i += *producers {
				s := ds.Scans[i]
				if err := m.Insert(s.Origin, s.Points); err != nil {
					fmt.Fprintln(os.Stderr, "mapserver: insert:", err)
					return
				}
			}
		}(w)
	}
	pwg.Wait()
	ingestWall := time.Since(start)
	close(stop)
	qwg.Wait()

	if err := m.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "mapserver:", err)
		os.Exit(1)
	}

	st := m.Stats()
	fmt.Printf("\ningest wall time: %.3fs over %d batches (%.1f Mvox/s traced)\n",
		ingestWall.Seconds(), st.Pipeline.Batches,
		float64(st.Pipeline.VoxelsTraced)/ingestWall.Seconds()/1e6)
	fmt.Printf("served %d point queries and %d ray casts concurrently\n",
		queries.Load(), rays.Load())
	fmt.Printf("cache: %.1f%% hit rate; %d voxels traced, %d reached the octrees\n",
		100*st.Cache.HitRate, st.Pipeline.VoxelsTraced, st.Pipeline.VoxelsToOctree)
	fmt.Printf("stores (%s): %d nodes total, ~%.1f MB across %d shards, arena %.0f%% occupied\n",
		st.Backend, st.Arena.LiveNodes, float64(st.Arena.Bytes)/(1<<20), st.Shards, 100*st.Arena.Occupancy())
	fmt.Printf("compaction: %d runs, %d slots reclaimed (last pause %v)\n",
		st.Compaction.Runs, st.Compaction.SlotsReclaimed, st.Compaction.LastDuration)
	if st.Window.Enabled {
		fmt.Printf("window: %d tiles resident, %d spilled (%.1f MB on disk), %d evictions, %d reloads, max pause %v\n",
			st.Window.ResidentTiles, st.Window.SpilledTiles, float64(st.Window.BytesOnDisk)/(1<<20),
			st.Window.Evictions, st.Window.Reloads, st.Window.MaxPause)
	}
	if st.Durable.Enabled {
		fmt.Printf("durable: %d WAL batches logged (%.1f MB on disk), %d snapshots, durable through seq %d (snapshot cut %d)\n",
			st.Durable.WALBatches, float64(st.Durable.BytesOnDisk)/(1<<20),
			st.Durable.Snapshots, st.Durable.Seq, st.Durable.LastSnapshotSeq)
	}
	fmt.Println("\nper-shard breakdown:")
	fmt.Printf("  %5s  %7s  %9s  %9s  %6s  %8s  %9s  %8s  %7s  %7s  %7s\n",
		"shard", "backend", "nodes", "bytes", "queue", "hit rate", "compacts", "resident", "spilled", "evicted", "wal-seq")
	for _, s := range m.ShardStats() {
		fmt.Printf("  %5d  %7s  %9d  %9d  %6d  %7.1f%%  %9d  %8d  %7d  %7d  %7d\n",
			s.Shard, s.Backend, s.Arena.LiveNodes, s.Arena.Bytes, s.QueueDepth, 100*s.Cache.HitRate, s.Compaction.Runs,
			s.Window.ResidentTiles, s.Window.SpilledTiles, s.Window.Evictions, s.Durable.Seq)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mapserver:", err)
			os.Exit(1)
		}
		n, err := m.WriteTo(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "mapserver:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote merged octree %s (%d bytes)\n", *out, n)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// hasLogs reports whether dir already holds a durable map's log files,
// purely for the startup banner — Recover itself validates the layout.
func hasLogs(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".log" {
			return true
		}
	}
	return false
}
