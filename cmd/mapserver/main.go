// Command mapserver runs the octocache map service — or drives one.
//
// Three modes:
//
//   - -listen <addr> serves the multi-tenant wire protocol on a TCP
//     address: clients create named map tenants, stream scans, query,
//     and download snapshots (see octocache/server and DESIGN.md §16).
//     -metrics exposes per-tenant statistics as JSON over HTTP and
//     -data-dir makes durable tenants survive restarts.
//   - -connect <addr> drives a remote service with a synthetic dataset:
//     it creates (or joins) a tenant, streams scans from -producers
//     concurrent client connections, runs -queriers query loops against
//     it, and can download the finished snapshot with -out.
//   - neither flag runs the original in-process demo: one sharded map,
//     local producer and querier goroutines, full statistics dump.
//
// Usage:
//
//	mapserver -listen :7331 -metrics :7332 -data-dir /var/lib/octocache
//	mapserver -connect localhost:7331 -tenant fr079 -dataset fr079 -out fr079.ot
//	mapserver -dataset campus -shards 4 -res 0.4 -out campus.ot
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"octocache"
	"octocache/client"
	"octocache/internal/dataset"
	"octocache/server"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mapserver:", err)
	os.Exit(1)
}

func main() {
	var (
		// Service mode.
		listen  = flag.String("listen", "", "serve the map service on this TCP address (e.g. :7331)")
		metrics = flag.String("metrics", "", "serve JSON statistics on this HTTP address at /metrics")
		dataDir = flag.String("data-dir", "", "directory for durable tenants (WAL + snapshots + manifests); empty disables them")
		window  = flag.Int("window", 0, "per-connection in-flight insert batches before backpressure (0 = default)")

		// Client mode.
		connect   = flag.String("connect", "", "drive a remote map service at this address instead of running locally")
		tenant    = flag.String("tenant", "demo", "tenant name to create or join on the remote service")
		durable   = flag.Bool("durable", false, "ask the remote service to keep the tenant on disk")
		snapEvery = flag.Int("snapshot-every", 64, "background snapshot cadence in batches per shard (0 = only on close)")

		// Workload shape (client mode and in-process demo).
		dsName    = flag.String("dataset", "fr079", "dataset: fr079, campus, or newcollege")
		shards    = flag.Int("shards", 8, "shard count (rounded up to a power of two)")
		mode      = flag.String("mode", "parallel", "per-shard pipeline: parallel (background octree applier), serial, or octomap")
		producers = flag.Int("producers", 4, "concurrent scan-inserting goroutines (client mode: connections)")
		queriers  = flag.Int("queriers", 2, "concurrent query goroutines")
		res       = flag.Float64("res", 0.1, "mapping resolution in meters")
		scale     = flag.Float64("scale", 0.5, "dataset scale (1.0 = paper-sized)")
		backend   = flag.String("backend", "octree", "voxel store backend: octree or grid")
		trace     = flag.String("trace", "dda", "scan tracing: dda (per-ray marching) or boundary (per-batch rasterization)")
		traceW    = flag.Int("trace-workers", 0, "goroutines per scan for the trace stage (0 = serial, in-process demo only)")
		out       = flag.String("out", "", "write the merged octree to this file")
		winRadius = flag.Int("window-radius", 0, "bounded-memory window radius in tiles (0 = unbounded, in-process demo only)")
		winDir    = flag.String("window-dir", "", "spill directory for evicted tiles (default: a temp dir)")
		durDir    = flag.String("durable-dir", "", "in-process demo: WAL + snapshot directory; recovers any map found there")
		syncPol   = flag.String("sync", "none", "WAL sync policy: none (page cache) or batch (fsync per scan)")
	)
	flag.Parse()

	switch {
	case *listen != "":
		runService(*listen, *metrics, *dataDir, *window)
	case *connect != "":
		runClient(clientRun{
			addr: *connect, tenant: *tenant, durable: *durable,
			dsName: *dsName, scale: *scale, out: *out,
			producers: *producers, queriers: *queriers,
			opts: client.MapOptions{
				Resolution:    *res,
				Shards:        *shards,
				Mode:          parseMode(*mode),
				Backend:       parseBackend(*backend),
				Trace:         parseTrace(*trace),
				Sync:          parseSync(*syncPol),
				Durable:       *durable,
				SnapshotEvery: *snapEvery,
			},
		})
	default:
		runLocal(localRun{
			dsName: *dsName, scale: *scale, out: *out,
			producers: *producers, queriers: *queriers,
			shards: *shards, res: *res, traceWorkers: *traceW,
			mode: parseMode(*mode), backend: parseBackend(*backend),
			trace: parseTrace(*trace), sync: parseSync(*syncPol),
			winRadius: *winRadius, winDir: *winDir,
			durDir: *durDir, snapshotEvery: *snapEvery,
		})
	}
}

// The flag surface leans entirely on the public enum round-trip —
// parse errors print the canonical spellings straight from the parser.

func parseMode(s string) octocache.Mode {
	v, err := octocache.ParseMode(s)
	if err != nil {
		fatal(err)
	}
	return v
}

func parseBackend(s string) octocache.Backend {
	v, err := octocache.ParseBackend(s)
	if err != nil {
		fatal(err)
	}
	return v
}

func parseTrace(s string) octocache.TraceMode {
	v, err := octocache.ParseTraceMode(s)
	if err != nil {
		fatal(err)
	}
	return v
}

func parseSync(s string) octocache.SyncPolicy {
	v, err := octocache.ParseSyncPolicy(s)
	if err != nil {
		fatal(err)
	}
	return v
}

// runService hosts the network service until SIGINT/SIGTERM.
func runService(addr, metricsAddr, dataDir string, window int) {
	s, err := server.New(server.Config{DataDir: dataDir, Window: window})
	if err != nil {
		fatal(err)
	}
	if metricsAddr != "" {
		stop, err := s.ServeMetrics(metricsAddr)
		if err != nil {
			fatal(err)
		}
		defer stop()
		fmt.Printf("metrics on http://%s/metrics\n", metricsAddr)
	}
	if dataDir != "" {
		m := s.Metrics()
		fmt.Printf("durable tenants under %s: %d recovered\n", dataDir, len(m.Tenants))
		for name := range m.Tenants {
			fmt.Printf("  %s\n", name)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("\nshutting down...")
		s.Close()
	}()

	fmt.Printf("map service listening on %s\n", addr)
	if err := s.ListenAndServe(addr); err != nil {
		fatal(err)
	}
}

type clientRun struct {
	addr, tenant        string
	durable             bool
	dsName              string
	scale               float64
	out                 string
	producers, queriers int
	opts                client.MapOptions
}

// runClient streams a synthetic dataset into a remote tenant from
// several connections and reports what the service did with it.
func runClient(r clientRun) {
	if r.producers < 1 || r.queriers < 0 {
		fatal(fmt.Errorf("need producers >= 1 and queriers >= 0"))
	}
	fmt.Printf("generating dataset %s (scale %.2f)...\n", r.dsName, r.scale)
	ds, err := dataset.Named(r.dsName, r.scale)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  %d scans, %d points\n", len(ds.Scans), ds.TotalPoints())
	r.opts.MaxRange = ds.Sensor.MaxRange

	admin, err := client.Dial(r.addr, client.Config{})
	if err != nil {
		fatal(err)
	}
	defer admin.Close()
	info, err := admin.Open(r.tenant, r.opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("tenant %q on %s: %d shards, %s/%s pipeline, res %.2fm, durable=%v\n",
		info.Name, r.addr, info.Shards, info.Mode, info.Backend, info.Resolution, info.Durable)

	// Queriers probe through the admin connection — queries multiplex
	// with the producers' insert streams on the server side.
	var queries, rays atomic.Int64
	stop := make(chan struct{})
	var qwg sync.WaitGroup
	for q := 0; q < r.queriers; q++ {
		qwg.Add(1)
		go func(q int) {
			defer qwg.Done()
			i := q
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := ds.Scans[i%len(ds.Scans)]
				n := min(32, len(s.Points))
				if n > 0 {
					if _, err := admin.OccupiedBatch(s.Points[:n]); err != nil {
						return
					}
					queries.Add(int64(n))
					if _, _, err := admin.CastRay(s.Origin, s.Points[0].Sub(s.Origin), 0, true); err != nil {
						return
					}
					rays.Add(1)
				}
				i++
			}
		}(q)
	}

	start := time.Now()
	var pwg sync.WaitGroup
	perr := make(chan error, r.producers)
	for w := 0; w < r.producers; w++ {
		pwg.Add(1)
		go func(w int) {
			defer pwg.Done()
			c, err := client.Dial(r.addr, client.Config{})
			if err != nil {
				perr <- err
				return
			}
			defer c.Close()
			if _, err := c.Attach(r.tenant); err != nil {
				perr <- err
				return
			}
			for i := w; i < len(ds.Scans); i += r.producers {
				s := ds.Scans[i]
				if err := c.Insert(s.Origin, s.Points); err != nil {
					perr <- err
					return
				}
			}
			if err := c.Flush(); err != nil {
				perr <- err
			}
		}(w)
	}
	pwg.Wait()
	ingestWall := time.Since(start)
	close(stop)
	qwg.Wait()
	close(perr)
	for err := range perr {
		fatal(err)
	}

	fmt.Printf("\nstreamed %d scans over %d connections in %.3fs (%.1f scans/s)\n",
		len(ds.Scans), r.producers, ingestWall.Seconds(),
		float64(len(ds.Scans))/ingestWall.Seconds())
	fmt.Printf("served %d point queries and %d ray casts concurrently\n",
		queries.Load(), rays.Load())

	if r.out != "" {
		f, err := os.Create(r.out)
		if err != nil {
			fatal(err)
		}
		n, err := admin.WriteSnapshot(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("downloaded snapshot to %s (%d bytes)\n", r.out, n)
	}
}

type localRun struct {
	dsName              string
	scale               float64
	out                 string
	producers, queriers int
	shards              int
	res                 float64
	traceWorkers        int
	mode                octocache.Mode
	backend             octocache.Backend
	trace               octocache.TraceMode
	sync                octocache.SyncPolicy
	winRadius           int
	winDir              string
	durDir              string
	snapshotEvery       int
}

// runLocal is the original in-process demo: one sharded map shared by
// producer and querier goroutines, with the full statistics dump.
func runLocal(r localRun) {
	if r.producers < 1 || r.queriers < 0 {
		fatal(fmt.Errorf("need producers >= 1 and queriers >= 0"))
	}
	fmt.Printf("generating dataset %s (scale %.2f)...\n", r.dsName, r.scale)
	ds, err := dataset.Named(r.dsName, r.scale)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  %d scans, %d points\n", len(ds.Scans), ds.TotalPoints())

	var window octocache.Window
	if r.winRadius > 0 {
		dir := r.winDir
		if dir == "" {
			dir, err = os.MkdirTemp("", "mapserver-window")
			if err != nil {
				fatal(err)
			}
			defer os.RemoveAll(dir)
		}
		window = octocache.Window{Radius: r.winRadius, Dir: dir}
		fmt.Printf("bounded-memory window: radius %d tiles, spilling to %s\n", r.winRadius, dir)
	}

	opts := octocache.Options{
		Resolution:   r.res,
		Mode:         r.mode,
		Shards:       r.shards,
		Backend:      r.backend,
		MaxRange:     ds.Sensor.MaxRange,
		Trace:        r.trace,
		TraceWorkers: r.traceWorkers,
		Compaction:   octocache.CompactionPolicy{MinFreeFraction: 0.25, MinFreeSlots: 1024},
		Window:       window,
	}
	var m *octocache.Map
	if r.durDir != "" {
		opts.Durable = octocache.Durable{Sync: r.sync, SnapshotEvery: r.snapshotEvery}
		_, shardLogs, err := octocache.ScanDurableDir(r.durDir)
		if err != nil {
			fatal(err)
		}
		m, err = octocache.Recover(r.durDir, opts)
		if err != nil {
			fatal(err)
		}
		if shardLogs > 0 {
			dst := m.Stats().Durable
			fmt.Printf("recovered durable map from %s: replayed %d WAL batches, last snapshot cut %d\n",
				r.durDir, dst.ReplayedBatches, dst.LastSnapshotSeq)
		} else {
			fmt.Printf("durable map: logging to %s (sync=%s, snapshot every %d batches)\n",
				r.durDir, r.sync, r.snapshotEvery)
		}
	} else {
		m, err = octocache.New(opts)
		if err != nil {
			fatal(err)
		}
	}
	fmt.Printf("serving %d %s-pipeline shards (%s backend) to %d producers and %d queriers...\n",
		m.Shards(), r.mode, m.Backend(), r.producers, r.queriers)

	// Queriers probe scan endpoints (mix of occupied surfaces and not-yet
	// -mapped space) and cast rays from scan origins until producers stop.
	var queries, rays atomic.Int64
	stop := make(chan struct{})
	var qwg sync.WaitGroup
	for q := 0; q < r.queriers; q++ {
		qwg.Add(1)
		go func(q int) {
			defer qwg.Done()
			i := q
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := ds.Scans[i%len(ds.Scans)]
				for _, p := range s.Points[:min(32, len(s.Points))] {
					m.Occupied(p)
					queries.Add(1)
				}
				if len(s.Points) > 0 {
					m.CastRay(s.Origin, s.Points[0].Sub(s.Origin), 0, true)
					rays.Add(1)
				}
				i++
			}
		}(q)
	}

	start := time.Now()
	var pwg sync.WaitGroup
	for w := 0; w < r.producers; w++ {
		pwg.Add(1)
		go func(w int) {
			defer pwg.Done()
			for i := w; i < len(ds.Scans); i += r.producers {
				s := ds.Scans[i]
				if err := m.Insert(s.Origin, s.Points); err != nil {
					fmt.Fprintln(os.Stderr, "mapserver: insert:", err)
					return
				}
			}
		}(w)
	}
	pwg.Wait()
	ingestWall := time.Since(start)
	close(stop)
	qwg.Wait()

	if err := m.Close(); err != nil {
		fatal(err)
	}

	st := m.Stats()
	fmt.Printf("\ningest wall time: %.3fs over %d batches (%.1f Mvox/s traced)\n",
		ingestWall.Seconds(), st.Pipeline.Batches,
		float64(st.Pipeline.VoxelsTraced)/ingestWall.Seconds()/1e6)
	fmt.Printf("served %d point queries and %d ray casts concurrently\n",
		queries.Load(), rays.Load())
	fmt.Printf("cache: %.1f%% hit rate; %d voxels traced, %d reached the octrees\n",
		100*st.Cache.HitRate, st.Pipeline.VoxelsTraced, st.Pipeline.VoxelsToOctree)
	fmt.Printf("stores (%s): %d nodes total, ~%.1f MB across %d shards, arena %.0f%% occupied\n",
		st.Backend, st.Arena.LiveNodes, float64(st.Arena.Bytes)/(1<<20), st.Shards, 100*st.Arena.Occupancy())
	fmt.Printf("compaction: %d runs, %d slots reclaimed (last pause %v)\n",
		st.Compaction.Runs, st.Compaction.SlotsReclaimed, st.Compaction.LastDuration)
	if st.Window.Enabled {
		fmt.Printf("window: %d tiles resident, %d spilled (%.1f MB on disk), %d evictions, %d reloads, max pause %v\n",
			st.Window.ResidentTiles, st.Window.SpilledTiles, float64(st.Window.BytesOnDisk)/(1<<20),
			st.Window.Evictions, st.Window.Reloads, st.Window.MaxPause)
	}
	if st.Durable.Enabled {
		fmt.Printf("durable: %d WAL batches logged (%.1f MB on disk), %d snapshots, durable through seq %d (snapshot cut %d)\n",
			st.Durable.WALBatches, float64(st.Durable.BytesOnDisk)/(1<<20),
			st.Durable.Snapshots, st.Durable.Seq, st.Durable.LastSnapshotSeq)
	}
	fmt.Println("\nper-shard breakdown:")
	fmt.Printf("  %5s  %7s  %9s  %9s  %6s  %8s  %9s  %8s  %7s  %7s  %7s\n",
		"shard", "backend", "nodes", "bytes", "queue", "hit rate", "compacts", "resident", "spilled", "evicted", "wal-seq")
	for _, s := range m.ShardStats() {
		fmt.Printf("  %5d  %7s  %9d  %9d  %6d  %7.1f%%  %9d  %8d  %7d  %7d  %7d\n",
			s.Shard, s.Backend, s.Arena.LiveNodes, s.Arena.Bytes, s.QueueDepth, 100*s.Cache.HitRate, s.Compaction.Runs,
			s.Window.ResidentTiles, s.Window.SpilledTiles, s.Window.Evictions, s.Durable.Seq)
	}

	if r.out != "" {
		f, err := os.Create(r.out)
		if err != nil {
			fatal(err)
		}
		n, err := m.WriteTo(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote merged octree %s (%d bytes)\n", r.out, n)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
