// Command octobench regenerates the paper's evaluation tables and
// figures. Each experiment id corresponds to one artifact (see DESIGN.md
// §4 for the index).
//
// Usage:
//
//	octobench -list
//	octobench -run fig10,fig22 -scale 0.5
//	octobench -run all -scale 1.0 -v
//
// Absolute times depend on the host; the paper's qualitative shape (who
// wins, by what factor) is what the output is meant to reproduce.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"octocache"
	"octocache/internal/bench"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments and exit")
		run     = flag.String("run", "", "comma-separated experiment ids, or 'all'")
		scale   = flag.Float64("scale", 0.25, "workload scale (1.0 = paper-sized, 0.1 = quick)")
		backend = flag.String("backend", "octree", "voxel store backend: octree or grid")
		trace   = flag.String("trace", "dda", "scan tracing: dda (per-ray marching) or boundary (per-batch rasterization)")
		traceW  = flag.Int("trace-workers", 0, "goroutines per scan for the trace stage (0 = serial)")
		verbose = flag.Bool("v", false, "progress output")
		csvDir  = flag.String("csv", "", "also write each table as CSV into this directory")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("Available experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Title)
		}
		if *run == "" && !*list {
			fmt.Println("\nUse -run <ids|all> to execute.")
		}
		return
	}

	var ids []string
	if *run == "all" {
		for _, e := range bench.All() {
			ids = append(ids, e.ID)
		}
	} else {
		for _, id := range strings.Split(*run, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	bk, err := octocache.ParseBackend(*backend)
	if err != nil {
		fmt.Fprintln(os.Stderr, "octobench:", err)
		os.Exit(1)
	}
	tm, err := octocache.ParseTraceMode(*trace)
	if err != nil {
		fmt.Fprintln(os.Stderr, "octobench:", err)
		os.Exit(1)
	}
	opt := bench.Options{
		Scale: *scale, Backend: bk,
		Trace: tm, TraceWorkers: *traceW,
		Verbose: *verbose, Out: os.Stderr,
	}
	exit := 0
	for _, id := range ids {
		e, ok := bench.Find(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "octobench: unknown experiment %q (use -list)\n", id)
			exit = 1
			continue
		}
		fmt.Printf("# %s — %s (scale %.2f)\n\n", e.ID, e.Title, *scale)
		start := time.Now()
		tables, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "octobench: %s failed: %v\n", id, err)
			exit = 1
			continue
		}
		for i, t := range tables {
			t.Fprint(os.Stdout)
			if *csvDir != "" {
				if err := writeCSV(*csvDir, e.ID, i, t); err != nil {
					fmt.Fprintf(os.Stderr, "octobench: csv: %v\n", err)
					exit = 1
				}
			}
		}
		fmt.Printf("(%s completed in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
	os.Exit(exit)
}

// writeCSV stores one result table as <dir>/<id>_<n>.csv.
func writeCSV(dir, id string, n int, t *bench.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(fmt.Sprintf("%s/%s_%d.csv", dir, id, n))
	if err != nil {
		return err
	}
	err = t.WriteCSV(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
