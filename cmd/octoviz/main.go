// Command octoviz inspects a serialized occupancy octree: it prints the
// tree's statistics and renders a horizontal occupancy slice as ASCII art
// or a PGM image. It reads both this repository's .ot container
// (mapbuilder -out) and OctoMap's .bt binary format.
//
// Usage:
//
//	octoviz -in map.ot
//	octoviz -in map.bt -bt -z 1.0 -pgm slice.pgm
package main

import (
	"flag"
	"fmt"
	"os"

	"octocache/internal/core"
	"octocache/internal/viz"
)

func main() {
	var (
		in    = flag.String("in", "", "input file (required)")
		bt    = flag.Bool("bt", false, "input is OctoMap .bt format instead of the .ot container")
		z     = flag.Float64("z", 1.0, "slice height in meters")
		cell  = flag.Float64("cell", 0, "slice sampling pitch (0 = 2x map resolution)")
		pgm   = flag.String("pgm", "", "write the slice as PGM to this file instead of ASCII")
		ascii = flag.Bool("ascii", true, "print the slice as ASCII art")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "octoviz: -in is required")
		flag.Usage()
		os.Exit(1)
	}

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "octoviz:", err)
		os.Exit(1)
	}
	defer f.Close()

	var snap *core.Snapshot
	if *bt {
		snap, err = core.ReadSnapshotBT(f)
	} else {
		snap, err = core.ReadSnapshot(f)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "octoviz:", err)
		os.Exit(1)
	}

	fmt.Printf("%s: resolution %.3fm, %d nodes, %d leaves, ~%.2f MB\n",
		*in, snap.Resolution(), snap.NumNodes(), snap.NumLeaves(),
		float64(snap.MemoryBytes())/(1<<20))
	box, ok := snap.BBox()
	if !ok {
		fmt.Println("tree is empty")
		return
	}
	fmt.Printf("extent: %v .. %v\n", box.Min, box.Max)
	occupied := len(snap.OccupiedLeaves())
	fmt.Printf("occupied leaves: %d\n", occupied)

	pitch := *cell
	if pitch <= 0 {
		pitch = snap.Resolution() * 2
	}
	s := viz.Sample(snap, box.Min, box.Max, *z, pitch,
		snap.Params().OccupancyThreshold)
	un, fr, oc := s.Counts()
	fmt.Printf("slice z=%.2f: %d occupied / %d free / %d unknown cells\n", *z, oc, fr, un)

	if *pgm != "" {
		out, err := os.Create(*pgm)
		if err != nil {
			fmt.Fprintln(os.Stderr, "octoviz:", err)
			os.Exit(1)
		}
		err = s.WritePGM(out)
		if cerr := out.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "octoviz:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *pgm)
	} else if *ascii {
		fmt.Print(s.ASCII())
	}
}
