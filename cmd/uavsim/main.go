// Command uavsim flies a closed-loop autonomous navigation mission (the
// paper's §5.1 setup) in one of the MAVBench-style environments using a
// selected mapping pipeline and UAV, and reports the end-to-end metrics:
// per-cycle compute latency, safe flight velocity, and mission completion
// time.
//
// Usage:
//
//	uavsim -env room -pipeline parallel -uav pelican
//	uavsim -env openland -pipeline octomap -uav spark -res 1.0 -range 8
//	uavsim -env farm -clock virtual   # deterministic modeled latency
//
// The default -clock real measures honest host latency; -clock virtual
// prices each cycle from the pipeline's work counters (internal/clock),
// making the reported mission reproducible bit-for-bit across runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"octocache/internal/clock"
	"octocache/internal/core"
	"octocache/internal/nav"
	"octocache/internal/sensor"
	"octocache/internal/uav"
	"octocache/internal/world"
)

func main() {
	var (
		envName  = flag.String("env", "room", "environment: openland, farm, room, factory")
		pipeline = flag.String("pipeline", "parallel", "pipeline: octomap, serial, parallel, voxelcache, or naive")
		uavName  = flag.String("uav", "pelican", "airframe: pelican or spark")
		res      = flag.Float64("res", 0, "mapping resolution (0 = environment baseline)")
		rng      = flag.Float64("range", 0, "sensing range in meters (0 = environment baseline)")
		rt       = flag.Bool("rt", false, "use deduplicating (OctoMap-RT style) ray tracing")
		slowdown = flag.Float64("slowdown", 200, "platform slowdown factor emulating a Jetson TX2")
		seed     = flag.Int64("seed", 1, "environment seed")
		clockSrc = flag.String("clock", "real", "mission time source: real (honest host latency) or virtual (deterministic modeled latency)")
	)
	flag.Parse()

	var clk clock.Clock
	switch *clockSrc {
	case "real":
		clk = clock.Real{}
	case "virtual":
		clk = clock.NewVirtual()
	default:
		fmt.Fprintf(os.Stderr, "uavsim: unknown clock %q\n", *clockSrc)
		os.Exit(1)
	}

	envs := map[string]struct {
		env        world.Env
		rangeM     float64
		resolution float64
	}{
		"openland": {world.Openland, 8, 1.0},
		"farm":     {world.Farm, 4.5, 0.3},
		"room":     {world.Room, 3, 0.15},
		"factory":  {world.Factory, 6, 0.5},
	}
	setup, ok := envs[*envName]
	if !ok {
		fmt.Fprintf(os.Stderr, "uavsim: unknown environment %q\n", *envName)
		os.Exit(1)
	}
	if *res > 0 {
		setup.resolution = *res
	}
	if *rng > 0 {
		setup.rangeM = *rng
	}

	kind, ok := map[string]core.Kind{
		"octomap":    core.KindOctoMap,
		"serial":     core.KindSerial,
		"parallel":   core.KindParallel,
		"voxelcache": core.KindVoxelCache,
		"naive":      core.KindNaive,
	}[*pipeline]
	if !ok {
		fmt.Fprintf(os.Stderr, "uavsim: unknown pipeline %q\n", *pipeline)
		os.Exit(1)
	}

	var frame uav.Airframe
	switch *uavName {
	case "pelican":
		frame = uav.AscTecPelican()
	case "spark":
		frame = uav.DJISpark()
	default:
		fmt.Fprintf(os.Stderr, "uavsim: unknown uav %q\n", *uavName)
		os.Exit(1)
	}

	cfg := core.DefaultConfig(setup.resolution)
	cfg.MaxRange = setup.rangeM
	cfg.RT = *rt
	cfg.CacheBuckets = 1 << 15
	mapper, err := core.New(kind, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uavsim:", err)
		os.Exit(1)
	}

	w := world.Build(setup.env, *seed)
	fmt.Printf("mission: %s, %s, %s, range %.1fm, resolution %.2fm\n",
		w.Name, mapper.Name(), frame.Name, setup.rangeM, setup.resolution)
	fmt.Printf("  start %v -> goal %v (%.1fm)\n", w.Start, w.Goal, w.Goal.Sub(w.Start).Norm())

	result := nav.Run(nav.Config{
		World:            w,
		Sensor:           sensor.DefaultModel(setup.rangeM, 40, 18),
		Mapper:           mapper,
		UAV:              frame,
		PlatformSlowdown: *slowdown,
		Clock:            clk,
	})

	if !result.Completed {
		fmt.Printf("\nmission INCOMPLETE after %d cycles (flew %.1fm)\n", result.Cycles, result.PathLength)
		os.Exit(2)
	}
	fmt.Printf("\nmission completed in %.1fs (simulated)\n", result.Time)
	fmt.Printf("  cycles:            %d (%d replans)\n", result.Cycles, result.Replans)
	fmt.Printf("  path length:       %.1fm\n", result.PathLength)
	fmt.Printf("  avg velocity:      %.2f m/s\n", result.AvgVelocity)
	fmt.Printf("  avg cycle compute: %.2f ms (TX2-scaled x%.0f)\n",
		result.AvgCompute.Seconds()*1e3, *slowdown)
	fmt.Printf("  collisions:        %d\n", result.Collisions)
	tm := result.Timings
	fmt.Printf("mapping decomposition: raytrace %.3fs, cache insert %.3fs, evict %.3fs, octree %.3fs, wait %.3fs\n",
		tm.RayTracing.Seconds(), tm.CacheInsert.Seconds(), tm.CacheEvict.Seconds(),
		tm.OctreeUpdate.Seconds(), tm.Wait.Seconds())
	if cs := mapper.CacheStats(); cs.Inserts > 0 {
		fmt.Printf("cache hit rate: %.1f%%\n", 100*cs.HitRate())
	}
}
