package octocache

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// fragmentingScans drives a map through a prune-heavy stream: scans from
// several origins grow structure, then repeated re-observation saturates
// free-space voxels to their clamp so whole octants prune, pushing arena
// slots through the free lists.
func fragmentingScans(t testing.TB, m *Map) {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 5; i++ {
		origin := V(0.4*float64(i), 0.3*float64(i%3), 1)
		var pts []Vec3
		for j := 0; j < 250; j++ {
			ang := rng.Float64() * 2 * math.Pi
			r := 1.2 + rng.Float64()*2.2
			pts = append(pts, origin.Add(V(r*math.Cos(ang), r*math.Sin(ang), rng.Float64()-0.5)))
		}
		for rep := 0; rep < 10; rep++ {
			if err := m.Insert(origin, pts); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestCompactShrinksArena runs explicit compaction across the shard ×
// mode matrix: the arena must end dense with strictly less capacity, the
// compaction counters must reflect the run, and queries must be
// untouched.
func TestCompactShrinksArena(t *testing.T) {
	for _, shards := range []int{0, 1, 2, 8} {
		for _, mode := range []Mode{ModeParallel, ModeSerial, ModeOctoMap} {
			t.Run(fmt.Sprintf("shards=%d/mode=%d", shards, mode), func(t *testing.T) {
				opts := Options{Resolution: 0.1, Mode: mode, Shards: shards, CacheBuckets: 1 << 10}
				m := MustNew(opts)
				ref := MustNew(opts)
				defer m.Close()
				defer ref.Close()
				fragmentingScans(t, m)
				fragmentingScans(t, ref)

				before := m.Stats().Arena
				if before.FreeSlots == 0 {
					t.Fatal("stream left no free slots; compaction has nothing to do")
				}
				probes := []Vec3{V(1.5, 0.2, 1), V(0.1, 0.1, 1), V(2.8, -1, 0.7), V(9, 9, 9)}
				type ans struct {
					l float32
					k bool
				}
				want := make([]ans, len(probes))
				for i, p := range probes {
					want[i].l, want[i].k = m.Occupancy(p)
				}

				if err := m.Compact(); err != nil {
					t.Fatalf("Compact: %v", err)
				}
				st := m.Stats()
				if st.Arena.FreeSlots != 0 || st.Arena.LiveNodes != st.Arena.Capacity {
					t.Errorf("arena not dense after Compact: %+v", st.Arena)
				}
				if st.Arena.Capacity >= before.Capacity {
					t.Errorf("capacity did not shrink: %d -> %d", before.Capacity, st.Arena.Capacity)
				}
				if st.Arena.LiveNodes != before.LiveNodes {
					t.Errorf("live nodes changed: %d -> %d", before.LiveNodes, st.Arena.LiveNodes)
				}
				if st.Compaction.Runs == 0 || st.Compaction.SlotsReclaimed == 0 {
					t.Errorf("compaction counters empty after explicit run: %+v", st.Compaction)
				}
				for i, p := range probes {
					if l, k := m.Occupancy(p); l != want[i].l || k != want[i].k {
						t.Errorf("query at %v changed across Compact", p)
					}
				}
				if shards >= 1 {
					for _, s := range m.ShardStats() {
						if s.Arena.FreeSlots != 0 {
							t.Errorf("shard %d not dense: %+v", s.Shard, s.Arena)
						}
					}
				}

				// The compacted map keeps mapping and still agrees with the
				// never-compacted reference.
				extra := []Vec3{V(2, 2, 1.2), V(-1.5, 1, 0.8)}
				if err := m.Insert(V(0, 0, 1), extra); err != nil {
					t.Fatal(err)
				}
				if err := ref.Insert(V(0, 0, 1), extra); err != nil {
					t.Fatal(err)
				}
				if err := m.Close(); err != nil {
					t.Fatal(err)
				}
				if err := ref.Close(); err != nil {
					t.Fatal(err)
				}
				var a, b bytes.Buffer
				if _, err := m.WriteTo(&a); err != nil {
					t.Fatal(err)
				}
				if _, err := ref.WriteTo(&b); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(a.Bytes(), b.Bytes()) {
					t.Error("compacted map serializes differently from the reference")
				}
			})
		}
	}
}

// TestAutoCompactionPolicy exercises Options.Compaction end to end: an
// aggressive policy keeps the arena dense without changing the map, a
// zero policy never runs.
func TestAutoCompactionPolicy(t *testing.T) {
	for _, shards := range []int{0, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			opts := Options{Resolution: 0.1, Shards: shards, CacheBuckets: 1 << 10}
			ref := MustNew(opts)
			opts.Compaction = CompactionPolicy{MinFreeFraction: 0.05, MinFreeSlots: 1}
			m := MustNew(opts)
			fragmentingScans(t, ref)
			fragmentingScans(t, m)

			if runs := m.Stats().Compaction.Runs; runs == 0 {
				t.Error("aggressive policy never compacted")
			}
			if runs := ref.Stats().Compaction.Runs; runs != 0 {
				t.Errorf("zero policy compacted %d times", runs)
			}
			if err := m.Close(); err != nil {
				t.Fatal(err)
			}
			if err := ref.Close(); err != nil {
				t.Fatal(err)
			}
			var a, b bytes.Buffer
			if _, err := m.WriteTo(&a); err != nil {
				t.Fatal(err)
			}
			if _, err := ref.WriteTo(&b); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Error("auto-compaction changed the serialized map")
			}
		})
	}
}

// TestCompactAfterClose pins the lifecycle contract: Compact on a closed
// map returns ErrClosed — no panic, no deadlock — for both the
// single-driver pipelines and the sharded service.
func TestCompactAfterClose(t *testing.T) {
	for _, opts := range []Options{
		{Resolution: 0.1, Mode: ModeSerial, CacheBuckets: 1 << 10},
		{Resolution: 0.1, Mode: ModeParallel, CacheBuckets: 1 << 10},
		{Resolution: 0.1, Mode: ModeOctoMap},
		{Resolution: 0.1, Shards: 2, CacheBuckets: 1 << 10},
	} {
		m := MustNew(opts)
		if err := m.Insert(V(0, 0, 1), scanRing(V(0, 0, 1), 2, 50)); err != nil {
			t.Fatal(err)
		}
		if err := m.Compact(); err != nil {
			t.Fatalf("%+v: Compact on live map: %v", opts, err)
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		if err := m.Compact(); !errors.Is(err, ErrClosed) {
			t.Errorf("%+v: Compact after Close = %v, want ErrClosed", opts, err)
		}
	}
}

// TestCompactRacesClose drives Compact concurrently with Close on a
// sharded map: every call must return nil or ErrClosed, never panic or
// hang.
func TestCompactRacesClose(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		m := MustNew(Options{Resolution: 0.1, Shards: 4, CacheBuckets: 1 << 10})
		if err := m.Insert(V(0, 0, 1), scanRing(V(0, 0, 1), 2, 80)); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := m.Compact(); err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("Compact: %v", err)
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := m.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
		wg.Wait()
	}
}
