package octocache

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// durableScans builds n small deterministic scans around a fixed origin.
func durableScans(n, points int) (Vec3, [][]Vec3) {
	origin := V(0, 0, 0.5)
	rng := rand.New(rand.NewSource(41))
	scans := make([][]Vec3, n)
	for i := range scans {
		pts := make([]Vec3, 0, points)
		for j := 0; j < points; j++ {
			ang := rng.Float64() * 2 * math.Pi
			r := 1 + rng.Float64()*2
			pts = append(pts, origin.Add(V(r*math.Cos(ang), r*math.Sin(ang), rng.Float64()-0.5)))
		}
		scans[i] = pts
	}
	return origin, scans
}

// prefixReference serializes the canonical map content after the first k
// scans: the surviving-prefix replay every recovery is compared against.
// Serialization is backend-, mode-, shard-, and window-invariant, so one
// serial reference serves the whole matrix.
func prefixReference(t *testing.T, origin Vec3, scans [][]Vec3, k int) []byte {
	t.Helper()
	ref := MustNew(Options{Resolution: 0.1, Mode: ModeSerial, CacheBuckets: 1 << 10})
	for _, pts := range scans[:k] {
		if err := ref.Insert(origin, pts); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := ref.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	ref.Close()
	return buf.Bytes()
}

// copyDurableDir snapshots a durable store directory into a fresh temp
// directory — the crash injector's "surviving disk image".
func copyDurableDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func mapBytes(t *testing.T, m *Map) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDurableMatrixCrashRecovery is the crash-injection matrix: every
// backend × mode × shard-count combination runs with the WAL armed, the
// disk image is captured after every admitted batch (a process kill at a
// batch boundary — no Close, no final snapshot), and each image must
// Recover to a map bit-identical (probe queries and serialized bytes) to
// replaying exactly the batches that survived. A mid-stream Checkpoint
// exercises replay-over-snapshot, and the last recovery keeps ingesting
// to prove a recovered map is fully live.
func TestDurableMatrixCrashRecovery(t *testing.T) {
	const batches = 5
	origin, scans := durableScans(batches+1, 60)
	refs := make([][]byte, batches+2)
	for k := 1; k <= batches+1; k++ {
		refs[k] = prefixReference(t, origin, scans, k)
	}

	for _, backend := range []Backend{BackendOctree, BackendGrid} {
		for _, mode := range []Mode{ModeSerial, ModeParallel, ModeOctoMap} {
			for _, shards := range []int{0, 1, 8} {
				name := fmt.Sprintf("%v/mode=%d/shards=%d", backend, mode, shards)
				t.Run(name, func(t *testing.T) {
					dir := t.TempDir()
					opts := Options{
						Resolution: 0.1, Mode: mode, Shards: shards,
						Backend: backend, CacheBuckets: 1 << 10,
						Durable: Durable{Dir: dir},
					}
					m := MustNew(opts)
					cuts := make([]string, batches)
					for i := 0; i < batches; i++ {
						if err := m.Insert(origin, scans[i]); err != nil {
							t.Fatalf("insert %d: %v", i, err)
						}
						if i == 2 {
							if err := m.Checkpoint(); err != nil {
								t.Fatalf("checkpoint: %v", err)
							}
						}
						cuts[i] = copyDurableDir(t, dir)
					}
					if ds := m.Stats().Durable; !ds.Enabled || ds.WALBatches == 0 {
						t.Fatalf("durable stats not accruing: %+v", ds)
					}
					m.Close()

					recOpts := opts
					recOpts.Durable.Dir = "" // inherit the recovery dir
					for i, cut := range cuts {
						r, err := Recover(cut, recOpts)
						if err != nil {
							t.Fatalf("cut %d: Recover: %v", i, err)
						}
						if got := mapBytes(t, r); !bytes.Equal(got, refs[i+1]) {
							t.Fatalf("cut %d: recovered bytes differ from %d-batch prefix replay", i, i+1)
						}
						// The aggregate LastSnapshotSeq is the minimum over
						// shards (a shard that saw no voxels pins it at 0),
						// so only the single-driver layout makes the
						// snapshot-cut recovery observable here.
						ds := r.Stats().Durable
						if shards == 0 && i >= 3 && ds.LastSnapshotSeq == 0 {
							t.Fatalf("cut %d: snapshot cut not recovered: %+v", i, ds)
						}
						if i == batches-1 {
							// A recovered map must remain fully live.
							if err := r.Insert(origin, scans[batches]); err != nil {
								t.Fatalf("post-recovery insert: %v", err)
							}
							if got := mapBytes(t, r); !bytes.Equal(got, refs[batches+1]) {
								t.Fatal("post-recovery insert diverged from reference")
							}
						}
						r.Close()
					}
				})
			}
		}
	}
}

// TestDurableTruncationSweep kills the log at arbitrary byte offsets —
// including mid-record, mid-header, and mid-CRC — and asserts recovery
// is always the longest surviving prefix of admitted batches: the
// recovered sequence number K is read back from Stats().Durable and the
// map's bytes must equal the K-batch replay exactly. A committed
// snapshot at batch 3 floors K at 3 no matter how short the log is cut.
func TestDurableTruncationSweep(t *testing.T) {
	const batches = 7
	origin, scans := durableScans(batches, 20)
	refs := make(map[uint64][]byte)
	for k := 1; k <= batches; k++ {
		refs[uint64(k)] = prefixReference(t, origin, scans, k)
	}

	for _, backend := range []Backend{BackendOctree, BackendGrid} {
		t.Run(fmt.Sprint(backend), func(t *testing.T) {
			dir := t.TempDir()
			opts := Options{
				Resolution: 0.1, Mode: ModeSerial, Backend: backend,
				CacheBuckets: 1 << 10, Durable: Durable{Dir: dir},
			}
			m := MustNew(opts)
			for i, pts := range scans {
				if err := m.Insert(origin, pts); err != nil {
					t.Fatal(err)
				}
				if i == 2 {
					if err := m.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
			}
			// No Close: the crash image keeps its live WAL tail.
			base := copyDurableDir(t, dir)
			m.Close()

			logRaw, err := os.ReadFile(filepath.Join(base, "map.log"))
			if err != nil {
				t.Fatal(err)
			}
			snapRaw, err := os.ReadFile(filepath.Join(base, "map.snap"))
			if err != nil {
				t.Fatal(err)
			}

			recOpts := opts
			recOpts.Durable.Dir = ""
			work := t.TempDir()
			recoverAt := func(off int) *Map {
				t.Helper()
				if err := os.WriteFile(filepath.Join(work, "map.log"), logRaw[:off], 0o644); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(work, "map.snap"), snapRaw, 0o644); err != nil {
					t.Fatal(err)
				}
				r, err := Recover(work, recOpts)
				if err != nil {
					t.Fatalf("offset %d: Recover: %v", off, err)
				}
				return r
			}

			// Every byte offset across the last two frames, a coarse stride
			// across the rest (every offset is valid; the stride only bounds
			// runtime). Offsets below the 8-byte file magic are rejected as
			// a foreign file rather than recovered — separate test below.
			offsets := map[int]bool{8: true, len(logRaw): true}
			for off := 8; off < len(logRaw); off += 131 {
				offsets[off] = true
			}
			tail := len(logRaw) - 350
			if tail < 8 {
				tail = 8
			}
			for off := tail; off <= len(logRaw); off++ {
				offsets[off] = true
			}
			for off := range offsets {
				r := recoverAt(off)
				ds := r.Stats().Durable
				if ds.Seq < 3 || ds.Seq > batches {
					t.Fatalf("offset %d: recovered seq %d outside [3, %d]", off, ds.Seq, batches)
				}
				if got := mapBytes(t, r); !bytes.Equal(got, refs[ds.Seq]) {
					t.Fatalf("offset %d: recovered map differs from %d-batch prefix replay", off, ds.Seq)
				}
				r.Close()
			}

			// A flipped byte mid-frame ends the replayable prefix at the
			// corrupted frame, exactly like a truncation there.
			corrupt := make([]byte, len(logRaw))
			copy(corrupt, logRaw)
			corrupt[len(corrupt)-100] ^= 0xff
			if err := os.WriteFile(filepath.Join(work, "map.log"), corrupt, 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(work, "map.snap"), snapRaw, 0o644); err != nil {
				t.Fatal(err)
			}
			r, err := Recover(work, recOpts)
			if err != nil {
				t.Fatalf("corrupt frame: Recover: %v", err)
			}
			ds := r.Stats().Durable
			if got := mapBytes(t, r); !bytes.Equal(got, refs[ds.Seq]) {
				t.Fatalf("corrupt frame: recovered map differs from %d-batch prefix replay", ds.Seq)
			}
			r.Close()
		})
	}
}

// TestDurableCleanShutdownRecovery: Close commits a final consistent-cut
// snapshot, so a cleanly closed map recovers with zero batches to replay
// and identical bytes.
func TestDurableCleanShutdownRecovery(t *testing.T) {
	origin, scans := durableScans(4, 40)
	want := prefixReference(t, origin, scans, 4)

	for _, shards := range []int{0, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			opts := Options{
				Resolution: 0.1, Shards: shards, CacheBuckets: 1 << 10,
				Durable: Durable{Dir: dir},
			}
			m := MustNew(opts)
			for _, pts := range scans {
				if err := m.Insert(origin, pts); err != nil {
					t.Fatal(err)
				}
			}
			m.Close()

			recOpts := opts
			recOpts.Durable.Dir = ""
			r, err := Recover(dir, recOpts)
			if err != nil {
				t.Fatal(err)
			}
			ds := r.Stats().Durable
			if ds.ReplayedBatches != 0 {
				t.Errorf("clean shutdown replayed %d batches; want 0", ds.ReplayedBatches)
			}
			if shards == 0 && ds.LastSnapshotSeq == 0 {
				t.Errorf("clean shutdown left no snapshot: %+v", ds)
			}
			if got := mapBytes(t, r); !bytes.Equal(got, want) {
				t.Error("clean-shutdown recovery diverged from reference")
			}
			r.Close()
		})
	}
}

// TestDurableWindowSharedLog arms Window and Durable together: the spill
// frames and the WAL share one log per pipeline, recovery must still be
// bit-identical, and the two stats views must agree on the shared file.
func TestDurableWindowSharedLog(t *testing.T) {
	origin, scans := durableScans(5, 60)
	want := prefixReference(t, origin, scans, 5)

	dir := t.TempDir()
	opts := Options{
		Resolution: 0.1, Mode: ModeSerial, CacheBuckets: 1 << 10,
		Durable: Durable{Dir: dir, SnapshotEvery: 2},
		// Tight window + cap forces spills into the same log the WAL
		// writes to. Window.Dir stays empty: it inherits Durable.Dir.
		Window: Window{Radius: 2, TileDepth: 13, MaxResidentTiles: 4},
	}
	m := MustNew(opts)
	for _, pts := range scans {
		if err := m.Insert(origin, pts); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if !st.Window.Enabled || !st.Durable.Enabled {
		t.Fatalf("both policies should be live: %+v", st)
	}
	if st.Window.BytesOnDisk != st.Durable.BytesOnDisk {
		t.Errorf("window (%d) and durable (%d) disagree on the shared log size",
			st.Window.BytesOnDisk, st.Durable.BytesOnDisk)
	}
	if entries, err := os.ReadDir(dir); err == nil {
		logs := 0
		for _, e := range entries {
			if filepath.Ext(e.Name()) == ".log" {
				logs++
			}
		}
		if logs != 1 {
			t.Errorf("expected one shared log, found %d", logs)
		}
	}
	base := copyDurableDir(t, dir)
	m.Close()

	recOpts := opts
	recOpts.Durable.Dir = ""
	recOpts.Window.Dir = ""
	r, err := Recover(base, recOpts)
	if err != nil {
		t.Fatal(err)
	}
	if got := mapBytes(t, r); !bytes.Equal(got, want) {
		t.Error("windowed durable recovery diverged from reference")
	}
	r.Close()
}

// TestRecoverLayoutValidation: Recover checks the requested shape
// against the on-disk layout before opening any log, so a mismatched
// Shards option fails loudly instead of silently starting a fresh map.
func TestRecoverLayoutValidation(t *testing.T) {
	origin, scans := durableScans(1, 20)

	single := t.TempDir()
	m := MustNew(Options{Resolution: 0.1, CacheBuckets: 1 << 10, Durable: Durable{Dir: single}})
	m.Insert(origin, scans[0])
	m.Close()
	if _, err := Recover(single, Options{Resolution: 0.1, Shards: 4, CacheBuckets: 1 << 10}); err == nil {
		t.Error("recovering a single-driver dir with Shards=4 should fail")
	}

	sharded := t.TempDir()
	m = MustNew(Options{Resolution: 0.1, Shards: 4, CacheBuckets: 1 << 10, Durable: Durable{Dir: sharded}})
	m.Insert(origin, scans[0])
	m.Close()
	if _, err := Recover(sharded, Options{Resolution: 0.1, CacheBuckets: 1 << 10}); err == nil {
		t.Error("recovering a sharded dir with Shards=0 should fail")
	}
	if _, err := Recover(sharded, Options{Resolution: 0.1, Shards: 8, CacheBuckets: 1 << 10}); err == nil {
		t.Error("recovering a 4-shard dir with Shards=8 should fail")
	}
	if _, err := Recover(sharded, Options{Resolution: 0.1, Shards: 3, CacheBuckets: 1 << 10}); err != nil {
		t.Errorf("Shards=3 rounds up to the on-disk 4: %v", err)
	}

	// An empty directory is a fresh map, so services can Recover
	// unconditionally at startup.
	fresh, err := Recover(t.TempDir(), Options{Resolution: 0.1, CacheBuckets: 1 << 10})
	if err != nil {
		t.Fatalf("recovering an empty dir should start fresh: %v", err)
	}
	fresh.Close()
}

// TestDurableStickyError: a failed WAL append wears ErrDurable, stops
// further ingestion, and keeps the map queryable.
func TestDurableStickyError(t *testing.T) {
	origin, scans := durableScans(2, 30)
	dir := t.TempDir()
	m := MustNew(Options{Resolution: 0.1, CacheBuckets: 1 << 10, Durable: Durable{Dir: dir}})
	if err := m.Insert(origin, scans[0]); err != nil {
		t.Fatal(err)
	}
	probe := scans[0][0]
	occBefore, knownBefore := m.Occupancy(probe)

	// Yank the log out from under the store: the next append must fail.
	if err := os.Remove(filepath.Join(dir, "map.log")); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "map.log"), 0o755); err != nil {
		t.Fatal(err)
	}
	// Appends write through the already-open fd, so force the failure
	// via checkpoint (snapshot install renames into the directory).
	err := m.Checkpoint()
	if err == nil {
		t.Skip("filesystem allowed the snapshot install; cannot inject failure")
	}
	if !errors.Is(err, ErrDurable) {
		t.Fatalf("checkpoint error %v is not ErrDurable", err)
	}
	if err := m.Insert(origin, scans[1]); !errors.Is(err, ErrDurable) {
		t.Fatalf("insert after durable failure = %v; want ErrDurable", err)
	}
	if occ, known := m.Occupancy(probe); occ != occBefore || known != knownBefore {
		t.Error("map stopped answering queries after durable failure")
	}
}
