package octocache

import (
	"fmt"

	"octocache/internal/core"
)

// This file is the one home of the public enums' string forms: every
// Parse* constructor and String() round-trip exactly
// (Parse*(v.String()) == v), the cmd/ flag surfaces use them, and the
// network handshake (octocache/server, octocache/client) carries the
// same spellings — no tool or protocol hand-rolls its own switch.

// String returns the flag spelling of the mode: "parallel", "serial",
// or "octomap".
func (m Mode) String() string {
	switch m {
	case ModeParallel:
		return "parallel"
	case ModeSerial:
		return "serial"
	case ModeOctoMap:
		return "octomap"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ParseMode maps the flag spellings "parallel", "serial", and
// "octomap" to modes.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "parallel":
		return ModeParallel, nil
	case "serial":
		return ModeSerial, nil
	case "octomap":
		return ModeOctoMap, nil
	default:
		return 0, fmt.Errorf("octocache: unknown mode %q (want parallel, serial, or octomap)", s)
	}
}

// ParseBackend maps the flag spellings "octree" and "grid" to backends
// — the inverse of Backend.String.
func ParseBackend(s string) (Backend, error) { return core.ParseBackendKind(s) }

// ParseTraceMode maps the flag spellings "dda" and "boundary" to trace
// modes — the inverse of TraceMode.String.
func ParseTraceMode(s string) (TraceMode, error) {
	switch s {
	case "dda":
		return TraceDDA, nil
	case "boundary":
		return TraceBoundary, nil
	default:
		return 0, fmt.Errorf("octocache: unknown trace mode %q (want dda or boundary)", s)
	}
}

// ParseSyncPolicy maps the flag spellings "none" and "batch" to WAL
// sync policies — the inverse of SyncPolicy.String.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "none":
		return SyncNone, nil
	case "batch":
		return SyncEveryBatch, nil
	default:
		return 0, fmt.Errorf("octocache: unknown sync policy %q (want none or batch)", s)
	}
}
