package octocache_test

import (
	"fmt"
	"math"

	"octocache"
)

// ExampleMap builds a small map from one scan and queries it.
func ExampleMap() {
	m := octocache.MustNew(octocache.Options{
		Resolution: 0.1,
		Mode:       octocache.ModeSerial,
		MaxRange:   10,
	})
	defer m.Close()

	// One scan: a wall of points 3 m in front of the sensor.
	origin := octocache.V(0, 0, 1)
	var points []octocache.Vec3
	for y := -1.0; y <= 1.0; y += 0.05 {
		points = append(points, octocache.V(3, y, 1))
	}
	m.Insert(origin, points)

	fmt.Println("wall occupied:", m.Occupied(octocache.V(3, 0, 1)))
	fmt.Println("path occupied:", m.Occupied(octocache.V(1.5, 0, 1)))
	_, known := m.Occupancy(octocache.V(5, 0, 1))
	fmt.Println("behind wall known:", known)
	// Output:
	// wall occupied: true
	// path occupied: false
	// behind wall known: false
}

// ExampleProbability converts a queried log-odds value to a probability.
func ExampleProbability() {
	m := octocache.MustNew(octocache.Options{Resolution: 0.1})
	defer m.Close()
	m.Insert(octocache.V(0, 0, 0), []octocache.Vec3{octocache.V(2, 0, 0)})

	l, _ := m.Occupancy(octocache.V(2, 0, 0))
	p := octocache.Probability(l)
	fmt.Printf("P(occupied) = %.1f\n", math.Round(p*10)/10)
	// Output:
	// P(occupied) = 0.7
}

// ExampleMap_stats shows the cache absorbing repeated observations.
func ExampleMap_stats() {
	m := octocache.MustNew(octocache.Options{
		Resolution:   0.1,
		Mode:         octocache.ModeSerial,
		CacheBuckets: 1 << 12,
	})
	origin := octocache.V(0, 0, 1)
	points := []octocache.Vec3{octocache.V(3, 0, 1), octocache.V(3, 0.5, 1)}
	for i := 0; i < 100; i++ {
		m.Insert(origin, points)
	}
	m.Close()
	st := m.Stats()
	fmt.Println("hit rate above 90%:", st.Cache.HitRate > 0.9)
	fmt.Println("octree writes below traced:", st.Pipeline.VoxelsToOctree < st.Pipeline.VoxelsTraced)
	// Output:
	// hit rate above 90%: true
	// octree writes below traced: true
}
