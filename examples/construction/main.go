// Construction: the paper's 3D environment construction task (§5.2) in
// miniature — replay a synthetic scan dataset through vanilla OctoMap and
// both OctoCache pipelines and compare construction time, stage
// decomposition, and cache behaviour.
//
//	go run ./examples/construction [-dataset fr079] [-scale 0.3] [-res 0.1]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"octocache/internal/core"
	"octocache/internal/dataset"
)

func main() {
	dsName := flag.String("dataset", "fr079", "fr079, campus, or newcollege")
	scale := flag.Float64("scale", 0.3, "dataset scale")
	res := flag.Float64("res", 0.1, "mapping resolution (m)")
	flag.Parse()

	ds, err := dataset.Named(*dsName, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("dataset %s: %d scans, %d points, resolution %.2fm\n\n",
		*dsName, len(ds.Scans), ds.TotalPoints(), *res)

	cfg := core.DefaultConfig(*res)
	cfg.MaxRange = ds.Sensor.MaxRange
	cfg.CacheBuckets = 1 << 15

	var octomapTime time.Duration
	for _, kind := range []core.Kind{core.KindOctoMap, core.KindSerial, core.KindParallel} {
		m := core.MustNew(kind, cfg)
		start := time.Now()
		for _, s := range ds.Scans {
			m.Insert(s.Origin, s.Points)
		}
		m.Close()
		wall := time.Since(start)
		if kind == core.KindOctoMap {
			octomapTime = wall
		}

		tm := m.Timings()
		fmt.Printf("%-20s %8.3fs wall (%.2fx vs octomap)\n",
			m.Name(), wall.Seconds(), octomapTime.Seconds()/wall.Seconds())
		fmt.Printf("  raytrace %.3fs | cache insert %.3fs | evict %.3fs | octree %.3fs | wait %.3fs\n",
			tm.RayTracing.Seconds(), tm.CacheInsert.Seconds(), tm.CacheEvict.Seconds(),
			tm.OctreeUpdate.Seconds(), tm.Wait.Seconds())
		fmt.Printf("  voxels traced %d -> octree %d", tm.VoxelsTraced, tm.VoxelsToOctree)
		if cs := m.CacheStats(); cs.Inserts > 0 {
			fmt.Printf(" | cache hit rate %.1f%%", 100*cs.HitRate())
		}
		fmt.Printf(" | tree %d nodes\n\n", m.Snapshot().NumNodes())
	}
}
