// Dynamic: demonstrates the clamped log-odds model in a changing scene —
// the reason OctoMap bounds accumulated occupancy (§2.2) and a behaviour
// OctoCache must preserve exactly. A crossing vehicle occupies voxels on
// the sensor's line of sight; after it passes, contradicting scans must
// flip those voxels back to free within a handful of frames, identically
// under OctoMap and OctoCache.
//
//	go run ./examples/dynamic
package main

import (
	"fmt"

	"octocache/internal/core"
	"octocache/internal/geom"
	"octocache/internal/sensor"
	"octocache/internal/world"
)

func main() {
	// Scene: a back wall at x=10 and a moving block crossing the view.
	block := &world.Moving{
		Base:     world.B(geom.V(4, -8, 0), geom.V(5, -6, 3)),
		Velocity: geom.V(0, 2, 0), // crosses y=0 around t≈3.5
	}
	w := &world.World{
		Name:   "crossing",
		Bounds: geom.Box(geom.V(-1, -10, -1), geom.V(12, 10, 5)),
		Obstacles: []world.Obstacle{
			world.B(geom.V(10, -10, 0), geom.V(10.5, 10, 4)), // back wall
			block,
		},
	}
	sens := sensor.DefaultModel(15, 49, 17) // odd ray counts give an exact boresight ray
	origin := geom.V(0, 0, 1.5)
	watch := geom.V(4.1, 0, 1.5) // a voxel on the block front face as it crosses

	mappers := []core.Mapper{
		core.MustNew(core.KindOctoMap, core.DefaultConfig(0.2)),
		core.MustNew(core.KindParallel, core.DefaultConfig(0.2)),
	}

	fmt.Println("t(s)   block y    octomap@watch  octocache@watch  agree")
	for frame := 0; frame <= 22; frame++ {
		t := float64(frame) * 0.5
		w.SetTime(t)
		pts := sens.Scan(w, geom.Pose{Position: origin}, nil)
		states := make([]string, len(mappers))
		for i, m := range mappers {
			m.Insert(origin, pts)
			l, known := m.Occupancy(watch)
			switch {
			case !known:
				states[i] = "unknown"
			case l >= 0:
				states[i] = "OCCUPIED"
			default:
				states[i] = "free"
			}
		}
		blockY := block.Bounds().Center().Y
		fmt.Printf("%4.1f   %+6.1f     %-13s  %-15s  %v\n",
			t, blockY, states[0], states[1], states[0] == states[1])
	}
	for _, m := range mappers {
		m.Close()
	}
	fmt.Println("\nThe watch voxel flips free→OCCUPIED as the block crosses and back to free")
	fmt.Println("after it leaves — with bit-identical answers from both pipelines, because the")
	fmt.Println("cache accumulates the same clamped log-odds the octree would.")
}
