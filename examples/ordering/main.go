// Ordering: Figure 10 in miniature — demonstrates the paper's §4.3
// theorem empirically. A fixed set of voxels is inserted into an empty
// octree in several orders; Morton order minimizes the locality
// functional F(S) and achieves the fastest insertion.
//
//	go run ./examples/ordering [-n 200000]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"octocache/internal/core"
	"octocache/internal/morton"
	"octocache/internal/voxel"
)

func main() {
	n := flag.Int("n", 200000, "number of voxels to insert")
	flag.Parse()

	// Voxels clustered into random blobs, like obstacle surfaces.
	rng := rand.New(rand.NewSource(42))
	keys := make([]voxel.Key, 0, *n)
	for len(keys) < *n {
		cx, cy, cz := rng.Intn(1<<16), rng.Intn(1<<16), rng.Intn(1<<16)
		for i := 0; i < 500 && len(keys) < *n; i++ {
			keys = append(keys, voxel.Key{
				X: uint16(cx + rng.Intn(64)),
				Y: uint16(cy + rng.Intn(64)),
				Z: uint16(cz + rng.Intn(8)),
			})
		}
	}

	orders := []struct {
		name    string
		arrange func([]voxel.Key) []voxel.Key
	}{
		{"random", func(ks []voxel.Key) []voxel.Key {
			out := append([]voxel.Key(nil), ks...)
			rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
			return out
		}},
		{"original", func(ks []voxel.Key) []voxel.Key { return ks }},
		{"morton", func(ks []voxel.Key) []voxel.Key {
			out := append([]voxel.Key(nil), ks...)
			sort.Slice(out, func(i, j int) bool { return out[i].Morton() < out[j].Morton() })
			return out
		}},
	}

	fmt.Printf("inserting %d voxels into an empty 16-level octree:\n\n", len(keys))
	fmt.Printf("%-10s %12s %14s\n", "order", "ns/voxel", "F(S)")
	for _, o := range orders {
		seq := o.arrange(keys)
		codes := make([]uint64, len(seq))
		for i, k := range seq {
			codes[i] = k.Morton()
		}
		f := morton.F(codes, 16)

		tree := core.NewTree(voxel.DefaultParams(0.05))
		start := time.Now()
		for _, k := range seq {
			tree.UpdateOccupied(k)
		}
		el := time.Since(start)
		fmt.Printf("%-10s %12.1f %14d\n", o.name, float64(el.Nanoseconds())/float64(len(seq)), f)
	}
	fmt.Println("\nlower F(S) = more shared ancestors between consecutive inserts = faster updates;")
	fmt.Println("Morton order provably minimizes F(S) (paper §4.3).")
}
