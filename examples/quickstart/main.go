// Quickstart: build an occupancy map from a handful of synthetic scans
// and query it — the smallest useful OctoCache program.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math"

	"octocache"
)

func main() {
	// A 10 cm map with the full OctoCache pipeline (cache + Morton
	// eviction + background octree updates). Automatic arena compaction
	// keeps the octree dense when pruning churns slots.
	m, err := octocache.New(octocache.Options{
		Resolution: 0.10,
		Mode:       octocache.ModeParallel,
		MaxRange:   10,
		Compaction: octocache.CompactionPolicy{MinFreeFraction: 0.25, MinFreeSlots: 1024},
	})
	if err != nil {
		panic(err)
	}

	// Simulate a sensor in the middle of a circular room of radius 4 m:
	// each scan returns points on the wall.
	sensor := octocache.V(0, 0, 1.2)
	for scan := 0; scan < 10; scan++ {
		var points []octocache.Vec3
		for i := 0; i < 360; i++ {
			ang := float64(i) * math.Pi / 180
			points = append(points, octocache.V(4*math.Cos(ang), 4*math.Sin(ang), 1.2))
		}
		m.Insert(sensor, points)
	}

	// Queries are OctoMap-consistent: the wall is occupied, the interior
	// is known free, and space behind the wall is unknown.
	wall := octocache.V(4, 0, 1.2)
	inside := octocache.V(2, 0, 1.2)
	behind := octocache.V(6, 0, 1.2)

	fmt.Println("wall occupied:  ", m.Occupied(wall))
	if l, known := m.Occupancy(inside); known {
		fmt.Printf("inside occupied: %v (P=%.2f)\n", m.Occupied(inside), octocache.Probability(l))
	}
	_, known := m.Occupancy(behind)
	fmt.Println("behind known:   ", known)

	m.Close()
	st := m.Stats()
	fmt.Printf("\n%d scans -> %d voxel observations, %.1f%% absorbed by the cache\n",
		st.Pipeline.Batches, st.Pipeline.VoxelsTraced,
		100*(1-float64(st.Pipeline.VoxelsToOctree)/float64(st.Pipeline.VoxelsTraced)))
	fmt.Printf("cache hit rate %.1f%%, octree %d nodes (~%.2f MB), arena %.0f%% occupied\n",
		100*st.Cache.HitRate, st.Arena.LiveNodes, float64(st.Arena.Bytes)/(1<<20),
		100*st.Arena.Occupancy())
}
