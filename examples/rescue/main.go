// Rescue: a search-and-rescue style sweep — the time-critical mission
// class the paper's introduction motivates. The UAV flies a survey
// pattern over the farm environment building a map as it goes, then the
// finished map is rendered as an occupancy slice and the coverage and
// energy budget are reported for OctoMap vs OctoCache.
//
//	go run ./examples/rescue
package main

import (
	"fmt"
	"math"
	"time"

	"octocache/internal/clock"
	"octocache/internal/core"
	"octocache/internal/geom"
	"octocache/internal/sensor"
	"octocache/internal/uav"
	"octocache/internal/viz"
	"octocache/internal/world"
)

// surveyMission flies a fixed lawnmower pattern (no planner: the survey
// path is prescribed) and returns the mapper plus the simulated mission
// time under the velocity roofline. Per-step mapping latency comes from
// the deterministic virtual clock (internal/clock), priced from the work
// counters each Insert actually accrued, so the printed survey times and
// the OctoMap-vs-OctoCache gap are identical on every run and machine.
func surveyMission(kind core.Kind) (core.Mapper, float64) {
	w := world.Build(world.Farm, 1)
	sens := sensor.DefaultModel(6, 48, 20)
	frame := uav.AscTecPelican()

	cfg := core.DefaultConfig(0.3)
	cfg.MaxRange = 6
	cfg.CacheBuckets = 1 << 15
	m := core.MustNew(kind, cfg)

	// Lawnmower waypoints across the farm at 2 m altitude.
	var wps []geom.Vec3
	for i, y := 0, -18.0; y <= 18; i, y = i+1, y+6 {
		x0, x1 := 2.0, 48.0
		if i%2 == 1 {
			x0, x1 = x1, x0
		}
		wps = append(wps, geom.V(x0, y, 2), geom.V(x1, y, 2))
	}

	const slowdown = 200.0
	vc := clock.NewVirtual()
	simTime := 0.0
	pos := wps[0]
	for _, wp := range wps[1:] {
		for pos.Dist(wp) > 0.5 {
			dir := wp.Sub(pos).Normalize()
			pose := geom.Pose{Position: pos, Yaw: math.Atan2(dir.Y, dir.X), Pitch: -0.25}

			// Perception: scan and update the map; the modeled mapping
			// latency (priced from the counters this Insert accrued)
			// feeds the velocity roofline.
			prev := m.WorkCounters()
			pts := sens.Scan(w, pose, nil)
			m.Insert(pos, pts)
			cur := m.WorkCounters()
			compute := vc.CycleCompute(vc.Now(), clock.Work{
				Points:       int64(len(pts)),
				VoxelsTraced: cur.VoxelsTraced - prev.VoxelsTraced,
				OctreeWrites: cur.VoxelsToOctree - prev.VoxelsToOctree,
			}).Seconds() * slowdown

			tResp := frame.SensorLatency() + compute
			v := frame.MaxSafeVelocity(6, tResp)
			dt := math.Max(frame.SensorLatency(), compute)
			step := math.Min(v*dt, pos.Dist(wp))
			pos = pos.Add(dir.Scale(step))
			simTime += dt
			vc.Advance(time.Duration(dt * float64(time.Second)))
		}
	}
	m.Close()
	return m, simTime
}

func main() {
	fmt.Println("search-and-rescue survey over the farm environment (lawnmower sweep)")
	fmt.Println()
	frame := uav.AscTecPelican()

	var baseTime float64
	for _, kind := range []core.Kind{core.KindOctoMap, core.KindParallel} {
		m, simTime := surveyMission(kind)
		if kind == core.KindOctoMap {
			baseTime = simTime
		}
		st := m.Timings()
		fmt.Printf("%s:\n", m.Name())
		fmt.Printf("  survey time  %.1fs", simTime)
		if kind != core.KindOctoMap {
			fmt.Printf("  (%.0f%% faster)", 100*(1-simTime/baseTime))
		}
		fmt.Println()
		fmt.Printf("  energy       %.1f kJ\n", frame.MissionEnergy(simTime)/1e3)
		fmt.Printf("  scans        %d, voxels traced %d\n", st.Batches, st.VoxelsTraced)
		if cs := m.CacheStats(); cs.Inserts > 0 {
			fmt.Printf("  cache hits   %.1f%%\n", 100*cs.HitRate())
		}

		if kind == core.KindParallel {
			// Render the finished map: top-down slice at flight altitude,
			// restricted to the surveyed area.
			s := viz.Sample(m.Snapshot(),
				geom.V(0, -20, 0), geom.V(50, 20, 0), 1.0, 0.6, 0)
			fmt.Println("\noccupancy slice at z=1m ('#' occupied, '.' free, ' ' unknown):")
			fmt.Print(s.ASCII())
			un, fr, oc := s.Counts()
			known := float64(fr+oc) / float64(un+fr+oc)
			fmt.Printf("coverage: %.0f%% of the slice observed\n", 100*known)
		}
		fmt.Println()
	}
}
