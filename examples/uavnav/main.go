// UAV navigation: a closed-loop autonomous mission (perception →
// mapping → planning → control) comparing vanilla OctoMap against the
// full OctoCache pipeline, showing how faster map updates translate into
// higher safe flight velocity and shorter mission completion time — the
// paper's headline end-to-end result (Figure 16).
//
//	go run ./examples/uavnav [-env farm] [-slowdown 200]
package main

import (
	"flag"
	"fmt"
	"os"

	"octocache/internal/clock"
	"octocache/internal/core"
	"octocache/internal/nav"
	"octocache/internal/sensor"
	"octocache/internal/uav"
	"octocache/internal/world"
)

func main() {
	envName := flag.String("env", "room", "openland, farm, room, or factory")
	slowdown := flag.Float64("slowdown", 200, "platform slowdown emulating a Jetson TX2")
	flag.Parse()

	setups := map[string]struct {
		env    world.Env
		rangeM float64
		res    float64
	}{
		"openland": {world.Openland, 8, 1.0},
		"farm":     {world.Farm, 4.5, 0.3},
		"room":     {world.Room, 3, 0.15},
		"factory":  {world.Factory, 6, 0.5},
	}
	setup, ok := setups[*envName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown env %q\n", *envName)
		os.Exit(1)
	}

	w := world.Build(setup.env, 1)
	fmt.Printf("environment %s: start %v -> goal %v (%.0fm), range %.1fm, resolution %.2fm\n\n",
		w.Name, w.Start, w.Goal, w.Goal.Sub(w.Start).Norm(), setup.rangeM, setup.res)

	var baseline nav.Result
	for _, kind := range []core.Kind{core.KindOctoMap, core.KindParallel} {
		cfg := core.DefaultConfig(setup.res)
		cfg.MaxRange = setup.rangeM
		cfg.CacheBuckets = 1 << 15
		mapper := core.MustNew(kind, cfg)

		// The deterministic virtual clock prices each cycle by the work
		// the pipeline reports, so the printed comparison is identical on
		// every run and machine; use cmd/uavsim -clock real to measure
		// honest host latency instead.
		r := nav.Run(nav.Config{
			World:            world.Build(setup.env, 1),
			Sensor:           sensor.DefaultModel(setup.rangeM, 40, 18),
			Mapper:           mapper,
			UAV:              uav.AscTecPelican(),
			PlatformSlowdown: *slowdown,
			Clock:            clock.NewVirtual(),
		})
		if kind == core.KindOctoMap {
			baseline = r
		}
		fmt.Printf("%s:\n", mapper.Name())
		if !r.Completed {
			fmt.Printf("  mission incomplete after %d cycles\n\n", r.Cycles)
			continue
		}
		fmt.Printf("  mission time   %.1fs", r.Time)
		if kind != core.KindOctoMap && baseline.Completed {
			fmt.Printf("  (%.0f%% faster than OctoMap)", 100*(1-r.Time/baseline.Time))
		}
		fmt.Println()
		fmt.Printf("  avg velocity   %.2f m/s\n", r.AvgVelocity)
		fmt.Printf("  cycle compute  %.0f ms (TX2-scaled)\n", r.AvgCompute.Seconds()*1e3)
		fmt.Printf("  cycles         %d (%d replans, %d collisions)\n\n",
			r.Cycles, r.Replans, r.Collisions)
	}
}
