module octocache

go 1.22
