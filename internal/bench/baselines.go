package bench

import (
	"fmt"
	"time"

	"octocache/internal/core"
	"octocache/internal/dataset"
	"octocache/internal/pointcloud"
)

func init() {
	register(Experiment{
		ID:    "tab1",
		Title: "Table 1 (quantified): OctoCache vs software baselines — octree bottleneck, memory, speed",
		Run:   runTable1,
	})
	register(Experiment{
		ID:    "fig1",
		Title: "Figure 1: OctoCache overview claims — >95% cache hits, ~0.125x memory visits vs the octree",
		Run:   runFig1,
	})
}

// runTable1 quantifies the paper's related-work matrix on a common
// workload: vanilla OctoMap, VoxelCache-style indexing, naive
// parallelization, and serial/parallel OctoCache.
func runTable1(opt Options) ([]*Table, error) {
	t := &Table{
		Title: "Table 1 (quantified): software systems on the same construction workload",
		Note: "VoxelCache speeds up voxel location but keeps the octree bottleneck and forfeits\n" +
			"pruning (memory); naive parallelization serializes on the tree mutex. Only OctoCache\n" +
			"attacks the bottleneck itself.",
		Header: []string{"dataset", "system", "construction", "map-update time", "memory", "voxels→tree"},
	}
	kinds := []core.Kind{
		core.KindOctoMap, core.KindVoxelCache, core.KindNaive,
		core.KindSerial, core.KindParallel,
	}
	for _, name := range dataset.Names() {
		ds, err := loadDataset(name, opt.scale())
		if err != nil {
			return nil, err
		}
		res := referenceResolution(name)
		cfg := constructionConfig(ds, res, false, opt)
		for _, kind := range kinds {
			opt.logf("tab1: %s/%v", name, kind)
			m := core.MustNew(kind, cfg)
			start := time.Now()
			tm, _ := replay(m, ds)
			wall := time.Since(start)

			mem := m.MemoryBytes()
			t.AddRow(
				name,
				m.Name(),
				fmtDur(wall.Seconds()),
				fmtDur((tm.CacheInsert + tm.OctreeUpdate).Seconds()),
				fmtBytes(mem),
				fmt.Sprint(tm.VoxelsToOctree),
			)
		}
	}
	return []*Table{t}, nil
}

// runFig1 checks the overview figure's headline numbers: the cache
// absorbs >95% of voxel updates and cuts octree memory visits to a small
// fraction.
func runFig1(opt Options) ([]*Table, error) {
	t := &Table{
		Title: "Figure 1: cache hit rate and octree memory-visit reduction",
		Note: "Node visits counts every octree node touched by updates and queries — the paper's\n" +
			"\"memory visits\". Figure 1 sketches >95% hits and 0.125x visits for a well-sized cache.",
		Header: []string{"dataset", "hit rate", "octomap node visits", "octocache node visits", "visit ratio"},
	}
	for _, name := range dataset.Names() {
		ds, err := loadDataset(name, opt.scale())
		if err != nil {
			return nil, err
		}
		res := referenceResolution(name)
		cfg := constructionConfig(ds, res, false, opt)
		// A generously sized cache realizes the figure's best case.
		cfg.CacheBuckets *= 4
		opt.logf("fig1: %s", name)

		base := core.MustNew(core.KindOctoMap, cfg)
		replay(base, ds)
		baseVisits := base.NodeVisits()

		oc := core.MustNew(core.KindSerial, cfg)
		_, cs := replay(oc, ds)
		ocVisits := oc.NodeVisits()

		ratio := 0.0
		if baseVisits > 0 {
			ratio = float64(ocVisits) / float64(baseVisits)
		}
		t.AddRow(
			name,
			fmtPct(cs.HitRate()),
			fmt.Sprint(baseVisits),
			fmt.Sprint(ocVisits),
			fmt.Sprintf("%.3fx", ratio),
		)
	}
	return []*Table{t}, nil
}

func init() {
	register(Experiment{
		ID:    "abl-downsample",
		Title: "Ablation: voxel-filtering the point cloud vs caching — why point thinning is not enough",
		Run:   runAblDownsample,
	})
}

// runAblDownsample compares OctoCache against the obvious alternative way
// to fight duplication: voxel-grid downsampling of the point cloud before
// tracing. Thinning removes duplicate surface *points* but cannot remove
// the duplicated free-space voxels of overlapping ray cones, nor the
// inter-batch duplication the cache absorbs.
func runAblDownsample(opt Options) ([]*Table, error) {
	t := &Table{
		Title: "Ablation: point-cloud voxel filter vs OctoCache",
		Note: "Downsampling thins cloud points to one per map voxel before tracing. It cuts occupied-\n" +
			"voxel duplication but leaves free-space and inter-batch duplication untouched.",
		Header: []string{"dataset", "system", "construction", "voxels traced", "voxels→tree"},
	}
	for _, name := range dataset.Names() {
		ds, err := loadDataset(name, opt.scale())
		if err != nil {
			return nil, err
		}
		res := referenceResolution(name)
		cfg := constructionConfig(ds, res, false, opt)

		type variant struct {
			label      string
			kind       core.Kind
			downsample bool
		}
		for _, v := range []variant{
			{"octomap", core.KindOctoMap, false},
			{"octomap+filter", core.KindOctoMap, true},
			{"octocache", core.KindSerial, false},
			{"octocache+filter", core.KindSerial, true},
		} {
			opt.logf("abl-downsample: %s/%s", name, v.label)
			m := core.MustNew(v.kind, cfg)
			start := time.Now()
			for _, s := range ds.Scans {
				pts := s.Points
				if v.downsample {
					pts = pointcloud.Downsample(pts, res)
				}
				m.Insert(s.Origin, pts)
			}
			m.Close()
			wall := time.Since(start)
			tm := m.Timings()
			t.AddRow(name, v.label, fmtDur(wall.Seconds()),
				fmt.Sprint(tm.VoxelsTraced), fmt.Sprint(tm.VoxelsToOctree))
		}
	}
	return []*Table{t}, nil
}
