// Package bench is the experiment harness: one registered experiment per
// table and figure of the paper's evaluation (§6), each regenerating the
// corresponding rows/series. Absolute numbers differ from the paper's
// Jetson TX2 testbed; the harness exists to reproduce the *shape* of the
// results — who wins, by what factor, and where the crossovers fall.
//
// Run experiments via cmd/octobench or the root-level testing.B wrappers.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"octocache/internal/cache"
	"octocache/internal/core"
	"octocache/internal/dataset"
	"octocache/internal/raytrace"
)

// Options tunes experiment cost.
type Options struct {
	// Scale shrinks datasets and sweeps; 1.0 is the paper-sized setup,
	// small values (0.1–0.3) give minute-scale runs. Default 0.25.
	Scale float64
	// Backend selects the voxel store experiments build their pipelines
	// on; the zero value is the octree.
	Backend core.BackendKind
	// Trace selects the scan-tracing algorithm (core.TraceDDA or
	// core.TraceBoundary) and TraceWorkers its per-scan fan-out, both
	// applied to every constructed pipeline.
	Trace        core.TraceMode
	TraceWorkers int
	// Verbose enables progress notes on Out.
	Verbose bool
	// Out receives progress notes when Verbose is set.
	Out io.Writer
}

func (o Options) scale() float64 {
	if o.Scale <= 0 {
		return 0.25
	}
	return o.Scale
}

func (o Options) logf(format string, args ...interface{}) {
	if o.Verbose && o.Out != nil {
		fmt.Fprintf(o.Out, format+"\n", args...)
	}
}

// Table is a printable experiment result.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	fmt.Fprintln(w)
}

// WriteCSV emits the table in CSV form (header row first) for external
// plotting. Cells containing commas or quotes are quoted.
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	return nil
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	// ID is the octobench identifier (e.g. "fig10", "tab2").
	ID string
	// Title describes the artifact.
	Title string
	// Run executes the experiment and returns its tables.
	Run func(Options) ([]*Table, error)
}

var (
	regMu    sync.Mutex
	registry []Experiment
)

func register(e Experiment) {
	regMu.Lock()
	defer regMu.Unlock()
	registry = append(registry, e)
}

// All returns the registered experiments sorted by ID.
func All() []Experiment {
	regMu.Lock()
	defer regMu.Unlock()
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// --- shared infrastructure ---

var (
	dsMu    sync.Mutex
	dsCache = map[string]*dataset.Dataset{}
)

// loadDataset memoizes dataset generation across experiments in one
// process (generation cost would otherwise dominate the harness).
func loadDataset(name string, scale float64) (*dataset.Dataset, error) {
	key := fmt.Sprintf("%s@%.3f", name, scale)
	dsMu.Lock()
	defer dsMu.Unlock()
	if d, ok := dsCache[key]; ok {
		return d, nil
	}
	d, err := dataset.Named(name, scale)
	if err != nil {
		return nil, err
	}
	dsCache[key] = d
	return d, nil
}

// replay pushes every scan of a dataset through the mapper, finalizes it,
// and returns the timing decomposition plus the cache statistics.
func replay(m core.Mapper, ds *dataset.Dataset) (core.Timings, cache.Stats) {
	for _, s := range ds.Scans {
		m.Insert(s.Origin, s.Points)
	}
	m.Close()
	return m.Timings(), m.CacheStats()
}

// constructionConfig sizes a pipeline for a dataset replay following
// §5.2: the cache holds 3–4x the average per-batch distinct voxels, τ=4,
// Morton indexing.
func constructionConfig(ds *dataset.Dataset, res float64, rt bool, opt Options) core.Config {
	cfg := core.DefaultConfig(res)
	cfg.Backend = opt.Backend
	cfg.MaxRange = ds.Sensor.MaxRange
	cfg.RT = rt
	cfg.Trace = opt.Trace
	cfg.TraceWorkers = opt.TraceWorkers
	cfg.CacheTau = 4
	cfg.CacheBuckets = bucketsFor(ds, res, cfg.CacheTau)
	return cfg
}

// bucketsFor estimates the per-batch distinct voxel count from a few
// sample scans and sizes w so that w*τ ≈ 3.5x that count.
func bucketsFor(ds *dataset.Dataset, res float64, tau int) int {
	st := sampleDistinct(ds, res)
	w := int(3.5 * float64(st) / float64(tau))
	if w < 64 {
		w = 64
	}
	return w
}

// sampleDistinct traces up to 5 evenly spaced scans and returns the mean
// distinct voxel count per batch.
func sampleDistinct(ds *dataset.Dataset, res float64) int {
	if len(ds.Scans) == 0 {
		return 0
	}
	step := len(ds.Scans) / 5
	if step < 1 {
		step = 1
	}
	tr := raytrace.NewTracer(raytrace.Config{
		Resolution: res,
		Depth:      16,
		MaxRange:   ds.Sensor.MaxRange,
	})
	total, n := 0, 0
	for i := 0; i < len(ds.Scans); i += step {
		total += raytrace.CountDistinct(tr.Trace(ds.Scans[i].Origin, ds.Scans[i].Points))
		n++
	}
	if n == 0 {
		return 0
	}
	return total / n
}

func fmtDur(sec float64) string {
	return fmt.Sprintf("%.3fs", sec)
}

func fmtRatio(r float64) string {
	return fmt.Sprintf("%.2fx", r)
}

func fmtPct(p float64) string {
	return fmt.Sprintf("%.1f%%", p*100)
}
