package bench

import (
	"fmt"
	"time"

	"octocache/internal/cache"
	"octocache/internal/core"
	"octocache/internal/dataset"
)

func init() {
	register(Experiment{
		ID:    "fig23",
		Title: "Figure 23: cache hit ratio vs cache size — hit rate plateaus once duplication is exhausted",
		Run:   runFig23,
	})
	register(Experiment{
		ID:    "fig24",
		Title: "Figure 24: construction time and hit ratio vs bucket depth τ at fixed capacity",
		Run:   runFig24,
	})
	register(Experiment{
		ID:    "abl-order",
		Title: "Ablation: eviction ordering (bucket-scan vs full Morton sort) and bucket indexing (hash vs Morton)",
		Run:   runAblOrder,
	})
}

func runFig23(opt Options) ([]*Table, error) {
	t := &Table{
		Title: "Figure 23: hit ratio rises to a limit as cache size grows",
		Note: "Cache memory uses the paper's 7-byte cell accounting; octree memory is the final tree.\n" +
			"The paper observes >93% hit rate at 0.23% of the octree size on dataset 3.",
		Header: []string{"dataset", "buckets(w)", "cache cap", "hit rate", "cache mem", "octree mem", "cache/octree"},
	}
	for _, name := range dataset.Names() {
		ds, err := loadDataset(name, opt.scale())
		if err != nil {
			return nil, err
		}
		res := referenceResolution(name)
		ref := bucketsFor(ds, res, 4)
		for _, mult := range []float64{0.03125, 0.125, 0.5, 1, 4, 16} {
			w := int(float64(ref) * mult)
			if w < 16 {
				w = 16
			}
			opt.logf("fig23: %s w=%d", name, w)
			cfg := constructionConfig(ds, res, false, opt)
			cfg.CacheBuckets = w
			m := core.MustNew(core.KindSerial, cfg)
			_, cs := replay(m, ds)
			treeMem := m.MemoryBytes()
			cacheMem := int64(cfg.CacheBuckets) * int64(cfg.CacheTau) * cache.NominalBytes
			frac := 0.0
			if treeMem > 0 {
				frac = float64(cacheMem) / float64(treeMem)
			}
			t.AddRow(
				name,
				fmt.Sprint(roundPow2(w)),
				fmt.Sprint(roundPow2(w)*cfg.CacheTau),
				fmtPct(cs.HitRate()),
				fmtBytes(cacheMem),
				fmtBytes(treeMem),
				fmtPct(frac),
			)
		}
	}
	return []*Table{t}, nil
}

func runFig24(opt Options) ([]*Table, error) {
	t := &Table{
		Title: "Figure 24: map construction time and hit ratio vs τ (fixed capacity M = w·τ)",
		Note: "Small τ forces early evictions via collisions; large τ lengthens in-bucket searches.\n" +
			"The paper finds τ between 2 and 4 optimal.",
		Header: []string{"dataset", "tau", "buckets(w)", "construction", "hit rate"},
	}
	for _, name := range dataset.Names() {
		ds, err := loadDataset(name, opt.scale())
		if err != nil {
			return nil, err
		}
		res := referenceResolution(name)
		capacity := roundPow2(bucketsFor(ds, res, 4)) * 4 // cells at the τ=4 reference shape
		for _, tau := range []int{1, 2, 4, 8, 16} {
			w := capacity / tau
			if w < 16 {
				w = 16
			}
			opt.logf("fig24: %s tau=%d", name, tau)
			cfg := constructionConfig(ds, res, false, opt)
			cfg.CacheTau = tau
			cfg.CacheBuckets = w
			dur := timeReplay(core.KindSerial, cfg, ds)
			m := core.MustNew(core.KindSerial, cfg)
			_, cs := replay(m, ds)
			t.AddRow(
				name,
				fmt.Sprint(tau),
				fmt.Sprint(roundPow2(w)),
				fmtDur(dur.Seconds()),
				fmtPct(cs.HitRate()),
			)
		}
	}
	return []*Table{t}, nil
}

func runAblOrder(opt Options) ([]*Table, error) {
	t := &Table{
		Title: "Ablation: bucket indexing and eviction ordering",
		Note: "morton/bucket-scan is the paper's design; hash indexing scrambles eviction locality, and\n" +
			"a full Morton sort recovers it at O(n log n) eviction cost.",
		Header: []string{"dataset", "index", "evict order", "construction", "hit rate"},
	}
	variants := []struct {
		index cache.IndexMode
		order cache.EvictOrder
	}{
		{cache.MortonIndex, cache.OrderBucketScan},
		{cache.MortonIndex, cache.OrderMorton},
		{cache.HashIndex, cache.OrderBucketScan},
		{cache.HashIndex, cache.OrderMorton},
	}
	for _, name := range dataset.Names() {
		ds, err := loadDataset(name, opt.scale())
		if err != nil {
			return nil, err
		}
		res := referenceResolution(name)
		for _, v := range variants {
			opt.logf("abl-order: %s %v/%v", name, v.index, v.order)
			cfg := constructionConfig(ds, res, false, opt)
			cfg.CacheIndex = v.index
			cfg.EvictOrder = v.order
			dur := timeReplay(core.KindSerial, cfg, ds)
			m := core.MustNew(core.KindSerial, cfg)
			_, cs := replay(m, ds)
			t.AddRow(name, v.index.String(), v.order.String(), fmtDur(dur.Seconds()), fmtPct(cs.HitRate()))
		}
	}
	return []*Table{t}, nil
}

func roundPow2(w int) int {
	n := 1
	for n < w {
		n <<= 1
	}
	return n
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func init() {
	register(Experiment{
		ID:    "abl-arena",
		Title: "Ablation: octree arena occupancy and footprint after construction",
		Run:   runAblArena,
	})
}

func runAblArena(opt Options) ([]*Table, error) {
	t := &Table{
		Title: "Ablation: octree arena occupancy after dataset construction",
		Note: "Nodes live in contiguous handle-addressed arenas; pruning recycles slots through\n" +
			"free lists instead of the GC. 'free' slots are pruning churn awaiting reuse, so\n" +
			"live/capacity is the arena's steady-state occupancy.",
		Header: []string{"dataset", "pipeline", "construction", "live", "free", "capacity", "bytes"},
	}
	for _, name := range dataset.Names() {
		ds, err := loadDataset(name, opt.scale())
		if err != nil {
			return nil, err
		}
		res := referenceResolution(name)
		for _, kind := range []core.Kind{core.KindOctoMap, core.KindSerial} {
			opt.logf("abl-arena: %s/%v", name, kind)
			cfg := constructionConfig(ds, res, false, opt)
			m := core.MustNew(kind, cfg)
			start := time.Now()
			for _, s := range ds.Scans {
				m.Insert(s.Origin, s.Points)
			}
			m.Close()
			dur := time.Since(start)
			as := m.ArenaStats()
			t.AddRow(name, kind.String(), fmtDur(dur.Seconds()),
				fmt.Sprint(as.LiveNodes), fmt.Sprint(as.FreeSlots), fmt.Sprint(as.Capacity),
				fmtBytes(as.Bytes))
		}
	}
	return []*Table{t}, nil
}
