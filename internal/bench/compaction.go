package bench

import (
	"fmt"
	"time"

	"octocache/internal/core"
	"octocache/internal/dataset"
)

func init() {
	register(Experiment{
		ID:    "abl-compact",
		Title: "Ablation: arena compaction — fragmentation and insert latency before/after on a prune-heavy stream",
		Run:   runAblCompact,
	})
}

// runAblCompact measures what online compaction buys. The map is built
// from the dataset, then pushed through a prune-heavy phase: every scan
// is replayed several more times, so free-space voxels saturate to the
// clamp minimum and whole octants collapse, loading the arena free
// lists. We then time a fixed probe slice of re-inserted scans against
// the fragmented arena, compact, and time the same slice against the
// dense Morton-ordered arena.
func runAblCompact(opt Options) ([]*Table, error) {
	t := &Table{
		Title: "Ablation: arena compaction on a prune-heavy stream",
		Note: "'frag' is the free fraction of arena slots (pruning churn). Compact rewrites the\n" +
			"arena into a dense DFS/Morton-ordered prefix: capacity drops by the free share and\n" +
			"subsequent inserts walk a denser, locality-ordered node layout.",
		Header: []string{"dataset", "frag before", "frag after", "capacity", "compacted", "pause", "insert/scan pre", "insert/scan post"},
	}
	for _, name := range dataset.Names() {
		ds, err := loadDataset(name, opt.scale())
		if err != nil {
			return nil, err
		}
		opt.logf("abl-compact: %s", name)
		res := referenceResolution(name)
		cfg := constructionConfig(ds, res, false, opt)
		m := core.MustNew(core.KindSerial, cfg)
		// First pass builds the map; the repeats are the prune-heavy
		// phase: re-observation saturates free space and collapses
		// octants into the free lists.
		for rep := 0; rep < 4; rep++ {
			for _, s := range ds.Scans {
				m.Insert(s.Origin, s.Points)
			}
		}

		probe := ds.Scans
		if len(probe) > 30 {
			probe = probe[:30]
		}
		before := m.ArenaStats()
		pre := timeScans(m, probe)
		if err := m.Compact(); err != nil {
			return nil, err
		}
		after := m.ArenaStats()
		post := timeScans(m, probe)
		cs := m.CompactionStats()
		m.Close()

		t.AddRow(
			name,
			fmtPct(before.Fragmentation()),
			fmtPct(after.Fragmentation()),
			fmt.Sprintf("%d -> %d", before.Capacity, after.Capacity),
			fmt.Sprintf("%d slots", cs.SlotsReclaimed),
			fmtDur(cs.LastDuration.Seconds()),
			fmtDur(pre.Seconds()/float64(len(probe))),
			fmtDur(post.Seconds()/float64(len(probe))),
		)
	}
	return []*Table{t}, nil
}

// timeScans re-inserts the probe scans once and returns the wall time.
// The scans are already mapped, so the work is the steady-state path:
// cache hits plus τ-bounded evictions into the octree.
func timeScans(m core.Mapper, scans []dataset.Scan) time.Duration {
	start := time.Now()
	for _, s := range scans {
		m.Insert(s.Origin, s.Points)
	}
	return time.Since(start)
}
