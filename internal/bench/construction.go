package bench

import (
	"fmt"
	"time"

	"octocache/internal/core"
	"octocache/internal/dataset"
)

func init() {
	register(Experiment{
		ID:    "fig6",
		Title: "Figure 6: OctoMap runtime breakdown — octree update dominates, worse at high resolution",
		Run:   runFig6,
	})
	register(Experiment{
		ID:    "fig20",
		Title: "Figure 20: 3D construction runtime — OctoMap vs serial vs parallel OctoCache across resolutions",
		Run:   func(o Options) ([]*Table, error) { return runConstruction(o, false) },
	})
	register(Experiment{
		ID:    "fig21",
		Title: "Figure 21: 3D construction runtime — OctoMap-RT vs serial/parallel OctoCache-RT",
		Run:   func(o Options) ([]*Table, error) { return runConstruction(o, true) },
	})
	register(Experiment{
		ID:    "fig22",
		Title: "Figure 22: runtime decomposition (ray trace / cache insert / evict / octree update / wait)",
		Run:   runFig22,
	})
	register(Experiment{
		ID:    "tab3",
		Title: "Table 3: inter-thread data transmission (enqueue/dequeue) overhead",
		Run:   runTable3,
	})
}

func runFig6(opt Options) ([]*Table, error) {
	t := &Table{
		Title: "Figure 6: OctoMap generation workflow decomposition",
		Note: "The paper reports the octree update at >=86% of OctoMap runtime, rising to 93-96% at\n" +
			"higher (numerically smaller) resolutions.",
		Header: []string{"dataset", "res(m)", "ray trace", "octree update", "octree share"},
	}
	for _, name := range dataset.Names() {
		ds, err := loadDataset(name, opt.scale())
		if err != nil {
			return nil, err
		}
		base := referenceResolution(name)
		for _, mult := range []float64{1, 2, 4} {
			res := base * mult
			opt.logf("fig6: %s @ %.2fm", name, res)
			m := core.MustNew(core.KindOctoMap, constructionConfig(ds, res, false, opt))
			tm, _ := replay(m, ds)
			total := tm.RayTracing + tm.OctreeUpdate
			share := 0.0
			if total > 0 {
				share = float64(tm.OctreeUpdate) / float64(total)
			}
			t.AddRow(
				name,
				fmt.Sprintf("%.2f", res),
				fmtDur(tm.RayTracing.Seconds()),
				fmtDur(tm.OctreeUpdate.Seconds()),
				fmtPct(share),
			)
		}
	}
	return []*Table{t}, nil
}

// constructionResolutions returns the resolution sweep relative to the
// dataset's reference resolution (the paper sweeps 0.1–0.9 m absolute).
func constructionResolutions(scale float64) []float64 {
	if scale < 0.4 {
		return []float64{1, 2, 4}
	}
	return []float64{1, 1.5, 2, 3, 4, 6, 8}
}

func runConstruction(opt Options, rt bool) ([]*Table, error) {
	label := ""
	if rt {
		label = "-RT"
	}
	t := &Table{
		Title: fmt.Sprintf("Figure %s: total 3D construction runtime, OctoMap%s vs OctoCache%s", figNo(rt), label, label),
		Note: "Wall-clock construction time over the full dataset replay. The paper reports serial\n" +
			"OctoCache at 1.03-2.06x over OctoMap (up to 2.51x for -RT) with parallel gains on top;\n" +
			"parallel gains require a second core (this host runs the two threads on one).",
		Header: []string{"dataset", "res(m)", "octomap", "serial", "parallel", "serial speedup", "parallel speedup", "hit rate"},
	}
	for _, name := range dataset.Names() {
		ds, err := loadDataset(name, opt.scale())
		if err != nil {
			return nil, err
		}
		base := referenceResolution(name)
		for _, mult := range constructionResolutions(opt.scale()) {
			res := base * mult
			opt.logf("fig%s: %s @ %.2fm", figNo(rt), name, res)
			cfg := constructionConfig(ds, res, rt, opt)

			tOcto := timeReplay(core.KindOctoMap, cfg, ds)
			tSerial := timeReplay(core.KindSerial, cfg, ds)
			tParallel := timeReplay(core.KindParallel, cfg, ds)

			mm := core.MustNew(core.KindSerial, cfg)
			_, cs := replay(mm, ds)

			t.AddRow(
				name,
				fmt.Sprintf("%.2f", res),
				fmtDur(tOcto.Seconds()),
				fmtDur(tSerial.Seconds()),
				fmtDur(tParallel.Seconds()),
				fmtRatio(tOcto.Seconds()/tSerial.Seconds()),
				fmtRatio(tOcto.Seconds()/tParallel.Seconds()),
				fmtPct(cs.HitRate()),
			)
		}
	}
	return []*Table{t}, nil
}

func figNo(rt bool) string {
	if rt {
		return "21"
	}
	return "20"
}

// timeReplay measures wall-clock time for a full dataset replay,
// including Close (so the parallel pipeline's background work is paid
// for, exactly as the construction task requires the finished octree).
func timeReplay(kind core.Kind, cfg core.Config, ds *dataset.Dataset) time.Duration {
	m := core.MustNew(kind, cfg)
	start := time.Now()
	for _, s := range ds.Scans {
		m.Insert(s.Origin, s.Points)
	}
	m.Close()
	return time.Since(start)
}

func runFig22(opt Options) ([]*Table, error) {
	t := &Table{
		Title: "Figure 22 (+Table 3 context): runtime decomposition per pipeline",
		Note: "The paper's headline: OctoCache's cache insertion is 2.57-5.85x faster than OctoMap's\n" +
			"octree update, and thread 2's remaining octree work is 9.7-23.8% of OctoMap's.",
		Header: []string{"dataset", "pipeline", "ray trace", "cache insert", "cache evict", "octree update", "wait(gap)", "voxels→octree"},
	}
	for _, name := range dataset.Names() {
		ds, err := loadDataset(name, opt.scale())
		if err != nil {
			return nil, err
		}
		res := referenceResolution(name)
		cfg := constructionConfig(ds, res, false, opt)
		for _, kind := range []core.Kind{core.KindOctoMap, core.KindSerial, core.KindParallel} {
			opt.logf("fig22: %s/%v", name, kind)
			m := core.MustNew(kind, cfg)
			tm, _ := replay(m, ds)
			t.AddRow(
				name,
				kind.String(),
				fmtDur(tm.RayTracing.Seconds()),
				fmtDur(tm.CacheInsert.Seconds()),
				fmtDur(tm.CacheEvict.Seconds()),
				fmtDur(tm.OctreeUpdate.Seconds()),
				fmtDur(tm.Wait.Seconds()),
				fmt.Sprint(tm.VoxelsToOctree),
			)
		}
	}
	return []*Table{t}, nil
}

func runTable3(opt Options) ([]*Table, error) {
	t := &Table{
		Title:  "Table 3: inter-thread data transmission overhead (parallel OctoCache)",
		Note:   "Enqueue/dequeue must be negligible next to the compute stages.",
		Header: []string{"dataset", "ray trace", "cache insert", "cache evict", "octree update", "enqueue", "dequeue", "queue share"},
	}
	for _, name := range dataset.Names() {
		ds, err := loadDataset(name, opt.scale())
		if err != nil {
			return nil, err
		}
		res := referenceResolution(name)
		opt.logf("tab3: %s", name)
		m := core.MustNew(core.KindParallel, constructionConfig(ds, res, false, opt))
		tm, _ := replay(m, ds)
		queue := tm.Enqueue + tm.Dequeue
		share := 0.0
		if tm.Total() > 0 {
			share = float64(queue) / float64(tm.Total())
		}
		t.AddRow(
			name,
			fmtDur(tm.RayTracing.Seconds()),
			fmtDur(tm.CacheInsert.Seconds()),
			fmtDur(tm.CacheEvict.Seconds()),
			fmtDur(tm.OctreeUpdate.Seconds()),
			fmtDur(tm.Enqueue.Seconds()),
			fmtDur(tm.Dequeue.Seconds()),
			fmtPct(share),
		)
	}
	return []*Table{t}, nil
}
