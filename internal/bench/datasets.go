package bench

import (
	"fmt"
	"sort"

	"octocache/internal/dataset"
)

func init() {
	register(Experiment{
		ID:    "tab2",
		Title: "Table 2: dataset statistics (scans, non-duplicate vs duplicate voxels) + §3.1 duplication rates",
		Run:   runTable2,
	})
	register(Experiment{
		ID:    "fig8",
		Title: "Figure 8: CDF of inter-batch voxel overlap across 3 consecutive updates",
		Run:   runFig8,
	})
}

// table2Resolutions mirrors the paper's 0.1–0.8 m rows, coarsened a bit
// at small scales to keep tracing affordable.
func table2Resolutions(scale float64) []float64 {
	if scale < 0.4 {
		return []float64{0.2, 0.4, 0.8}
	}
	return []float64{0.1, 0.2, 0.4, 0.8}
}

func runTable2(opt Options) ([]*Table, error) {
	t := &Table{
		Title: "Table 2: OctoMap 3D scan dataset details (synthetic stand-ins)",
		Note: "Duplicate voxel # counts every traced observation; non-duplicate counts distinct keys.\n" +
			"Dup rate is per-batch total/distinct (§3.1 reports 2.78–31.32x).",
		Header: []string{"dataset", "scans", "points", "res(m)", "nondup voxels", "total voxels", "dup min", "dup mean", "dup max"},
	}
	for _, name := range dataset.Names() {
		ds, err := loadDataset(name, opt.scale())
		if err != nil {
			return nil, err
		}
		for _, res := range table2Resolutions(opt.scale()) {
			opt.logf("tab2: %s @ %.1fm", name, res)
			st := ds.ComputeVoxelStats(res)
			t.AddRow(
				name,
				fmt.Sprint(st.Scans),
				fmt.Sprint(st.Points),
				fmt.Sprintf("%.1f", res),
				fmt.Sprint(st.DistinctVoxels),
				fmt.Sprint(st.TotalVoxels),
				fmtRatio(st.DupMin),
				fmtRatio(st.DupMean),
				fmtRatio(st.DupMax),
			)
		}
	}
	return []*Table{t}, nil
}

func runFig8(opt Options) ([]*Table, error) {
	const window = 3
	t := &Table{
		Title: "Figure 8: overlap ratio between 3 consecutive update batches (CDF)",
		Note: "Each row: fraction of a batch's distinct voxels already present in the previous 3 batches.\n" +
			"The paper reports >80% overlap for two datasets and ~40% for Freiburg campus.",
		Header: []string{"dataset", "res(m)", "p10", "p25", "p50", "p75", "p90", "mean"},
	}
	for _, name := range dataset.Names() {
		ds, err := loadDataset(name, opt.scale())
		if err != nil {
			return nil, err
		}
		res := referenceResolution(name)
		opt.logf("fig8: %s @ %.2fm", name, res)
		ratios := ds.OverlapRatios(res, window)
		if len(ratios) == 0 {
			continue
		}
		q := quantiles(ratios, []float64{0.10, 0.25, 0.50, 0.75, 0.90})
		t.AddRow(
			name,
			fmt.Sprintf("%.2f", res),
			fmtPct(q[0]), fmtPct(q[1]), fmtPct(q[2]), fmtPct(q[3]), fmtPct(q[4]),
			fmtPct(mean(ratios)),
		)
	}
	return []*Table{t}, nil
}

// referenceResolution is the default per-dataset mapping resolution used
// by the microbenchmarks, matching each scene's scale.
func referenceResolution(name string) float64 {
	switch name {
	case "fr079":
		return 0.1
	case "campus":
		return 0.4
	default: // newcollege
		return 0.2
	}
}

func quantiles(xs []float64, qs []float64) []float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]float64, len(qs))
	for i, q := range qs {
		idx := int(q * float64(len(s)-1))
		out[i] = s[idx]
	}
	return out
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
