package bench

import (
	"io"
	"strings"
	"testing"
)

// TestAllExperimentsRegistered pins the experiment inventory to the
// paper's artifact list.
func TestAllExperimentsRegistered(t *testing.T) {
	want := []string{
		"abl-arena", "abl-compact", "abl-downsample", "abl-order", "ext-shard", "fig1", "fig10", "fig16", "fig17", "fig18", "fig19",
		"fig20", "fig21", "fig22", "fig23", "fig24", "fig6", "fig8",
		"tab1", "tab2", "tab3",
	}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("registered %d experiments, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	if _, ok := Find("fig10"); !ok {
		t.Error("Find failed for fig10")
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find succeeded for unknown id")
	}
}

// TestExperimentsRunAtTinyScale executes every experiment end-to-end at a
// minimal scale and sanity-checks the emitted tables.
func TestExperimentsRunAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment replays are slow")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(Options{Scale: 0.08})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Errorf("%s: table %q empty", e.ID, tb.Title)
				}
				var sb strings.Builder
				tb.Fprint(&sb)
				if !strings.Contains(sb.String(), tb.Header[0]) {
					t.Errorf("%s: rendering lost the header", e.ID)
				}
			}
		})
	}
}

func TestTableFprint(t *testing.T) {
	tb := &Table{
		Title:  "demo",
		Note:   "a note",
		Header: []string{"col1", "c2"},
	}
	tb.AddRow("a", "bbbb")
	tb.AddRow("cc", "d")
	var sb strings.Builder
	tb.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== demo ==", "a note", "col1  c2", "cc    d"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.scale() != 0.25 {
		t.Errorf("default scale = %v", o.scale())
	}
	o.logf("must not panic with nil Out")
	o2 := Options{Verbose: true, Out: io.Discard}
	o2.logf("discarded")
}

func TestTableWriteCSV(t *testing.T) {
	tb := &Table{
		Header: []string{"a", "b"},
	}
	tb.AddRow("1", "x,y")
	tb.AddRow("2", `say "hi"`)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"x,y\"\n2,\"say \"\"hi\"\"\"\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}
