package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"octocache/internal/core"
	"octocache/internal/dataset"
	"octocache/internal/morton"
	"octocache/internal/raytrace"
	"octocache/internal/voxel"
)

func init() {
	register(Experiment{
		ID:    "fig10",
		Title: "Figure 10: per-voxel octree update time vs voxel ordering (random/X/Y/Z/original/Morton) and F(S)",
		Run:   runFig10,
	})
}

// orderName → permutation builder. Each receives the original-order voxel
// batch and returns the keys in the requested insertion order.
type ordering struct {
	name  string
	apply func(keys []voxel.Key, rng *rand.Rand) []voxel.Key
}

func orderings() []ordering {
	byAxis := func(axis int) func([]voxel.Key, *rand.Rand) []voxel.Key {
		return func(keys []voxel.Key, _ *rand.Rand) []voxel.Key {
			out := append([]voxel.Key(nil), keys...)
			sort.Slice(out, func(i, j int) bool {
				a, b := out[i], out[j]
				switch axis {
				case 0:
					if a.X != b.X {
						return a.X < b.X
					}
					if a.Y != b.Y {
						return a.Y < b.Y
					}
					return a.Z < b.Z
				case 1:
					if a.Y != b.Y {
						return a.Y < b.Y
					}
					if a.Z != b.Z {
						return a.Z < b.Z
					}
					return a.X < b.X
				default:
					if a.Z != b.Z {
						return a.Z < b.Z
					}
					if a.X != b.X {
						return a.X < b.X
					}
					return a.Y < b.Y
				}
			})
			return out
		}
	}
	return []ordering{
		{"random", func(keys []voxel.Key, rng *rand.Rand) []voxel.Key {
			out := append([]voxel.Key(nil), keys...)
			rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
			return out
		}},
		{"sort-x", byAxis(0)},
		{"sort-y", byAxis(1)},
		{"sort-z", byAxis(2)},
		{"original", func(keys []voxel.Key, _ *rand.Rand) []voxel.Key { return keys }},
		{"morton", func(keys []voxel.Key, _ *rand.Rand) []voxel.Key {
			out := append([]voxel.Key(nil), keys...)
			sort.Slice(out, func(i, j int) bool { return out[i].Morton() < out[j].Morton() })
			return out
		}},
	}
}

func runFig10(opt Options) ([]*Table, error) {
	// The paper inserts 5M voxels per dataset; scale that down.
	target := int(5_000_000 * opt.scale() * opt.scale())
	if target < 20_000 {
		target = 20_000
	}
	var tables []*Table
	for _, name := range dataset.Names() {
		ds, err := loadDataset(name, opt.scale())
		if err != nil {
			return nil, err
		}
		res := referenceResolution(name)
		keys := collectVoxels(ds, res, target)
		if len(keys) == 0 {
			continue
		}
		t := &Table{
			Title: fmt.Sprintf("Figure 10: insertion order vs per-voxel update time — %s (%d voxels, %.2fm)", name, len(keys), res),
			Note: "F(S) is the paper's locality functional (§4.3): lower F → more shared ancestors between\n" +
				"adjacent insertions → faster updates. Morton order minimizes F.",
			Header: []string{"order", "ns/voxel", "speedup vs random", "F(S)", "node visits"},
		}
		rng := rand.New(rand.NewSource(10))
		var randomNs float64
		for _, ord := range orderings() {
			seq := ord.apply(keys, rng)
			nsPerVoxel, visits := timeInsertion(seq, res)
			f := fValue(seq)
			if ord.name == "random" {
				randomNs = nsPerVoxel
			}
			speedup := "1.00x"
			if randomNs > 0 {
				speedup = fmtRatio(randomNs / nsPerVoxel)
			}
			opt.logf("fig10: %s/%s %.1f ns/voxel F=%d", name, ord.name, nsPerVoxel, f)
			t.AddRow(ord.name, fmt.Sprintf("%.1f", nsPerVoxel), speedup, fmt.Sprint(f), fmt.Sprint(visits))
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// collectVoxels traces the dataset until target voxel observations are
// gathered (duplicates included, as in the paper's raw update stream).
func collectVoxels(ds *dataset.Dataset, res float64, target int) []voxel.Key {
	tr := raytrace.NewTracer(raytrace.Config{Resolution: res, Depth: 16, MaxRange: ds.Sensor.MaxRange})
	keys := make([]voxel.Key, 0, target)
	for _, s := range ds.Scans {
		for _, v := range tr.Trace(s.Origin, s.Points) {
			keys = append(keys, v.Key)
			if len(keys) >= target {
				return keys
			}
		}
	}
	return keys
}

// timeInsertion inserts the key sequence into a fresh octree, repeating
// the build to denoise, and returns the fastest nanoseconds-per-voxel
// plus the tree's node-visit count (identical across orders: the visit
// count depends only on the voxel set, while the *cache behaviour* of
// those visits depends on the order — which is the whole point).
func timeInsertion(keys []voxel.Key, res float64) (float64, int64) {
	reps := 1
	if len(keys) < 500_000 {
		reps = 3
	}
	best := time.Duration(1<<63 - 1)
	var visits int64
	for r := 0; r < reps; r++ {
		tree := core.NewTree(voxel.DefaultParams(res))
		start := time.Now()
		for _, k := range keys {
			tree.UpdateOccupied(k)
		}
		if elapsed := time.Since(start); elapsed < best {
			best = elapsed
		}
		visits = tree.NodeVisits()
	}
	return float64(best.Nanoseconds()) / float64(len(keys)), visits
}

// fValue computes F(S) over the sequence's Morton codes at full depth.
func fValue(keys []voxel.Key) int {
	codes := make([]uint64, len(keys))
	for i, k := range keys {
		codes[i] = k.Morton()
	}
	return morton.F(codes, 16)
}
