package bench

import (
	"fmt"
	"sync"
	"time"

	"octocache/internal/core"
	"octocache/internal/shard"
)

// The shard-scaling experiment goes beyond the paper's evaluation: it
// measures how ingest throughput responds to partitioning one map across
// independent OctoCache pipelines (internal/shard) when one or several
// producer goroutines feed scans concurrently. The serial pipeline is
// the 1-producer baseline; perfect scaling would multiply its throughput
// by min(shards, producers).

func init() {
	register(Experiment{
		ID:    "ext-shard",
		Title: "Extension: sharded-map ingest throughput vs shard count and producer count",
		Run:   runShardScale,
	})
}

func runShardScale(opt Options) ([]*Table, error) {
	const name = "fr079"
	ds, err := loadDataset(name, opt.scale())
	if err != nil {
		return nil, err
	}
	res := referenceResolution(name)
	cfg := constructionConfig(ds, res, false, opt)

	t := &Table{
		Title: "Sharded-map ingest scaling",
		Note: fmt.Sprintf("%s @ %.2fm, %d scans; scans distributed round-robin across producers.\n"+
			"Speedup is wall-clock vs the unsharded serial pipeline driven by one goroutine.", name, res, len(ds.Scans)),
		Header: []string{"mapper", "shards", "producers", "wall", "Mvox/s", "speedup"},
	}

	// Baseline: the unsharded serial pipeline, single driver.
	opt.logf("ext-shard: serial baseline")
	base := core.MustNew(core.KindSerial, cfg)
	baseStart := time.Now()
	baseTm, _ := replay(base, ds)
	baseWall := time.Since(baseStart).Seconds()
	t.AddRow("octocache-serial", "-", "1", fmtDur(baseWall),
		fmt.Sprintf("%.1f", float64(baseTm.VoxelsTraced)/baseWall/1e6), fmtRatio(1))

	// Each point runs serial-per-shard (octree application inline, inside
	// the shard lock) against async-per-shard (application on the shard's
	// background applier — the paper's two-thread schedule, per shard).
	pipelines := []shard.Pipeline{shard.PipelineSerial, shard.PipelineAsync}
	for _, shards := range []int{1, 2, 4, 8} {
		for _, producers := range []int{1, 4} {
			for _, pl := range pipelines {
				opt.logf("ext-shard: shards=%d producers=%d pipeline=%d", shards, producers, int(pl))
				sm, err := shard.New(shard.Config{Core: cfg, Shards: shards, Pipeline: pl})
				if err != nil {
					return nil, err
				}
				start := time.Now()
				var wg sync.WaitGroup
				for w := 0; w < producers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for i := w; i < len(ds.Scans); i += producers {
							s := ds.Scans[i]
							if err := sm.Insert(s.Origin, s.Points); err != nil {
								panic(err) // closed mid-run: harness bug
							}
						}
					}(w)
				}
				wg.Wait()
				if err := sm.Close(); err != nil {
					return nil, err
				}
				wall := time.Since(start).Seconds()
				tm := sm.Timings()
				t.AddRow(sm.Name(), fmt.Sprintf("%d", sm.NumShards()), fmt.Sprintf("%d", producers),
					fmtDur(wall), fmt.Sprintf("%.1f", float64(tm.VoxelsTraced)/wall/1e6),
					fmtRatio(baseWall/wall))
			}
		}
	}
	return []*Table{t}, nil
}
