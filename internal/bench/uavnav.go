package bench

import (
	"fmt"
	"time"

	"octocache/internal/core"
	"octocache/internal/nav"
	"octocache/internal/sensor"
	"octocache/internal/uav"
	"octocache/internal/world"
)

func init() {
	register(Experiment{
		ID:    "fig16",
		Title: "Figure 16: UAV end-to-end runtime & task completion — OctoMap vs OctoCache, 4 environments, 2 UAVs",
		Run:   func(o Options) ([]*Table, error) { return runUAVNav(o, false) },
	})
	register(Experiment{
		ID:    "fig17",
		Title: "Figure 17: UAV end-to-end runtime & task completion — OctoMap-RT vs OctoCache-RT",
		Run:   func(o Options) ([]*Table, error) { return runUAVNav(o, true) },
	})
	register(Experiment{
		ID:    "fig18",
		Title: "Figure 18: OctoMap vs OctoCache across sensing ranges and resolutions (Room, AscTec Pelican)",
		Run:   func(o Options) ([]*Table, error) { return runSweeps(o, false) },
	})
	register(Experiment{
		ID:    "fig19",
		Title: "Figure 19: OctoMap-RT vs OctoCache-RT across sensing ranges and resolutions",
		Run:   func(o Options) ([]*Table, error) { return runSweeps(o, true) },
	})
}

// envSetup is the paper's §5.1 baseline <sensing range, resolution> per
// environment; RT variants run at the much finer RT resolutions.
type envSetup struct {
	env        world.Env
	rangeM     float64
	res, resRT float64
}

var uavEnvs = []envSetup{
	{world.Openland, 8, 1.0, 0.16},
	{world.Farm, 4.5, 0.3, 0.08},
	{world.Room, 3, 0.15, 0.04},
	{world.Factory, 6, 0.5, 0.12},
}

// missionRays sizes the simulated sensor's ray grid by scale.
func missionRays(scale float64) (int, int) {
	h := int(32 * (0.5 + scale))
	v := int(14 * (0.5 + scale))
	return h, v
}

// platformSlowdown emulates the TX2's relative speed so that compute
// latency is mission-relevant at host speeds: the paper's TX2 mapping
// updates run in the 100 ms–1 s range, which the velocity roofline turns
// into flight-speed differences.
const platformSlowdown = 200

// quickScale is the workload scale below which the UAV experiments run
// in quick mode: fewer environments, one airframe, one seed — sized for
// the tiny-scale harness test and the root testing.B wrappers.
const quickScale = 0.15

// runMission flies the mission over several environment seeds and
// averages the completed runs: single closed-loop missions are noisy
// (the velocity roofline amplifies per-cycle timing variance), and the
// paper's figures are averages over whole flights too.
func runMission(env envSetup, kind core.Kind, rt bool, frame uav.Airframe, scale float64) nav.Result {
	res := env.res
	seeds := []int64{1, 2, 3}
	if rt {
		// The paper's RT resolutions (down to 0.01 m) explode voxel
		// counts; use proportionally finer-than-baseline settings, and
		// fewer seeds (RT missions are an order of magnitude slower).
		res = env.resRT
		seeds = seeds[:2]
	}
	if scale < quickScale {
		seeds = seeds[:1]
	}
	h, v := missionRays(scale)
	var agg nav.Result
	completed := 0
	for _, seed := range seeds {
		cfg := core.DefaultConfig(res)
		cfg.MaxRange = env.rangeM
		cfg.RT = rt
		cfg.CacheBuckets = 1 << 15
		m := core.MustNew(kind, cfg)
		r := nav.Run(nav.Config{
			World:            world.Build(env.env, seed),
			Sensor:           sensor.DefaultModel(env.rangeM, h, v),
			Mapper:           m,
			UAV:              frame,
			PlatformSlowdown: platformSlowdown,
			// Completed missions take tens of cycles under the TX2-scaled
			// control period; a tight cap keeps pathological
			// fine-resolution RT missions from stalling the harness.
			MaxCycles: 300,
		})
		if !r.Completed {
			continue
		}
		completed++
		agg.Time += r.Time
		agg.AvgCompute += r.AvgCompute
		agg.AvgVelocity += r.AvgVelocity
		agg.PathLength += r.PathLength
		agg.Cycles += r.Cycles
		agg.Collisions += r.Collisions
	}
	if completed == 0 {
		return nav.Result{}
	}
	n := float64(completed)
	agg.Completed = true
	agg.Time /= n
	agg.AvgCompute /= time.Duration(completed)
	agg.AvgVelocity /= n
	agg.PathLength /= n
	agg.Cycles /= completed
	return agg
}

func runUAVNav(opt Options, rt bool) ([]*Table, error) {
	suffix := ""
	if rt {
		suffix = "-RT"
	}
	runtimeT := &Table{
		Title: fmt.Sprintf("Figure %s(a): system end-to-end runtime per cycle (OctoMap%s vs OctoCache%s)", figUAV(rt), suffix, suffix),
		Note: "Mean perception+planning compute latency per cycle, TX2-scaled. The paper reports\n" +
			"1.78-3.02x (plain) and 1.33-1.53x (-RT) end-to-end speedups.",
		Header: []string{"env", "uav", "octomap(ms)", "octocache(ms)", "speedup"},
	}
	missionT := &Table{
		Title: fmt.Sprintf("Figure %s(b): task completion time (OctoMap%s vs OctoCache%s)", figUAV(rt), suffix, suffix),
		Note: "The paper reports completion-time reductions of 13-28% (plain) and 12-15% (-RT) on the\n" +
			"AscTec Pelican, and none for the DJI Spark where rotor power is the bottleneck.",
		Header: []string{"env", "uav", "octomap(s)", "octocache(s)", "reduction", "v(octomap)", "v(octocache)"},
	}
	envs := uavEnvs
	frames := []uav.Airframe{uav.AscTecPelican(), uav.DJISpark()}
	if opt.scale() < quickScale {
		// Quick mode: two environments (the cheap ends of the difficulty
		// range), one airframe.
		envs = []envSetup{uavEnvs[0], uavEnvs[3]}
		frames = frames[:1]
	}
	for _, env := range envs {
		for _, frame := range frames {
			opt.logf("fig%s: %v/%s", figUAV(rt), env.env, frame.Name)
			base := runMission(env, core.KindOctoMap, rt, frame, opt.scale())
			oc := runMission(env, core.KindParallel, rt, frame, opt.scale())
			if !base.Completed || !oc.Completed {
				runtimeT.AddRow(env.env.String(), frame.Name, "incomplete", "incomplete", "-")
				continue
			}
			runtimeT.AddRow(
				env.env.String(),
				frame.Name,
				fmt.Sprintf("%.2f", base.AvgCompute.Seconds()*1e3),
				fmt.Sprintf("%.2f", oc.AvgCompute.Seconds()*1e3),
				fmtRatio(base.AvgCompute.Seconds()/oc.AvgCompute.Seconds()),
			)
			reduction := 1 - oc.Time/base.Time
			missionT.AddRow(
				env.env.String(),
				frame.Name,
				fmtDur(base.Time),
				fmtDur(oc.Time),
				fmtPct(reduction),
				fmt.Sprintf("%.2fm/s", base.AvgVelocity),
				fmt.Sprintf("%.2fm/s", oc.AvgVelocity),
			)
		}
	}
	return []*Table{runtimeT, missionT}, nil
}

func figUAV(rt bool) string {
	if rt {
		return "17"
	}
	return "16"
}

func runSweeps(opt Options, rt bool) ([]*Table, error) {
	frame := uav.AscTecPelican()
	resT := &Table{
		Title:  fmt.Sprintf("Figure %s(a,b): fixed sensing range 3m, varying resolution (Room)", figSweep(rt)),
		Header: []string{"res(m)", "octomap cycle(ms)", "octocache cycle(ms)", "speedup", "octomap mission(s)", "octocache mission(s)", "reduction"},
	}
	resolutions := []float64{0.1, 0.15, 0.2}
	if rt {
		resolutions = []float64{0.04, 0.05, 0.08}
	}
	if opt.scale() < quickScale {
		resolutions = resolutions[1:2] // quick mode: single point
	}
	for _, res := range resolutions {
		env := envSetup{world.Room, 3, res, res}
		opt.logf("fig%s: res %.2f", figSweep(rt), res)
		base := runMission(env, core.KindOctoMap, rt, frame, opt.scale())
		oc := runMission(env, core.KindParallel, rt, frame, opt.scale())
		addSweepRow(resT, fmt.Sprintf("%.2f", res), base, oc)
	}
	rangeT := &Table{
		Title:  fmt.Sprintf("Figure %s(c,d): fixed resolution, varying sensing range (Room)", figSweep(rt)),
		Header: []string{"range(m)", "octomap cycle(ms)", "octocache cycle(ms)", "speedup", "octomap mission(s)", "octocache mission(s)", "reduction"},
	}
	fixedRes := 0.15
	if rt {
		fixedRes = 0.05
	}
	ranges := []float64{2, 3, 4}
	if opt.scale() < quickScale {
		ranges = ranges[1:2]
	}
	for _, rng := range ranges {
		env := envSetup{world.Room, rng, fixedRes, fixedRes}
		opt.logf("fig%s: range %.1f", figSweep(rt), rng)
		base := runMission(env, core.KindOctoMap, rt, frame, opt.scale())
		oc := runMission(env, core.KindParallel, rt, frame, opt.scale())
		addSweepRow(rangeT, fmt.Sprintf("%.1f", rng), base, oc)
	}
	return []*Table{resT, rangeT}, nil
}

func figSweep(rt bool) string {
	if rt {
		return "19"
	}
	return "18"
}

func addSweepRow(t *Table, param string, base, oc nav.Result) {
	if !base.Completed || !oc.Completed {
		t.AddRow(param, "incomplete", "incomplete", "-", "-", "-", "-")
		return
	}
	t.AddRow(
		param,
		fmt.Sprintf("%.2f", base.AvgCompute.Seconds()*1e3),
		fmt.Sprintf("%.2f", oc.AvgCompute.Seconds()*1e3),
		fmtRatio(base.AvgCompute.Seconds()/oc.AvgCompute.Seconds()),
		fmtDur(base.Time),
		fmtDur(oc.Time),
		fmtPct(1-oc.Time/base.Time),
	)
}
