// Package cache implements OctoCache's flat, bucketed voxel cache
// (paper §4.2–§4.3): the layer that absorbs duplicate voxel updates
// before they reach the octree.
//
// The cache is an array of w buckets (w a power of two); each bucket
// holds a small vector of cells, a cell being a voxel key plus the
// voxel's accumulated log-odds occupancy. Storing the accumulated value
// (not the latest observation) is what makes cache hits answer queries
// exactly as vanilla OctoMap would, and makes eviction a plain overwrite
// of the octree's copy.
//
// Two bucket-index functions are provided. Hash indexing is the strawman
// of §4.2; Morton indexing (§4.3) places voxels so that the sequential
// bucket sweep used during eviction emits them in (near-)Morton order,
// the ordering proved optimal for octree insertion locality.
package cache

import (
	"fmt"
	"sort"
	"sync/atomic"

	"octocache/internal/voxel"
)

// IndexMode selects the bucket-index function.
type IndexMode int

const (
	// HashIndex buckets by a multiplicative hash of the key — the
	// strawman serial OctoCache of §4.2.
	HashIndex IndexMode = iota
	// MortonIndex buckets by Morton code modulo w — §4.3's refinement,
	// which makes sequential eviction approximate Morton order.
	MortonIndex
)

func (m IndexMode) String() string {
	switch m {
	case HashIndex:
		return "hash"
	case MortonIndex:
		return "morton"
	default:
		return fmt.Sprintf("IndexMode(%d)", int(m))
	}
}

// EvictOrder selects how an eviction batch is ordered before it is
// written to the octree.
type EvictOrder int

const (
	// OrderBucketScan emits evicted cells in bucket-sweep order, oldest
	// first within a bucket — the paper's implementation. Under
	// MortonIndex this approximates ascending Morton order when the
	// active voxel set is spatially compact.
	OrderBucketScan EvictOrder = iota
	// OrderMorton additionally sorts the evicted batch by full Morton
	// code, guaranteeing the optimal insertion order at O(n log n) cost.
	// Exposed for the eviction-order ablation.
	OrderMorton
)

func (o EvictOrder) String() string {
	switch o {
	case OrderBucketScan:
		return "bucket-scan"
	case OrderMorton:
		return "morton-sort"
	default:
		return fmt.Sprintf("EvictOrder(%d)", int(o))
	}
}

// Config configures a Cache.
type Config struct {
	// Buckets is w, the bucket count; rounded up to a power of two.
	// The paper's UAV setup uses 512K buckets.
	Buckets int
	// Tau is τ, the maximum number of cells a bucket retains after
	// eviction (paper default 4).
	Tau int
	// Index selects the bucket-index function.
	Index IndexMode
	// Order selects the eviction batch ordering.
	Order EvictOrder
	// Occupancy supplies δ_occupied, δ_free, the clamps, and the
	// threshold; it must match the backing octree's parameters for query
	// consistency.
	Occupancy voxel.Params
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Buckets < 1 {
		return fmt.Errorf("cache: Buckets must be >= 1, got %d", c.Buckets)
	}
	if c.Tau < 1 {
		return fmt.Errorf("cache: Tau must be >= 1, got %d", c.Tau)
	}
	return c.Occupancy.Validate()
}

// Cell is one cache record: a voxel and its accumulated occupancy.
// NominalBytes is its size in the paper's packed C++ layout.
type Cell struct {
	Key     voxel.Key
	LogOdds float32
}

// NominalBytes is the paper's per-cell size: three coordinate bytes plus
// a 4-byte occupancy value (§5.1). The Go layout is larger (12 bytes);
// Stats reports both.
const NominalBytes = 7

// Stats accumulates cache behaviour counters.
type Stats struct {
	Inserts     int64 // total voxel insertions
	Hits        int64 // insertions that found their voxel cached
	Misses      int64 // insertions that did not
	OctreeFills int64 // misses whose voxel existed in the octree
	Evicted     int64 // cells evicted over the cache's lifetime
	Queries     int64 // point queries served
	QueryHits   int64 // point queries answered from the cache
}

// Add returns the field-wise sum of two stats snapshots. The sharded map
// service uses it to aggregate per-shard caches into one map-level view.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Inserts:     s.Inserts + o.Inserts,
		Hits:        s.Hits + o.Hits,
		Misses:      s.Misses + o.Misses,
		OctreeFills: s.OctreeFills + o.OctreeFills,
		Evicted:     s.Evicted + o.Evicted,
		Queries:     s.Queries + o.Queries,
		QueryHits:   s.QueryHits + o.QueryHits,
	}
}

// HitRate returns Hits/Inserts, the paper's cache-hit ratio metric.
func (s Stats) HitRate() float64 {
	if s.Inserts == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Inserts)
}

// Cache is the OctoCache voxel cache. Mutators (Insert, Evict, Flush,
// ResetStats) must be serialized by the caller, per the paper's
// threading design. The read-only paths (Query, Occupied, Walk, Len and
// the shape metrics) are safe for any number of concurrent readers as
// long as no mutator is active — the sharded map service relies on this
// to answer cache-hit queries under a shared lock. Query counters
// therefore live in atomic side counters.
type Cache struct {
	cfg     Config
	mask    uint64
	buckets [][]Cell
	cells   int
	// stats holds the mutator-side counters; queries/queryHits are kept
	// atomically so concurrent readers can count themselves.
	stats     Stats
	queries   atomic.Int64
	queryHits atomic.Int64
}

// New creates a cache. It panics on invalid configuration; use NewChecked
// to receive the error.
func New(cfg Config) *Cache {
	c, err := NewChecked(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// NewChecked creates a cache, validating the configuration.
func NewChecked(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := 1
	for w < cfg.Buckets {
		w <<= 1
	}
	cfg.Buckets = w
	return &Cache{
		cfg:     cfg,
		mask:    uint64(w - 1),
		buckets: make([][]Cell, w),
	}, nil
}

// Config returns the cache's configuration (with Buckets rounded).
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the behaviour counters.
func (c *Cache) Stats() Stats {
	s := c.stats
	s.Queries = c.queries.Load()
	s.QueryHits = c.queryHits.Load()
	return s
}

// ResetStats zeroes the behaviour counters. Call it only while no
// concurrent readers are active.
func (c *Cache) ResetStats() {
	c.stats = Stats{}
	c.queries.Store(0)
	c.queryHits.Store(0)
}

// Len returns the number of cells currently held.
func (c *Cache) Len() int { return c.cells }

// NominalMemoryBytes returns the cache occupancy in the paper's 7-byte
// cell accounting.
func (c *Cache) NominalMemoryBytes() int64 { return int64(c.cells) * NominalBytes }

// MemoryBytes estimates the actual Go heap usage of the cell storage.
func (c *Cache) MemoryBytes() int64 {
	var capSum int64
	for _, b := range c.buckets {
		capSum += int64(cap(b))
	}
	return capSum * 12 // unsafe.Sizeof(Cell{}) with padding
}

// bucketIndex maps a key to its bucket.
func (c *Cache) bucketIndex(k voxel.Key) uint64 {
	switch c.cfg.Index {
	case MortonIndex:
		return k.Morton() & c.mask
	default:
		// Fibonacci-style multiplicative hash over the packed key.
		packed := uint64(k.X) | uint64(k.Y)<<16 | uint64(k.Z)<<32
		return (packed * 0x9E3779B97F4A7C15) >> 16 & c.mask
	}
}

// TreeLookup resolves a voxel's accumulated occupancy from the backing
// octree on a cache miss. known must be false for never-observed voxels.
type TreeLookup func(voxel.Key) (logOdds float32, known bool)

// Insert integrates one observation for key k (occupied or free) into the
// cache and reports whether it was a cache hit. On a miss the voxel's
// prior accumulated value is pulled from the octree via lookup — this is
// the mechanism that preserves query consistency (§4.2.1). lookup may be
// nil when the caller knows the octree cannot contain the key.
func (c *Cache) Insert(k voxel.Key, occupied bool, lookup TreeLookup) (hit bool) {
	c.stats.Inserts++
	delta := c.cfg.Occupancy.LogOddsMiss
	if occupied {
		delta = c.cfg.Occupancy.LogOddsHit
	}
	b := c.bucketIndex(k)
	bucket := c.buckets[b]
	for i := range bucket {
		if bucket[i].Key == k {
			bucket[i].LogOdds = c.clamp(bucket[i].LogOdds + delta)
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	base := float32(0) // unknown voxels start from the prior (log-odds 0)
	if lookup != nil {
		if prior, known := lookup(k); known {
			base = prior
			c.stats.OctreeFills++
		}
	}
	c.buckets[b] = append(bucket, Cell{Key: k, LogOdds: c.clamp(base + delta)})
	c.cells++
	return false
}

func (c *Cache) clamp(l float32) float32 {
	if l < c.cfg.Occupancy.ClampMin {
		return c.cfg.Occupancy.ClampMin
	}
	if l > c.cfg.Occupancy.ClampMax {
		return c.cfg.Occupancy.ClampMax
	}
	return l
}

// Query returns the accumulated occupancy of k if cached. On (hit=false)
// the caller must consult the backing octree. Query is safe for
// concurrent readers while no mutator is active.
func (c *Cache) Query(k voxel.Key) (logOdds float32, hit bool) {
	c.queries.Add(1)
	bucket := c.buckets[c.bucketIndex(k)]
	for i := range bucket {
		if bucket[i].Key == k {
			c.queryHits.Add(1)
			return bucket[i].LogOdds, true
		}
	}
	return 0, false
}

// Occupied reports the thresholded occupancy of k if cached.
func (c *Cache) Occupied(k voxel.Key) (occupied, hit bool) {
	l, hit := c.Query(k)
	if !hit {
		return false, false
	}
	return l >= c.cfg.Occupancy.OccupancyThreshold, true
}

// Evict removes the earliest-inserted cells from every bucket holding
// more than τ, appending them to dst and returning it. Buckets are swept
// in index order; with MortonIndex that emits the batch in ascending
// (M mod w) order, and with Order == OrderMorton the batch is further
// sorted by full Morton code. The returned cells carry accumulated
// occupancies ready to overwrite their octree entries.
func (c *Cache) Evict(dst []Cell) []Cell {
	start := len(dst)
	for i := range c.buckets {
		bucket := c.buckets[i]
		if len(bucket) <= c.cfg.Tau {
			continue
		}
		n := len(bucket) - c.cfg.Tau
		dst = append(dst, bucket[:n]...)
		// Shift survivors down, preserving their insertion order.
		copy(bucket, bucket[n:])
		c.buckets[i] = bucket[:c.cfg.Tau]
		c.cells -= n
		c.stats.Evicted += int64(n)
	}
	if c.cfg.Order == OrderMorton {
		batch := dst[start:]
		sort.Slice(batch, func(i, j int) bool {
			return batch[i].Key.Morton() < batch[j].Key.Morton()
		})
	}
	return dst
}

// Flush evicts every cell in the cache (bucket sweep order, optionally
// Morton-sorted), leaving it empty. Used to finalize a map so the octree
// holds all accumulated state.
func (c *Cache) Flush(dst []Cell) []Cell {
	start := len(dst)
	for i := range c.buckets {
		dst = append(dst, c.buckets[i]...)
		c.stats.Evicted += int64(len(c.buckets[i]))
		c.buckets[i] = c.buckets[i][:0]
	}
	c.cells = 0
	if c.cfg.Order == OrderMorton {
		batch := dst[start:]
		sort.Slice(batch, func(i, j int) bool {
			return batch[i].Key.Morton() < batch[j].Key.Morton()
		})
	}
	return dst
}

// Drain removes every cell whose key matches, appending the removed
// cells to dst (bucket-sweep order; survivors keep their insertion
// order). The windowed engine uses it to pull a tile's cells out of the
// cache before the tile spills — a spilled tile must leave no cells
// behind, or their accumulation would restart from zero on revisit.
func (c *Cache) Drain(dst []Cell, match func(voxel.Key) bool) []Cell {
	start := len(dst)
	for i := range c.buckets {
		bucket := c.buckets[i]
		kept := 0
		for _, cell := range bucket {
			if match(cell.Key) {
				dst = append(dst, cell)
				continue
			}
			bucket[kept] = cell
			kept++
		}
		c.buckets[i] = bucket[:kept]
	}
	n := len(dst) - start
	c.cells -= n
	c.stats.Evicted += int64(n)
	if c.cfg.Order == OrderMorton {
		batch := dst[start:]
		sort.Slice(batch, func(i, j int) bool {
			return batch[i].Key.Morton() < batch[j].Key.Morton()
		})
	}
	return dst
}

// MaxBucketLen returns the longest current bucket — a collision health
// metric used by the τ-shape experiment (§6.2.4).
func (c *Cache) MaxBucketLen() int {
	max := 0
	for _, b := range c.buckets {
		if len(b) > max {
			max = len(b)
		}
	}
	return max
}

// BucketHistogram returns counts of buckets by occupancy: index i holds
// the number of buckets with exactly i cells, and the final index
// aggregates all buckets at or beyond maxLen cells.
func (c *Cache) BucketHistogram(maxLen int) []int {
	if maxLen < 1 {
		maxLen = 1
	}
	hist := make([]int, maxLen+1)
	for _, b := range c.buckets {
		n := len(b)
		if n >= maxLen {
			n = maxLen
		}
		hist[n]++
	}
	return hist
}

// Walk visits every cached cell in bucket-sweep order (the eviction
// order). The walk stops early if fn returns false.
func (c *Cache) Walk(fn func(Cell) bool) {
	for _, b := range c.buckets {
		for _, cell := range b {
			if !fn(cell) {
				return
			}
		}
	}
}
