package cache

import (
	"math/rand"
	"sort"
	"testing"

	"octocache/internal/octree"
)

func key(x, y, z uint16) octree.Key { return octree.Key{X: x, Y: y, Z: z} }

func testConfig(buckets, tau int, mode IndexMode) Config {
	return Config{
		Buckets:   buckets,
		Tau:       tau,
		Index:     mode,
		Occupancy: octree.DefaultParams(0.1),
	}
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig(16, 2, HashIndex).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Tau: 1, Occupancy: octree.DefaultParams(0.1)},
		{Buckets: 4, Occupancy: octree.DefaultParams(0.1)},
		{Buckets: 4, Tau: 1}, // zero occupancy params
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestBucketsRoundedToPowerOfTwo(t *testing.T) {
	c := New(testConfig(100, 2, HashIndex))
	if got := c.Config().Buckets; got != 128 {
		t.Errorf("Buckets = %d, want 128", got)
	}
}

func TestInsertHitMiss(t *testing.T) {
	c := New(testConfig(64, 4, MortonIndex))
	k := key(10, 20, 30)
	if hit := c.Insert(k, true, nil); hit {
		t.Error("first insert reported hit")
	}
	if hit := c.Insert(k, true, nil); !hit {
		t.Error("second insert reported miss")
	}
	s := c.Stats()
	if s.Inserts != 2 || s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestAccumulationMatchesOctoMapMath(t *testing.T) {
	p := octree.DefaultParams(0.1)
	c := New(testConfig(64, 4, MortonIndex))
	k := key(1, 2, 3)
	c.Insert(k, true, nil)
	c.Insert(k, true, nil)
	c.Insert(k, false, nil)
	want := p.LogOddsHit + p.LogOddsHit + p.LogOddsMiss
	if got, hit := c.Query(k); !hit || got != want {
		t.Errorf("Query = %v,%v want %v", got, hit, want)
	}
}

func TestInsertClamping(t *testing.T) {
	p := octree.DefaultParams(0.1)
	c := New(testConfig(64, 4, HashIndex))
	k := key(7, 7, 7)
	for i := 0; i < 50; i++ {
		c.Insert(k, true, nil)
	}
	if got, _ := c.Query(k); got != p.ClampMax {
		t.Errorf("log-odds %v, want clamp max", got)
	}
	for i := 0; i < 100; i++ {
		c.Insert(k, false, nil)
	}
	if got, _ := c.Query(k); got != p.ClampMin {
		t.Errorf("log-odds %v, want clamp min", got)
	}
}

func TestMissPullsOctreeValue(t *testing.T) {
	p := octree.DefaultParams(0.1)
	c := New(testConfig(64, 4, MortonIndex))
	k := key(100, 100, 100)
	prior := float32(1.5)
	lookup := func(q octree.Key) (float32, bool) {
		if q == k {
			return prior, true
		}
		return 0, false
	}
	c.Insert(k, true, lookup)
	want := prior + p.LogOddsHit
	if got, hit := c.Query(k); !hit || got != want {
		t.Errorf("Query = %v,%v want %v (accumulated from octree prior)", got, hit, want)
	}
	if c.Stats().OctreeFills != 1 {
		t.Errorf("OctreeFills = %d, want 1", c.Stats().OctreeFills)
	}
	// A different key gets the unknown-voxel prior t=0.
	k2 := key(5, 5, 5)
	c.Insert(k2, false, lookup)
	if got, _ := c.Query(k2); got != p.LogOddsMiss {
		t.Errorf("unknown-voxel insert = %v, want %v", got, p.LogOddsMiss)
	}
}

func TestQueryMissAndOccupied(t *testing.T) {
	p := octree.DefaultParams(0.1)
	c := New(testConfig(64, 4, MortonIndex))
	if _, hit := c.Query(key(9, 9, 9)); hit {
		t.Error("query hit on empty cache")
	}
	k := key(3, 3, 3)
	c.Insert(k, true, nil)
	occ, hit := c.Occupied(k)
	if !hit || !occ {
		t.Errorf("Occupied = %v,%v", occ, hit)
	}
	kf := key(4, 4, 4)
	c.Insert(kf, false, nil)
	occ, hit = c.Occupied(kf)
	if !hit || occ {
		t.Errorf("free voxel Occupied = %v,%v", occ, hit)
	}
	_ = p
}

func TestEvictionOldestFirstDownToTau(t *testing.T) {
	// One bucket (w=1) makes collision behaviour deterministic.
	cfg := testConfig(1, 2, HashIndex)
	c := New(cfg)
	keys := []octree.Key{key(1, 0, 0), key(2, 0, 0), key(3, 0, 0), key(4, 0, 0), key(5, 0, 0)}
	for _, k := range keys {
		c.Insert(k, true, nil)
	}
	if c.Len() != 5 {
		t.Fatalf("Len = %d, want 5", c.Len())
	}
	evicted := c.Evict(nil)
	if len(evicted) != 3 {
		t.Fatalf("evicted %d cells, want 3", len(evicted))
	}
	// Earliest inserted go first.
	for i, want := range keys[:3] {
		if evicted[i].Key != want {
			t.Errorf("evicted[%d] = %v, want %v", i, evicted[i].Key, want)
		}
	}
	if c.Len() != 2 {
		t.Errorf("Len after evict = %d, want τ=2", c.Len())
	}
	// Survivors are the two newest and still queryable.
	for _, k := range keys[3:] {
		if _, hit := c.Query(k); !hit {
			t.Errorf("survivor %v missing after eviction", k)
		}
	}
	// Evicting again is a no-op.
	if again := c.Evict(nil); len(again) != 0 {
		t.Errorf("second evict returned %d cells", len(again))
	}
}

func TestEvictedCellsCarryAccumulatedValues(t *testing.T) {
	p := octree.DefaultParams(0.1)
	cfg := testConfig(1, 1, HashIndex)
	c := New(cfg)
	k1, k2 := key(1, 1, 1), key(2, 2, 2)
	c.Insert(k1, true, nil)
	c.Insert(k1, true, nil)
	c.Insert(k2, false, nil)
	evicted := c.Evict(nil)
	if len(evicted) != 1 || evicted[0].Key != k1 {
		t.Fatalf("evicted = %+v, want k1 only", evicted)
	}
	if evicted[0].LogOdds != 2*p.LogOddsHit {
		t.Errorf("evicted value %v, want accumulated %v", evicted[0].LogOdds, 2*p.LogOddsHit)
	}
}

func TestEvictMortonOrderSweep(t *testing.T) {
	// With MortonIndex and a bucket count exceeding the Morton range of
	// the keys, the bucket sweep emits exact ascending Morton order.
	cfg := testConfig(1<<12, 0+1, MortonIndex)
	cfg.Tau = 1
	c := New(cfg)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		k := key(uint16(rng.Intn(16)), uint16(rng.Intn(16)), uint16(rng.Intn(16)))
		c.Insert(k, true, nil)
		c.Insert(k, true, nil) // duplicate hits must not create cells
	}
	// Force everything out.
	evicted := c.Flush(nil)
	for i := 1; i < len(evicted); i++ {
		if evicted[i].Key.Morton() <= evicted[i-1].Key.Morton() {
			t.Fatalf("flush not in Morton order at %d", i)
		}
	}
}

func TestEvictOrderMortonSorts(t *testing.T) {
	cfg := testConfig(4, 1, HashIndex) // hash index scrambles buckets
	cfg.Order = OrderMorton
	c := New(cfg)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		k := key(uint16(rng.Intn(64)), uint16(rng.Intn(64)), uint16(rng.Intn(64)))
		c.Insert(k, rng.Intn(2) == 0, nil)
	}
	evicted := c.Evict(nil)
	if len(evicted) == 0 {
		t.Fatal("expected evictions")
	}
	if !sort.SliceIsSorted(evicted, func(i, j int) bool {
		return evicted[i].Key.Morton() < evicted[j].Key.Morton()
	}) {
		t.Error("OrderMorton eviction batch not sorted")
	}
}

func TestFlushEmptiesCache(t *testing.T) {
	c := New(testConfig(64, 4, MortonIndex))
	rng := rand.New(rand.NewSource(4))
	distinct := map[octree.Key]bool{}
	for i := 0; i < 500; i++ {
		k := key(uint16(rng.Intn(32)), uint16(rng.Intn(32)), uint16(rng.Intn(32)))
		c.Insert(k, true, nil)
		distinct[k] = true
	}
	flushed := c.Flush(nil)
	if len(flushed) != len(distinct) {
		t.Errorf("flushed %d cells, want %d distinct", len(flushed), len(distinct))
	}
	if c.Len() != 0 {
		t.Errorf("Len after flush = %d", c.Len())
	}
	if _, hit := c.Query(flushed[0].Key); hit {
		t.Error("query hit after flush")
	}
}

// TestBoundedMemoryAfterEviction is the paper's resource-overhead
// guarantee: after eviction, the cache never holds more than w*τ cells.
func TestBoundedMemoryAfterEviction(t *testing.T) {
	cfg := testConfig(64, 3, MortonIndex)
	c := New(cfg)
	rng := rand.New(rand.NewSource(5))
	for batch := 0; batch < 20; batch++ {
		for i := 0; i < 5000; i++ {
			k := key(uint16(rng.Intn(256)), uint16(rng.Intn(256)), uint16(rng.Intn(256)))
			c.Insert(k, rng.Intn(2) == 0, nil)
		}
		c.Evict(nil)
		bound := c.Config().Buckets * cfg.Tau
		if c.Len() > bound {
			t.Fatalf("batch %d: %d cells exceed bound %d", batch, c.Len(), bound)
		}
		if c.MaxBucketLen() > cfg.Tau {
			t.Fatalf("batch %d: bucket len %d exceeds τ", batch, c.MaxBucketLen())
		}
	}
	if c.NominalMemoryBytes() != int64(c.Len())*NominalBytes {
		t.Error("nominal memory accounting wrong")
	}
	if c.MemoryBytes() <= 0 {
		t.Error("MemoryBytes should be positive")
	}
}

// TestConsistencyAgainstFlatModel drives random insert/evict cycles and
// checks that cache+octree together always agree with a flat reference
// accumulator — the query-consistency property of §4.2.
func TestConsistencyAgainstFlatModel(t *testing.T) {
	p := octree.DefaultParams(0.1)
	p.Depth = 6
	tree := octree.New(p)
	cfg := Config{Buckets: 32, Tau: 2, Index: MortonIndex, Occupancy: p}
	c := New(cfg)
	ref := map[octree.Key]float32{}
	clamp := func(l float32) float32 {
		if l < p.ClampMin {
			return p.ClampMin
		}
		if l > p.ClampMax {
			return p.ClampMax
		}
		return l
	}
	rng := rand.New(rand.NewSource(6))
	lookup := func(k octree.Key) (float32, bool) { return tree.Search(k) }
	for step := 0; step < 8000; step++ {
		k := key(uint16(rng.Intn(64)), uint16(rng.Intn(64)), uint16(rng.Intn(64)))
		occ := rng.Intn(2) == 0
		c.Insert(k, occ, lookup)
		delta := p.LogOddsMiss
		if occ {
			delta = p.LogOddsHit
		}
		ref[k] = clamp(ref[k] + delta)

		// Combined query must match the reference at all times.
		got, hit := c.Query(k)
		if !hit {
			got, _ = tree.Search(k)
		}
		if got != ref[k] {
			t.Fatalf("step %d: combined value %v, reference %v", step, got, ref[k])
		}

		if step%500 == 499 {
			for _, cell := range c.Evict(nil) {
				tree.SetNodeValue(cell.Key, cell.LogOdds)
			}
		}
	}
	// Final flush: octree alone must now match the reference exactly.
	for _, cell := range c.Flush(nil) {
		tree.SetNodeValue(cell.Key, cell.LogOdds)
	}
	for k, want := range ref {
		got, known := tree.Search(k)
		if !known || got != want {
			t.Fatalf("after flush, key %v: octree %v,%v want %v", k, got, known, want)
		}
	}
}

func TestResetStats(t *testing.T) {
	c := New(testConfig(16, 2, HashIndex))
	c.Insert(key(1, 1, 1), true, nil)
	c.ResetStats()
	if s := c.Stats(); s.Inserts != 0 || s.Misses != 0 {
		t.Errorf("stats not reset: %+v", s)
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Error("empty stats hit rate should be 0")
	}
	s = Stats{Inserts: 10, Hits: 9}
	if s.HitRate() != 0.9 {
		t.Errorf("HitRate = %v", s.HitRate())
	}
}

func TestIndexAndOrderStrings(t *testing.T) {
	if HashIndex.String() != "hash" || MortonIndex.String() != "morton" {
		t.Error("IndexMode strings wrong")
	}
	if OrderBucketScan.String() != "bucket-scan" || OrderMorton.String() != "morton-sort" {
		t.Error("EvictOrder strings wrong")
	}
	if IndexMode(9).String() == "" || EvictOrder(9).String() == "" {
		t.Error("unknown enum strings empty")
	}
}

func BenchmarkInsertHit(b *testing.B) {
	c := New(testConfig(1<<16, 4, MortonIndex))
	k := key(100, 100, 100)
	c.Insert(k, true, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(k, true, nil)
	}
}

func BenchmarkInsertMixed(b *testing.B) {
	c := New(testConfig(1<<16, 4, MortonIndex))
	rng := rand.New(rand.NewSource(1))
	keys := make([]octree.Key, 4096)
	for i := range keys {
		keys[i] = key(uint16(rng.Intn(128)), uint16(rng.Intn(128)), uint16(rng.Intn(128)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(keys[i&4095], true, nil)
		if i%100000 == 99999 {
			c.Evict(nil)
		}
	}
}

func TestBucketHistogram(t *testing.T) {
	cfg := testConfig(4, 8, HashIndex)
	c := New(cfg)
	// Empty cache: all buckets at occupancy 0.
	h := c.BucketHistogram(4)
	if h[0] != c.Config().Buckets {
		t.Errorf("empty cache histogram = %v", h)
	}
	for i := 0; i < 10; i++ {
		c.Insert(key(uint16(i), 0, 0), true, nil)
	}
	h = c.BucketHistogram(4)
	total := 0
	cells := 0
	for i, n := range h {
		total += n
		cells += i * n // over-counts the aggregated tail, checked below
	}
	if total != c.Config().Buckets {
		t.Errorf("histogram buckets %d != %d", total, c.Config().Buckets)
	}
	if cells < 1 {
		t.Error("histogram lost all cells")
	}
	// Degenerate maxLen clamps.
	if h := c.BucketHistogram(0); len(h) != 2 {
		t.Errorf("clamped histogram has %d entries", len(h))
	}
}

func TestCacheWalk(t *testing.T) {
	c := New(testConfig(16, 4, MortonIndex))
	want := map[octree.Key]bool{}
	for i := 0; i < 50; i++ {
		k := key(uint16(i), uint16(i%7), 3)
		c.Insert(k, true, nil)
		want[k] = true
	}
	got := map[octree.Key]bool{}
	c.Walk(func(cell Cell) bool {
		got[cell.Key] = true
		return true
	})
	if len(got) != len(want) {
		t.Errorf("walked %d cells, want %d", len(got), len(want))
	}
	// Early stop.
	n := 0
	c.Walk(func(Cell) bool { n++; return n < 5 })
	if n != 5 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Inserts: 10, Hits: 6, Misses: 4, OctreeFills: 2, Evicted: 3, Queries: 5, QueryHits: 1}
	b := Stats{Inserts: 1, Hits: 1, Misses: 0, OctreeFills: 0, Evicted: 7, Queries: 2, QueryHits: 2}
	got := a.Add(b)
	want := Stats{Inserts: 11, Hits: 7, Misses: 4, OctreeFills: 2, Evicted: 10, Queries: 7, QueryHits: 3}
	if got != want {
		t.Errorf("Add = %+v, want %+v", got, want)
	}
	if got.HitRate() != 7.0/11.0 {
		t.Errorf("merged hit rate = %v", got.HitRate())
	}
}

func TestDrainByTile(t *testing.T) {
	c := New(testConfig(8, 4, MortonIndex))
	rng := rand.New(rand.NewSource(11))
	inTile := func(k octree.Key) bool { return k.X < 8 && k.Y < 8 && k.Z < 8 }
	nIn := 0
	for i := 0; i < 300; i++ {
		k := key(uint16(rng.Intn(16)), uint16(rng.Intn(16)), uint16(rng.Intn(16)))
		c.Insert(k, rng.Intn(2) == 0, nil)
	}
	total := c.Len()
	c.Walk(func(cell Cell) bool {
		if inTile(cell.Key) {
			nIn++
		}
		return true
	})
	if nIn == 0 || nIn == total {
		t.Fatalf("degenerate split: %d of %d in tile", nIn, total)
	}
	drained := c.Drain(nil, inTile)
	if len(drained) != nIn {
		t.Fatalf("Drain returned %d cells, want %d", len(drained), nIn)
	}
	if c.Len() != total-nIn {
		t.Fatalf("Len after Drain = %d, want %d", c.Len(), total-nIn)
	}
	for _, cell := range drained {
		if !inTile(cell.Key) {
			t.Fatalf("drained cell %v does not match", cell.Key)
		}
	}
	c.Walk(func(cell Cell) bool {
		if inTile(cell.Key) {
			t.Fatalf("matching cell %v survived Drain", cell.Key)
		}
		return true
	})
	if got := c.Stats().Evicted; got != int64(nIn) {
		t.Errorf("Evicted = %d, want %d", got, nIn)
	}
	// Draining again is a no-op.
	if again := c.Drain(nil, inTile); len(again) != 0 {
		t.Errorf("second Drain returned %d cells", len(again))
	}
}
