// Package clock abstracts the time source of the closed-loop navigation
// pipeline (internal/nav). The paper's flight-performance results
// (Figures 16–19) feed measured per-cycle compute latency into the UAV's
// safe-velocity roofline, which makes mission outcomes a function of
// host load when the latency comes from the wall clock. This package
// offers two interchangeable sources:
//
//   - Real: the host clock. Per-cycle latency is honest wall time, so
//     benches and cmd/octobench keep measuring the machine they run on.
//   - Virtual: a deterministic simulated clock. Per-cycle latency is
//     *modeled* from the work the cycle actually performed — voxels
//     traced, octree writes, replans — priced by a calibrated CostModel.
//     With a seeded world and sensor, an entire mission becomes a pure
//     function of its configuration: background load cannot leak into
//     the vehicle dynamics, so repeated runs are bit-for-bit identical.
//
// The per-unit costs in DefaultCostModel are calibrated against this
// repository's own BENCH_core.json insert measurements, so modeled
// cycle latencies land in the same regime as host-measured ones and the
// pipeline ranking (OctoMap slowest, cached pipelines faster) is
// preserved under the model.
package clock

import "time"

// Work summarizes the compute-relevant work one perception-planning
// cycle performed. The counter fields are deltas of the mapping
// pipeline's cumulative work counters (core.Counters); Points is the
// size of the sensor scan fed to Insert and prices the cycle when the
// mapper exposes no counters (e.g. missions driven through the public
// API, whose maps keep their stats surface private).
type Work struct {
	// Points is the number of sensor returns inserted this cycle.
	Points int64
	// VoxelsTraced is the number of per-voxel observations ray tracing
	// produced this cycle (delta of Timings.VoxelsTraced).
	VoxelsTraced int64
	// OctreeWrites is the number of voxel writes the octree received
	// this cycle (delta of Timings.VoxelsToOctree). For cached pipelines
	// this is the post-absorption residue, which is how the model
	// reproduces OctoCache's speedup over the OctoMap baseline.
	OctreeWrites int64
	// Replans counts A* invocations this cycle.
	Replans int64
}

// Clock is the navigation loop's time source.
//
// The contract mirrors how nav.Run uses it: Now marks the start of a
// cycle, CycleCompute converts the cycle into a compute latency (wall
// time on the real clock, priced work on the virtual one), and Advance
// moves simulated time forward by the control interval so Now tracks
// mission time on the virtual clock.
type Clock interface {
	// Now returns the clock's current reading.
	Now() time.Time
	// CycleCompute returns the compute latency to charge for the cycle
	// that began at start and performed w. The real clock returns the
	// wall time elapsed since start and ignores w; the virtual clock
	// ignores start and prices w with its CostModel.
	CycleCompute(start time.Time, w Work) time.Duration
	// Advance moves the clock forward by the cycle's control interval.
	// A no-op on the real clock, whose reading is the host's.
	Advance(d time.Duration)
}

// Real is the host clock: per-cycle latency is measured wall time.
type Real struct{}

// Now returns the host time.
func (Real) Now() time.Time { return time.Now() }

// CycleCompute returns the wall time elapsed since start.
func (Real) CycleCompute(start time.Time, _ Work) time.Duration {
	return time.Since(start)
}

// Advance is a no-op: real time advances on its own.
func (Real) Advance(time.Duration) {}

// CostModel prices a cycle's Work as a compute latency. Zero work costs
// zero, so an idle cycle's control interval collapses to the sensor
// period under nav's dt = max(sensorPeriod, compute) rule.
type CostModel struct {
	// PerVoxelTraced is the cost of tracing one voxel observation and
	// admitting it (cache insert, or the trace bookkeeping the direct
	// pipeline shares). Charged per Work.VoxelsTraced.
	PerVoxelTraced time.Duration
	// PerOctreeWrite is the cost of one octree voxel write: the tree
	// descent plus node update. Charged per Work.OctreeWrites — the
	// dominant term for the OctoMap baseline, largely absorbed by the
	// cache in the OctoCache pipelines.
	PerOctreeWrite time.Duration
	// PerReplan is the cost of one A* invocation over the planning grid.
	PerReplan time.Duration
	// PerPoint prices a cycle by scan size when the mapper exposes no
	// work counters: one sensor return implies a ray walk of a few
	// dozen voxels plus map updates. Charged only when both counter
	// fields of Work are zero, so counter-equipped mappers are never
	// double-billed.
	PerPoint time.Duration
}

// DefaultCostModel returns per-unit costs calibrated against this
// repository's BENCH_core.json on the reference box: serial insert
// ≈0.95 ms and octomap ≈6.3 ms for scans tracing a few thousand voxels,
// giving ≈150 ns per traced voxel and ≈800 ns per octree write (the
// ≈6.6x baseline gap comes almost entirely from the write volume the
// cache absorbs).
func DefaultCostModel() CostModel {
	return CostModel{
		PerVoxelTraced: 150 * time.Nanosecond,
		PerOctreeWrite: 800 * time.Nanosecond,
		PerReplan:      2 * time.Millisecond,
		PerPoint:       5 * time.Microsecond,
	}
}

// Cost prices w. Negative fields (a counter reset mid-mission would be
// a caller bug) are treated as zero so the clock can never run
// backwards.
func (m CostModel) Cost(w Work) time.Duration {
	d := time.Duration(pos(w.VoxelsTraced))*m.PerVoxelTraced +
		time.Duration(pos(w.OctreeWrites))*m.PerOctreeWrite +
		time.Duration(pos(w.Replans))*m.PerReplan
	if w.VoxelsTraced == 0 && w.OctreeWrites == 0 {
		d += time.Duration(pos(w.Points)) * m.PerPoint
	}
	return d
}

func pos(v int64) int64 {
	if v < 0 {
		return 0
	}
	return v
}

// epoch is the virtual clock's fixed start; any constant works, it just
// has to be the same for every run.
var epoch = time.Unix(0, 0).UTC()

// Virtual is the deterministic simulated clock. Its reading starts at a
// fixed epoch and advances only through Advance, so Now tracks simulated
// mission time; CycleCompute is a pure function of the reported Work.
// Not safe for concurrent use — the navigation loop is single-driver.
type Virtual struct {
	model CostModel
	now   time.Time
}

// NewVirtual returns a virtual clock pricing work with DefaultCostModel.
func NewVirtual() *Virtual { return NewVirtualWithModel(DefaultCostModel()) }

// NewVirtualWithModel returns a virtual clock with a custom cost model.
func NewVirtualWithModel(m CostModel) *Virtual {
	return &Virtual{model: m, now: epoch}
}

// Now returns the simulated time: epoch plus every Advance so far.
func (v *Virtual) Now() time.Time { return v.now }

// CycleCompute prices w with the clock's CostModel; start is ignored.
func (v *Virtual) CycleCompute(_ time.Time, w Work) time.Duration {
	return v.model.Cost(w)
}

// Advance moves simulated time forward. Negative durations are ignored.
func (v *Virtual) Advance(d time.Duration) {
	if d > 0 {
		v.now = v.now.Add(d)
	}
}

// Elapsed returns the simulated time accumulated since the epoch.
func (v *Virtual) Elapsed() time.Duration { return v.now.Sub(epoch) }
