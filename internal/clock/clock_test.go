package clock

import (
	"testing"
	"time"
)

// TestCostModelCalibration pins the latency model's contract: zero work
// costs zero (so a zero-work cycle's control interval collapses to the
// sensor period under nav's dt = max(period, compute) rule), and the
// cost is strictly monotone in every work dimension.
func TestCostModelCalibration(t *testing.T) {
	m := DefaultCostModel()
	if got := m.Cost(Work{}); got != 0 {
		t.Fatalf("Cost(zero work) = %v, want 0", got)
	}

	// Monotone in voxel count: more traced voxels never cost less.
	prev := time.Duration(-1)
	for _, n := range []int64{0, 1, 10, 1_000, 50_000, 1_000_000} {
		c := m.Cost(Work{VoxelsTraced: n})
		if c <= prev {
			t.Errorf("Cost not monotone in VoxelsTraced: %d voxels -> %v, previous %v", n, c, prev)
		}
		prev = c
	}

	base := Work{VoxelsTraced: 1000, OctreeWrites: 100, Replans: 1}
	for name, bumped := range map[string]Work{
		"VoxelsTraced": {VoxelsTraced: 2000, OctreeWrites: 100, Replans: 1},
		"OctreeWrites": {VoxelsTraced: 1000, OctreeWrites: 200, Replans: 1},
		"Replans":      {VoxelsTraced: 1000, OctreeWrites: 100, Replans: 2},
	} {
		if m.Cost(bumped) <= m.Cost(base) {
			t.Errorf("Cost not monotone in %s: %v <= %v", name, m.Cost(bumped), m.Cost(base))
		}
	}
}

// TestCostModelReproducesPipelineRanking checks the property the
// uavnav/rescue comparisons rely on: for the same traced volume, the
// OctoMap-shaped workload (every traced voxel written to the octree)
// prices higher than the cache-shaped one (only the eviction residue
// reaches the tree) — the model's rendering of the paper's speedup.
func TestCostModelReproducesPipelineRanking(t *testing.T) {
	m := DefaultCostModel()
	traced := int64(5000)
	octomap := m.Cost(Work{VoxelsTraced: traced, OctreeWrites: traced})
	cached := m.Cost(Work{VoxelsTraced: traced, OctreeWrites: traced / 20})
	if octomap <= cached {
		t.Fatalf("baseline workload (%v) not priced above cached workload (%v)", octomap, cached)
	}
}

// TestCostModelPointFallback: scan-size pricing applies only when no
// work counters were reported, so counter-equipped mappers are never
// double-billed for the same cycle.
func TestCostModelPointFallback(t *testing.T) {
	m := DefaultCostModel()
	if got := m.Cost(Work{Points: 100}); got != 100*m.PerPoint {
		t.Errorf("fallback pricing = %v, want %v", got, 100*m.PerPoint)
	}
	withCounters := m.Cost(Work{Points: 100, VoxelsTraced: 1000})
	if withCounters != m.Cost(Work{VoxelsTraced: 1000}) {
		t.Errorf("Points billed on top of counters: %v", withCounters)
	}
}

// TestCostModelNegativeWorkClamped: a (buggy) negative delta must never
// run the clock backwards.
func TestCostModelNegativeWorkClamped(t *testing.T) {
	m := DefaultCostModel()
	if got := m.Cost(Work{VoxelsTraced: -5, OctreeWrites: -5, Replans: -1, Points: -9}); got != 0 {
		t.Errorf("negative work priced at %v, want 0", got)
	}
}

func TestVirtualClockAdvances(t *testing.T) {
	v := NewVirtual()
	start := v.Now()
	if v.Elapsed() != 0 {
		t.Fatalf("fresh virtual clock elapsed %v, want 0", v.Elapsed())
	}
	v.Advance(20 * time.Millisecond)
	v.Advance(30 * time.Millisecond)
	v.Advance(-time.Hour) // ignored
	if got := v.Now().Sub(start); got != 50*time.Millisecond {
		t.Errorf("advanced %v, want 50ms", got)
	}
	if v.Elapsed() != 50*time.Millisecond {
		t.Errorf("Elapsed = %v, want 50ms", v.Elapsed())
	}
	// CycleCompute is pure pricing: it must not move the clock.
	before := v.Now()
	_ = v.CycleCompute(before, Work{VoxelsTraced: 1 << 20})
	if !v.Now().Equal(before) {
		t.Error("CycleCompute moved the virtual clock")
	}
}

// TestVirtualClockDeterministic: two clocks fed the same work sequence
// read identically — the package's reason to exist.
func TestVirtualClockDeterministic(t *testing.T) {
	seq := []Work{{VoxelsTraced: 1200, OctreeWrites: 90}, {Points: 40}, {VoxelsTraced: 7, Replans: 2}}
	a, b := NewVirtual(), NewVirtual()
	for _, w := range seq {
		a.Advance(a.CycleCompute(a.Now(), w))
		b.Advance(b.CycleCompute(b.Now(), w))
	}
	if !a.Now().Equal(b.Now()) || a.Elapsed() != b.Elapsed() {
		t.Errorf("identical work sequences diverged: %v vs %v", a.Elapsed(), b.Elapsed())
	}
}

func TestRealClockMeasuresWallTime(t *testing.T) {
	var r Real
	start := r.Now()
	time.Sleep(2 * time.Millisecond)
	if d := r.CycleCompute(start, Work{}); d < time.Millisecond {
		t.Errorf("real clock measured %v for a 2ms sleep", d)
	}
	r.Advance(time.Hour) // must be a no-op and not panic
}
