package core

import (
	"math/rand"
	"testing"

	"octocache/internal/geom"
	"octocache/internal/octree"
)

// TestInsertSteadyStateAllocs pins down the zero-allocation batch path:
// once the tracer's batch buffer, the engine's cell buffers, the cache,
// and the octree arena are warmed, a serial-pipeline Insert of an
// already-mapped scan must not allocate. A small slack absorbs runtime
// noise (timer reads, map-internal rehash amortization), but per-voxel or
// per-batch allocation regressions blow well past it. The compaction
// policy is enabled at a production-shaped threshold: its per-batch
// check must be free, and it must not trip on a steady-state arena.
// The durable dimension arms the WAL: the append path encodes into the
// store's reused buffer and writes through an open fd, so logging every
// batch must stay inside the same allocation budget. The boundary
// dimension swaps the tracer: once its bit planes are sized to the
// scan's bounding box, repeat scans must rasterize and sweep without
// allocating either.
func TestInsertSteadyStateAllocs(t *testing.T) {
	for _, kind := range []Kind{KindSerial, KindOctoMap} {
		for _, variant := range []string{"", "windowed", "durable", "boundary"} {
			name := kind.String()
			if variant != "" {
				name += "/" + variant
			}
			t.Run(name, func(t *testing.T) {
				cfg := testConfig()
				cfg.Compaction = octree.CompactionPolicy{MinFreeFraction: 0.25, MinFreeSlots: 1024}
				switch variant {
				case "windowed":
					// A static origin keeps every touched tile in-window, so
					// the armed window must cost only its per-tile residency
					// checks — no spills, no reloads, no allocation.
					cfg.Window = Window{Radius: 8, TileDepth: 5, Dir: t.TempDir()}
				case "durable":
					cfg.Durable = Durable{Dir: t.TempDir()}
				case "boundary":
					cfg.Trace = TraceBoundary
				}
				m := MustNew(kind, cfg)
				rng := rand.New(rand.NewSource(11))
				origin := geom.V(0.5, 0.5, 1)
				scan := synthScan(rng, origin, 200)
				for i := 0; i < 50; i++ { // warm every buffer and saturate values
					if err := m.Insert(origin, scan); err != nil {
						t.Fatal(err)
					}
				}
				avg := testing.AllocsPerRun(20, func() {
					if err := m.Insert(origin, scan); err != nil {
						t.Fatal(err)
					}
				})
				if avg > 2 {
					t.Errorf("steady-state Insert allocates %.1f times per scan; want ~0", avg)
				}
			})
		}
	}
}
