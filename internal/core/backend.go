package core

import (
	"fmt"

	"octocache/internal/octree"
	"octocache/internal/vdbgrid"
	"octocache/internal/voxel"
)

// Key and Leaf re-export the backend-neutral voxel vocabulary so layered
// packages (shard, the public API) can speak it without reaching into a
// storage package.
type (
	Key  = voxel.Key
	Leaf = voxel.Leaf
)

// BackendKind selects the voxel store behind a pipeline.
type BackendKind int

const (
	// BackendOctree is the OctoMap-style arena octree — adaptive pruning
	// and the Morton-friendly root-to-leaf layout the paper accelerates.
	// It is the default (zero value).
	BackendOctree BackendKind = iota
	// BackendGrid is the VDB-style hash-of-bricks grid
	// (internal/vdbgrid): two fixed levels, query-heavy friendly, no
	// compaction.
	BackendGrid
)

func (b BackendKind) String() string {
	switch b {
	case BackendOctree:
		return "octree"
	case BackendGrid:
		return "grid"
	default:
		return fmt.Sprintf("backend(%d)", int(b))
	}
}

// ParseBackendKind maps the flag spellings "octree" and "grid" to kinds.
func ParseBackendKind(s string) (BackendKind, error) {
	switch s {
	case "octree":
		return BackendOctree, nil
	case "grid":
		return BackendGrid, nil
	default:
		return 0, fmt.Errorf("core: unknown backend %q (want octree or grid)", s)
	}
}

// MarshalJSON encodes the kind as its flag spelling, so stats payloads
// read "octree"/"grid" instead of bare integers.
func (b BackendKind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + b.String() + `"`), nil
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (b *BackendKind) UnmarshalJSON(data []byte) error {
	if len(data) < 2 || data[0] != '"' || data[len(data)-1] != '"' {
		return fmt.Errorf("core: backend must be a JSON string, got %s", data)
	}
	k, err := ParseBackendKind(string(data[1 : len(data)-1]))
	if err != nil {
		return err
	}
	*b = k
	return nil
}

// Backend is the narrow storage surface the mapping pipelines drive: the
// apply stage's two writes, the query stage's lookup, and the leaf-walk
// pair serialization and loading are built on. Everything else a store
// may offer — compaction, arena accounting, visit counting, direct
// serialization — is an optional capability (Compactor, ArenaReporter,
// VisitCounter, io.WriterTo) type-asserted once at engine construction.
//
// Semantics every implementation must share, bit-for-bit: log-odds
// accumulate per voxel.Params (hit/miss deltas, Clamp on every write),
// UpdateCell starts never-observed voxels from 0, SetCell overwrites
// with the clamped value, and Walk emits leaves in ascending Morton
// order. The cross-backend consistency suite enforces this.
//
// The concurrency contract matches octree.Tree's: one mutator at a
// time; any number of concurrent Lookup calls while no mutator runs.
type Backend interface {
	// UpdateCell integrates one incremental observation for the voxel at
	// k — the direct (OctoMap baseline) apply path.
	UpdateCell(k voxel.Key, occupied bool)
	// SetCell overwrites the voxel's accumulated log-odds, clamped — the
	// eviction apply path (cache cells carry accumulated values).
	SetCell(k voxel.Key, logOdds float32)
	// Lookup returns the voxel's accumulated log-odds; known is false
	// for never-observed voxels.
	Lookup(k voxel.Key) (logOdds float32, known bool)
	// SetLeafAt writes a (possibly aggregate) leaf as emitted by Walk —
	// the seam snapshot loading is built on.
	SetLeafAt(k voxel.Key, depth int, logOdds float32)
	// Walk visits every leaf in ascending Morton order. Streams from
	// different backends are content-equal, not structurally identical;
	// Snapshot canonicalizes them.
	Walk(fn func(voxel.Leaf) bool)
	// Params returns the store's occupancy model.
	Params() voxel.Params
	// MemoryBytes estimates the store's heap footprint.
	MemoryBytes() int64
}

// Compactor is the optional capability of backends whose storage
// fragments and supports an in-place rebuild. The octree implements it
// (pruning churns its arenas); the grid is hash-addressed, never
// fragments, and deliberately does not.
type Compactor interface {
	NeedsCompaction(p octree.CompactionPolicy) bool
	Compact() octree.CompactStats
}

// ArenaReporter is the optional capability of backends that account
// storage in arena vocabulary: live units, recycled free slots, total
// capacity. The octree reports node slots; the grid reports resident
// bricks (free is always zero).
type ArenaReporter interface {
	ArenaStats() (live, free, capacity int)
}

// VisitCounter is the optional capability of backends that count
// per-voxel memory touches — the bottleneck experiments'
// architecture-neutral proxy for the memory accesses of Figure 5.
type VisitCounter interface {
	NodeVisits() int64
	ResetNodeVisits()
}

// octreeBackend adapts *octree.Tree to the Backend surface. Only the
// three hot entry points need renaming; SetLeafAt, Walk, Params,
// MemoryBytes, and the capabilities (NeedsCompaction/Compact,
// ArenaStats, NodeVisits, WriteTo) promote from the embedded tree. The
// single-pointer wrapper is interface-boxable without allocation.
type octreeBackend struct {
	*octree.Tree
}

func (b octreeBackend) UpdateCell(k voxel.Key, occupied bool) { b.Tree.Update(k, occupied) }
func (b octreeBackend) SetCell(k voxel.Key, logOdds float32)  { b.Tree.SetNodeValue(k, logOdds) }
func (b octreeBackend) Lookup(k voxel.Key) (float32, bool)    { return b.Tree.Search(k) }

// EvictTile implements the Evictor capability: the windowed map's spill
// unit detaches as the tile's canonical leaf run. The grid backend
// satisfies Evictor directly with its own EvictTile.
func (b octreeBackend) EvictTile(corner voxel.Key, tileDepth int, dst []voxel.Leaf) []voxel.Leaf {
	return b.Tree.EvictSubtree(corner, tileDepth, dst)
}

// Tree re-exports the arena octree for white-box consumers — the
// ordering microbenchmarks and layout experiments that measure the
// storage structure itself rather than a pipeline. Everything else
// should stay behind Backend/Snapshot; the import-hygiene gate
// (make lint-imports) keeps the octree package private to core.
type Tree = octree.Tree

// NewTree builds a bare arena octree with the given occupancy model.
func NewTree(p voxel.Params) *Tree { return octree.New(p) }

// newBackend builds the store the config selects. The *vdbgrid.Grid
// satisfies Backend directly.
func (c Config) newBackend() Backend {
	switch c.Backend {
	case BackendGrid:
		return vdbgrid.New(c.Octree)
	default:
		return octreeBackend{octree.New(c.Octree)}
	}
}
