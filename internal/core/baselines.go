package core

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"octocache/internal/cache"
	"octocache/internal/geom"
	"octocache/internal/octree"
	"octocache/internal/raytrace"
	"octocache/internal/voxel"
)

// This file implements the two software baselines from the paper's
// related-work matrix (Table 1) that OctoCache is compared against
// conceptually:
//
//   - voxelCacheMapper ("VoxelCache [29]"): an index removes the
//     downward octree search, but updates still maintain ancestors and
//     queries still wait for the whole batch — the bottleneck survives.
//   - naiveMapper ("naive software parallelization"): voxel updates are
//     fanned out over worker goroutines with the octree behind a global
//     mutex (the only safe naive scheme, since concurrent updates race on
//     shared ancestors — §2.2/Figure 5); parallelism buys nothing.

// voxelCacheMapper is the VoxelCache-style baseline built on
// octree.IndexedTree.
type voxelCacheMapper struct {
	cfg        Config
	tree       *octree.IndexedTree
	shadow     *octree.Tree // kept pruned for Snapshot consumers
	tracer     raytrace.Scanner
	timings    Timings
	compaction CompactionStats
	done       bool
}

func newVoxelCache(cfg Config) (*voxelCacheMapper, error) {
	if cfg.Backend != BackendOctree {
		return nil, fmt.Errorf("core: the VoxelCache baseline is octree-specific; backend %v is unsupported", cfg.Backend)
	}
	it, err := octree.NewIndexed(cfg.Octree)
	if err != nil {
		return nil, err
	}
	return &voxelCacheMapper{
		cfg:    cfg,
		tree:   it,
		shadow: octree.New(cfg.Octree),
		tracer: cfg.newScanner(),
	}, nil
}

func (m *voxelCacheMapper) Name() string {
	if m.cfg.RT {
		return "voxelcache-rt"
	}
	return "voxelcache"
}

func (m *voxelCacheMapper) Insert(origin geom.Vec3, points []geom.Vec3) error {
	if m.done {
		return ErrClosed
	}
	start := time.Now()
	batch := traceScan(m.tracer, m.cfg.RT, origin, points, &m.timings)

	t0 := time.Now()
	for _, v := range batch {
		m.tree.Update(v.Key, v.Occupied)
	}
	m.timings.OctreeUpdate += time.Since(t0)

	m.timings.Batches++
	m.timings.VoxelsTraced += int64(len(batch))
	m.timings.VoxelsToOctree += int64(len(batch))
	m.timings.Critical += time.Since(start)
	return nil
}

func (m *voxelCacheMapper) Occupancy(p geom.Vec3) (float32, bool) {
	k, ok := octree.CoordToKey(p, m.cfg.Octree.Resolution, m.cfg.Octree.Depth)
	if !ok {
		return 0, false
	}
	return m.tree.Search(k)
}

func (m *voxelCacheMapper) Occupied(p geom.Vec3) bool {
	l, known := m.Occupancy(p)
	return known && l >= m.cfg.Octree.OccupancyThreshold
}

func (m *voxelCacheMapper) OccupiedKey(k voxel.Key) bool { return m.tree.Occupied(k) }

// Close mirrors the indexed tree's content into a standard pruned
// octree so Snapshot consumers (serialization, box queries) work.
func (m *voxelCacheMapper) Close() error {
	if m.done {
		return nil
	}
	m.done = true
	// The index holds every known leaf; replay the accumulated values.
	for k := range m.indexKeys() {
		if l, known := m.tree.Search(k); known {
			m.shadow.SetNodeValue(k, l)
		}
	}
	return nil
}

// indexKeys iterates the known voxel set (via tree search on batch keys
// is unavailable; IndexedTree exposes no iterator, so walk the key space
// through its index by reconstructing from shadow needs). To keep the
// baseline honest and simple, IndexedTree records are mirrored lazily:
// this helper exists as a seam for Close.
func (m *voxelCacheMapper) indexKeys() map[voxel.Key]struct{} {
	return m.tree.Keys()
}

// Backend reports the backing store kind; the VoxelCache baseline is
// octree-specific by construction.
func (m *voxelCacheMapper) Backend() BackendKind { return BackendOctree }

// Snapshot captures the mirrored shadow octree. The mirror fills on
// Close — snapshot a live VoxelCache
// baseline and it is empty.
func (m *voxelCacheMapper) Snapshot() *Snapshot {
	s := NewSnapshot(m.cfg.Octree)
	m.shadow.Walk(func(l voxel.Leaf) bool {
		s.Add(l)
		return true
	})
	return s
}

func (m *voxelCacheMapper) WriteTo(w io.Writer) (int64, error) { return m.shadow.WriteTo(w) }

func (m *voxelCacheMapper) ArenaStats() ArenaStats { return TreeArenaStats(m.shadow) }

func (m *voxelCacheMapper) NodeVisits() int64 { return m.tree.NodeVisits() }

// Compact rebuilds the shadow octree's arenas. The indexed structure
// itself has no free lists to reclaim, so this only densifies whatever
// has been mirrored for Snapshot consumers.
func (m *voxelCacheMapper) Compact() error {
	if m.done {
		return ErrClosed
	}
	t0 := time.Now()
	cs := m.shadow.Compact()
	m.compaction.Runs++
	m.compaction.SlotsReclaimed += int64(cs.NodeSlotsReclaimed + cs.KidSlotsReclaimed)
	m.compaction.LastDuration = time.Since(t0)
	return nil
}

func (m *voxelCacheMapper) CompactionStats() CompactionStats { return m.compaction }

func (m *voxelCacheMapper) Resolution() float64     { return m.cfg.Octree.Resolution }
func (m *voxelCacheMapper) Timings() Timings        { return m.timings }
func (m *voxelCacheMapper) WorkCounters() Counters  { return m.timings.Counters() }
func (m *voxelCacheMapper) CacheStats() cache.Stats { return cache.Stats{} }

// MemoryBytes exposes the indexed structure's footprint for the Table 1
// experiment.
func (m *voxelCacheMapper) MemoryBytes() int64 { return m.tree.MemoryBytes() }

// naiveMapper fans voxel updates out over GOMAXPROCS workers that share
// the voxel store behind one mutex.
type naiveMapper struct {
	cfg        Config
	store      Backend
	compactor  Compactor
	mu         sync.Mutex
	tracer     raytrace.Scanner
	workers    int
	timings    Timings
	compaction CompactionStats
	done       bool
}

func newNaive(cfg Config) *naiveMapper {
	m := &naiveMapper{
		cfg:     cfg,
		store:   cfg.newBackend(),
		tracer:  cfg.newScanner(),
		workers: runtime.GOMAXPROCS(0),
	}
	m.compactor, _ = m.store.(Compactor)
	return m
}

func (m *naiveMapper) Name() string {
	if m.cfg.RT {
		return "naive-parallel-rt"
	}
	return "naive-parallel"
}

func (m *naiveMapper) Insert(origin geom.Vec3, points []geom.Vec3) error {
	if m.done {
		return ErrClosed
	}
	start := time.Now()
	batch := traceScan(m.tracer, m.cfg.RT, origin, points, &m.timings)

	t0 := time.Now()
	var wg sync.WaitGroup
	chunk := (len(batch) + m.workers - 1) / m.workers
	for w := 0; w < m.workers; w++ {
		lo := w * chunk
		if lo >= len(batch) {
			break
		}
		hi := lo + chunk
		if hi > len(batch) {
			hi = len(batch)
		}
		wg.Add(1)
		go func(part []raytrace.Voxel) {
			defer wg.Done()
			for _, v := range part {
				// The whole store must be locked per update: concurrent
				// octree updates race on shared ancestor nodes (Figure
				// 5), and the grid's brick map is no safer.
				m.mu.Lock()
				m.store.UpdateCell(v.Key, v.Occupied)
				m.mu.Unlock()
			}
		}(batch[lo:hi])
	}
	wg.Wait()
	m.timings.OctreeUpdate += time.Since(t0)

	m.timings.Batches++
	m.timings.VoxelsTraced += int64(len(batch))
	m.timings.VoxelsToOctree += int64(len(batch))
	m.timings.Critical += time.Since(start)
	return nil
}

// Note: interleaving across workers reorders same-voxel updates within a
// batch. With symmetric clamped increments the accumulated value is
// order-independent unless clamping engages mid-batch, so naiveMapper is
// *approximately* consistent — one more reason the paper dismisses naive
// parallelization (the consistency test for it tolerates clamp-boundary
// divergence; the primary pipelines are exactly consistent).

func (m *naiveMapper) Occupancy(p geom.Vec3) (float32, bool) {
	k, ok := voxel.CoordToKey(p, m.cfg.Octree.Resolution, m.cfg.Octree.Depth)
	if !ok {
		return 0, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.store.Lookup(k)
}

func (m *naiveMapper) Occupied(p geom.Vec3) bool {
	l, known := m.Occupancy(p)
	return known && l >= m.cfg.Octree.OccupancyThreshold
}

func (m *naiveMapper) OccupiedKey(k voxel.Key) bool {
	m.mu.Lock()
	l, known := m.store.Lookup(k)
	m.mu.Unlock()
	return known && l >= m.cfg.Octree.OccupancyThreshold
}

// Compact densifies the shared store under the global mutex, so it is
// safe against the in-flight worker fan-out of a concurrent Insert. A
// no-op on backends without the compaction capability.
func (m *naiveMapper) Compact() error {
	if m.done {
		return ErrClosed
	}
	if m.compactor == nil {
		return nil
	}
	t0 := time.Now()
	m.mu.Lock()
	cs := m.compactor.Compact()
	m.mu.Unlock()
	m.compaction.Runs++
	m.compaction.SlotsReclaimed += int64(cs.NodeSlotsReclaimed + cs.KidSlotsReclaimed)
	m.compaction.LastDuration = time.Since(t0)
	return nil
}

func (m *naiveMapper) CompactionStats() CompactionStats { return m.compaction }

func (m *naiveMapper) Resolution() float64     { return m.cfg.Octree.Resolution }
func (m *naiveMapper) Backend() BackendKind    { return m.cfg.Backend }
func (m *naiveMapper) Close() error            { m.done = true; return nil }
func (m *naiveMapper) Timings() Timings        { return m.timings }
func (m *naiveMapper) WorkCounters() Counters  { return m.timings.Counters() }
func (m *naiveMapper) CacheStats() cache.Stats { return cache.Stats{} }
func (m *naiveMapper) MemoryBytes() int64      { return m.store.MemoryBytes() }

// Snapshot captures the store's contents under the global mutex.
func (m *naiveMapper) Snapshot() *Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := NewSnapshot(m.cfg.Octree)
	m.store.Walk(func(l voxel.Leaf) bool {
		s.Add(l)
		return true
	})
	return s
}

func (m *naiveMapper) WriteTo(w io.Writer) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if wt, ok := m.store.(io.WriterTo); ok {
		return wt.WriteTo(w)
	}
	s := NewSnapshot(m.cfg.Octree)
	m.store.Walk(func(l voxel.Leaf) bool {
		s.Add(l)
		return true
	})
	return s.WriteTo(w)
}

func (m *naiveMapper) ArenaStats() ArenaStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := ArenaStats{Bytes: m.store.MemoryBytes()}
	if ar, ok := m.store.(ArenaReporter); ok {
		s.LiveNodes, s.FreeSlots, s.Capacity = ar.ArenaStats()
	}
	return s
}

func (m *naiveMapper) NodeVisits() int64 {
	if vc, ok := m.store.(VisitCounter); ok {
		return vc.NodeVisits()
	}
	return 0
}
