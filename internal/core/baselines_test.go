package core

import (
	"errors"
	"math/rand"
	"testing"

	"octocache/internal/geom"
	"octocache/internal/octree"
)

func TestVoxelCacheBaselineQueryEquivalence(t *testing.T) {
	// The indexed baseline must return the same query *values* as vanilla
	// OctoMap (its tree is unpruned, so structure differs, but accumulated
	// occupancies must match exactly).
	cfg := testConfig()
	a := MustNew(KindOctoMap, cfg)
	b := MustNew(KindVoxelCache, cfg)
	rng := rand.New(rand.NewSource(4))
	probeRNG := rand.New(rand.NewSource(5))
	for i := 0; i < 15; i++ {
		origin := geom.V(float64(i)*0.2, 0, 1)
		pts := synthScan(rng, origin, 100)
		a.Insert(origin, pts)
		b.Insert(origin, pts)
		for probe := 0; probe < 40; probe++ {
			p := geom.V(probeRNG.Float64()*6-1, probeRNG.Float64()*4-2, probeRNG.Float64()*3)
			la, ka := a.Occupancy(p)
			lb, kb := b.Occupancy(p)
			if ka != kb || la != lb {
				t.Fatalf("batch %d: voxelcache disagrees at %v: (%v,%v) vs (%v,%v)",
					i, p, lb, kb, la, ka)
			}
		}
	}
	a.Close()
	b.Close()
	// After finalize the shadow tree answers identically too.
	for probe := 0; probe < 200; probe++ {
		p := geom.V(probeRNG.Float64()*6-1, probeRNG.Float64()*4-2, probeRNG.Float64()*3)
		la, ka := a.Snapshot().Occupancy(p)
		lb, kb := b.Snapshot().Occupancy(p)
		if ka != kb || la != lb {
			t.Fatalf("finalized shadow tree disagrees at %v", p)
		}
	}
}

func TestVoxelCacheUsesMoreMemory(t *testing.T) {
	// The paper's resource critique: index + no pruning => bigger footprint.
	cfg := testConfig()
	a := MustNew(KindOctoMap, cfg)
	b := MustNew(KindVoxelCache, cfg)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 10; i++ {
		origin := geom.V(float64(i)*0.2, 0, 1)
		pts := synthScan(rng, origin, 150)
		a.Insert(origin, pts)
		b.Insert(origin, pts)
	}
	vc := b.(*voxelCacheMapper)
	if vc.MemoryBytes() <= a.MemoryBytes() {
		t.Errorf("voxelcache memory %d should exceed octomap %d",
			vc.MemoryBytes(), a.MemoryBytes())
	}
	a.Close()
	b.Close()
}

func TestNaiveParallelProducesUsableMap(t *testing.T) {
	cfg := testConfig()
	m := MustNew(KindNaive, cfg)
	target := geom.V(3, 0, 1)
	m.Insert(geom.V(0, 0, 1), []geom.Vec3{target})
	if !m.Occupied(target) {
		t.Error("naive-parallel lost the obstacle")
	}
	k, _ := octree.CoordToKey(target, cfg.Octree.Resolution, cfg.Octree.Depth)
	if !m.OccupiedKey(k) {
		t.Error("OccupiedKey disagrees")
	}
	if _, known := m.Occupancy(geom.V(-2, -2, -2)); known {
		t.Error("unobserved voxel known")
	}
	m.Close()
	if m.Timings().Batches != 1 {
		t.Error("timings not recorded")
	}
}

func TestNaiveParallelApproximateConsistency(t *testing.T) {
	// Same scans through octomap and naive-parallel: thresholded occupancy
	// must agree except possibly at clamp boundaries (reordering effect).
	cfg := testConfig()
	a := MustNew(KindOctoMap, cfg)
	b := MustNew(KindNaive, cfg)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		origin := geom.V(float64(i)*0.25, 0, 1)
		pts := synthScan(rng, origin, 100)
		a.Insert(origin, pts)
		b.Insert(origin, pts)
	}
	a.Close()
	b.Close()
	disagreements := 0
	total := 0
	probeRNG := rand.New(rand.NewSource(8))
	for probe := 0; probe < 500; probe++ {
		p := geom.V(probeRNG.Float64()*6-1, probeRNG.Float64()*4-2, probeRNG.Float64()*3)
		total++
		if a.Occupied(p) != b.Occupied(p) {
			disagreements++
		}
	}
	if disagreements > total/50 {
		t.Errorf("naive-parallel diverged on %d/%d probes", disagreements, total)
	}
}

func TestBaselineNames(t *testing.T) {
	cfg := testConfig()
	if MustNew(KindVoxelCache, cfg).Name() != "voxelcache" {
		t.Error("voxelcache name wrong")
	}
	if MustNew(KindNaive, cfg).Name() != "naive-parallel" {
		t.Error("naive name wrong")
	}
	cfg.RT = true
	if MustNew(KindVoxelCache, cfg).Name() != "voxelcache-rt" {
		t.Error("voxelcache RT name wrong")
	}
	if MustNew(KindNaive, cfg).Name() != "naive-parallel-rt" {
		t.Error("naive RT name wrong")
	}
	if KindVoxelCache.String() != "voxelcache" || KindNaive.String() != "naive-parallel" {
		t.Error("kind strings wrong")
	}
}

func TestBaselineCloseTerminal(t *testing.T) {
	for _, kind := range []Kind{KindVoxelCache, KindNaive} {
		m := MustNew(kind, testConfig())
		if err := m.Insert(geom.V(0, 0, 1), []geom.Vec3{geom.V(2, 0, 1)}); err != nil {
			t.Fatalf("%v: Insert: %v", kind, err)
		}
		if err := m.Close(); err != nil {
			t.Fatalf("%v: Close: %v", kind, err)
		}
		if err := m.Close(); err != nil {
			t.Fatalf("%v: second Close: %v", kind, err)
		}
		if err := m.Insert(geom.V(0, 0, 1), []geom.Vec3{geom.V(2, 0, 1)}); !errors.Is(err, ErrClosed) {
			t.Errorf("%v: Insert after Close = %v, want ErrClosed", kind, err)
		}
	}
}
