package core

import (
	"math"

	"octocache/internal/geom"
	"octocache/internal/voxel"
)

// CastRayKeys walks the voxel grid from origin along dir, querying each
// visited voxel through the supplied occupancy function until a
// known-occupied voxel is found or maxRange is exceeded. It is the
// pipeline-level equivalent of octree.CastRay, but consults the combined
// cache+octree state so visibility answers are as fresh as point queries.
// Exported so layered map services (internal/shard) can reuse the walk
// with their own per-voxel occupancy resolution.
func CastRayKeys(params voxel.Params, occ func(voxel.Key) (float32, bool),
	origin, dir geom.Vec3, maxRange float64, ignoreUnknown bool) (geom.Vec3, bool) {

	n := dir.Norm()
	if n == 0 {
		return geom.Vec3{}, false
	}
	dir = dir.Scale(1 / n)
	cur, ok := voxel.CoordToKey(origin, params.Resolution, params.Depth)
	if !ok {
		return geom.Vec3{}, false
	}
	if maxRange <= 0 {
		// An unbounded cast must cover the worst-case in-cube ray — the
		// cube diagonal, √3 × the edge — or a diagonal walk would stop
		// short of a reachable occupied voxel in the far corner. The
		// grid-bounds exit below terminates the walk before the budget
		// on every ray that leaves the cube.
		maxRange = math.Sqrt(3) * params.MapSize()
	}

	res := params.Resolution
	half := 1 << (params.Depth - 1)
	c := [3]int{int(cur.X), int(cur.Y), int(cur.Z)}
	o := [3]float64{origin.X, origin.Y, origin.Z}
	d := [3]float64{dir.X, dir.Y, dir.Z}
	var step [3]int
	var tMax, tDelta [3]float64
	for i := 0; i < 3; i++ {
		switch {
		case d[i] > 0:
			step[i] = 1
			boundary := float64(c[i]-half+1) * res
			tMax[i] = (boundary - o[i]) / d[i]
			tDelta[i] = res / d[i]
		case d[i] < 0:
			step[i] = -1
			boundary := float64(c[i]-half) * res
			tMax[i] = (boundary - o[i]) / d[i]
			tDelta[i] = -res / d[i]
		default:
			step[i] = 0
			tMax[i] = math.Inf(1)
			tDelta[i] = math.Inf(1)
		}
	}
	limit := 1 << params.Depth
	for dist := 0.0; dist <= maxRange; {
		k := voxel.Key{X: uint16(c[0]), Y: uint16(c[1]), Z: uint16(c[2])}
		l, known := occ(k)
		switch {
		case known && l >= params.OccupancyThreshold:
			return voxel.KeyToCoord(k, params.Resolution, params.Depth), true
		case !known && !ignoreUnknown:
			return geom.Vec3{}, false
		}
		axis := 0
		if tMax[1] < tMax[axis] {
			axis = 1
		}
		if tMax[2] < tMax[axis] {
			axis = 2
		}
		dist = tMax[axis]
		c[axis] += step[axis]
		tMax[axis] += tDelta[axis]
		if c[axis] < 0 || c[axis] >= limit {
			return geom.Vec3{}, false
		}
	}
	return geom.Vec3{}, false
}

// CastRay on the baseline pipelines outside the engine: walk toward dir
// until a known-occupied voxel, consulting the freshest state the
// pipeline has. (The engine compositions implement CastRay themselves;
// see engine.go.)

func (m *voxelCacheMapper) CastRay(origin, dir geom.Vec3, maxRange float64, ignoreUnknown bool) (geom.Vec3, bool) {
	return CastRayKeys(m.cfg.Octree, m.tree.Search, origin, dir, maxRange, ignoreUnknown)
}

func (m *naiveMapper) CastRay(origin, dir geom.Vec3, maxRange float64, ignoreUnknown bool) (geom.Vec3, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return CastRayKeys(m.cfg.Octree, m.store.Lookup, origin, dir, maxRange, ignoreUnknown)
}
