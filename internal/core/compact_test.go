package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"octocache/internal/geom"
	"octocache/internal/octree"
)

// fragmentingStream drives a mapper through a scan sequence chosen to
// load the octree arena free lists: a sweep phase growing structure from
// several origins, then repeated saturating re-observation so free-space
// octants clamp to identical values and prune.
func fragmentingStream(t *testing.T, m Mapper) {
	t.Helper()
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 6; i++ {
		origin := geom.V(0.5+float64(i)*0.7, 0.5+float64(i%3)*0.9, 1)
		scan := synthScan(rng, origin, 300)
		for j := 0; j < 12; j++ {
			if err := m.Insert(origin, scan); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestInsertStreamFragmentsArena pins the premise of the auto-compaction
// tests: the shared scan stream really does push slots through the free
// lists, so a policy has something to trigger on.
func TestInsertStreamFragmentsArena(t *testing.T) {
	m := MustNew(KindOctoMap, testConfig())
	fragmentingStream(t, m)
	if free := m.ArenaStats().FreeSlots; free == 0 {
		t.Fatal("fragmenting stream left no free slots; compaction tests are vacuous")
	}
}

// TestAutoCompaction runs each pipeline with an aggressive policy against
// an uncompacted reference on the same stream: compaction must fire, the
// arena must end denser, and the serialized map must be bit-identical.
func TestAutoCompaction(t *testing.T) {
	for _, kind := range allKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := testConfig()
			ref := MustNew(kind, cfg)
			cfg.Compaction = octree.CompactionPolicy{MinFreeFraction: 0.05, MinFreeSlots: 1}
			m := MustNew(kind, cfg)
			fragmentingStream(t, ref)
			fragmentingStream(t, m)

			if runs := m.CompactionStats().Runs; runs == 0 {
				t.Error("aggressive policy never triggered a compaction")
			}
			if m.CompactionStats().SlotsReclaimed == 0 {
				t.Error("compactions reclaimed no slots")
			}
			if refRuns := ref.CompactionStats().Runs; refRuns != 0 {
				t.Errorf("zero policy ran %d compactions", refRuns)
			}

			if err := ref.Close(); err != nil {
				t.Fatal(err)
			}
			if err := m.Close(); err != nil {
				t.Fatal(err)
			}
			var a, b bytes.Buffer
			if _, err := ref.Snapshot().WriteTo(&a); err != nil {
				t.Fatal(err)
			}
			if _, err := m.Snapshot().WriteTo(&b); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Error("auto-compaction changed the serialized map")
			}
		})
	}
}

// TestExplicitCompact checks the Compact entry point on a live pipeline:
// the arena ends dense, capacity strictly shrinks when slots were free,
// and queries are untouched.
func TestExplicitCompact(t *testing.T) {
	for _, kind := range allKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			m, err := NewShardPipeline(kind, testConfig())
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			fragmentingStream(t, m)

			m.Quiesce()
			before := m.ArenaStats()
			freeBefore, capBefore := before.FreeSlots, before.Capacity
			if freeBefore == 0 {
				t.Fatal("stream left no free slots")
			}
			probe := geom.V(1.2, 0.9, 1.1)
			wantL, wantKnown := m.Occupancy(probe)

			if err := m.Compact(); err != nil {
				t.Fatal(err)
			}
			st := m.CompactionStats()
			if st.Runs != 1 || st.SlotsReclaimed == 0 || st.LastDuration <= 0 {
				t.Errorf("CompactionStats after one explicit run: %+v", st)
			}
			m.Quiesce()
			after := m.ArenaStats()
			live, free, capacity := after.LiveNodes, after.FreeSlots, after.Capacity
			if free != 0 || live != capacity {
				t.Errorf("arena not dense: live %d free %d capacity %d", live, free, capacity)
			}
			if capacity >= capBefore {
				t.Errorf("capacity did not shrink: %d -> %d", capBefore, capacity)
			}
			if l, known := m.Occupancy(probe); l != wantL || known != wantKnown {
				t.Errorf("query changed across Compact: (%v,%v) -> (%v,%v)", wantL, wantKnown, l, known)
			}

			// The compacted pipeline must remain fully usable.
			rng := rand.New(rand.NewSource(5))
			if err := m.Insert(geom.V(1, 1, 1), synthScan(rng, geom.V(1, 1, 1), 100)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCompactAfterClose covers the lifecycle contract on every pipeline
// variant, including the Table 1 baselines: ErrClosed, not a panic or a
// deadlock.
func TestCompactAfterClose(t *testing.T) {
	for _, kind := range []Kind{KindOctoMap, KindSerial, KindParallel, KindVoxelCache, KindNaive} {
		t.Run(kind.String(), func(t *testing.T) {
			m := MustNew(kind, testConfig())
			if err := m.Compact(); err != nil {
				t.Fatalf("Compact on a live empty map: %v", err)
			}
			if err := m.Close(); err != nil {
				t.Fatal(err)
			}
			if err := m.Compact(); !errors.Is(err, ErrClosed) {
				t.Errorf("Compact after Close = %v, want ErrClosed", err)
			}
		})
	}
}
