package core

import (
	"time"

	"octocache/internal/octree"
)

// CompactionStats accumulates a pipeline's arena-compaction activity:
// how often the octree arenas were rebuilt into a dense prefix, how many
// slots that released, and how long the last (stop-the-shard) rebuild
// took. The sharded service sums these per shard; the public API
// surfaces them as Stats.Compaction.
type CompactionStats struct {
	// Runs counts completed compactions (automatic and explicit).
	Runs int64
	// SlotsReclaimed totals the free-listed arena slots released across
	// all runs (node slots plus 8-handle child blocks).
	SlotsReclaimed int64
	// LastDuration is the wall time of the most recent run — the pause
	// producers on the compacted shard experienced.
	LastDuration time.Duration
}

// Add merges two snapshots: counts sum, LastDuration keeps the larger
// value so a multi-shard aggregate reports the worst recent pause.
func (c CompactionStats) Add(o CompactionStats) CompactionStats {
	last := c.LastDuration
	if o.LastDuration > last {
		last = o.LastDuration
	}
	return CompactionStats{
		Runs:           c.Runs + o.Runs,
		SlotsReclaimed: c.SlotsReclaimed + o.SlotsReclaimed,
		LastDuration:   last,
	}
}

// ArenaStats snapshots an octree's arena occupancy — the quantity a
// CompactionPolicy watches and a compaction improves.
type ArenaStats struct {
	// LiveNodes is the number of reachable octree nodes.
	LiveNodes int
	// FreeSlots counts recycled arena slots awaiting reuse.
	FreeSlots int
	// Capacity is the arena's total node slots: LiveNodes + FreeSlots.
	Capacity int
	// Bytes estimates the arena's heap footprint.
	Bytes int64
}

// Occupancy is the live fraction of the arena, 1 for a dense (or empty)
// arena.
func (a ArenaStats) Occupancy() float64 {
	if a.Capacity == 0 {
		return 1
	}
	return float64(a.LiveNodes) / float64(a.Capacity)
}

// Fragmentation is the free fraction of the arena — the value compared
// against CompactionPolicy.MinFreeFraction.
func (a ArenaStats) Fragmentation() float64 {
	if a.Capacity == 0 {
		return 0
	}
	return float64(a.FreeSlots) / float64(a.Capacity)
}

// Add sums two snapshots, for multi-shard aggregation.
func (a ArenaStats) Add(o ArenaStats) ArenaStats {
	return ArenaStats{
		LiveNodes: a.LiveNodes + o.LiveNodes,
		FreeSlots: a.FreeSlots + o.FreeSlots,
		Capacity:  a.Capacity + o.Capacity,
		Bytes:     a.Bytes + o.Bytes,
	}
}

// TreeArenaStats packages a tree's arena counters into an ArenaStats
// snapshot. The caller must hold the tree stable (mutator role, applier
// quiescent).
func TreeArenaStats(t *octree.Tree) ArenaStats {
	live, free, capacity := t.ArenaStats()
	return ArenaStats{LiveNodes: live, FreeSlots: free, Capacity: capacity, Bytes: t.MemoryBytes()}
}
