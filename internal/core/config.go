// Package core assembles the substrates into the paper's mapping
// pipelines — the primary contribution of OctoCache:
//
//   - OctoMap: the vanilla baseline (Figure 4). Ray tracing feeds every
//     traced voxel straight into the octree; queries wait for the whole
//     octree update.
//   - Serial OctoCache (Figure 11/13a): ray tracing feeds the flat cache;
//     queries are served right after the fast cache insertion; evicted
//     voxels then update the octree in (near-)Morton order.
//   - Parallel OctoCache (Figure 13b/14): the octree update moves to a
//     second goroutine behind a shared SPSC buffer, overlapping it with
//     the next batch's ray tracing and cache eviction. A single mutex
//     keeps octree readers and the octree writer mutually exclusive.
//
// Every pipeline has an -RT variant that uses deduplicating ray tracing
// (the OctoMap-RT substitute). All pipelines expose the same query API
// and — by the cache's accumulated-occupancy discipline — return
// bit-identical occupancy answers, verified by the consistency tests.
package core

import (
	"fmt"

	"octocache/internal/cache"
	"octocache/internal/octree"
)

// CompactionPolicy re-exports the octree's automatic-compaction trigger
// so layered packages configure it without importing the storage
// package.
type CompactionPolicy = octree.CompactionPolicy

// Config configures any of the mapping pipelines.
type Config struct {
	// Octree holds the map resolution and the occupancy sensor model.
	// The name is historical: every backend shares this model.
	Octree octree.Params
	// Backend selects the voxel store behind the pipeline; the zero
	// value is BackendOctree.
	Backend BackendKind
	// MaxRange truncates sensor rays (meters); 0 disables truncation.
	MaxRange float64
	// CacheBuckets is w. The paper's UAV experiments use 512K buckets;
	// construction experiments size the cache at 3–4x the per-batch
	// distinct-voxel count.
	CacheBuckets int
	// CacheTau is τ, the post-eviction bucket depth (paper default 4).
	CacheTau int
	// CacheIndex selects hash (strawman §4.2) or Morton (§4.3) bucket
	// indexing.
	CacheIndex cache.IndexMode
	// EvictOrder selects the eviction batch ordering.
	EvictOrder cache.EvictOrder
	// RT enables deduplicating ray tracing (the OctoMap-RT method).
	RT bool
	// Compaction triggers automatic octree arena compaction: after a
	// batch is integrated, a pipeline whose arena crosses the policy's
	// fragmentation threshold is compacted behind the applier quiesce.
	// The zero value disables automatic compaction; explicit Compact
	// calls always run. Backends without the Compactor capability (the
	// grid) ignore the policy.
	Compaction octree.CompactionPolicy
	// Window bounds resident memory: tiles outside an ego-centric window
	// spill to disk through internal/pager and page back in on touch.
	// The zero value keeps the whole map resident.
	Window Window
	// WindowTag names this pipeline's tile file within Window.Dir
	// (default "map"). The shard service sets a per-shard tag so sharded
	// maps keep one spill file per shard.
	WindowTag string
}

// DefaultConfig returns a configuration with OctoMap's default sensor
// model at the given resolution and the paper's cache defaults.
func DefaultConfig(resolution float64) Config {
	return Config{
		Octree:       octree.DefaultParams(resolution),
		CacheBuckets: 512 << 10,
		CacheTau:     4,
		CacheIndex:   cache.MortonIndex,
		EvictOrder:   cache.OrderBucketScan,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.Octree.Validate(); err != nil {
		return err
	}
	if c.CacheBuckets < 1 {
		return fmt.Errorf("core: CacheBuckets must be >= 1, got %d", c.CacheBuckets)
	}
	if c.CacheTau < 1 {
		return fmt.Errorf("core: CacheTau must be >= 1, got %d", c.CacheTau)
	}
	if c.Backend != BackendOctree && c.Backend != BackendGrid {
		return fmt.Errorf("core: unknown backend %v", c.Backend)
	}
	if err := c.Window.Validate(c.Octree.Depth); err != nil {
		return err
	}
	return c.Compaction.Validate()
}

func (c Config) cacheConfig() cache.Config {
	return cache.Config{
		Buckets:   c.CacheBuckets,
		Tau:       c.CacheTau,
		Index:     c.CacheIndex,
		Order:     c.EvictOrder,
		Occupancy: c.Octree,
	}
}
