// Package core assembles the substrates into the paper's mapping
// pipelines — the primary contribution of OctoCache:
//
//   - OctoMap: the vanilla baseline (Figure 4). Ray tracing feeds every
//     traced voxel straight into the octree; queries wait for the whole
//     octree update.
//   - Serial OctoCache (Figure 11/13a): ray tracing feeds the flat cache;
//     queries are served right after the fast cache insertion; evicted
//     voxels then update the octree in (near-)Morton order.
//   - Parallel OctoCache (Figure 13b/14): the octree update moves to a
//     second goroutine behind a shared SPSC buffer, overlapping it with
//     the next batch's ray tracing and cache eviction. A single mutex
//     keeps octree readers and the octree writer mutually exclusive.
//
// Every pipeline has an -RT variant that uses deduplicating ray tracing
// (the OctoMap-RT substitute). All pipelines expose the same query API
// and — by the cache's accumulated-occupancy discipline — return
// bit-identical occupancy answers, verified by the consistency tests.
package core

import (
	"fmt"

	"octocache/internal/cache"
	"octocache/internal/octree"
	"octocache/internal/raytrace"
)

// CompactionPolicy re-exports the octree's automatic-compaction trigger
// so layered packages configure it without importing the storage
// package.
type CompactionPolicy = octree.CompactionPolicy

// TraceMode re-exports the scan-tracing algorithm selector so layered
// packages configure it without importing the trace package.
type TraceMode = raytrace.Mode

const (
	// TraceDDA marches every ray voxel-by-voxel (the default).
	TraceDDA = raytrace.ModeDDA
	// TraceBoundary rasterizes the scan's free space once per batch from
	// the measured surface; batches come out deduplicated (occupied
	// observations win), set-equal to TraceDDA with RT enabled.
	TraceBoundary = raytrace.ModeBoundary
)

// Config configures any of the mapping pipelines.
type Config struct {
	// Octree holds the map resolution and the occupancy sensor model.
	// The name is historical: every backend shares this model.
	Octree octree.Params
	// Backend selects the voxel store behind the pipeline; the zero
	// value is BackendOctree.
	Backend BackendKind
	// MaxRange truncates sensor rays (meters); 0 disables truncation.
	MaxRange float64
	// CacheBuckets is w. The paper's UAV experiments use 512K buckets;
	// construction experiments size the cache at 3–4x the per-batch
	// distinct-voxel count.
	CacheBuckets int
	// CacheTau is τ, the post-eviction bucket depth (paper default 4).
	CacheTau int
	// CacheIndex selects hash (strawman §4.2) or Morton (§4.3) bucket
	// indexing.
	CacheIndex cache.IndexMode
	// EvictOrder selects the eviction batch ordering.
	EvictOrder cache.EvictOrder
	// RT enables deduplicating ray tracing (the OctoMap-RT method).
	// TraceBoundary batches are deduplicated regardless.
	RT bool
	// Trace selects the scan-tracing algorithm: TraceDDA (default)
	// marches per ray, TraceBoundary rasterizes per batch.
	Trace TraceMode
	// TraceWorkers fans the trace stage across this many goroutines per
	// scan; 0 or 1 traces serially. The fan preserves batch order (DDA)
	// and bit-union determinism (boundary), so results are identical at
	// any worker count — but the per-call join state allocates, so the
	// zero-allocation insert gate only holds at 0 or 1.
	TraceWorkers int
	// Compaction triggers automatic octree arena compaction: after a
	// batch is integrated, a pipeline whose arena crosses the policy's
	// fragmentation threshold is compacted behind the applier quiesce.
	// The zero value disables automatic compaction; explicit Compact
	// calls always run. Backends without the Compactor capability (the
	// grid) ignore the policy.
	Compaction octree.CompactionPolicy
	// Window bounds resident memory: tiles outside an ego-centric window
	// spill to disk through internal/durable and page back in on touch.
	// The zero value keeps the whole map resident.
	Window Window
	// Durable makes the map crash-recoverable: admitted batches are
	// logged before apply and consistent-cut snapshots bound replay. When
	// both Window and Durable are enabled they share one log (Window.Dir
	// may be left empty to inherit Durable.Dir). The zero value disables
	// durability.
	Durable Durable
	// DurableRecover restores the map from Durable.Dir at construction —
	// last snapshot plus surviving log replay — instead of starting
	// empty. Requires Durable to be enabled.
	DurableRecover bool
	// Tag names this pipeline's log (and snapshot) within the store
	// directory (default "map"). The shard service sets a per-shard tag
	// so sharded maps keep one log per shard.
	Tag string
}

// DefaultConfig returns a configuration with OctoMap's default sensor
// model at the given resolution and the paper's cache defaults.
func DefaultConfig(resolution float64) Config {
	return Config{
		Octree:       octree.DefaultParams(resolution),
		CacheBuckets: 512 << 10,
		CacheTau:     4,
		CacheIndex:   cache.MortonIndex,
		EvictOrder:   cache.OrderBucketScan,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.Octree.Validate(); err != nil {
		return err
	}
	if c.CacheBuckets < 1 {
		return fmt.Errorf("core: CacheBuckets must be >= 1, got %d", c.CacheBuckets)
	}
	if c.CacheTau < 1 {
		return fmt.Errorf("core: CacheTau must be >= 1, got %d", c.CacheTau)
	}
	if c.Backend != BackendOctree && c.Backend != BackendGrid {
		return fmt.Errorf("core: unknown backend %v", c.Backend)
	}
	if c.Trace != TraceDDA && c.Trace != TraceBoundary {
		return fmt.Errorf("core: unknown trace mode %v", c.Trace)
	}
	if c.TraceWorkers < 0 {
		return fmt.Errorf("core: TraceWorkers must be >= 0, got %d", c.TraceWorkers)
	}
	if err := c.Durable.Validate(); err != nil {
		return err
	}
	if c.DurableRecover && !c.Durable.Enabled() {
		return fmt.Errorf("core: DurableRecover requires a Durable policy")
	}
	win := c.Window
	if win.Enabled() && c.Durable.Enabled() {
		// Spill frames and the WAL share one log, so the two policies must
		// agree on the directory; an empty Window.Dir inherits Durable's.
		if win.Dir == "" {
			win.Dir = c.Durable.Dir
		} else if win.Dir != c.Durable.Dir {
			return fmt.Errorf("core: Window.Dir %q and Durable.Dir %q must match (the spill file and WAL share one log); leave Window.Dir empty to inherit",
				win.Dir, c.Durable.Dir)
		}
	}
	if err := win.Validate(c.Octree.Depth); err != nil {
		return err
	}
	return c.Compaction.Validate()
}

// newScanner constructs the configured trace stage — the one place the
// pipelines and the shard router derive a Scanner from a Config.
func (c Config) newScanner() raytrace.Scanner {
	return raytrace.New(raytrace.Config{
		Resolution: c.Octree.Resolution,
		Depth:      c.Octree.Depth,
		MaxRange:   c.MaxRange,
	}, c.Trace, c.TraceWorkers)
}

func (c Config) cacheConfig() cache.Config {
	return cache.Config{
		Buckets:   c.CacheBuckets,
		Tau:       c.CacheTau,
		Index:     c.CacheIndex,
		Order:     c.EvictOrder,
		Occupancy: c.Octree,
	}
}
