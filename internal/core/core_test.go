package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"octocache/internal/cache"
	"octocache/internal/geom"
	"octocache/internal/octree"
	"octocache/internal/sensor"
	"octocache/internal/world"
)

// testConfig keeps the key space small enough that scans overlap heavily,
// exercising cache hits, evictions, and octree interaction.
func testConfig() Config {
	cfg := DefaultConfig(0.1)
	cfg.Octree.Depth = 8 // 25.6 m cube
	cfg.CacheBuckets = 256
	cfg.CacheTau = 2
	return cfg
}

// synthScan generates a deterministic conical scan from a moving origin,
// mimicking the forward-facing sensor of §3.1.
func synthScan(rng *rand.Rand, origin geom.Vec3, n int) []geom.Vec3 {
	pts := make([]geom.Vec3, 0, n)
	for i := 0; i < n; i++ {
		yaw := (rng.Float64() - 0.5) * math.Pi / 3
		pitch := (rng.Float64() - 0.5) * math.Pi / 6
		r := 1.5 + rng.Float64()*2.5
		dir := geom.Pose{Yaw: yaw, Pitch: pitch}.Forward()
		pts = append(pts, origin.Add(dir.Scale(r)))
	}
	return pts
}

func allKinds() []Kind { return []Kind{KindOctoMap, KindSerial, KindParallel} }

func TestNewValidatesConfig(t *testing.T) {
	var bad Config
	for _, k := range allKinds() {
		if _, err := New(k, bad); err == nil {
			t.Errorf("kind %v accepted invalid config", k)
		}
	}
	if _, err := New(Kind(99), testConfig()); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestKindStrings(t *testing.T) {
	if KindOctoMap.String() != "octomap" ||
		KindSerial.String() != "octocache-serial" ||
		KindParallel.String() != "octocache-parallel" {
		t.Error("kind strings wrong")
	}
	if Kind(99).String() != "unknown" {
		t.Error("unknown kind string wrong")
	}
}

func TestNames(t *testing.T) {
	cfg := testConfig()
	for _, k := range allKinds() {
		m := MustNew(k, cfg)
		if m.Name() == "" {
			t.Errorf("kind %v has empty name", k)
		}
		m.Close()
	}
	cfg.RT = true
	for _, k := range allKinds() {
		m := MustNew(k, cfg)
		if n := m.Name(); n[len(n)-3:] != "-rt" {
			t.Errorf("RT variant name %q lacks -rt suffix", n)
		}
		m.Close()
	}
}

func TestBasicInsertAndQuery(t *testing.T) {
	for _, kind := range allKinds() {
		m := MustNew(kind, testConfig())
		origin := geom.V(0, 0, 1)
		target := geom.V(3, 0, 1)
		m.Insert(origin, []geom.Vec3{target})
		if !m.Occupied(target) {
			t.Errorf("%v: endpoint not occupied", kind)
		}
		// A voxel along the ray must be known-free.
		mid := geom.V(1.5, 0, 1)
		l, known := m.Occupancy(mid)
		if !known {
			t.Errorf("%v: mid-ray voxel unknown", kind)
		}
		if l >= 0 {
			t.Errorf("%v: mid-ray voxel log-odds %v, want negative", kind, l)
		}
		if m.Occupied(geom.V(-2, -2, -2)) {
			t.Errorf("%v: unobserved voxel occupied", kind)
		}
		m.Close()
	}
}

// TestConsistencyAcrossPipelines is the paper's query-consistency
// guarantee: after every batch, all pipelines must agree voxel-for-voxel,
// and after Close their octrees must be structurally identical.
func TestConsistencyAcrossPipelines(t *testing.T) {
	cfg := testConfig()
	mappers := make([]Mapper, 0, 3)
	for _, k := range allKinds() {
		mappers = append(mappers, MustNew(k, cfg))
	}

	scanRNG := rand.New(rand.NewSource(77))
	probeRNG := rand.New(rand.NewSource(78))
	for batchIdx := 0; batchIdx < 30; batchIdx++ {
		// A drifting origin creates the inter-batch overlap of Figure 7.
		origin := geom.V(float64(batchIdx)*0.15, 0.05, 1)
		pts := synthScan(scanRNG, origin, 120)
		for _, m := range mappers {
			m.Insert(origin, pts)
		}
		// Probe random voxels: all pipelines must agree exactly.
		for probe := 0; probe < 50; probe++ {
			p := geom.V(probeRNG.Float64()*8-1, probeRNG.Float64()*6-3, probeRNG.Float64()*3)
			l0, k0 := mappers[0].Occupancy(p)
			for _, m := range mappers[1:] {
				l, known := m.Occupancy(p)
				if known != k0 || l != l0 {
					t.Fatalf("batch %d: %s disagrees with %s at %v: (%v,%v) vs (%v,%v)",
						batchIdx, m.Name(), mappers[0].Name(), p, l, known, l0, k0)
				}
			}
		}
	}
	for _, m := range mappers {
		m.Close()
	}
	// After finalize, the full octrees must be identical.
	base := mappers[0].Snapshot()
	for _, m := range mappers[1:] {
		if !base.Equal(m.Snapshot()) {
			t.Fatalf("finalized tree of %s differs from %s", m.Name(), mappers[0].Name())
		}
	}
}

// TestConsistencyRTVariants repeats the consistency check for the -RT
// pipelines (deduplicated tracing changes the observation stream, so RT
// variants are only required to agree among themselves).
func TestConsistencyRTVariants(t *testing.T) {
	cfg := testConfig()
	cfg.RT = true
	mappers := make([]Mapper, 0, 3)
	for _, k := range allKinds() {
		mappers = append(mappers, MustNew(k, cfg))
	}
	scanRNG := rand.New(rand.NewSource(99))
	for batchIdx := 0; batchIdx < 20; batchIdx++ {
		origin := geom.V(float64(batchIdx)*0.2, 0, 1)
		pts := synthScan(scanRNG, origin, 100)
		for _, m := range mappers {
			m.Insert(origin, pts)
		}
	}
	for _, m := range mappers {
		m.Close()
	}
	base := mappers[0].Snapshot()
	for _, m := range mappers[1:] {
		if !base.Equal(m.Snapshot()) {
			t.Fatalf("finalized RT tree of %s differs from %s", m.Name(), mappers[0].Name())
		}
	}
}

func TestCacheAbsorbsDuplicates(t *testing.T) {
	cfg := testConfig()
	serial := MustNew(KindSerial, cfg)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10; i++ {
		// Re-scan the same region: massive duplication.
		serial.Insert(geom.V(0, 0, 1), synthScan(rng, geom.V(0, 0, 1), 150))
	}
	st := serial.CacheStats()
	if st.HitRate() < 0.5 {
		t.Errorf("hit rate %.2f too low for repeated scans", st.HitRate())
	}
	tm := serial.Timings()
	if tm.VoxelsToOctree >= tm.VoxelsTraced {
		t.Errorf("octree received %d voxels of %d traced: cache absorbed nothing",
			tm.VoxelsToOctree, tm.VoxelsTraced)
	}
	serial.Close()
}

func TestTimingsAccounting(t *testing.T) {
	for _, kind := range allKinds() {
		m := MustNew(kind, testConfig())
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 5; i++ {
			m.Insert(geom.V(0, 0, 1), synthScan(rng, geom.V(0, 0, 1), 80))
		}
		m.Close()
		tm := m.Timings()
		if tm.Batches != 5 {
			t.Errorf("%v: Batches = %d, want 5", kind, tm.Batches)
		}
		if tm.RayTracing <= 0 {
			t.Errorf("%v: RayTracing time not recorded", kind)
		}
		if tm.VoxelsTraced <= 0 {
			t.Errorf("%v: VoxelsTraced not recorded", kind)
		}
		if kind == KindOctoMap {
			if tm.OctreeUpdate <= 0 {
				t.Errorf("octomap: OctreeUpdate time not recorded")
			}
			if tm.CacheInsert != 0 {
				t.Errorf("octomap: unexpected cache time")
			}
		} else {
			if tm.CacheInsert <= 0 {
				t.Errorf("%v: CacheInsert time not recorded", kind)
			}
		}
		if tm.Critical <= 0 {
			t.Errorf("%v: Critical time not recorded", kind)
		}
		if tm.Total() <= 0 {
			t.Errorf("%v: Total() not positive", kind)
		}
	}
}

func TestTimingsAdd(t *testing.T) {
	a := Timings{RayTracing: 1, CacheInsert: 2, Batches: 3, VoxelsTraced: 10}
	b := Timings{RayTracing: 10, OctreeUpdate: 5, Batches: 1, VoxelsTraced: 5}
	s := a.Add(b)
	if s.RayTracing != 11 || s.CacheInsert != 2 || s.OctreeUpdate != 5 || s.Batches != 4 || s.VoxelsTraced != 15 {
		t.Errorf("Add = %+v", s)
	}
}

func TestCloseIdempotentAndTerminal(t *testing.T) {
	// Every pipeline reports ErrClosed from Insert (and the batch entry
	// points) after Close, while staying queryable; Close itself is an
	// idempotent no-op on repeat calls.
	for _, kind := range allKinds() {
		m := MustNew(kind, testConfig())
		if err := m.Insert(geom.V(0, 0, 1), []geom.Vec3{geom.V(2, 0, 1)}); err != nil {
			t.Fatalf("%v: Insert before Close: %v", kind, err)
		}
		if err := m.Close(); err != nil {
			t.Fatalf("%v: Close: %v", kind, err)
		}
		if err := m.Close(); err != nil {
			t.Fatalf("%v: second Close: %v", kind, err)
		}
		if err := m.Insert(geom.V(0, 0, 1), []geom.Vec3{geom.V(2, 0, 1)}); !errors.Is(err, ErrClosed) {
			t.Errorf("%v: Insert after Close = %v, want ErrClosed", kind, err)
		}
		if _, known := m.Occupancy(geom.V(2, 0, 1)); !known {
			t.Errorf("%v: closed pipeline lost its content", kind)
		}
	}
	for _, kind := range []Kind{KindSerial, KindParallel, KindOctoMap} {
		bm, err := NewShardPipeline(kind, testConfig())
		if err != nil {
			t.Fatal(err)
		}
		bm.Close()
		if err := bm.ApplyTraced(nil); !errors.Is(err, ErrClosed) {
			t.Errorf("%v: ApplyTraced after Close = %v, want ErrClosed", kind, err)
		}
		if err := bm.LoadLeaf(octree.Leaf{}); !errors.Is(err, ErrClosed) {
			t.Errorf("%v: LoadLeaf after Close = %v, want ErrClosed", kind, err)
		}
	}
}

func TestClosedTreeHoldsEverything(t *testing.T) {
	// After Close the tree alone must answer like the combined
	// cache+tree did before.
	cfg := testConfig()
	m := MustNew(KindSerial, cfg)
	rng := rand.New(rand.NewSource(12))
	pts := synthScan(rng, geom.V(0, 0, 1), 200)
	m.Insert(geom.V(0, 0, 1), pts)

	type sample struct {
		p     geom.Vec3
		l     float32
		known bool
	}
	var samples []sample
	for _, p := range pts {
		l, known := m.Occupancy(p)
		samples = append(samples, sample{p, l, known})
	}
	m.Close()
	tree := m.Snapshot()
	for _, s := range samples {
		l, known := tree.Occupancy(s.p)
		if known != s.known || l != s.l {
			t.Fatalf("tree after finalize differs at %v: (%v,%v) vs (%v,%v)", s.p, l, known, s.l, s.known)
		}
	}
}

func TestParallelQueueOverheadMeasured(t *testing.T) {
	m := MustNew(KindParallel, testConfig())
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 10; i++ {
		m.Insert(geom.V(float64(i)*0.3, 0, 1), synthScan(rng, geom.V(float64(i)*0.3, 0, 1), 150))
	}
	m.Close()
	tm := m.Timings()
	if tm.VoxelsToOctree == 0 {
		t.Fatal("no voxels reached the octree")
	}
	if tm.Enqueue <= 0 || tm.Dequeue <= 0 {
		t.Errorf("queue overheads not measured: enq=%v deq=%v", tm.Enqueue, tm.Dequeue)
	}
	// Table 3's observation: queue overhead is small relative to the rest.
	if tm.Enqueue+tm.Dequeue > tm.Total() {
		t.Errorf("queue overhead %v exceeds total busy time %v", tm.Enqueue+tm.Dequeue, tm.Total())
	}
}

func TestOccupiedKeyAgreement(t *testing.T) {
	cfg := testConfig()
	a := MustNew(KindOctoMap, cfg)
	b := MustNew(KindParallel, cfg)
	rng := rand.New(rand.NewSource(21))
	pts := synthScan(rng, geom.V(0, 0, 1), 150)
	a.Insert(geom.V(0, 0, 1), pts)
	b.Insert(geom.V(0, 0, 1), pts)
	for _, p := range pts {
		k, ok := octree.CoordToKey(p, cfg.Octree.Resolution, cfg.Octree.Depth)
		if !ok {
			continue
		}
		if a.OccupiedKey(k) != b.OccupiedKey(k) {
			t.Fatalf("OccupiedKey disagreement at %v", k)
		}
	}
	a.Close()
	b.Close()
}

func TestEvictOrderMortonVariant(t *testing.T) {
	cfg := testConfig()
	cfg.EvictOrder = cache.OrderMorton
	cfg.CacheIndex = cache.HashIndex
	m := MustNew(KindSerial, cfg)
	n := MustNew(KindOctoMap, testConfig())
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 10; i++ {
		origin := geom.V(float64(i)*0.2, 0, 1)
		pts := synthScan(rng, origin, 100)
		m.Insert(origin, pts)
		n.Insert(origin, pts)
	}
	m.Close()
	n.Close()
	if !m.Snapshot().Equal(n.Snapshot()) {
		t.Error("Morton-sorted eviction changed final map content")
	}
}

func TestOutOfBoundsQueries(t *testing.T) {
	for _, kind := range allKinds() {
		m := MustNew(kind, testConfig())
		if m.Occupied(geom.V(1e9, 0, 0)) {
			t.Errorf("%v: out-of-bounds point occupied", kind)
		}
		if _, known := m.Occupancy(geom.V(1e9, 0, 0)); known {
			t.Errorf("%v: out-of-bounds point known", kind)
		}
		m.Close()
	}
}

// TestCastRayConsistencyAcrossPipelines: visibility answers must match
// across all pipeline variants at any batch boundary.
func TestCastRayConsistencyAcrossPipelines(t *testing.T) {
	cfg := testConfig()
	kinds := []Kind{KindOctoMap, KindSerial, KindParallel, KindVoxelCache, KindNaive}
	mappers := make([]Mapper, 0, len(kinds))
	for _, k := range kinds {
		mappers = append(mappers, MustNew(k, cfg))
	}
	rng := rand.New(rand.NewSource(55))
	for batch := 0; batch < 10; batch++ {
		origin := geom.V(float64(batch)*0.2, 0, 1)
		pts := synthScan(rng, origin, 120)
		for _, m := range mappers {
			m.Insert(origin, pts)
		}
	}
	rayRNG := rand.New(rand.NewSource(56))
	for trial := 0; trial < 60; trial++ {
		origin := geom.V(rayRNG.Float64()*2, rayRNG.Float64()*2-1, 1)
		dir := geom.Pose{
			Yaw:   rayRNG.Float64()*2 - 1,
			Pitch: rayRNG.Float64()*0.6 - 0.3,
		}.Forward()
		h0, ok0 := mappers[0].CastRay(origin, dir, 6, true)
		for _, m := range mappers[1:3] { // exact-consistency pipelines
			h, ok := m.CastRay(origin, dir, 6, true)
			if ok != ok0 || h != h0 {
				t.Fatalf("trial %d: %s CastRay (%v,%v) differs from %s (%v,%v)",
					trial, m.Name(), h, ok, mappers[0].Name(), h0, ok0)
			}
		}
		// VoxelCache is value-consistent too.
		h, ok := mappers[3].CastRay(origin, dir, 6, true)
		if ok != ok0 || h != h0 {
			t.Fatalf("trial %d: voxelcache CastRay diverged", trial)
		}
	}
	for _, m := range mappers {
		m.Close()
	}
}

// TestCastRayBasics checks hit/miss semantics through the public surface.
func TestCastRayBasics(t *testing.T) {
	m := MustNew(KindSerial, testConfig())
	target := geom.V(3, 0, 1)
	// Scan a small wall so the voxel and its surroundings are known.
	var wall []geom.Vec3
	for dy := -0.5; dy <= 0.5; dy += 0.05 {
		for dz := -0.3; dz <= 0.3; dz += 0.05 {
			wall = append(wall, geom.V(3, dy, 1+dz))
		}
	}
	m.Insert(geom.V(0, 0, 1), wall)
	hit, ok := m.CastRay(geom.V(0, 0, 1), geom.V(1, 0, 0), 8, true)
	if !ok {
		t.Fatal("ray missed the wall")
	}
	if hit.Dist(target) > 0.2 {
		t.Errorf("hit at %v, want near %v", hit, target)
	}
	// Range-limited miss.
	if _, ok := m.CastRay(geom.V(0, 0, 1), geom.V(1, 0, 0), 1, true); ok {
		t.Error("hit beyond max range")
	}
	// Unknown-blocking ray pointing away.
	if _, ok := m.CastRay(geom.V(0, 0, 1), geom.V(-1, 0, 0), 8, false); ok {
		t.Error("ray through unknown space with ignoreUnknown=false hit")
	}
	// Degenerate direction.
	if _, ok := m.CastRay(geom.V(0, 0, 1), geom.V(0, 0, 0), 8, true); ok {
		t.Error("zero direction hit")
	}
	m.Close()
}

// TestDynamicEnvironmentConsistency crosses a moving obstacle through the
// sensor's view and checks (a) the clamped log-odds model lets the map
// flip occupied→free after the obstacle leaves and (b) OctoCache stays
// bit-identical to OctoMap throughout — the §2.2 dynamic-environment
// requirement.
func TestDynamicEnvironmentConsistency(t *testing.T) {
	block := &world.Moving{
		Base:     world.B(geom.V(4, -8, 0), geom.V(5, -6, 3)),
		Velocity: geom.V(0, 2, 0),
	}
	w := &world.World{
		Bounds: geom.Box(geom.V(-1, -10, -1), geom.V(12, 10, 5)),
		Obstacles: []world.Obstacle{
			world.B(geom.V(10, -10, 0), geom.V(10.5, 10, 4)),
			block,
		},
	}
	sens := sensor.DefaultModel(15, 49, 17)
	origin := geom.V(0, 0, 1.5)
	watch := geom.V(4.1, 0, 1.5)

	a := MustNew(KindOctoMap, DefaultConfig(0.2))
	b := MustNew(KindParallel, DefaultConfig(0.2))
	sawOccupied, sawFreedAfter := false, false
	for frame := 0; frame <= 22; frame++ {
		w.SetTime(float64(frame) * 0.5)
		pts := sens.Scan(w, geom.Pose{Position: origin}, nil)
		a.Insert(origin, pts)
		b.Insert(origin, pts)
		la, ka := a.Occupancy(watch)
		lb, kb := b.Occupancy(watch)
		if la != lb || ka != kb {
			t.Fatalf("frame %d: pipelines disagree: (%v,%v) vs (%v,%v)", frame, la, ka, lb, kb)
		}
		occ := ka && la >= 0
		if occ {
			sawOccupied = true
		}
		if sawOccupied && ka && la < 0 {
			sawFreedAfter = true
		}
	}
	a.Close()
	b.Close()
	if !sawOccupied {
		t.Error("watch voxel never became occupied while the block crossed")
	}
	if !sawFreedAfter {
		t.Error("watch voxel never flipped back to free after the block left")
	}
}
