package core

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"

	"octocache/internal/durable"
	"octocache/internal/raytrace"
)

// ErrDurable marks failures of a durable map's log or snapshot store:
// errors wrapping it surface on Insert, Checkpoint, and map recovery
// when a WAL append, snapshot write, or recovery read hits an I/O error
// or on-disk corruption. Like ErrPager the error is sticky — the on-disk
// history is incomplete, so the map keeps answering queries but stops
// accepting observations rather than diverging from its log.
var ErrDurable = errors.New("octocache: durable store failure")

// SyncPolicy selects when WAL appends reach stable storage; see the
// constants.
type SyncPolicy = durable.SyncPolicy

const (
	// SyncNone (the default) leaves WAL durability to the OS page cache:
	// a process crash loses nothing, a power loss may lose the most
	// recent batches. Snapshot and log-compaction commits always fsync.
	SyncNone = durable.SyncNone
	// SyncEveryBatch fsyncs the log after every admitted batch, bounding
	// power-loss data loss to the batch in flight at the cost of one
	// device flush per scan.
	SyncEveryBatch = durable.SyncEveryBatch
)

// Durable is the persistence policy: every admitted observation batch is
// appended to a per-pipeline write-ahead log before it is applied, and
// consistent-cut snapshots bound replay length. A map constructed with
// DurableRecover set replays the log over the last snapshot, restoring
// exactly the admitted prefix that survived on disk. The zero value
// disables durability.
type Durable struct {
	// Dir is the directory holding the log and snapshot files. Non-empty
	// enables durability; created if absent. A windowed map shares this
	// store with its spill frames (one log carries both record kinds), so
	// when both policies are set Window.Dir must be empty or equal.
	Dir string
	// Sync selects the WAL fsync cadence. The zero value is SyncNone.
	Sync SyncPolicy
	// SnapshotEvery takes a background consistent-cut snapshot after
	// every N admitted batches, retiring the WAL frames it covers. 0
	// disables automatic snapshots; explicit Checkpoint calls always run.
	SnapshotEvery int
}

// Enabled reports whether the policy actually makes the map durable.
func (d Durable) Enabled() bool { return d.Dir != "" }

// Validate checks the policy.
func (d Durable) Validate() error {
	if !d.Enabled() {
		return nil
	}
	if d.Sync != SyncNone && d.Sync != SyncEveryBatch {
		return fmt.Errorf("core: unknown Durable.Sync policy %v", d.Sync)
	}
	if d.SnapshotEvery < 0 {
		return fmt.Errorf("core: Durable.SnapshotEvery must be >= 0, got %d", d.SnapshotEvery)
	}
	return nil
}

// DurableStats reports a durable map's logging activity. The sharded
// service aggregates per-shard stats with Add.
type DurableStats struct {
	// Enabled mirrors the policy: false means the map is not durable and
	// every other field is zero.
	Enabled bool `json:"enabled"`
	// Seq is the sequence number of the last admitted-and-logged batch.
	// For a sharded map Add reports the minimum across shards — the
	// sequence the whole map is guaranteed durable through.
	Seq uint64 `json:"seq"`
	// LastSnapshotSeq is the cut the last committed snapshot covers (0
	// before the first); minimum across shards under Add.
	LastSnapshotSeq uint64 `json:"last_snapshot_seq"`
	// WALBytes is the log space held by batches not yet covered by a
	// snapshot — what recovery would replay.
	WALBytes int64 `json:"wal_bytes"`
	// WALBatches counts batches appended over the map's lifetime.
	WALBatches int64 `json:"wal_batches"`
	// Snapshots counts committed snapshots.
	Snapshots int64 `json:"snapshots"`
	// ReplayedBatches counts batches replayed when this map was
	// recovered (0 for a fresh map).
	ReplayedBatches int64 `json:"replayed_batches"`
	// BytesOnDisk is the log's file size. With a window armed the log
	// also carries spill frames, so this equals WindowStats.BytesOnDisk.
	BytesOnDisk int64 `json:"bytes_on_disk"`
}

// Add returns the aggregate of two snapshots: counters sum; the sequence
// fields take the minimum over enabled sides, because a sharded map is
// only durable (and snapshotted) through its furthest-behind shard.
func (s DurableStats) Add(o DurableStats) DurableStats {
	if !s.Enabled {
		return o
	}
	if !o.Enabled {
		return s
	}
	out := DurableStats{
		Enabled:         true,
		Seq:             s.Seq,
		LastSnapshotSeq: s.LastSnapshotSeq,
		WALBytes:        s.WALBytes + o.WALBytes,
		WALBatches:      s.WALBatches + o.WALBatches,
		Snapshots:       s.Snapshots + o.Snapshots,
		ReplayedBatches: s.ReplayedBatches + o.ReplayedBatches,
		BytesOnDisk:     s.BytesOnDisk + o.BytesOnDisk,
	}
	if o.Seq < out.Seq {
		out.Seq = o.Seq
	}
	if o.LastSnapshotSeq < out.LastSnapshotSeq {
		out.LastSnapshotSeq = o.LastSnapshotSeq
	}
	return out
}

// Durabler is the optional capability of pipelines with durability
// armed. The shard service and the public Map assert it once and
// delegate.
type Durabler interface {
	// Checkpoint takes a consistent-cut snapshot now and waits for it to
	// commit, retiring the WAL it covers. A mutator call. Returns
	// ErrClosed after Close and any sticky durable error.
	Checkpoint() error
	// DurableStats snapshots logging activity.
	DurableStats() DurableStats
	// DurableErr returns the sticky durable error, if any.
	DurableErr() error
}

// ScanDurableDir reports which logs a durable directory holds: whether
// the single-driver log ("map") exists, and how many per-shard logs
// ("shard-NNN") were found. The public Recover uses it to check the
// requested shape against the on-disk layout before any log is opened
// (opening with the wrong tag would silently start a fresh empty log).
// A missing directory reports none — callers decide whether that means
// "fresh map" or an error.
func ScanDurableDir(dir string) (single bool, shards int, err error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return false, 0, nil
	}
	if err != nil {
		return false, 0, err
	}
	for _, e := range entries {
		name := e.Name()
		if name == durable.LogName("map") {
			single = true
			continue
		}
		if strings.HasPrefix(name, "shard-") && strings.HasSuffix(name, ".log") {
			shards++
		}
	}
	return single, shards, nil
}

// durableState is an engine's durability machinery. The sequence counter
// and snapshot cadence mutate only in the mutator role; stats readers
// load the atomics. The sticky error mirrors windowState's: a background
// snapshot writer may set it concurrently with queries, so it has its
// own mutex behind an atomic fast-path guard.
type durableState struct {
	pol   Durable
	store *durable.Store

	seq       atomic.Uint64 // last appended batch sequence
	sinceSnap int           // batches since the last snapshot cut (mutator-side)
	replayed  atomic.Int64  // batches replayed at recovery

	// snapBusy + snapWG bound background snapshot writes to one in
	// flight: a cadence trigger while busy is skipped (the next batch
	// retries), and Close/Checkpoint wait before writing their own.
	snapBusy atomic.Bool
	snapWG   sync.WaitGroup

	hasErr atomic.Bool
	errMu  sync.Mutex
	err    error
}

// setErr records the first durable-store failure; later ones are
// dropped.
func (d *durableState) setErr(err error) {
	d.errMu.Lock()
	if d.err == nil {
		d.err = fmt.Errorf("%w: %v", ErrDurable, err)
		d.hasErr.Store(true)
	}
	d.errMu.Unlock()
}

// loadErr returns the sticky error; the atomic guard keeps the healthy
// fast path lock-free.
func (d *durableState) loadErr() error {
	if !d.hasErr.Load() {
		return nil
	}
	d.errMu.Lock()
	defer d.errMu.Unlock()
	return d.err
}

// appendWAL logs one admitted batch under the next sequence number —
// called in the mutator role after the batch's tiles are resident and
// BEFORE the batch reaches the cache or store, so the log never lags
// applied state. An append failure is sticky: the batch is not admitted
// and the map stops accepting observations.
func (d *durableState) appendWAL(batch []raytrace.Voxel) error {
	seq := d.seq.Load() + 1
	if err := d.store.AppendBatch(seq, batch); err != nil {
		d.setErr(err)
		return d.loadErr()
	}
	d.seq.Store(seq)
	d.sinceSnap++
	return nil
}

// maybeCheckpoint starts a background snapshot when the cadence is due
// and no snapshot write is in flight. Mutator role.
func (e *engine) maybeCheckpoint() {
	d := e.dur
	if d == nil || d.pol.SnapshotEvery <= 0 || d.sinceSnap < d.pol.SnapshotEvery || d.snapBusy.Load() {
		return
	}
	// The cut: the applier has applied every announced batch after
	// admit's handshake, and Snapshot folds store + cache + spilled tiles
	// under the read lock — a consistent image of exactly seq batches.
	cut := d.seq.Load()
	snap := e.Snapshot()
	d.sinceSnap = 0
	d.snapBusy.Store(true)
	d.snapWG.Add(1)
	go func() {
		defer d.snapWG.Done()
		defer d.snapBusy.Store(false)
		if err := d.store.WriteSnapshot(cut, snap); err != nil {
			d.setErr(err)
		}
	}()
}

// Checkpoint implements Durabler: a synchronous consistent-cut snapshot.
func (e *engine) Checkpoint() error {
	if e.closed {
		return ErrClosed
	}
	d := e.dur
	if d == nil {
		return nil
	}
	if err := d.loadErr(); err != nil {
		return err
	}
	d.snapWG.Wait() // one snapshot writer at a time
	cut := d.seq.Load()
	snap := e.Snapshot()
	d.sinceSnap = 0
	if err := d.store.WriteSnapshot(cut, snap); err != nil {
		d.setErr(err)
		return d.loadErr()
	}
	return nil
}

// DurableStats implements Durabler.
func (e *engine) DurableStats() DurableStats {
	d := e.dur
	if d == nil {
		return DurableStats{}
	}
	st := d.store.Stats()
	return DurableStats{
		Enabled:         true,
		Seq:             d.seq.Load(),
		LastSnapshotSeq: st.SnapshotSeq,
		WALBytes:        st.WALBytes,
		WALBatches:      st.WALBatches,
		Snapshots:       st.Snapshots,
		ReplayedBatches: d.replayed.Load(),
		BytesOnDisk:     st.BytesOnDisk,
	}
}

// DurableErr implements Durabler.
func (e *engine) DurableErr() error {
	if e.dur == nil {
		return nil
	}
	return e.dur.loadErr()
}

// recoverFrom restores the engine from what Recover found on disk: the
// last snapshot is loaded leaf-by-leaf, then the surviving WAL batches
// replay through the normal admit path — the same cache/applier/backend
// route live batches take, so the recovered map is bit-identical (query
// answers and serialized bytes) to one that ingested only the surviving
// prefix. Runs once during construction, before the engine is visible to
// any other goroutine.
func (e *engine) recoverFrom(rec *durable.Recovered) error {
	d := e.dur
	if rec.HasSnapshot {
		snap, err := ReadSnapshot(bytes.NewReader(rec.Snapshot))
		if err != nil {
			return fmt.Errorf("%w: recovering snapshot: %v", ErrDurable, err)
		}
		if err := e.LoadSnapshot(snap); err != nil {
			return err
		}
	}
	// ReplayBatches holds the store lock across the callback; the admit
	// path never touches the durable store here — nothing is spilled on a
	// freshly recovered map (Recover retires tile frames) and replay does
	// not recenter, so no reload or spill can occur mid-replay.
	err := d.store.ReplayBatches(func(seq uint64, batch []raytrace.Voxel) error {
		e.evictAndHandOff()
		if e.win != nil {
			if rerr := e.ensureResident(batch); rerr != nil {
				return rerr
			}
		}
		e.admit(batch)
		d.replayed.Add(1)
		return nil
	})
	if err != nil {
		return fmt.Errorf("%w: replaying log: %v", ErrDurable, err)
	}
	d.seq.Store(rec.MaxSeq)
	return nil
}
