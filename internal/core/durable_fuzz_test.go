package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"octocache/internal/durable"
	"octocache/internal/geom"
	"octocache/internal/raytrace"
	"octocache/internal/voxel"
)

// FuzzDurableOpStream drives a durable pipeline through an arbitrary
// interleaving of observation batches and checkpoints, crashes it by
// truncating the log at a fuzz-chosen byte offset, recovers, and asserts
// the recovered map is bit-identical to a non-durable pipeline that
// ingested exactly the batches the recovered sequence number says
// survived. Run differentially over both backends: the WAL frames are
// backend-independent, so the same op stream must recover to the same
// serialized bytes on each.
func FuzzDurableOpStream(f *testing.F) {
	f.Add([]byte{0x00, 0x41, 0x82, 0x80, 0x13, 0x54, 0x80, 0xc1, 0x22, 0x80, 0xff})
	f.Add([]byte{0xc1, 0x01, 0x02, 0x80, 0x03, 0xc1, 0x80, 0x10})
	f.Add(bytes.Repeat([]byte{0x07, 0x80}, 25))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		// The first two bytes pick the crash offset; the rest are ops.
		offSel := int(data[0]) | int(data[1])<<8
		ops := data[2:]
		if len(ops) > 160 {
			ops = ops[:160]
		}

		center, ok := voxel.CoordToKey(geom.V(0.05, 0.05, 0.05), 0.1, 8)
		if !ok {
			t.Fatal("center key out of range")
		}

		// Decode the op stream once: a shared schedule of batches and
		// checkpoint points that both backends execute identically.
		var batches [][]raytrace.Voxel
		var checkpointAfter []bool // checkpointAfter[i]: Checkpoint() after batch i
		var cur []raytrace.Voxel
		flush := func(ckpt bool) {
			if len(cur) == 0 {
				return
			}
			batches = append(batches, cur)
			checkpointAfter = append(checkpointAfter, ckpt)
			cur = nil
		}
		for _, b := range ops {
			// 2 op bits, 6 bits of key/value salt.
			k := voxel.Key{
				X: center.X + uint16(b&0x3),
				Y: center.Y + uint16(b>>2&0x3),
				Z: center.Z + uint16(b>>4&0x3),
			}
			switch b >> 6 {
			case 0:
				cur = append(cur, raytrace.Voxel{Key: k, Occupied: true})
			case 1:
				cur = append(cur, raytrace.Voxel{Key: k, Occupied: false})
			case 2:
				flush(false)
			case 3:
				flush(b&1 == 1)
			}
		}
		flush(false)
		if len(batches) == 0 {
			return
		}

		var prevBytes []byte
		var prevSeq uint64
		for bi, backend := range []BackendKind{BackendOctree, BackendGrid} {
			dir := t.TempDir()
			cfg := testConfig()
			cfg.Backend = backend
			cfg.Durable = Durable{Dir: dir}
			pipe, err := NewShardPipeline(KindSerial, cfg)
			if err != nil {
				t.Fatal(err)
			}
			dur := pipe.(Durabler)
			for i, batch := range batches {
				if err := pipe.ApplyTraced(batch); err != nil {
					t.Fatalf("batch %d: %v", i, err)
				}
				if checkpointAfter[i] {
					if err := dur.Checkpoint(); err != nil {
						t.Fatalf("checkpoint after batch %d: %v", i, err)
					}
				}
			}

			// Crash: copy the disk image before Close (Close would commit a
			// final snapshot), then cut the log at the fuzz-chosen offset.
			logRaw, err := os.ReadFile(filepath.Join(dir, durable.LogName("map")))
			if err != nil {
				t.Fatal(err)
			}
			snapRaw, snapErr := os.ReadFile(filepath.Join(dir, "map.snap"))
			if err := pipe.Close(); err != nil {
				t.Fatal(err)
			}
			off := 8 + offSel%(len(logRaw)-8+1)
			crash := t.TempDir()
			if err := os.WriteFile(filepath.Join(crash, durable.LogName("map")), logRaw[:off], 0o644); err != nil {
				t.Fatal(err)
			}
			if snapErr == nil {
				if err := os.WriteFile(filepath.Join(crash, "map.snap"), snapRaw, 0o644); err != nil {
					t.Fatal(err)
				}
			}

			rcfg := cfg
			rcfg.Durable.Dir = crash
			rcfg.DurableRecover = true
			rec, err := NewShardPipeline(KindSerial, rcfg)
			if err != nil {
				t.Fatalf("recover at offset %d: %v", off, err)
			}
			seq := rec.(Durabler).DurableStats().Seq
			if seq > uint64(len(batches)) {
				t.Fatalf("recovered seq %d beyond the %d admitted batches", seq, len(batches))
			}
			var got bytes.Buffer
			if _, err := rec.WriteTo(&got); err != nil {
				t.Fatal(err)
			}
			if err := rec.Close(); err != nil {
				t.Fatal(err)
			}

			// Reference: a non-durable pipeline ingesting the surviving
			// prefix through the same admit path.
			refCfg := testConfig()
			refCfg.Backend = backend
			ref, err := NewShardPipeline(KindSerial, refCfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, batch := range batches[:seq] {
				if err := ref.ApplyTraced(batch); err != nil {
					t.Fatal(err)
				}
			}
			var want bytes.Buffer
			if _, err := ref.WriteTo(&want); err != nil {
				t.Fatal(err)
			}
			ref.Close()

			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Fatalf("backend %v offset %d: recovery diverged from %d-batch prefix replay", backend, off, seq)
			}
			// Differential leg: identical batches produce identical WAL
			// frames, so both backends cut at the same offset recover the
			// same prefix and — serialization being backend-invariant — the
			// same bytes.
			if bi == 1 {
				if seq != prevSeq {
					t.Fatalf("backends disagree on surviving prefix: %d vs %d", prevSeq, seq)
				}
				if !bytes.Equal(got.Bytes(), prevBytes) {
					t.Fatal("backends recovered different maps from the same op stream")
				}
			}
			prevBytes = got.Bytes()
			prevSeq = seq
		}
	})
}
