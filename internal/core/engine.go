package core

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"octocache/internal/cache"
	"octocache/internal/durable"
	"octocache/internal/geom"
	"octocache/internal/raytrace"
	"octocache/internal/spsc"
	"octocache/internal/voxel"
)

// ErrClosed is returned by Insert, ApplyTraced, and LoadLeaf once a
// pipeline has been closed: the map remains queryable forever, but
// accepts no further observations. The shard service and the public API
// re-export this value, so errors.Is works across layers.
var ErrClosed = errors.New("octocache: map is closed")

// engine is the one implementation of the paper's mapping loop:
//
//	ray trace → cache admit → τ-bounded evict → octree apply
//
// Every pipeline variant in this package is a composition of it along
// two axes:
//
//   - cached or direct: with a cache, traced voxels are admitted to the
//     flat cache (queries are served right after the fast insertion) and
//     only evicted cells reach the octree; without one (the OctoMap
//     baseline), the traced batch goes straight to the octree and
//     queries wait for the whole update.
//   - inline or async applier: the octree-apply stage either runs on the
//     caller's goroutine, or on a background goroutine fed through the
//     SPSC buffer with the paper's batch-gap handshake (Figure 14).
//
// Concurrency contract: mutators (Insert, ApplyTraced, Close, LoadLeaf)
// must be serialized by the caller — one driver goroutine, or the shard service's per-shard write
// lock. The query methods (Occupancy, Occupied, CastRay and their key
// variants) may run concurrently with each other and with the async
// applier's background work, but not with a mutator; the shard service
// provides exactly that exclusion with a per-shard RWMutex.
type engine struct {
	cfg      Config
	baseName string
	// store is the pluggable voxel store behind the pipeline; compactor
	// caches its optional compaction capability (nil when absent, e.g.
	// the grid backend), asserted once at construction so hot paths stay
	// assertion-free.
	store     Backend
	compactor Compactor
	cache     *cache.Cache // nil for the direct (OctoMap baseline) composition
	tracer    raytrace.Scanner
	// lookup is the store read the cache consults on admission misses,
	// built once so the per-scan admit loop stays closure-allocation-free.
	lookup cache.TreeLookup

	// treeRW makes the async applier's store writes and query-side
	// store reads mutually exclusive: the applier goroutine takes the
	// write side per batch, queries take the read side after the gap
	// handshake. With the inline applier it is uncontended by
	// construction (writes only ever run inside a mutator).
	treeRW sync.RWMutex
	app    applier

	// bufMu guards bufFree, the free list of cell-batch buffers that
	// circulate between the mutator (which fills them from eviction,
	// flush, or direct conversion) and the applier (which returns them
	// once the cells are in the octree). Recycling whole batches is what
	// keeps the steady-state evict → hand-off → apply path
	// allocation-free; the mutex is uncontended with the inline applier
	// and touched once per batch with the async one.
	bufMu   sync.Mutex
	bufFree [][]cache.Cell

	// win holds the bounded-memory windowing machinery when
	// cfg.Window is enabled (nil otherwise — hot paths check the pointer
	// once); evictor caches the backend's tile-detach capability the
	// window requires. dur holds the WAL + snapshot machinery when
	// cfg.Durable is enabled; when both are armed they share one
	// durable.Store (one log carries spill frames and WAL frames).
	win     *windowState
	evictor Evictor
	dur     *durableState

	timings    Timings
	compaction CompactionStats
	closed     bool
}

// getBuf takes an empty cell buffer from the free list (or nil, which
// append then grows into a new one that later recycles).
func (e *engine) getBuf() []cache.Cell {
	e.bufMu.Lock()
	defer e.bufMu.Unlock()
	if n := len(e.bufFree); n > 0 {
		b := e.bufFree[n-1]
		e.bufFree = e.bufFree[:n-1]
		return b[:0]
	}
	return nil
}

// putBuf returns a buffer whose cells are fully consumed.
func (e *engine) putBuf(b []cache.Cell) {
	if cap(b) == 0 {
		return
	}
	e.bufMu.Lock()
	e.bufFree = append(e.bufFree, b)
	e.bufMu.Unlock()
}

func newEngine(cfg Config, baseName string, direct, async bool) (*engine, error) {
	e := &engine{
		cfg:      cfg,
		baseName: baseName,
		store:    cfg.newBackend(),
		tracer:   cfg.newScanner(),
	}
	e.compactor, _ = e.store.(Compactor)
	var recovered *durable.Recovered
	if cfg.Window.Enabled() || cfg.Durable.Enabled() {
		// One durable store per pipeline serves all three masters: the
		// window spills tile frames into it, the Durable policy appends WAL
		// frames and snapshot cuts, and when both are armed they share one
		// log. Construction failures wear the badge of whichever policy
		// asked for the store.
		wrap := func(err error) error {
			if cfg.Durable.Enabled() {
				return fmt.Errorf("%w: %v", ErrDurable, err)
			}
			return fmt.Errorf("%w: %v", ErrPager, err)
		}
		dir := cfg.Durable.Dir
		if dir == "" {
			dir = cfg.Window.Dir
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, wrap(err)
		}
		tag := cfg.Tag
		if tag == "" {
			tag = "map"
		}
		var store *durable.Store
		var err error
		if cfg.Durable.Enabled() && cfg.DurableRecover {
			store, recovered, err = durable.Recover(dir, tag, cfg.Durable.Sync)
		} else {
			store, err = durable.Create(dir, tag, cfg.Durable.Sync)
		}
		if err != nil {
			return nil, wrap(err)
		}
		if cfg.Window.Enabled() {
			ev, ok := e.store.(Evictor)
			if !ok {
				store.Close()
				return nil, fmt.Errorf("core: backend %v cannot back a windowed map (no tile eviction)", cfg.Backend)
			}
			e.evictor, e.win = ev, newWindowState(cfg.Window, cfg.Octree.Depth, store)
		}
		if cfg.Durable.Enabled() {
			e.dur = &durableState{pol: cfg.Durable, store: store}
		}
	}
	if !direct {
		e.cache = cache.New(cfg.cacheConfig())
	}
	e.lookup = e.store.Lookup
	if async {
		e.app = newAsyncApplier(e)
	} else {
		e.app = &inlineApplier{e: e}
	}
	if recovered != nil {
		if err := e.recoverFrom(recovered); err != nil {
			e.app.stop()
			return nil, err
		}
	}
	return e, nil
}

func (e *engine) Name() string {
	name := e.baseName
	if e.cfg.Trace == TraceBoundary {
		name += "-boundary"
	}
	if e.cfg.RT {
		name += "-rt"
	}
	return name
}

// traceScan is the shared ray-tracing stage: it turns one scan into the
// per-voxel observation batch and charges the time to tm.RayTracing.
// The baseline pipelines reuse it so the stage exists exactly once.
func traceScan(tr raytrace.Scanner, rt bool, origin geom.Vec3, points []geom.Vec3, tm *Timings) []raytrace.Voxel {
	t0 := time.Now()
	var batch []raytrace.Voxel
	if rt {
		batch = tr.TraceRT(origin, points)
	} else {
		batch = tr.Trace(origin, points)
	}
	tm.RayTracing += time.Since(t0)
	return batch
}

// writeCells is the one store-apply stage. Cached compositions receive
// evicted cells carrying accumulated occupancies, which overwrite the
// store's copies; the direct composition receives observation markers
// (LogOdds > 0 means an occupied observation) and applies the store's
// own incremental update, exactly like vanilla OctoMap.
func (e *engine) writeCells(cells []cache.Cell) {
	if e.cache == nil {
		for _, c := range cells {
			e.store.UpdateCell(c.Key, c.LogOdds > 0)
		}
		return
	}
	for _, c := range cells {
		e.store.SetCell(c.Key, c.LogOdds)
	}
}

// evictAndHandOff runs the eviction stage and hands the batch to the
// applier. With the inline applier the octree update completes before it
// returns; with the async applier it returns as soon as the batch is in
// the SPSC buffer and the octree update proceeds in the background.
func (e *engine) evictAndHandOff() {
	if e.cache == nil {
		return
	}
	t0 := time.Now()
	buf := e.cache.Evict(e.getBuf())
	e.timings.CacheEvict += time.Since(t0)
	if len(buf) == 0 {
		e.putBuf(buf)
		return
	}
	e.timings.VoxelsToOctree += int64(len(buf))
	e.app.apply(buf)
}

// admit integrates a traced batch so queries can see it: through the
// cache when present, else straight into the octree.
func (e *engine) admit(batch []raytrace.Voxel) {
	if e.cache == nil {
		buf := e.getBuf()
		for _, v := range batch {
			lo := float32(-1)
			if v.Occupied {
				lo = 1
			}
			buf = append(buf, cache.Cell{Key: v.Key, LogOdds: lo})
		}
		e.app.apply(buf)
		// Direct-mode queries go straight to the octree, so the batch
		// must be fully applied before the insert returns — the baseline
		// property the paper's Figure 4 describes.
		e.app.quiesce()
		e.timings.VoxelsToOctree += int64(len(batch))
		return
	}

	// The cache insertion reads the octree on misses, so it must wait for
	// the applier to finish every announced batch — the paper's "gap"
	// (Figure 13b). After quiesce the applier is idle and stays idle until
	// this mutator hands off again, so the lookups need no tree lock.
	t0 := time.Now()
	e.app.quiesce()
	e.timings.Wait += time.Since(t0)

	t0 = time.Now()
	for _, v := range batch {
		e.cache.Insert(v.Key, v.Occupied, e.lookup)
	}
	e.timings.CacheInsert += time.Since(t0)
}

// Insert integrates one sensor scan on the Figure 14 schedule: the
// previous batch's eviction is handed off first so an async applier's
// octree update overlaps this batch's ray tracing, and the gap handshake
// before cache insertion guarantees queries never observe a voxel stuck
// in the buffer. It returns ErrClosed after Close.
func (e *engine) Insert(origin geom.Vec3, points []geom.Vec3) error {
	if e.closed {
		return ErrClosed
	}
	if e.win != nil {
		if err := e.win.loadErr(); err != nil {
			return err
		}
	}
	if e.dur != nil {
		if err := e.dur.loadErr(); err != nil {
			return err
		}
	}
	start := time.Now()

	e.evictAndHandOff()
	batch := traceScan(e.tracer, e.cfg.RT, origin, points, &e.timings)
	if e.win != nil {
		// Every touched tile must be resident before admission: the cache
		// seeds accumulation from the store on a miss, so observing a
		// spilled tile without reloading it would restart its voxels from
		// unknown.
		if err := e.ensureResident(batch); err != nil {
			return err
		}
	}
	if e.dur != nil && len(batch) > 0 {
		// Write-ahead: the batch is logged before it can reach the cache
		// or store, so the on-disk history never lags applied state. A
		// failed append rejects the batch (sticky error).
		if err := e.dur.appendWAL(batch); err != nil {
			return err
		}
	}
	e.admit(batch)

	e.maybeCompact()
	if e.win != nil {
		if err := e.maybeRecenter(origin); err != nil {
			return err
		}
	}
	e.maybeCheckpoint()

	e.timings.Batches++
	e.timings.VoxelsTraced += int64(len(batch))
	e.timings.Critical += time.Since(start)
	return nil
}

// ApplyTraced integrates pre-traced voxel observations exactly as Insert
// would after its ray-tracing stage. Unlike Insert it evicts at the tail
// rather than the head: a sharded router calls it under the shard's
// write lock with no tracing inside, so handing the eviction off on the
// way out is what lets an async applier's octree update overlap the
// router's out-of-lock work. It does not count a batch; routers account
// for scans themselves.
func (e *engine) ApplyTraced(batch []raytrace.Voxel) error {
	if e.closed {
		return ErrClosed
	}
	if e.win != nil {
		if err := e.win.loadErr(); err != nil {
			return err
		}
		if err := e.ensureResident(batch); err != nil {
			return err
		}
	}
	if e.dur != nil {
		if err := e.dur.loadErr(); err != nil {
			return err
		}
		if len(batch) > 0 {
			if err := e.dur.appendWAL(batch); err != nil {
				return err
			}
		}
	}
	e.admit(batch)
	// The policy check and any compaction must precede the tail
	// hand-off: admit's gap handshake left the applier idle, so until
	// the next hand-off the mutator owns the tree outright.
	e.maybeCompact()
	e.maybeCheckpoint()
	e.evictAndHandOff()
	e.timings.VoxelsTraced += int64(len(batch))
	return nil
}

// OccupancyKey answers from the cache first; on a miss it waits out any
// in-flight octree writes (the gap guarantee) and reads the tree under
// the read lock — so cache hits never touch a lock shared with the
// applier.
func (e *engine) OccupancyKey(k voxel.Key) (float32, bool) {
	if e.cache != nil {
		if l, hit := e.cache.Query(k); hit {
			return l, true
		}
	}
	e.app.quiesce()
	if e.win != nil && e.win.spilledN.Load() > 0 {
		// Transparently page the voxel's tile back in if it is spilled.
		// A reload failure sets the sticky pager error (surfaced on the
		// next mutator call) and the query answers from resident state.
		_ = e.pageInForQuery(k)
	}
	e.treeRW.RLock()
	l, known := e.store.Lookup(k)
	e.treeRW.RUnlock()
	return l, known
}

// Occupancy is the coordinate-space variant of OccupancyKey.
func (e *engine) Occupancy(p geom.Vec3) (float32, bool) {
	k, ok := voxel.CoordToKey(p, e.cfg.Octree.Resolution, e.cfg.Octree.Depth)
	if !ok {
		return 0, false
	}
	return e.OccupancyKey(k)
}

func (e *engine) Occupied(p geom.Vec3) bool {
	l, known := e.Occupancy(p)
	return known && l >= e.cfg.Octree.OccupancyThreshold
}

func (e *engine) OccupiedKey(k voxel.Key) bool {
	l, known := e.OccupancyKey(k)
	return known && l >= e.cfg.Octree.OccupancyThreshold
}

// CastRay drains pending octree writes once, then holds the read lock
// for the whole walk, consulting the freshest combined cache+octree
// state per visited voxel. With a window armed the walk may cross a
// spilled tile: the first such tile is noted, the walk's result is
// discarded, the tile pages back in, and the walk retries — terminating
// because queries never run concurrently with mutators, so the spilled
// set only shrinks.
func (e *engine) CastRay(origin, dir geom.Vec3, maxRange float64, ignoreUnknown bool) (geom.Vec3, bool) {
	e.app.quiesce()
	for {
		var missed voxel.Key
		haveMissed := false
		e.treeRW.RLock()
		occ := func(k voxel.Key) (float32, bool) {
			if w := e.win; w != nil && w.spilledN.Load() > 0 && !haveMissed {
				t := w.tileOf(k)
				if _, ok := w.spilled[t]; ok {
					missed, haveMissed = t, true
				}
			}
			if e.cache != nil {
				if l, hit := e.cache.Query(k); hit {
					return l, true
				}
			}
			return e.store.Lookup(k)
		}
		hit, ok := CastRayKeys(e.cfg.Octree, occ, origin, dir, maxRange, ignoreUnknown)
		e.treeRW.RUnlock()
		if !haveMissed {
			return hit, ok
		}
		if err := e.reloadTile(missed); err != nil {
			// Sticky pager error is set; answer from what is resident.
			return hit, ok
		}
	}
}

// Close flushes all cached state through the applier, waits for the
// octree to hold everything, and stops background work. Idempotent; the
// engine remains queryable afterwards. It never fails and returns an
// error only to satisfy io.Closer-style call sites.
func (e *engine) Close() error {
	if e.closed {
		return nil
	}
	e.closed = true
	if e.cache != nil {
		t0 := time.Now()
		flushed := e.cache.Flush(e.getBuf())
		e.timings.CacheEvict += time.Since(t0)
		if len(flushed) > 0 {
			e.timings.VoxelsToOctree += int64(len(flushed))
			e.app.apply(flushed)
		} else {
			e.putBuf(flushed)
		}
	}
	e.app.stop()
	if d := e.dur; d != nil {
		// Final synchronous checkpoint: a cleanly closed map recovers from
		// its snapshot with zero batches to replay. Skipped when nothing
		// was admitted past the last cut or the store already failed; the
		// store itself stays open so the closed map remains queryable
		// (spilled tiles keep paging in).
		d.snapWG.Wait()
		if d.loadErr() == nil && d.seq.Load() > d.store.Stats().SnapshotSeq {
			if err := d.store.WriteSnapshot(d.seq.Load(), e.Snapshot()); err != nil {
				d.setErr(err)
			}
		}
	}
	return nil
}

// Quiesce blocks until every handed-off batch has been applied to the
// store. Layered services call it before walking the store directly.
func (e *engine) Quiesce() { e.app.quiesce() }

// Compact rebuilds the store's arenas into a dense Morton/DFS-ordered
// prefix and releases the tail capacity, behind the existing quiesce
// protocol: the applier drains, the rebuild runs under the tree write
// lock, and producers resume — no new lock scheme. It must be called
// from the mutator role (the same serialization Insert requires) and
// returns ErrClosed after Close. On a backend without the compaction
// capability (the grid never fragments) it is a no-op that reports no
// runs.
func (e *engine) Compact() error {
	if e.closed {
		return ErrClosed
	}
	e.compact()
	return nil
}

// maybeCompact runs one compaction when the configured policy's
// fragmentation threshold is crossed. Callers must hold the mutator role
// with the applier quiescent (post-admit), so the stats read is stable.
func (e *engine) maybeCompact() {
	if e.compactor == nil || !e.cfg.Compaction.Enabled() {
		return
	}
	if e.compactor.NeedsCompaction(e.cfg.Compaction) {
		e.compact()
	}
}

// compact drains the applier, then rebuilds the arenas under the tree
// write lock so no query can observe handles mid-move.
func (e *engine) compact() {
	if e.compactor == nil {
		return
	}
	e.app.quiesce()
	t0 := time.Now()
	e.treeRW.Lock()
	cs := e.compactor.Compact()
	e.treeRW.Unlock()
	e.compaction.Runs++
	e.compaction.SlotsReclaimed += int64(cs.NodeSlotsReclaimed + cs.KidSlotsReclaimed)
	e.compaction.LastDuration = time.Since(t0)
}

// CompactionStats reports cumulative arena-compaction activity.
func (e *engine) CompactionStats() CompactionStats { return e.compaction }

// LoadLeaf writes one (possibly aggregate) leaf into the engine's store,
// as emitted by a backend walk — the seam map loading is built on.
// Intended for freshly constructed engines; cells already cached for the
// leaf's voxels keep shadowing the loaded value until evicted. With a
// window armed, a leaf landing in a spilled tile reloads the tile first
// (the leaf overwrites only its own cube); a leaf coarser than a tile
// overwrites whole tiles, so any spilled frames it covers are simply
// dropped. Coarse-loaded regions stay resident until inserts touch
// their tiles, which is when they join the recency list.
func (e *engine) LoadLeaf(l voxel.Leaf) error {
	if e.closed {
		return ErrClosed
	}
	e.app.quiesce()
	e.treeRW.Lock()
	defer e.treeRW.Unlock()
	if w := e.win; w != nil {
		if err := w.loadErr(); err != nil {
			return err
		}
		if l.Depth >= w.pol.TileDepth {
			t := w.tileOf(l.Key)
			if _, ok := w.spilled[t]; ok {
				if err := e.reloadTileLocked(t); err != nil {
					return err
				}
			} else {
				w.lru.Touch(t)
			}
		} else if w.spilledN.Load() > 0 {
			for t := range w.spilled {
				if voxel.TileOf(t, l.Depth, w.depth) == l.Key {
					w.pages.Release(t, w.pol.TileDepth)
					delete(w.spilled, t)
					w.spilledN.Add(-1)
				}
			}
		}
	}
	e.store.SetLeafAt(l.Key, l.Depth, l.LogOdds)
	return nil
}

// LoadSnapshot replays every leaf of src into the engine's store. The
// snapshot's parameters must match the engine's so key spaces and the
// occupancy model agree.
func (e *engine) LoadSnapshot(src *Snapshot) error {
	if p := src.Params(); p != e.cfg.Octree {
		return fmt.Errorf("core: loaded snapshot params %+v differ from pipeline params %+v", p, e.cfg.Octree)
	}
	var err error
	src.Walk(func(l voxel.Leaf) bool {
		err = e.LoadLeaf(l)
		return err == nil
	})
	return err
}

func (e *engine) Resolution() float64 { return e.cfg.Octree.Resolution }

// Backend reports which voxel store backs the engine.
func (e *engine) Backend() BackendKind { return e.cfg.Backend }

// WalkLeaves streams the pipeline's complete contents: the store's
// leaves in ascending Morton order (applier drained first), then — with
// a window armed — every spilled tile's on-disk leaves (tiles in Morton
// order, leaves within a tile in Morton order), then every
// cache-resident cell as a finest-depth leaf. Cache cells hold
// *accumulated* occupancy — eviction overwrites the store entry — so a
// key can appear twice, store value first, authoritative cached value
// second; replaying the stream through SetLeafAt (Snapshot.Add)
// therefore converges to the live map's query answers. Spilled tiles
// never overlap resident content (a spilled tile leaves nothing behind),
// but interleaving store and disk would cost residency churn, so the
// whole-stream ascending-Morton property holds only for unwindowed
// maps; consume windowed streams by replay. After Close the cache is
// flushed and the stream is the ordered store walk plus spilled tiles.
func (e *engine) WalkLeaves(fn func(voxel.Leaf) bool) {
	e.app.quiesce()
	e.treeRW.RLock()
	defer e.treeRW.RUnlock()
	stopped := false
	e.store.Walk(func(l voxel.Leaf) bool {
		if !fn(l) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	if w := e.win; w != nil && w.spilledN.Load() > 0 {
		// Local buffer: WalkLeaves holds only the read lock, so concurrent
		// walkers must not share the window's mutator-side scratch. A read
		// failure sets the sticky error and ends the disk portion.
		var buf []voxel.Leaf
		for _, t := range w.pages.Tiles() {
			var err error
			buf, err = w.pages.Load(t.Key, t.Depth, buf[:0])
			if err != nil {
				w.setErr(err)
				return
			}
			for _, l := range buf {
				if !fn(l) {
					return
				}
			}
		}
	}
	if e.cache == nil {
		return
	}
	depth := e.cfg.Octree.Depth
	e.cache.Walk(func(c cache.Cell) bool {
		return fn(voxel.Leaf{Key: c.Key, Depth: depth, LogOdds: c.LogOdds})
	})
}

// Snapshot captures the pipeline's current contents — applied store
// leaves plus cache-resident cells — as a canonical, backend-neutral
// snapshot: the accessor that replaces the old raw Tree() escape
// hatch, answering exactly like the live map at any point in the
// stream.
func (e *engine) Snapshot() *Snapshot {
	s := NewSnapshot(e.cfg.Octree)
	e.WalkLeaves(func(l voxel.Leaf) bool {
		s.Add(l)
		return true
	})
	return s
}

// WriteTo serializes the pipeline's contents in the .bt format.
// Backends that serialize directly (the octree) stream in place when
// nothing is parked in the cache (always true after Close) and nothing
// is spilled; otherwise the canonical snapshot path folds cached cells
// and spilled tiles in, producing identical bytes for content-equal
// maps either way — serialization is window-invariant.
func (e *engine) WriteTo(w io.Writer) (int64, error) {
	if e.win != nil {
		if err := e.win.loadErr(); err != nil {
			return 0, err
		}
	}
	e.app.quiesce()
	e.treeRW.RLock()
	wt, ok := e.store.(io.WriterTo)
	if ok && (e.cache == nil || e.cache.Len() == 0) && (e.win == nil || e.win.spilledN.Load() == 0) {
		defer e.treeRW.RUnlock()
		return wt.WriteTo(w)
	}
	e.treeRW.RUnlock()
	n, err := e.Snapshot().WriteTo(w)
	if err == nil && e.win != nil {
		// A spilled-tile read failure inside the walk surfaces here
		// rather than silently serializing a partial map.
		err = e.win.loadErr()
	}
	return n, err
}

// ArenaStats snapshots the store's arena occupancy (zero-valued except
// for the footprint when the backend does not report arenas), draining
// the applier first so the counters are exact.
func (e *engine) ArenaStats() ArenaStats {
	e.app.quiesce()
	s := ArenaStats{Bytes: e.store.MemoryBytes()}
	if ar, ok := e.store.(ArenaReporter); ok {
		s.LiveNodes, s.FreeSlots, s.Capacity = ar.ArenaStats()
	}
	return s
}

// NodeVisits reports the store's cumulative memory-touch count, or 0
// for backends without the capability.
func (e *engine) NodeVisits() int64 {
	if vc, ok := e.store.(VisitCounter); ok {
		return vc.NodeVisits()
	}
	return 0
}

// ResetNodeVisits zeroes the store's visit counter where supported.
func (e *engine) ResetNodeVisits() {
	if vc, ok := e.store.(VisitCounter); ok {
		vc.ResetNodeVisits()
	}
}

// MemoryBytes estimates the store's heap footprint.
func (e *engine) MemoryBytes() int64 { return e.store.MemoryBytes() }

func (e *engine) CacheLen() int {
	if e.cache == nil {
		return 0
	}
	return e.cache.Len()
}

func (e *engine) CacheStats() cache.Stats {
	if e.cache == nil {
		return cache.Stats{}
	}
	return e.cache.Stats()
}

// Timings merges the mutator-side stage decomposition with the stages
// accrued inside the applier (octree update, queue transfer) — the
// per-thread busy-time split the benchmark harness reports.
func (e *engine) Timings() Timings {
	t := e.timings
	oct, enq, deq := e.app.timings()
	t.OctreeUpdate += oct
	t.Enqueue += enq
	t.Dequeue += deq
	return t
}

// WorkCounters returns the engine's cumulative work counts. All three
// counters accrue on the mutator side (VoxelsToOctree is counted at
// hand-off, before any async application), so the snapshot is exact for
// the single driver the mutator contract already requires and never
// waits on the applier.
func (e *engine) WorkCounters() Counters { return e.timings.Counters() }

// applier is the pluggable octree-apply stage: it receives eviction (or
// direct-update) batches and guarantees, after quiesce, that every batch
// handed off so far is in the octree.
type applier interface {
	// apply hands one batch over, transferring ownership: the slice came
	// from the engine's buffer free list, and the implementation returns
	// it there (putBuf) once its cells are in the octree. The caller must
	// not touch the slice after apply.
	apply(cells []cache.Cell)
	// quiesce blocks until every handed-off batch has been applied.
	// Safe for concurrent callers.
	quiesce()
	// stop quiesces and shuts down background work. The applier must not
	// be used for apply afterwards; quiesce remains callable.
	stop()
	// timings reports the stage durations accrued inside the applier.
	timings() (octreeUpdate, enqueue, dequeue time.Duration)
}

// inlineApplier applies batches on the caller's goroutine: the serial
// compositions, where the octree update stays on the critical path
// (cached: Figure 11/13a; direct: Figure 4).
type inlineApplier struct {
	e        *engine
	octreeNS time.Duration
}

func (a *inlineApplier) apply(cells []cache.Cell) {
	t0 := time.Now()
	a.e.writeCells(cells)
	a.octreeNS += time.Since(t0)
	a.e.putBuf(cells)
}

func (a *inlineApplier) quiesce() {}
func (a *inlineApplier) stop()    {}

func (a *inlineApplier) timings() (time.Duration, time.Duration, time.Duration) {
	return a.octreeNS, 0, 0
}

// asyncApplier is the paper's thread 2 (Figure 14): a dedicated
// goroutine dequeues batches from the SPSC buffer and writes them into
// the octree under the engine's tree write lock. The handshake follows
// the paper — each batch is announced (counter) before it becomes
// visible to the worker, and quiesce implements the batch gap: it
// returns only once applied catches up with announced.
//
// The SPSC ring carries whole batch slices, one element per hand-off, so
// the transfer is a single enqueue instead of a per-cell copy and the
// slice recycles through the engine's buffer free list once applied
// (batch capacity is bounded by parallelQueueCap, so the free list, and
// with it steady-state memory, stays bounded too). The batchCh doorbell
// wakes the worker without it spinning on an empty ring and doubles as
// the shutdown signal.
//
// Unlike the seed's channel-ack scheme, completion is tracked with an
// atomic counter plus a condition variable so any number of concurrent
// query goroutines can wait for the gap at once — which is what lets the
// shard service run queries under a shared lock.
type asyncApplier struct {
	e       *engine
	queue   *spsc.Queue[[]cache.Cell]
	batchCh chan struct{} // doorbell: one token per enqueued batch

	mu        sync.Mutex
	cond      *sync.Cond
	announced atomic.Int64 // batches handed off (mutator-side)
	applied   atomic.Int64 // batches fully in the octree (worker-side)

	wg        sync.WaitGroup
	enqueueNS time.Duration // mutator-side
	t2Octree  atomic.Int64  // ns spent in octree updates on the worker
	t2Dequeue atomic.Int64  // ns spent dequeuing on the worker
}

func newAsyncApplier(e *engine) *asyncApplier {
	a := &asyncApplier{
		e:       e,
		queue:   spsc.New[[]cache.Cell](parallelQueueCap),
		batchCh: make(chan struct{}, parallelQueueCap),
	}
	a.cond = sync.NewCond(&a.mu)
	a.wg.Add(1)
	go a.run()
	return a
}

// run is the worker: one batch at a time, dequeue then apply under the
// tree write lock, then recycle the buffer.
func (a *asyncApplier) run() {
	defer a.wg.Done()
	for range a.batchCh {
		t0 := time.Now()
		buf := a.queue.Dequeue()
		a.t2Dequeue.Add(int64(time.Since(t0)))

		a.e.treeRW.Lock()
		t0 = time.Now()
		a.e.writeCells(buf)
		a.t2Octree.Add(int64(time.Since(t0)))
		a.e.treeRW.Unlock()
		a.e.putBuf(buf)

		a.mu.Lock()
		a.applied.Add(1)
		a.cond.Broadcast()
		a.mu.Unlock()
	}
}

func (a *asyncApplier) apply(cells []cache.Cell) {
	if len(cells) == 0 {
		a.e.putBuf(cells)
		return
	}
	// Announce first so a concurrent quiesce that starts now waits for
	// this batch; then make it visible (enqueue before the doorbell, so
	// the worker never sees the token without the batch).
	a.announced.Add(1)
	t0 := time.Now()
	a.queue.Enqueue(cells)
	a.enqueueNS += time.Since(t0)
	a.batchCh <- struct{}{}
}

func (a *asyncApplier) quiesce() {
	target := a.announced.Load()
	if a.applied.Load() >= target {
		return
	}
	a.mu.Lock()
	for a.applied.Load() < target {
		a.cond.Wait()
	}
	a.mu.Unlock()
}

func (a *asyncApplier) stop() {
	a.quiesce()
	close(a.batchCh)
	a.wg.Wait()
}

func (a *asyncApplier) timings() (time.Duration, time.Duration, time.Duration) {
	return time.Duration(a.t2Octree.Load()), a.enqueueNS, time.Duration(a.t2Dequeue.Load())
}
