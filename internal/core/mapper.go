package core

import (
	"fmt"
	"io"

	"octocache/internal/cache"
	"octocache/internal/geom"
	"octocache/internal/raytrace"
	"octocache/internal/voxel"
)

// Mapper is the query-consistent interface every pipeline implements —
// the paper's requirement that OctoCache expose the same voxel query API
// and results as vanilla OctoMap (§4.1).
//
// The contract: after Insert returns, queries reflect every observation
// inserted so far, exactly as OctoMap would report them.
type Mapper interface {
	// Insert integrates one sensor scan: points in world coordinates
	// observed from origin. It returns ErrClosed after Close.
	Insert(origin geom.Vec3, points []geom.Vec3) error

	// Occupancy returns the accumulated log-odds of the voxel containing
	// p; known is false for never-observed voxels.
	Occupancy(p geom.Vec3) (logOdds float32, known bool)

	// Occupied reports whether the voxel containing p is known-occupied.
	Occupied(p geom.Vec3) bool

	// OccupiedKey is the key-space variant of Occupied.
	OccupiedKey(k voxel.Key) bool

	// CastRay walks from origin along dir until it enters a known-
	// occupied voxel or exceeds maxRange, returning the hit voxel's
	// center. Unknown space is traversed when ignoreUnknown is true and
	// terminates the ray otherwise. Results reflect the freshest combined
	// cache+octree state, like point queries.
	CastRay(origin, dir geom.Vec3, maxRange float64, ignoreUnknown bool) (hit geom.Vec3, ok bool)

	// Close flushes all cached state into the octree and stops any
	// background work. The Mapper remains queryable afterwards; further
	// insertions return ErrClosed. Close is idempotent and never fails;
	// it returns an error only to satisfy io.Closer-style call sites.
	Close() error

	// Resolution returns the voxel edge length in meters. It lets
	// map consumers (planners, renderers) discretize without reaching
	// for the backing store.
	Resolution() float64

	// Backend reports which voxel store backs the pipeline.
	Backend() BackendKind

	// Snapshot captures the store's current contents as a canonical,
	// backend-neutral snapshot — for serialization, merging, and
	// read-only consumers. The snapshot excludes cells still parked in
	// the cache; Close (or flush) first for a complete map. Treat it as
	// a mutator call on parallel pipelines.
	Snapshot() *Snapshot

	// WriteTo serializes the store in the .bt format, draining any
	// background applier first. Bytes are identical across backends for
	// content-equal maps. Treat it as a mutator call on parallel
	// pipelines.
	WriteTo(w io.Writer) (int64, error)

	// ArenaStats snapshots the store's arena occupancy (resident-brick
	// counts for the grid backend), draining any background applier
	// first.
	ArenaStats() ArenaStats

	// NodeVisits reports the store's cumulative memory-touch count — the
	// bottleneck experiments' architecture-neutral proxy for Figure 5's
	// memory accesses. Backends without the capability report 0.
	NodeVisits() int64

	// MemoryBytes estimates the store's heap footprint.
	MemoryBytes() int64

	// Compact rebuilds the store's arenas into a dense
	// Morton/DFS-ordered prefix, releasing fragmented tail capacity.
	// Observable structure — queries and serialized bytes — is
	// unchanged. Like Insert it is a mutator call: the caller provides
	// the same serialization. A no-op on backends without the
	// compaction capability. Returns ErrClosed after Close.
	Compact() error

	// CompactionStats reports cumulative arena-compaction activity,
	// covering both automatic (policy-triggered) and explicit runs.
	CompactionStats() CompactionStats

	// Timings returns the cumulative stage decomposition.
	Timings() Timings

	// WorkCounters returns the cumulative monotone work counts without
	// the measured stage durations — the cheap per-cycle snapshot whose
	// deltas feed the virtual clock's latency model (internal/clock).
	// Unlike Timings it touches no applier-side atomics, so for a
	// deterministic insert stream its deltas are deterministic too.
	WorkCounters() Counters

	// CacheStats returns cache behaviour counters; zero for pipelines
	// without a cache.
	CacheStats() cache.Stats

	// Name identifies the pipeline variant for reports.
	Name() string
}

// BatchMapper extends Mapper with the routable entry points the sharded
// map service (internal/shard) drives: the router traces each scan once,
// partitions the traced cells by shard, and applies each shard's slice
// through ApplyTraced — so ray tracing runs outside any shard lock.
type BatchMapper interface {
	Mapper

	// ApplyTraced integrates pre-traced voxel observations exactly as
	// Insert would after its ray-tracing stage (cache insert, τ-bounded
	// eviction, octree apply). It does not count a batch; routers
	// account for scans themselves. Returns ErrClosed after Close.
	ApplyTraced(batch []raytrace.Voxel) error

	// OccupancyKey is the key-space variant of Occupancy.
	OccupancyKey(k voxel.Key) (logOdds float32, known bool)

	// CacheLen reports the number of cells currently parked in the
	// pipeline's cache awaiting eviction — the shard's queue depth.
	CacheLen() int

	// Quiesce blocks until every store write handed to the pipeline's
	// applier has landed. A no-op for inline appliers. Layered services
	// call it before walking the store directly.
	Quiesce()

	// WalkLeaves streams the pipeline's complete contents: the store's
	// leaves in ascending Morton order (applier drained first), then
	// any cache-resident cells as finest-depth leaves. A key may appear
	// twice — store value first, authoritative cached value second — so
	// consume the stream by replay (Snapshot.Add), which converges to
	// the live map's answers. This is the per-shard walk the sharded
	// service merges snapshots from.
	WalkLeaves(fn func(voxel.Leaf) bool)

	// LoadLeaf writes one (possibly aggregate) leaf, as emitted by a
	// backend walk, into the pipeline's store — the seam map loading is
	// built on. Returns ErrClosed after Close.
	LoadLeaf(l voxel.Leaf) error
}

// NewShardPipeline builds the pipeline that backs one spatial shard of a
// sharded map: an engine composition exposing the batch interface. The
// shard layer provides cross-goroutine exclusion between mutators and
// queries; KindParallel additionally runs the shard's octree application
// on a background applier, per the paper's two-thread schedule.
func NewShardPipeline(kind Kind, cfg Config) (BatchMapper, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	switch kind {
	case KindSerial:
		return newSerial(cfg)
	case KindParallel:
		return newParallel(cfg)
	case KindOctoMap:
		return newOctoMap(cfg)
	default:
		return nil, errUnknownKind(kind)
	}
}

// Kind enumerates the pipeline variants.
type Kind int

const (
	// KindOctoMap is the vanilla baseline.
	KindOctoMap Kind = iota
	// KindSerial is the single-threaded OctoCache (Figure 11).
	KindSerial
	// KindParallel is the two-threaded OctoCache (Figure 14).
	KindParallel
	// KindVoxelCache is the VoxelCache-style indexed baseline (Table 1):
	// O(1) voxel location, but the octree bottleneck survives.
	KindVoxelCache
	// KindNaive is naive software parallelization (Table 1): updates
	// fanned over goroutines behind a global octree mutex.
	KindNaive
)

func (k Kind) String() string {
	switch k {
	case KindOctoMap:
		return "octomap"
	case KindSerial:
		return "octocache-serial"
	case KindParallel:
		return "octocache-parallel"
	case KindVoxelCache:
		return "voxelcache"
	case KindNaive:
		return "naive-parallel"
	default:
		return "unknown"
	}
}

// New constructs the pipeline variant selected by kind. The cfg.RT flag
// independently selects deduplicating ray tracing, yielding the paper's
// six evaluated systems.
func New(kind Kind, cfg Config) (Mapper, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	switch kind {
	case KindOctoMap:
		return newOctoMap(cfg)
	case KindSerial:
		return newSerial(cfg)
	case KindParallel:
		return newParallel(cfg)
	case KindVoxelCache, KindNaive:
		// The Table 1 baselines exist for bottleneck comparison only and
		// implement neither windowed paging nor durability.
		if cfg.Window.Enabled() {
			return nil, fmt.Errorf("core: pipeline %v does not support a bounded-memory window", kind)
		}
		if cfg.Durable.Enabled() {
			return nil, fmt.Errorf("core: pipeline %v does not support durability", kind)
		}
		if kind == KindVoxelCache {
			return newVoxelCache(cfg)
		}
		return newNaive(cfg), nil
	default:
		return nil, errUnknownKind(kind)
	}
}

type errUnknownKind Kind

func (e errUnknownKind) Error() string { return "core: unknown pipeline kind" }

// MustNew is New for static configurations known to be valid.
func MustNew(kind Kind, cfg Config) Mapper {
	m, err := New(kind, cfg)
	if err != nil {
		panic(err)
	}
	return m
}
