package core

import (
	"time"

	"octocache/internal/cache"
	"octocache/internal/geom"
	"octocache/internal/octree"
	"octocache/internal/raytrace"
)

// octoMap is the vanilla baseline pipeline (paper Figure 4): every traced
// voxel observation goes straight into the octree, and queries are only
// possible once the full octree update has completed — which is exactly
// why its update latency sits on the critical path.
type octoMap struct {
	cfg     Config
	tree    *octree.Tree
	tracer  *raytrace.Tracer
	timings Timings
	done    bool
}

func newOctoMap(cfg Config) *octoMap {
	return &octoMap{
		cfg:  cfg,
		tree: cfg.newTree(),
		tracer: raytrace.NewTracer(raytrace.Config{
			Resolution: cfg.Octree.Resolution,
			Depth:      cfg.Octree.Depth,
			MaxRange:   cfg.MaxRange,
		}),
	}
}

func (m *octoMap) Name() string {
	if m.cfg.RT {
		return "octomap-rt"
	}
	return "octomap"
}

func (m *octoMap) InsertPointCloud(origin geom.Vec3, points []geom.Vec3) {
	if m.done {
		panic("core: InsertPointCloud after Finalize")
	}
	start := time.Now()

	t0 := time.Now()
	var batch []raytrace.Voxel
	if m.cfg.RT {
		batch = m.tracer.TraceRT(origin, points)
	} else {
		batch = m.tracer.Trace(origin, points)
	}
	m.timings.RayTracing += time.Since(t0)

	t0 = time.Now()
	for _, v := range batch {
		m.tree.Update(v.Key, v.Occupied)
	}
	m.timings.OctreeUpdate += time.Since(t0)

	m.timings.Batches++
	m.timings.VoxelsTraced += int64(len(batch))
	m.timings.VoxelsToOctree += int64(len(batch))
	m.timings.Critical += time.Since(start)
}

func (m *octoMap) Occupancy(p geom.Vec3) (float32, bool) { return m.tree.OccupancyAt(p) }
func (m *octoMap) Occupied(p geom.Vec3) bool             { return m.tree.OccupiedAt(p) }
func (m *octoMap) OccupiedKey(k octree.Key) bool         { return m.tree.Occupied(k) }
func (m *octoMap) Resolution() float64                   { return m.cfg.Octree.Resolution }
func (m *octoMap) Finalize()                             { m.done = true }
func (m *octoMap) Tree() *octree.Tree                    { return m.tree }
func (m *octoMap) Timings() Timings                      { return m.timings }
func (m *octoMap) CacheStats() cache.Stats               { return cache.Stats{} }
