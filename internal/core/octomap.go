package core

// newOctoMap composes the vanilla baseline pipeline (paper Figure 4):
// no cache, so every traced voxel observation goes straight into the
// octree, and queries are only possible once the full octree update has
// completed — which is exactly why its update latency sits on the
// critical path.
func newOctoMap(cfg Config) (*engine, error) {
	return newEngine(cfg, "octomap", true, false)
}
