package core

// parallelQueueCap sizes the shared eviction buffer, in batches: the
// SPSC ring carries whole batch slices, so the cap bounds in-flight
// eviction batches (each recycling through the engine's buffer free
// list), not cells. Tests shrink it to stress the hand-off under a tiny
// ring.
var parallelQueueCap = 1 << 16

// newParallel composes the two-threaded OctoCache (paper Figure 14): the
// serial pipeline's stages with the octree-apply step moved onto the
// async applier — a dedicated goroutine fed through the SPSC buffer,
// synchronized with the paper's batch-gap handshake (see asyncApplier in
// engine.go). The mutators must still be driven from a single caller
// goroutine; queries may run concurrently (the shard service relies on
// this).
func newParallel(cfg Config) (*engine, error) {
	return newEngine(cfg, "octocache-parallel", false, true)
}
