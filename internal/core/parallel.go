package core

import (
	"sync"
	"sync/atomic"
	"time"

	"octocache/internal/cache"
	"octocache/internal/geom"
	"octocache/internal/octree"
	"octocache/internal/raytrace"
	"octocache/internal/spsc"
)

// parallelMapper is the two-threaded OctoCache (paper Figure 14). The
// caller's goroutine is thread 1: ray tracing, cache insertion, queries,
// cache eviction, and enqueueing evicted cells into the shared SPSC
// buffer. A dedicated goroutine is thread 2: it dequeues eviction batches
// and writes them into the octree.
//
// Synchronization follows the paper exactly:
//
//   - One mutex (treeMu) makes octree reads (cache-miss fill-ins and
//     queries on thread 1) and octree writes (thread 2) mutually
//     exclusive.
//   - The cache insertion of batch N+1 waits until thread 2 has finished
//     applying batch N's evictions ("the gap" of Figure 13b), which also
//     guarantees queries never observe a voxel stuck in the buffer.
//
// The Mapper must be driven from a single caller goroutine.
type parallelMapper struct {
	cfg    Config
	tree   *octree.Tree
	cache  *cache.Cache
	tracer *raytrace.Tracer

	treeMu  sync.Mutex
	queue   *spsc.Queue[cache.Cell]
	batchCh chan int      // eviction batch sizes, thread 1 -> thread 2
	ackCh   chan struct{} // per-batch completion, thread 2 -> thread 1
	pending int           // batches announced but not yet acknowledged

	wg        sync.WaitGroup
	t2Octree  atomic.Int64 // ns spent in octree updates on thread 2
	t2Dequeue atomic.Int64 // ns spent dequeuing on thread 2

	evictBuf []cache.Cell
	timings  Timings
	done     bool
}

// parallelQueueCap sizes the shared eviction buffer. Eviction batches may
// exceed it: thread 2 drains concurrently while thread 1 enqueues, so the
// buffer only bounds in-flight cells, not batch size. Tests shrink it to
// exercise that overlap.
var parallelQueueCap = 1 << 16

func newParallel(cfg Config) *parallelMapper {
	m := &parallelMapper{
		cfg:   cfg,
		tree:  cfg.newTree(),
		cache: cache.New(cfg.cacheConfig()),
		tracer: raytrace.NewTracer(raytrace.Config{
			Resolution: cfg.Octree.Resolution,
			Depth:      cfg.Octree.Depth,
			MaxRange:   cfg.MaxRange,
		}),
		queue:   spsc.New[cache.Cell](parallelQueueCap),
		batchCh: make(chan int, 64),
		ackCh:   make(chan struct{}, 64),
	}
	m.wg.Add(1)
	go m.treeUpdater()
	return m
}

func (m *parallelMapper) Name() string {
	if m.cfg.RT {
		return "octocache-parallel-rt"
	}
	return "octocache-parallel"
}

// treeUpdater is thread 2: it drains one eviction batch at a time from
// the SPSC buffer and applies it to the octree under the tree mutex.
func (m *parallelMapper) treeUpdater() {
	defer m.wg.Done()
	var buf []cache.Cell
	for n := range m.batchCh {
		t0 := time.Now()
		buf = buf[:0]
		for len(buf) < n {
			buf = append(buf, m.queue.Dequeue())
		}
		m.t2Dequeue.Add(int64(time.Since(t0)))

		m.treeMu.Lock()
		t0 = time.Now()
		for _, cell := range buf {
			m.tree.SetNodeValue(cell.Key, cell.LogOdds)
		}
		m.t2Octree.Add(int64(time.Since(t0)))
		m.treeMu.Unlock()
		m.ackCh <- struct{}{}
	}
}

// quiesce blocks until thread 2 has applied every announced batch. After
// it returns, the octree holds all evicted state and thread 2 is idle.
func (m *parallelMapper) quiesce() {
	for m.pending > 0 {
		<-m.ackCh
		m.pending--
	}
}

func (m *parallelMapper) InsertPointCloud(origin geom.Vec3, points []geom.Vec3) {
	if m.done {
		panic("core: InsertPointCloud after Finalize")
	}
	start := time.Now()

	// Figure 14 schedule: the previous batch's cache eviction runs now —
	// after its queries, at the head of the next cycle — so that the
	// octree update it triggers on thread 2 overlaps this cycle's ray
	// tracing, and so that queries between InsertPointCloud calls never
	// have octree writes in flight.
	m.evictAndAnnounce()

	// Ray tracing overlaps thread 2's octree update of the previous
	// batch: neither touches the octree.
	t0 := time.Now()
	var batch []raytrace.Voxel
	if m.cfg.RT {
		batch = m.tracer.TraceRT(origin, points)
	} else {
		batch = m.tracer.Trace(origin, points)
	}
	m.timings.RayTracing += time.Since(t0)

	// The cache insertion reads the octree on misses, so it must wait
	// for thread 2 to finish the previous batch — the paper's "gap".
	t0 = time.Now()
	m.quiesce()
	m.timings.Wait += time.Since(t0)

	t0 = time.Now()
	m.treeMu.Lock()
	lookup := func(k octree.Key) (float32, bool) { return m.tree.Search(k) }
	for _, v := range batch {
		m.cache.Insert(v.Key, v.Occupied, lookup)
	}
	m.treeMu.Unlock()
	m.timings.CacheInsert += time.Since(t0)

	// Queries are served from here until the next InsertPointCloud call,
	// with zero pending octree writes.

	m.timings.Batches++
	m.timings.VoxelsTraced += int64(len(batch))
	m.timings.Critical += time.Since(start)
}

// evictAndAnnounce evicts over-τ cells and hands them to thread 2. The
// batch is announced before enqueueing so thread 2 drains the buffer
// concurrently; enqueueing first would deadlock (as a livelock) on
// batches larger than the buffer capacity.
func (m *parallelMapper) evictAndAnnounce() {
	t0 := time.Now()
	m.evictBuf = m.cache.Evict(m.evictBuf[:0])
	m.timings.CacheEvict += time.Since(t0)
	if len(m.evictBuf) == 0 {
		return
	}
	m.batchCh <- len(m.evictBuf)
	m.pending++
	t0 = time.Now()
	for _, cell := range m.evictBuf {
		m.queue.Enqueue(cell)
	}
	m.timings.Enqueue += time.Since(t0)
	m.timings.VoxelsToOctree += int64(len(m.evictBuf))
}

// Occupancy drains pending octree writes, then answers from the cache or,
// on a miss, from the octree under the mutex — preserving OctoMap's
// query consistency at any call point.
func (m *parallelMapper) Occupancy(p geom.Vec3) (float32, bool) {
	k, ok := octree.CoordToKey(p, m.cfg.Octree.Resolution, m.cfg.Octree.Depth)
	if !ok {
		return 0, false
	}
	return m.occupancyKey(k)
}

func (m *parallelMapper) occupancyKey(k octree.Key) (float32, bool) {
	if l, hit := m.cache.Query(k); hit {
		return l, true
	}
	m.quiesce()
	m.treeMu.Lock()
	l, known := m.tree.Search(k)
	m.treeMu.Unlock()
	return l, known
}

func (m *parallelMapper) Occupied(p geom.Vec3) bool {
	l, known := m.Occupancy(p)
	return known && l >= m.cfg.Octree.OccupancyThreshold
}

func (m *parallelMapper) OccupiedKey(k octree.Key) bool {
	l, known := m.occupancyKey(k)
	return known && l >= m.cfg.Octree.OccupancyThreshold
}

// Finalize flushes the cache through the shared buffer, waits for thread
// 2 to apply everything, and shuts the updater goroutine down.
func (m *parallelMapper) Finalize() {
	if m.done {
		return
	}
	m.done = true

	t0 := time.Now()
	flushed := m.cache.Flush(nil)
	m.timings.CacheEvict += time.Since(t0)

	if len(flushed) > 0 {
		m.batchCh <- len(flushed)
		m.pending++
		t0 = time.Now()
		for _, cell := range flushed {
			m.queue.Enqueue(cell)
		}
		m.timings.Enqueue += time.Since(t0)
		m.timings.VoxelsToOctree += int64(len(flushed))
	}

	m.quiesce()
	close(m.batchCh)
	m.wg.Wait()
}

func (m *parallelMapper) Resolution() float64 { return m.cfg.Octree.Resolution }

func (m *parallelMapper) Tree() *octree.Tree { return m.tree }

func (m *parallelMapper) Timings() Timings {
	t := m.timings
	t.OctreeUpdate = time.Duration(m.t2Octree.Load())
	t.Dequeue = time.Duration(m.t2Dequeue.Load())
	return t
}

func (m *parallelMapper) CacheStats() cache.Stats { return m.cache.Stats() }
