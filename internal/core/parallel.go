package core

// parallelQueueCap sizes the shared eviction buffer. Eviction batches may
// exceed it: thread 2 drains concurrently while thread 1 enqueues, so the
// buffer only bounds in-flight cells, not batch size. Tests shrink it to
// exercise that overlap.
var parallelQueueCap = 1 << 16

// newParallel composes the two-threaded OctoCache (paper Figure 14): the
// serial pipeline's stages with the octree-apply step moved onto the
// async applier — a dedicated goroutine fed through the SPSC buffer,
// synchronized with the paper's batch-gap handshake (see asyncApplier in
// engine.go). The mutators must still be driven from a single caller
// goroutine; queries may run concurrently (the shard service relies on
// this).
func newParallel(cfg Config) *engine {
	return newEngine(cfg, "octocache-parallel", false, true)
}
