package core

import (
	"math/rand"
	"testing"

	"octocache/internal/geom"
)

// TestParallelBatchLargerThanQueue stresses the hand-off under a tiny
// SPSC ring. Historically this was the regression test for
// announce-before-enqueue with a cell-granularity ring (a batch larger
// than the ring had to flow while thread 2 drained concurrently); the
// ring now carries whole batch slices, so the test instead exercises
// eviction batches far larger than the ring's batch capacity flowing
// through back-to-back, plus buffer recycling under pressure — and the
// same serial-equality oracle guards both.
func TestParallelBatchLargerThanQueue(t *testing.T) {
	old := parallelQueueCap
	parallelQueueCap = 64 // tiny ring: at most 64 batches in flight
	defer func() { parallelQueueCap = old }()

	cfg := testConfig()
	cfg.CacheTau = 1
	cfg.CacheBuckets = 8 // tiny cache: almost everything evicts
	m := MustNew(KindParallel, cfg)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5; i++ {
		origin := geom.V(float64(i)*0.3, 0, 1)
		m.Insert(origin, synthScan(rng, origin, 200))
	}
	m.Close()
	tm := m.Timings()
	if tm.VoxelsToOctree == 0 {
		t.Fatal("no voxels reached the octree")
	}
	// Cross-check against the serial pipeline for identical final maps.
	cfgRef := cfg
	ref := MustNew(KindSerial, cfgRef)
	rng = rand.New(rand.NewSource(2))
	for i := 0; i < 5; i++ {
		origin := geom.V(float64(i)*0.3, 0, 1)
		ref.Insert(origin, synthScan(rng, origin, 200))
	}
	ref.Close()
	if !m.Snapshot().Equal(ref.Snapshot()) {
		t.Fatal("parallel pipeline with tiny queue diverged from serial")
	}
}

// TestParallelManySmallBatches stresses the ack/pending protocol.
func TestParallelManySmallBatches(t *testing.T) {
	cfg := testConfig()
	m := MustNew(KindParallel, cfg)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		origin := geom.V(float64(i%10)*0.2, 0, 1)
		m.Insert(origin, synthScan(rng, origin, 10))
		if i%7 == 0 {
			// Interleave queries to force quiesce cycles.
			m.Occupied(geom.V(1, 0, 1))
		}
	}
	m.Close()
	if got := m.Timings().Batches; got != 200 {
		t.Errorf("Batches = %d, want 200", got)
	}
}

// TestParallelQueryAfterClose ensures the map stays queryable once the
// background worker has exited.
func TestParallelQueryAfterClose(t *testing.T) {
	m := MustNew(KindParallel, testConfig())
	target := geom.V(2, 0, 1)
	m.Insert(geom.V(0, 0, 1), []geom.Vec3{target})
	m.Close()
	if !m.Occupied(target) {
		t.Error("occupied voxel lost after finalize")
	}
	if _, known := m.Occupancy(geom.V(-3, -3, -3)); known {
		t.Error("unknown voxel reported known after finalize")
	}
}
