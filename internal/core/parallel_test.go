package core

import (
	"math/rand"
	"testing"

	"octocache/internal/geom"
)

// TestParallelBatchLargerThanQueue is the regression test for the
// announce-before-enqueue protocol: an eviction batch larger than the
// SPSC buffer must flow through because thread 2 drains concurrently.
// With the announcement after the enqueue loop this livelocks.
func TestParallelBatchLargerThanQueue(t *testing.T) {
	old := parallelQueueCap
	parallelQueueCap = 64 // far smaller than any real batch
	defer func() { parallelQueueCap = old }()

	cfg := testConfig()
	cfg.CacheTau = 1
	cfg.CacheBuckets = 8 // tiny cache: almost everything evicts
	m := MustNew(KindParallel, cfg)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5; i++ {
		origin := geom.V(float64(i)*0.3, 0, 1)
		m.InsertPointCloud(origin, synthScan(rng, origin, 200))
	}
	m.Finalize()
	tm := m.Timings()
	if tm.VoxelsToOctree == 0 {
		t.Fatal("no voxels reached the octree")
	}
	// Cross-check against the serial pipeline for identical final maps.
	cfgRef := cfg
	ref := MustNew(KindSerial, cfgRef)
	rng = rand.New(rand.NewSource(2))
	for i := 0; i < 5; i++ {
		origin := geom.V(float64(i)*0.3, 0, 1)
		ref.InsertPointCloud(origin, synthScan(rng, origin, 200))
	}
	ref.Finalize()
	if !m.Tree().Equal(ref.Tree()) {
		t.Fatal("parallel pipeline with tiny queue diverged from serial")
	}
}

// TestParallelManySmallBatches stresses the ack/pending protocol.
func TestParallelManySmallBatches(t *testing.T) {
	cfg := testConfig()
	m := MustNew(KindParallel, cfg)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		origin := geom.V(float64(i%10)*0.2, 0, 1)
		m.InsertPointCloud(origin, synthScan(rng, origin, 10))
		if i%7 == 0 {
			// Interleave queries to force quiesce cycles.
			m.Occupied(geom.V(1, 0, 1))
		}
	}
	m.Finalize()
	if got := m.Timings().Batches; got != 200 {
		t.Errorf("Batches = %d, want 200", got)
	}
}

// TestParallelQueryAfterFinalize ensures the map stays queryable once the
// background worker has exited.
func TestParallelQueryAfterFinalize(t *testing.T) {
	m := MustNew(KindParallel, testConfig())
	target := geom.V(2, 0, 1)
	m.InsertPointCloud(geom.V(0, 0, 1), []geom.Vec3{target})
	m.Finalize()
	if !m.Occupied(target) {
		t.Error("occupied voxel lost after finalize")
	}
	if _, known := m.Occupancy(geom.V(-3, -3, -3)); known {
		t.Error("unknown voxel reported known after finalize")
	}
}
