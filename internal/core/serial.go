package core

import (
	"time"

	"octocache/internal/cache"
	"octocache/internal/geom"
	"octocache/internal/octree"
	"octocache/internal/raytrace"
)

// serialMapper is the strawman serial OctoCache (paper Figure 11): all
// voxel observations land in the flat cache first, so queries can be
// served right after the fast cache insertion; the slow octree update
// only processes the cells evicted past the τ bound, in the bucket-sweep
// (near-Morton) order.
type serialMapper struct {
	cfg      Config
	tree     *octree.Tree
	cache    *cache.Cache
	tracer   *raytrace.Tracer
	evictBuf []cache.Cell
	timings  Timings
	done     bool
}

func newSerial(cfg Config) *serialMapper {
	return &serialMapper{
		cfg:   cfg,
		tree:  cfg.newTree(),
		cache: cache.New(cfg.cacheConfig()),
		tracer: raytrace.NewTracer(raytrace.Config{
			Resolution: cfg.Octree.Resolution,
			Depth:      cfg.Octree.Depth,
			MaxRange:   cfg.MaxRange,
		}),
	}
}

func (m *serialMapper) Name() string {
	if m.cfg.RT {
		return "octocache-serial-rt"
	}
	return "octocache-serial"
}

func (m *serialMapper) InsertPointCloud(origin geom.Vec3, points []geom.Vec3) {
	if m.done {
		panic("core: InsertPointCloud after Finalize")
	}
	start := time.Now()

	t0 := time.Now()
	var batch []raytrace.Voxel
	if m.cfg.RT {
		batch = m.tracer.TraceRT(origin, points)
	} else {
		batch = m.tracer.Trace(origin, points)
	}
	m.timings.RayTracing += time.Since(t0)

	m.ApplyTraced(batch)

	m.timings.Batches++
	m.timings.Critical += time.Since(start)
}

// ApplyTraced integrates a pre-traced observation batch: cache insertion
// (the only work queries must wait for), then τ-bounded eviction into the
// octree. It is InsertPointCloud minus the ray-tracing stage, split out
// so a sharded router can trace a scan once and apply each shard's slice
// of the traced cells independently. It does not count a batch; callers
// driving ApplyTraced directly account for batches themselves.
func (m *serialMapper) ApplyTraced(batch []raytrace.Voxel) {
	if m.done {
		panic("core: ApplyTraced after Finalize")
	}
	t0 := time.Now()
	lookup := func(k octree.Key) (float32, bool) { return m.tree.Search(k) }
	for _, v := range batch {
		m.cache.Insert(v.Key, v.Occupied, lookup)
	}
	m.timings.CacheInsert += time.Since(t0)

	// Queries would be served here, before the octree sees anything.

	t0 = time.Now()
	m.evictBuf = m.cache.Evict(m.evictBuf[:0])
	m.timings.CacheEvict += time.Since(t0)

	t0 = time.Now()
	for _, cell := range m.evictBuf {
		m.tree.SetNodeValue(cell.Key, cell.LogOdds)
	}
	m.timings.OctreeUpdate += time.Since(t0)

	m.timings.VoxelsTraced += int64(len(batch))
	m.timings.VoxelsToOctree += int64(len(m.evictBuf))
}

// Occupancy checks the cache first; on a miss the backend octree answers
// — the paper's two-level query path.
func (m *serialMapper) Occupancy(p geom.Vec3) (float32, bool) {
	k, ok := m.tree.CoordToKey(p)
	if !ok {
		return 0, false
	}
	return m.OccupancyKey(k)
}

// OccupancyKey is the key-space variant of Occupancy.
func (m *serialMapper) OccupancyKey(k octree.Key) (float32, bool) {
	if l, hit := m.cache.Query(k); hit {
		return l, true
	}
	return m.tree.Search(k)
}

func (m *serialMapper) Occupied(p geom.Vec3) bool {
	l, known := m.Occupancy(p)
	return known && l >= m.cfg.Octree.OccupancyThreshold
}

func (m *serialMapper) OccupiedKey(k octree.Key) bool {
	l, known := m.OccupancyKey(k)
	return known && l >= m.cfg.Octree.OccupancyThreshold
}

// Finalize writes every remaining cache cell into the octree so the tree
// alone holds the complete map.
func (m *serialMapper) Finalize() {
	if m.done {
		return
	}
	m.done = true
	t0 := time.Now()
	flushed := m.cache.Flush(nil)
	m.timings.CacheEvict += time.Since(t0)
	t0 = time.Now()
	for _, cell := range flushed {
		m.tree.SetNodeValue(cell.Key, cell.LogOdds)
	}
	m.timings.OctreeUpdate += time.Since(t0)
	m.timings.VoxelsToOctree += int64(len(flushed))
}

func (m *serialMapper) Resolution() float64     { return m.cfg.Octree.Resolution }
func (m *serialMapper) Tree() *octree.Tree      { return m.tree }
func (m *serialMapper) CacheLen() int           { return m.cache.Len() }
func (m *serialMapper) Timings() Timings        { return m.timings }
func (m *serialMapper) CacheStats() cache.Stats { return m.cache.Stats() }
