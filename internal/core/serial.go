package core

// newSerial composes the strawman serial OctoCache (paper Figure 11):
// all voxel observations land in the flat cache first, so queries can be
// served right after the fast cache insertion; the slow octree update
// only processes the cells evicted past the τ bound, in the bucket-sweep
// (near-Morton) order — and runs inline, on the caller's goroutine.
func newSerial(cfg Config) (*engine, error) {
	return newEngine(cfg, "octocache-serial", false, false)
}
