package core

import (
	"io"

	"octocache/internal/geom"
	"octocache/internal/octree"
	"octocache/internal/voxel"
)

// Snapshot is a backend-neutral copy of a map's contents: an immutable,
// canonically pruned occupancy tree built by replaying a leaf walk. It
// replaces the old raw-octree escape hatch as the one way map contents
// leave a pipeline — for serialization, for merging shards, for
// read-only consumers (it satisfies viz.Querier), and for loading into a
// fresh map of either backend.
//
// Canonical means: the live octree keeps itself fully pruned on every
// update path, so rebuilding from any content-equal leaf stream — an
// octree walk, a grid walk, the concatenation of disjoint shard walks —
// converges to the identical structure, and WriteTo emits identical
// bytes. That is the property the cross-backend consistency suite pins:
// .bt files round-trip between backends and shard counts.
type Snapshot struct {
	tree *octree.Tree
}

// NewSnapshot creates an empty snapshot with the given occupancy model.
// Populate it with Add.
func NewSnapshot(p voxel.Params) *Snapshot {
	return &Snapshot{tree: octree.New(p)}
}

// ReadSnapshot deserializes a snapshot written by WriteTo.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var t octree.Tree
	if _, err := t.ReadFrom(r); err != nil {
		return nil, err
	}
	return &Snapshot{tree: &t}, nil
}

// ReadSnapshotBT parses OctoMap's .bt binary wire format into a
// snapshot: occupied leaves at the clamp maximum, free leaves at the
// clamp minimum, with the default sensor model at the file's resolution.
func ReadSnapshotBT(r io.Reader) (*Snapshot, error) {
	t := octree.New(voxel.DefaultParams(0.1))
	if err := t.ReadBT(r); err != nil {
		return nil, err
	}
	return &Snapshot{tree: t}, nil
}

// WriteBT serializes the snapshot's maximum-likelihood binarization in
// OctoMap's .bt wire format, readable by the reference toolchain.
func (s *Snapshot) WriteBT(w io.Writer) error { return s.tree.WriteBT(w) }

// Add replays one leaf into the snapshot. Builders call it once per leaf
// of a backend walk; disjoint regions (shards) may be added in any
// order.
func (s *Snapshot) Add(l voxel.Leaf) {
	s.tree.SetLeafAt(l.Key, l.Depth, l.LogOdds)
}

// Walk visits every leaf in ascending Morton order.
func (s *Snapshot) Walk(fn func(voxel.Leaf) bool) { s.tree.Walk(fn) }

// WriteTo serializes the snapshot in the .bt format. It implements
// io.WriterTo; output is deterministic for content-equal snapshots.
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) { return s.tree.WriteTo(w) }

// Params returns the snapshot's occupancy model.
func (s *Snapshot) Params() voxel.Params { return s.tree.Params() }

// NumNodes returns the canonical tree's node count.
func (s *Snapshot) NumNodes() int { return s.tree.NumNodes() }

// NumLeaves counts the snapshot's leaves (voxels plus aggregates).
func (s *Snapshot) NumLeaves() int { return s.tree.NumLeaves() }

// Occupancy returns the accumulated log-odds of the voxel containing p;
// known is false for never-observed voxels.
func (s *Snapshot) Occupancy(p geom.Vec3) (logOdds float32, known bool) {
	return s.tree.OccupancyAt(p)
}

// Occupied reports whether the voxel containing p is known-occupied.
func (s *Snapshot) Occupied(p geom.Vec3) bool { return s.tree.OccupiedAt(p) }

// OccupancyKey is the key-space variant of Occupancy.
func (s *Snapshot) OccupancyKey(k voxel.Key) (logOdds float32, known bool) {
	return s.tree.Search(k)
}

// OccupiedKey is the key-space variant of Occupied.
func (s *Snapshot) OccupiedKey(k voxel.Key) bool { return s.tree.Occupied(k) }

// AnyOccupiedIn reports whether any known-occupied leaf intersects box.
func (s *Snapshot) AnyOccupiedIn(box geom.AABB) bool { return s.tree.AnyOccupiedIn(box) }

// Resolution returns the voxel edge length in meters.
func (s *Snapshot) Resolution() float64 { return s.tree.Params().Resolution }

// MemoryBytes estimates the snapshot's heap footprint.
func (s *Snapshot) MemoryBytes() int64 { return s.tree.MemoryBytes() }

// BBox returns the bounding box of all known leaves; ok is false for an
// empty snapshot.
func (s *Snapshot) BBox() (box geom.AABB, ok bool) { return s.tree.BBox() }

// OccupiedLeaves collects the known-occupied leaves.
func (s *Snapshot) OccupiedLeaves() []voxel.Leaf { return s.tree.OccupiedLeaves() }

// Equal reports whether two snapshots hold identical parameters and
// content.
func (s *Snapshot) Equal(o *Snapshot) bool { return s.tree.Equal(o.tree) }
