package core

import "time"

// Timings is the per-stage runtime decomposition the paper reports in
// Figures 6 and 22 and Table 3. All durations are cumulative across
// batches. For the parallel pipeline, OctreeUpdate and Dequeue accrue on
// thread 2 and the remaining stages on thread 1; Wait is the thread-1
// stall spent waiting for thread 2 to finish the previous batch's octree
// update (the "gap" of Figure 13b).
type Timings struct {
	RayTracing   time.Duration
	CacheInsert  time.Duration
	CacheEvict   time.Duration
	OctreeUpdate time.Duration
	Enqueue      time.Duration
	Dequeue      time.Duration
	Wait         time.Duration
	// Critical is the cumulative wall-clock time of Insert calls: the
	// critical-path latency queries experience.
	Critical time.Duration

	// Batches counts processed point clouds; VoxelsTraced counts voxel
	// observations out of ray tracing; VoxelsToOctree counts the voxel
	// writes the octree actually received (after cache absorption).
	Batches        int64
	VoxelsTraced   int64
	VoxelsToOctree int64
}

// Total returns the sum of all stage busy times (not wall clock).
func (t Timings) Total() time.Duration {
	return t.RayTracing + t.CacheInsert + t.CacheEvict + t.OctreeUpdate + t.Enqueue + t.Dequeue
}

// Counters is the monotone work-count subset of Timings: pure event
// counts, no measured durations. Cycle-to-cycle deltas of Counters are
// deterministic for a deterministic insert stream, which is what the
// virtual clock's latency model (internal/clock) differences — any
// duration field would smuggle wall-clock sensitivity back in.
type Counters struct {
	Batches        int64
	VoxelsTraced   int64
	VoxelsToOctree int64
}

// Counters extracts the work counts from a full decomposition.
func (t Timings) Counters() Counters {
	return Counters{
		Batches:        t.Batches,
		VoxelsTraced:   t.VoxelsTraced,
		VoxelsToOctree: t.VoxelsToOctree,
	}
}

// Add returns the field-wise sum of two timing decompositions.
func (t Timings) Add(o Timings) Timings {
	return Timings{
		RayTracing:     t.RayTracing + o.RayTracing,
		CacheInsert:    t.CacheInsert + o.CacheInsert,
		CacheEvict:     t.CacheEvict + o.CacheEvict,
		OctreeUpdate:   t.OctreeUpdate + o.OctreeUpdate,
		Enqueue:        t.Enqueue + o.Enqueue,
		Dequeue:        t.Dequeue + o.Dequeue,
		Wait:           t.Wait + o.Wait,
		Critical:       t.Critical + o.Critical,
		Batches:        t.Batches + o.Batches,
		VoxelsTraced:   t.VoxelsTraced + o.VoxelsTraced,
		VoxelsToOctree: t.VoxelsToOctree + o.VoxelsToOctree,
	}
}
