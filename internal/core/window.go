package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"octocache/internal/cache"
	"octocache/internal/durable"
	"octocache/internal/geom"
	"octocache/internal/raytrace"
	"octocache/internal/voxel"
)

// ErrPager marks window paging failures: spill or reload I/O errors and
// CRC mismatches surface on Insert/Recenter/WriteTo as wrapped errors
// satisfying errors.Is(err, ErrPager). Once set the error is sticky —
// the on-disk working set may be incomplete, so the map stops accepting
// observations rather than silently dropping spilled regions.
var ErrPager = errors.New("octocache: window pager failure")

// Window is the bounded-memory policy: an ego-centric window of resident
// tiles that recenters with the sensor and spills everything else to
// disk. The zero value disables windowing.
//
// A tile is an aligned cube of the subdivision hierarchy at TileDepth —
// 2^(depth−TileDepth) voxels per axis (see voxel.TileOf). The window
// keeps every tile within Chebyshev distance Radius of the tile holding
// the last insert origin; tiles drifting out of the window are evicted
// through the pager inside the same quiesce protocol compaction uses,
// and spilled tiles page back in transparently when an insert, query, or
// ray touches them.
type Window struct {
	// Radius is the window half-width in tiles: tiles with Chebyshev
	// distance ≤ Radius from the center tile stay resident — a cube of
	// (2·Radius+1)³ tiles. Radius ≥ 1 enables windowing.
	Radius int
	// TileDepth sets tile granularity: the subdivision depth whose cubes
	// are the spill unit. Must lie in [1, depth−3] so a tile spans at
	// least one grid brick (8³ voxels); 0 selects depth−6 (64 voxels per
	// axis), clamped into range.
	TileDepth int
	// Dir is the directory holding the map's spill log. Required when
	// windowing is enabled unless a Durable policy supplies the directory
	// (spill frames and the WAL share one log); created if absent.
	Dir string
	// MaxResidentTiles additionally caps resident tiles regardless of
	// window membership: when exceeded, least-recently-touched in-window
	// tiles (never the center tile) spill too. 0 means no cap.
	MaxResidentTiles int
	// MaxEvictPerCycle bounds tiles evicted per recenter evaluation, so
	// a long drift spreads its spill cost over several batches instead
	// of one long pause. 0 selects the default (8).
	MaxEvictPerCycle int
}

// Enabled reports whether the policy actually windows the map.
func (w Window) Enabled() bool { return w.Radius > 0 }

// Validate checks the policy against a map's key-space depth.
func (w Window) Validate(depth int) error {
	if w.Radius < 0 {
		return fmt.Errorf("core: Window.Radius must be >= 0 (0 disables windowing), got %d", w.Radius)
	}
	if !w.Enabled() {
		return nil
	}
	if w.Dir == "" {
		return fmt.Errorf("core: Window.Dir is required when windowing is enabled")
	}
	if depth < 4 {
		return fmt.Errorf("core: windowing needs map depth >= 4, got %d", depth)
	}
	if w.TileDepth != 0 && (w.TileDepth < 1 || w.TileDepth > depth-3) {
		return fmt.Errorf("core: Window.TileDepth must be in [1, %d] (tiles span at least one 8³ brick), got %d",
			depth-3, w.TileDepth)
	}
	if w.MaxResidentTiles < 0 {
		return fmt.Errorf("core: Window.MaxResidentTiles must be >= 0, got %d", w.MaxResidentTiles)
	}
	if w.MaxEvictPerCycle < 0 {
		return fmt.Errorf("core: Window.MaxEvictPerCycle must be >= 0, got %d", w.MaxEvictPerCycle)
	}
	return nil
}

// withDefaults resolves the zero-value knobs for a map of this depth.
func (w Window) withDefaults(depth int) Window {
	if w.TileDepth == 0 {
		w.TileDepth = depth - 6
		if w.TileDepth < 1 {
			w.TileDepth = 1
		}
	}
	if w.TileDepth > depth-3 {
		w.TileDepth = depth - 3
	}
	if w.MaxEvictPerCycle == 0 {
		w.MaxEvictPerCycle = 8
	}
	return w
}

// WindowStats reports a windowed map's paging activity. The sharded
// service aggregates per-shard stats with Add.
type WindowStats struct {
	// Enabled mirrors the policy: false means the map is unwindowed and
	// every other field is zero.
	Enabled bool `json:"enabled"`
	// ResidentTiles and SpilledTiles split the map's observed tiles by
	// where they live right now.
	ResidentTiles int `json:"resident_tiles"`
	SpilledTiles  int `json:"spilled_tiles"`
	// Evictions and Reloads count tile spills and transparent page-ins
	// over the map's lifetime.
	Evictions int64 `json:"evictions"`
	Reloads   int64 `json:"reloads"`
	// BytesOnDisk is the tile file's current size.
	BytesOnDisk int64 `json:"bytes_on_disk"`
	// MaxPause is the longest single eviction stop-the-world window —
	// the quiesce-protocol pause bound MaxEvictPerCycle trades against.
	// It marshals as nanoseconds.
	MaxPause time.Duration `json:"max_pause_ns"`
}

// Add returns the field-wise aggregate of two snapshots (sums, with
// MaxPause as the maximum) — per-shard stats fold into a map-level view.
func (s WindowStats) Add(o WindowStats) WindowStats {
	out := WindowStats{
		Enabled:       s.Enabled || o.Enabled,
		ResidentTiles: s.ResidentTiles + o.ResidentTiles,
		SpilledTiles:  s.SpilledTiles + o.SpilledTiles,
		Evictions:     s.Evictions + o.Evictions,
		Reloads:       s.Reloads + o.Reloads,
		BytesOnDisk:   s.BytesOnDisk + o.BytesOnDisk,
		MaxPause:      s.MaxPause,
	}
	if o.MaxPause > out.MaxPause {
		out.MaxPause = o.MaxPause
	}
	return out
}

// Windower is the optional capability of pipelines with a window armed.
// The shard service and the public Map assert it once and delegate.
type Windower interface {
	// Recenter moves the window to the tile containing origin and evicts
	// out-of-window tiles — the explicit form of the recentering every
	// Insert performs. A mutator call. Returns ErrClosed after Close and
	// any sticky pager error.
	Recenter(origin geom.Vec3) error
	// WindowStats snapshots paging activity.
	WindowStats() WindowStats
	// WindowErr returns the sticky pager error, if any.
	WindowErr() error
}

// Evictor is the optional Backend capability windowed maps require: the
// store can detach one tile — the aligned cube at tileDepth containing
// corner — as a canonical leaf run (exactly its Walk emission for that
// cube, ascending Morton) while deleting it from the resident structure.
// Reinstalling the run through SetLeafAt must restore identical content;
// the octree re-prunes to its canonical structure, the grid re-hashes
// its bricks.
type Evictor interface {
	EvictTile(corner voxel.Key, tileDepth int, dst []voxel.Leaf) []voxel.Leaf
}

// windowState is an engine's windowing machinery. All fields are guarded
// by the engine's mutator serialization plus treeRW (the spilled set and
// LRU mutate only under treeRW.Lock, and query paths read them under
// RLock), except the sticky error, which query walks may set while
// holding only the read lock and therefore has its own mutex.
type windowState struct {
	pol   Window
	depth int
	pages *durable.Store
	lru   *durable.LRU
	// spilled is the authoritative set of on-disk tiles; spilledN mirrors
	// its size atomically so hot paths can skip all window work with one
	// load when nothing is spilled.
	spilled  map[voxel.Key]struct{}
	spilledN atomic.Int64
	center   voxel.Key
	centered bool

	evictions int64
	reloads   int64
	maxPause  time.Duration

	hasErr atomic.Bool
	errMu  sync.Mutex
	err    error

	// Mutator-side scratch, reused across cycles so steady-state inserts
	// stay allocation-free.
	leafBuf []voxel.Leaf
	cellBuf []cache.Cell
	victims []voxel.Key
}

// newWindowState attaches windowing to the engine's durable store — the
// engine opens one store per pipeline (tagged within the directory so
// sharded maps keep one log per shard) and the window spills tile frames
// into it, alongside any WAL frames a Durable policy appends.
func newWindowState(pol Window, depth int, store *durable.Store) *windowState {
	return &windowState{
		pol:     pol.withDefaults(depth),
		depth:   depth,
		pages:   store,
		lru:     durable.NewLRU(),
		spilled: make(map[voxel.Key]struct{}),
	}
}

// setErr records the first pager failure; later ones are dropped.
func (w *windowState) setErr(err error) {
	w.errMu.Lock()
	if w.err == nil {
		w.err = fmt.Errorf("%w: %v", ErrPager, err)
		w.hasErr.Store(true)
	}
	w.errMu.Unlock()
}

// loadErr returns the sticky error. The atomic guard keeps the healthy
// fast path lock-free.
func (w *windowState) loadErr() error {
	if !w.hasErr.Load() {
		return nil
	}
	w.errMu.Lock()
	defer w.errMu.Unlock()
	return w.err
}

func (w *windowState) tileOf(k voxel.Key) voxel.Key {
	return voxel.TileOf(k, w.pol.TileDepth, w.depth)
}

// ensureResident makes every tile the traced batch touches resident
// (reloading spilled ones) and marks them recently used. It must run
// before the batch reaches the cache or store: cache admission seeds
// accumulation from the store on a miss, so touching a spilled tile
// would silently restart its voxels from unknown. Called from the
// mutator role; when nothing is spilled it is one atomic load plus an
// LRU touch per tile run.
func (e *engine) ensureResident(batch []raytrace.Voxel) error {
	w := e.win
	spilled := w.spilledN.Load() > 0
	var last voxel.Key
	have := false
	for _, v := range batch {
		t := w.tileOf(v.Key)
		if have && t == last {
			continue // traced voxels arrive in runs within one tile
		}
		last, have = t, true
		if spilled {
			if _, ok := w.spilled[t]; ok {
				if err := e.reloadTile(t); err != nil {
					return err
				}
				spilled = w.spilledN.Load() > 0
				continue
			}
		}
		w.lru.Touch(t)
	}
	return nil
}

// reloadTile pages one spilled tile back in under the tree write lock.
// Mutator role only; the applier must already be quiescent or is
// quiesced here.
func (e *engine) reloadTile(t voxel.Key) error {
	e.app.quiesce()
	e.treeRW.Lock()
	err := e.reloadTileLocked(t)
	e.treeRW.Unlock()
	return err
}

// reloadTileLocked is reloadTile for callers already holding treeRW.
func (e *engine) reloadTileLocked(t voxel.Key) error {
	w := e.win
	if _, ok := w.spilled[t]; !ok {
		return nil // lost a race with another reloader
	}
	var err error
	w.leafBuf, err = w.pages.Load(t, w.pol.TileDepth, w.leafBuf[:0])
	if err != nil {
		w.setErr(err)
		return w.loadErr()
	}
	for _, l := range w.leafBuf {
		e.store.SetLeafAt(l.Key, l.Depth, l.LogOdds)
	}
	w.pages.Release(t, w.pol.TileDepth)
	delete(w.spilled, t)
	w.spilledN.Add(-1)
	w.reloads++
	w.lru.Touch(t)
	return nil
}

// maybeRecenter moves the window to the tile containing origin and
// evicts whatever fell outside. Runs at the tail of every Insert, in the
// mutator role with the applier quiescent.
func (e *engine) maybeRecenter(origin geom.Vec3) error {
	w := e.win
	k, ok := voxel.CoordToKey(origin, e.cfg.Octree.Resolution, e.cfg.Octree.Depth)
	if ok {
		t := w.tileOf(k)
		if !w.centered || t != w.center {
			w.center = t
			w.centered = true
		}
	}
	return e.evictOutOfWindow()
}

// evictOutOfWindow spills tiles outside the window (and, under a
// MaxResidentTiles cap, the least-recently-touched in-window tiles),
// oldest first, bounded by MaxEvictPerCycle per call. The fast path —
// every tile in-window and under the cap — is a pure LRU scan.
func (e *engine) evictOutOfWindow() error {
	w := e.win
	if !w.centered {
		return nil
	}
	w.victims = w.victims[:0]
	over := 0
	if w.pol.MaxResidentTiles > 0 {
		over = w.lru.Len() - w.pol.MaxResidentTiles
	}
	for it := w.lru.IterOldest(); ; {
		t, ok := it.Next()
		if !ok || len(w.victims) >= w.pol.MaxEvictPerCycle {
			break
		}
		out := voxel.TileDist(t, w.center, w.pol.TileDepth, w.depth) > w.pol.Radius
		if !out && over > len(w.victims) && t != w.center {
			out = true // over the resident cap: spill oldest in-window tiles too
		}
		if out {
			w.victims = append(w.victims, t)
		}
	}
	if len(w.victims) == 0 {
		return nil
	}
	return e.evictTiles(w.victims)
}

// evictTiles spills the given resident tiles inside one quiesce window:
// the applier drains, then under the tree write lock each tile's cache
// cells are folded into the store, its subtree detaches as a canonical
// leaf run, and the run is appended to the tile file. The whole stop is
// timed into MaxPause — the pause bound MaxEvictPerCycle trades against.
// A spill failure reinstalls the detached run (no data loss) and sets
// the sticky error.
func (e *engine) evictTiles(tiles []voxel.Key) error {
	w := e.win
	e.app.quiesce()
	t0 := time.Now()
	e.treeRW.Lock()
	var err error
	for _, t := range tiles {
		tile := t
		if e.cache != nil {
			// A spilled tile must leave no cache cells behind: cells carry
			// accumulated values, so fold them into the store first and
			// let the detached run carry them to disk.
			w.cellBuf = e.cache.Drain(w.cellBuf[:0], func(k voxel.Key) bool {
				return w.tileOf(k) == tile
			})
			for _, c := range w.cellBuf {
				e.store.SetCell(c.Key, c.LogOdds)
			}
		}
		w.leafBuf = e.evictor.EvictTile(tile, w.pol.TileDepth, w.leafBuf[:0])
		w.lru.Remove(tile)
		if len(w.leafBuf) == 0 {
			continue // tile held nothing; forget it instead of spilling
		}
		if serr := w.pages.Spill(tile, w.pol.TileDepth, w.leafBuf); serr != nil {
			// Put the content back so the resident map stays complete.
			for _, l := range w.leafBuf {
				e.store.SetLeafAt(l.Key, l.Depth, l.LogOdds)
			}
			w.lru.Touch(tile)
			w.setErr(serr)
			err = w.loadErr()
			break
		}
		w.spilled[tile] = struct{}{}
		w.spilledN.Add(1)
		w.evictions++
	}
	e.treeRW.Unlock()
	if pause := time.Since(t0); pause > w.maxPause {
		w.maxPause = pause
	}
	return err
}

// pageInForQuery reloads the tile containing k if it is spilled, for a
// query path that found the window armed. Queries run concurrently with
// each other, so the spilled check happens under the read lock and the
// reload re-checks under the write lock.
func (e *engine) pageInForQuery(k voxel.Key) error {
	w := e.win
	t := w.tileOf(k)
	e.treeRW.RLock()
	_, hit := w.spilled[t]
	e.treeRW.RUnlock()
	if !hit {
		return nil
	}
	return e.reloadTile(t)
}

// Recenter implements Windower: the explicit mutator-role recentering.
func (e *engine) Recenter(origin geom.Vec3) error {
	if e.closed {
		return ErrClosed
	}
	if e.win == nil {
		return nil
	}
	if err := e.win.loadErr(); err != nil {
		return err
	}
	e.app.quiesce()
	return e.maybeRecenter(origin)
}

// WindowStats implements Windower.
func (e *engine) WindowStats() WindowStats {
	if e.win == nil {
		return WindowStats{}
	}
	w := e.win
	e.app.quiesce()
	e.treeRW.RLock()
	s := WindowStats{
		Enabled:       true,
		ResidentTiles: w.lru.Len(),
		SpilledTiles:  len(w.spilled),
		Evictions:     w.evictions,
		Reloads:       w.reloads,
		BytesOnDisk:   w.pages.BytesOnDisk(),
		MaxPause:      w.maxPause,
	}
	e.treeRW.RUnlock()
	return s
}

// WindowErr implements Windower.
func (e *engine) WindowErr() error {
	if e.win == nil {
		return nil
	}
	return e.win.loadErr()
}
