package core

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"octocache/internal/geom"
)

// windowedConfig arms testConfig's 25.6 m cube with 0.8 m tiles.
func windowedConfig(t *testing.T, radius int) Config {
	t.Helper()
	cfg := testConfig()
	cfg.Window = Window{Radius: radius, TileDepth: 5, Dir: t.TempDir()}
	return cfg
}

// walkPath yields a deterministic diagonal traverse long enough to push
// early tiles far outside a small window.
func walkPath(n int) []geom.Vec3 {
	path := make([]geom.Vec3, 0, n)
	for i := 0; i < n; i++ {
		c := 2 + 18*float64(i)/float64(n-1)
		path = append(path, geom.V(c, c, c))
	}
	return path
}

func TestWindowValidate(t *testing.T) {
	depth := 8
	cases := []struct {
		name string
		w    Window
		ok   bool
	}{
		{"disabled", Window{}, true},
		{"negative radius", Window{Radius: -1}, false},
		{"good", Window{Radius: 2, TileDepth: 5, Dir: "x"}, true},
		{"default tile depth", Window{Radius: 1, Dir: "x"}, true},
		{"no dir", Window{Radius: 1}, false},
		{"tile too fine", Window{Radius: 1, TileDepth: 6, Dir: "x"}, false},
		{"tile depth negative", Window{Radius: 1, TileDepth: -1, Dir: "x"}, false},
		{"negative cap", Window{Radius: 1, TileDepth: 5, Dir: "x", MaxResidentTiles: -1}, false},
		{"negative cycle bound", Window{Radius: 1, TileDepth: 5, Dir: "x", MaxEvictPerCycle: -1}, false},
	}
	for _, c := range cases {
		if err := c.w.Validate(depth); (err == nil) != c.ok {
			t.Errorf("%s: Validate = %v, want ok=%v", c.name, err, c.ok)
		}
	}

	// The Table 1 baselines do not window.
	cfg := windowedConfig(t, 2)
	for _, k := range []Kind{KindVoxelCache, KindNaive} {
		if _, err := New(k, cfg); err == nil {
			t.Errorf("%v accepted a windowed config", k)
		}
	}
}

// TestWindowedMatchesUnwindowed is the transparency gate at the engine
// level: a small-window map driven across the whole key space must spill
// aggressively, yet answer every probe — including revisits to long-
// evicted regions — exactly like an unbounded reference, and serialize
// to byte-identical .bt output.
func TestWindowedMatchesUnwindowed(t *testing.T) {
	for _, backend := range []BackendKind{BackendOctree, BackendGrid} {
		for _, kind := range allKinds() {
			t.Run(backend.String()+"/"+kind.String(), func(t *testing.T) {
				cfg := windowedConfig(t, 2)
				cfg.Backend = backend
				ref := MustNew(kind, testConfigBackend(backend))
				win := MustNew(kind, cfg)
				defer ref.Close()
				defer win.Close()

				rng := rand.New(rand.NewSource(41))
				probeRNG := rand.New(rand.NewSource(42))
				var visited []geom.Vec3
				for _, origin := range walkPath(10) {
					scan := synthScan(rng, origin, 150)
					if err := ref.Insert(origin, scan); err != nil {
						t.Fatal(err)
					}
					if err := win.Insert(origin, scan); err != nil {
						t.Fatal(err)
					}
					visited = append(visited, scan[:5]...)
					// Probe fresh points, old (likely spilled) points, and
					// random space after every batch.
					probes := append([]geom.Vec3{}, scan[:5]...)
					probes = append(probes, visited[:min(len(visited), 10)]...)
					for i := 0; i < 10; i++ {
						probes = append(probes, geom.V(probeRNG.Float64()*25, probeRNG.Float64()*25, probeRNG.Float64()*25))
					}
					for _, p := range probes {
						rl, rk := ref.Occupancy(p)
						wl, wk := win.Occupancy(p)
						if rl != wl || rk != wk {
							t.Fatalf("Occupancy(%v) diverged: ref (%v,%v) windowed (%v,%v)", p, rl, rk, wl, wk)
						}
					}
					rh, rok := ref.CastRay(origin, geom.V(1, 0, 0), 10, true)
					wh, wok := win.CastRay(origin, geom.V(1, 0, 0), 10, true)
					if rh != wh || rok != wok {
						t.Fatalf("CastRay diverged: ref (%v,%v) windowed (%v,%v)", rh, rok, wh, wok)
					}
				}

				ws := win.(Windower).WindowStats()
				if !ws.Enabled || ws.Evictions == 0 || ws.SpilledTiles == 0 {
					t.Fatalf("window never paged: %+v", ws)
				}
				if rs := ref.(Windower).WindowStats(); rs.Enabled {
					t.Fatal("unwindowed map reports an enabled window")
				}

				var rb, wb bytes.Buffer
				if _, err := ref.WriteTo(&rb); err != nil {
					t.Fatal(err)
				}
				if _, err := win.WriteTo(&wb); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(rb.Bytes(), wb.Bytes()) {
					t.Fatal("windowed WriteTo bytes differ from unwindowed")
				}

				// Close flushes the cache but leaves the pager open: the
				// spilled portion must still fold into post-Close output.
				ref.Close()
				win.Close()
				rb.Reset()
				wb.Reset()
				if _, err := ref.WriteTo(&rb); err != nil {
					t.Fatal(err)
				}
				if _, err := win.WriteTo(&wb); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(rb.Bytes(), wb.Bytes()) {
					t.Fatal("post-Close windowed WriteTo bytes differ")
				}
			})
		}
	}
}

func testConfigBackend(b BackendKind) Config {
	cfg := testConfig()
	cfg.Backend = b
	return cfg
}

// TestWindowBoundsMemory pins the point of the feature: the same
// traverse holds a windowed map's resident footprint strictly below the
// unbounded map's.
func TestWindowBoundsMemory(t *testing.T) {
	cfg := windowedConfig(t, 1)
	ref := MustNew(KindSerial, testConfig())
	win := MustNew(KindSerial, cfg)
	defer ref.Close()
	defer win.Close()

	rng := rand.New(rand.NewSource(9))
	for _, origin := range walkPath(16) {
		scan := synthScan(rng, origin, 250)
		if err := ref.Insert(origin, scan); err != nil {
			t.Fatal(err)
		}
		if err := win.Insert(origin, scan); err != nil {
			t.Fatal(err)
		}
	}
	refMem, winMem := ref.MemoryBytes(), win.MemoryBytes()
	if winMem >= refMem {
		t.Fatalf("windowed resident memory %d not below unbounded %d", winMem, refMem)
	}
	ws := win.(Windower).WindowStats()
	if ws.SpilledTiles == 0 || ws.BytesOnDisk == 0 {
		t.Fatalf("bounded memory without spilling? %+v", ws)
	}
}

// TestRecenterExplicit drives the window by hand: recentering far away
// spills the mapped region, and queries transparently page it back.
func TestRecenterExplicit(t *testing.T) {
	cfg := windowedConfig(t, 1)
	m := MustNew(KindSerial, cfg)
	defer m.Close()
	w := m.(Windower)

	origin := geom.V(2, 2, 2)
	target := geom.V(4, 2, 2)
	if err := m.Insert(origin, []geom.Vec3{target}); err != nil {
		t.Fatal(err)
	}
	want, knownBefore := m.Occupancy(target)
	if !knownBefore {
		t.Fatal("endpoint unknown after insert")
	}

	// Drive the window to the far corner until the mapped tiles spill.
	for i := 0; i < 64; i++ {
		if err := w.Recenter(geom.V(23, 23, 23)); err != nil {
			t.Fatal(err)
		}
	}
	if ws := w.WindowStats(); ws.SpilledTiles == 0 {
		t.Fatalf("recenter spilled nothing: %+v", ws)
	}
	if got, known := m.Occupancy(target); !known || got != want {
		t.Fatalf("spilled region answered (%v,%v), want (%v,true)", got, known, want)
	}
	if ws := w.WindowStats(); ws.Reloads == 0 {
		t.Fatalf("query did not page the tile back: %+v", ws)
	}
	if err := w.WindowErr(); err != nil {
		t.Fatal(err)
	}
}

// TestMaxResidentTiles shows the cap evicting in-window tiles too.
func TestMaxResidentTiles(t *testing.T) {
	cfg := windowedConfig(t, 16) // window covers the whole cube
	cfg.Window.MaxResidentTiles = 4
	cfg.Window.MaxEvictPerCycle = 64
	m := MustNew(KindSerial, cfg)
	defer m.Close()
	w := m.(Windower)

	rng := rand.New(rand.NewSource(3))
	for _, origin := range walkPath(8) {
		if err := m.Insert(origin, synthScan(rng, origin, 200)); err != nil {
			t.Fatal(err)
		}
	}
	// Settle: each recenter evicts a bounded batch of LRU tiles.
	for i := 0; i < 32; i++ {
		if err := w.Recenter(geom.V(20, 20, 20)); err != nil {
			t.Fatal(err)
		}
	}
	if ws := w.WindowStats(); ws.ResidentTiles > cfg.Window.MaxResidentTiles {
		t.Fatalf("resident tiles %d exceed cap %d", ws.ResidentTiles, cfg.Window.MaxResidentTiles)
	}
}

// TestWindowPagerErrorSticky corrupts the tile file under a live map and
// checks the error contract: reads fall back to resident state, and the
// first mutator call after the failure surfaces a wrapped ErrPager that
// then sticks — distinct from ErrClosed.
func TestWindowPagerErrorSticky(t *testing.T) {
	cfg := windowedConfig(t, 1)
	m := MustNew(KindSerial, cfg)
	defer m.Close()
	w := m.(Windower)

	rng := rand.New(rand.NewSource(5))
	firstOrigin := walkPath(8)[0]
	firstScan := synthScan(rng, firstOrigin, 150)
	if err := m.Insert(firstOrigin, firstScan); err != nil {
		t.Fatal(err)
	}
	for _, origin := range walkPath(8)[1:] {
		if err := m.Insert(origin, synthScan(rng, origin, 150)); err != nil {
			t.Fatal(err)
		}
	}
	if ws := w.WindowStats(); ws.SpilledTiles == 0 {
		t.Fatalf("traverse spilled nothing: %+v", ws)
	}

	// Chop the tile file down to its magic: every frame becomes
	// unreadable, so the next page-in must fail.
	if err := os.Truncate(filepath.Join(cfg.Window.Dir, "map.log"), 8); err != nil {
		t.Fatal(err)
	}
	for _, p := range firstScan {
		m.Occupancy(p) // queries must not panic; they answer from resident state
	}
	err := w.WindowErr()
	if err == nil {
		t.Fatal("reload from a truncated file left no sticky error")
	}
	if !errors.Is(err, ErrPager) {
		t.Fatalf("sticky error %v does not wrap ErrPager", err)
	}
	if errors.Is(err, ErrClosed) {
		t.Fatal("pager error must not alias ErrClosed")
	}
	if ierr := m.Insert(firstOrigin, firstScan); !errors.Is(ierr, ErrPager) {
		t.Fatalf("Insert after pager failure = %v, want ErrPager", ierr)
	}
	if rerr := w.Recenter(firstOrigin); !errors.Is(rerr, ErrPager) {
		t.Fatalf("Recenter after pager failure = %v, want ErrPager", rerr)
	}
	var buf bytes.Buffer
	if _, werr := m.WriteTo(&buf); !errors.Is(werr, ErrPager) {
		t.Fatalf("WriteTo after pager failure = %v, want ErrPager", werr)
	}
	// Close still wins: the closed check precedes the sticky error.
	m.Close()
	if cerr := m.Insert(firstOrigin, firstScan); !errors.Is(cerr, ErrClosed) {
		t.Fatalf("Insert after Close = %v, want ErrClosed", cerr)
	}
}

func TestWindowStatsAdd(t *testing.T) {
	a := WindowStats{Enabled: true, ResidentTiles: 2, SpilledTiles: 3, Evictions: 4, Reloads: 5, BytesOnDisk: 6, MaxPause: 7}
	b := WindowStats{ResidentTiles: 10, SpilledTiles: 10, Evictions: 10, Reloads: 10, BytesOnDisk: 10, MaxPause: 2}
	got := a.Add(b)
	want := WindowStats{Enabled: true, ResidentTiles: 12, SpilledTiles: 13, Evictions: 14, Reloads: 15, BytesOnDisk: 16, MaxPause: 7}
	if got != want {
		t.Fatalf("Add = %+v, want %+v", got, want)
	}
}
