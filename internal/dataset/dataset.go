// Package dataset generates the scan sequences that stand in for the
// paper's three public 3D-scan datasets (FR-079 corridor, Freiburg
// campus, New College — Table 2) and computes the workload statistics
// the bottleneck analysis relies on: intra-batch duplication (§3.1) and
// inter-batch overlap (Figure 8).
//
// A dataset is a deterministic replay: a procedural world, a sensor
// model, and a trajectory of scan poses. The same seed always produces
// the same point-cloud stream, so experiments are reproducible. New
// College's 92,361 scans are scaled down by default (the Scale knob); the
// substitution is documented in EXPERIMENTS.md.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"octocache/internal/geom"
	"octocache/internal/raytrace"
	"octocache/internal/sensor"
	"octocache/internal/voxel"
	"octocache/internal/world"
)

// Scan is one sensor frame: the sensing origin and the returned points.
type Scan struct {
	Origin geom.Vec3
	Points []geom.Vec3
}

// Dataset is a replayable scan sequence over a known world.
type Dataset struct {
	Name   string
	World  *world.World
	Sensor sensor.Model
	Scans  []Scan
}

// Spec configures dataset generation.
type Spec struct {
	// Env selects the world; Seed makes both world and trajectory
	// deterministic.
	Env  world.Env
	Seed int64
	// NumScans is the number of sensor frames along the trajectory.
	NumScans int
	// Sensor is the range sensor model.
	Sensor sensor.Model
	// Waypoints override the default trajectory (start → goal with a
	// lateral sweep). Optional.
	Waypoints []geom.Vec3
	// YawSweep adds a sinusoidal yaw oscillation (radians amplitude) so
	// consecutive scans overlap but are not identical — the scanning
	// pattern of Figure 7.
	YawSweep float64
}

// Generate builds the dataset described by spec.
func Generate(spec Spec) *Dataset {
	w := world.Build(spec.Env, spec.Seed)
	wps := spec.Waypoints
	if len(wps) == 0 {
		wps = defaultWaypoints(w)
	}
	if spec.NumScans < 1 {
		spec.NumScans = 1
	}
	rng := rand.New(rand.NewSource(spec.Seed + 1))
	d := &Dataset{
		Name:   fmt.Sprintf("%s-%d", w.Name, spec.NumScans),
		World:  w,
		Sensor: spec.Sensor,
		Scans:  make([]Scan, 0, spec.NumScans),
	}
	total := pathLength(wps)
	for i := 0; i < spec.NumScans; i++ {
		frac := 0.0
		if spec.NumScans > 1 {
			frac = float64(i) / float64(spec.NumScans-1)
		}
		pos, heading := pointAlong(wps, frac*total)
		yaw := heading
		if spec.YawSweep > 0 {
			yaw += spec.YawSweep * math.Sin(float64(i)*0.7)
		}
		pose := geom.Pose{Position: pos, Yaw: yaw, Pitch: -0.1}
		pts := spec.Sensor.Scan(w, pose, rng)
		d.Scans = append(d.Scans, Scan{Origin: pos, Points: pts})
	}
	return d
}

// defaultWaypoints runs start → goal with a mild lateral zig-zag, giving
// the continuous-scanning overlap pattern of Figure 7. The lateral
// amplitude is shrunk until the offset waypoints are inside the world
// bounds and collision-free, so tight environments (the FR-079 corridor)
// keep the trajectory between their walls.
func defaultWaypoints(w *world.World) []geom.Vec3 {
	s, g := w.Start, w.Goal
	d := g.Sub(s)
	latDir := geom.V(-d.Y, d.X, 0).Normalize()
	amp := math.Min(3, d.Norm()/8)
	margin := geom.V(0.2, 0.2, 0.2)
	ok := func(p geom.Vec3) bool {
		return w.Bounds.Contains(p) && !w.Collides(geom.BoxAt(p, margin))
	}
	for i := 0; i < 6 && amp > 0.05; i++ {
		a := s.Lerp(g, 0.25).Add(latDir.Scale(amp))
		b := s.Lerp(g, 0.75).Sub(latDir.Scale(amp))
		if ok(a) && ok(b) {
			break
		}
		amp /= 2
	}
	lat := latDir.Scale(amp)
	return []geom.Vec3{
		s,
		s.Lerp(g, 0.25).Add(lat),
		s.Lerp(g, 0.5),
		s.Lerp(g, 0.75).Sub(lat),
		g,
	}
}

func pathLength(wps []geom.Vec3) float64 {
	total := 0.0
	for i := 1; i < len(wps); i++ {
		total += wps[i].Dist(wps[i-1])
	}
	return total
}

// pointAlong returns the position at arc length s along the polyline and
// the heading (yaw) of the segment it falls on.
func pointAlong(wps []geom.Vec3, s float64) (geom.Vec3, float64) {
	if len(wps) == 1 {
		return wps[0], 0
	}
	for i := 1; i < len(wps); i++ {
		seg := wps[i].Dist(wps[i-1])
		if s <= seg || i == len(wps)-1 {
			t := 1.0
			if seg > 0 {
				t = math.Min(s/seg, 1)
			}
			p := wps[i-1].Lerp(wps[i], t)
			d := wps[i].Sub(wps[i-1])
			return p, math.Atan2(d.Y, d.X)
		}
		s -= seg
	}
	d := wps[len(wps)-1].Sub(wps[len(wps)-2])
	return wps[len(wps)-1], math.Atan2(d.Y, d.X)
}

// TotalPoints returns the number of point returns across all scans.
func (d *Dataset) TotalPoints() int {
	n := 0
	for _, s := range d.Scans {
		n += len(s.Points)
	}
	return n
}

// Named builds one of the paper's three dataset stand-ins at the given
// scale. Scale 1.0 reproduces the paper's scan counts for FR-079 (66)
// and Freiburg campus (81); New College is capped at 240 scans (the
// original's 92,361 are infeasible for a simulation replay) with the
// same looping-quad trajectory character. Scale < 1 shrinks both scan
// counts and ray density for fast tests.
func Named(name string, scale float64) (*Dataset, error) {
	if scale <= 0 {
		scale = 1
	}
	// Scan count and ray density shrink gently (by √scale, with floors):
	// they are what create the inter-batch overlap and intra-batch
	// duplication the paper's analysis depends on, so aggressive scaling
	// would change the workload's character, not just its size.
	root := math.Sqrt(scale)
	scl := func(n int) int {
		v := int(math.Round(float64(n) * root))
		if v < 2 {
			v = 2
		}
		return v
	}
	sclScans := func(n int) int {
		v := scl(n)
		if v < 20 && n >= 20 {
			v = 20
		}
		return v
	}
	sclRays := func(n, floor int) int {
		v := scl(n)
		if v < floor {
			v = floor
		}
		return v
	}
	switch name {
	case "fr079":
		return Generate(Spec{
			Env:      world.FR079,
			Seed:     79,
			NumScans: sclScans(66),
			Sensor:   sensor.Panoramic(5, sclRays(120, 48), sclRays(24, 10)),
			// Down the corridor centerline: the walls never leave view,
			// which is what gives FR-079 its extreme inter-scan overlap.
			Waypoints: []geom.Vec3{geom.V(0, 0, 1.2), geom.V(30, 0, 1.2)},
			YawSweep:  0.5,
		}), nil
	case "campus":
		return Generate(Spec{
			Env:      world.Campus,
			Seed:     81,
			NumScans: sclScans(81),
			Sensor:   sensor.Panoramic(25, sclRays(160, 56), sclRays(24, 10)),
			YawSweep: 0.7,
		}), nil
	case "newcollege":
		return Generate(Spec{
			Env:      world.NewCollege,
			Seed:     92,
			NumScans: sclScans(240),
			Sensor:   sensor.Panoramic(20, sclRays(120, 48), sclRays(20, 10)),
			Waypoints: []geom.Vec3{
				geom.V(-30, -30, 1.5), geom.V(30, -30, 1.5), geom.V(30, 30, 1.5),
				geom.V(-30, 30, 1.5), geom.V(-30, -30, 1.5), geom.V(28, -28, 1.5),
			},
			YawSweep: 0.9,
		}), nil
	default:
		return nil, fmt.Errorf("dataset: unknown dataset %q (want fr079, campus, or newcollege)", name)
	}
}

// Names lists the built-in dataset names in the paper's Table 2 order.
func Names() []string { return []string{"fr079", "campus", "newcollege"} }

// VoxelStats summarizes a dataset's voxel workload at one resolution —
// the rows of Table 2 plus the §3.1 duplication-rate range.
type VoxelStats struct {
	Resolution float64
	Scans      int
	Points     int
	// TotalVoxels counts every traced voxel observation ("duplicate
	// voxel #" in Table 2's accounting).
	TotalVoxels int
	// DistinctVoxels counts globally distinct voxel keys ("non-duplicate
	// voxel #").
	DistinctVoxels int
	// DupMin/DupMean/DupMax are per-batch intra-duplication ratios
	// (total observations / distinct voxels within the batch).
	DupMin, DupMean, DupMax float64
}

// ComputeVoxelStats traces every scan at the given resolution and
// aggregates workload statistics.
func (d *Dataset) ComputeVoxelStats(res float64) VoxelStats {
	tr := raytrace.NewTracer(raytrace.Config{Resolution: res, Depth: 16, MaxRange: d.Sensor.MaxRange})
	global := make(map[voxel.Key]struct{})
	st := VoxelStats{Resolution: res, Scans: len(d.Scans), DupMin: math.Inf(1)}
	for _, s := range d.Scans {
		st.Points += len(s.Points)
		batch := tr.Trace(s.Origin, s.Points)
		st.TotalVoxels += len(batch)
		local := make(map[voxel.Key]struct{}, len(batch))
		for _, v := range batch {
			local[v.Key] = struct{}{}
			global[v.Key] = struct{}{}
		}
		if len(local) > 0 {
			r := float64(len(batch)) / float64(len(local))
			st.DupMean += r
			st.DupMin = math.Min(st.DupMin, r)
			st.DupMax = math.Max(st.DupMax, r)
		}
	}
	if len(d.Scans) > 0 {
		st.DupMean /= float64(len(d.Scans))
	}
	if math.IsInf(st.DupMin, 1) {
		st.DupMin = 0
	}
	st.DistinctVoxels = len(global)
	return st
}

// OverlapRatios returns, for each batch after the first `window`, the
// fraction of its distinct voxels already seen in the previous `window`
// batches — Figure 8's inter-batch overlap (the paper uses window = 3).
func (d *Dataset) OverlapRatios(res float64, window int) []float64 {
	if window < 1 {
		window = 3
	}
	tr := raytrace.NewTracer(raytrace.Config{Resolution: res, Depth: 16, MaxRange: d.Sensor.MaxRange})
	distinct := make([]map[voxel.Key]struct{}, len(d.Scans))
	for i, s := range d.Scans {
		distinct[i] = raytrace.DistinctKeys(tr.Trace(s.Origin, s.Points))
	}
	var out []float64
	for i := window; i < len(distinct); i++ {
		if len(distinct[i]) == 0 {
			continue
		}
		overlap := 0
		for k := range distinct[i] {
			for j := i - window; j < i; j++ {
				if _, ok := distinct[j][k]; ok {
					overlap++
					break
				}
			}
		}
		out = append(out, float64(overlap)/float64(len(distinct[i])))
	}
	return out
}

// CDF reduces samples to n evenly spaced cumulative-distribution points:
// (value, fraction of samples <= value).
func CDF(samples []float64, n int) [][2]float64 {
	if len(samples) == 0 || n < 2 {
		return nil
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		idx := int(q * float64(len(s)-1))
		out = append(out, [2]float64{s[idx], float64(idx+1) / float64(len(s))})
	}
	return out
}
