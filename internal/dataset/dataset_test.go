package dataset

import (
	"math"
	"testing"

	"octocache/internal/geom"
	"octocache/internal/sensor"
	"octocache/internal/world"
)

// smallSpec samples the corridor densely enough that consecutive scans
// overlap, as a 50 Hz sensor on a slow platform would.
func smallSpec() Spec {
	return Spec{
		Env:       world.FR079,
		Seed:      7,
		NumScans:  40,
		Sensor:    sensor.DefaultModel(5, 16, 8),
		Waypoints: []geom.Vec3{geom.V(0, 0, 1.2), geom.V(30, 0, 1.2)},
		YawSweep:  0.3,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallSpec())
	b := Generate(smallSpec())
	if len(a.Scans) != len(b.Scans) {
		t.Fatal("scan counts differ")
	}
	for i := range a.Scans {
		if a.Scans[i].Origin != b.Scans[i].Origin {
			t.Fatalf("scan %d origins differ", i)
		}
		if len(a.Scans[i].Points) != len(b.Scans[i].Points) {
			t.Fatalf("scan %d point counts differ", i)
		}
		for j := range a.Scans[i].Points {
			if a.Scans[i].Points[j] != b.Scans[i].Points[j] {
				t.Fatalf("scan %d point %d differs", i, j)
			}
		}
	}
}

func TestGenerateProducesReturns(t *testing.T) {
	d := Generate(smallSpec())
	if d.TotalPoints() == 0 {
		t.Fatal("dataset has no point returns")
	}
	empty := 0
	for _, s := range d.Scans {
		if len(s.Points) == 0 {
			empty++
		}
	}
	if empty > len(d.Scans)/2 {
		t.Errorf("%d of %d scans empty", empty, len(d.Scans))
	}
}

func TestScanOriginsFollowTrajectory(t *testing.T) {
	d := Generate(smallSpec())
	w := d.World
	// First scan at start, last near goal.
	if d.Scans[0].Origin.Dist(w.Start) > 1e-9 {
		t.Errorf("first scan at %v, want start %v", d.Scans[0].Origin, w.Start)
	}
	if d.Scans[len(d.Scans)-1].Origin.Dist(w.Goal) > 1.0 {
		t.Errorf("last scan at %v, want near goal %v", d.Scans[len(d.Scans)-1].Origin, w.Goal)
	}
	// Consecutive origins move by bounded steps.
	for i := 1; i < len(d.Scans); i++ {
		step := d.Scans[i].Origin.Dist(d.Scans[i-1].Origin)
		if step > 6 {
			t.Errorf("scan %d jumps %.1f m", i, step)
		}
	}
}

func TestNamedDatasets(t *testing.T) {
	for _, name := range Names() {
		d, err := Named(name, 0.15)
		if err != nil {
			t.Fatalf("Named(%q): %v", name, err)
		}
		if len(d.Scans) < 2 {
			t.Errorf("%s: only %d scans", name, len(d.Scans))
		}
		if d.TotalPoints() == 0 {
			t.Errorf("%s: no points", name)
		}
	}
	if _, err := Named("bogus", 1); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestNamedScanCountsMatchPaperAtFullScale(t *testing.T) {
	// Table 2: FR-079 has 66 scans at full scale. Scan counts shrink by
	// √scale with a floor of 20 (below which inter-batch overlap — the
	// workload property under study — would collapse).
	d, err := Named("fr079", 0.25) // √0.25 · 66 = 33 scans
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Scans) != 33 {
		t.Errorf("fr079 scaled scans = %d, want 33", len(d.Scans))
	}
	d, err = Named("fr079", 0.01) // would be 6.6; floor keeps 20
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Scans) != 20 {
		t.Errorf("fr079 floor scans = %d, want 20", len(d.Scans))
	}
}

func TestVoxelStatsDuplication(t *testing.T) {
	d := Generate(smallSpec())
	st := d.ComputeVoxelStats(0.2)
	if st.TotalVoxels == 0 || st.DistinctVoxels == 0 {
		t.Fatal("no voxels traced")
	}
	if st.TotalVoxels <= st.DistinctVoxels {
		t.Errorf("no duplication: total %d, distinct %d", st.TotalVoxels, st.DistinctVoxels)
	}
	// §3.1: intra-batch duplication well above 1.
	if st.DupMean < 1.5 {
		t.Errorf("mean intra-batch duplication %.2f too low", st.DupMean)
	}
	if st.DupMin > st.DupMean || st.DupMean > st.DupMax {
		t.Errorf("duplication ordering broken: min %.2f mean %.2f max %.2f", st.DupMin, st.DupMean, st.DupMax)
	}
	if st.Scans != 40 || st.Points != d.TotalPoints() {
		t.Errorf("stats bookkeeping wrong: %+v", st)
	}
}

func TestVoxelStatsResolutionMonotonicity(t *testing.T) {
	// Coarser resolution → fewer distinct voxels (Table 2's trend).
	d := Generate(smallSpec())
	fine := d.ComputeVoxelStats(0.1)
	coarse := d.ComputeVoxelStats(0.4)
	if coarse.DistinctVoxels >= fine.DistinctVoxels {
		t.Errorf("distinct voxels did not drop with coarser resolution: %d vs %d",
			coarse.DistinctVoxels, fine.DistinctVoxels)
	}
}

func TestOverlapRatios(t *testing.T) {
	d := Generate(smallSpec())
	ratios := d.OverlapRatios(0.2, 3)
	if len(ratios) != len(d.Scans)-3 {
		t.Fatalf("got %d ratios, want %d", len(ratios), len(d.Scans)-3)
	}
	var mean float64
	for _, r := range ratios {
		if r < 0 || r > 1 {
			t.Fatalf("ratio %v out of [0,1]", r)
		}
		mean += r
	}
	mean /= float64(len(ratios))
	// The corridor's continuous scanning pattern must produce high
	// overlap (Figure 8 reports >80% for two of three datasets).
	if mean < 0.4 {
		t.Errorf("mean overlap %.2f too low for corridor scanning", mean)
	}
}

func TestCDF(t *testing.T) {
	samples := []float64{0.1, 0.9, 0.5, 0.3, 0.7}
	cdf := CDF(samples, 5)
	if len(cdf) != 5 {
		t.Fatalf("got %d points", len(cdf))
	}
	// Values ascend, fractions ascend to 1.
	for i := 1; i < len(cdf); i++ {
		if cdf[i][0] < cdf[i-1][0] || cdf[i][1] < cdf[i-1][1] {
			t.Fatal("CDF not monotone")
		}
	}
	if cdf[len(cdf)-1][1] != 1 {
		t.Errorf("CDF does not reach 1: %v", cdf[len(cdf)-1][1])
	}
	if CDF(nil, 5) != nil || CDF(samples, 1) != nil {
		t.Error("degenerate CDF inputs should return nil")
	}
}

func TestPointAlong(t *testing.T) {
	wps := []geom.Vec3{geom.V(0, 0, 0), geom.V(10, 0, 0), geom.V(10, 10, 0)}
	p, yaw := pointAlong(wps, 5)
	if p.Dist(geom.V(5, 0, 0)) > 1e-9 || math.Abs(yaw) > 1e-9 {
		t.Errorf("mid first segment: %v yaw %v", p, yaw)
	}
	p, yaw = pointAlong(wps, 15)
	if p.Dist(geom.V(10, 5, 0)) > 1e-9 || math.Abs(yaw-math.Pi/2) > 1e-9 {
		t.Errorf("mid second segment: %v yaw %v", p, yaw)
	}
	// Beyond the end clamps to the final waypoint.
	p, _ = pointAlong(wps, 1000)
	if p.Dist(geom.V(10, 10, 0)) > 1e-9 {
		t.Errorf("beyond end: %v", p)
	}
}
