package dataset

import (
	"bytes"
	"testing"
)

// FuzzDatasetReadFrom ensures arbitrary byte streams never panic the
// dataset deserializer.
func FuzzDatasetReadFrom(f *testing.F) {
	d := Generate(smallSpec())
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("OCTGd1\r\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var back Dataset
		if _, err := back.ReadFrom(bytes.NewReader(data)); err != nil {
			return
		}
		// Parsed: stats must not panic either.
		_ = back.TotalPoints()
	})
}
