package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"octocache/internal/geom"
	"octocache/internal/sensor"
)

// Binary dataset serialization: a saved dataset replays the exact same
// point-cloud stream on any machine, decoupling experiment workloads from
// the generator. The world geometry is not stored — a loaded dataset
// supports replay and statistics, not re-scanning (World is nil).

var dsMagic = [8]byte{'O', 'C', 'T', 'G', 'd', '1', '\r', '\n'}

// WriteTo serializes the dataset. It implements io.WriterTo.
func (d *Dataset) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}
	if _, err := cw.Write(dsMagic[:]); err != nil {
		return cw.n, err
	}
	if err := writeString(cw, d.Name); err != nil {
		return cw.n, err
	}
	sensorFields := []float64{
		d.Sensor.HFOV, d.Sensor.VFOV,
		float64(d.Sensor.HRays), float64(d.Sensor.VRays),
		d.Sensor.MaxRange, d.Sensor.FPS, d.Sensor.RangeNoise,
	}
	for _, f := range sensorFields {
		if err := writeF64(cw, f); err != nil {
			return cw.n, err
		}
	}
	if err := binary.Write(cw, binary.LittleEndian, int64(len(d.Scans))); err != nil {
		return cw.n, err
	}
	for _, s := range d.Scans {
		if err := writeVec(cw, s.Origin); err != nil {
			return cw.n, err
		}
		if err := binary.Write(cw, binary.LittleEndian, int64(len(s.Points))); err != nil {
			return cw.n, err
		}
		for _, p := range s.Points {
			if err := writeVec(cw, p); err != nil {
				return cw.n, err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadFrom deserializes a dataset written by WriteTo, replacing the
// receiver's contents. World is left nil. It implements io.ReaderFrom.
func (d *Dataset) ReadFrom(r io.Reader) (int64, error) {
	cr := &countReader{r: bufio.NewReader(r)}
	var got [8]byte
	if _, err := io.ReadFull(cr, got[:]); err != nil {
		return cr.n, fmt.Errorf("dataset: reading magic: %w", err)
	}
	if got != dsMagic {
		return cr.n, fmt.Errorf("dataset: bad magic %q", got[:])
	}
	name, err := readString(cr)
	if err != nil {
		return cr.n, err
	}
	var fields [7]float64
	for i := range fields {
		if fields[i], err = readF64(cr); err != nil {
			return cr.n, err
		}
	}
	var nScans int64
	if err := binary.Read(cr, binary.LittleEndian, &nScans); err != nil {
		return cr.n, err
	}
	if nScans < 0 || nScans > 1<<24 {
		return cr.n, fmt.Errorf("dataset: implausible scan count %d", nScans)
	}
	scans := make([]Scan, 0, nScans)
	for i := int64(0); i < nScans; i++ {
		origin, err := readVec(cr)
		if err != nil {
			return cr.n, err
		}
		var nPts int64
		if err := binary.Read(cr, binary.LittleEndian, &nPts); err != nil {
			return cr.n, err
		}
		if nPts < 0 || nPts > 1<<28 {
			return cr.n, fmt.Errorf("dataset: implausible point count %d", nPts)
		}
		pts := make([]geom.Vec3, nPts)
		for j := range pts {
			if pts[j], err = readVec(cr); err != nil {
				return cr.n, err
			}
		}
		scans = append(scans, Scan{Origin: origin, Points: pts})
	}
	d.Name = name
	d.World = nil
	d.Sensor = sensor.Model{
		HFOV:       fields[0],
		VFOV:       fields[1],
		HRays:      int(fields[2]),
		VRays:      int(fields[3]),
		MaxRange:   fields[4],
		FPS:        fields[5],
		RangeNoise: fields[6],
	}
	d.Scans = scans
	return cr.n, nil
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, int32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n int32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n < 0 || n > 4096 {
		return "", fmt.Errorf("dataset: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func writeF64(w io.Writer, f float64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
	_, err := w.Write(buf[:])
	return err
}

func readF64(r io.Reader) (float64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}

func writeVec(w io.Writer, v geom.Vec3) error {
	if err := writeF64(w, v.X); err != nil {
		return err
	}
	if err := writeF64(w, v.Y); err != nil {
		return err
	}
	return writeF64(w, v.Z)
}

func readVec(r io.Reader) (geom.Vec3, error) {
	x, err := readF64(r)
	if err != nil {
		return geom.Vec3{}, err
	}
	y, err := readF64(r)
	if err != nil {
		return geom.Vec3{}, err
	}
	z, err := readF64(r)
	if err != nil {
		return geom.Vec3{}, err
	}
	return geom.V(x, y, z), nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
