package dataset

import (
	"bytes"
	"testing"
)

func TestDatasetSerializeRoundTrip(t *testing.T) {
	d := Generate(smallSpec())
	var buf bytes.Buffer
	n, err := d.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo returned %d, buffer holds %d", n, buf.Len())
	}
	var back Dataset
	if _, err := back.ReadFrom(&buf); err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if back.Name != d.Name {
		t.Errorf("name %q != %q", back.Name, d.Name)
	}
	if back.Sensor != d.Sensor {
		t.Errorf("sensor differs: %+v vs %+v", back.Sensor, d.Sensor)
	}
	if len(back.Scans) != len(d.Scans) {
		t.Fatalf("scan count %d != %d", len(back.Scans), len(d.Scans))
	}
	for i := range d.Scans {
		if back.Scans[i].Origin != d.Scans[i].Origin {
			t.Fatalf("scan %d origin differs", i)
		}
		if len(back.Scans[i].Points) != len(d.Scans[i].Points) {
			t.Fatalf("scan %d point count differs", i)
		}
		for j := range d.Scans[i].Points {
			if back.Scans[i].Points[j] != d.Scans[i].Points[j] {
				t.Fatalf("scan %d point %d differs", i, j)
			}
		}
	}
	if back.World != nil {
		t.Error("deserialized dataset should have nil World")
	}
	// Stats work on a loaded dataset.
	st := back.ComputeVoxelStats(0.2)
	want := d.ComputeVoxelStats(0.2)
	if st != want {
		t.Errorf("stats differ after round trip: %+v vs %+v", st, want)
	}
}

func TestDatasetReadRejectsGarbage(t *testing.T) {
	var d Dataset
	if _, err := d.ReadFrom(bytes.NewReader([]byte("not a dataset file"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := d.ReadFrom(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestDatasetReadRejectsTruncated(t *testing.T) {
	d := Generate(smallSpec())
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	var back Dataset
	if _, err := back.ReadFrom(bytes.NewReader(data[:len(data)/3])); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestDatasetSerializeEmptyScans(t *testing.T) {
	d := &Dataset{Name: "empty"}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var back Dataset
	if _, err := back.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if back.Name != "empty" || len(back.Scans) != 0 {
		t.Errorf("empty dataset round trip wrong: %+v", back)
	}
}
