// Package durable implements the on-disk store behind octocache's
// persistence: one append-only, CRC-framed log per map (per shard, when
// sharded) plus one atomically replaced snapshot file. The log carries
// two record kinds that share a framing discipline but serve different
// masters:
//
//   - Tile frames hold spilled tiles of a bounded-memory window as
//     canonical leaf runs — the same (key, depth, log-odds) exchange unit
//     backend walks and .bt serialization speak. Re-spilling a tile
//     appends a fresh frame that supersedes the old one; a tile paging
//     back in releases its frame. These frames exist for the *resident*
//     map: crash recovery never needs them, because the snapshot folds
//     spilled tiles in.
//   - Batch frames are the write-ahead log: one frame per admitted
//     observation batch, sequenced by the engine's announced batch
//     counter and appended before the batch is applied. Recovery replays
//     the surviving prefix of batch frames over the last snapshot.
//
// The snapshot file is a consistent cut: the map's full serialized
// contents tagged with the sequence number of the last batch it covers.
// It is written to a temp file, fsynced, renamed over the old snapshot,
// and the directory fsynced — so at every instant exactly one valid
// snapshot exists. Committing a snapshot retires every batch frame it
// covers; the next log rewrite drops them.
//
// When garbage (superseded tile frames, retired batch frames, dead
// tiles) outgrows the live payload the log is rewritten: live frames are
// copied to a temp file that is fsynced and atomically renamed over the
// log, then the directory is fsynced — so a power cut during or after a
// rewrite still leaves a complete log.
//
// Recover scans an existing log frame-by-frame and truncates at the
// first corrupt or short frame, so a log cut mid-append (crash, torn
// write, full disk) degrades to the longest valid prefix instead of an
// error — the property the crash-injection matrix gates.
//
// All methods are safe for concurrent use; the engine serializes
// mutators anyway, but snapshot walks read tile frames, and the
// background checkpoint writer commits, concurrently with appends.
package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"octocache/internal/voxel"
)

const (
	// fileMagic begins every log.
	fileMagic = "OCDL0001"
	// tileMagic begins every tile frame.
	tileMagic uint32 = 0x4F435446 // "FTCO" little-endian
	// batchMagic begins every WAL batch frame.
	batchMagic uint32 = 0x4F435442 // "BTCO" little-endian
	// frameHdrBytes is the fixed frame header shared by both kinds:
	// magic, 12 kind-specific bytes, CRC.
	frameHdrBytes = 20
	// leafBytes is one serialized leaf: 3×uint16 key, uint8 depth,
	// float32 log-odds.
	leafBytes = 11
	// obsBytes is one serialized WAL observation: 3×uint16 key plus an
	// occupied byte.
	obsBytes = 7
	// maxFrameRecords bounds a frame's record count: anything beyond is a
	// corrupt header, not a huge frame.
	maxFrameRecords = 1 << 30
)

// SyncPolicy selects when WAL appends reach stable storage.
type SyncPolicy int

const (
	// SyncNone leaves append durability to the OS page cache: a crash of
	// the process loses nothing (the kernel holds the writes), a power
	// loss may lose the most recent batches. Snapshot and rewrite commits
	// still fsync before their renames. The default.
	SyncNone SyncPolicy = iota
	// SyncEveryBatch fsyncs the log after every appended batch, bounding
	// power-loss data loss to the batch in flight at the cost of one
	// device flush per scan.
	SyncEveryBatch
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncNone:
		return "none"
	case SyncEveryBatch:
		return "batch"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// TileRef identifies one spilled tile in the log.
type TileRef struct {
	Key   voxel.Key
	Depth int
}

// frameRef locates a live tile frame in the log.
type frameRef struct {
	off   int64
	count uint32
}

// batchRef locates a surviving WAL frame in the log.
type batchRef struct {
	off   int64
	count uint32
	seq   uint64
}

func tileFrameSize(count uint32) int64  { return frameHdrBytes + int64(count)*leafBytes }
func batchFrameSize(count uint32) int64 { return frameHdrBytes + int64(count)*obsBytes }

// Stats summarizes a durable store.
type Stats struct {
	// SpilledTiles is the number of tiles with a live frame.
	SpilledTiles int
	// BytesOnDisk is the log's current file size.
	BytesOnDisk int64
	// LiveBytes is the portion of BytesOnDisk occupied by live tile
	// frames; superseded frames and retired batch frames are garbage
	// awaiting a rewrite.
	LiveBytes int64
	// WALBytes is the portion of BytesOnDisk occupied by batch frames
	// not yet covered by a snapshot — the bytes recovery would replay.
	WALBytes int64
	// WALBatches counts batch frames appended over the store's lifetime.
	WALBatches int64
	// MaxSeq is the highest batch sequence number the log holds (or held
	// before a snapshot retired it).
	MaxSeq uint64
	// SnapshotSeq is the sequence number the last committed snapshot
	// covers; 0 before the first snapshot.
	SnapshotSeq uint64
	// Spills, Rewrites, and Snapshots count appended tile frames, log
	// compactions, and committed snapshots.
	Spills, Rewrites, Snapshots int64
}

// Store is one map's durable state: the framed log plus the snapshot
// file. Construct with Create (fresh store, truncating any previous
// files) or Recover (scan existing state).
type Store struct {
	mu       sync.Mutex
	dir      string
	path     string // log file
	snapPath string
	f        *os.File
	sync     SyncPolicy
	index    map[TileRef]frameRef
	wal      []batchRef // surviving batch frames, ascending seq
	size     int64      // append offset == file size
	live     int64      // bytes held by live tile frames
	walLive  int64      // bytes held by surviving batch frames
	maxSeq   uint64
	snapSeq  uint64
	stats    Stats
	buf      []byte // mutator-side frame scratch (guarded by mu)
}

func logPath(dir, tag string) string  { return filepath.Join(dir, tag+".log") }
func snapPath(dir, tag string) string { return filepath.Join(dir, tag+".snap") }

// LogName returns the log filename a store with this tag uses, for
// callers that inspect a durable directory (Recover's layout check).
func LogName(tag string) string { return tag + ".log" }

// Create starts a fresh store for tag under dir, truncating any existing
// log and removing any existing snapshot.
func Create(dir, tag string, sync SyncPolicy) (*Store, error) {
	path := logPath(dir, tag)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write([]byte(fileMagic)); err != nil {
		f.Close()
		return nil, err
	}
	sp := snapPath(dir, tag)
	if err := os.Remove(sp); err != nil && !os.IsNotExist(err) {
		f.Close()
		return nil, err
	}
	return &Store{
		dir:      dir,
		path:     path,
		snapPath: sp,
		f:        f,
		sync:     sync,
		index:    make(map[TileRef]frameRef),
		size:     int64(len(fileMagic)),
	}, nil
}

// Recovered describes what Recover found: the last committed snapshot
// (if any) and the surviving batch frames past it, in replay order.
type Recovered struct {
	// HasSnapshot reports whether a valid snapshot file was found.
	HasSnapshot bool
	// SnapshotSeq is the batch sequence the snapshot covers.
	SnapshotSeq uint64
	// Snapshot is the snapshot payload (the bytes WriteSnapshot's
	// WriterTo emitted), CRC-verified. Nil without a snapshot.
	Snapshot []byte
	// Batches counts the surviving batch frames to replay.
	Batches int
	// MaxSeq is the recovered-through sequence: the snapshot's cut plus
	// every surviving contiguous batch after it.
	MaxSeq uint64
}

// Recover opens an existing store for tag under dir, reading the
// snapshot file and scanning the log. The last tile frame per tile wins,
// batch frames are kept in order, and the scan stops at the first
// corrupt or truncated frame, discarding the tail — the longest valid
// prefix survives a mid-append crash. A missing log starts a fresh
// store. Recovered tile frames are dropped from the live index (the
// snapshot already folds spilled tiles in; a recovered map starts fully
// resident), so their bytes are garbage until the next rewrite.
//
// Replay of batch frames is contiguous: frames whose sequence does not
// extend snapshot+1, +2, … (possible only after log corruption inside
// the valid prefix) end the replayable range.
func Recover(dir, tag string, sync SyncPolicy) (*Store, *Recovered, error) {
	path := logPath(dir, tag)
	// Clean up temp files a crashed rewrite or snapshot left behind.
	os.Remove(path + ".rewrite")
	sp := snapPath(dir, tag)
	os.Remove(sp + ".tmp")

	rec := &Recovered{}
	snapSeq, payload, err := readSnapshotFile(sp)
	if err != nil {
		return nil, nil, err
	}
	if payload != nil {
		rec.HasSnapshot = true
		rec.SnapshotSeq = snapSeq
		rec.Snapshot = payload
	}

	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if os.IsNotExist(err) {
		s, cerr := Create(dir, tag, sync)
		if cerr != nil {
			return nil, nil, cerr
		}
		if rec.HasSnapshot {
			// Create removed the snapshot; a snapshot without a log means
			// the log was lost, which loses only batches past the cut —
			// rewrite the snapshot so the cut itself survives.
			if werr := s.restoreSnapshot(snapSeq, payload); werr != nil {
				s.Close()
				return nil, nil, werr
			}
			s.maxSeq = snapSeq
			rec.MaxSeq = snapSeq
		}
		return s, rec, nil
	}
	if err != nil {
		return nil, nil, err
	}
	hdr := make([]byte, len(fileMagic))
	if _, err := f.ReadAt(hdr, 0); err != nil || string(hdr) != fileMagic {
		f.Close()
		return nil, nil, fmt.Errorf("durable: %s is not an octocache log", path)
	}
	s := &Store{
		dir:      dir,
		path:     path,
		snapPath: sp,
		f:        f,
		sync:     sync,
		index:    make(map[TileRef]frameRef),
		size:     int64(len(fileMagic)),
		snapSeq:  snapSeq,
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	end := fi.Size()
	var fh [frameHdrBytes]byte
	for s.size+frameHdrBytes <= end {
		if _, err := f.ReadAt(fh[:], s.size); err != nil {
			break
		}
		n, ok := s.scanFrame(fh, s.size, end)
		if !ok {
			break
		}
		s.size += n
	}
	// Drop the invalid tail so future appends extend a clean prefix.
	if s.size < end {
		if err := f.Truncate(s.size); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	// Recovered tile frames serve no one: the snapshot folds spilled
	// tiles in and replayed batches re-spill as needed. Retire them.
	s.index = make(map[TileRef]frameRef)
	s.live = 0
	// Keep only the contiguous batch run extending the snapshot.
	replayable := s.wal[:0]
	next := snapSeq + 1
	for _, b := range s.wal {
		if b.seq <= snapSeq {
			s.walLive -= batchFrameSize(b.count)
			continue
		}
		if b.seq != next {
			s.walLive -= batchFrameSize(b.count)
			continue
		}
		replayable = append(replayable, b)
		next++
	}
	s.wal = replayable
	rec.Batches = len(s.wal)
	rec.MaxSeq = snapSeq
	if n := len(s.wal); n > 0 {
		rec.MaxSeq = s.wal[n-1].seq
	}
	s.maxSeq = rec.MaxSeq
	return s, rec, nil
}

// scanFrame validates one frame at off during recovery, indexing it by
// kind. It returns the frame's total size; ok is false for a corrupt or
// truncated frame.
func (s *Store) scanFrame(fh [frameHdrBytes]byte, off, end int64) (int64, bool) {
	switch binary.LittleEndian.Uint32(fh[0:4]) {
	case tileMagic:
		count := binary.LittleEndian.Uint32(fh[12:16])
		if count > maxFrameRecords || off+tileFrameSize(count) > end {
			return 0, false
		}
		if !s.checkCRC(fh, off, int(count)*leafBytes) {
			return 0, false
		}
		tile := TileRef{
			Key: voxel.Key{
				X: binary.LittleEndian.Uint16(fh[4:6]),
				Y: binary.LittleEndian.Uint16(fh[6:8]),
				Z: binary.LittleEndian.Uint16(fh[8:10]),
			},
			Depth: int(fh[10]),
		}
		if old, dup := s.index[tile]; dup {
			s.live -= tileFrameSize(old.count)
		}
		s.index[tile] = frameRef{off: off, count: count}
		s.live += tileFrameSize(count)
		return tileFrameSize(count), true
	case batchMagic:
		seq := binary.LittleEndian.Uint64(fh[4:12])
		count := binary.LittleEndian.Uint32(fh[12:16])
		if count > maxFrameRecords || off+batchFrameSize(count) > end {
			return 0, false
		}
		if !s.checkCRC(fh, off, int(count)*obsBytes) {
			return 0, false
		}
		s.wal = append(s.wal, batchRef{off: off, count: count, seq: seq})
		s.walLive += batchFrameSize(count)
		if seq > s.maxSeq {
			s.maxSeq = seq
		}
		return batchFrameSize(count), true
	default:
		return 0, false
	}
}

// checkCRC re-reads a frame's payload and verifies the header CRC.
func (s *Store) checkCRC(fh [frameHdrBytes]byte, off int64, payloadLen int) bool {
	payload := make([]byte, payloadLen)
	if _, err := s.f.ReadAt(payload, off+frameHdrBytes); err != nil {
		return false
	}
	crc := crc32.ChecksumIEEE(fh[0:16])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	return crc == binary.LittleEndian.Uint32(fh[16:20])
}

// appendFrame writes s.buf[:need] at the log tail, truncating any
// partial write so the log stays a valid prefix.
func (s *Store) appendFrame(need int) error {
	if _, err := s.f.WriteAt(s.buf[:need], s.size); err != nil {
		s.f.Truncate(s.size)
		return err
	}
	return nil
}

// Spill appends one tile's leaf run as a new frame, superseding any live
// frame for the tile. The leaves must all lie inside the tile; the
// engine's evictor guarantees it.
func (s *Store) Spill(tile voxel.Key, depth int, leaves []voxel.Leaf) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("durable: store is closed")
	}
	need := int(tileFrameSize(uint32(len(leaves))))
	if cap(s.buf) < need {
		s.buf = make([]byte, need)
	}
	buf := s.buf[:need]
	binary.LittleEndian.PutUint32(buf[0:4], tileMagic)
	binary.LittleEndian.PutUint16(buf[4:6], tile.X)
	binary.LittleEndian.PutUint16(buf[6:8], tile.Y)
	binary.LittleEndian.PutUint16(buf[8:10], tile.Z)
	buf[10] = uint8(depth)
	buf[11] = 0
	binary.LittleEndian.PutUint32(buf[12:16], uint32(len(leaves)))
	p := buf[frameHdrBytes:]
	for i, l := range leaves {
		r := p[i*leafBytes:]
		binary.LittleEndian.PutUint16(r[0:2], l.Key.X)
		binary.LittleEndian.PutUint16(r[2:4], l.Key.Y)
		binary.LittleEndian.PutUint16(r[4:6], l.Key.Z)
		r[6] = uint8(l.Depth)
		binary.LittleEndian.PutUint32(r[7:11], math.Float32bits(l.LogOdds))
	}
	s.sealFrame(buf)
	if err := s.appendFrame(need); err != nil {
		return err
	}
	ref := frameRef{off: s.size, count: uint32(len(leaves))}
	s.size += int64(need)
	id := TileRef{Key: tile, Depth: depth}
	if old, dup := s.index[id]; dup {
		s.live -= tileFrameSize(old.count)
	}
	s.index[id] = ref
	s.live += int64(need)
	s.stats.Spills++
	return s.maybeRewriteLocked()
}

// sealFrame writes the CRC over header+payload into the header.
func (s *Store) sealFrame(buf []byte) {
	crc := crc32.ChecksumIEEE(buf[0:16])
	crc = crc32.Update(crc, crc32.IEEETable, buf[frameHdrBytes:])
	binary.LittleEndian.PutUint32(buf[16:20], crc)
}

// Load reads the tile's live frame, appending its leaves to dst. The
// frame's CRC is re-verified on every read.
func (s *Store) Load(tile voxel.Key, depth int, dst []voxel.Leaf) ([]voxel.Leaf, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loadLocked(TileRef{Key: tile, Depth: depth}, dst)
}

func (s *Store) loadLocked(id TileRef, dst []voxel.Leaf) ([]voxel.Leaf, error) {
	if s.f == nil {
		return dst, fmt.Errorf("durable: store is closed")
	}
	ref, ok := s.index[id]
	if !ok {
		return dst, fmt.Errorf("durable: tile %v depth %d is not spilled", id.Key, id.Depth)
	}
	need := int(tileFrameSize(ref.count))
	buf := make([]byte, need)
	if _, err := s.f.ReadAt(buf, ref.off); err != nil {
		return dst, fmt.Errorf("durable: reading tile %v: %w", id.Key, err)
	}
	crc := crc32.ChecksumIEEE(buf[0:16])
	crc = crc32.Update(crc, crc32.IEEETable, buf[frameHdrBytes:])
	if crc != binary.LittleEndian.Uint32(buf[16:20]) {
		return dst, fmt.Errorf("durable: tile %v frame failed CRC check", id.Key)
	}
	p := buf[frameHdrBytes:]
	for i := 0; i < int(ref.count); i++ {
		r := p[i*leafBytes:]
		dst = append(dst, voxel.Leaf{
			Key: voxel.Key{
				X: binary.LittleEndian.Uint16(r[0:2]),
				Y: binary.LittleEndian.Uint16(r[2:4]),
				Z: binary.LittleEndian.Uint16(r[4:6]),
			},
			Depth:   int(r[6]),
			LogOdds: math.Float32frombits(binary.LittleEndian.Uint32(r[7:11])),
		})
	}
	return dst, nil
}

// Release drops the tile's live frame from the index — the tile is
// resident again and its bytes are garbage until the next rewrite.
func (s *Store) Release(tile voxel.Key, depth int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := TileRef{Key: tile, Depth: depth}
	if ref, ok := s.index[id]; ok {
		delete(s.index, id)
		s.live -= tileFrameSize(ref.count)
	}
}

// Tiles returns the spilled tiles in ascending Morton order of their
// corner keys — the deterministic order snapshot walks fold them in.
func (s *Store) Tiles() []TileRef {
	s.mu.Lock()
	out := make([]TileRef, 0, len(s.index))
	for id := range s.index {
		out = append(out, id)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Depth != out[j].Depth {
			return out[i].Depth < out[j].Depth
		}
		return out[i].Key.Morton() < out[j].Key.Morton()
	})
	return out
}

// Len returns the number of spilled tiles.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// BytesOnDisk returns the log's current file size.
func (s *Store) BytesOnDisk() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Stats snapshots the store's accounting.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.SpilledTiles = len(s.index)
	st.BytesOnDisk = s.size
	st.LiveBytes = s.live
	st.WALBytes = s.walLive
	st.MaxSeq = s.maxSeq
	st.SnapshotSeq = s.snapSeq
	return st
}

// rewriteFloor is the minimum garbage (bytes) before an automatic
// rewrite is considered; below it the copy costs more than it frees.
const rewriteFloor = 64 << 10

// maybeRewriteLocked compacts the log when garbage exceeds both the
// floor and the live payload — amortizing rewrite cost the same way the
// octree's arena compaction amortizes against live slots.
func (s *Store) maybeRewriteLocked() error {
	liveAll := s.live + s.walLive
	garbage := s.size - int64(len(fileMagic)) - liveAll
	if garbage < rewriteFloor || garbage <= liveAll {
		return nil
	}
	return s.rewriteLocked()
}

// Rewrite compacts the log now: live tile frames and surviving batch
// frames are copied into a temp file that atomically replaces the log,
// dropping all garbage.
func (s *Store) Rewrite() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("durable: store is closed")
	}
	return s.rewriteLocked()
}

func (s *Store) rewriteLocked() error {
	tmpPath := s.path + ".rewrite"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	cleanup := func(e error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return e
	}
	if _, err := tmp.Write([]byte(fileMagic)); err != nil {
		return cleanup(err)
	}
	// Copy live frames in their on-disk order, recording new offsets.
	// Batch frames and tile frames interleave; order within each kind is
	// preserved (batch replay order is ascending seq == ascending off).
	type liveFrame struct {
		off  int64
		size int64
		tile *TileRef // nil for batch frames
		wal  int      // index into s.wal, -1 for tile frames
	}
	frames := make([]liveFrame, 0, len(s.index)+len(s.wal))
	ids := make([]TileRef, 0, len(s.index))
	for id := range s.index {
		ids = append(ids, id)
	}
	for i := range ids {
		ref := s.index[ids[i]]
		frames = append(frames, liveFrame{off: ref.off, size: tileFrameSize(ref.count), tile: &ids[i], wal: -1})
	}
	for i, b := range s.wal {
		frames = append(frames, liveFrame{off: b.off, size: batchFrameSize(b.count), wal: i})
	}
	sort.Slice(frames, func(i, j int) bool { return frames[i].off < frames[j].off })

	newIndex := make(map[TileRef]frameRef, len(ids))
	newWAL := make([]batchRef, len(s.wal))
	off := int64(len(fileMagic))
	for _, fr := range frames {
		if int64(cap(s.buf)) < fr.size {
			s.buf = make([]byte, fr.size)
		}
		buf := s.buf[:fr.size]
		if _, err := s.f.ReadAt(buf, fr.off); err != nil {
			return cleanup(err)
		}
		if _, err := tmp.WriteAt(buf, off); err != nil {
			return cleanup(err)
		}
		if fr.tile != nil {
			newIndex[*fr.tile] = frameRef{off: off, count: s.index[*fr.tile].count}
		} else {
			b := s.wal[fr.wal]
			b.off = off
			newWAL[fr.wal] = b
		}
		off += fr.size
	}
	// fsync the rewritten data before the rename makes it the log, and
	// the directory after — otherwise a power loss can leave the rename
	// durable while the data it names is not, "recovering" an empty log.
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		return cleanup(err)
	}
	if err := syncDir(s.dir); err != nil {
		tmp.Close()
		return err
	}
	s.f.Close()
	s.f = tmp
	s.index = newIndex
	s.wal = newWAL
	s.size = off
	s.live = 0
	for _, ref := range newIndex {
		s.live += tileFrameSize(ref.count)
	}
	s.stats.Rewrites++
	return nil
}

// syncDir fsyncs a directory so a completed rename is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Close closes the log file. Further operations fail; the files are left
// on disk for Recover.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
