package durable

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"octocache/internal/raytrace"
	"octocache/internal/voxel"
)

func tileLeaves(rng *rand.Rand, corner voxel.Key, n int) []voxel.Leaf {
	out := make([]voxel.Leaf, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, voxel.Leaf{
			Key: voxel.Key{
				X: corner.X + uint16(rng.Intn(8)),
				Y: corner.Y + uint16(rng.Intn(8)),
				Z: corner.Z + uint16(rng.Intn(8)),
			},
			Depth:   16,
			LogOdds: rng.Float32()*8 - 4,
		})
	}
	return out
}

func obsBatch(rng *rand.Rand, n int) []raytrace.Voxel {
	out := make([]raytrace.Voxel, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, raytrace.Voxel{
			Key: voxel.Key{
				X: uint16(rng.Intn(1 << 12)),
				Y: uint16(rng.Intn(1 << 12)),
				Z: uint16(rng.Intn(1 << 12)),
			},
			Occupied: rng.Intn(2) == 1,
		})
	}
	return out
}

func mustCreate(t *testing.T, dir, tag string) *Store {
	t.Helper()
	s, err := Create(dir, tag, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSpillLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustCreate(t, dir, "m")
	defer s.Close()

	rng := rand.New(rand.NewSource(1))
	want := map[TileRef][]voxel.Leaf{}
	for i := 0; i < 20; i++ {
		corner := voxel.Key{X: uint16(i * 8), Y: uint16(i * 16), Z: 64}
		leaves := tileLeaves(rng, corner, 1+rng.Intn(40))
		if err := s.Spill(corner, 13, leaves); err != nil {
			t.Fatal(err)
		}
		want[TileRef{Key: corner, Depth: 13}] = leaves
	}
	if s.Len() != 20 {
		t.Fatalf("Len = %d, want 20", s.Len())
	}
	for id, leaves := range want {
		got, err := s.Load(id.Key, id.Depth, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, leaves) {
			t.Fatalf("tile %v: loaded leaves differ", id.Key)
		}
	}
	// Empty frames round-trip too (a tile can be all-unknown after
	// aggressive pruning).
	if err := s.Spill(voxel.Key{X: 4096}, 13, nil); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load(voxel.Key{X: 4096}, 13, nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty frame: got %v, %v", got, err)
	}
	// Loading into a reused buffer appends.
	buf := make([]voxel.Leaf, 2, 64)
	first := want[TileRef{Key: voxel.Key{X: 0, Y: 0, Z: 64}, Depth: 13}]
	got, err = s.Load(voxel.Key{Z: 64}, 13, buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2+len(first) || !reflect.DeepEqual(got[2:], first) {
		t.Fatal("Load did not append to dst")
	}
}

func TestReleaseAndResupersede(t *testing.T) {
	dir := t.TempDir()
	s := mustCreate(t, dir, "m")
	defer s.Close()
	corner := voxel.Key{X: 8, Y: 8, Z: 8}
	rng := rand.New(rand.NewSource(2))
	v1 := tileLeaves(rng, corner, 10)
	v2 := tileLeaves(rng, corner, 7)
	if err := s.Spill(corner, 13, v1); err != nil {
		t.Fatal(err)
	}
	if err := s.Spill(corner, 13, v2); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("re-spill did not supersede: Len = %d", s.Len())
	}
	got, err := s.Load(corner, 13, nil)
	if err != nil || !reflect.DeepEqual(got, v2) {
		t.Fatalf("got old frame after re-spill: %v, %v", got, err)
	}
	s.Release(corner, 13)
	if s.Len() != 0 {
		t.Fatal("Release did not drop the tile")
	}
	if _, err := s.Load(corner, 13, nil); err == nil {
		t.Fatal("Load of released tile succeeded")
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustCreate(t, dir, "m")
	rng := rand.New(rand.NewSource(3))
	var want [][]raytrace.Voxel
	for seq := uint64(1); seq <= 10; seq++ {
		b := obsBatch(rng, 1+rng.Intn(50))
		if err := s.AppendBatch(seq, b); err != nil {
			t.Fatal(err)
		}
		want = append(want, b)
	}
	st := s.Stats()
	if st.WALBatches != 10 || st.MaxSeq != 10 || st.WALBytes <= 0 {
		t.Fatalf("stats after appends: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, rec, err := Recover(dir, "m", SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if rec.HasSnapshot || rec.Batches != 10 || rec.MaxSeq != 10 {
		t.Fatalf("recovered: %+v", rec)
	}
	var next uint64 = 1
	if err := r.ReplayBatches(func(seq uint64, batch []raytrace.Voxel) error {
		if seq != next {
			t.Fatalf("replay seq %d, want %d", seq, next)
		}
		if !reflect.DeepEqual(batch, want[seq-1]) {
			t.Fatalf("batch %d corrupted in replay", seq)
		}
		next++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if next != 11 {
		t.Fatalf("replayed %d batches, want 10", next-1)
	}
}

// TestRecoverDropsTileFrames: recovered logs retire their tile frames —
// a recovered map starts fully resident (the snapshot folds spilled
// tiles in), so surviving tile frames are garbage, while batch frames
// replay.
func TestRecoverDropsTileFrames(t *testing.T) {
	dir := t.TempDir()
	s := mustCreate(t, dir, "m")
	rng := rand.New(rand.NewSource(4))
	if err := s.Spill(voxel.Key{}, 13, tileLeaves(rng, voxel.Key{}, 12)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendBatch(1, obsBatch(rng, 20)); err != nil {
		t.Fatal(err)
	}
	if err := s.Spill(voxel.Key{X: 8}, 13, tileLeaves(rng, voxel.Key{X: 8}, 9)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendBatch(2, obsBatch(rng, 20)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	r, rec, err := Recover(dir, "m", SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 0 {
		t.Fatalf("recovered store holds %d tiles, want 0", r.Len())
	}
	if rec.Batches != 2 || rec.MaxSeq != 2 {
		t.Fatalf("recovered: %+v", rec)
	}
	st := r.Stats()
	if st.LiveBytes != 0 || st.WALBytes <= 0 {
		t.Fatalf("stats after recover: %+v", st)
	}
	// The retired tile bytes are garbage; an explicit rewrite drops them
	// but keeps the batch frames replayable.
	if err := r.Rewrite(); err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := r.ReplayBatches(func(uint64, []raytrace.Voxel) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("replayed %d batches after rewrite, want 2", count)
	}
}

// TestRecoverTruncatedTail cuts the log at every byte offset inside the
// final WAL frame: recovery must keep exactly the preceding batches and
// drop the torn tail — the crash-mid-append contract.
func TestRecoverTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.log")
	s := mustCreate(t, dir, "m")
	rng := rand.New(rand.NewSource(5))
	a := obsBatch(rng, 12)
	b := obsBatch(rng, 9)
	if err := s.AppendBatch(1, a); err != nil {
		t.Fatal(err)
	}
	preLen := s.BytesOnDisk()
	if err := s.AppendBatch(2, b); err != nil {
		t.Fatal(err)
	}
	full := s.BytesOnDisk()
	s.Close()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := preLen; cut < full; cut++ {
		if err := os.WriteFile(path, blob[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r, rec, err := Recover(dir, "m", SyncNone)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if rec.Batches != 1 || rec.MaxSeq != 1 {
			t.Fatalf("cut %d: recovered %+v, want 1 batch", cut, rec)
		}
		if err := r.ReplayBatches(func(seq uint64, batch []raytrace.Voxel) error {
			if seq != 1 || !reflect.DeepEqual(batch, a) {
				t.Fatalf("cut %d: surviving batch corrupted", cut)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		// The torn tail is gone: appending extends a clean prefix.
		if err := r.AppendBatch(2, b); err != nil {
			t.Fatalf("cut %d: append after recover: %v", cut, err)
		}
		r.Close()
	}
}

// TestRecoverCorruptFrame flips a payload byte: the CRC must reject the
// frame and recovery stops at the last good prefix.
func TestRecoverCorruptFrame(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.log")
	s := mustCreate(t, dir, "m")
	rng := rand.New(rand.NewSource(6))
	a := obsBatch(rng, 6)
	if err := s.AppendBatch(1, a); err != nil {
		t.Fatal(err)
	}
	preLen := s.BytesOnDisk()
	if err := s.AppendBatch(2, obsBatch(rng, 6)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[preLen+frameHdrBytes+3] ^= 0xFF
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	r, rec, err := Recover(dir, "m", SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if rec.Batches != 1 || rec.MaxSeq != 1 {
		t.Fatalf("recovered %+v past a corrupt frame, want 1 batch", rec)
	}
}

// TestRecoverSeqGap: batch frames that do not extend the snapshot's cut
// contiguously (possible only after corruption inside the valid prefix)
// end the replayable range rather than replaying out of order.
func TestRecoverSeqGap(t *testing.T) {
	dir := t.TempDir()
	s := mustCreate(t, dir, "m")
	rng := rand.New(rand.NewSource(7))
	for _, seq := range []uint64{1, 2, 4} {
		if err := s.AppendBatch(seq, obsBatch(rng, 5)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	_, rec, err := Recover(dir, "m", SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Batches != 2 || rec.MaxSeq != 2 {
		t.Fatalf("recovered %+v across a seq gap, want batches 1-2 only", rec)
	}
}

func TestSnapshotCommitAndRecover(t *testing.T) {
	dir := t.TempDir()
	s := mustCreate(t, dir, "m")
	rng := rand.New(rand.NewSource(8))
	batches := make([][]raytrace.Voxel, 6)
	for seq := uint64(1); seq <= 5; seq++ {
		batches[seq] = obsBatch(rng, 10)
		if err := s.AppendBatch(seq, batches[seq]); err != nil {
			t.Fatal(err)
		}
	}
	payload := []byte("canonical .bt bytes stand-in")
	if err := s.WriteSnapshot(3, bytes.NewReader(payload)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.SnapshotSeq != 3 || st.Snapshots != 1 {
		t.Fatalf("stats after snapshot: %+v", st)
	}
	// Batches 1-3 are retired: only 4 and 5 replay.
	var seqs []uint64
	if err := s.ReplayBatches(func(seq uint64, _ []raytrace.Voxel) error {
		seqs = append(seqs, seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqs, []uint64{4, 5}) {
		t.Fatalf("post-snapshot replay seqs = %v, want [4 5]", seqs)
	}
	s.Close()

	r, rec, err := Recover(dir, "m", SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !rec.HasSnapshot || rec.SnapshotSeq != 3 || !bytes.Equal(rec.Snapshot, payload) {
		t.Fatalf("snapshot lost in recovery: %+v", rec)
	}
	if rec.Batches != 2 || rec.MaxSeq != 5 {
		t.Fatalf("recovered: %+v", rec)
	}
	// A newer snapshot covering everything leaves nothing to replay.
	if err := r.WriteSnapshot(5, bytes.NewReader(payload)); err != nil {
		t.Fatal(err)
	}
	r.Close()
	_, rec2, err := Recover(dir, "m", SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.SnapshotSeq != 5 || rec2.Batches != 0 || rec2.MaxSeq != 5 {
		t.Fatalf("after covering snapshot: %+v", rec2)
	}
}

// TestRecoverSnapshotWithoutLog: a surviving snapshot with a lost log
// recovers the cut itself — batches past it are gone, the snapshot is
// not.
func TestRecoverSnapshotWithoutLog(t *testing.T) {
	dir := t.TempDir()
	s := mustCreate(t, dir, "m")
	rng := rand.New(rand.NewSource(9))
	for seq := uint64(1); seq <= 4; seq++ {
		if err := s.AppendBatch(seq, obsBatch(rng, 5)); err != nil {
			t.Fatal(err)
		}
	}
	payload := []byte("cut-at-2")
	if err := s.WriteSnapshot(2, bytes.NewReader(payload)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := os.Remove(filepath.Join(dir, "m.log")); err != nil {
		t.Fatal(err)
	}
	r, rec, err := Recover(dir, "m", SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !rec.HasSnapshot || rec.SnapshotSeq != 2 || !bytes.Equal(rec.Snapshot, payload) {
		t.Fatalf("snapshot lost with the log: %+v", rec)
	}
	if rec.Batches != 0 || rec.MaxSeq != 2 {
		t.Fatalf("recovered: %+v", rec)
	}
	// The snapshot file was re-installed; a second recovery still sees it.
	r.Close()
	_, rec2, err := Recover(dir, "m", SyncNone)
	if err != nil || !rec2.HasSnapshot || rec2.SnapshotSeq != 2 {
		t.Fatalf("snapshot not re-installed: %+v, %v", rec2, err)
	}
}

func TestRecoverRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "junk.log"), []byte("not a log at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(dir, "junk", SyncNone); err == nil {
		t.Fatal("Recover accepted a non-log file")
	}
}

// TestRewrite verifies explicit compaction drops garbage, keeps every
// live tile frame readable and every surviving batch replayable, and
// survives a subsequent recover — the atomic-replace contract.
func TestRewrite(t *testing.T) {
	dir := t.TempDir()
	s := mustCreate(t, dir, "m")
	rng := rand.New(rand.NewSource(10))
	want := map[TileRef][]voxel.Leaf{}
	for i := 0; i < 12; i++ {
		corner := voxel.Key{X: uint16(i * 8)}
		// Spill twice: the first frame of each tile becomes garbage.
		if err := s.Spill(corner, 13, tileLeaves(rng, corner, 30)); err != nil {
			t.Fatal(err)
		}
		leaves := tileLeaves(rng, corner, 10)
		if err := s.Spill(corner, 13, leaves); err != nil {
			t.Fatal(err)
		}
		want[TileRef{Key: corner, Depth: 13}] = leaves
	}
	// WAL frames interleave with spills and must survive the rewrite.
	wantBatch := obsBatch(rng, 15)
	if err := s.AppendBatch(1, wantBatch); err != nil {
		t.Fatal(err)
	}
	// Release some tiles: more garbage.
	for i := 0; i < 4; i++ {
		corner := voxel.Key{X: uint16(i * 8)}
		s.Release(corner, 13)
		delete(want, TileRef{Key: corner, Depth: 13})
	}
	before := s.Stats()
	if before.LiveBytes+before.WALBytes >= before.BytesOnDisk-int64(len(fileMagic)) {
		t.Fatal("test setup produced no garbage")
	}
	if err := s.Rewrite(); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.BytesOnDisk != after.LiveBytes+after.WALBytes+int64(len(fileMagic)) {
		t.Fatalf("garbage survived rewrite: %+v", after)
	}
	if after.Rewrites == 0 {
		t.Fatal("Rewrites counter not bumped")
	}
	for id, leaves := range want {
		if got, err := s.Load(id.Key, id.Depth, nil); err != nil || !reflect.DeepEqual(got, leaves) {
			t.Fatalf("tile %v unreadable after rewrite: %v", id.Key, err)
		}
	}
	if err := s.ReplayBatches(func(seq uint64, batch []raytrace.Voxel) error {
		if seq != 1 || !reflect.DeepEqual(batch, wantBatch) {
			t.Fatal("batch frame corrupted by rewrite")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Post-rewrite appends and recovery still work.
	if err := s.Spill(voxel.Key{Y: 8}, 13, tileLeaves(rng, voxel.Key{Y: 8}, 5)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendBatch(2, obsBatch(rng, 5)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	_, rec, err := Recover(dir, "m", SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Batches != 2 || rec.MaxSeq != 2 {
		t.Fatalf("recover after rewrite: %+v", rec)
	}
	if _, err := os.Stat(filepath.Join(dir, "m.log.rewrite")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("temp rewrite file left behind")
	}
}

// TestAutoRewrite drives enough superseding spills that the automatic
// garbage threshold fires without an explicit Rewrite call.
func TestAutoRewrite(t *testing.T) {
	dir := t.TempDir()
	s := mustCreate(t, dir, "m")
	defer s.Close()
	rng := rand.New(rand.NewSource(11))
	corner := voxel.Key{X: 8}
	var last []voxel.Leaf
	for i := 0; i < 2000; i++ {
		last = tileLeaves(rng, corner, 50)
		if err := s.Spill(corner, 13, last); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Rewrites == 0 {
		t.Fatalf("auto rewrite never fired: %+v", st)
	}
	if st.BytesOnDisk > 2*(st.LiveBytes+rewriteFloor) {
		t.Fatalf("disk usage unbounded: %+v", st)
	}
	if got, err := s.Load(corner, 13, nil); err != nil || !reflect.DeepEqual(got, last) {
		t.Fatal("latest frame lost across auto rewrites")
	}
}

// TestSnapshotTriggersRewrite: committing a snapshot that retires a
// large WAL makes the retired bytes garbage; the commit itself compacts.
func TestSnapshotTriggersRewrite(t *testing.T) {
	dir := t.TempDir()
	s := mustCreate(t, dir, "m")
	defer s.Close()
	rng := rand.New(rand.NewSource(12))
	var seq uint64
	for s.BytesOnDisk() < 3*rewriteFloor {
		seq++
		if err := s.AppendBatch(seq, obsBatch(rng, 200)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.WriteSnapshot(seq, bytes.NewReader([]byte("snap"))); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Rewrites == 0 {
		t.Fatalf("snapshot commit did not compact a fully retired WAL: %+v", st)
	}
	if st.WALBytes != 0 || st.BytesOnDisk != int64(len(fileMagic)) {
		t.Fatalf("retired WAL survived: %+v", st)
	}
}

func TestSyncEveryBatch(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, "m", SyncEveryBatch)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(13))
	for seq := uint64(1); seq <= 3; seq++ {
		if err := s.AppendBatch(seq, obsBatch(rng, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.WALBatches != 3 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestTilesOrderAndStats(t *testing.T) {
	dir := t.TempDir()
	s := mustCreate(t, dir, "m")
	defer s.Close()
	rng := rand.New(rand.NewSource(14))
	corners := []voxel.Key{{X: 24}, {X: 8, Y: 8}, {}, {Y: 16, Z: 8}}
	for _, c := range corners {
		if err := s.Spill(c, 13, tileLeaves(rng, c, 3)); err != nil {
			t.Fatal(err)
		}
	}
	tiles := s.Tiles()
	if len(tiles) != len(corners) {
		t.Fatalf("Tiles() = %d entries", len(tiles))
	}
	if !sort.SliceIsSorted(tiles, func(i, j int) bool {
		return tiles[i].Key.Morton() < tiles[j].Key.Morton()
	}) {
		t.Fatal("Tiles() not in Morton order")
	}
	st := s.Stats()
	if st.SpilledTiles != 4 || st.Spills != 4 || st.LiveBytes <= 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.BytesOnDisk != s.BytesOnDisk() {
		t.Fatal("Stats/BytesOnDisk disagree")
	}
}

func TestClosedStoreErrors(t *testing.T) {
	dir := t.TempDir()
	s := mustCreate(t, dir, "m")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second Close should be a no-op")
	}
	if err := s.Spill(voxel.Key{}, 13, nil); err == nil {
		t.Fatal("Spill on closed store succeeded")
	}
	if _, err := s.Load(voxel.Key{}, 13, nil); err == nil {
		t.Fatal("Load on closed store succeeded")
	}
	if err := s.Rewrite(); err == nil {
		t.Fatal("Rewrite on closed store succeeded")
	}
	if err := s.AppendBatch(1, nil); err == nil {
		t.Fatal("AppendBatch on closed store succeeded")
	}
	if err := s.WriteSnapshot(1, bytes.NewReader(nil)); err == nil {
		t.Fatal("WriteSnapshot on closed store succeeded")
	}
}

func TestLRU(t *testing.T) {
	l := NewLRU()
	k := func(x int) voxel.Key { return voxel.Key{X: uint16(x)} }
	if _, ok := l.Oldest(); ok {
		t.Fatal("empty LRU has an oldest")
	}
	for i := 0; i < 5; i++ {
		l.Touch(k(i))
	}
	if l.Len() != 5 {
		t.Fatalf("Len = %d", l.Len())
	}
	if o, _ := l.Oldest(); o != k(0) {
		t.Fatalf("Oldest = %v", o)
	}
	l.Touch(k(0)) // refresh
	if o, _ := l.Oldest(); o != k(1) {
		t.Fatalf("Oldest after refresh = %v", o)
	}
	var order []voxel.Key
	l.Each(func(key voxel.Key) bool { order = append(order, key); return true })
	wantOrder := []voxel.Key{k(1), k(2), k(3), k(4), k(0)}
	if !reflect.DeepEqual(order, wantOrder) {
		t.Fatalf("Each order = %v, want %v", order, wantOrder)
	}
	l.Remove(k(2))
	l.Remove(k(2)) // double remove is a no-op
	if l.Len() != 4 || l.Contains(k(2)) {
		t.Fatal("Remove failed")
	}
	// Recycled slots: remove everything, re-add, arena must not grow.
	for _, key := range wantOrder {
		l.Remove(key)
	}
	grew := len(l.nodes)
	for i := 10; i < 15; i++ {
		l.Touch(k(i))
	}
	if len(l.nodes) != grew {
		t.Fatalf("arena grew %d -> %d despite free list", grew, len(l.nodes))
	}
	// Early stop.
	seen := 0
	l.Each(func(voxel.Key) bool { seen++; return seen < 2 })
	if seen != 2 {
		t.Fatalf("Each early stop visited %d", seen)
	}
}
