package durable

import "octocache/internal/voxel"

// LRU tracks resident tiles in recency order so the window can pick
// spill victims. It is an intrusive doubly-linked list over a node
// arena with a free list, mirroring the octree's handle-arena style:
// Touch on an already-resident tile is pointer surgery on recycled
// slots, so the steady-state insert path allocates nothing.
//
// LRU is not safe for concurrent use; the engine mutates it only under
// its write lock.
type LRU struct {
	nodes []lruNode
	index map[voxel.Key]int32
	head  int32 // most recently used
	tail  int32 // least recently used
	free  int32
}

type lruNode struct {
	key        voxel.Key
	prev, next int32
}

const nilLRU int32 = -1

// NewLRU returns an empty recency list.
func NewLRU() *LRU {
	return &LRU{
		index: make(map[voxel.Key]int32),
		head:  nilLRU,
		tail:  nilLRU,
		free:  nilLRU,
	}
}

// Len returns the number of tracked tiles.
func (l *LRU) Len() int { return len(l.index) }

// Touch marks the tile most recently used, inserting it if absent.
func (l *LRU) Touch(k voxel.Key) {
	if h, ok := l.index[k]; ok {
		if l.head == h {
			return
		}
		l.unlink(h)
		l.pushFront(h)
		return
	}
	h := l.alloc(k)
	l.index[k] = h
	l.pushFront(h)
}

// Contains reports whether the tile is tracked.
func (l *LRU) Contains(k voxel.Key) bool {
	_, ok := l.index[k]
	return ok
}

// Remove drops the tile from the list (no-op if absent).
func (l *LRU) Remove(k voxel.Key) {
	h, ok := l.index[k]
	if !ok {
		return
	}
	delete(l.index, k)
	l.unlink(h)
	l.nodes[h].next = l.free
	l.free = h
}

// Oldest returns the least recently used tile, or ok=false when empty.
func (l *LRU) Oldest() (voxel.Key, bool) {
	if l.tail == nilLRU {
		return voxel.Key{}, false
	}
	return l.nodes[l.tail].key, true
}

// Each visits tiles oldest-first. fn must not mutate the LRU; collect
// victims and Remove them after the walk. Returning false stops early.
func (l *LRU) Each(fn func(voxel.Key) bool) {
	for h := l.tail; h != nilLRU; h = l.nodes[h].prev {
		if !fn(l.nodes[h].key) {
			return
		}
	}
}

// LRUIter walks the list oldest-first without a closure, so hot eviction
// scans stay allocation-free. The LRU must not be mutated mid-walk.
type LRUIter struct {
	l *LRU
	h int32
}

// IterOldest starts an oldest-first walk.
func (l *LRU) IterOldest() LRUIter { return LRUIter{l: l, h: l.tail} }

// Next returns the next tile, or ok=false when the walk is done.
func (it *LRUIter) Next() (voxel.Key, bool) {
	if it.h == nilLRU {
		return voxel.Key{}, false
	}
	k := it.l.nodes[it.h].key
	it.h = it.l.nodes[it.h].prev
	return k, true
}

func (l *LRU) alloc(k voxel.Key) int32 {
	if l.free != nilLRU {
		h := l.free
		l.free = l.nodes[h].next
		l.nodes[h] = lruNode{key: k, prev: nilLRU, next: nilLRU}
		return h
	}
	l.nodes = append(l.nodes, lruNode{key: k, prev: nilLRU, next: nilLRU})
	return int32(len(l.nodes) - 1)
}

func (l *LRU) pushFront(h int32) {
	n := &l.nodes[h]
	n.prev = nilLRU
	n.next = l.head
	if l.head != nilLRU {
		l.nodes[l.head].prev = h
	}
	l.head = h
	if l.tail == nilLRU {
		l.tail = h
	}
}

func (l *LRU) unlink(h int32) {
	n := &l.nodes[h]
	if n.prev != nilLRU {
		l.nodes[n.prev].next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nilLRU {
		l.nodes[n.next].prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = nilLRU, nilLRU
}
