package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"octocache/internal/raytrace"
	"octocache/internal/voxel"
)

// snapMagic begins every snapshot file. The header is magic, the batch
// sequence the snapshot covers, the payload length, and a CRC over
// header-sans-CRC + payload.
const (
	snapMagic    = "OCSN0001"
	snapHdrBytes = 8 + 8 + 8 + 4
)

// AppendBatch appends one admitted observation batch as a WAL frame.
// seq is the engine's announced batch counter; recovery replays frames
// in contiguous ascending seq order. The append is zero-allocation in
// steady state (the frame is encoded into a reused scratch buffer), and
// under SyncEveryBatch the log is fsynced before return. Empty batches
// must not be logged — they would burn a sequence number for nothing.
func (s *Store) AppendBatch(seq uint64, batch []raytrace.Voxel) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("durable: store is closed")
	}
	need := int(batchFrameSize(uint32(len(batch))))
	if cap(s.buf) < need {
		s.buf = make([]byte, need)
	}
	buf := s.buf[:need]
	binary.LittleEndian.PutUint32(buf[0:4], batchMagic)
	binary.LittleEndian.PutUint64(buf[4:12], seq)
	binary.LittleEndian.PutUint32(buf[12:16], uint32(len(batch)))
	p := buf[frameHdrBytes:]
	for i, v := range batch {
		r := p[i*obsBytes:]
		binary.LittleEndian.PutUint16(r[0:2], v.Key.X)
		binary.LittleEndian.PutUint16(r[2:4], v.Key.Y)
		binary.LittleEndian.PutUint16(r[4:6], v.Key.Z)
		if v.Occupied {
			r[6] = 1
		} else {
			r[6] = 0
		}
	}
	s.sealFrame(buf)
	if err := s.appendFrame(need); err != nil {
		return err
	}
	if s.sync == SyncEveryBatch {
		if err := s.f.Sync(); err != nil {
			return err
		}
	}
	s.wal = append(s.wal, batchRef{off: s.size, count: uint32(len(batch)), seq: seq})
	s.size += int64(need)
	s.walLive += int64(need)
	s.stats.WALBatches++
	if seq > s.maxSeq {
		s.maxSeq = seq
	}
	return nil
}

// ReplayBatches visits the surviving WAL frames past the last snapshot
// in ascending sequence order, decoding each into a buffer reused across
// calls — fn must not retain the slice. Every frame's CRC was verified
// during Recover; the payload is re-read here without re-verification
// (nothing has written between Recover and replay).
func (s *Store) ReplayBatches(fn func(seq uint64, batch []raytrace.Voxel) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("durable: store is closed")
	}
	var scratch []raytrace.Voxel
	for _, b := range s.wal {
		need := int(b.count) * obsBytes
		if cap(s.buf) < need {
			s.buf = make([]byte, need)
		}
		buf := s.buf[:need]
		if _, err := s.f.ReadAt(buf, b.off+frameHdrBytes); err != nil {
			return fmt.Errorf("durable: reading batch %d: %w", b.seq, err)
		}
		if cap(scratch) < int(b.count) {
			scratch = make([]raytrace.Voxel, b.count)
		}
		batch := scratch[:b.count]
		for i := range batch {
			r := buf[i*obsBytes:]
			batch[i] = raytrace.Voxel{
				Key: voxel.Key{
					X: binary.LittleEndian.Uint16(r[0:2]),
					Y: binary.LittleEndian.Uint16(r[2:4]),
					Z: binary.LittleEndian.Uint16(r[4:6]),
				},
				Occupied: r[6] != 0,
			}
		}
		if err := fn(b.seq, batch); err != nil {
			return err
		}
	}
	return nil
}

// crcWriter streams a payload to w while accumulating its CRC and size.
type crcWriter struct {
	w   io.Writer
	crc uint32
	n   int64
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	c.n += int64(n)
	return n, err
}

// WriteSnapshot commits a consistent-cut snapshot covering every batch
// with sequence ≤ seq. The payload (whatever src writes — the engine
// streams the map's canonical .bt serialization) goes to a temp file
// that is fsynced, renamed over the snapshot, and made durable with a
// directory fsync — exactly one valid snapshot exists at every instant.
// On commit the WAL frames the snapshot covers are retired; their bytes
// become garbage until the next rewrite, which the commit triggers when
// warranted.
//
// The payload streams to the temp file WITHOUT the store lock, so
// appends and spills keep flowing while a background checkpoint writes;
// only the final install (rename + retire) synchronizes. At most one
// WriteSnapshot may be in flight at a time — the engine's checkpoint
// machinery guarantees it.
func (s *Store) WriteSnapshot(seq uint64, src io.WriterTo) error {
	if s.closedQuick() {
		return fmt.Errorf("durable: store is closed")
	}
	if err := s.writeSnapshotTemp(seq, func(w io.Writer) error {
		_, err := src.WriteTo(w)
		return err
	}); err != nil {
		return err
	}
	return s.installSnapshot(seq)
}

func (s *Store) closedQuick() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f == nil
}

// installSnapshot atomically renames the written temp file over the
// snapshot and retires the WAL frames it covers.
func (s *Store) installSnapshot(seq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tmpPath := s.snapPath + ".tmp"
	if s.f == nil {
		os.Remove(tmpPath)
		return fmt.Errorf("durable: store is closed")
	}
	if err := os.Rename(tmpPath, s.snapPath); err != nil {
		os.Remove(tmpPath)
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	s.commitSnapshotLocked(seq)
	return s.maybeRewriteLocked()
}

// restoreSnapshot re-materializes a snapshot payload recovered from disk
// (used when the log was lost but the snapshot survived).
func (s *Store) restoreSnapshot(seq uint64, payload []byte) error {
	if err := s.writeSnapshotTemp(seq, func(w io.Writer) error {
		_, err := w.Write(payload)
		return err
	}); err != nil {
		return err
	}
	return s.installSnapshot(seq)
}

// writeSnapshotTemp writes the snapshot temp file: header with a
// placeholder CRC, streamed payload, patched header, fsync. The caller
// installs it with installSnapshot.
func (s *Store) writeSnapshotTemp(seq uint64, emit func(io.Writer) error) error {
	tmpPath := s.snapPath + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	cleanup := func(e error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return e
	}
	var hdr [snapHdrBytes]byte
	copy(hdr[0:8], snapMagic)
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	if _, err := tmp.Write(hdr[:]); err != nil {
		return cleanup(err)
	}
	cw := &crcWriter{w: tmp, crc: crc32.ChecksumIEEE(hdr[0:16])}
	if err := emit(cw); err != nil {
		return cleanup(err)
	}
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(cw.n))
	// The length is covered by the CRC too: fold it in after the payload
	// so the CRC order is header[0:16], payload, length.
	crc := crc32.Update(cw.crc, crc32.IEEETable, hdr[16:24])
	binary.LittleEndian.PutUint32(hdr[24:28], crc)
	if _, err := tmp.WriteAt(hdr[:], 0); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	return tmp.Close()
}

// commitSnapshotLocked retires the WAL frames a committed snapshot
// covers.
func (s *Store) commitSnapshotLocked(seq uint64) {
	if seq > s.snapSeq {
		s.snapSeq = seq
	}
	kept := s.wal[:0]
	for _, b := range s.wal {
		if b.seq <= seq {
			s.walLive -= batchFrameSize(b.count)
			continue
		}
		kept = append(kept, b)
	}
	s.wal = kept
	if seq > s.maxSeq {
		s.maxSeq = seq
	}
	s.stats.Snapshots++
}

// readSnapshotFile loads and verifies a snapshot file. A missing file
// returns a nil payload; a present-but-corrupt file is an error (the
// atomic install protocol means corruption is real damage, not a crash
// artifact, and silently dropping it would silently lose the cut).
func readSnapshotFile(path string) (uint64, []byte, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil, nil
	}
	if err != nil {
		return 0, nil, err
	}
	if len(raw) < snapHdrBytes || string(raw[0:8]) != snapMagic {
		return 0, nil, fmt.Errorf("durable: %s is not an octocache snapshot", path)
	}
	seq := binary.LittleEndian.Uint64(raw[8:16])
	n := binary.LittleEndian.Uint64(raw[16:24])
	if n != uint64(len(raw)-snapHdrBytes) {
		return 0, nil, fmt.Errorf("durable: snapshot %s length mismatch", path)
	}
	crc := crc32.ChecksumIEEE(raw[0:16])
	crc = crc32.Update(crc, crc32.IEEETable, raw[snapHdrBytes:])
	crc = crc32.Update(crc, crc32.IEEETable, raw[16:24])
	if crc != binary.LittleEndian.Uint32(raw[24:28]) {
		return 0, nil, fmt.Errorf("durable: snapshot %s failed CRC check", path)
	}
	return seq, raw[snapHdrBytes:], nil
}
