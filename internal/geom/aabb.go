package geom

import "math"

// AABB is an axis-aligned bounding box with inclusive Min and Max corners.
type AABB struct {
	Min, Max Vec3
}

// Box constructs an AABB from two arbitrary corners, normalizing so that
// Min ≤ Max component-wise.
func Box(a, b Vec3) AABB {
	return AABB{Min: a.Min(b), Max: a.Max(b)}
}

// BoxAt constructs an AABB centered at c with half-extents h.
func BoxAt(c, h Vec3) AABB {
	return AABB{Min: c.Sub(h), Max: c.Add(h)}
}

// Center returns the box center.
func (b AABB) Center() Vec3 { return b.Min.Add(b.Max).Scale(0.5) }

// Size returns the box edge lengths.
func (b AABB) Size() Vec3 { return b.Max.Sub(b.Min) }

// Contains reports whether p lies inside or on the boundary of b.
func (b AABB) Contains(p Vec3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// Intersects reports whether b and o overlap (touching counts).
func (b AABB) Intersects(o AABB) bool {
	return b.Min.X <= o.Max.X && b.Max.X >= o.Min.X &&
		b.Min.Y <= o.Max.Y && b.Max.Y >= o.Min.Y &&
		b.Min.Z <= o.Max.Z && b.Max.Z >= o.Min.Z
}

// Expand returns b grown by m on every side.
func (b AABB) Expand(m float64) AABB {
	d := Vec3{m, m, m}
	return AABB{Min: b.Min.Sub(d), Max: b.Max.Add(d)}
}

// Union returns the smallest AABB containing both b and o.
func (b AABB) Union(o AABB) AABB {
	return AABB{Min: b.Min.Min(o.Min), Max: b.Max.Max(o.Max)}
}

// RayIntersect computes the entry and exit parameters of the ray
// origin + t*dir against the box using the slab method. It returns
// (tmin, tmax, true) when the ray hits the box with tmax >= max(tmin, 0);
// otherwise ok is false. dir need not be normalized.
func (b AABB) RayIntersect(origin, dir Vec3) (tmin, tmax float64, ok bool) {
	tmin, tmax = math.Inf(-1), math.Inf(1)
	bounds := [3][2]float64{
		{b.Min.X, b.Max.X},
		{b.Min.Y, b.Max.Y},
		{b.Min.Z, b.Max.Z},
	}
	o := [3]float64{origin.X, origin.Y, origin.Z}
	d := [3]float64{dir.X, dir.Y, dir.Z}
	for i := 0; i < 3; i++ {
		if d[i] == 0 {
			if o[i] < bounds[i][0] || o[i] > bounds[i][1] {
				return 0, 0, false
			}
			continue
		}
		t0 := (bounds[i][0] - o[i]) / d[i]
		t1 := (bounds[i][1] - o[i]) / d[i]
		if t0 > t1 {
			t0, t1 = t1, t0
		}
		if t0 > tmin {
			tmin = t0
		}
		if t1 < tmax {
			tmax = t1
		}
		if tmin > tmax {
			return 0, 0, false
		}
	}
	if tmax < 0 {
		return 0, 0, false
	}
	return tmin, tmax, true
}
