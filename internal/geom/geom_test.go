package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestVecBasics(t *testing.T) {
	a := V(1, 2, 3)
	b := V(4, -5, 6)
	if got := a.Add(b); got != V(5, -3, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V(-3, 7, -3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); !almostEq(got, 4-10+18) {
		t.Errorf("Dot = %v", got)
	}
	if got := V(1, 0, 0).Cross(V(0, 1, 0)); got != V(0, 0, 1) {
		t.Errorf("Cross = %v", got)
	}
	if got := V(3, 4, 0).Norm(); !almostEq(got, 5) {
		t.Errorf("Norm = %v", got)
	}
	if got := V(0, 0, 0).Normalize(); got != V(0, 0, 0) {
		t.Errorf("Normalize(zero) = %v", got)
	}
}

func TestVecNormalizeUnit(t *testing.T) {
	f := func(x, y, z float64) bool {
		v := V(x, y, z)
		if v.Norm() == 0 || math.IsInf(v.Norm(), 0) || math.IsNaN(v.Norm()) {
			return true
		}
		return math.Abs(v.Normalize().Norm()-1) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVecLerp(t *testing.T) {
	a, b := V(0, 0, 0), V(10, -10, 4)
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
	mid := a.Lerp(b, 0.5)
	if !almostEq(mid.X, 5) || !almostEq(mid.Y, -5) || !almostEq(mid.Z, 2) {
		t.Errorf("Lerp(0.5) = %v", mid)
	}
}

func TestVecMinMaxAbs(t *testing.T) {
	a, b := V(1, -2, 3), V(-1, 5, 2)
	if got := a.Min(b); got != V(-1, -2, 2) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Max(b); got != V(1, 5, 3) {
		t.Errorf("Max = %v", got)
	}
	if got := a.Abs(); got != V(1, 2, 3) {
		t.Errorf("Abs = %v", got)
	}
}

func TestRotateZ(t *testing.T) {
	v := V(1, 0, 0).RotateZ(math.Pi / 2)
	if !almostEq(v.X, 0) || !almostEq(v.Y, 1) || !almostEq(v.Z, 0) {
		t.Errorf("RotateZ = %v", v)
	}
}

func TestPoseForward(t *testing.T) {
	p := Pose{Yaw: 0, Pitch: 0}
	if f := p.Forward(); !almostEq(f.X, 1) || !almostEq(f.Y, 0) || !almostEq(f.Z, 0) {
		t.Errorf("Forward level = %v", f)
	}
	p = Pose{Yaw: math.Pi / 2, Pitch: 0}
	if f := p.Forward(); !almostEq(f.X, 0) || !almostEq(f.Y, 1) {
		t.Errorf("Forward yawed = %v", f)
	}
	p = Pose{Pitch: math.Pi / 2}
	if f := p.Forward(); !almostEq(f.Z, 1) {
		t.Errorf("Forward up = %v", f)
	}
}

func TestPoseDirectionIsUnit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		p := Pose{
			Yaw:   rng.Float64()*2*math.Pi - math.Pi,
			Pitch: rng.Float64()*math.Pi - math.Pi/2,
		}
		d := p.Direction(rng.Float64()-0.5, rng.Float64()-0.5)
		if math.Abs(d.Norm()-1) > 1e-9 {
			t.Fatalf("Direction not unit: %v norm %v", d, d.Norm())
		}
	}
}

func TestAABBContains(t *testing.T) {
	b := Box(V(0, 0, 0), V(2, 2, 2))
	if !b.Contains(V(1, 1, 1)) {
		t.Error("center should be contained")
	}
	if !b.Contains(V(0, 0, 0)) || !b.Contains(V(2, 2, 2)) {
		t.Error("corners should be contained")
	}
	if b.Contains(V(2.001, 1, 1)) {
		t.Error("outside point contained")
	}
}

func TestAABBNormalizesCorners(t *testing.T) {
	b := Box(V(2, 2, 2), V(0, 0, 0))
	if b.Min != V(0, 0, 0) || b.Max != V(2, 2, 2) {
		t.Errorf("Box did not normalize corners: %+v", b)
	}
}

func TestAABBIntersects(t *testing.T) {
	a := Box(V(0, 0, 0), V(2, 2, 2))
	cases := []struct {
		b    AABB
		want bool
	}{
		{Box(V(1, 1, 1), V(3, 3, 3)), true},
		{Box(V(2, 2, 2), V(3, 3, 3)), true}, // touching counts
		{Box(V(2.1, 0, 0), V(3, 1, 1)), false},
		{Box(V(-1, -1, -1), V(3, 3, 3)), true}, // containment
	}
	for i, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("case %d: Intersects = %v want %v", i, got, c.want)
		}
	}
}

func TestAABBUnionExpand(t *testing.T) {
	a := Box(V(0, 0, 0), V(1, 1, 1))
	b := Box(V(2, -1, 0), V(3, 0, 5))
	u := a.Union(b)
	if u.Min != V(0, -1, 0) || u.Max != V(3, 1, 5) {
		t.Errorf("Union = %+v", u)
	}
	e := a.Expand(0.5)
	if e.Min != V(-0.5, -0.5, -0.5) || e.Max != V(1.5, 1.5, 1.5) {
		t.Errorf("Expand = %+v", e)
	}
}

func TestRayIntersectHit(t *testing.T) {
	b := Box(V(1, -1, -1), V(2, 1, 1))
	tmin, tmax, ok := b.RayIntersect(V(0, 0, 0), V(1, 0, 0))
	if !ok {
		t.Fatal("expected hit")
	}
	if !almostEq(tmin, 1) || !almostEq(tmax, 2) {
		t.Errorf("tmin=%v tmax=%v", tmin, tmax)
	}
}

func TestRayIntersectMiss(t *testing.T) {
	b := Box(V(1, -1, -1), V(2, 1, 1))
	if _, _, ok := b.RayIntersect(V(0, 5, 0), V(1, 0, 0)); ok {
		t.Error("parallel offset ray should miss")
	}
	// Ray pointing away from box.
	if _, _, ok := b.RayIntersect(V(0, 0, 0), V(-1, 0, 0)); ok {
		t.Error("ray pointing away should miss")
	}
}

func TestRayIntersectFromInside(t *testing.T) {
	b := Box(V(-1, -1, -1), V(1, 1, 1))
	tmin, tmax, ok := b.RayIntersect(V(0, 0, 0), V(0, 0, 1))
	if !ok {
		t.Fatal("expected hit from inside")
	}
	if tmin > 0 || !almostEq(tmax, 1) {
		t.Errorf("tmin=%v tmax=%v", tmin, tmax)
	}
}

func TestRayIntersectZeroComponent(t *testing.T) {
	b := Box(V(-1, -1, 5), V(1, 1, 6))
	// Direction has zero X and Y; origin inside the XY slab.
	if _, _, ok := b.RayIntersect(V(0, 0, 0), V(0, 0, 1)); !ok {
		t.Error("vertical ray should hit")
	}
	// Origin outside the X slab with zero X direction.
	if _, _, ok := b.RayIntersect(V(5, 0, 0), V(0, 0, 1)); ok {
		t.Error("vertical ray outside slab should miss")
	}
}

// Property: any point sampled on the ray segment strictly between tmin and
// tmax lies inside the box.
func TestRayIntersectPointsInside(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := Box(V(-2, -3, -1), V(4, 2, 5))
	for i := 0; i < 500; i++ {
		origin := V(rng.Float64()*20-10, rng.Float64()*20-10, rng.Float64()*20-10)
		dir := V(rng.Float64()*2-1, rng.Float64()*2-1, rng.Float64()*2-1)
		if dir.Norm() < 1e-3 {
			continue
		}
		tmin, tmax, ok := b.RayIntersect(origin, dir)
		if !ok {
			continue
		}
		lo := math.Max(tmin, 0)
		for _, f := range []float64{0.25, 0.5, 0.75} {
			p := origin.Add(dir.Scale(lo + f*(tmax-lo)))
			if !b.Expand(1e-9).Contains(p) {
				t.Fatalf("point %v at t in [%v,%v] not inside box", p, tmin, tmax)
			}
		}
	}
}
