// Package geom provides the small set of 3D geometry primitives shared by
// the mapping, sensing, and navigation subsystems: vectors, axis-aligned
// boxes, poses, and ray/box intersection.
package geom

import (
	"fmt"
	"math"
)

// Vec3 is a point or direction in 3D space, in meters.
type Vec3 struct {
	X, Y, Z float64
}

// V is shorthand for constructing a Vec3.
func V(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Add returns v + o.
func (v Vec3) Add(o Vec3) Vec3 { return Vec3{v.X + o.X, v.Y + o.Y, v.Z + o.Z} }

// Sub returns v - o.
func (v Vec3) Sub(o Vec3) Vec3 { return Vec3{v.X - o.X, v.Y - o.Y, v.Z - o.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product v · o.
func (v Vec3) Dot(o Vec3) float64 { return v.X*o.X + v.Y*o.Y + v.Z*o.Z }

// Cross returns the cross product v × o.
func (v Vec3) Cross(o Vec3) Vec3 {
	return Vec3{
		v.Y*o.Z - v.Z*o.Y,
		v.Z*o.X - v.X*o.Z,
		v.X*o.Y - v.Y*o.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// NormSq returns the squared Euclidean length of v.
func (v Vec3) NormSq() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between v and o.
func (v Vec3) Dist(o Vec3) float64 { return v.Sub(o).Norm() }

// Normalize returns v scaled to unit length. The zero vector is returned
// unchanged.
func (v Vec3) Normalize() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Lerp returns the linear interpolation between v and o at parameter t,
// where t=0 yields v and t=1 yields o.
func (v Vec3) Lerp(o Vec3, t float64) Vec3 {
	return v.Add(o.Sub(v).Scale(t))
}

// Min returns the component-wise minimum of v and o.
func (v Vec3) Min(o Vec3) Vec3 {
	return Vec3{math.Min(v.X, o.X), math.Min(v.Y, o.Y), math.Min(v.Z, o.Z)}
}

// Max returns the component-wise maximum of v and o.
func (v Vec3) Max(o Vec3) Vec3 {
	return Vec3{math.Max(v.X, o.X), math.Max(v.Y, o.Y), math.Max(v.Z, o.Z)}
}

// Abs returns the component-wise absolute value of v.
func (v Vec3) Abs() Vec3 {
	return Vec3{math.Abs(v.X), math.Abs(v.Y), math.Abs(v.Z)}
}

// String implements fmt.Stringer.
func (v Vec3) String() string {
	return fmt.Sprintf("(%.3f, %.3f, %.3f)", v.X, v.Y, v.Z)
}

// RotateZ returns v rotated by yaw radians around the +Z axis.
func (v Vec3) RotateZ(yaw float64) Vec3 {
	s, c := math.Sin(yaw), math.Cos(yaw)
	return Vec3{v.X*c - v.Y*s, v.X*s + v.Y*c, v.Z}
}

// Pose is a sensor or vehicle pose: a position plus a yaw (rotation about
// +Z) and pitch (rotation about the body +Y axis, positive looking up).
// Roll is not modeled; the simulated sensors in this repository are
// yaw/pitch gimbaled, which matches how MAVBench mounts its depth camera.
type Pose struct {
	Position Vec3
	Yaw      float64 // radians, 0 = +X
	Pitch    float64 // radians, 0 = level, positive = up
}

// Forward returns the unit vector the pose is facing.
func (p Pose) Forward() Vec3 {
	cp := math.Cos(p.Pitch)
	return Vec3{
		math.Cos(p.Yaw) * cp,
		math.Sin(p.Yaw) * cp,
		math.Sin(p.Pitch),
	}
}

// Direction returns the unit ray direction for a sensor ray offset from
// the pose's facing by (dYaw, dPitch) radians.
func (p Pose) Direction(dYaw, dPitch float64) Vec3 {
	yaw := p.Yaw + dYaw
	pitch := p.Pitch + dPitch
	cp := math.Cos(pitch)
	return Vec3{
		math.Cos(yaw) * cp,
		math.Sin(yaw) * cp,
		math.Sin(pitch),
	}
}
