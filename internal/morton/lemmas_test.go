package morton

// Property tests for the lemmas behind the paper's §4.3 optimality
// theorem (Lemmas A2–A6 of the supplementary material). The tree model
// is the one the proofs use: a perfect octree of depth `depth` whose
// leaves are identified by their Morton codes; A(a,b) is the closest
// common ancestor and D(a,b) = 2·(depth − depth(A(a,b))) the leaf-to-leaf
// tree distance.

import (
	"math/rand"
	"sort"
	"testing"
)

const lemmaDepth = 3 // 8x8x8 leaves: big enough to be non-trivial

// ancestorID identifies A(a,b) by (depth, common Morton prefix).
func ancestorID(a, b uint64, depth int) [2]uint64 {
	d := CommonAncestorDepth(a, b, depth)
	// The ancestor's identity is its depth plus the leading 3d bits.
	prefix := a >> uint(3*(depth-d))
	return [2]uint64{uint64(d), prefix}
}

func randomLeaves(rng *rand.Rand, n int) []uint64 {
	seen := map[uint64]bool{}
	var out []uint64
	for len(out) < n {
		c := Encode(uint16(rng.Intn(8)), uint16(rng.Intn(8)), uint16(rng.Intn(8)))
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// Lemma A2: for any three leaves, the three pairwise closest common
// ancestors take at most two distinct values.
func TestLemmaA2(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 2000; trial++ {
		ls := randomLeaves(rng, 3)
		anc := map[[2]uint64]bool{
			ancestorID(ls[0], ls[1], lemmaDepth): true,
			ancestorID(ls[0], ls[2], lemmaDepth): true,
			ancestorID(ls[1], ls[2], lemmaDepth): true,
		}
		if len(anc) > 2 {
			t.Fatalf("A2 violated for %v: %d distinct ancestors", ls, len(anc))
		}
	}
}

// Lemma A3: for any three leaves, the three pairwise distances take at
// most two distinct values (and the two smaller ones are equal).
func TestLemmaA3(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		ls := randomLeaves(rng, 3)
		ds := []int{
			Distance(ls[0], ls[1], lemmaDepth),
			Distance(ls[0], ls[2], lemmaDepth),
			Distance(ls[1], ls[2], lemmaDepth),
		}
		uniq := map[int]bool{ds[0]: true, ds[1]: true, ds[2]: true}
		if len(uniq) > 2 {
			t.Fatalf("A3 violated for %v: distances %v", ls, ds)
		}
		// The ultrametric refinement: the largest distance appears at
		// least twice.
		sort.Ints(ds)
		if ds[2] != ds[1] {
			t.Fatalf("A3 (ultrametric) violated for %v: distances %v", ls, ds)
		}
	}
}

// descendants enumerates the leaves under the internal node with the
// given Morton prefix at the given depth.
func descendants(prefix uint64, nodeDepth int) []uint64 {
	shift := uint(3 * (lemmaDepth - nodeDepth))
	base := prefix << shift
	n := 1 << shift
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = base | uint64(i)
	}
	return out
}

// Lemma A4: for two distinct same-level internal nodes a and b, the
// distance between any descendant leaf of a and any of b is one constant,
// strictly larger than any intra-a leaf distance.
func TestLemmaA4(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		nodeDepth := 1 + rng.Intn(lemmaDepth-1) // internal, below root
		na := uint64(rng.Intn(1 << (3 * nodeDepth)))
		nb := uint64(rng.Intn(1 << (3 * nodeDepth)))
		if na == nb {
			continue
		}
		da := descendants(na, nodeDepth)
		db := descendants(nb, nodeDepth)
		cross := -1
		for _, x := range da {
			for _, y := range db {
				d := Distance(x, y, lemmaDepth)
				if cross == -1 {
					cross = d
				} else if d != cross {
					t.Fatalf("A4 violated: cross distances %d and %d", cross, d)
				}
			}
		}
		for i, x := range da {
			for _, y := range da[i+1:] {
				if d := Distance(x, y, lemmaDepth); d >= cross {
					t.Fatalf("A4 violated: intra distance %d >= cross %d", d, cross)
				}
			}
		}
	}
}

// bruteForceOptimal returns the minimum F over all permutations and every
// permutation achieving it.
func bruteForceOptimal(leaves []uint64) (int, [][]uint64) {
	best := 1 << 30
	var optima [][]uint64
	perm := append([]uint64(nil), leaves...)
	var rec func(k int)
	rec = func(k int) {
		if k == len(perm) {
			f := F(perm, lemmaDepth)
			if f < best {
				best = f
				optima = optima[:0]
			}
			if f == best {
				optima = append(optima, append([]uint64(nil), perm...))
			}
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best, optima
}

// Lemma A5/A6 (combined check): in every F-optimal ordering of a leaf
// set, the chosen descendants of any internal node appear contiguously
// (A6), which implies the descendants of two sibling subtrees are
// adjacent in at most one place (A5).
func TestLemmaA6OptimalSequencesGroupSubtrees(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 12; trial++ {
		n := 4 + rng.Intn(3) // 4..6 leaves keeps n! manageable
		leaves := randomLeaves(rng, n)
		_, optima := bruteForceOptimal(leaves)
		if len(optima) == 0 {
			t.Fatal("no optimal sequence found")
		}
		for _, seq := range optima {
			for nodeDepth := 1; nodeDepth < lemmaDepth; nodeDepth++ {
				// Group positions by the ancestor prefix at this depth.
				positions := map[uint64][]int{}
				for pos, leaf := range seq {
					prefix := leaf >> uint(3*(lemmaDepth-nodeDepth))
					positions[prefix] = append(positions[prefix], pos)
				}
				for prefix, ps := range positions {
					if len(ps) < 2 {
						continue
					}
					lo, hi := ps[0], ps[0]
					for _, p := range ps[1:] {
						if p < lo {
							lo = p
						}
						if p > hi {
							hi = p
						}
					}
					if hi-lo != len(ps)-1 {
						t.Fatalf("A6 violated: subtree %x at depth %d scattered over [%d,%d] with %d members in %v",
							prefix, nodeDepth, lo, hi, len(ps), seq)
					}
				}
			}
		}
	}
}

// The main theorem restated over the lemmas: ascending Morton order
// attains the brute-force optimum (already covered in morton_test.go for
// the ordering itself; here we also confirm every optimum has the same F
// as Morton order, i.e. Morton is "one of the optimal sequences").
func TestMainTheoremViaLemmas(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		leaves := randomLeaves(rng, 5)
		best, _ := bruteForceOptimal(leaves)
		sorted := append([]uint64(nil), leaves...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		if f := F(sorted, lemmaDepth); f != best {
			t.Fatalf("Morton order F=%d, optimum %d for %v", f, best, leaves)
		}
	}
}
