// Package morton implements 3D Morton (Z-order) codes for 16-bit voxel
// coordinates, as used by OctoCache to index its cache buckets and to
// order evicted voxels before octree insertion (paper §4.3).
//
// A Morton code interleaves the bits of the three coordinates so that
// codes that are numerically close are spatially close and — crucially
// for OctoCache — share long root paths in an octree: the number of
// leading common 3-bit groups of two codes equals the depth of the
// voxels' closest common ancestor. The package also provides the paper's
// locality functional F(S) (the sum of tree distances between adjacent
// elements of a voxel sequence), which the Fig 10 experiment correlates
// with octree insertion speed.
//
// Bit layout: bit i of x maps to output bit 3i, y to 3i+1, z to 3i+2.
// This reproduces the paper's worked example: (x,y,z)=(1,5,3) → M=167.
package morton

import "math/bits"

// CoordBits is the number of bits encoded per coordinate axis. It matches
// the 16-level octree used by OctoMap, so a full Morton code occupies
// 3*CoordBits = 48 bits of a uint64.
const CoordBits = 16

// dilate1By2 spreads the low 16 bits of x so that bit i moves to bit 3i,
// using the classic Stocco–Schrack magic-mask sequence.
func dilate1By2(x uint64) uint64 {
	x &= 0xFFFF
	x = (x | x<<32) & 0x001F00000000FFFF
	x = (x | x<<16) & 0x001F0000FF0000FF
	x = (x | x<<8) & 0x100F00F00F00F00F
	x = (x | x<<4) & 0x10C30C30C30C30C3
	x = (x | x<<2) & 0x1249249249249249
	return x
}

// compact1By2 is the inverse of dilate1By2: it gathers every third bit
// (bit 3i → bit i) back into a contiguous 16-bit value.
func compact1By2(x uint64) uint64 {
	x &= 0x1249249249249249
	x = (x ^ x>>2) & 0x10C30C30C30C30C3
	x = (x ^ x>>4) & 0x100F00F00F00F00F
	x = (x ^ x>>8) & 0x001F0000FF0000FF
	x = (x ^ x>>16) & 0x001F00000000FFFF
	x = (x ^ x>>32) & 0xFFFF
	return x
}

// Encode computes the 48-bit Morton code of (x, y, z).
func Encode(x, y, z uint16) uint64 {
	return dilate1By2(uint64(x)) | dilate1By2(uint64(y))<<1 | dilate1By2(uint64(z))<<2
}

// Decode recovers the coordinates encoded by Encode.
func Decode(m uint64) (x, y, z uint16) {
	return uint16(compact1By2(m)), uint16(compact1By2(m >> 1)), uint16(compact1By2(m >> 2))
}

// ShardMaxBits bounds the shard-index width: 12 bits of Morton prefix
// address the coarsest four octree levels, i.e. up to 4096 spatial
// shards — far beyond any useful host parallelism.
const ShardMaxBits = 12

// ShardIndex extracts the top `bits` bits of the 48-bit Morton code m:
// the shard selector used to partition space across independent mapping
// pipelines. The high bits of a Morton code address the coarsest octree
// subdivisions, so every shard owns a union of whole subtrees — a
// locality-preserving partition (voxels that share a shard share long
// root paths). bits must be in [0, ShardMaxBits]; the result is in
// [0, 1<<bits). bits = 0 maps everything to shard 0.
func ShardIndex(m uint64, bits int) int {
	return int(m >> uint(3*CoordBits-bits))
}

// CommonAncestorDepth returns the depth of the closest common ancestor of
// the two leaves a and b in an octree of the given leaf depth, where the
// root has depth 0 and leaves have depth `depth`. Equal codes share all
// `depth` levels.
func CommonAncestorDepth(a, b uint64, depth int) int {
	if a == b {
		return depth
	}
	diff := a ^ b
	// Index (from the least-significant end) of the highest 3-bit group
	// in which the codes differ.
	highTriple := (bits.Len64(diff) - 1) / 3
	anc := depth - 1 - highTriple
	if anc < 0 {
		// Codes differ above the encoded depth; clamp to the root.
		return 0
	}
	return anc
}

// Distance returns D(a, b): the shortest-path distance (in edges) between
// the two leaves in an octree of the given leaf depth — twice the
// distance from either leaf up to the closest common ancestor. It is 0
// for identical codes.
func Distance(a, b uint64, depth int) int {
	return 2 * (depth - CommonAncestorDepth(a, b, depth))
}

// F computes the paper's locality functional
//
//	F(S) = D(a1,a2) + D(a2,a3) + ... + D(a_{N-1}, a_N)
//
// over a sequence of Morton codes, in an octree of the given leaf depth.
// Smaller F means adjacent elements share more ancestors, which the
// paper proves (and Fig 10 measures) translates into faster octree
// insertion. A sequence of fewer than two elements has F = 0.
func F(seq []uint64, depth int) int {
	total := 0
	for i := 1; i < len(seq); i++ {
		total += Distance(seq[i-1], seq[i], depth)
	}
	return total
}
