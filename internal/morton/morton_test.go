package morton

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestPaperExample checks the worked example from §4.3 of the paper:
// voxel (1,5,3) has Morton code 167.
func TestPaperExample(t *testing.T) {
	if m := Encode(1, 5, 3); m != 167 {
		t.Errorf("Encode(1,5,3) = %d, want 167", m)
	}
}

func TestEncodeZeroAndMax(t *testing.T) {
	if m := Encode(0, 0, 0); m != 0 {
		t.Errorf("Encode(0,0,0) = %d", m)
	}
	if m := Encode(0xFFFF, 0xFFFF, 0xFFFF); m != (1<<48)-1 {
		t.Errorf("Encode(max) = %#x, want %#x", m, uint64(1<<48)-1)
	}
}

func TestEncodeSingleAxis(t *testing.T) {
	// A lone x bit i lands at output bit 3i; y at 3i+1; z at 3i+2.
	for i := 0; i < 16; i++ {
		if m := Encode(1<<i, 0, 0); m != 1<<(3*i) {
			t.Errorf("x bit %d: got %#x", i, m)
		}
		if m := Encode(0, 1<<i, 0); m != 1<<(3*i+1) {
			t.Errorf("y bit %d: got %#x", i, m)
		}
		if m := Encode(0, 0, 1<<i); m != 1<<(3*i+2) {
			t.Errorf("z bit %d: got %#x", i, m)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	f := func(x, y, z uint16) bool {
		gx, gy, gz := Decode(Encode(x, y, z))
		return gx == x && gy == y && gz == z
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Encoding is monotone per axis when the other axes are fixed.
func TestMonotonePerAxis(t *testing.T) {
	f := func(a, b, y, z uint16) bool {
		if a == b {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return Encode(lo, y, z) < Encode(hi, y, z)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// reference bit-by-bit encoder used to cross-check the magic-mask version.
func refEncode(x, y, z uint16) uint64 {
	var m uint64
	for i := 0; i < 16; i++ {
		m |= uint64(x>>i&1) << (3 * i)
		m |= uint64(y>>i&1) << (3*i + 1)
		m |= uint64(z>>i&1) << (3*i + 2)
	}
	return m
}

func TestEncodeMatchesReference(t *testing.T) {
	f := func(x, y, z uint16) bool {
		return Encode(x, y, z) == refEncode(x, y, z)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestCommonAncestorDepth(t *testing.T) {
	const depth = 16
	if d := CommonAncestorDepth(42, 42, depth); d != depth {
		t.Errorf("identical codes: %d, want %d", d, depth)
	}
	// Codes differing only in the lowest triple share depth-1 levels.
	a := Encode(4, 4, 4)
	b := Encode(5, 4, 4) // differs in bit 0 of x → lowest triple
	if d := CommonAncestorDepth(a, b, depth); d != depth-1 {
		t.Errorf("sibling leaves: %d, want %d", d, depth-1)
	}
	// Codes differing in the highest encoded triple share only the root.
	c := Encode(1<<15, 0, 0)
	if d := CommonAncestorDepth(0, c, depth); d != 0 {
		t.Errorf("opposite halves: %d, want 0", d)
	}
}

func TestDistanceProperties(t *testing.T) {
	const depth = 16
	rng := rand.New(rand.NewSource(3))
	codes := make([]uint64, 64)
	for i := range codes {
		codes[i] = Encode(uint16(rng.Uint32()), uint16(rng.Uint32()), uint16(rng.Uint32()))
	}
	for _, a := range codes {
		if Distance(a, a, depth) != 0 {
			t.Fatal("D(a,a) != 0")
		}
		for _, b := range codes {
			dab := Distance(a, b, depth)
			if dab != Distance(b, a, depth) {
				t.Fatal("distance not symmetric")
			}
			if dab < 0 || dab > 2*depth {
				t.Fatalf("distance out of range: %d", dab)
			}
			if a != b && dab == 0 {
				t.Fatal("distinct leaves at distance 0")
			}
			// Ultrametric-like triangle property of tree distance.
			for _, c := range codes[:8] {
				if Distance(a, c, depth) > dab+Distance(b, c, depth) {
					t.Fatal("triangle inequality violated")
				}
			}
		}
	}
}

func TestFEmptyAndSingle(t *testing.T) {
	if F(nil, 16) != 0 || F([]uint64{5}, 16) != 0 {
		t.Error("F of short sequences should be 0")
	}
}

// TestMortonOrderMinimizesF exhaustively verifies the paper's main
// theorem on small instances: among all permutations of a set of leaves,
// sorting by Morton code attains the minimum F(S).
func TestMortonOrderMinimizesF(t *testing.T) {
	const depth = 3 // 8x8x8 space keeps the permutation search tractable
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(4) // 3..6 leaves
		seen := map[uint64]bool{}
		var codes []uint64
		for len(codes) < n {
			c := Encode(uint16(rng.Intn(8)), uint16(rng.Intn(8)), uint16(rng.Intn(8)))
			if !seen[c] {
				seen[c] = true
				codes = append(codes, c)
			}
		}
		sorted := append([]uint64(nil), codes...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		fMorton := F(sorted, depth)

		best := fMorton
		perm := append([]uint64(nil), codes...)
		var rec func(k int)
		rec = func(k int) {
			if k == len(perm) {
				if f := F(perm, depth); f < best {
					best = f
				}
				return
			}
			for i := k; i < len(perm); i++ {
				perm[k], perm[i] = perm[i], perm[k]
				rec(k + 1)
				perm[k], perm[i] = perm[i], perm[k]
			}
		}
		rec(0)
		if best < fMorton {
			t.Fatalf("trial %d: Morton order F=%d but a permutation achieves %d (codes %v)",
				trial, fMorton, best, codes)
		}
	}
}

// Reversed Morton order achieves the same F as ascending order (distance
// is symmetric), which is why the theorem speaks of "one of" the optima.
func TestReversedMortonSameF(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	codes := make([]uint64, 100)
	for i := range codes {
		codes[i] = Encode(uint16(rng.Uint32()), uint16(rng.Uint32()), uint16(rng.Uint32()))
	}
	sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
	rev := make([]uint64, len(codes))
	for i, c := range codes {
		rev[len(codes)-1-i] = c
	}
	if F(codes, 16) != F(rev, 16) {
		t.Error("F should be invariant under reversal")
	}
}

func BenchmarkEncode(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Encode(uint16(i), uint16(i>>4), uint16(i>>8))
	}
	_ = sink
}

func BenchmarkDecode(b *testing.B) {
	var sink uint16
	for i := 0; i < b.N; i++ {
		x, y, z := Decode(uint64(i) * 2654435761)
		sink += x + y + z
	}
	_ = sink
}

func TestShardIndexTopBits(t *testing.T) {
	// The top 3 Morton bits are (z15, y15, x15): the depth-1 octant.
	cases := []struct {
		x, y, z uint16
		bits    int
		want    int
	}{
		{0, 0, 0, 3, 0},
		{1 << 15, 0, 0, 3, 1}, // x high bit -> Morton bit 45
		{0, 1 << 15, 0, 3, 2}, // y high bit -> Morton bit 46
		{0, 0, 1 << 15, 3, 4}, // z high bit -> Morton bit 47
		{1 << 15, 1 << 15, 1 << 15, 3, 7},
		{0, 0, 1 << 15, 1, 1}, // one bit: split on z15 alone
		{1 << 15, 1 << 15, 0, 1, 0},
		{0xFFFF, 0xFFFF, 0xFFFF, 0, 0}, // zero bits: everything is shard 0
	}
	for _, c := range cases {
		got := ShardIndex(Encode(c.x, c.y, c.z), c.bits)
		if got != c.want {
			t.Errorf("ShardIndex(Encode(%d,%d,%d), %d) = %d, want %d",
				c.x, c.y, c.z, c.bits, got, c.want)
		}
	}
}

func TestShardIndexRangeAndLocality(t *testing.T) {
	for bits := 0; bits <= ShardMaxBits; bits += 3 {
		for i := 0; i < 500; i++ {
			x, y, z := uint16(i*31), uint16(i*57), uint16(i*91)
			s := ShardIndex(Encode(x, y, z), bits)
			if s < 0 || s >= 1<<bits {
				t.Fatalf("bits=%d: shard %d out of range", bits, s)
			}
			// Keys in the same depth-(bits/3) subtree share a shard.
			mask := uint16(0xFFFF << (16 - bits/3))
			if bits == 0 {
				mask = 0
			}
			s2 := ShardIndex(Encode(x&mask, y&mask, z&mask), bits)
			if s != s2 {
				t.Fatalf("bits=%d: subtree siblings landed in shards %d and %d", bits, s, s2)
			}
		}
	}
}
