package nav

import (
	"errors"
	"reflect"
	"testing"

	"octocache/internal/clock"
	"octocache/internal/core"
	"octocache/internal/geom"
	"octocache/internal/uav"
	"octocache/internal/world"
)

// canonResult strips the host-measured residue from a Result so the
// remainder must be bit-for-bit reproducible: the stage durations inside
// Timings are measured with time.Now inside internal/core and legitimately
// vary run to run, but the work counters — and every other field,
// including the modeled AvgCompute and the full vehicle trajectory
// summary — are pure functions of the mission configuration under the
// virtual clock.
func canonResult(r Result) Result {
	r.Timings = core.Timings{
		Batches:        r.Timings.Batches,
		VoxelsTraced:   r.Timings.VoxelsTraced,
		VoxelsToOctree: r.Timings.VoxelsToOctree,
	}
	return r
}

// TestGoldenMissionDeterministic is the regression gate the virtual
// clock exists for: the same seeded mission run twice, in every pipeline
// mode, must produce identical Results. Any wall-clock read sneaking
// back into the simulated-time path shows up here as a diff in Time,
// AvgCompute, Cycles, or the flown trajectory.
func TestGoldenMissionDeterministic(t *testing.T) {
	for _, kind := range []core.Kind{core.KindOctoMap, core.KindSerial, core.KindParallel} {
		run := func() Result {
			return Run(missionConfig(t, world.Openland, kind, 1.0, 8))
		}
		r1, r2 := run(), run()
		if !r1.Completed {
			t.Errorf("%v: golden mission did not complete (%d cycles)", kind, r1.Cycles)
			continue
		}
		c1, c2 := canonResult(r1), canonResult(r2)
		if !reflect.DeepEqual(c1, c2) {
			t.Errorf("%v: two identical virtual-clock missions diverged:\n run1: %+v\n run2: %+v", kind, c1, c2)
		}
		if r1.AvgCompute <= 0 {
			t.Errorf("%v: modeled compute latency not recorded", kind)
		}
	}
}

// TestGoldenMissionDeterministicUnderSlowdown repeats the determinism
// check where it historically flaked hardest: a heavy platform-slowdown
// factor, which used to multiply any host-load jitter straight into the
// vehicle dynamics.
func TestGoldenMissionDeterministicUnderSlowdown(t *testing.T) {
	run := func() Result {
		cfg := missionConfig(t, world.Room, core.KindParallel, 0.15, 3)
		cfg.PlatformSlowdown = 200
		cfg.MaxCycles = 400
		return Run(cfg)
	}
	r1, r2 := canonResult(run()), canonResult(run())
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("slowdown mission diverged:\n run1: %+v\n run2: %+v", r1, r2)
	}
}

// errCloseMapper wraps a Mapper and fails its Close — the regression
// fixture for nav.Run formerly dropping the Close error on the floor.
type errCloseMapper struct {
	Mapper
	err error
}

func (m errCloseMapper) Close() error {
	m.Mapper.Close()
	return m.err
}

func TestRunSurfacesMapperCloseError(t *testing.T) {
	sentinel := errors.New("flush failed")
	cfg := missionConfig(t, world.Openland, core.KindSerial, 1.0, 8)
	cfg.Mapper = errCloseMapper{Mapper: cfg.Mapper, err: sentinel}
	cfg.MaxCycles = 3 // the mission outcome is irrelevant; only Close matters
	r := Run(cfg)
	if !errors.Is(r.CloseErr, sentinel) {
		t.Fatalf("Result.CloseErr = %v, want the mapper's close error", r.CloseErr)
	}
}

// TestVirtualClockIgnoresHostStalls pins the core property directly: a
// mapper that burns arbitrary host time must not change a virtual-clock
// mission's simulated outcome. stallMapper adds a busy spin to every
// insert; the two Results still match.
type stallMapper struct {
	Mapper
	spins int
}

func (m stallMapper) Insert(origin geom.Vec3, points []geom.Vec3) error {
	s := 0
	for i := 0; i < m.spins; i++ {
		s += i
	}
	_ = s
	return m.Mapper.Insert(origin, points)
}

func TestVirtualClockIgnoresHostStalls(t *testing.T) {
	run := func(spins int) Result {
		cfg := missionConfig(t, world.Openland, core.KindSerial, 1.0, 8)
		cfg.Mapper = stallMapper{Mapper: cfg.Mapper, spins: spins}
		return canonResult(Run(cfg))
	}
	fast, stalled := run(0), run(2_000_000)
	if !reflect.DeepEqual(fast, stalled) {
		t.Errorf("host stall leaked into virtual-clock mission:\n fast:    %+v\n stalled: %+v", fast, stalled)
	}
}

// TestZeroWorkCycleAdvancesBySensorPeriod checks the nav-level side of
// the latency model's calibration contract: a cycle that did no work
// costs nothing, so the control interval collapses to the sensor period
// and simulated time advances by exactly cycles x period.
func TestZeroWorkCycleAdvancesBySensorPeriod(t *testing.T) {
	vc := clock.NewVirtual()
	frame := uav.AscTecPelican()
	compute := vc.CycleCompute(vc.Now(), clock.Work{})
	if compute != 0 {
		t.Fatalf("zero work priced at %v, want 0", compute)
	}
	dt := frame.SensorLatency()
	if got := maxFloat(frame.SensorLatency(), compute.Seconds()); got != dt {
		t.Errorf("zero-work dt = %v, want sensor period %v", got, dt)
	}
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
