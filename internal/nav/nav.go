// Package nav implements the closed-loop autonomous-navigation pipeline
// of paper Figure 3: perception (simulated sensing + map update),
// planning (A* over live occupancy queries, revalidated every cycle), and
// control (advance along the planned path at the latency-bounded safe
// velocity). It substitutes for the MAVBench/Unreal testbed: the world
// and vehicle are simulated, but the mapping system under the pipeline
// is the real code being evaluated.
//
// Per-cycle compute latency comes from the mission's clock
// (internal/clock): the real clock measures the actual mapping update
// and planning work in wall time, while the deterministic virtual clock
// prices the work the pipeline reports having done — either way the
// latency is optionally scaled by a platform slowdown factor to emulate
// the Jetson TX2's relative speed; the safe velocity and mission
// completion time then follow the uav package's roofline model, making
// mapping speedups directly visible as flight-performance gains (Figures
// 16–19).
package nav

import (
	"math"
	"time"

	"octocache/internal/clock"
	"octocache/internal/core"
	"octocache/internal/geom"
	"octocache/internal/sensor"
	"octocache/internal/uav"
	"octocache/internal/world"
)

// Mapper is the minimal occupancy-map surface the navigation loop
// drives. It is satisfied both by the internal pipelines (core.Mapper)
// and by the public octocache.Map, so missions can run against exactly
// the API real applications use.
type Mapper interface {
	// Insert integrates one sensor scan observed from origin; it fails
	// only on a closed map, which the mission loop never drives.
	Insert(origin geom.Vec3, points []geom.Vec3) error
	// Occupied reports whether the voxel containing p is known-occupied.
	Occupied(p geom.Vec3) bool
	// Resolution returns the voxel edge length in meters.
	Resolution() float64
	// Close flushes the map; called once when the mission ends.
	Close() error
}

// Config assembles a mission.
type Config struct {
	World  *world.World
	Sensor sensor.Model
	Mapper Mapper
	UAV    uav.Airframe

	// Margin is the collision clearance radius in meters (default 0.25).
	Margin float64
	// GoalRadius ends the mission when the UAV is this close (default 1).
	GoalRadius float64
	// MaxCycles aborts runaway missions (default 2000).
	MaxCycles int
	// PlatformSlowdown scales measured compute latency to emulate a
	// slower embedded platform (the paper's Jetson TX2). 1 uses host
	// speed unchanged.
	PlatformSlowdown float64
	// PlannerCell overrides the planning grid cell size; 0 derives it
	// from the map resolution and margin.
	PlannerCell float64
	// Clock is the mission's time source. Nil defaults to the real
	// clock, so benches and cmd/octobench keep measuring honest host
	// latency; a clock.Virtual makes the whole mission a deterministic
	// function of its configuration (see clock package docs).
	Clock clock.Clock
}

// Result summarizes a mission.
type Result struct {
	// Completed is true when the UAV reached the goal.
	Completed bool
	// Time is the simulated mission completion time in seconds.
	Time float64
	// PathLength is the distance actually flown in meters.
	PathLength float64
	// Cycles is the number of perception-planning-control iterations.
	Cycles int
	// Replans counts A* invocations.
	Replans int
	// Retreats counts recovery cycles spent backing out along the
	// breadcrumb trail after planning failed.
	Retreats int
	// AvgCompute is the mean measured compute latency per cycle (map
	// update + planning + point-cloud generation), after slowdown
	// scaling — the paper's "system end-to-end runtime".
	AvgCompute time.Duration
	// AvgVelocity is the mean commanded velocity over moving cycles.
	AvgVelocity float64
	// Collisions counts ground-truth collision events (should be zero).
	Collisions int
	// EnergyJ estimates the mission's energy use (rotor-dominated model,
	// uav.Airframe.MissionEnergy).
	EnergyJ float64
	// Timings is the mapping pipeline's stage decomposition, populated
	// when the mapper exposes one (core pipelines do; mappers driven
	// through the public API report stats their own way).
	Timings core.Timings
	// CloseErr is the error from finalizing the mapper at mission end.
	// A non-nil value means the final cache flush may not have reached
	// the octree — callers persisting or re-querying the map afterwards
	// must check it.
	CloseErr error
}

// Run executes the closed-loop mission and returns its summary. The
// mapper is finalized before returning; its Close error is surfaced in
// Result.CloseErr (a failed final flush must not vanish silently).
func Run(cfg Config) Result {
	if cfg.Margin <= 0 {
		cfg.Margin = 0.25
	}
	if cfg.GoalRadius <= 0 {
		cfg.GoalRadius = 1.0
	}
	if cfg.MaxCycles <= 0 {
		cfg.MaxCycles = 2000
	}
	if cfg.PlatformSlowdown <= 0 {
		cfg.PlatformSlowdown = 1
	}
	cell := cfg.PlannerCell
	if cell <= 0 {
		cell = math.Max(cfg.Mapper.Resolution(), cfg.Margin)
		// Keep the grid tractable for very large worlds.
		size := cfg.World.Bounds.Size()
		for size.X/cell*size.Y/cell*size.Z/cell > 2e6 {
			cell *= 1.5
		}
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	mapRes := cfg.Mapper.Resolution()
	pl := newPlanner(cfg.World.Bounds, cell, cfg.Margin, mapRes)
	probes := probeGrid(cfg.Margin, mapRes)

	// Counter-equipped mappers (the core pipelines and the sharded
	// service) let the clock price each cycle by the work actually done;
	// deltas of the monotone counters carry no wall-clock sensitivity.
	// Mappers without counters fall back to scan-size pricing.
	counterSrc, hasCounters := cfg.Mapper.(interface{ WorkCounters() core.Counters })
	var prevCounters core.Counters
	if hasCounters {
		prevCounters = counterSrc.WorkCounters()
	}

	pos := cfg.World.Start
	goal := cfg.World.Goal
	res := Result{}
	var computeSum time.Duration
	var velocitySum float64
	movingCycles := 0
	var path []geom.Vec3
	// trail records traversed positions for the retreat recovery: space
	// the vehicle actually flew through is known traversable even when
	// map inflation later walls it in.
	trail := []geom.Vec3{pos}
	// lookAt, when set, overrides the sensor facing for one cycle — after
	// a ground contact the vehicle must scan what it hit, or the map
	// never learns about the obstacle and the planner retries forever.
	var lookAt geom.Vec3
	haveLook := false

	for res.Cycles = 0; res.Cycles < cfg.MaxCycles; res.Cycles++ {
		if pos.Dist(goal) <= cfg.GoalRadius {
			res.Completed = true
			break
		}
		// Face the direction of travel (the next path waypoint when one
		// exists), not the goal: the sensor must scan the space the
		// vehicle is about to fly through, or sideways detours planned
		// through unknown territory go unverified. A pending lookAt
		// (post-collision) overrides both.
		facing := goal.Sub(pos)
		if len(path) > 0 {
			if d := path[0].Sub(pos); d.Norm() > 1e-6 {
				facing = d
			}
		}
		if haveLook {
			if d := lookAt.Sub(pos); d.Norm() > 1e-6 {
				facing = d
			}
			haveLook = false
		}
		pose := geom.Pose{
			Position: pos,
			Yaw:      math.Atan2(facing.Y, facing.X),
			Pitch:    math.Asin(clamp(facing.Z/math.Max(facing.Norm(), 1e-9), -1, 1)),
		}

		cycleStart := clk.Now()
		replansBefore := res.Replans

		// Perception: sense and update the map.
		points := cfg.Sensor.Scan(cfg.World, pose, nil)
		if err := cfg.Mapper.Insert(pos, points); err != nil {
			panic("nav: map closed mid-mission: " + err.Error())
		}

		// Planning: revalidate the cached path against the fresh map;
		// replan when it is gone or newly blocked.
		path = prunePath(path, pos, cell)
		if len(path) == 0 || !pathClear(cfg.Mapper, pos, path, probes, mapRes) {
			// Lazy-validated replanning: A* uses a capped probe grid for
			// speed; each candidate path is then validated at full
			// resolution, and a cell the coarse grid tunneled through is
			// banned before retrying.
			path = nil
			for attempt := 0; attempt < 5; attempt++ {
				cand := pl.plan(cfg.Mapper, pos, goal, 400000)
				res.Replans++
				if cand == nil {
					break
				}
				if bad, blockedAt := firstBlocked(cfg.Mapper, pos, cand, probes, mapRes); bad {
					pl.ban(blockedAt)
					continue
				}
				path = cand
				break
			}
		}
		work := clock.Work{
			Points:  int64(len(points)),
			Replans: int64(res.Replans - replansBefore),
		}
		if hasCounters {
			c := counterSrc.WorkCounters()
			work.VoxelsTraced = c.VoxelsTraced - prevCounters.VoxelsTraced
			work.OctreeWrites = c.VoxelsToOctree - prevCounters.VoxelsToOctree
			prevCounters = c
		}
		compute := time.Duration(float64(clk.CycleCompute(cycleStart, work)) * cfg.PlatformSlowdown)
		computeSum += compute

		// Control: velocity from the roofline; the response time is the
		// sensor period plus the cycle's compute latency.
		tResp := cfg.UAV.SensorLatency() + compute.Seconds()
		v := cfg.UAV.MaxSafeVelocity(cfg.Sensor.MaxRange, tResp)
		dt := math.Max(cfg.UAV.SensorLatency(), compute.Seconds())
		res.Time += dt
		clk.Advance(time.Duration(dt * float64(time.Second)))
		if len(path) == 0 {
			// Boxed in — usually by map inflation around surfaces scanned
			// after the vehicle got close. Recovery: retreat along the
			// breadcrumb trail (space the vehicle actually traversed)
			// until planning succeeds again.
			if n := len(trail); n > 0 {
				res.Retreats++
				target := trail[n-1]
				step := math.Min(v*dt, 6*cell)
				seg := target.Sub(pos)
				back := pos
				if d := seg.Norm(); d <= step {
					back = target
					if n > 1 {
						trail = trail[:n-1] // never pop the last breadcrumb
					}
				} else if d > 0 {
					back = pos.Add(seg.Scale(step / d))
				}
				// Breadcrumbs were flown collision-free, but guard anyway.
				if !cfg.World.Collides(geom.BoxAt(back, geom.V(cfg.Margin, cfg.Margin, cfg.Margin))) {
					res.PathLength += back.Dist(pos)
					pos = back
				}
			}
			continue
		}
		// Never move beyond the horizon pathClear validated this cycle.
		step := math.Min(v*dt, 6*cell)
		next := pos
		for step > 0 && len(path) > 0 {
			seg := path[0].Sub(next)
			d := seg.Norm()
			if d <= step {
				next = path[0]
				path = path[1:]
				step -= d
				continue
			}
			next = next.Add(seg.Scale(step / d))
			step = 0
		}
		if cfg.World.Collides(geom.BoxAt(next, geom.V(cfg.Margin, cfg.Margin, cfg.Margin))) {
			res.Collisions++
			lookAt, haveLook = next, true // scan what we hit next cycle
			next = pos                    // back off rather than tunnel through
			path = nil                    // force replan
		}
		res.PathLength += next.Dist(pos)
		if len(trail) == 0 || next.Dist(trail[len(trail)-1]) >= cell*0.75 {
			trail = append(trail, next)
		}
		pos = next
		velocitySum += v
		movingCycles++
	}

	res.CloseErr = cfg.Mapper.Close()
	if tp, ok := cfg.Mapper.(interface{ Timings() core.Timings }); ok {
		res.Timings = tp.Timings()
	}
	res.EnergyJ = cfg.UAV.MissionEnergy(res.Time)
	if res.Cycles > 0 {
		res.AvgCompute = computeSum / time.Duration(res.Cycles)
	}
	if movingCycles > 0 {
		res.AvgVelocity = velocitySum / float64(movingCycles)
	}
	return res
}

// prunePath drops waypoints already reached (within one cell).
func prunePath(path []geom.Vec3, pos geom.Vec3, cell float64) []geom.Vec3 {
	for len(path) > 0 && path[0].Dist(pos) < cell*0.6 {
		path = path[1:]
	}
	return path
}

// pathClear validates the next few path segments against the live map,
// sampling each segment at map resolution and probing the clearance
// volume around each sample — the "checking voxels along potential
// trajectories" queries of §2.1.
func pathClear(m Mapper, pos geom.Vec3, path []geom.Vec3, probes []geom.Vec3, res float64) bool {
	bad, _ := firstBlocked(m, pos, path, probes, res)
	return !bad
}

// firstBlocked walks up to 8 waypoints of the path sampling at map
// resolution; on the first occupied probe it returns the sample center so
// the caller can ban the offending planner cell.
//
// Probe points inside the ego zone around pos are exempt: the vehicle
// demonstrably occupies that space, and newly scanned surfaces inflate by
// up to a voxel beyond physical obstacles, so without the exemption a UAV
// that legally approached an obstacle gets trapped by its own map — every
// outgoing segment "starts blocked" and no plan ever validates.
func firstBlocked(m Mapper, pos geom.Vec3, path []geom.Vec3, probes []geom.Vec3, res float64) (bool, geom.Vec3) {
	ego := egoRadius(probes)
	prev := pos
	checked := 0
	for _, wp := range path {
		if bad, at := segmentBlocked(m, prev, wp, probes, res, pos, ego); bad {
			return true, at
		}
		prev = wp
		checked++
		if checked >= 8 { // validate a bounded horizon each cycle
			break
		}
	}
	return false, geom.Vec3{}
}

// egoRadius derives the exemption radius: exactly the vehicle hull (the
// largest probe offset). Anything beyond the hull is a real clearance
// violation — exempting more lets the vehicle plan through obstacles it
// is merely standing next to.
func egoRadius(probes []geom.Vec3) float64 {
	margin := 0.0
	for _, p := range probes {
		if n := p.Norm(); n > margin {
			margin = n
		}
	}
	return margin
}

func segmentBlocked(m Mapper, a, b geom.Vec3, probes []geom.Vec3, res float64, ego geom.Vec3, egoR float64) (bool, geom.Vec3) {
	dir := b.Sub(a)
	dist := dir.Norm()
	if dist == 0 {
		return false, geom.Vec3{}
	}
	dir = dir.Scale(1 / dist)
	steps := int(dist/res) + 1
	for i := 1; i <= steps; i++ {
		c := a.Add(dir.Scale(dist * float64(i) / float64(steps)))
		for _, off := range probes {
			p := c.Add(off)
			if p.Dist(ego) <= egoR {
				continue
			}
			if m.Occupied(p) {
				return true, c
			}
		}
	}
	return false, geom.Vec3{}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
