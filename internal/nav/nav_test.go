package nav

import (
	"testing"

	"octocache"
	"octocache/internal/clock"
	"octocache/internal/core"
	"octocache/internal/sensor"
	"octocache/internal/uav"
	"octocache/internal/world"
)

// missionConfig builds a small, fast mission in the given environment.
// All nav tests run on the deterministic virtual clock: vehicle
// dynamics follow modeled (not wall-clock) compute latency, so
// background load on the test box cannot change mission outcomes.
func missionConfig(t *testing.T, env world.Env, kind core.Kind, res float64, rng float64) Config {
	t.Helper()
	ccfg := core.DefaultConfig(res)
	ccfg.MaxRange = rng
	ccfg.CacheBuckets = 1 << 14
	m, err := core.New(kind, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		World:  world.Build(env, 1),
		Sensor: sensor.DefaultModel(rng, 24, 12),
		Mapper: m,
		UAV:    uav.AscTecPelican(),
		Clock:  clock.NewVirtual(),
	}
}

func TestMissionCompletesOpenland(t *testing.T) {
	for _, kind := range []core.Kind{core.KindOctoMap, core.KindSerial, core.KindParallel} {
		cfg := missionConfig(t, world.Openland, kind, 1.0, 8)
		r := Run(cfg)
		if !r.Completed {
			t.Errorf("%v: mission did not complete in %d cycles (path %.1f m)", kind, r.Cycles, r.PathLength)
			continue
		}
		if r.Collisions != 0 {
			t.Errorf("%v: %d ground-truth collisions", kind, r.Collisions)
		}
		if r.Time <= 0 || r.PathLength < 90 {
			t.Errorf("%v: implausible mission: time %.1f s path %.1f m", kind, r.Time, r.PathLength)
		}
		if r.AvgVelocity <= 0 || r.AvgCompute <= 0 {
			t.Errorf("%v: metrics not recorded: v=%.2f compute=%v", kind, r.AvgVelocity, r.AvgCompute)
		}
		if r.CloseErr != nil {
			t.Errorf("%v: mapper close failed: %v", kind, r.CloseErr)
		}
	}
}

func TestMissionCompletesRoom(t *testing.T) {
	cfg := missionConfig(t, world.Room, core.KindSerial, 0.15, 3)
	cfg.MaxCycles = 4000
	r := Run(cfg)
	if !r.Completed {
		t.Fatalf("room mission did not complete in %d cycles (path %.1f m)", r.Cycles, r.PathLength)
	}
	if r.Collisions != 0 {
		t.Errorf("%d ground-truth collisions in room", r.Collisions)
	}
}

func TestMissionCompletesFarmAndFactory(t *testing.T) {
	for _, tc := range []struct {
		env world.Env
		res float64
		rng float64
	}{
		{world.Farm, 0.3, 4.5},
		{world.Factory, 0.5, 6},
	} {
		cfg := missionConfig(t, tc.env, core.KindParallel, tc.res, tc.rng)
		cfg.MaxCycles = 4000
		r := Run(cfg)
		if !r.Completed {
			t.Errorf("%v mission incomplete after %d cycles (path %.1f m)", tc.env, r.Cycles, r.PathLength)
		}
		if r.Collisions != 0 {
			t.Errorf("%v: %d collisions", tc.env, r.Collisions)
		}
	}
}

func TestPlatformSlowdownIncreasesMissionTime(t *testing.T) {
	fast := missionConfig(t, world.Openland, core.KindOctoMap, 1.0, 8)
	fast.PlatformSlowdown = 1
	rFast := Run(fast)

	slow := missionConfig(t, world.Openland, core.KindOctoMap, 1.0, 8)
	slow.PlatformSlowdown = 400
	rSlow := Run(slow)

	if !rFast.Completed || !rSlow.Completed {
		t.Fatal("missions incomplete")
	}
	if rSlow.AvgCompute <= rFast.AvgCompute {
		t.Errorf("slowdown did not raise compute latency: %v vs %v", rSlow.AvgCompute, rFast.AvgCompute)
	}
	if rSlow.AvgVelocity > rFast.AvgVelocity {
		t.Errorf("slower platform flew faster: %.2f vs %.2f m/s", rSlow.AvgVelocity, rFast.AvgVelocity)
	}
}

func TestResultTimingsPopulated(t *testing.T) {
	cfg := missionConfig(t, world.Openland, core.KindSerial, 1.0, 8)
	r := Run(cfg)
	if r.Timings.Batches == 0 || r.Timings.VoxelsTraced == 0 {
		t.Errorf("mapper timings not captured: %+v", r.Timings)
	}
	if int64(r.Cycles) < r.Timings.Batches {
		t.Errorf("more batches than cycles: %d vs %d", r.Timings.Batches, r.Cycles)
	}
}

func TestMaxCyclesAborts(t *testing.T) {
	cfg := missionConfig(t, world.Room, core.KindOctoMap, 0.15, 3)
	cfg.MaxCycles = 3
	r := Run(cfg)
	if r.Completed {
		t.Error("3-cycle room mission cannot complete")
	}
	if r.Cycles != 3 {
		t.Errorf("Cycles = %d, want 3", r.Cycles)
	}
}

// TestRecoveryBehaviors drives a mission through the cluttered room and
// requires that any ground contacts and planning dead-ends resolve via
// the look-at and retreat recoveries instead of ending the mission.
func TestRecoveryBehaviors(t *testing.T) {
	cfg := missionConfig(t, world.Room, core.KindParallel, 0.15, 3)
	cfg.PlatformSlowdown = 200
	cfg.MaxCycles = 400
	r := Run(cfg)
	if !r.Completed {
		t.Fatalf("room mission incomplete: %d cycles, %.1fm, %d collisions, %d retreats",
			r.Cycles, r.PathLength, r.Collisions, r.Retreats)
	}
	// Collisions, if any, must be transient (an order of magnitude below
	// the cycle count), not a livelock.
	if r.Collisions > r.Cycles/5 {
		t.Errorf("%d collisions in %d cycles: recovery not converging", r.Collisions, r.Cycles)
	}
}

// TestMissionEnergyReported checks the energy model wiring.
func TestMissionEnergyReported(t *testing.T) {
	cfg := missionConfig(t, world.Openland, core.KindOctoMap, 1.0, 8)
	r := Run(cfg)
	if !r.Completed {
		t.Skip("mission incomplete; energy check moot")
	}
	if r.EnergyJ <= 0 {
		t.Error("mission energy not computed")
	}
	want := cfg.UAV.MissionEnergy(r.Time)
	if r.EnergyJ != want {
		t.Errorf("EnergyJ = %v, want %v", r.EnergyJ, want)
	}
}

// TestRetreatExhaustsTrailSafely forces heavy retreating (tiny max
// cycles, trapped start) and ensures the breadcrumb trail never
// underflows — regression test for a panic when retreats popped the
// trail empty.
func TestRetreatExhaustsTrailSafely(t *testing.T) {
	cfg := missionConfig(t, world.Room, core.KindOctoMap, 0.1, 2)
	cfg.MaxCycles = 60
	cfg.PlatformSlowdown = 200
	// Must not panic regardless of completion.
	r := Run(cfg)
	t.Logf("completed=%v retreats=%d collisions=%d", r.Completed, r.Retreats, r.Collisions)
}

// TestMissionAgainstPublicAPI runs the closed loop against the public
// octocache.Map — the exact surface real applications use — including a
// sharded concurrent map, which nav drives through the same
// error-returning Insert/Close surface as any single-driver mapper.
func TestMissionAgainstPublicAPI(t *testing.T) {
	for _, opts := range []octocache.Options{
		{Resolution: 1.0, MaxRange: 8, CacheBuckets: 1 << 14},
		{Resolution: 1.0, MaxRange: 8, CacheBuckets: 1 << 14, Shards: 4},
	} {
		m := octocache.MustNew(opts)
		cfg := Config{
			World:  world.Build(world.Openland, 1),
			Sensor: sensor.DefaultModel(8, 24, 12),
			Mapper: m,
			UAV:    uav.AscTecPelican(),
			// The public map keeps its counters private, so the virtual
			// clock prices these cycles by scan size — still fully
			// deterministic.
			Clock: clock.NewVirtual(),
		}
		r := Run(cfg)
		if !r.Completed {
			t.Errorf("shards=%d: mission did not complete in %d cycles", m.Shards(), r.Cycles)
			continue
		}
		if r.Collisions != 0 {
			t.Errorf("shards=%d: %d collisions", m.Shards(), r.Collisions)
		}
		// Run finalizes the mapper; the public map is now closed.
		if err := m.Insert(octocache.V(0, 0, 1), nil); err != octocache.ErrClosed {
			t.Errorf("shards=%d: Insert after mission = %v, want ErrClosed", m.Shards(), err)
		}
	}
}
