package nav

import (
	"container/heap"
	"math"

	"octocache/internal/geom"
)

// planner runs A* over a coarse 3D grid laid over the world bounds,
// treating unknown space as traversable (the standard optimistic
// assumption) and any cell whose margin-probes hit a known-occupied voxel
// as blocked. Every blocked-test is a live mapper occupancy query, so
// planning cost — like in the paper's pipeline — depends on how fast the
// mapping system answers.
type planner struct {
	origin     geom.Vec3
	cell       float64
	nx, ny, nz int
	margin     float64
	probes     []geom.Vec3

	// banned holds cells that passed the capped probe grid but failed
	// full-resolution path validation — the lazy-evaluation feedback loop
	// between Run and the planner.
	banned map[int32]bool

	// scratch, reused across replans
	gScore []float64
	open   nodeHeap
	from   []int32
	closed []bool
}

// newPlanner builds a planner over bounds with the given grid cell size,
// clearance margin, and map resolution (which sets the probe stride: an
// occupancy map is a one-voxel-thick shell, so collision probes sparser
// than the voxel size can tunnel straight through a scanned surface into
// never-observed interior).
func newPlanner(bounds geom.AABB, cell, margin, mapRes float64) *planner {
	size := bounds.Size()
	p := &planner{
		origin: bounds.Min,
		cell:   cell,
		nx:     int(size.X/cell) + 1,
		ny:     int(size.Y/cell) + 1,
		nz:     int(size.Z/cell) + 1,
		margin: margin,
		probes: probeGrid(cell/2+margin, mapRes),
		banned: make(map[int32]bool),
	}
	n := p.nx * p.ny * p.nz
	p.gScore = make([]float64, n)
	p.from = make([]int32, n)
	p.closed = make([]bool, n)
	return p
}

// probeGrid returns offsets sampling the ball of radius `half` at a
// stride no coarser than res, so every voxel-sized shell intersecting the
// clearance volume is sampled. A ball (not a cube) is essential: cube
// corners would demand √3x the intended clearance and reject every
// tight-doorway path once the map resolves thin shells. The per-axis
// sample count is capped at 6 to bound query cost at very fine
// resolutions; the lazy path validation in Run catches (and bans) the
// rare cells where the capped grid tunnels through a thinner-than-stride
// shell.
func probeGrid(half, res float64) []geom.Vec3 {
	n := int(2*half/res) + 2
	if n < 2 {
		n = 2
	}
	if n > 6 {
		n = 6
	}
	limit := half * half * 1.0001
	var out []geom.Vec3
	for i := 0; i < n; i++ {
		x := -half + 2*half*float64(i)/float64(n-1)
		for j := 0; j < n; j++ {
			y := -half + 2*half*float64(j)/float64(n-1)
			for k := 0; k < n; k++ {
				z := -half + 2*half*float64(k)/float64(n-1)
				if x*x+y*y+z*z <= limit {
					out = append(out, geom.Vec3{X: x, Y: y, Z: z})
				}
			}
		}
	}
	return out
}

func (p *planner) index(ix, iy, iz int) int { return (iz*p.ny+iy)*p.nx + ix }

func (p *planner) cellOf(v geom.Vec3) (int, int, int) {
	d := v.Sub(p.origin)
	ix := int(d.X / p.cell)
	iy := int(d.Y / p.cell)
	iz := int(d.Z / p.cell)
	return clampInt(ix, 0, p.nx-1), clampInt(iy, 0, p.ny-1), clampInt(iz, 0, p.nz-1)
}

func (p *planner) center(ix, iy, iz int) geom.Vec3 {
	return p.origin.Add(geom.Vec3{
		X: (float64(ix) + 0.5) * p.cell,
		Y: (float64(iy) + 0.5) * p.cell,
		Z: (float64(iz) + 0.5) * p.cell,
	})
}

// blocked probes the cell's clearance volume (cell plus margin on every
// side) at voxel-resolution stride against the live map.
func (p *planner) blocked(m Mapper, ix, iy, iz int) bool {
	if p.banned[int32(p.index(ix, iy, iz))] {
		return true
	}
	c := p.center(ix, iy, iz)
	for _, off := range p.probes {
		if m.Occupied(c.Add(off)) {
			return true
		}
	}
	return false
}

// ban marks the cell containing w as permanently blocked. Used when a
// freshly planned path fails full-resolution validation through a shell
// the capped probe grid missed.
func (p *planner) ban(w geom.Vec3) {
	ix, iy, iz := p.cellOf(w)
	p.banned[int32(p.index(ix, iy, iz))] = true
}

type heapNode struct {
	idx int32
	f   float64
}

type nodeHeap []heapNode

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].f < h[j].f }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(heapNode)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// neighbor offsets: 6 faces plus 12 planar diagonals for smoother paths.
var nbr = [][4]float64{
	{1, 0, 0, 1}, {-1, 0, 0, 1}, {0, 1, 0, 1}, {0, -1, 0, 1}, {0, 0, 1, 1}, {0, 0, -1, 1},
	{1, 1, 0, math.Sqrt2}, {1, -1, 0, math.Sqrt2}, {-1, 1, 0, math.Sqrt2}, {-1, -1, 0, math.Sqrt2},
	{1, 0, 1, math.Sqrt2}, {1, 0, -1, math.Sqrt2}, {-1, 0, 1, math.Sqrt2}, {-1, 0, -1, math.Sqrt2},
	{0, 1, 1, math.Sqrt2}, {0, 1, -1, math.Sqrt2}, {0, -1, 1, math.Sqrt2}, {0, -1, -1, math.Sqrt2},
}

// plan searches for a collision-free cell path from 'from' to 'to' and
// returns the waypoint centers (excluding the start cell). It returns nil
// when no path exists within the expansion budget. Cells inside the ego
// zone around 'from' are always traversable (see firstBlocked: the
// vehicle occupies that space, and map inflation must not wall it in).
func (p *planner) plan(m Mapper, from, to geom.Vec3, maxExpansions int) []geom.Vec3 {
	egoR := p.margin + p.cell // clearance + one planning cell of slack
	sx, sy, sz := p.cellOf(from)
	gx, gy, gz := p.cellOf(to)
	start := int32(p.index(sx, sy, sz))
	goal := int32(p.index(gx, gy, gz))

	for i := range p.gScore {
		p.gScore[i] = math.Inf(1)
		p.closed[i] = false
		p.from[i] = -1
	}
	p.open = p.open[:0]
	h := func(idx int32) float64 {
		i := int(idx)
		ix := i % p.nx
		iy := i / p.nx % p.ny
		iz := i / (p.nx * p.ny)
		dx := float64(ix - gx)
		dy := float64(iy - gy)
		dz := float64(iz - gz)
		return math.Sqrt(dx*dx+dy*dy+dz*dz) * p.cell
	}
	p.gScore[start] = 0
	heap.Push(&p.open, heapNode{idx: start, f: h(start)})

	expansions := 0
	for p.open.Len() > 0 {
		cur := heap.Pop(&p.open).(heapNode)
		if p.closed[cur.idx] {
			continue
		}
		p.closed[cur.idx] = true
		if cur.idx == goal {
			return p.reconstruct(goal)
		}
		expansions++
		if maxExpansions > 0 && expansions > maxExpansions {
			return nil
		}
		i := int(cur.idx)
		ix := i % p.nx
		iy := i / p.nx % p.ny
		iz := i / (p.nx * p.ny)
		for _, d := range nbr {
			jx, jy, jz := ix+int(d[0]), iy+int(d[1]), iz+int(d[2])
			if jx < 0 || jx >= p.nx || jy < 0 || jy >= p.ny || jz < 0 || jz >= p.nz {
				continue
			}
			j := int32(p.index(jx, jy, jz))
			if p.closed[j] {
				continue
			}
			g := p.gScore[cur.idx] + d[3]*p.cell
			if g >= p.gScore[j] {
				continue
			}
			if p.center(jx, jy, jz).Dist(from) > egoR && p.blocked(m, jx, jy, jz) {
				p.closed[j] = true
				continue
			}
			p.gScore[j] = g
			p.from[j] = cur.idx
			heap.Push(&p.open, heapNode{idx: j, f: g + h(j)})
		}
	}
	return nil
}

func (p *planner) reconstruct(goal int32) []geom.Vec3 {
	var rev []int32
	for n := goal; n >= 0; n = p.from[n] {
		rev = append(rev, n)
	}
	// Reverse, dropping the start cell.
	path := make([]geom.Vec3, 0, len(rev))
	for i := len(rev) - 2; i >= 0; i-- {
		idx := int(rev[i])
		ix := idx % p.nx
		iy := idx / p.nx % p.ny
		iz := idx / (p.nx * p.ny)
		path = append(path, p.center(ix, iy, iz))
	}
	return path
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
