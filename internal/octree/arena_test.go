package octree

import (
	"bytes"
	"math/rand"
	"runtime"
	"testing"
)

// churn drives a mixed op stream designed to cycle slots through the free
// lists: random updates interleaved with octant saturations (forcing
// prunes) and SetNodeValue divergences (forcing re-expansion from
// recycled slots).
func churn(tr *Tree, seed int64, steps int) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < steps; i++ {
		k := Key{X: uint16(rng.Intn(64)), Y: uint16(rng.Intn(64)), Z: uint16(rng.Intn(64))}
		switch rng.Intn(4) {
		case 0, 1:
			tr.Update(k, rng.Intn(2) == 0)
		case 2:
			tr.SetNodeValue(k, float32(rng.Float64()*6-3))
		case 3:
			// Saturate the 2×2×2 octant containing k so it prunes, then
			// the next divergence must expand from the free list.
			base := Key{X: k.X &^ 1, Y: k.Y &^ 1, Z: k.Z &^ 1}
			for dx := uint16(0); dx < 2; dx++ {
				for dy := uint16(0); dy < 2; dy++ {
					for dz := uint16(0); dz < 2; dz++ {
						tr.SetNodeValue(Key{X: base.X + dx, Y: base.Y + dy, Z: base.Z + dz}, tr.Params().ClampMax)
					}
				}
			}
		}
	}
}

// TestArenaRecyclingPreservesStructure churns a tree through heavy
// prune/expand cycling (so its arena is full of recycled handles), then
// serializes it and rebuilds a tree whose arena was filled strictly
// linearly. Structural equality between the two proves handle recycling
// never leaks into observable structure.
func TestArenaRecyclingPreservesStructure(t *testing.T) {
	p := smallParams(6)
	a := New(p)
	churn(a, 77, 8000)
	if _, free, _ := a.ArenaStats(); free == 0 {
		t.Fatal("churn produced no free-listed slots; test is vacuous")
	}
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var b Tree
	if _, err := b.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(&b) {
		t.Fatal("recycled-arena tree differs from linearly rebuilt tree")
	}
	if a.NumNodes() != b.NumNodes() {
		t.Errorf("node counts differ: %d vs %d", a.NumNodes(), b.NumNodes())
	}
}

// TestArenaRecyclingUnderPruneExpandChurn saturates and diverges regions
// repeatedly so pruning and expansion cycle nodes through the free lists.
func TestArenaRecyclingUnderPruneExpandChurn(t *testing.T) {
	p := smallParams(3)
	tr := New(p)
	for round := 0; round < 5; round++ {
		// Saturate: prunes to a single node.
		for x := 0; x < 8; x++ {
			for y := 0; y < 8; y++ {
				for z := 0; z < 8; z++ {
					for i := 0; i < 6; i++ {
						tr.UpdateOccupied(Key{X: uint16(x), Y: uint16(y), Z: uint16(z)})
					}
				}
			}
		}
		if tr.NumNodes() != 1 {
			t.Fatalf("round %d: not pruned (%d nodes)", round, tr.NumNodes())
		}
		// Diverge: forces expansion chains from recycled nodes.
		tr.SetNodeValue(Key{X: 3, Y: 3, Z: 3}, p.ClampMin)
		if l, _ := tr.Search(Key{X: 3, Y: 3, Z: 3}); l != p.ClampMin {
			t.Fatalf("round %d: diverged voxel lost", round)
		}
		if l, _ := tr.Search(Key{X: 0, Y: 7, Z: 2}); l != p.ClampMax {
			t.Fatalf("round %d: sibling corrupted", round)
		}
		// Drive it back up for the next round.
		for i := 0; i < 20; i++ {
			tr.UpdateOccupied(Key{X: 3, Y: 3, Z: 3})
		}
	}
}

// TestArenaFreeListBoundsCapacity checks that churn reuses free-listed
// slots rather than growing the arena without bound: after a prune the
// next expansion must not extend the nodes slice.
func TestArenaFreeListBoundsCapacity(t *testing.T) {
	p := smallParams(3)
	tr := New(p)
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			for z := 0; z < 8; z++ {
				for i := 0; i < 6; i++ {
					tr.UpdateOccupied(Key{X: uint16(x), Y: uint16(y), Z: uint16(z)})
				}
			}
		}
	}
	_, _, capAfterBuild := tr.ArenaStats()
	for round := 0; round < 50; round++ {
		tr.SetNodeValue(Key{X: 3, Y: 3, Z: 3}, p.ClampMin) // expand
		for i := 0; i < 20; i++ {
			tr.UpdateOccupied(Key{X: 3, Y: 3, Z: 3}) // re-saturate, prune
		}
	}
	if _, _, capNow := tr.ArenaStats(); capNow > capAfterBuild {
		t.Errorf("arena grew under steady churn: %d slots after build, %d after churn", capAfterBuild, capNow)
	}
}

// TestArenaUpdateAllocationBound confirms tree construction allocates
// O(log n) times (arena slice doublings), not O(n) (per-node boxing):
// 50k updates produce hundreds of thousands of nodes but must stay under
// a few thousand mallocs.
func TestArenaUpdateAllocationBound(t *testing.T) {
	p := smallParams(8)
	countAllocs := func(f func()) uint64 {
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		f()
		runtime.ReadMemStats(&m1)
		return m1.Mallocs - m0.Mallocs
	}
	got := countAllocs(func() {
		tr := New(p)
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 50000; i++ {
			tr.UpdateOccupied(Key{X: uint16(rng.Intn(256)), Y: uint16(rng.Intn(256)), Z: uint16(rng.Intn(256))})
		}
		if tr.NumNodes() < 50000 {
			t.Errorf("expected a large tree, got %d nodes", tr.NumNodes())
		}
	})
	if got > 2000 {
		t.Errorf("tree construction allocated %d times; want O(log n) slice growth only", got)
	}
}

// recount walks the tree and independently tallies reachable nodes,
// cross-checking numNodes bookkeeping and arena slot conservation
// (live + free == slots ever allocated).
func recount(t *testing.T, tr *Tree, when string) {
	t.Helper()
	counted := 0
	if !tr.empty() {
		tr.iterate(tr.root, func(*node) { counted++ })
	}
	if counted != tr.NumNodes() {
		t.Fatalf("%s: NumNodes=%d but %d nodes reachable", when, tr.NumNodes(), counted)
	}
	live, free, capacity := tr.ArenaStats()
	if live+free != capacity {
		t.Fatalf("%s: arena slots leaked: live %d + free %d != capacity %d", when, live, free, capacity)
	}
}

// TestNumNodesInvariant audits node accounting across every path that
// creates or destroys nodes: updates with pruning, SetNodeValue
// divergence (aggregate re-expansion), SetLeafAt at every depth
// (subtree replacement and aggregate writes), and whole-tree replacement
// at depth 0.
func TestNumNodesInvariant(t *testing.T) {
	p := smallParams(5)
	tr := New(p)
	rng := rand.New(rand.NewSource(13))

	for i := 0; i < 2000; i++ {
		k := Key{X: uint16(rng.Intn(32)), Y: uint16(rng.Intn(32)), Z: uint16(rng.Intn(32))}
		tr.Update(k, rng.Intn(2) == 0)
	}
	recount(t, tr, "after random updates")

	// Aggregate writes at coarse depths replace whole subtrees; their
	// slots must come back through the free lists, not leak.
	for i := 0; i < 300; i++ {
		depth := 1 + rng.Intn(p.Depth)
		mask := uint16(0xffff) << uint(p.Depth-depth)
		k := Key{X: uint16(rng.Intn(32)) & mask, Y: uint16(rng.Intn(32)) & mask, Z: uint16(rng.Intn(32)) & mask}
		tr.SetLeafAt(k, depth, float32(rng.Float64()*6-3))
	}
	recount(t, tr, "after SetLeafAt churn")

	// Saturate to force deep pruning, then diverge out of the aggregates.
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			for z := 0; z < 8; z++ {
				tr.SetNodeValue(Key{X: uint16(x), Y: uint16(y), Z: uint16(z)}, p.ClampMax)
			}
		}
	}
	recount(t, tr, "after saturation")
	tr.SetNodeValue(Key{X: 3, Y: 3, Z: 3}, p.ClampMin)
	recount(t, tr, "after divergence")

	// Depth-0 write replaces the entire tree with one aggregate leaf.
	tr.SetLeafAt(Key{}, 0, p.ClampMin)
	recount(t, tr, "after depth-0 replacement")
	if tr.NumNodes() != 1 {
		t.Fatalf("depth-0 SetLeafAt left %d nodes, want 1", tr.NumNodes())
	}
}

func TestArenaClearResets(t *testing.T) {
	tr := New(smallParams(4))
	tr.UpdateOccupied(Key{X: 1, Y: 2, Z: 3})
	tr.Clear()
	if tr.NumNodes() != 0 {
		t.Error("Clear left nodes")
	}
	tr.UpdateOccupied(Key{X: 4, Y: 5, Z: 6})
	if !tr.Occupied(Key{X: 4, Y: 5, Z: 6}) {
		t.Error("arena tree unusable after Clear")
	}
}

// BenchmarkUpdatePlain and BenchmarkUpdateArena both exercise the one
// (arena-backed) Tree; both names are kept so benchstat can compare
// against captures from when they were distinct implementations.
func BenchmarkUpdatePlain(b *testing.B) {
	benchUpdates(b, New(DefaultParams(0.1)))
}

func BenchmarkUpdateArena(b *testing.B) {
	benchUpdates(b, New(DefaultParams(0.1)))
}

func benchUpdates(b *testing.B, tr *Tree) {
	rng := rand.New(rand.NewSource(1))
	keys := make([]Key, 1<<14)
	for i := range keys {
		keys[i] = Key{X: uint16(rng.Intn(1024)), Y: uint16(rng.Intn(1024)), Z: uint16(rng.Intn(64))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.UpdateOccupied(keys[i&(1<<14-1)])
	}
}
