package octree

import (
	"bufio"
	"fmt"
	"io"
)

// WriteBT serializes the tree's maximum-likelihood binarization in
// OctoMap's .bt (bonsai tree) wire format, readable by the reference
// toolchain (octovis, bt2vrml, ...). The format stores two bits per
// child in a depth-first stream:
//
//	00 unknown child, 01 occupied leaf, 10 free leaf, 11 inner child
//
// Pruned aggregates are emitted as leaves, exactly as OctoMap does after
// toMaxLikelihood()+prune(). Occupancy is thresholded: the float values
// are not preserved (that is the .ot container's job — see WriteTo).
func (t *Tree) WriteBT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw,
		"# Octomap OcTree binary file\nid OcTree\nsize %d\nres %g\ndata\n",
		t.NumNodes(), t.params.Resolution); err != nil {
		return err
	}
	if !t.empty() {
		if err := t.writeBTNode(bw, t.root, 0); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// childBTBits classifies one child slot into the 2-bit .bt code.
func (t *Tree) childBTBits(c uint32, depth int) uint16 {
	switch {
	case c == nilNode:
		return 0b00
	case t.nodes[c].kids != nilKids && depth < t.params.Depth:
		return 0b11
	case t.nodes[c].logOdds >= t.params.OccupancyThreshold:
		return 0b01
	default:
		return 0b10
	}
}

func (t *Tree) writeBTNode(w io.Writer, h uint32, depth int) error {
	// A leaf at this level has no child stream; callers only recurse into
	// inner nodes, and the root of a leaf-only tree writes one synthetic
	// record with all children unknown except itself... OctoMap's writer
	// only ever emits inner nodes, so a fully pruned tree round-trips as
	// a root record whose children replicate the aggregate.
	n := t.nodes[h]
	var bits uint16
	if n.kids == nilKids {
		// Fully pruned root: emit eight identical leaf children.
		code := uint16(0b10)
		if n.logOdds >= t.params.OccupancyThreshold {
			code = 0b01
		}
		for i := 0; i < 8; i++ {
			bits |= code << uint(2*i)
		}
		var buf [2]byte
		buf[0] = byte(bits)
		buf[1] = byte(bits >> 8)
		_, err := w.Write(buf[:])
		return err
	}
	block := t.kids[n.kids]
	for i, c := range block {
		bits |= t.childBTBits(c, depth+1) << uint(2*i)
	}
	var buf [2]byte
	buf[0] = byte(bits)
	buf[1] = byte(bits >> 8)
	if _, err := w.Write(buf[:]); err != nil {
		return err
	}
	for _, c := range block {
		if c != nilNode && t.nodes[c].kids != nilKids && depth+1 < t.params.Depth {
			if err := t.writeBTNode(w, c, depth+1); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadBT parses a .bt stream into a thresholded tree: occupied leaves get
// ClampMax, free leaves ClampMin (the maximum-likelihood values OctoMap
// assigns on binarization). The receiver's parameters are kept except for
// the resolution, which the file dictates.
func (t *Tree) ReadBT(r io.Reader) error {
	br := bufio.NewReader(r)
	var res float64
	var size int
	sawData := false
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return fmt.Errorf("octree: reading .bt header: %w", err)
		}
		switch {
		case len(line) > 0 && line[0] == '#':
			continue
		case line == "data\n":
			sawData = true
		case len(line) >= 3 && line[:3] == "id ":
			if line != "id OcTree\n" {
				return fmt.Errorf("octree: unsupported .bt id %q", line[3:len(line)-1])
			}
			continue
		default:
			if _, err := fmt.Sscanf(line, "res %g", &res); err == nil {
				continue
			}
			if _, err := fmt.Sscanf(line, "size %d", &size); err == nil {
				continue
			}
			return fmt.Errorf("octree: unknown .bt header line %q", line)
		}
		if sawData {
			break
		}
	}
	if res <= 0 {
		return fmt.Errorf("octree: .bt header missing res")
	}
	t.params.Resolution = res
	if err := t.params.Validate(); err != nil {
		return err
	}
	t.resetArenas()
	root := t.newInterior()
	if err := t.readBTNode(br, root, 0); err != nil {
		return err
	}
	t.root = root
	// Restore inner values bottom-up.
	t.recomputeInner(t.root)
	return nil
}

func (t *Tree) readBTNode(r *bufio.Reader, h uint32, depth int) error {
	var buf [2]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return fmt.Errorf("octree: reading .bt node: %w", err)
	}
	bits := uint16(buf[0]) | uint16(buf[1])<<8
	kb := t.nodes[h].kids
	for i := 0; i < 8; i++ {
		switch bits >> uint(2*i) & 0b11 {
		case 0b00:
			// unknown
		case 0b01:
			c := t.allocNode(t.params.ClampMax)
			t.kids[kb][i] = c
		case 0b10:
			c := t.allocNode(t.params.ClampMin)
			t.kids[kb][i] = c
		case 0b11:
			if depth+1 >= t.params.Depth {
				return fmt.Errorf("octree: .bt inner node below max depth")
			}
			child := t.newInterior()
			t.kids[kb][i] = child
			if err := t.readBTNode(r, child, depth+1); err != nil {
				return err
			}
		}
	}
	return nil
}

// recomputeInner restores max-of-children values after a .bt import.
func (t *Tree) recomputeInner(h uint32) float32 {
	kb := t.nodes[h].kids
	if kb == nilKids {
		return t.nodes[h].logOdds
	}
	var maxVal float32
	first := true
	for _, c := range t.kids[kb] {
		if c == nilNode {
			continue
		}
		v := t.recomputeInner(c)
		if first || v > maxVal {
			maxVal = v
			first = false
		}
	}
	if !first {
		t.nodes[h].logOdds = maxVal
	}
	return t.nodes[h].logOdds
}
