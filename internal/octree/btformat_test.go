package octree

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"octocache/internal/geom"
)

func TestBTRoundTripOccupancy(t *testing.T) {
	tr := buildRandomTree(21, 1500, 6)
	var buf bytes.Buffer
	if err := tr.WriteBT(&buf); err != nil {
		t.Fatalf("WriteBT: %v", err)
	}
	head := buf.String()[:40]
	if !strings.HasPrefix(head, "# Octomap OcTree binary file") {
		t.Errorf("header wrong: %q", head)
	}

	back := New(tr.Params())
	if err := back.ReadBT(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("ReadBT: %v", err)
	}
	if back.Resolution() != tr.Resolution() {
		t.Errorf("resolution %v != %v", back.Resolution(), tr.Resolution())
	}
	// The .bt format binarizes: thresholded occupancy must survive for
	// every known voxel; unknown stays unknown.
	mismatches := 0
	checked := 0
	for x := 0; x < 64; x++ {
		for y := 0; y < 64; y += 3 {
			for z := 0; z < 64; z += 3 {
				k := Key{X: uint16(x), Y: uint16(y), Z: uint16(z)}
				_, knownA := tr.Search(k)
				_, knownB := back.Search(k)
				if knownA != knownB {
					t.Fatalf("known flag differs at %v", k)
				}
				if knownA {
					checked++
					if tr.Occupied(k) != back.Occupied(k) {
						mismatches++
					}
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no known voxels checked")
	}
	if mismatches > 0 {
		t.Errorf("%d of %d thresholded occupancies changed in .bt round trip", mismatches, checked)
	}
}

func TestBTFullyPrunedTree(t *testing.T) {
	p := smallParams(3)
	tr := New(p)
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			for z := 0; z < 8; z++ {
				for i := 0; i < 6; i++ {
					tr.UpdateOccupied(Key{X: uint16(x), Y: uint16(y), Z: uint16(z)})
				}
			}
		}
	}
	if tr.NumNodes() != 1 {
		t.Fatal("tree should be fully pruned")
	}
	var buf bytes.Buffer
	if err := tr.WriteBT(&buf); err != nil {
		t.Fatal(err)
	}
	back := New(p)
	if err := back.ReadBT(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !back.Occupied(Key{X: 3, Y: 4, Z: 5}) {
		t.Error("pruned occupied space lost in .bt round trip")
	}
}

func TestBTEmptyTree(t *testing.T) {
	tr := New(DefaultParams(0.25))
	var buf bytes.Buffer
	if err := tr.WriteBT(&buf); err != nil {
		t.Fatal(err)
	}
	// Header present, no data payload needed.
	if !strings.Contains(buf.String(), "res 0.25") {
		t.Errorf("resolution missing from header: %q", buf.String())
	}
}

func TestReadBTRejectsGarbage(t *testing.T) {
	tr := New(DefaultParams(0.1))
	if err := tr.ReadBT(strings.NewReader("nonsense\n")); err == nil {
		t.Error("garbage header accepted")
	}
	if err := tr.ReadBT(strings.NewReader("id SomethingElse\ndata\n")); err == nil {
		t.Error("wrong id accepted")
	}
	if err := tr.ReadBT(strings.NewReader("id OcTree\nsize 3\ndata\n")); err == nil {
		t.Error("missing res accepted")
	}
	// Truncated data stream.
	if err := tr.ReadBT(strings.NewReader("id OcTree\nsize 3\nres 0.1\ndata\n\x01")); err == nil {
		t.Error("truncated data accepted")
	}
}

func TestBTPreservesGeometry(t *testing.T) {
	// A wall scanned into the tree must stay a wall after .bt round trip
	// (coordinate-space check, not just key-space).
	tr := New(DefaultParams(0.1))
	rng := rand.New(rand.NewSource(9))
	var probe geom.Vec3
	for i := 0; i < 400; i++ {
		p := geom.V(2+rng.Float64()*0.05, rng.Float64()*4-2, rng.Float64()*2)
		if i == 0 {
			probe = p
		}
		if k, ok := tr.CoordToKey(p); ok {
			tr.UpdateOccupied(k)
		}
	}
	var buf bytes.Buffer
	if err := tr.WriteBT(&buf); err != nil {
		t.Fatal(err)
	}
	back := New(DefaultParams(0.1))
	if err := back.ReadBT(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !tr.OccupiedAt(probe) {
		t.Fatal("test setup broken: probe voxel not occupied in source tree")
	}
	if !back.OccupiedAt(probe) {
		t.Error("wall voxel lost")
	}
	if back.OccupiedAt(geom.V(-3, 0, 1)) {
		t.Error("phantom occupancy appeared")
	}
}
