package octree

// Change tracking, mirroring OctoMap's enableChangeDetection /
// getChangedKeys: consumers (visualizers, incremental planners) can ask
// which finest-resolution voxels changed occupancy *state* since the last
// reset, without re-walking the whole tree.

// ChangeTracking toggles change detection. Enabling it has a small
// per-update cost; disabling clears the pending set.
func (t *Tree) ChangeTracking(on bool) {
	if on {
		if t.changed == nil {
			t.changed = make(map[Key]bool)
		}
		return
	}
	t.changed = nil
}

// Changes returns the set of voxel keys whose thresholded occupancy
// changed since the last ResetChanges, mapped to their new occupancy
// state. The returned map is a snapshot copy.
func (t *Tree) Changes() map[Key]bool {
	out := make(map[Key]bool, len(t.changed))
	for k, v := range t.changed {
		out[k] = v
	}
	return out
}

// ResetChanges clears the recorded change set.
func (t *Tree) ResetChanges() {
	if t.changed != nil {
		clear(t.changed)
	}
}

// noteChange records a state transition for k if tracking is on.
func (t *Tree) noteChange(k Key, wasKnown bool, oldVal, newVal float32) {
	if t.changed == nil {
		return
	}
	thr := t.params.OccupancyThreshold
	oldOcc := wasKnown && oldVal >= thr
	newOcc := newVal >= thr
	if !wasKnown || oldOcc != newOcc {
		t.changed[k] = newOcc
	}
}
