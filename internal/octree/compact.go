package octree

import "fmt"

// Online arena compaction. Pruning recycles arena slots through the free
// lists (DESIGN.md §9), but the arenas themselves never shrink: a map
// that prunes a large explored region keeps its peak footprint forever,
// and its surviving nodes stay scattered across the fragmented address
// range — exactly the locality loss Morton-ordered insertion exists to
// avoid. Compact rebuilds both arenas as a dense DFS-preorder prefix
// (children visited in Morton octant order, so the new layout is the
// tree's in-order address order), rewrites every handle by construction
// during the copy, and releases the tail capacity plus the free-list
// backing arrays. Serialization is structure-only (handles never reach
// the wire), so compaction is invisible to WriteTo — the fuzz harness
// interleaves Compact with the op stream to enforce it.

// CompactionPolicy decides when an arena is fragmented enough to be
// worth compacting. The zero value disables automatic compaction
// (explicit Compact calls always run).
type CompactionPolicy struct {
	// MinFreeFraction triggers compaction once free-listed slots make up
	// at least this fraction of the node arena's capacity. 0 disables
	// automatic triggering entirely.
	MinFreeFraction float64
	// MinFreeSlots additionally requires at least this many free node
	// slots, so small arenas don't churn through pointless rebuilds.
	MinFreeSlots int
}

// Enabled reports whether the policy can ever trigger.
func (p CompactionPolicy) Enabled() bool { return p.MinFreeFraction > 0 }

// Triggers reports whether an arena with the given occupancy crosses the
// policy's fragmentation threshold.
func (p CompactionPolicy) Triggers(live, free, capacity int) bool {
	if !p.Enabled() || capacity == 0 || free < p.MinFreeSlots {
		return false
	}
	return float64(free) >= p.MinFreeFraction*float64(capacity)
}

// Validate reports whether the policy is usable.
func (p CompactionPolicy) Validate() error {
	if p.MinFreeFraction < 0 || p.MinFreeFraction > 1 {
		return fmt.Errorf("octree: MinFreeFraction must be in [0, 1], got %v", p.MinFreeFraction)
	}
	if p.MinFreeSlots < 0 {
		return fmt.Errorf("octree: MinFreeSlots must be >= 0, got %d", p.MinFreeSlots)
	}
	return nil
}

// CompactStats describes one compaction run.
type CompactStats struct {
	// NodeSlotsReclaimed and KidSlotsReclaimed count the free-listed
	// slots released back to the allocator (node slots and 8-handle
	// child blocks respectively).
	NodeSlotsReclaimed int
	KidSlotsReclaimed  int
	// CapacityBefore and CapacityAfter are the node arena's total slot
	// counts around the run; after a run the arena is dense, so
	// CapacityAfter equals the live node count.
	CapacityBefore int
	CapacityAfter  int
}

// NeedsCompaction reports whether the tree's node arena crosses the
// policy's fragmentation threshold.
func (t *Tree) NeedsCompaction(p CompactionPolicy) bool {
	return p.Triggers(t.ArenaStats())
}

// Compact rewrites both arenas into a dense DFS-preorder prefix and
// releases the tail capacity: after it returns, live == capacity, the
// free lists are empty, and handles address nodes in the order a
// root-to-leaf Morton walk visits them. The caller must hold the
// mutator role (no concurrent readers or writers); the pipeline layers
// run it behind their applier quiesce. Structure, values, and the
// serialized byte stream are unchanged by construction — only handle
// values (never observable outside this package) move.
func (t *Tree) Compact() CompactStats {
	cs := CompactStats{
		NodeSlotsReclaimed: len(t.freeNodes),
		KidSlotsReclaimed:  len(t.freeKids),
		CapacityBefore:     len(t.nodes),
	}
	if t.empty() {
		t.nodes, t.kids = nil, nil
		t.freeNodes, t.freeKids = nil, nil
		t.root = nilNode
		return cs
	}
	nodes := make([]node, 0, t.numNodes)
	kids := make([]kidsBlock, 0, len(t.kids)-len(t.freeKids))
	t.root = t.compactNode(t.root, &nodes, &kids)
	t.nodes, t.kids = nodes, kids
	// Drop the free-list backing arrays too: a freshly compacted arena
	// has no holes, and the lists regrow on demand after future prunes.
	t.freeNodes, t.freeKids = nil, nil
	cs.CapacityAfter = len(t.nodes)
	return cs
}

// compactNode copies the subtree rooted at h into the dense arenas in
// DFS preorder, rewriting child handles as it goes, and returns h's new
// handle. The destination slices are pre-sized to the exact live counts,
// so the appends never reallocate and the kb index stays stable across
// the recursion.
func (t *Tree) compactNode(h uint32, nodes *[]node, kids *[]kidsBlock) uint32 {
	n := t.nodes[h]
	nh := uint32(len(*nodes))
	*nodes = append(*nodes, n)
	if n.kids == nilKids {
		return nh
	}
	kb := uint32(len(*kids))
	*kids = append(*kids, emptyKids)
	(*nodes)[nh].kids = kb
	for i, c := range t.kids[n.kids] {
		if c != nilNode {
			(*kids)[kb][i] = t.compactNode(c, nodes, kids)
		}
	}
	return nh
}
