package octree

import (
	"bytes"
	"testing"
)

// TestCompactInvariants churns a tree until its free lists are loaded,
// compacts, and checks the arena post-conditions: dense (live ==
// capacity, free lists empty), the walk recount still matches, and the
// structure is untouched.
func TestCompactInvariants(t *testing.T) {
	p := smallParams(6)
	tr := New(p)
	churn(tr, 123, 8000)
	liveBefore, freeBefore, capBefore := tr.ArenaStats()
	if freeBefore == 0 {
		t.Fatal("churn produced no free-listed slots; test is vacuous")
	}
	ref := New(p)
	var blob bytes.Buffer
	if _, err := tr.WriteTo(&blob); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.ReadFrom(bytes.NewReader(blob.Bytes())); err != nil {
		t.Fatal(err)
	}

	cs := tr.Compact()
	if cs.NodeSlotsReclaimed != freeBefore || cs.CapacityBefore != capBefore {
		t.Errorf("CompactStats = %+v, want %d slots reclaimed from capacity %d", cs, freeBefore, capBefore)
	}
	live, free, capacity := tr.ArenaStats()
	if live != liveBefore {
		t.Errorf("live nodes changed: %d -> %d", liveBefore, live)
	}
	if free != 0 || live != capacity {
		t.Errorf("arena not dense after Compact: live %d, free %d, capacity %d", live, free, capacity)
	}
	if capacity >= capBefore {
		t.Errorf("capacity did not shrink: %d -> %d", capBefore, capacity)
	}
	recount(t, tr, "after Compact")
	if !tr.Equal(ref) {
		t.Error("Compact changed observable structure")
	}
}

// TestCompactSerializationIdentical is the equivalence guarantee: the
// byte stream is structure-only, so compacting must not move a single
// serialized byte.
func TestCompactSerializationIdentical(t *testing.T) {
	tr := New(smallParams(6))
	churn(tr, 9, 6000)
	var before bytes.Buffer
	if _, err := tr.WriteTo(&before); err != nil {
		t.Fatal(err)
	}
	tr.Compact()
	var after bytes.Buffer
	if _, err := tr.WriteTo(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Error("serialization differs across Compact")
	}
}

// TestCompactDFSLayout checks the locality contract: after compaction,
// handles are assigned in DFS preorder, so the root is slot 0 and a walk
// visits strictly ascending node handles.
func TestCompactDFSLayout(t *testing.T) {
	tr := New(smallParams(6))
	churn(tr, 42, 5000)
	tr.Compact()
	if tr.empty() {
		t.Fatal("churned tree is empty")
	}
	if tr.root != 0 {
		t.Errorf("root handle = %d after Compact, want 0", tr.root)
	}
	next := uint32(0)
	var visit func(h uint32)
	var fail bool
	visit = func(h uint32) {
		if h != next {
			fail = true
			return
		}
		next++
		if kb := tr.nodes[h].kids; kb != nilKids {
			for _, c := range tr.kids[kb] {
				if c != nilNode && !fail {
					visit(c)
				}
			}
		}
	}
	visit(tr.root)
	if fail {
		t.Error("handles are not a dense DFS preorder after Compact")
	}
}

// TestCompactThenMutate proves a compacted tree is fully live: updates,
// pruning, re-expansion and a second compaction all keep the accounting
// intact.
func TestCompactThenMutate(t *testing.T) {
	tr := New(smallParams(5))
	churn(tr, 7, 4000)
	tr.Compact()
	churn(tr, 8, 4000)
	recount(t, tr, "after post-compact churn")
	tr.Compact()
	recount(t, tr, "after second Compact")
	if _, free, _ := tr.ArenaStats(); free != 0 {
		t.Errorf("free list not empty after Compact: %d", free)
	}
}

// TestCompactEmptyAndClearedTrees covers the degenerate receivers.
func TestCompactEmptyAndClearedTrees(t *testing.T) {
	tr := New(smallParams(4))
	cs := tr.Compact()
	if cs.CapacityBefore != 0 || cs.CapacityAfter != 0 {
		t.Errorf("empty-tree CompactStats = %+v", cs)
	}
	churn(tr, 3, 500)
	tr.Clear()
	tr.Compact()
	if live, free, capacity := tr.ArenaStats(); live != 0 || free != 0 || capacity != 0 {
		t.Errorf("cleared+compacted arena not empty: %d/%d/%d", live, free, capacity)
	}
	// Still usable afterwards.
	tr.UpdateOccupied(Key{X: 1, Y: 2, Z: 3})
	if !tr.Occupied(Key{X: 1, Y: 2, Z: 3}) {
		t.Error("tree unusable after compacting an empty arena")
	}
}

func TestCompactionPolicy(t *testing.T) {
	var zero CompactionPolicy
	if zero.Enabled() || zero.Triggers(10, 90, 100) {
		t.Error("zero policy must stay disabled")
	}
	p := CompactionPolicy{MinFreeFraction: 0.25, MinFreeSlots: 16}
	if p.Triggers(90, 10, 100) {
		t.Error("triggered below both thresholds")
	}
	if p.Triggers(980, 20, 1000) {
		t.Error("triggered below the fraction threshold")
	}
	if !p.Triggers(70, 30, 100) {
		t.Error("did not trigger above both thresholds")
	}
	if p.Triggers(0, 0, 0) {
		t.Error("triggered on an empty arena")
	}
	for _, bad := range []CompactionPolicy{
		{MinFreeFraction: -0.1},
		{MinFreeFraction: 1.5},
		{MinFreeFraction: 0.5, MinFreeSlots: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid policy %+v accepted", bad)
		}
	}
	if err := p.Validate(); err != nil {
		t.Errorf("valid policy rejected: %v", err)
	}

	tr := New(smallParams(5))
	churn(tr, 5, 4000)
	_, free, capacity := tr.ArenaStats()
	if free == 0 {
		t.Fatal("churn produced no free slots")
	}
	loose := CompactionPolicy{MinFreeFraction: float64(free) / float64(capacity) / 2, MinFreeSlots: 1}
	if !tr.NeedsCompaction(loose) {
		t.Error("NeedsCompaction false above threshold")
	}
	tr.Compact()
	if tr.NeedsCompaction(loose) {
		t.Error("NeedsCompaction true on a dense arena")
	}
}
