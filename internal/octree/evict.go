package octree

import "octocache/internal/voxel"

// EvictSubtree detaches the whole subtree covering the tile at tileDepth
// that contains corner, appending its canonical leaf run (exactly what
// Walk would emit for that cube, in Morton order) to dst and recycling
// every detached slot through the arena free lists. It is the windowed
// map's spill primitive: the returned run round-trips through SetLeafAt —
// reinstalling it leaf-by-leaf re-prunes to the original canonical
// structure, so evict + reload is invisible to queries and serialization.
//
// A pruned aggregate spanning the tile and its siblings is expanded on
// the way down so only the tile's share detaches; the siblings keep the
// aggregate value as separate leaves and re-prune on the next write or
// reload that restores equality. Interior nodes left childless by the
// detach are freed, and max-of-children values are recomputed up to the
// root. If the tile holds no content the tree is left untouched.
//
// Cost is proportional to the tile's subtree size plus one root-to-tile
// descent, so eviction pauses are bounded by tile granularity — the
// window policy caps tiles per cycle to keep them short.
func (t *Tree) EvictSubtree(corner Key, tileDepth int, dst []Leaf) []Leaf {
	if tileDepth < 0 || tileDepth > t.params.Depth {
		panic("octree: EvictSubtree depth out of range")
	}
	if t.empty() {
		return dst
	}
	corner = voxel.TileOf(corner, tileDepth, t.params.Depth)
	if tileDepth == 0 {
		dst = t.collectLeaves(t.root, 0, Key{}, dst)
		t.freeSubtree(t.root)
		t.root = nilNode
		return dst
	}

	type pathEnt struct {
		h   uint32
		idx int
	}
	var path [16]pathEnt
	h := t.root
	for d := 0; d < tileDepth; d++ {
		if t.nodes[h].kids == nilKids {
			// A pruned aggregate covers the tile and its siblings:
			// materialize children so the tile's subtree can detach alone.
			t.expand(h)
		}
		idx := childIndex(corner, d, t.params.Depth)
		child := t.kids[t.nodes[h].kids][idx]
		if child == nilNode {
			// Empty tile. No ancestor was expanded on the way here — an
			// expanded aggregate materializes all eight octants, so after
			// any expansion the descent can never hit an absent child —
			// and the tree is untouched.
			return dst
		}
		path[d] = pathEnt{h: h, idx: idx}
		h = child
	}

	dst = t.collectLeaves(h, tileDepth, corner, dst)
	t.kids[t.nodes[path[tileDepth-1].h].kids][path[tileDepth-1].idx] = nilNode
	t.freeSubtree(h)

	// Ascend: free interiors left with no children; once a level keeps
	// other content, recompute max-of-children values up to the root.
	for d := tileDepth - 1; d >= 0; d-- {
		ph := path[d].h
		hasKids := false
		for _, c := range t.kids[t.nodes[ph].kids] {
			if c != nilNode {
				hasKids = true
				break
			}
		}
		if hasKids {
			for u := d; u >= 0; u-- {
				t.restoreInvariant(path[u].h)
			}
			return dst
		}
		if d == 0 {
			t.freeSubtree(ph)
			t.root = nilNode
			return dst
		}
		t.kids[t.nodes[path[d-1].h].kids][path[d-1].idx] = nilNode
		t.freeSubtree(ph)
	}
	return dst
}

// collectLeaves appends the subtree's leaf run to dst in Morton order —
// Walk's emission restricted to one subtree, without the closure.
func (t *Tree) collectLeaves(h uint32, depth int, prefix Key, dst []Leaf) []Leaf {
	n := t.nodes[h]
	if n.kids == nilKids || depth == t.params.Depth {
		return append(dst, Leaf{Key: prefix, Depth: depth, LogOdds: n.logOdds})
	}
	shift := uint(t.params.Depth - 1 - depth)
	for i, c := range t.kids[n.kids] {
		if c == nilNode {
			continue
		}
		child := Key{
			X: prefix.X | uint16(i&1)<<shift,
			Y: prefix.Y | uint16(i>>1&1)<<shift,
			Z: prefix.Z | uint16(i>>2&1)<<shift,
		}
		dst = t.collectLeaves(c, depth+1, child, dst)
	}
	return dst
}
