package octree

import (
	"bytes"
	"math/rand"
	"testing"

	"octocache/internal/voxel"
)

// reinstall writes a leaf run back via SetLeafAt — the windowed map's
// reload path.
func reinstall(tr *Tree, leaves []Leaf) {
	for _, l := range leaves {
		tr.SetLeafAt(l.Key, l.Depth, l.LogOdds)
	}
}

func checkArena(t *testing.T, tr *Tree, when string) {
	t.Helper()
	counted := 0
	if !tr.empty() {
		tr.iterate(tr.root, func(*node) { counted++ })
	}
	if counted != tr.NumNodes() {
		t.Fatalf("%s: %d reachable, NumNodes %d", when, counted, tr.NumNodes())
	}
	live, free, capacity := tr.ArenaStats()
	if live+free != capacity {
		t.Fatalf("%s: slots leaked: live %d + free %d != capacity %d", when, live, free, capacity)
	}
}

// TestEvictSubtreeRoundTrip is the core spill contract: evict every tile
// of a random tree one by one, reinstall the runs, and the tree must be
// structurally identical to the original — same canonical pruning, same
// serialized bytes — with no arena slots leaked along the way.
func TestEvictSubtreeRoundTrip(t *testing.T) {
	for _, tileDepth := range []int{1, 2, 3} {
		tr := buildRandomTree(41, 400, 5)
		var want bytes.Buffer
		if _, err := tr.WriteTo(&want); err != nil {
			t.Fatal(err)
		}
		orig := buildRandomTree(41, 400, 5)

		tileSize := uint16(1) << uint(tr.params.Depth-tileDepth)
		space := uint16(1) << uint(tr.params.Depth)
		var spilled []Leaf
		for x := uint16(0); x < space; x += tileSize {
			for y := uint16(0); y < space; y += tileSize {
				for z := uint16(0); z < space; z += tileSize {
					corner := Key{X: x, Y: y, Z: z}
					run := tr.EvictSubtree(corner, tileDepth, nil)
					for _, l := range run {
						if voxel.TileOf(l.Key, tileDepth, tr.params.Depth) != corner {
							t.Fatalf("tileDepth %d: leaf %v escaped tile %v", tileDepth, l.Key, corner)
						}
						if l.Depth < tileDepth {
							t.Fatalf("tileDepth %d: leaf coarser than its tile", tileDepth)
						}
					}
					checkArena(t, tr, "after evict")
					spilled = append(spilled, run...)
				}
			}
		}
		if !tr.empty() || tr.NumLeaves() != 0 {
			t.Fatalf("tileDepth %d: tree not empty after evicting every tile", tileDepth)
		}
		// Evicted runs cover exactly the original content.
		probe := rand.New(rand.NewSource(7))
		reinstall(tr, spilled)
		checkArena(t, tr, "after reinstall")
		if !tr.Equal(orig) {
			t.Fatalf("tileDepth %d: reinstalled tree differs structurally", tileDepth)
		}
		var got bytes.Buffer
		if _, err := tr.WriteTo(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("tileDepth %d: reinstalled serialization differs", tileDepth)
		}
		for i := 0; i < 200; i++ {
			k := Key{X: uint16(probe.Intn(32)), Y: uint16(probe.Intn(32)), Z: uint16(probe.Intn(32))}
			gl, gk := tr.Search(k)
			wl, wk := orig.Search(k)
			if gl != wl || gk != wk {
				t.Fatalf("tileDepth %d: Search(%v) = (%v,%v), want (%v,%v)", tileDepth, k, gl, gk, wl, wk)
			}
		}
	}
}

// TestEvictSubtreePartial evicts one tile and checks the rest of the
// tree answers unchanged while the tile reads as unknown.
func TestEvictSubtreePartial(t *testing.T) {
	tr := buildRandomTree(43, 500, 5)
	orig := buildRandomTree(43, 500, 5)
	const tileDepth = 2
	corner := Key{X: 8, Y: 8, Z: 0} // tile size 8 at depth 5
	run := tr.EvictSubtree(corner, tileDepth, nil)
	checkArena(t, tr, "after evict")
	if len(run) == 0 {
		t.Fatal("test tile was empty; pick a different seed")
	}
	for x := 0; x < 32; x++ {
		for y := 0; y < 32; y++ {
			for z := 0; z < 32; z++ {
				k := Key{X: uint16(x), Y: uint16(y), Z: uint16(z)}
				gl, gk := tr.Search(k)
				if voxel.TileOf(k, tileDepth, 5) == corner {
					if gk {
						t.Fatalf("evicted voxel %v still known", k)
					}
					continue
				}
				if wl, wk := orig.Search(k); gl != wl || gk != wk {
					t.Fatalf("untouched voxel %v changed: (%v,%v) vs (%v,%v)", k, gl, gk, wl, wk)
				}
			}
		}
	}
	reinstall(tr, run)
	if !tr.Equal(orig) {
		t.Fatal("reload did not restore the tree")
	}
}

// TestEvictSubtreeAggregate evicts a tile buried inside a pruned
// aggregate: the aggregate must expand so only the tile detaches, the
// siblings keep its value, and reload re-prunes to the original form.
func TestEvictSubtreeAggregate(t *testing.T) {
	p := smallParams(5)
	tr := New(p)
	// One aggregate covering the whole octant at depth 1 (cube of 16³).
	tr.SetLeafAt(Key{}, 1, 1.5)
	var want bytes.Buffer
	if _, err := tr.WriteTo(&want); err != nil {
		t.Fatal(err)
	}
	const tileDepth = 3 // tile size 4
	run := tr.EvictSubtree(Key{X: 4, Y: 0, Z: 4}, tileDepth, nil)
	checkArena(t, tr, "after evict")
	if len(run) != 1 || run[0].Depth != tileDepth || run[0].LogOdds != 1.5 {
		t.Fatalf("aggregate tile run = %+v", run)
	}
	if run[0].Key != (Key{X: 4, Y: 0, Z: 4}) {
		t.Fatalf("run key = %v", run[0].Key)
	}
	if _, known := tr.Search(Key{X: 5, Y: 1, Z: 5}); known {
		t.Fatal("evicted region still known")
	}
	if l, known := tr.Search(Key{X: 1, Y: 1, Z: 1}); !known || l != 1.5 {
		t.Fatal("sibling region lost the aggregate value")
	}
	reinstall(tr, run)
	checkArena(t, tr, "after reinstall")
	var got bytes.Buffer
	if _, err := tr.WriteTo(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("reload did not re-prune to the original aggregate")
	}
}

// TestEvictSubtreeEmptyTile: evicting a tile with no content must leave
// the tree byte-identical — in particular it must not expand aggregates
// on a miss.
func TestEvictSubtreeEmptyTile(t *testing.T) {
	tr := New(smallParams(5))
	tr.SetNodeValue(Key{X: 1, Y: 2, Z: 3}, 2)
	before := tr.NumNodes()
	if run := tr.EvictSubtree(Key{X: 24, Y: 24, Z: 24}, 2, nil); len(run) != 0 {
		t.Fatalf("empty tile returned %d leaves", len(run))
	}
	if tr.NumNodes() != before {
		t.Fatal("empty-tile evict mutated the tree")
	}
	// Empty tree: no-op.
	empty := New(smallParams(5))
	if run := empty.EvictSubtree(Key{}, 2, nil); len(run) != 0 || !empty.empty() {
		t.Fatal("evict on empty tree misbehaved")
	}
}

// TestEvictSubtreeWholeTree: tileDepth 0 drains everything.
func TestEvictSubtreeWholeTree(t *testing.T) {
	tr := buildRandomTree(47, 300, 4)
	orig := buildRandomTree(47, 300, 4)
	run := tr.EvictSubtree(Key{X: 9, Y: 3, Z: 14}, 0, nil)
	checkArena(t, tr, "after whole-tree evict")
	if !tr.empty() {
		t.Fatal("tree not empty after tileDepth-0 evict")
	}
	reinstall(tr, run)
	if !tr.Equal(orig) {
		t.Fatal("whole-tree round trip diverged")
	}
}
