package octree

import (
	"bytes"
	"testing"
)

// FuzzReadFrom ensures arbitrary byte streams never panic the .ot
// deserializer — they must either parse or return an error.
func FuzzReadFrom(f *testing.F) {
	// Seed with a real serialized tree and simple corruptions of it.
	tr := buildRandomTree(31, 200, 5)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("OCTGo1\r\n garbage"))
	mut := append([]byte(nil), valid...)
	if len(mut) > 40 {
		mut[40] ^= 0xFF
	}
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		var back Tree
		_, err := back.ReadFrom(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Parsed successfully: the tree must be internally consistent.
		counted := 0
		back.iterate(back.root, func(*node) { counted++ })
		if counted != back.NumNodes() {
			t.Fatalf("parsed tree inconsistent: %d reachable, NumNodes %d", counted, back.NumNodes())
		}
	})
}

// FuzzOpStream drives the tree through an arbitrary interleaving of
// updates, overwrites, aggregate writes, arena compactions, subtree
// evict/reload round-trips, and serialize round-trips. The mix is chosen
// so pruning and re-expansion constantly push slots through the arena
// free lists, and the round-trip check (a rebuilt tree's arena is filled
// linearly, with no recycling history) catches any way recycled handles
// could leak into observable structure; interleaved Compact calls
// additionally prove the dense re-layout serializes bit-identically and
// leaves a fully live tree, and interleaved EvictSubtree + SetLeafAt
// reinstalls prove the windowed map's spill unit is invisible to
// serialization. Invariants checked after every op: numNodes matches a
// walk recount, and live + free slots equal the arena's total.
func FuzzOpStream(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x83, 0xc4, 0x05, 0x46, 0x87, 0xff, 0x00})
	f.Add([]byte{0xc0, 0xc1, 0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7, 0xe0, 0x01})
	f.Add(bytes.Repeat([]byte{0x40, 0xe1, 0x81}, 30))

	f.Fuzz(func(t *testing.T, ops []byte) {
		p := smallParams(4)
		tr := New(p)
		check := func(step int) {
			counted := 0
			if !tr.empty() {
				tr.iterate(tr.root, func(*node) { counted++ })
			}
			if counted != tr.NumNodes() {
				t.Fatalf("op %d: %d reachable, NumNodes %d", step, counted, tr.NumNodes())
			}
			live, free, capacity := tr.ArenaStats()
			if live+free != capacity {
				t.Fatalf("op %d: slots leaked: live %d + free %d != capacity %d", step, live, free, capacity)
			}
		}
		for i, b := range ops {
			// Decode one op from one byte: 2 op bits, then 6 bits of
			// position/value salt.
			k := Key{X: uint16(b & 0x3), Y: uint16(b >> 2 & 0x3), Z: uint16(b >> 4 & 0x3)}
			switch b >> 6 {
			case 0:
				tr.Update(k, b&1 == 0)
			case 1:
				// Saturate the octant so it prunes.
				for d := uint16(0); d < 8; d++ {
					tr.SetNodeValue(Key{X: k.X&^1 | d&1, Y: k.Y&^1 | d>>1&1, Z: k.Z&^1 | d>>2&1}, p.ClampMax)
				}
			case 2:
				depth := int(b>>2&0x3) + 1 // 1..4
				mask := uint16(0xffff) << uint(p.Depth-depth)
				tr.SetLeafAt(Key{X: k.X & mask, Y: k.Y & mask, Z: k.Z & mask}, depth, float32(int(b&0x3f)-32)/8)
			case 3:
				if b&4 != 0 {
					// Evict the tile containing k and immediately
					// reinstall its run: the windowed map's spill/reload
					// cycle must not change the serialized bytes.
					tileDepth := int(b>>3&0x3) + 1 // 1..4
					var pre bytes.Buffer
					if _, err := tr.WriteTo(&pre); err != nil {
						t.Fatalf("op %d: WriteTo before evict: %v", i, err)
					}
					run := tr.EvictSubtree(k, tileDepth, nil)
					check(i)
					for _, l := range run {
						tr.SetLeafAt(l.Key, l.Depth, l.LogOdds)
					}
					var post bytes.Buffer
					if _, err := tr.WriteTo(&post); err != nil {
						t.Fatalf("op %d: WriteTo after reload: %v", i, err)
					}
					if !bytes.Equal(pre.Bytes(), post.Bytes()) {
						t.Fatalf("op %d: evict/reload changed the serialized bytes", i)
					}
				}
				if b&2 != 0 {
					// Compact mid-stream: the serialized stream is
					// structure-only, so the bytes must not move.
					var pre bytes.Buffer
					if _, err := tr.WriteTo(&pre); err != nil {
						t.Fatalf("op %d: WriteTo before Compact: %v", i, err)
					}
					tr.Compact()
					if live, free, capacity := tr.ArenaStats(); free != 0 || live != capacity {
						t.Fatalf("op %d: arena not dense after Compact: %d/%d/%d", i, live, free, capacity)
					}
					var post bytes.Buffer
					if _, err := tr.WriteTo(&post); err != nil {
						t.Fatalf("op %d: WriteTo after Compact: %v", i, err)
					}
					if !bytes.Equal(pre.Bytes(), post.Bytes()) {
						t.Fatalf("op %d: Compact changed the serialized bytes", i)
					}
				}
				var buf bytes.Buffer
				if _, err := tr.WriteTo(&buf); err != nil {
					t.Fatalf("op %d: WriteTo: %v", i, err)
				}
				var back Tree
				if _, err := back.ReadFrom(&buf); err != nil {
					t.Fatalf("op %d: ReadFrom: %v", i, err)
				}
				if !tr.Equal(&back) {
					t.Fatalf("op %d: round-trip diverged", i)
				}
				if b&1 == 1 {
					// Continue on the rebuilt (recycling-free) tree half
					// the time so both arenas stay under test.
					tr = &back
				}
			}
			check(i)
		}
	})
}

// FuzzReadBT does the same for the OctoMap .bt parser.
func FuzzReadBT(f *testing.F) {
	tr := buildRandomTree(32, 150, 5)
	var buf bytes.Buffer
	if err := tr.WriteBT(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)*2/3])
	f.Add([]byte("id OcTree\nres 0.1\ndata\n"))
	f.Add([]byte("# comment\nid OcTree\nsize 1\nres -5\ndata\n\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		back := New(DefaultParams(0.1))
		_ = back.ReadBT(bytes.NewReader(data)) // must not panic
	})
}
