package octree

import (
	"bytes"
	"testing"
)

// FuzzReadFrom ensures arbitrary byte streams never panic the .ot
// deserializer — they must either parse or return an error.
func FuzzReadFrom(f *testing.F) {
	// Seed with a real serialized tree and simple corruptions of it.
	tr := buildRandomTree(31, 200, 5)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("OCTGo1\r\n garbage"))
	mut := append([]byte(nil), valid...)
	if len(mut) > 40 {
		mut[40] ^= 0xFF
	}
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		var back Tree
		_, err := back.ReadFrom(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Parsed successfully: the tree must be internally consistent.
		counted := 0
		back.iterate(back.root, func(*node) { counted++ })
		if counted != back.NumNodes() {
			t.Fatalf("parsed tree inconsistent: %d reachable, NumNodes %d", counted, back.NumNodes())
		}
	})
}

// FuzzReadBT does the same for the OctoMap .bt parser.
func FuzzReadBT(f *testing.F) {
	tr := buildRandomTree(32, 150, 5)
	var buf bytes.Buffer
	if err := tr.WriteBT(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)*2/3])
	f.Add([]byte("id OcTree\nres 0.1\ndata\n"))
	f.Add([]byte("# comment\nid OcTree\nsize 1\nres -5\ndata\n\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		back := New(DefaultParams(0.1))
		_ = back.ReadBT(bytes.NewReader(data)) // must not panic
	})
}
