package octree

// IndexedTree models VoxelCache (Kanus et al., SIGGRAPH/Eurographics
// Graphics Hardware '03), the closest prior software approach the paper
// compares against (Table 1): an auxiliary index that locates a voxel's
// node in O(1), skipping the root-to-leaf *search*. Crucially — and this
// is the paper's critique — it does not address the octree bottleneck:
//
//   - every update still writes the leaf AND all its ancestors (the
//     upward half of the Figure 5 round trip survives);
//   - queries still wait until the whole batch of updates completes;
//   - keeping the index valid forbids pruning, so memory grows well
//     beyond OctoMap's (the same resource critique the paper levels at
//     Skimap).
//
// The Table 1 baseline experiment measures exactly these three effects.
type IndexedTree struct {
	params   Params
	root     *inode
	index    map[Key]*inode
	numNodes int

	nodeVisits int64
}

// inode is a node with a parent pointer, enabling direct leaf access
// with upward propagation. The parent pointer is what makes pruning
// unsafe (the index holds interior references), hence no pruning here.
type inode struct {
	children *[8]*inode
	parent   *inode
	logOdds  float32
}

// NewIndexed creates an empty indexed occupancy tree.
func NewIndexed(params Params) (*IndexedTree, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &IndexedTree{
		params: params,
		index:  make(map[Key]*inode),
	}, nil
}

// Params returns the tree's configuration.
func (t *IndexedTree) Params() Params { return t.params }

// NumNodes returns the number of allocated nodes (leaves + interior).
func (t *IndexedTree) NumNodes() int { return t.numNodes }

// NodeVisits mirrors Tree.NodeVisits.
func (t *IndexedTree) NodeVisits() int64 { return t.nodeVisits }

// MemoryBytes estimates the heap footprint: 24-byte nodes (two pointers
// plus value, padded), 64-byte child arrays for interior nodes, and the
// index's map overhead (~48 bytes per entry including the key and
// bucket bookkeeping).
func (t *IndexedTree) MemoryBytes() int64 {
	var interior int64
	var walk func(*inode)
	walk = func(n *inode) {
		if n == nil {
			return
		}
		if n.children != nil {
			interior++
			for _, c := range n.children {
				walk(c)
			}
		}
	}
	walk(t.root)
	return int64(t.numNodes)*24 + interior*64 + int64(len(t.index))*48
}

// Update integrates one observation, using the index to skip the
// downward search when the leaf already exists.
func (t *IndexedTree) Update(k Key, occupied bool) float32 {
	delta := t.params.LogOddsMiss
	if occupied {
		delta = t.params.LogOddsHit
	}
	if leaf, ok := t.index[k]; ok {
		t.nodeVisits++
		leaf.logOdds = t.params.Clamp(leaf.logOdds + delta)
		t.propagateUp(leaf)
		return leaf.logOdds
	}
	leaf := t.descend(k)
	leaf.logOdds = t.params.Clamp(delta) // unknown voxels start at the prior
	t.index[k] = leaf
	t.propagateUp(leaf)
	return leaf.logOdds
}

// SetNodeValue overwrites the accumulated value for k.
func (t *IndexedTree) SetNodeValue(k Key, logOdds float32) float32 {
	leaf, ok := t.index[k]
	if !ok {
		leaf = t.descend(k)
		t.index[k] = leaf
	} else {
		t.nodeVisits++
	}
	leaf.logOdds = t.params.Clamp(logOdds)
	t.propagateUp(leaf)
	return leaf.logOdds
}

// descend creates the path to k's leaf, registering nothing in the index
// (the caller does).
func (t *IndexedTree) descend(k Key) *inode {
	if t.root == nil {
		t.root = &inode{children: new([8]*inode)}
		t.numNodes++
	}
	n := t.root
	for depth := 0; depth < t.params.Depth; depth++ {
		t.nodeVisits++
		idx := childIndex(k, depth, t.params.Depth)
		child := n.children[idx]
		if child == nil {
			child = &inode{parent: n}
			if depth+1 < t.params.Depth {
				child.children = new([8]*inode)
			}
			n.children[idx] = child
			t.numNodes++
		}
		n = child
	}
	return n
}

// propagateUp restores the max-of-children invariant along the parent
// chain — the residual ancestor cost VoxelCache cannot avoid.
func (t *IndexedTree) propagateUp(n *inode) {
	for p := n.parent; p != nil; p = p.parent {
		t.nodeVisits++
		var maxVal float32
		first := true
		for _, c := range p.children {
			if c == nil {
				continue
			}
			if first || c.logOdds > maxVal {
				maxVal = c.logOdds
				first = false
			}
		}
		if !first {
			if p.logOdds == maxVal {
				return // no further ancestors can change
			}
			p.logOdds = maxVal
		}
	}
}

// Search returns the accumulated occupancy of k via the index.
func (t *IndexedTree) Search(k Key) (float32, bool) {
	t.nodeVisits++
	leaf, ok := t.index[k]
	if !ok {
		return 0, false
	}
	return leaf.logOdds, true
}

// Occupied reports thresholded occupancy.
func (t *IndexedTree) Occupied(k Key) bool {
	l, known := t.Search(k)
	return known && l >= t.params.OccupancyThreshold
}

// Keys returns the set of known voxel keys (a snapshot of the index).
func (t *IndexedTree) Keys() map[Key]struct{} {
	out := make(map[Key]struct{}, len(t.index))
	for k := range t.index {
		out[k] = struct{}{}
	}
	return out
}
