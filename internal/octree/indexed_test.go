package octree

import (
	"math/rand"
	"testing"
)

func TestIndexedTreeBasics(t *testing.T) {
	p := DefaultParams(0.1)
	tr, err := NewIndexed(p)
	if err != nil {
		t.Fatal(err)
	}
	k := Key{X: 10, Y: 20, Z: 30}
	if got := tr.Update(k, true); got != p.LogOddsHit {
		t.Errorf("first hit = %v", got)
	}
	l, known := tr.Search(k)
	if !known || l != p.LogOddsHit {
		t.Errorf("Search = %v,%v", l, known)
	}
	if !tr.Occupied(k) {
		t.Error("voxel should be occupied")
	}
	if _, known := tr.Search(Key{X: 1, Y: 1, Z: 1}); known {
		t.Error("unknown voxel reported known")
	}
	if tr.NumNodes() == 0 || tr.MemoryBytes() <= 0 || tr.NodeVisits() <= 0 {
		t.Error("accounting not maintained")
	}
}

func TestIndexedTreeRejectsBadParams(t *testing.T) {
	if _, err := NewIndexed(Params{}); err == nil {
		t.Error("invalid params accepted")
	}
}

// TestIndexedMatchesTreeValues drives identical random update streams
// through Tree and IndexedTree and requires identical accumulated values.
func TestIndexedMatchesTreeValues(t *testing.T) {
	p := smallParams(6)
	a := New(p)
	b, _ := NewIndexed(p)
	rng := rand.New(rand.NewSource(12))
	keys := make([]Key, 0, 4000)
	for i := 0; i < 4000; i++ {
		k := Key{X: uint16(rng.Intn(64)), Y: uint16(rng.Intn(64)), Z: uint16(rng.Intn(64))}
		occ := rng.Intn(2) == 0
		if rng.Intn(5) == 0 {
			v := float32(rng.Float64()*6 - 3)
			a.SetNodeValue(k, v)
			b.SetNodeValue(k, v)
		} else {
			a.Update(k, occ)
			b.Update(k, occ)
		}
		keys = append(keys, k)
	}
	for _, k := range keys {
		va, ka := a.Search(k)
		vb, kb := b.Search(k)
		if ka != kb || va != vb {
			t.Fatalf("key %v: tree (%v,%v) vs indexed (%v,%v)", k, va, ka, vb, kb)
		}
	}
}

func TestIndexedUpdateCheaperWhenHot(t *testing.T) {
	// The whole point of the index: re-updating an existing voxel skips
	// the downward search. Compare node visits for a cold vs hot update.
	p := DefaultParams(0.1)
	tr, _ := NewIndexed(p)
	k := Key{X: 100, Y: 200, Z: 300}
	tr.Update(k, true)
	cold := tr.NodeVisits()
	tr.Update(k, true)
	hot := tr.NodeVisits() - cold
	if hot >= cold {
		t.Errorf("hot update visits %d >= cold %d; index not helping", hot, cold)
	}
	// But ancestors are still maintained: hot visits exceed 1.
	if hot < 2 {
		t.Errorf("hot update visits %d; ancestor propagation missing?", hot)
	}
}

func TestIndexedPropagation(t *testing.T) {
	// Root-level queries are not exposed, so verify propagation through a
	// sibling's aggregate effect: after saturating one voxel occupied and
	// then free, its sibling keeps its own value.
	p := smallParams(4)
	tr, _ := NewIndexed(p)
	k1, k2 := Key{X: 0, Y: 0, Z: 0}, Key{X: 1, Y: 0, Z: 0}
	tr.Update(k1, true)
	tr.Update(k2, false)
	v1, _ := tr.Search(k1)
	v2, _ := tr.Search(k2)
	if v1 != p.LogOddsHit || v2 != p.LogOddsMiss {
		t.Errorf("sibling values corrupted: %v %v", v1, v2)
	}
	for i := 0; i < 20; i++ {
		tr.Update(k1, false)
	}
	if v, _ := tr.Search(k1); v != p.ClampMin {
		t.Errorf("clamping broken: %v", v)
	}
	if v, _ := tr.Search(k2); v != p.LogOddsMiss {
		t.Errorf("sibling disturbed: %v", v)
	}
}

func TestIndexedKeysSnapshot(t *testing.T) {
	p := smallParams(5)
	tr, _ := NewIndexed(p)
	want := map[Key]struct{}{}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 300; i++ {
		k := Key{X: uint16(rng.Intn(32)), Y: uint16(rng.Intn(32)), Z: uint16(rng.Intn(32))}
		tr.Update(k, true)
		want[k] = struct{}{}
	}
	got := tr.Keys()
	if len(got) != len(want) {
		t.Fatalf("Keys returned %d, want %d", len(got), len(want))
	}
	for k := range want {
		if _, ok := got[k]; !ok {
			t.Fatalf("key %v missing", k)
		}
	}
}

func TestIndexedMemoryExceedsPruned(t *testing.T) {
	// Saturating a whole region prunes the standard tree to almost
	// nothing, while the indexed tree keeps every node — the resource
	// trade-off the Table 1 experiment quantifies.
	p := smallParams(4)
	a := New(p)
	b, _ := NewIndexed(p)
	for x := 0; x < 16; x++ {
		for y := 0; y < 16; y++ {
			for z := 0; z < 16; z++ {
				k := Key{X: uint16(x), Y: uint16(y), Z: uint16(z)}
				for i := 0; i < 6; i++ {
					a.UpdateOccupied(k)
					b.Update(k, true)
				}
			}
		}
	}
	if a.NumNodes() != 1 {
		t.Fatalf("standard tree should prune to 1 node, has %d", a.NumNodes())
	}
	if b.NumNodes() <= 16*16*16 {
		t.Errorf("indexed tree has %d nodes; pruning impossible so expected > 4096", b.NumNodes())
	}
	if b.MemoryBytes() <= a.MemoryBytes() {
		t.Error("indexed tree should use more memory than pruned tree")
	}
}
