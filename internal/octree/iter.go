package octree

import (
	"octocache/internal/geom"
	"octocache/internal/voxel"
)

// Leaf describes one leaf emitted by Walk: either a finest-resolution
// voxel or a pruned aggregate covering a whole cube. It is an alias of
// voxel.Leaf, the backend-neutral leaf-walk unit.
type Leaf = voxel.Leaf

// Walk visits every leaf of the tree in Morton (in-order) order. The
// walk stops early if fn returns false.
func (t *Tree) Walk(fn func(Leaf) bool) {
	if t.empty() {
		return
	}
	t.walk(t.root, 0, Key{}, fn)
}

func (t *Tree) walk(h uint32, depth int, prefix Key, fn func(Leaf) bool) bool {
	n := t.nodes[h]
	if n.kids == nilKids || depth == t.params.Depth {
		return fn(Leaf{Key: prefix, Depth: depth, LogOdds: n.logOdds})
	}
	shift := uint(t.params.Depth - 1 - depth)
	for i, c := range t.kids[n.kids] {
		if c == nilNode {
			continue
		}
		child := Key{
			X: prefix.X | uint16(i&1)<<shift,
			Y: prefix.Y | uint16(i>>1&1)<<shift,
			Z: prefix.Z | uint16(i>>2&1)<<shift,
		}
		if !t.walk(c, depth+1, child, fn) {
			return false
		}
	}
	return true
}

// NumLeaves counts the tree's leaves (voxels plus pruned aggregates).
func (t *Tree) NumLeaves() int {
	n := 0
	t.Walk(func(Leaf) bool { n++; return true })
	return n
}

// leafBox returns the world-space extent of a leaf.
func (t *Tree) leafBox(l Leaf) geom.AABB {
	res := t.params.Resolution
	half := 1 << (t.params.Depth - 1)
	min := geom.Vec3{
		X: float64(int(l.Key.X)-half) * res,
		Y: float64(int(l.Key.Y)-half) * res,
		Z: float64(int(l.Key.Z)-half) * res,
	}
	size := l.Size(t.params)
	return geom.AABB{Min: min, Max: min.Add(geom.Vec3{X: size, Y: size, Z: size})}
}

// AnyOccupiedIn reports whether any known-occupied leaf intersects box.
// The traversal prunes whole subtrees by extent, so collision checks stay
// cheap even on large maps. Inner-node values are maxima over children,
// so a below-threshold inner node can be skipped outright.
func (t *Tree) AnyOccupiedIn(box geom.AABB) bool {
	if t.empty() {
		return false
	}
	return t.anyOccupiedIn(t.root, 0, Key{}, box)
}

func (t *Tree) anyOccupiedIn(h uint32, depth int, prefix Key, box geom.AABB) bool {
	n := t.nodes[h]
	if n.logOdds < t.params.OccupancyThreshold {
		return false
	}
	ext := t.leafBox(Leaf{Key: prefix, Depth: depth})
	if !ext.Intersects(box) {
		return false
	}
	if n.kids == nilKids || depth == t.params.Depth {
		return true
	}
	shift := uint(t.params.Depth - 1 - depth)
	for i, c := range t.kids[n.kids] {
		if c == nilNode {
			continue
		}
		child := Key{
			X: prefix.X | uint16(i&1)<<shift,
			Y: prefix.Y | uint16(i>>1&1)<<shift,
			Z: prefix.Z | uint16(i>>2&1)<<shift,
		}
		if t.anyOccupiedIn(c, depth+1, child, box) {
			return true
		}
	}
	return false
}

// OccupiedLeaves returns all occupied leaves, in Morton order.
func (t *Tree) OccupiedLeaves() []Leaf {
	var out []Leaf
	t.Walk(func(l Leaf) bool {
		if l.LogOdds >= t.params.OccupancyThreshold {
			out = append(out, l)
		}
		return true
	})
	return out
}
