// Package octree implements an OctoMap-style probabilistic 3D occupancy
// octree: the default storage backend OctoCache accelerates.
//
// The tree recursively halves a cubic mapping volume down to a leaf
// resolution. Every node carries a log-odds occupancy value; an inner
// node's value is the maximum over its children (OctoMap's conservative
// aggregation), and eight equal-valued sibling leaves are pruned into
// their parent to save memory. Updating or querying a voxel requires a
// root-to-leaf traversal — the memory-access pattern whose cost motivates
// OctoCache (paper §2.2, Figure 5).
//
// The backend-neutral vocabulary (Key, Params, Leaf) lives in
// internal/voxel; this package re-exports it under aliases so existing
// octree-centric code keeps compiling while other packages migrate to
// voxel directly.
package octree

import (
	"octocache/internal/geom"
	"octocache/internal/voxel"
)

// Key addresses a voxel at the finest tree resolution. It is an alias of
// voxel.Key, the backend-neutral key type.
type Key = voxel.Key

// KeyFromMorton reconstructs the key encoded by Key.Morton.
func KeyFromMorton(m uint64) Key { return voxel.KeyFromMorton(m) }

// childIndex returns which of the eight children of a node at the given
// depth contains k.
func childIndex(k Key, depth, leafDepth int) int {
	return voxel.ChildIndex(k, depth, leafDepth)
}

// CoordToKey discretizes a world coordinate to a voxel key at resolution
// res for a tree of the given depth. ok is false when the coordinate is
// outside the mapped volume.
func CoordToKey(p geom.Vec3, res float64, depth int) (Key, bool) {
	return voxel.CoordToKey(p, res, depth)
}

// KeyToCoord returns the center coordinate of the voxel addressed by k.
func KeyToCoord(k Key, res float64, depth int) geom.Vec3 {
	return voxel.KeyToCoord(k, res, depth)
}
