package octree

import "octocache/internal/voxel"

// Params configures an occupancy octree. It is an alias of voxel.Params,
// the backend-neutral sensor model shared by every storage backend.
type Params = voxel.Params

// LogOdds converts a probability in (0,1) to log-odds.
func LogOdds(p float64) float32 { return voxel.LogOdds(p) }

// Probability converts log-odds back to a probability.
func Probability(l float32) float64 { return voxel.Probability(l) }

// DefaultParams returns OctoMap's default sensor model at the given
// resolution: P(hit)=0.7, P(miss)=0.4, clamps at P=0.12 and P=0.97,
// occupancy threshold P=0.5, depth 16.
func DefaultParams(resolution float64) Params { return voxel.DefaultParams(resolution) }
