package octree

// nodePool is an optional arena allocator for tree nodes and child
// arrays. Go gives no direct control over memory layout — the repro
// caveat for a cache-locality paper — but chunked slab allocation buys
// back part of it: nodes allocated together in insertion order sit
// contiguously (recall Figure 10: consecutive insertions share paths),
// and pruning recycles nodes through free lists instead of churning the
// GC. The abl-arena experiment quantifies the effect.
//
// Safety: only nodes dropped by pruning are recycled, and the tree holds
// the sole references to them, so recycling cannot alias live data.
type nodePool struct {
	chunk []node
	next  int

	arrChunk []childArray
	arrNext  int

	freeNodes []*node
	freeArrs  []*childArray
}

type childArray = [8]*node

// poolChunk is the slab size. Chunks are never reallocated (pointers
// into them must stay valid), only replaced when exhausted.
const poolChunk = 4096

func (p *nodePool) getNode() *node {
	if n := len(p.freeNodes); n > 0 {
		nd := p.freeNodes[n-1]
		p.freeNodes = p.freeNodes[:n-1]
		*nd = node{}
		return nd
	}
	if p.next == len(p.chunk) {
		p.chunk = make([]node, poolChunk)
		p.next = 0
	}
	nd := &p.chunk[p.next]
	p.next++
	return nd
}

func (p *nodePool) putNode(n *node) {
	p.freeNodes = append(p.freeNodes, n)
}

func (p *nodePool) getArr() *childArray {
	if n := len(p.freeArrs); n > 0 {
		a := p.freeArrs[n-1]
		p.freeArrs = p.freeArrs[:n-1]
		*a = childArray{}
		return a
	}
	if p.arrNext == len(p.arrChunk) {
		p.arrChunk = make([]childArray, poolChunk/4)
		p.arrNext = 0
	}
	a := &p.arrChunk[p.arrNext]
	p.arrNext++
	return a
}

func (p *nodePool) putArr(a *childArray) {
	p.freeArrs = append(p.freeArrs, a)
}

// NewArena creates an empty occupancy octree whose nodes come from a
// chunked arena with prune-recycling, trading Go allocator generality
// for locality and lower GC pressure. Functionally identical to New.
func NewArena(params Params) *Tree {
	t := New(params)
	t.pool = &nodePool{}
	return t
}
