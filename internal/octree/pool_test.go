package octree

import (
	"math/rand"
	"runtime"
	"testing"
)

// TestArenaTreeMatchesPlainTree drives identical update streams through a
// plain and an arena tree and requires structural equality throughout.
func TestArenaTreeMatchesPlainTree(t *testing.T) {
	p := smallParams(6)
	a := New(p)
	b := NewArena(p)
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 8000; i++ {
		k := Key{uint16(rng.Intn(64)), uint16(rng.Intn(64)), uint16(rng.Intn(64))}
		switch rng.Intn(3) {
		case 0, 1:
			occ := rng.Intn(2) == 0
			a.Update(k, occ)
			b.Update(k, occ)
		case 2:
			v := float32(rng.Float64()*6 - 3)
			a.SetNodeValue(k, v)
			b.SetNodeValue(k, v)
		}
		if i%2000 == 1999 && !a.Equal(b) {
			t.Fatalf("trees diverged at step %d", i)
		}
	}
	if !a.Equal(b) {
		t.Fatal("final trees differ")
	}
	if a.NumNodes() != b.NumNodes() {
		t.Errorf("node counts differ: %d vs %d", a.NumNodes(), b.NumNodes())
	}
}

// TestArenaRecyclingUnderPruneExpandChurn saturates and diverges regions
// repeatedly so pruning and expansion cycle nodes through the free lists.
func TestArenaRecyclingUnderPruneExpandChurn(t *testing.T) {
	p := smallParams(3)
	tr := NewArena(p)
	for round := 0; round < 5; round++ {
		// Saturate: prunes to a single node.
		for x := 0; x < 8; x++ {
			for y := 0; y < 8; y++ {
				for z := 0; z < 8; z++ {
					for i := 0; i < 6; i++ {
						tr.UpdateOccupied(Key{uint16(x), uint16(y), uint16(z)})
					}
				}
			}
		}
		if tr.NumNodes() != 1 {
			t.Fatalf("round %d: not pruned (%d nodes)", round, tr.NumNodes())
		}
		// Diverge: forces expansion chains from recycled nodes.
		tr.SetNodeValue(Key{3, 3, 3}, p.ClampMin)
		if l, _ := tr.Search(Key{3, 3, 3}); l != p.ClampMin {
			t.Fatalf("round %d: diverged voxel lost", round)
		}
		if l, _ := tr.Search(Key{0, 7, 2}); l != p.ClampMax {
			t.Fatalf("round %d: sibling corrupted", round)
		}
		// Drive it back up for the next round.
		for i := 0; i < 20; i++ {
			tr.UpdateOccupied(Key{3, 3, 3})
		}
	}
}

// TestArenaFewerAllocations confirms the arena actually reduces heap
// allocations for tree construction.
func TestArenaFewerAllocations(t *testing.T) {
	p := smallParams(8)
	build := func(tr *Tree) {
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 50000; i++ {
			tr.UpdateOccupied(Key{uint16(rng.Intn(256)), uint16(rng.Intn(256)), uint16(rng.Intn(256))})
		}
	}
	countAllocs := func(f func()) uint64 {
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		f()
		runtime.ReadMemStats(&m1)
		return m1.Mallocs - m0.Mallocs
	}
	plain := countAllocs(func() { build(New(p)) })
	arena := countAllocs(func() { build(NewArena(p)) })
	if arena >= plain {
		t.Errorf("arena allocations %d >= plain %d", arena, plain)
	}
	if arena > plain/10 {
		t.Logf("note: arena %d vs plain %d (expected ~chunked reduction)", arena, plain)
	}
}

func TestArenaClearResets(t *testing.T) {
	tr := NewArena(smallParams(4))
	tr.UpdateOccupied(Key{1, 2, 3})
	tr.Clear()
	if tr.NumNodes() != 0 {
		t.Error("Clear left nodes")
	}
	tr.UpdateOccupied(Key{4, 5, 6})
	if !tr.Occupied(Key{4, 5, 6}) {
		t.Error("arena tree unusable after Clear")
	}
}

func BenchmarkUpdatePlain(b *testing.B) {
	benchUpdates(b, New(DefaultParams(0.1)))
}

func BenchmarkUpdateArena(b *testing.B) {
	benchUpdates(b, NewArena(DefaultParams(0.1)))
}

func benchUpdates(b *testing.B, tr *Tree) {
	rng := rand.New(rand.NewSource(1))
	keys := make([]Key, 1<<14)
	for i := range keys {
		keys[i] = Key{uint16(rng.Intn(1024)), uint16(rng.Intn(1024)), uint16(rng.Intn(64))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.UpdateOccupied(keys[i&(1<<14-1)])
	}
}
