package octree

import (
	"math"

	"octocache/internal/geom"
)

// CastRay walks from origin along dir (unit length) until it enters a
// known-occupied voxel or exceeds maxRange, mirroring OctoMap's castRay.
// It returns the center of the first occupied voxel hit. Unknown space is
// traversed when ignoreUnknown is true and terminates the ray otherwise
// (OctoMap's default behaviour: unknown cells are not traversable for
// visibility purposes).
func (t *Tree) CastRay(origin, dir geom.Vec3, maxRange float64, ignoreUnknown bool) (hit geom.Vec3, ok bool) {
	res := t.params.Resolution
	cur, okKey := t.CoordToKey(origin)
	if !okKey {
		return geom.Vec3{}, false
	}
	if maxRange <= 0 {
		// The worst-case in-cube ray is the cube diagonal, √3 × the
		// edge; defaulting to MapSize alone would stop a diagonal cast
		// short of a reachable far-corner voxel. Rays leaving the cube
		// still exit promptly through the grid-bounds check below.
		maxRange = math.Sqrt(3) * t.params.MapSize()
	}

	// Degenerate direction.
	n := dir.Norm()
	if n == 0 {
		return geom.Vec3{}, false
	}
	dir = dir.Scale(1 / n)

	half := 1 << (t.params.Depth - 1)
	c := [3]int{int(cur.X), int(cur.Y), int(cur.Z)}
	o := [3]float64{origin.X, origin.Y, origin.Z}
	d := [3]float64{dir.X, dir.Y, dir.Z}
	var step [3]int
	var tMax, tDelta [3]float64
	for i := 0; i < 3; i++ {
		switch {
		case d[i] > 0:
			step[i] = 1
			boundary := float64(c[i]-half+1) * res
			tMax[i] = (boundary - o[i]) / d[i]
			tDelta[i] = res / d[i]
		case d[i] < 0:
			step[i] = -1
			boundary := float64(c[i]-half) * res
			tMax[i] = (boundary - o[i]) / d[i]
			tDelta[i] = -res / d[i]
		default:
			step[i] = 0
			tMax[i] = math.Inf(1)
			tDelta[i] = math.Inf(1)
		}
	}

	limit := 1 << t.params.Depth
	for dist := 0.0; dist <= maxRange; {
		k := Key{X: uint16(c[0]), Y: uint16(c[1]), Z: uint16(c[2])}
		l, known := t.Search(k)
		switch {
		case known && l >= t.params.OccupancyThreshold:
			return t.KeyToCoord(k), true
		case !known && !ignoreUnknown:
			return geom.Vec3{}, false
		}
		axis := 0
		if tMax[1] < tMax[axis] {
			axis = 1
		}
		if tMax[2] < tMax[axis] {
			axis = 2
		}
		dist = tMax[axis]
		c[axis] += step[axis]
		tMax[axis] += tDelta[axis]
		if c[axis] < 0 || c[axis] >= limit {
			return geom.Vec3{}, false
		}
	}
	return geom.Vec3{}, false
}

// WalkIn visits every leaf whose extent intersects box, in Morton order,
// pruning whole subtrees outside the box. Pruning is conservative by a
// sub-voxel epsilon (floating-point extents of coarse subtrees can round
// a hair short of their children's union), so leaves that merely touch
// the box boundary are always included. The walk stops early if fn
// returns false.
func (t *Tree) WalkIn(box geom.AABB, fn func(Leaf) bool) {
	if t.empty() {
		return
	}
	t.walkIn(t.root, 0, Key{}, box.Expand(t.params.Resolution*1e-6), fn)
}

func (t *Tree) walkIn(h uint32, depth int, prefix Key, box geom.AABB, fn func(Leaf) bool) bool {
	if !t.leafBox(Leaf{Key: prefix, Depth: depth}).Intersects(box) {
		return true
	}
	n := t.nodes[h]
	if n.kids == nilKids || depth == t.params.Depth {
		return fn(Leaf{Key: prefix, Depth: depth, LogOdds: n.logOdds})
	}
	shift := uint(t.params.Depth - 1 - depth)
	for i, c := range t.kids[n.kids] {
		if c == nilNode {
			continue
		}
		child := Key{
			X: prefix.X | uint16(i&1)<<shift,
			Y: prefix.Y | uint16(i>>1&1)<<shift,
			Z: prefix.Z | uint16(i>>2&1)<<shift,
		}
		if !t.walkIn(c, depth+1, child, box, fn) {
			return false
		}
	}
	return true
}

// SearchAtDepth queries the occupancy at a coarser tree level: depth 0 is
// the root, t.Params().Depth the finest voxels. It returns the value of
// the deepest existing node covering k at or above the requested depth —
// OctoMap's multi-resolution query.
func (t *Tree) SearchAtDepth(k Key, depth int) (logOdds float32, known bool) {
	if depth < 0 {
		depth = 0
	}
	if depth > t.params.Depth {
		depth = t.params.Depth
	}
	if t.empty() {
		return 0, false
	}
	h := t.root
	for d := 0; d < depth; d++ {
		n := t.nodes[h]
		if n.kids == nilKids {
			return n.logOdds, true
		}
		h = t.kids[n.kids][childIndex(k, d, t.params.Depth)]
		if h == nilNode {
			return 0, false
		}
	}
	return t.nodes[h].logOdds, true
}

// BBox returns the tight axis-aligned bounds of all known leaves, and
// ok=false for an empty tree.
func (t *Tree) BBox() (geom.AABB, bool) {
	var box geom.AABB
	first := true
	t.Walk(func(l Leaf) bool {
		b := t.leafBox(l)
		if first {
			box = b
			first = false
		} else {
			box = box.Union(b)
		}
		return true
	})
	return box, !first
}
