package octree

import (
	"math"
	"math/rand"
	"testing"

	"octocache/internal/geom"
)

// wallTree builds a tree with an occupied wall plane at x ≈ 3 and free
// space in front of it.
func wallTree(t *testing.T) *Tree {
	t.Helper()
	tr := New(DefaultParams(0.1))
	for y := -20; y <= 20; y++ {
		for z := -20; z <= 20; z++ {
			k, ok := tr.CoordToKey(geom.V(3.05, float64(y)*0.1, float64(z)*0.1))
			if !ok {
				t.Fatal("wall key out of bounds")
			}
			tr.UpdateOccupied(k)
		}
	}
	// Carve known-free space along the ray path.
	for x := 0; x < 30; x++ {
		k, _ := tr.CoordToKey(geom.V(float64(x)*0.1+0.05, 0.05, 0.05))
		tr.UpdateFree(k)
	}
	return tr
}

func TestCastRayHitsWall(t *testing.T) {
	tr := wallTree(t)
	hit, ok := tr.CastRay(geom.V(0.05, 0.05, 0.05), geom.V(1, 0, 0), 10, true)
	if !ok {
		t.Fatal("ray missed the wall")
	}
	if math.Abs(hit.X-3.05) > 0.1+1e-9 {
		t.Errorf("hit at x=%.3f, want ≈3.05", hit.X)
	}
}

func TestCastRayMaxRange(t *testing.T) {
	tr := wallTree(t)
	if _, ok := tr.CastRay(geom.V(0.05, 0.05, 0.05), geom.V(1, 0, 0), 2, true); ok {
		t.Error("ray hit beyond max range")
	}
}

func TestCastRayUnknownBlocks(t *testing.T) {
	tr := wallTree(t)
	// With ignoreUnknown=false a ray through unmapped space stops early.
	if _, ok := tr.CastRay(geom.V(0.05, 1.55, 0.05), geom.V(1, 0, 0), 10, false); ok {
		t.Error("ray crossed unknown space with ignoreUnknown=false")
	}
	// The same ray with ignoreUnknown=true reaches the wall.
	if _, ok := tr.CastRay(geom.V(0.05, 1.55, 0.05), geom.V(1, 0, 0), 10, true); !ok {
		t.Error("ray failed to cross unknown space with ignoreUnknown=true")
	}
}

func TestCastRayDegenerate(t *testing.T) {
	tr := wallTree(t)
	if _, ok := tr.CastRay(geom.V(0, 0, 0), geom.V(0, 0, 0), 10, true); ok {
		t.Error("zero direction should fail")
	}
	if _, ok := tr.CastRay(geom.V(1e9, 0, 0), geom.V(1, 0, 0), 10, true); ok {
		t.Error("out-of-bounds origin should fail")
	}
}

func TestCastRayDiagonal(t *testing.T) {
	tr := New(DefaultParams(0.1))
	k, _ := tr.CoordToKey(geom.V(2.05, 2.05, 2.05))
	tr.UpdateOccupied(k)
	dir := geom.V(1, 1, 1).Normalize()
	hit, ok := tr.CastRay(geom.V(0.05, 0.05, 0.05), dir, 10, true)
	if !ok {
		t.Fatal("diagonal ray missed")
	}
	if hit.Dist(geom.V(2.05, 2.05, 2.05)) > 0.2 {
		t.Errorf("diagonal hit at %v", hit)
	}
}

func TestWalkInFiltersLeaves(t *testing.T) {
	tr := New(smallParams(6))
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 400; i++ {
		tr.UpdateOccupied(Key{X: uint16(rng.Intn(64)), Y: uint16(rng.Intn(64)), Z: uint16(rng.Intn(64))})
	}
	box := geom.Box(geom.V(-1, -1, -1), geom.V(1, 1, 1))
	inBox := map[Key]bool{}
	tr.WalkIn(box, func(l Leaf) bool {
		inBox[l.Key] = true
		if !tr.leafBox(l).Intersects(box.Expand(1e-6)) {
			t.Fatalf("WalkIn emitted leaf outside box: %v", l.Key)
		}
		return true
	})
	// Every walked leaf intersecting the box must appear.
	tr.Walk(func(l Leaf) bool {
		if tr.leafBox(l).Intersects(box) && !inBox[l.Key] {
			t.Fatalf("WalkIn missed leaf %v", l.Key)
		}
		return true
	})
}

func TestWalkInEarlyStop(t *testing.T) {
	tr := New(smallParams(5))
	for i := 0; i < 20; i++ {
		tr.UpdateOccupied(Key{X: uint16(i), Y: 1, Z: 1})
	}
	count := 0
	tr.WalkIn(geom.Box(geom.V(-10, -10, -10), geom.V(10, 10, 10)), func(Leaf) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early stop visited %d leaves", count)
	}
}

func TestSearchAtDepth(t *testing.T) {
	p := smallParams(4)
	tr := New(p)
	k := Key{X: 5, Y: 6, Z: 7}
	tr.UpdateOccupied(k)
	// Full depth equals Search.
	full, knownFull := tr.SearchAtDepth(k, 4)
	direct, knownDirect := tr.Search(k)
	if full != direct || knownFull != knownDirect {
		t.Error("SearchAtDepth at full depth differs from Search")
	}
	// Root depth returns the tree max (the occupied hit).
	rootVal, known := tr.SearchAtDepth(k, 0)
	if !known || rootVal != p.LogOddsHit {
		t.Errorf("root query = %v,%v", rootVal, known)
	}
	// A key in an unknown octant is unknown at intermediate depth.
	if _, known := tr.SearchAtDepth(Key{X: 15, Y: 15, Z: 15}, 3); known {
		t.Error("unknown octant reported known")
	}
	// Clamped depth arguments must not panic.
	if _, known := tr.SearchAtDepth(k, -3); !known {
		t.Error("negative depth should clamp to root")
	}
	if v, _ := tr.SearchAtDepth(k, 99); v != direct {
		t.Error("excess depth should clamp to leaf")
	}
}

func TestBBox(t *testing.T) {
	tr := New(DefaultParams(0.1))
	if _, ok := tr.BBox(); ok {
		t.Error("empty tree has a bbox")
	}
	a, _ := tr.CoordToKey(geom.V(1, 2, 3))
	b, _ := tr.CoordToKey(geom.V(-2, 0, 1))
	tr.UpdateOccupied(a)
	tr.UpdateOccupied(b)
	box, ok := tr.BBox()
	if !ok {
		t.Fatal("bbox missing")
	}
	if !box.Contains(geom.V(1, 2, 3)) || !box.Contains(geom.V(-2, 0, 1)) {
		t.Errorf("bbox %+v does not cover the occupied voxels", box)
	}
	if box.Size().X > 4 || box.Size().Y > 3 || box.Size().Z > 3 {
		t.Errorf("bbox %+v too loose", box)
	}
}

func TestChangeTracking(t *testing.T) {
	p := DefaultParams(0.1)
	tr := New(p)
	tr.ChangeTracking(true)
	k := Key{X: 10, Y: 10, Z: 10}

	tr.UpdateOccupied(k)
	ch := tr.Changes()
	if occ, ok := ch[k]; !ok || !occ {
		t.Fatalf("new occupied voxel not recorded: %v", ch)
	}
	tr.ResetChanges()

	// Another hit: still occupied, no state change.
	tr.UpdateOccupied(k)
	if len(tr.Changes()) != 0 {
		t.Error("no-transition update recorded")
	}

	// Drive it free: transition recorded once it crosses the threshold.
	for i := 0; i < 10; i++ {
		tr.UpdateFree(k)
	}
	ch = tr.Changes()
	if occ, ok := ch[k]; !ok || occ {
		t.Fatalf("occupied->free transition not recorded: %v", ch)
	}

	// Disabling clears and stops tracking.
	tr.ChangeTracking(false)
	tr.UpdateOccupied(k)
	if len(tr.Changes()) != 0 {
		t.Error("tracking continued after disable")
	}
}

func TestChangeTrackingSetNodeValue(t *testing.T) {
	tr := New(DefaultParams(0.1))
	tr.ChangeTracking(true)
	k := Key{X: 3, Y: 4, Z: 5}
	tr.SetNodeValue(k, 2.0) // unknown -> occupied
	if occ, ok := tr.Changes()[k]; !ok || !occ {
		t.Error("SetNodeValue transition not recorded")
	}
	tr.ResetChanges()
	tr.SetNodeValue(k, -1.0) // occupied -> free
	if occ, ok := tr.Changes()[k]; !ok || occ {
		t.Error("SetNodeValue downward transition not recorded")
	}
}

func TestClearResetsChanges(t *testing.T) {
	tr := New(DefaultParams(0.1))
	tr.ChangeTracking(true)
	tr.UpdateOccupied(Key{X: 1, Y: 1, Z: 1})
	tr.Clear()
	if len(tr.Changes()) != 0 {
		t.Error("Clear kept pending changes")
	}
	// Still tracking after Clear.
	tr.UpdateOccupied(Key{X: 2, Y: 2, Z: 2})
	if len(tr.Changes()) != 1 {
		t.Error("tracking lost after Clear")
	}
}
