package octree

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary serialization of occupancy octrees, analogous to OctoMap's .ot
// container: a small header with the sensor-model parameters followed by
// a pre-order node stream. The format is deterministic, so structurally
// equal trees serialize identically — handle values never appear on the
// wire, only structure, so arena layout (and free-list history) is
// invisible to the format.

var magic = [8]byte{'O', 'C', 'T', 'G', 'o', '1', '\r', '\n'}

const (
	nodeLeaf     = 0
	nodeInterior = 1
)

// WriteTo serializes the tree. It implements io.WriterTo.
func (t *Tree) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}
	if _, err := cw.Write(magic[:]); err != nil {
		return cw.n, err
	}
	hdr := []interface{}{
		t.params.Resolution,
		int32(t.params.Depth),
		t.params.LogOddsHit,
		t.params.LogOddsMiss,
		t.params.ClampMin,
		t.params.ClampMax,
		t.params.OccupancyThreshold,
		int64(t.numNodes),
	}
	for _, v := range hdr {
		if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
			return cw.n, err
		}
	}
	hasRoot := byte(0)
	if !t.empty() {
		hasRoot = 1
	}
	if _, err := cw.Write([]byte{hasRoot}); err != nil {
		return cw.n, err
	}
	if !t.empty() {
		if err := t.writeNode(cw, t.root); err != nil {
			return cw.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

func (t *Tree) writeNode(w io.Writer, h uint32) error {
	n := t.nodes[h]
	var buf [6]byte
	binary.LittleEndian.PutUint32(buf[:4], math.Float32bits(n.logOdds))
	if n.kids == nilKids {
		buf[4] = nodeLeaf
		_, err := w.Write(buf[:5])
		return err
	}
	buf[4] = nodeInterior
	block := t.kids[n.kids]
	var mask byte
	for i, c := range block {
		if c != nilNode {
			mask |= 1 << uint(i)
		}
	}
	buf[5] = mask
	if _, err := w.Write(buf[:6]); err != nil {
		return err
	}
	for _, c := range block {
		if c == nilNode {
			continue
		}
		if err := t.writeNode(w, c); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrom deserializes a tree written by WriteTo, replacing the
// receiver's contents. It implements io.ReaderFrom.
func (t *Tree) ReadFrom(r io.Reader) (int64, error) {
	cr := &countReader{r: bufio.NewReader(r)}
	var got [8]byte
	if _, err := io.ReadFull(cr, got[:]); err != nil {
		return cr.n, fmt.Errorf("octree: reading magic: %w", err)
	}
	if got != magic {
		return cr.n, fmt.Errorf("octree: bad magic %q", got[:])
	}
	var p Params
	var depth int32
	var numNodes int64
	fields := []interface{}{
		&p.Resolution, &depth, &p.LogOddsHit, &p.LogOddsMiss,
		&p.ClampMin, &p.ClampMax, &p.OccupancyThreshold, &numNodes,
	}
	for _, f := range fields {
		if err := binary.Read(cr, binary.LittleEndian, f); err != nil {
			return cr.n, fmt.Errorf("octree: reading header: %w", err)
		}
	}
	p.Depth = int(depth)
	if err := p.Validate(); err != nil {
		return cr.n, err
	}
	var hasRoot [1]byte
	if _, err := io.ReadFull(cr, hasRoot[:]); err != nil {
		return cr.n, err
	}
	t.params = p
	t.resetArenas()
	if hasRoot[0] != 0 {
		root, err := t.readNode(cr)
		if err != nil {
			return cr.n, err
		}
		t.root = root
	}
	if int64(t.numNodes) != numNodes {
		return cr.n, fmt.Errorf("octree: node count mismatch: header %d, stream %d", numNodes, t.numNodes)
	}
	return cr.n, nil
}

// resetArenas drops all content while keeping reserved arena capacity.
func (t *Tree) resetArenas() {
	t.root = nilNode
	t.nodes = t.nodes[:0]
	t.kids = t.kids[:0]
	t.freeNodes = t.freeNodes[:0]
	t.freeKids = t.freeKids[:0]
	t.numNodes = 0
}

func (t *Tree) readNode(r io.Reader) (uint32, error) {
	var buf [5]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return nilNode, fmt.Errorf("octree: reading node: %w", err)
	}
	h := t.allocNode(math.Float32frombits(binary.LittleEndian.Uint32(buf[:4])))
	switch buf[4] {
	case nodeLeaf:
		return h, nil
	case nodeInterior:
		var mb [1]byte
		if _, err := io.ReadFull(r, mb[:]); err != nil {
			return nilNode, fmt.Errorf("octree: reading child mask: %w", err)
		}
		kb := t.allocKids()
		t.nodes[h].kids = kb
		for i := 0; i < 8; i++ {
			if mb[0]&(1<<uint(i)) == 0 {
				continue
			}
			c, err := t.readNode(r)
			if err != nil {
				return nilNode, err
			}
			t.kids[kb][i] = c
		}
		return h, nil
	default:
		return nilNode, fmt.Errorf("octree: unknown node kind %d", buf[4])
	}
}

// Equal reports whether two trees have identical parameters and
// structurally identical node contents. Arena layout is irrelevant:
// handles are compared by the structure they reach, not by value.
func (t *Tree) Equal(o *Tree) bool {
	if t.params != o.params {
		return false
	}
	if t.empty() != o.empty() {
		return false
	}
	if t.empty() {
		return true
	}
	return nodesEqual(t, o, t.root, o.root)
}

func nodesEqual(t, o *Tree, a, b uint32) bool {
	an, bn := t.nodes[a], o.nodes[b]
	if an.logOdds != bn.logOdds {
		return false
	}
	if (an.kids == nilKids) != (bn.kids == nilKids) {
		return false
	}
	if an.kids == nilKids {
		return true
	}
	ab, bb := t.kids[an.kids], o.kids[bn.kids]
	for i := range ab {
		if (ab[i] == nilNode) != (bb[i] == nilNode) {
			return false
		}
		if ab[i] == nilNode {
			continue
		}
		if !nodesEqual(t, o, ab[i], bb[i]) {
			return false
		}
	}
	return true
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
