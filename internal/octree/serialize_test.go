package octree

import (
	"bytes"
	"math/rand"
	"testing"
)

func buildRandomTree(seed int64, n int, depth int) *Tree {
	p := smallParams(depth)
	tr := New(p)
	rng := rand.New(rand.NewSource(seed))
	space := 1 << depth
	for i := 0; i < n; i++ {
		k := Key{X: uint16(rng.Intn(space)), Y: uint16(rng.Intn(space)), Z: uint16(rng.Intn(space))}
		tr.Update(k, rng.Intn(2) == 0)
	}
	return tr
}

func TestSerializeRoundTrip(t *testing.T) {
	tr := buildRandomTree(1, 2000, 6)
	var buf bytes.Buffer
	n, err := tr.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo returned %d, buffer holds %d", n, buf.Len())
	}
	var back Tree
	if _, err := back.ReadFrom(&buf); err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if !tr.Equal(&back) {
		t.Fatal("round-tripped tree differs")
	}
	if back.NumNodes() != tr.NumNodes() {
		t.Errorf("node counts differ: %d vs %d", back.NumNodes(), tr.NumNodes())
	}
}

func TestSerializeEmptyTree(t *testing.T) {
	tr := New(DefaultParams(0.25))
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	var back Tree
	if _, err := back.ReadFrom(&buf); err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if !tr.Equal(&back) {
		t.Fatal("empty tree round trip failed")
	}
}

func TestSerializeDeterministic(t *testing.T) {
	a := buildRandomTree(2, 500, 5)
	b := buildRandomTree(2, 500, 5)
	var ba, bb bytes.Buffer
	if _, err := a.WriteTo(&ba); err != nil {
		t.Fatal(err)
	}
	if _, err := b.WriteTo(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Error("identical trees serialize differently")
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	var tr Tree
	if _, err := tr.ReadFrom(bytes.NewReader([]byte("not an octree"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := tr.ReadFrom(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestReadFromRejectsTruncated(t *testing.T) {
	tr := buildRandomTree(3, 300, 5)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	var back Tree
	if _, err := back.ReadFrom(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	a := buildRandomTree(4, 300, 5)
	b := buildRandomTree(4, 300, 5)
	if !a.Equal(b) {
		t.Fatal("identically built trees should be equal")
	}
	b.UpdateOccupied(Key{X: 31, Y: 31, Z: 31})
	if a.Equal(b) {
		t.Error("diverged trees should not be equal")
	}
	c := New(DefaultParams(0.2))
	if a.Equal(c) {
		t.Error("trees with different params should not be equal")
	}
}
