package octree

import (
	"sync/atomic"

	"octocache/internal/geom"
)

// node is a tree node. A node with a nil children array is a leaf: either
// a finest-resolution voxel or a pruned aggregate standing in for a whole
// equal-valued subtree. Interior nodes always carry an allocated children
// array (entries may be nil for unknown octants); this invariant is what
// lets traversal distinguish "pruned, must expand" from "fresh interior".
type node struct {
	children *[8]*node
	logOdds  float32
}

// Tree is a probabilistic occupancy octree. Mutating it concurrently is
// not safe — OctoCache's pipelines serialize writers exactly as the
// paper prescribes (§4.4) — but any number of goroutines may call
// Search/Occupied/OccupancyAt/OccupiedAt concurrently with each other
// (not with a writer): searches never mutate the structure and count
// their node visits through an atomic side counter.
type Tree struct {
	params Params
	root   *node

	numNodes int
	// nodeVisits counts every node touched by updates; searches count
	// into searchVisits so concurrent readers stay race-free. Together
	// they are the bottleneck-analysis experiments' architecture-neutral
	// proxy for the memory accesses of Figure 5.
	nodeVisits   int64
	searchVisits atomic.Int64
	// changed records state transitions when change tracking is on.
	changed map[Key]bool
	// pool, when set (NewArena), supplies node storage from chunked
	// slabs with prune-recycling.
	pool *nodePool
}

// New creates an empty occupancy octree. It panics if params are invalid;
// use NewChecked to receive the error instead.
func New(params Params) *Tree {
	t, err := NewChecked(params)
	if err != nil {
		panic(err)
	}
	return t
}

// NewChecked creates an empty occupancy octree, validating params.
func NewChecked(params Params) (*Tree, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Tree{params: params}, nil
}

// Params returns the tree's configuration.
func (t *Tree) Params() Params { return t.params }

// Resolution returns the leaf voxel edge length in meters.
func (t *Tree) Resolution() float64 { return t.params.Resolution }

// NumNodes returns the number of allocated tree nodes.
func (t *Tree) NumNodes() int { return t.numNodes }

// NodeVisits returns the cumulative count of node touches by updates and
// searches since construction (or the last ResetNodeVisits).
func (t *Tree) NodeVisits() int64 { return t.nodeVisits + t.searchVisits.Load() }

// ResetNodeVisits zeroes the node-visit counter. Call it only while no
// searches are in flight.
func (t *Tree) ResetNodeVisits() {
	t.nodeVisits = 0
	t.searchVisits.Store(0)
}

// MemoryBytes estimates the heap footprint of the tree's nodes: each node
// is 16 bytes (pointer + float32, padded) plus 64 bytes per interior
// node's child array.
func (t *Tree) MemoryBytes() int64 {
	var interior int64
	t.iterate(t.root, func(n *node) {
		if n.children != nil {
			interior++
		}
	})
	return int64(t.numNodes)*16 + interior*64
}

func (t *Tree) iterate(n *node, fn func(*node)) {
	if n == nil {
		return
	}
	fn(n)
	if n.children != nil {
		for _, c := range n.children {
			t.iterate(c, fn)
		}
	}
}

// Clear removes all content from the tree. Change tracking, if enabled,
// stays enabled with an empty pending set.
func (t *Tree) Clear() {
	t.root = nil
	t.numNodes = 0
	t.ResetChanges()
	if t.pool != nil {
		t.pool = &nodePool{}
	}
}

// CoordToKey discretizes a world coordinate into the tree's key space.
func (t *Tree) CoordToKey(p geom.Vec3) (Key, bool) {
	return CoordToKey(p, t.params.Resolution, t.params.Depth)
}

// KeyToCoord returns the center coordinate of the voxel addressed by k.
func (t *Tree) KeyToCoord(k Key) geom.Vec3 {
	return KeyToCoord(k, t.params.Resolution, t.params.Depth)
}

// newLeaf allocates a finest-resolution or pruned leaf node.
func (t *Tree) newLeaf(l float32) *node {
	t.numNodes++
	if t.pool != nil {
		n := t.pool.getNode()
		n.logOdds = l
		return n
	}
	return &node{logOdds: l}
}

// newInterior allocates an interior node with an empty child array.
func (t *Tree) newInterior() *node {
	t.numNodes++
	if t.pool != nil {
		n := t.pool.getNode()
		n.children = t.pool.getArr()
		return n
	}
	return &node{children: new([8]*node)}
}

// expand materializes the eight children of a pruned aggregate leaf,
// each inheriting its value — OctoMap's expandNode.
func (t *Tree) expand(n *node) {
	if t.pool != nil {
		n.children = t.pool.getArr()
	} else {
		n.children = new([8]*node)
	}
	for i := range n.children {
		n.children[i] = t.newLeaf(n.logOdds)
	}
}

// UpdateOccupied integrates an "occupied" observation for the voxel at k:
// logOdds += δ_occupied, clamped. It returns the new value.
func (t *Tree) UpdateOccupied(k Key) float32 {
	return t.updateDelta(k, t.params.LogOddsHit)
}

// UpdateFree integrates a "free" observation for the voxel at k:
// logOdds += δ_free, clamped. It returns the new value.
func (t *Tree) UpdateFree(k Key) float32 {
	return t.updateDelta(k, t.params.LogOddsMiss)
}

// Update integrates an observation; occupied selects δ_occupied or δ_free.
func (t *Tree) Update(k Key, occupied bool) float32 {
	if occupied {
		return t.UpdateOccupied(k)
	}
	return t.UpdateFree(k)
}

// updateDelta applies a log-odds increment at the leaf for k. Unknown
// voxels start from the prior (log-odds 0, i.e. P=0.5), as in OctoMap.
func (t *Tree) updateDelta(k Key, delta float32) float32 {
	return t.updateLeaf(k, func(old float32, known bool) float32 {
		if !known {
			old = 0
		}
		return t.params.clamp(old + delta)
	})
}

// SetNodeValue overwrites the accumulated log-odds of the voxel at k,
// clamped to the configured bounds. This is the operation OctoCache's
// eviction path uses: the cache already holds the accumulated value, so
// the octree copy is replaced rather than incremented (paper §4.2).
func (t *Tree) SetNodeValue(k Key, logOdds float32) float32 {
	return t.updateLeaf(k, func(float32, bool) float32 {
		return t.params.clamp(logOdds)
	})
}

// SetLeafAt writes a (possibly aggregate) leaf with the given clamped
// log-odds at an arbitrary depth: the cube whose minimum-corner key is k,
// as emitted by Walk. depth == Params().Depth sets a single voxel (like
// SetNodeValue); smaller depths write a pruned aggregate directly,
// replacing any subtree currently occupying that cube. It is the inverse
// of Walk, letting one tree be rebuilt — or several spatially disjoint
// trees be merged — leaf-by-leaf without expanding aggregates into their
// constituent voxels.
func (t *Tree) SetLeafAt(k Key, depth int, logOdds float32) {
	if depth < 0 || depth > t.params.Depth {
		panic("octree: SetLeafAt depth out of range")
	}
	v := t.params.clamp(logOdds)
	if depth == 0 {
		if t.root != nil {
			t.numNodes -= t.countNodes(t.root)
		}
		t.root = t.newLeaf(v)
		return
	}
	if t.root == nil {
		t.root = t.newInterior()
	}
	t.setLeafRecurs(t.root, 0, k, depth, v)
}

func (t *Tree) setLeafRecurs(n *node, depth int, k Key, target int, v float32) {
	if n.children == nil {
		// Pruned aggregate on the path: materialize children so the target
		// cube can diverge from its siblings.
		t.expand(n)
	}
	idx := childIndex(k, depth, t.params.Depth)
	child := n.children[idx]
	if depth+1 == target {
		if child != nil {
			t.numNodes -= t.countNodes(child)
		}
		n.children[idx] = t.newLeaf(v)
	} else {
		if child == nil {
			child = t.newInterior()
			n.children[idx] = child
		}
		t.setLeafRecurs(child, depth+1, k, target, v)
	}
	t.restoreInvariant(n)
}

// countNodes sizes the subtree rooted at n.
func (t *Tree) countNodes(n *node) int {
	c := 1
	if n.children != nil {
		for _, ch := range n.children {
			if ch != nil {
				c += t.countNodes(ch)
			}
		}
	}
	return c
}

// updateLeaf performs the root-to-leaf round trip of Figure 5: descend to
// the leaf for k (creating or expanding nodes as needed), apply fn to its
// value, then restore the max-of-children invariant and prune on the way
// back up. It returns the leaf's new value.
func (t *Tree) updateLeaf(k Key, fn func(old float32, known bool) float32) float32 {
	if t.root == nil {
		t.root = t.newInterior()
	}
	if t.changed != nil {
		inner := fn
		fn = func(old float32, known bool) float32 {
			v := inner(old, known)
			t.noteChange(k, known, old, v)
			return v
		}
	}
	return t.updateRecurs(t.root, 0, k, fn)
}

func (t *Tree) updateRecurs(n *node, depth int, k Key, fn func(float32, bool) float32) float32 {
	t.nodeVisits++
	if depth == t.params.Depth {
		n.logOdds = fn(n.logOdds, true)
		return n.logOdds
	}
	if n.children == nil {
		// Pruned aggregate on the path: materialize children so one can
		// diverge while the other seven keep the aggregate value.
		t.expand(n)
	}
	idx := childIndex(k, depth, t.params.Depth)
	child := n.children[idx]
	if child == nil {
		if depth+1 == t.params.Depth {
			child = t.newLeaf(fn(0, false))
			n.children[idx] = child
			t.nodeVisits++
			t.restoreInvariant(n)
			return child.logOdds
		}
		child = t.newInterior()
		n.children[idx] = child
	}
	v := t.updateRecurs(child, depth+1, k, fn)
	t.nodeVisits++ // trace-back visit of Figure 5
	t.restoreInvariant(n)
	return v
}

// restoreInvariant recomputes an interior node's value as the maximum of
// its existing children and prunes the children when all eight exist as
// equal-valued leaves.
func (t *Tree) restoreInvariant(n *node) {
	var maxVal float32
	first := true
	prunable := true
	for _, c := range n.children {
		if c == nil {
			prunable = false
			continue
		}
		if c.children != nil {
			prunable = false
		}
		if first || c.logOdds > maxVal {
			maxVal = c.logOdds
			first = false
		}
	}
	if first {
		return // no children materialized (cannot happen on update paths)
	}
	n.logOdds = maxVal
	if prunable {
		for _, c := range n.children {
			if c.logOdds != maxVal {
				return
			}
		}
		if t.pool != nil {
			for _, c := range n.children {
				t.pool.putNode(c)
			}
			t.pool.putArr(n.children)
		}
		n.children = nil
		t.numNodes -= 8
	}
}

// Search returns the accumulated log-odds of the voxel at k. known is
// false when the voxel lies in unobserved space. Search is safe to call
// from several goroutines concurrently as long as no writer is active:
// node visits accumulate locally and land in the atomic side counter
// with a single add.
func (t *Tree) Search(k Key) (logOdds float32, known bool) {
	n := t.root
	if n == nil {
		return 0, false
	}
	visits := int64(0)
	defer func() { t.searchVisits.Add(visits) }()
	for depth := 0; depth < t.params.Depth; depth++ {
		visits++
		if n.children == nil {
			// Pruned aggregate covering k.
			return n.logOdds, true
		}
		n = n.children[childIndex(k, depth, t.params.Depth)]
		if n == nil {
			return 0, false
		}
	}
	visits++
	return n.logOdds, true
}

// Occupied reports whether the voxel at k is known and at or above the
// occupancy threshold — the boolean the planner queries (paper §2.2).
func (t *Tree) Occupied(k Key) bool {
	l, known := t.Search(k)
	return known && l >= t.params.OccupancyThreshold
}

// OccupancyAt is the coordinate-space variant of Search.
func (t *Tree) OccupancyAt(p geom.Vec3) (logOdds float32, known bool) {
	k, ok := t.CoordToKey(p)
	if !ok {
		return 0, false
	}
	return t.Search(k)
}

// OccupiedAt is the coordinate-space variant of Occupied. Coordinates
// outside the mapped volume report unoccupied.
func (t *Tree) OccupiedAt(p geom.Vec3) bool {
	k, ok := t.CoordToKey(p)
	if !ok {
		return false
	}
	return t.Occupied(k)
}
