package octree

import (
	"sync/atomic"

	"octocache/internal/geom"
)

// The tree stores its nodes in an arena: two contiguous slices addressed
// by uint32 handles instead of a pointer graph. A node is 8 bytes (value
// plus child-block handle); an interior node's eight child handles live
// as one 32-byte block in the second arena. Traversal follows handles —
// consecutive insertions allocate consecutive arena slots, so the
// root-to-leaf walks of Figure 5 touch contiguous memory instead of
// chasing heap pointers, and pruning recycles slots through free lists
// instead of churning the GC. See DESIGN.md §9 for the layout contract.
const (
	// nilNode marks an absent child slot (and the root of an empty tree).
	nilNode uint32 = ^uint32(0)
	// nilKids in node.kids marks a leaf: either a finest-resolution voxel
	// or a pruned aggregate standing in for a whole equal-valued subtree.
	// Interior nodes always carry an allocated child block (entries may be
	// nilNode for unknown octants); this invariant is what lets traversal
	// distinguish "pruned, must expand" from "fresh interior".
	nilKids uint32 = ^uint32(0)
)

// node is one arena slot. The zero value is never used; nodes are always
// initialized by allocNode.
type node struct {
	logOdds float32
	kids    uint32 // nilKids for leaves, else an index into Tree.kids
}

// kidsBlock is one child-handle block in the second arena.
type kidsBlock [8]uint32

// emptyKids is the all-absent child block used to initialize interiors.
var emptyKids = kidsBlock{nilNode, nilNode, nilNode, nilNode, nilNode, nilNode, nilNode, nilNode}

// Tree is a probabilistic occupancy octree. Mutating it concurrently is
// not safe — OctoCache's pipelines serialize writers exactly as the
// paper prescribes (§4.4) — but any number of goroutines may call
// Search/Occupied/OccupancyAt/OccupiedAt concurrently with each other
// (not with a writer): searches never mutate the structure and count
// their node visits through an atomic side counter.
type Tree struct {
	params Params
	// root is the handle of the root node; meaningful only when
	// numNodes > 0 (the zero value of Tree must be usable, so an empty
	// tree is detected by node count, not by a sentinel root).
	root uint32

	// nodes and kids are the two arenas. Handles index into them; slices
	// grow by append, which never invalidates a handle.
	nodes []node
	kids  []kidsBlock
	// freeNodes and freeKids hold recycled slots dropped by pruning and
	// subtree replacement. Only slots unreachable from root are ever
	// pushed, and the tree holds the sole references to its arenas, so
	// recycling cannot alias live data.
	freeNodes []uint32
	freeKids  []uint32

	numNodes int
	// nodeVisits counts every node touched by updates; searches count
	// into searchVisits so concurrent readers stay race-free. Together
	// they are the bottleneck-analysis experiments' architecture-neutral
	// proxy for the memory accesses of Figure 5.
	nodeVisits   int64
	searchVisits atomic.Int64
	// changed records state transitions when change tracking is on.
	changed map[Key]bool
}

// New creates an empty occupancy octree. It panics if params are invalid;
// use NewChecked to receive the error instead.
func New(params Params) *Tree {
	t, err := NewChecked(params)
	if err != nil {
		panic(err)
	}
	return t
}

// NewChecked creates an empty occupancy octree, validating params.
func NewChecked(params Params) (*Tree, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Tree{params: params, root: nilNode}, nil
}

// Params returns the tree's configuration.
func (t *Tree) Params() Params { return t.params }

// Resolution returns the leaf voxel edge length in meters.
func (t *Tree) Resolution() float64 { return t.params.Resolution }

// NumNodes returns the number of live tree nodes.
func (t *Tree) NumNodes() int { return t.numNodes }

// ArenaStats reports the node arena's occupancy: live nodes reachable
// from the root, free-listed slots awaiting reuse, and the total slots
// the arena has ever grown to (live + free).
func (t *Tree) ArenaStats() (live, free, capacity int) {
	return t.numNodes, len(t.freeNodes), len(t.nodes)
}

// NodeVisits returns the cumulative count of node touches by updates and
// searches since construction (or the last ResetNodeVisits).
func (t *Tree) NodeVisits() int64 { return t.nodeVisits + t.searchVisits.Load() }

// ResetNodeVisits zeroes the node-visit counter. Call it only while no
// searches are in flight.
func (t *Tree) ResetNodeVisits() {
	t.nodeVisits = 0
	t.searchVisits.Store(0)
}

// MemoryBytes estimates the heap footprint of the tree's arenas: 8 bytes
// per node slot plus 32 bytes per child block, counting every slot the
// arenas have grown to (free-listed slots included — they stay reserved).
func (t *Tree) MemoryBytes() int64 {
	return int64(cap(t.nodes))*8 + int64(cap(t.kids))*32
}

// empty reports whether the tree has no content.
func (t *Tree) empty() bool { return t.numNodes == 0 }

func (t *Tree) iterate(h uint32, fn func(*node)) {
	if t.empty() || h == nilNode {
		return
	}
	n := &t.nodes[h]
	fn(n)
	if n.kids != nilKids {
		for _, c := range t.kids[n.kids] {
			if c != nilNode {
				t.iterate(c, fn)
			}
		}
	}
}

// Clear removes all content from the tree, retaining the arenas' reserved
// capacity for reuse. Change tracking, if enabled, stays enabled with an
// empty pending set.
func (t *Tree) Clear() {
	t.resetArenas()
	t.ResetChanges()
}

// CoordToKey discretizes a world coordinate into the tree's key space.
func (t *Tree) CoordToKey(p geom.Vec3) (Key, bool) {
	return CoordToKey(p, t.params.Resolution, t.params.Depth)
}

// KeyToCoord returns the center coordinate of the voxel addressed by k.
func (t *Tree) KeyToCoord(k Key) geom.Vec3 {
	return KeyToCoord(k, t.params.Resolution, t.params.Depth)
}

// allocNode allocates a leaf slot, recycling from the free list when
// possible. Appending may grow the nodes arena; callers must not hold a
// *node across the call (handles stay valid, pointers do not).
func (t *Tree) allocNode(l float32) uint32 {
	t.numNodes++
	if n := len(t.freeNodes); n > 0 {
		h := t.freeNodes[n-1]
		t.freeNodes = t.freeNodes[:n-1]
		t.nodes[h] = node{logOdds: l, kids: nilKids}
		return h
	}
	t.nodes = append(t.nodes, node{logOdds: l, kids: nilKids})
	return uint32(len(t.nodes) - 1)
}

// allocKids allocates an all-absent child block.
func (t *Tree) allocKids() uint32 {
	if n := len(t.freeKids); n > 0 {
		b := t.freeKids[n-1]
		t.freeKids = t.freeKids[:n-1]
		t.kids[b] = emptyKids
		return b
	}
	t.kids = append(t.kids, emptyKids)
	return uint32(len(t.kids) - 1)
}

// newInterior allocates an interior node with an empty child block.
func (t *Tree) newInterior() uint32 {
	h := t.allocNode(0)
	kb := t.allocKids()
	t.nodes[h].kids = kb
	return h
}

// freeSubtree returns every node and child block of the subtree rooted at
// h to the free lists, updating the node count. The caller must have
// already unlinked h from its parent.
func (t *Tree) freeSubtree(h uint32) {
	kb := t.nodes[h].kids
	if kb != nilKids {
		for _, c := range t.kids[kb] {
			if c != nilNode {
				t.freeSubtree(c)
			}
		}
		t.freeKids = append(t.freeKids, kb)
	}
	t.freeNodes = append(t.freeNodes, h)
	t.numNodes--
}

// expand materializes the eight children of a pruned aggregate leaf,
// each inheriting its value — OctoMap's expandNode.
func (t *Tree) expand(h uint32) {
	v := t.nodes[h].logOdds
	kb := t.allocKids()
	for i := 0; i < 8; i++ {
		c := t.allocNode(v)
		t.kids[kb][i] = c
	}
	t.nodes[h].kids = kb
}

// leafOp is one leaf mutation: either add a delta to the accumulated
// value or overwrite it. A plain struct (rather than a closure) keeps the
// update path allocation-free.
type leafOp struct {
	set bool
	val float32
}

// apply computes the leaf's new clamped value.
func (op leafOp) apply(p Params, old float32, known bool) float32 {
	if op.set {
		return p.Clamp(op.val)
	}
	if !known {
		old = 0
	}
	return p.Clamp(old + op.val)
}

// UpdateOccupied integrates an "occupied" observation for the voxel at k:
// logOdds += δ_occupied, clamped. It returns the new value.
func (t *Tree) UpdateOccupied(k Key) float32 {
	return t.updateLeaf(k, leafOp{val: t.params.LogOddsHit})
}

// UpdateFree integrates a "free" observation for the voxel at k:
// logOdds += δ_free, clamped. It returns the new value.
func (t *Tree) UpdateFree(k Key) float32 {
	return t.updateLeaf(k, leafOp{val: t.params.LogOddsMiss})
}

// Update integrates an observation; occupied selects δ_occupied or δ_free.
func (t *Tree) Update(k Key, occupied bool) float32 {
	if occupied {
		return t.UpdateOccupied(k)
	}
	return t.UpdateFree(k)
}

// SetNodeValue overwrites the accumulated log-odds of the voxel at k,
// clamped to the configured bounds. This is the operation OctoCache's
// eviction path uses: the cache already holds the accumulated value, so
// the octree copy is replaced rather than incremented (paper §4.2).
func (t *Tree) SetNodeValue(k Key, logOdds float32) float32 {
	return t.updateLeaf(k, leafOp{set: true, val: logOdds})
}

// SetLeafAt writes a (possibly aggregate) leaf with the given clamped
// log-odds at an arbitrary depth: the cube whose minimum-corner key is k,
// as emitted by Walk. depth == Params().Depth sets a single voxel (like
// SetNodeValue); smaller depths write a pruned aggregate directly,
// replacing any subtree currently occupying that cube (the replaced
// subtree's slots are recycled). It is the inverse of Walk, letting one
// tree be rebuilt — or several spatially disjoint trees be merged —
// leaf-by-leaf without expanding aggregates into their constituent
// voxels.
func (t *Tree) SetLeafAt(k Key, depth int, logOdds float32) {
	if depth < 0 || depth > t.params.Depth {
		panic("octree: SetLeafAt depth out of range")
	}
	v := t.params.Clamp(logOdds)
	if depth == 0 {
		if !t.empty() {
			t.freeSubtree(t.root)
		}
		t.root = t.allocNode(v)
		return
	}
	if t.empty() {
		t.root = t.newInterior()
	}
	t.setLeafRecurs(t.root, 0, k, depth, v)
}

func (t *Tree) setLeafRecurs(h uint32, depth int, k Key, target int, v float32) {
	if t.nodes[h].kids == nilKids {
		// Pruned aggregate on the path: materialize children so the target
		// cube can diverge from its siblings.
		t.expand(h)
	}
	kb := t.nodes[h].kids
	idx := childIndex(k, depth, t.params.Depth)
	child := t.kids[kb][idx]
	if depth+1 == target {
		if child != nilNode {
			t.freeSubtree(child)
		}
		t.kids[kb][idx] = t.allocNode(v)
	} else {
		if child == nilNode {
			child = t.newInterior()
			t.kids[kb][idx] = child
		}
		t.setLeafRecurs(child, depth+1, k, target, v)
	}
	t.restoreInvariant(h)
}

// updateLeaf performs the root-to-leaf round trip of Figure 5: descend to
// the leaf for k (creating or expanding nodes as needed), apply op to its
// value, then restore the max-of-children invariant and prune on the way
// back up. It returns the leaf's new value.
func (t *Tree) updateLeaf(k Key, op leafOp) float32 {
	if t.empty() {
		t.root = t.newInterior()
	}
	return t.updateRecurs(t.root, 0, k, op)
}

// mutateLeaf applies op at an existing leaf slot and records the change
// when tracking is on.
func (t *Tree) mutateLeaf(h uint32, k Key, op leafOp, known bool) float32 {
	old := t.nodes[h].logOdds
	v := op.apply(t.params, old, known)
	t.nodes[h].logOdds = v
	if t.changed != nil {
		t.noteChange(k, known, old, v)
	}
	return v
}

func (t *Tree) updateRecurs(h uint32, depth int, k Key, op leafOp) float32 {
	t.nodeVisits++
	if depth == t.params.Depth {
		return t.mutateLeaf(h, k, op, true)
	}
	if t.nodes[h].kids == nilKids {
		// Pruned aggregate on the path: materialize children so one can
		// diverge while the other seven keep the aggregate value.
		t.expand(h)
	}
	kb := t.nodes[h].kids
	idx := childIndex(k, depth, t.params.Depth)
	child := t.kids[kb][idx]
	if child == nilNode {
		if depth+1 == t.params.Depth {
			v := op.apply(t.params, 0, false)
			child = t.allocNode(v)
			t.kids[kb][idx] = child
			if t.changed != nil {
				t.noteChange(k, false, 0, v)
			}
			t.nodeVisits++
			t.restoreInvariant(h)
			return v
		}
		child = t.newInterior()
		t.kids[kb][idx] = child
	}
	v := t.updateRecurs(child, depth+1, k, op)
	t.nodeVisits++ // trace-back visit of Figure 5
	t.restoreInvariant(h)
	return v
}

// restoreInvariant recomputes an interior node's value as the maximum of
// its existing children and prunes the children when all eight exist as
// equal-valued leaves.
func (t *Tree) restoreInvariant(h uint32) {
	kb := t.nodes[h].kids
	block := &t.kids[kb]
	var maxVal float32
	first := true
	prunable := true
	for _, c := range block {
		if c == nilNode {
			prunable = false
			continue
		}
		cn := t.nodes[c]
		if cn.kids != nilKids {
			prunable = false
		}
		if first || cn.logOdds > maxVal {
			maxVal = cn.logOdds
			first = false
		}
	}
	if first {
		return // no children materialized (cannot happen on update paths)
	}
	t.nodes[h].logOdds = maxVal
	if prunable {
		for _, c := range block {
			if t.nodes[c].logOdds != maxVal {
				return
			}
		}
		t.freeNodes = append(t.freeNodes, block[:]...)
		t.freeKids = append(t.freeKids, kb)
		t.nodes[h].kids = nilKids
		t.numNodes -= 8
	}
}

// Search returns the accumulated log-odds of the voxel at k. known is
// false when the voxel lies in unobserved space. Search is safe to call
// from several goroutines concurrently as long as no writer is active:
// node visits accumulate locally and land in the atomic side counter
// with a single add.
func (t *Tree) Search(k Key) (logOdds float32, known bool) {
	if t.empty() {
		return 0, false
	}
	h := t.root
	visits := int64(0)
	defer func() { t.searchVisits.Add(visits) }()
	for depth := 0; depth < t.params.Depth; depth++ {
		visits++
		n := t.nodes[h]
		if n.kids == nilKids {
			// Pruned aggregate covering k.
			return n.logOdds, true
		}
		h = t.kids[n.kids][childIndex(k, depth, t.params.Depth)]
		if h == nilNode {
			return 0, false
		}
	}
	visits++
	return t.nodes[h].logOdds, true
}

// Occupied reports whether the voxel at k is known and at or above the
// occupancy threshold — the boolean the planner queries (paper §2.2).
func (t *Tree) Occupied(k Key) bool {
	l, known := t.Search(k)
	return known && l >= t.params.OccupancyThreshold
}

// OccupancyAt is the coordinate-space variant of Search.
func (t *Tree) OccupancyAt(p geom.Vec3) (logOdds float32, known bool) {
	k, ok := t.CoordToKey(p)
	if !ok {
		return 0, false
	}
	return t.Search(k)
}

// OccupiedAt is the coordinate-space variant of Occupied. Coordinates
// outside the mapped volume report unoccupied.
func (t *Tree) OccupiedAt(p geom.Vec3) bool {
	k, ok := t.CoordToKey(p)
	if !ok {
		return false
	}
	return t.Occupied(k)
}
