package octree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"octocache/internal/geom"
)

// smallParams returns a shallow tree for tests that want dense key spaces.
func smallParams(depth int) Params {
	p := DefaultParams(0.1)
	p.Depth = depth
	return p
}

// refModel is a flat reference implementation of the occupancy math used
// to cross-check the octree: a map from key to accumulated clamped
// log-odds.
type refModel struct {
	p Params
	m map[Key]float32
}

func newRefModel(p Params) *refModel {
	return &refModel{p: p, m: make(map[Key]float32)}
}

func (r *refModel) update(k Key, occupied bool) {
	delta := r.p.LogOddsMiss
	if occupied {
		delta = r.p.LogOddsHit
	}
	r.m[k] = r.p.Clamp(r.m[k] + delta)
}

func (r *refModel) set(k Key, l float32) { r.m[k] = r.p.Clamp(l) }

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams(0.1).Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []Params{
		{},
		func() Params { p := DefaultParams(0.1); p.Resolution = -1; return p }(),
		func() Params { p := DefaultParams(0.1); p.Depth = 0; return p }(),
		func() Params { p := DefaultParams(0.1); p.Depth = 17; return p }(),
		func() Params { p := DefaultParams(0.1); p.LogOddsHit = -1; return p }(),
		func() Params { p := DefaultParams(0.1); p.LogOddsMiss = 1; return p }(),
		func() Params { p := DefaultParams(0.1); p.ClampMin, p.ClampMax = 1, -1; return p }(),
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestLogOddsRoundTrip(t *testing.T) {
	for _, p := range []float64{0.12, 0.4, 0.5, 0.7, 0.97} {
		got := Probability(LogOdds(p))
		if diff := got - p; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("Probability(LogOdds(%v)) = %v", p, got)
		}
	}
}

func TestCoordKeyRoundTrip(t *testing.T) {
	const res = 0.05
	const depth = 16
	f := func(x, y, z int16) bool {
		// Use coordinates well inside the mapped cube.
		p := geom.V(float64(x)*0.01, float64(y)*0.01, float64(z)*0.01)
		k, ok := CoordToKey(p, res, depth)
		if !ok {
			return false
		}
		c := KeyToCoord(k, res, depth)
		// The voxel center must be within half a resolution of p.
		d := c.Sub(p).Abs()
		return d.X <= res/2+1e-9 && d.Y <= res/2+1e-9 && d.Z <= res/2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCoordToKeyBounds(t *testing.T) {
	p := DefaultParams(0.1) // cube spans 6553.6 m, half-range 3276.8
	tr := New(p)
	if _, ok := tr.CoordToKey(geom.V(4000, 0, 0)); ok {
		t.Error("coordinate beyond map bounds accepted")
	}
	if _, ok := tr.CoordToKey(geom.V(-3276.9, 0, 0)); ok {
		t.Error("negative out-of-bounds coordinate accepted")
	}
	if _, ok := tr.CoordToKey(geom.V(0, 0, 0)); !ok {
		t.Error("origin rejected")
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New(DefaultParams(0.1))
	if _, known := tr.Search(Key{X: 1, Y: 2, Z: 3}); known {
		t.Error("empty tree should know nothing")
	}
	if tr.Occupied(Key{X: 1, Y: 2, Z: 3}) {
		t.Error("empty tree should report unoccupied")
	}
	if tr.NumNodes() != 0 || tr.NumLeaves() != 0 {
		t.Error("empty tree should have no nodes")
	}
}

func TestSingleUpdate(t *testing.T) {
	tr := New(DefaultParams(0.1))
	k := Key{X: 100, Y: 200, Z: 300}
	got := tr.UpdateOccupied(k)
	want := tr.params.LogOddsHit
	if got != want {
		t.Errorf("first hit log-odds = %v, want %v", got, want)
	}
	l, known := tr.Search(k)
	if !known || l != want {
		t.Errorf("Search = %v,%v", l, known)
	}
	if !tr.Occupied(k) {
		t.Error("voxel should be occupied after one hit")
	}
	// A neighbor must remain unknown.
	if _, known := tr.Search(Key{X: 101, Y: 200, Z: 300}); known {
		t.Error("untouched neighbor should be unknown")
	}
}

func TestClamping(t *testing.T) {
	tr := New(DefaultParams(0.1))
	k := Key{X: 5, Y: 5, Z: 5}
	for i := 0; i < 50; i++ {
		tr.UpdateOccupied(k)
	}
	if l, _ := tr.Search(k); l != tr.params.ClampMax {
		t.Errorf("log-odds %v, want clamp max %v", l, tr.params.ClampMax)
	}
	for i := 0; i < 100; i++ {
		tr.UpdateFree(k)
	}
	if l, _ := tr.Search(k); l != tr.params.ClampMin {
		t.Errorf("log-odds %v, want clamp min %v", l, tr.params.ClampMin)
	}
}

func TestFreeThenOccupiedDynamics(t *testing.T) {
	// The clamped log-odds model must allow a voxel to flip state — the
	// paper's dynamic-environment requirement (§2.2).
	tr := New(DefaultParams(0.1))
	k := Key{X: 9, Y: 9, Z: 9}
	for i := 0; i < 100; i++ {
		tr.UpdateFree(k)
	}
	if tr.Occupied(k) {
		t.Fatal("voxel should be free")
	}
	hits := 0
	for !tr.Occupied(k) {
		tr.UpdateOccupied(k)
		hits++
		if hits > 100 {
			t.Fatal("voxel never flipped to occupied")
		}
	}
	// From clamp min -2.0 with +0.85 per hit, flipping needs 3 hits.
	if hits < 2 || hits > 5 {
		t.Errorf("flip took %d hits, expected a small number", hits)
	}
}

func TestSetNodeValueOverwrites(t *testing.T) {
	tr := New(DefaultParams(0.1))
	k := Key{X: 42, Y: 43, Z: 44}
	tr.UpdateOccupied(k)
	tr.SetNodeValue(k, -1.5)
	if l, known := tr.Search(k); !known || l != -1.5 {
		t.Errorf("Search after Set = %v,%v", l, known)
	}
	// Clamped set.
	tr.SetNodeValue(k, 100)
	if l, _ := tr.Search(k); l != tr.params.ClampMax {
		t.Errorf("Set should clamp: %v", l)
	}
}

// TestAgainstReferenceModel drives thousands of randomized updates through
// both the octree and a flat reference model and requires identical query
// results everywhere that was touched — the core correctness property.
func TestAgainstReferenceModel(t *testing.T) {
	p := smallParams(6) // 64^3 key space forces heavy key collisions
	tr := New(p)
	ref := newRefModel(p)
	rng := rand.New(rand.NewSource(42))
	keys := make([]Key, 0, 5000)
	for i := 0; i < 5000; i++ {
		k := Key{X: uint16(rng.Intn(64)), Y: uint16(rng.Intn(64)), Z: uint16(rng.Intn(64))}
		occ := rng.Intn(2) == 0
		switch rng.Intn(3) {
		case 0, 1:
			tr.Update(k, occ)
			ref.update(k, occ)
		case 2:
			v := float32(rng.Float64()*8 - 4)
			tr.SetNodeValue(k, v)
			ref.set(k, v)
		}
		keys = append(keys, k)
	}
	for _, k := range keys {
		want := ref.m[k]
		got, known := tr.Search(k)
		if !known {
			t.Fatalf("key %v unknown in tree but present in reference", k)
		}
		if got != want {
			t.Fatalf("key %v: tree %v, reference %v", k, got, want)
		}
	}
	// Untouched keys must be unknown.
	for i := 0; i < 100; i++ {
		k := Key{X: uint16(rng.Intn(64)), Y: uint16(rng.Intn(64)), Z: uint16(rng.Intn(64))}
		if _, touched := ref.m[k]; touched {
			continue
		}
		if _, known := tr.Search(k); known {
			t.Fatalf("untouched key %v known in tree", k)
		}
	}
}

func TestPruning(t *testing.T) {
	p := smallParams(3) // 8^3 space
	tr := New(p)
	// Saturate every voxel to clamp max: the entire tree must prune to a
	// single aggregate.
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			for z := 0; z < 8; z++ {
				for i := 0; i < 10; i++ {
					tr.UpdateOccupied(Key{X: uint16(x), Y: uint16(y), Z: uint16(z)})
				}
			}
		}
	}
	if tr.NumLeaves() != 1 {
		t.Errorf("fully saturated tree has %d leaves, want 1", tr.NumLeaves())
	}
	if tr.NumNodes() != 1 {
		t.Errorf("fully saturated tree has %d nodes, want 1 (pruned root)", tr.NumNodes())
	}
	// Every voxel must still answer correctly through the aggregate.
	for x := 0; x < 8; x++ {
		if l, known := tr.Search(Key{X: uint16(x), Y: 3, Z: 5}); !known || l != p.ClampMax {
			t.Fatalf("pruned query wrong: %v %v", l, known)
		}
	}
}

func TestExpandAfterPrune(t *testing.T) {
	p := smallParams(3)
	tr := New(p)
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			for z := 0; z < 8; z++ {
				for i := 0; i < 10; i++ {
					tr.UpdateOccupied(Key{X: uint16(x), Y: uint16(y), Z: uint16(z)})
				}
			}
		}
	}
	// Diverge one voxel: the tree must expand just enough.
	k := Key{X: 3, Y: 3, Z: 3}
	tr.SetNodeValue(k, p.ClampMin)
	if l, _ := tr.Search(k); l != p.ClampMin {
		t.Errorf("diverged voxel = %v, want %v", l, p.ClampMin)
	}
	// All others still clamp max.
	if l, known := tr.Search(Key{X: 0, Y: 0, Z: 0}); !known || l != p.ClampMax {
		t.Errorf("sibling lost value after expand: %v %v", l, known)
	}
	if l, known := tr.Search(Key{X: 3, Y: 3, Z: 2}); !known || l != p.ClampMax {
		t.Errorf("near sibling lost value after expand: %v %v", l, known)
	}
}

func TestInnerNodeIsMaxOfChildren(t *testing.T) {
	// With one occupied voxel anywhere, AnyOccupiedIn on the whole space
	// must be true and root log-odds must equal the max.
	p := smallParams(4)
	tr := New(p)
	tr.UpdateFree(Key{X: 1, Y: 1, Z: 1})
	tr.UpdateOccupied(Key{X: 9, Y: 9, Z: 9})
	if got := tr.nodes[tr.root].logOdds; got != p.LogOddsHit {
		t.Errorf("root log-odds %v, want max child %v", got, p.LogOddsHit)
	}
}

func TestNodeCountConsistency(t *testing.T) {
	p := smallParams(5)
	tr := New(p)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 3000; i++ {
		k := Key{X: uint16(rng.Intn(32)), Y: uint16(rng.Intn(32)), Z: uint16(rng.Intn(32))}
		tr.Update(k, rng.Intn(2) == 0)
	}
	counted := 0
	tr.iterate(tr.root, func(*node) { counted++ })
	if counted != tr.NumNodes() {
		t.Errorf("NumNodes=%d but %d nodes reachable", tr.NumNodes(), counted)
	}
	if tr.MemoryBytes() <= 0 {
		t.Error("MemoryBytes should be positive")
	}
}

func TestWalkMortonOrder(t *testing.T) {
	p := smallParams(6)
	tr := New(p)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 500; i++ {
		tr.UpdateOccupied(Key{X: uint16(rng.Intn(64)), Y: uint16(rng.Intn(64)), Z: uint16(rng.Intn(64))})
	}
	var prev uint64
	first := true
	tr.Walk(func(l Leaf) bool {
		m := l.Key.Morton()
		if !first && m <= prev {
			t.Fatalf("walk not in ascending Morton order: %d after %d", m, prev)
		}
		prev, first = m, false
		return true
	})
}

func TestWalkEarlyStop(t *testing.T) {
	p := smallParams(4)
	tr := New(p)
	for i := 0; i < 10; i++ {
		tr.UpdateOccupied(Key{X: uint16(i), Y: 0, Z: 0})
	}
	n := 0
	tr.Walk(func(Leaf) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("walk visited %d leaves, want 3", n)
	}
}

func TestAnyOccupiedIn(t *testing.T) {
	p := DefaultParams(0.1)
	tr := New(p)
	// Occupy a voxel near (1, 1, 1).
	k, _ := tr.CoordToKey(geom.V(1, 1, 1))
	tr.UpdateOccupied(k)
	if !tr.AnyOccupiedIn(geom.Box(geom.V(0.5, 0.5, 0.5), geom.V(1.5, 1.5, 1.5))) {
		t.Error("box around occupied voxel reports empty")
	}
	if tr.AnyOccupiedIn(geom.Box(geom.V(5, 5, 5), geom.V(6, 6, 6))) {
		t.Error("distant box reports occupied")
	}
	// A free voxel must not trigger.
	kf, _ := tr.CoordToKey(geom.V(-2, -2, -2))
	for i := 0; i < 5; i++ {
		tr.UpdateFree(kf)
	}
	if tr.AnyOccupiedIn(geom.Box(geom.V(-2.5, -2.5, -2.5), geom.V(-1.5, -1.5, -1.5))) {
		t.Error("free region reports occupied")
	}
}

func TestAnyOccupiedInMatchesBruteForce(t *testing.T) {
	p := smallParams(5)
	tr := New(p)
	rng := rand.New(rand.NewSource(23))
	occupied := map[Key]bool{}
	for i := 0; i < 400; i++ {
		k := Key{X: uint16(rng.Intn(32)), Y: uint16(rng.Intn(32)), Z: uint16(rng.Intn(32))}
		if rng.Intn(2) == 0 {
			tr.UpdateOccupied(k)
			occupied[k] = true
		} else {
			tr.UpdateFree(k)
			if occupied[k] {
				// One free after one hit: 0.85-0.41 >= 0 so still occupied.
				continue
			}
		}
	}
	for trial := 0; trial < 200; trial++ {
		// Keep box faces off the voxel lattice: exactly-touching faces
		// round differently under the tree's and the brute force's extent
		// arithmetic, and "touching" is not a meaningful occupancy query.
		lo := geom.V(
			(float64(rng.Intn(32)-16)+0.37)*p.Resolution,
			(float64(rng.Intn(32)-16)+0.37)*p.Resolution,
			(float64(rng.Intn(32)-16)+0.37)*p.Resolution,
		)
		sz := geom.V(rng.Float64()*2+0.001, rng.Float64()*2+0.001, rng.Float64()*2+0.001)
		box := geom.AABB{Min: lo, Max: lo.Add(sz)}
		want := false
		for k := range occupied {
			if !tr.Occupied(k) {
				continue
			}
			// Compute the voxel extent exactly as the tree does (min-corner
			// arithmetic) so exactly-touching faces round identically.
			half := 1 << (p.Depth - 1)
			min := geom.V(
				float64(int(k.X)-half)*p.Resolution,
				float64(int(k.Y)-half)*p.Resolution,
				float64(int(k.Z)-half)*p.Resolution,
			)
			vb := geom.AABB{Min: min, Max: min.Add(geom.V(p.Resolution, p.Resolution, p.Resolution))}
			if vb.Intersects(box) {
				want = true
				break
			}
		}
		if got := tr.AnyOccupiedIn(box); got != want {
			t.Fatalf("trial %d: AnyOccupiedIn=%v want %v (box %+v)", trial, got, want, box)
		}
	}
}

func TestOccupiedLeaves(t *testing.T) {
	p := smallParams(5)
	tr := New(p)
	tr.UpdateOccupied(Key{X: 1, Y: 2, Z: 3})
	tr.UpdateOccupied(Key{X: 30, Y: 2, Z: 3})
	for i := 0; i < 4; i++ {
		tr.UpdateFree(Key{X: 7, Y: 7, Z: 7})
	}
	leaves := tr.OccupiedLeaves()
	if len(leaves) != 2 {
		t.Fatalf("got %d occupied leaves, want 2", len(leaves))
	}
}

func TestCoordSpaceQueries(t *testing.T) {
	tr := New(DefaultParams(0.1))
	k, _ := tr.CoordToKey(geom.V(2, 3, 1))
	tr.UpdateOccupied(k)
	if !tr.OccupiedAt(geom.V(2, 3, 1)) {
		t.Error("OccupiedAt false at occupied coordinate")
	}
	if tr.OccupiedAt(geom.V(9999999, 0, 0)) {
		t.Error("out-of-bounds coordinate should report unoccupied")
	}
	if _, known := tr.OccupancyAt(geom.V(9999999, 0, 0)); known {
		t.Error("out-of-bounds coordinate should be unknown")
	}
}

func TestClear(t *testing.T) {
	tr := New(DefaultParams(0.1))
	tr.UpdateOccupied(Key{X: 1, Y: 1, Z: 1})
	tr.Clear()
	if tr.NumNodes() != 0 {
		t.Error("Clear left nodes behind")
	}
	if _, known := tr.Search(Key{X: 1, Y: 1, Z: 1}); known {
		t.Error("Clear left data behind")
	}
}

func TestNodeVisitsGrowWithDepth(t *testing.T) {
	// The motivation of §3.2: a deeper tree costs more memory touches per
	// update.
	shallow := New(smallParams(4))
	deep := New(smallParams(12))
	shallow.UpdateOccupied(Key{X: 1, Y: 1, Z: 1})
	deep.UpdateOccupied(Key{X: 1, Y: 1, Z: 1})
	if deep.NodeVisits() <= shallow.NodeVisits() {
		t.Errorf("deep tree visits %d <= shallow %d", deep.NodeVisits(), shallow.NodeVisits())
	}
	deep.ResetNodeVisits()
	if deep.NodeVisits() != 0 {
		t.Error("ResetNodeVisits failed")
	}
}

// TestSetLeafAtRebuildsTree checks that SetLeafAt is the inverse of Walk:
// replaying every leaf (including pruned aggregates) into a fresh tree
// reproduces the original structure and answers node-for-node.
func TestSetLeafAtRebuildsTree(t *testing.T) {
	p := smallParams(6)
	src := New(p)
	rng := rand.New(rand.NewSource(21))
	limit := 1 << p.Depth
	// Dense free region (prunes into aggregates) plus scattered obstacles.
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			for z := 0; z < 8; z++ {
				src.SetNodeValue(Key{X: uint16(x), Y: uint16(y), Z: uint16(z)}, p.ClampMin)
			}
		}
	}
	for i := 0; i < 400; i++ {
		k := Key{X: uint16(rng.Intn(limit)), Y: uint16(rng.Intn(limit)), Z: uint16(rng.Intn(limit))}
		src.Update(k, rng.Intn(2) == 0)
	}

	dst := New(p)
	src.Walk(func(l Leaf) bool {
		dst.SetLeafAt(l.Key, l.Depth, l.LogOdds)
		return true
	})

	if src.NumNodes() != dst.NumNodes() {
		t.Errorf("rebuilt tree has %d nodes, want %d", dst.NumNodes(), src.NumNodes())
	}
	if src.NumLeaves() != dst.NumLeaves() {
		t.Errorf("rebuilt tree has %d leaves, want %d", dst.NumLeaves(), src.NumLeaves())
	}
	for i := 0; i < 2000; i++ {
		k := Key{X: uint16(rng.Intn(limit)), Y: uint16(rng.Intn(limit)), Z: uint16(rng.Intn(limit))}
		lw, kw := src.Search(k)
		lg, kg := dst.Search(k)
		if lw != lg || kw != kg {
			t.Fatalf("rebuilt tree disagrees at %v: (%v,%v) vs (%v,%v)", k, lg, kg, lw, kw)
		}
	}
}

// TestSetLeafAtReplacesSubtree checks node accounting when an aggregate
// overwrites an existing subtree.
func TestSetLeafAtReplacesSubtree(t *testing.T) {
	p := smallParams(4)
	tr := New(p)
	for i := 0; i < 8; i++ {
		tr.Update(Key{X: uint16(i), Y: uint16(i), Z: uint16(i)}, true)
	}
	// Overwrite the whole first octant with one aggregate leaf at depth 1.
	tr.SetLeafAt(Key{X: 0, Y: 0, Z: 0}, 1, p.ClampMin)
	l, known := tr.Search(Key{X: 1, Y: 1, Z: 1})
	if !known || l != p.ClampMin {
		t.Errorf("aggregate not visible: (%v, %v)", l, known)
	}
	// Node count must stay consistent with an independent walk.
	count := 0
	tr.Walk(func(Leaf) bool { count++; return true })
	if tr.NumLeaves() != count {
		t.Errorf("NumLeaves %d disagrees with walk %d", tr.NumLeaves(), count)
	}
	if tr.NumNodes() <= 0 {
		t.Errorf("NumNodes = %d after subtree replacement", tr.NumNodes())
	}
}
