// Package pager implements the on-disk tile store behind bounded-memory
// windowed maps: a single append-only log file per map holding spilled
// tiles as CRC-checked frames of canonical leaf runs — the same
// (key, depth, log-odds) exchange unit backend walks and .bt snapshot
// serialization speak, so a spilled frame reinstalls through SetLeafAt
// exactly like a loaded snapshot leaf.
//
// The log is spill space, not a database: the authoritative map state is
// the resident store plus the index of live frames, and a tile that
// pages back in simply releases its frame (the bytes become garbage
// until the next rewrite). Re-spilling a tile appends a fresh frame and
// supersedes the old one. When garbage outgrows the live payload the log
// is rewritten atomically — live frames are copied to a temp file that
// is renamed over the log — so disk usage tracks the spilled working
// set, not the eviction history.
//
// Recover scans an existing log frame-by-frame, keeping the last frame
// per tile and truncating at the first corrupt or short frame, so a log
// cut mid-append (crash, full disk) degrades to the longest valid
// prefix instead of an error.
//
// All methods are safe for concurrent use; the engine serializes
// mutators anyway, but snapshot walks read frames concurrently under the
// engine's read lock.
package pager

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"sort"
	"sync"

	"octocache/internal/voxel"
)

const (
	// fileMagic begins every tile log.
	fileMagic = "OCPG0001"
	// frameMagic begins every frame.
	frameMagic uint32 = 0x4F435446 // "FTCO" little-endian
	// frameHdrBytes is the fixed frame header: magic, tile key, depth,
	// reserved byte, leaf count, CRC.
	frameHdrBytes = 20
	// recordBytes is one serialized leaf: 3×uint16 key, uint8 depth,
	// float32 log-odds.
	recordBytes = 11
	// maxFrameLeaves bounds a frame's leaf count: a tile of 2^15 voxels
	// per axis is the largest expressible, so anything beyond is a
	// corrupt header, not a huge frame.
	maxFrameLeaves = 1 << 30
)

// TileRef identifies one spilled tile in the log.
type TileRef struct {
	Key   voxel.Key
	Depth int
}

// frameRef locates a live frame in the log.
type frameRef struct {
	off   int64
	count uint32
}

func frameSize(count uint32) int64 { return frameHdrBytes + int64(count)*recordBytes }

// Stats summarizes a tile log.
type Stats struct {
	// SpilledTiles is the number of tiles with a live frame.
	SpilledTiles int
	// BytesOnDisk is the log's current file size.
	BytesOnDisk int64
	// LiveBytes is the portion of BytesOnDisk occupied by live frames;
	// the rest is garbage awaiting a rewrite.
	LiveBytes int64
	// Spills and Rewrites count appended frames and log compactions.
	Spills, Rewrites int64
}

// Store is one map's tile log. Construct with Create (fresh log,
// truncating any previous file) or Recover (scan an existing log).
type Store struct {
	mu    sync.Mutex
	path  string
	f     *os.File
	index map[TileRef]frameRef
	size  int64 // append offset == file size
	live  int64 // bytes held by live frames
	stats Stats
	buf   []byte // mutator-side frame scratch (guarded by mu)
}

// Create starts a fresh tile log at path, truncating any existing file.
func Create(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write([]byte(fileMagic)); err != nil {
		f.Close()
		return nil, err
	}
	return &Store{
		path:  path,
		f:     f,
		index: make(map[TileRef]frameRef),
		size:  int64(len(fileMagic)),
	}, nil
}

// Recover opens an existing tile log, scanning its frames. The last
// frame per tile wins (appends supersede), and the scan stops at the
// first corrupt or truncated frame, discarding the tail — the longest
// valid prefix survives a mid-append crash.
func Recover(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, len(fileMagic))
	if _, err := f.ReadAt(hdr, 0); err != nil || string(hdr) != fileMagic {
		f.Close()
		return nil, fmt.Errorf("pager: %s is not a tile log", path)
	}
	s := &Store{
		path:  path,
		f:     f,
		index: make(map[TileRef]frameRef),
		size:  int64(len(fileMagic)),
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	end := fi.Size()
	var fh [frameHdrBytes]byte
	for s.size+frameHdrBytes <= end {
		if _, err := f.ReadAt(fh[:], s.size); err != nil {
			break
		}
		ref, tile, ok := s.checkFrame(fh, s.size, end)
		if !ok {
			break
		}
		if old, dup := s.index[tile]; dup {
			s.live -= frameSize(old.count)
		}
		s.index[tile] = ref
		s.live += frameSize(ref.count)
		s.size += frameSize(ref.count)
	}
	// Drop the invalid tail so future appends extend a clean prefix.
	if s.size < end {
		if err := f.Truncate(s.size); err != nil {
			f.Close()
			return nil, err
		}
	}
	return s, nil
}

// checkFrame validates one frame header + payload at off, returning its
// ref and tile. ok is false for a corrupt or truncated frame.
func (s *Store) checkFrame(fh [frameHdrBytes]byte, off, end int64) (frameRef, TileRef, bool) {
	if binary.LittleEndian.Uint32(fh[0:4]) != frameMagic {
		return frameRef{}, TileRef{}, false
	}
	count := binary.LittleEndian.Uint32(fh[12:16])
	if count > maxFrameLeaves || off+frameSize(count) > end {
		return frameRef{}, TileRef{}, false
	}
	payload := make([]byte, int(count)*recordBytes)
	if _, err := s.f.ReadAt(payload, off+frameHdrBytes); err != nil {
		return frameRef{}, TileRef{}, false
	}
	crc := crc32.ChecksumIEEE(fh[0:16])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	if crc != binary.LittleEndian.Uint32(fh[16:20]) {
		return frameRef{}, TileRef{}, false
	}
	tile := TileRef{
		Key: voxel.Key{
			X: binary.LittleEndian.Uint16(fh[4:6]),
			Y: binary.LittleEndian.Uint16(fh[6:8]),
			Z: binary.LittleEndian.Uint16(fh[8:10]),
		},
		Depth: int(fh[10]),
	}
	return frameRef{off: off, count: count}, tile, true
}

// Spill appends one tile's leaf run as a new frame, superseding any live
// frame for the tile. The leaves must all lie inside the tile; the
// engine's evictor guarantees it.
func (s *Store) Spill(tile voxel.Key, depth int, leaves []voxel.Leaf) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("pager: store is closed")
	}
	need := int(frameSize(uint32(len(leaves))))
	if cap(s.buf) < need {
		s.buf = make([]byte, need)
	}
	buf := s.buf[:need]
	binary.LittleEndian.PutUint32(buf[0:4], frameMagic)
	binary.LittleEndian.PutUint16(buf[4:6], tile.X)
	binary.LittleEndian.PutUint16(buf[6:8], tile.Y)
	binary.LittleEndian.PutUint16(buf[8:10], tile.Z)
	buf[10] = uint8(depth)
	buf[11] = 0
	binary.LittleEndian.PutUint32(buf[12:16], uint32(len(leaves)))
	p := buf[frameHdrBytes:]
	for i, l := range leaves {
		r := p[i*recordBytes:]
		binary.LittleEndian.PutUint16(r[0:2], l.Key.X)
		binary.LittleEndian.PutUint16(r[2:4], l.Key.Y)
		binary.LittleEndian.PutUint16(r[4:6], l.Key.Z)
		r[6] = uint8(l.Depth)
		binary.LittleEndian.PutUint32(r[7:11], math.Float32bits(l.LogOdds))
	}
	crc := crc32.ChecksumIEEE(buf[0:16])
	crc = crc32.Update(crc, crc32.IEEETable, p)
	binary.LittleEndian.PutUint32(buf[16:20], crc)

	if _, err := s.f.WriteAt(buf, s.size); err != nil {
		// A partial frame may be on disk; cut it off so the log stays a
		// valid prefix.
		s.f.Truncate(s.size)
		return err
	}
	ref := frameRef{off: s.size, count: uint32(len(leaves))}
	s.size += int64(need)
	id := TileRef{Key: tile, Depth: depth}
	if old, dup := s.index[id]; dup {
		s.live -= frameSize(old.count)
	}
	s.index[id] = ref
	s.live += int64(need)
	s.stats.Spills++
	return s.maybeRewriteLocked()
}

// Load reads the tile's live frame, appending its leaves to dst. The
// frame's CRC is re-verified on every read.
func (s *Store) Load(tile voxel.Key, depth int, dst []voxel.Leaf) ([]voxel.Leaf, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loadLocked(TileRef{Key: tile, Depth: depth}, dst)
}

func (s *Store) loadLocked(id TileRef, dst []voxel.Leaf) ([]voxel.Leaf, error) {
	if s.f == nil {
		return dst, fmt.Errorf("pager: store is closed")
	}
	ref, ok := s.index[id]
	if !ok {
		return dst, fmt.Errorf("pager: tile %v depth %d is not spilled", id.Key, id.Depth)
	}
	need := int(frameSize(ref.count))
	buf := make([]byte, need)
	if _, err := s.f.ReadAt(buf, ref.off); err != nil {
		return dst, fmt.Errorf("pager: reading tile %v: %w", id.Key, err)
	}
	crc := crc32.ChecksumIEEE(buf[0:16])
	crc = crc32.Update(crc, crc32.IEEETable, buf[frameHdrBytes:])
	if crc != binary.LittleEndian.Uint32(buf[16:20]) {
		return dst, fmt.Errorf("pager: tile %v frame failed CRC check", id.Key)
	}
	p := buf[frameHdrBytes:]
	for i := 0; i < int(ref.count); i++ {
		r := p[i*recordBytes:]
		dst = append(dst, voxel.Leaf{
			Key: voxel.Key{
				X: binary.LittleEndian.Uint16(r[0:2]),
				Y: binary.LittleEndian.Uint16(r[2:4]),
				Z: binary.LittleEndian.Uint16(r[4:6]),
			},
			Depth:   int(r[6]),
			LogOdds: math.Float32frombits(binary.LittleEndian.Uint32(r[7:11])),
		})
	}
	return dst, nil
}

// Release drops the tile's live frame from the index — the tile is
// resident again and its bytes are garbage until the next rewrite.
func (s *Store) Release(tile voxel.Key, depth int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := TileRef{Key: tile, Depth: depth}
	if ref, ok := s.index[id]; ok {
		delete(s.index, id)
		s.live -= frameSize(ref.count)
	}
}

// Tiles returns the spilled tiles in ascending Morton order of their
// corner keys — the deterministic order snapshot walks fold them in.
func (s *Store) Tiles() []TileRef {
	s.mu.Lock()
	out := make([]TileRef, 0, len(s.index))
	for id := range s.index {
		out = append(out, id)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Depth != out[j].Depth {
			return out[i].Depth < out[j].Depth
		}
		return out[i].Key.Morton() < out[j].Key.Morton()
	})
	return out
}

// Len returns the number of spilled tiles.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// BytesOnDisk returns the log's current file size.
func (s *Store) BytesOnDisk() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Stats snapshots the log's accounting.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.SpilledTiles = len(s.index)
	st.BytesOnDisk = s.size
	st.LiveBytes = s.live
	return st
}

// rewriteFloor is the minimum garbage (bytes) before an automatic
// rewrite is considered; below it the copy costs more than it frees.
const rewriteFloor = 64 << 10

// maybeRewriteLocked compacts the log when garbage exceeds both the
// floor and the live payload — amortizing rewrite cost the same way the
// octree's arena compaction amortizes against live slots.
func (s *Store) maybeRewriteLocked() error {
	garbage := s.size - int64(len(fileMagic)) - s.live
	if garbage < rewriteFloor || garbage <= s.live {
		return nil
	}
	return s.rewriteLocked()
}

// Rewrite compacts the log now: live frames are copied into a temp file
// that atomically replaces the log, dropping all garbage.
func (s *Store) Rewrite() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("pager: store is closed")
	}
	return s.rewriteLocked()
}

func (s *Store) rewriteLocked() error {
	tmpPath := s.path + ".rewrite"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	cleanup := func(e error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return e
	}
	if _, err := tmp.Write([]byte(fileMagic)); err != nil {
		return cleanup(err)
	}
	// Copy live frames in a deterministic order, recording new offsets.
	ids := make([]TileRef, 0, len(s.index))
	for id := range s.index {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return s.index[ids[i]].off < s.index[ids[j]].off })
	newIndex := make(map[TileRef]frameRef, len(ids))
	off := int64(len(fileMagic))
	for _, id := range ids {
		ref := s.index[id]
		n := frameSize(ref.count)
		if int64(cap(s.buf)) < n {
			s.buf = make([]byte, n)
		}
		buf := s.buf[:n]
		if _, err := s.f.ReadAt(buf, ref.off); err != nil {
			return cleanup(err)
		}
		if _, err := tmp.WriteAt(buf, off); err != nil {
			return cleanup(err)
		}
		newIndex[id] = frameRef{off: off, count: ref.count}
		off += n
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		return cleanup(err)
	}
	s.f.Close()
	s.f = tmp
	s.index = newIndex
	s.size = off
	s.live = off - int64(len(fileMagic))
	s.stats.Rewrites++
	return nil
}

// Close closes the log file. Further operations fail; the file is left
// on disk for Recover.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
