package pager

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"octocache/internal/voxel"
)

func tileLeaves(rng *rand.Rand, corner voxel.Key, n int) []voxel.Leaf {
	out := make([]voxel.Leaf, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, voxel.Leaf{
			Key: voxel.Key{
				X: corner.X + uint16(rng.Intn(8)),
				Y: corner.Y + uint16(rng.Intn(8)),
				Z: corner.Z + uint16(rng.Intn(8)),
			},
			Depth:   16,
			LogOdds: rng.Float32()*8 - 4,
		})
	}
	return out
}

func TestSpillLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(filepath.Join(dir, "m.tiles"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	rng := rand.New(rand.NewSource(1))
	want := map[TileRef][]voxel.Leaf{}
	for i := 0; i < 20; i++ {
		corner := voxel.Key{X: uint16(i * 8), Y: uint16(i * 16), Z: 64}
		leaves := tileLeaves(rng, corner, 1+rng.Intn(40))
		if err := s.Spill(corner, 13, leaves); err != nil {
			t.Fatal(err)
		}
		want[TileRef{Key: corner, Depth: 13}] = leaves
	}
	if s.Len() != 20 {
		t.Fatalf("Len = %d, want 20", s.Len())
	}
	for id, leaves := range want {
		got, err := s.Load(id.Key, id.Depth, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, leaves) {
			t.Fatalf("tile %v: loaded leaves differ", id.Key)
		}
	}
	// Empty frames round-trip too (a tile can be all-unknown after
	// aggressive pruning).
	if err := s.Spill(voxel.Key{X: 4096}, 13, nil); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load(voxel.Key{X: 4096}, 13, nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty frame: got %v, %v", got, err)
	}
	// Loading into a reused buffer appends.
	buf := make([]voxel.Leaf, 2, 64)
	first := want[TileRef{Key: voxel.Key{X: 0, Y: 0, Z: 64}, Depth: 13}]
	got, err = s.Load(voxel.Key{Z: 64}, 13, buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2+len(first) || !reflect.DeepEqual(got[2:], first) {
		t.Fatal("Load did not append to dst")
	}
}

func TestReleaseAndResupersede(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(filepath.Join(dir, "m.tiles"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	corner := voxel.Key{X: 8, Y: 8, Z: 8}
	rng := rand.New(rand.NewSource(2))
	v1 := tileLeaves(rng, corner, 10)
	v2 := tileLeaves(rng, corner, 7)
	if err := s.Spill(corner, 13, v1); err != nil {
		t.Fatal(err)
	}
	if err := s.Spill(corner, 13, v2); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("re-spill did not supersede: Len = %d", s.Len())
	}
	got, err := s.Load(corner, 13, nil)
	if err != nil || !reflect.DeepEqual(got, v2) {
		t.Fatalf("got old frame after re-spill: %v, %v", got, err)
	}
	s.Release(corner, 13)
	if s.Len() != 0 {
		t.Fatal("Release did not drop the tile")
	}
	if _, err := s.Load(corner, 13, nil); err == nil {
		t.Fatal("Load of released tile succeeded")
	}
}

func TestRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.tiles")
	s, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	want := map[TileRef][]voxel.Leaf{}
	for i := 0; i < 8; i++ {
		corner := voxel.Key{X: uint16(i * 8)}
		leaves := tileLeaves(rng, corner, 1+rng.Intn(20))
		if err := s.Spill(corner, 13, leaves); err != nil {
			t.Fatal(err)
		}
		want[TileRef{Key: corner, Depth: 13}] = leaves
	}
	// Supersede one tile so recovery must keep the LAST frame.
	resp := tileLeaves(rng, voxel.Key{X: 16}, 5)
	if err := s.Spill(voxel.Key{X: 16}, 13, resp); err != nil {
		t.Fatal(err)
	}
	want[TileRef{Key: voxel.Key{X: 16}, Depth: 13}] = resp
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != len(want) {
		t.Fatalf("recovered %d tiles, want %d", r.Len(), len(want))
	}
	for id, leaves := range want {
		got, err := r.Load(id.Key, id.Depth, nil)
		if err != nil || !reflect.DeepEqual(got, leaves) {
			t.Fatalf("tile %v after recover: %v, %v", id.Key, got, err)
		}
	}
}

// TestRecoverTruncatedTail cuts the log mid-frame at every byte offset
// inside the final frame: recovery must keep exactly the preceding
// frames and drop the torn tail — the crash-mid-append contract.
func TestRecoverTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.tiles")
	s, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	a := tileLeaves(rng, voxel.Key{}, 12)
	b := tileLeaves(rng, voxel.Key{X: 8}, 9)
	if err := s.Spill(voxel.Key{}, 13, a); err != nil {
		t.Fatal(err)
	}
	preLen := s.BytesOnDisk()
	if err := s.Spill(voxel.Key{X: 8}, 13, b); err != nil {
		t.Fatal(err)
	}
	full := s.BytesOnDisk()
	s.Close()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := preLen; cut < full; cut += 7 {
		if err := os.WriteFile(path, blob[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Recover(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if r.Len() != 1 {
			t.Fatalf("cut %d: recovered %d tiles, want 1", cut, r.Len())
		}
		got, err := r.Load(voxel.Key{}, 13, nil)
		if err != nil || !reflect.DeepEqual(got, a) {
			t.Fatalf("cut %d: first frame corrupted: %v", cut, err)
		}
		// The torn tail is gone: appending extends a clean prefix.
		if err := r.Spill(voxel.Key{X: 8}, 13, b); err != nil {
			t.Fatalf("cut %d: append after recover: %v", cut, err)
		}
		if got, err := r.Load(voxel.Key{X: 8}, 13, nil); err != nil || !reflect.DeepEqual(got, b) {
			t.Fatalf("cut %d: append after recover unreadable", cut)
		}
		r.Close()
	}
}

// TestRecoverCorruptFrame flips a payload byte: the CRC must reject the
// frame and recovery stops at the last good prefix.
func TestRecoverCorruptFrame(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.tiles")
	s, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	a := tileLeaves(rng, voxel.Key{}, 6)
	b := tileLeaves(rng, voxel.Key{X: 8}, 6)
	if err := s.Spill(voxel.Key{}, 13, a); err != nil {
		t.Fatal(err)
	}
	preLen := s.BytesOnDisk()
	if err := s.Spill(voxel.Key{X: 8}, 13, b); err != nil {
		t.Fatal(err)
	}
	s.Close()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[preLen+frameHdrBytes+3] ^= 0xFF
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 1 {
		t.Fatalf("recovered %d tiles past a corrupt frame, want 1", r.Len())
	}
	if got, err := r.Load(voxel.Key{}, 13, nil); err != nil || !reflect.DeepEqual(got, a) {
		t.Fatal("good prefix frame lost")
	}
}

func TestRecoverRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "junk")
	if err := os.WriteFile(path, []byte("not a tile log at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(path); err == nil {
		t.Fatal("Recover accepted a non-log file")
	}
}

// TestRewrite verifies explicit compaction drops garbage, keeps every
// live frame readable, and survives a subsequent recover — the
// atomic-replace contract.
func TestRewrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.tiles")
	s, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	want := map[TileRef][]voxel.Leaf{}
	for i := 0; i < 12; i++ {
		corner := voxel.Key{X: uint16(i * 8)}
		// Spill twice: the first frame of each tile becomes garbage.
		if err := s.Spill(corner, 13, tileLeaves(rng, corner, 30)); err != nil {
			t.Fatal(err)
		}
		leaves := tileLeaves(rng, corner, 10)
		if err := s.Spill(corner, 13, leaves); err != nil {
			t.Fatal(err)
		}
		want[TileRef{Key: corner, Depth: 13}] = leaves
	}
	// Release some tiles: more garbage.
	for i := 0; i < 4; i++ {
		corner := voxel.Key{X: uint16(i * 8)}
		s.Release(corner, 13)
		delete(want, TileRef{Key: corner, Depth: 13})
	}
	before := s.Stats()
	if before.LiveBytes >= before.BytesOnDisk-int64(len(fileMagic)) {
		t.Fatal("test setup produced no garbage")
	}
	if err := s.Rewrite(); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.BytesOnDisk != after.LiveBytes+int64(len(fileMagic)) {
		t.Fatalf("garbage survived rewrite: %+v", after)
	}
	if after.Rewrites == 0 {
		t.Fatal("Rewrites counter not bumped")
	}
	for id, leaves := range want {
		if got, err := s.Load(id.Key, id.Depth, nil); err != nil || !reflect.DeepEqual(got, leaves) {
			t.Fatalf("tile %v unreadable after rewrite: %v", id.Key, err)
		}
	}
	// Post-rewrite appends and recovery still work.
	extra := tileLeaves(rng, voxel.Key{Y: 8}, 5)
	if err := s.Spill(voxel.Key{Y: 8}, 13, extra); err != nil {
		t.Fatal(err)
	}
	want[TileRef{Key: voxel.Key{Y: 8}, Depth: 13}] = extra
	s.Close()
	r, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != len(want) {
		t.Fatalf("recover after rewrite: %d tiles, want %d", r.Len(), len(want))
	}
	if _, err := os.Stat(path + ".rewrite"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("temp rewrite file left behind")
	}
}

// TestAutoRewrite drives enough superseding spills that the automatic
// garbage threshold fires without an explicit Rewrite call.
func TestAutoRewrite(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(filepath.Join(dir, "m.tiles"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(7))
	corner := voxel.Key{X: 8}
	var last []voxel.Leaf
	for i := 0; i < 2000; i++ {
		last = tileLeaves(rng, corner, 50)
		if err := s.Spill(corner, 13, last); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Rewrites == 0 {
		t.Fatalf("auto rewrite never fired: %+v", st)
	}
	if st.BytesOnDisk > 2*(st.LiveBytes+rewriteFloor) {
		t.Fatalf("disk usage unbounded: %+v", st)
	}
	if got, err := s.Load(corner, 13, nil); err != nil || !reflect.DeepEqual(got, last) {
		t.Fatal("latest frame lost across auto rewrites")
	}
}

func TestTilesOrderAndStats(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(filepath.Join(dir, "m.tiles"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(8))
	corners := []voxel.Key{{X: 24}, {X: 8, Y: 8}, {}, {Y: 16, Z: 8}}
	for _, c := range corners {
		if err := s.Spill(c, 13, tileLeaves(rng, c, 3)); err != nil {
			t.Fatal(err)
		}
	}
	tiles := s.Tiles()
	if len(tiles) != len(corners) {
		t.Fatalf("Tiles() = %d entries", len(tiles))
	}
	if !sort.SliceIsSorted(tiles, func(i, j int) bool {
		return tiles[i].Key.Morton() < tiles[j].Key.Morton()
	}) {
		t.Fatal("Tiles() not in Morton order")
	}
	st := s.Stats()
	if st.SpilledTiles != 4 || st.Spills != 4 || st.LiveBytes <= 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.BytesOnDisk != s.BytesOnDisk() {
		t.Fatal("Stats/BytesOnDisk disagree")
	}
}

func TestClosedStoreErrors(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(filepath.Join(dir, "m.tiles"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second Close should be a no-op")
	}
	if err := s.Spill(voxel.Key{}, 13, nil); err == nil {
		t.Fatal("Spill on closed store succeeded")
	}
	if _, err := s.Load(voxel.Key{}, 13, nil); err == nil {
		t.Fatal("Load on closed store succeeded")
	}
	if err := s.Rewrite(); err == nil {
		t.Fatal("Rewrite on closed store succeeded")
	}
}

func TestLRU(t *testing.T) {
	l := NewLRU()
	k := func(x int) voxel.Key { return voxel.Key{X: uint16(x)} }
	if _, ok := l.Oldest(); ok {
		t.Fatal("empty LRU has an oldest")
	}
	for i := 0; i < 5; i++ {
		l.Touch(k(i))
	}
	if l.Len() != 5 {
		t.Fatalf("Len = %d", l.Len())
	}
	if o, _ := l.Oldest(); o != k(0) {
		t.Fatalf("Oldest = %v", o)
	}
	l.Touch(k(0)) // refresh
	if o, _ := l.Oldest(); o != k(1) {
		t.Fatalf("Oldest after refresh = %v", o)
	}
	var order []voxel.Key
	l.Each(func(key voxel.Key) bool { order = append(order, key); return true })
	wantOrder := []voxel.Key{k(1), k(2), k(3), k(4), k(0)}
	if !reflect.DeepEqual(order, wantOrder) {
		t.Fatalf("Each order = %v, want %v", order, wantOrder)
	}
	l.Remove(k(2))
	l.Remove(k(2)) // double remove is a no-op
	if l.Len() != 4 || l.Contains(k(2)) {
		t.Fatal("Remove failed")
	}
	// Recycled slots: remove everything, re-add, arena must not grow.
	for _, key := range wantOrder {
		l.Remove(key)
	}
	grew := len(l.nodes)
	for i := 10; i < 15; i++ {
		l.Touch(k(i))
	}
	if len(l.nodes) != grew {
		t.Fatalf("arena grew %d -> %d despite free list", grew, len(l.nodes))
	}
	// Early stop.
	seen := 0
	l.Each(func(voxel.Key) bool { seen++; return seen < 2 })
	if seen != 2 {
		t.Fatalf("Each early stop visited %d", seen)
	}
}
