// Package pointcloud provides the point-cloud preprocessing operations a
// mapping front end typically applies between the sensor and the map:
// rigid transforms (sensor frame → world frame) and voxel-grid
// downsampling.
//
// Downsampling matters to this repository as a *baseline*: thinning the
// cloud to one point per voxel is the obvious alternative way to remove
// intra-batch duplication before the octree. The abl-downsample
// experiment measures why OctoCache still wins: point thinning cannot
// remove the duplicate *free-space* voxels produced by overlapping rays,
// nor inter-batch duplication, and it discards occupancy evidence
// (OctoMap's sensor fusion expects every return to contribute).
package pointcloud

import (
	"math"

	"octocache/internal/geom"
)

// Transform describes a rigid transform: rotation about +Z (yaw), then
// rotation about the body Y axis (pitch), then translation.
type Transform struct {
	Translation geom.Vec3
	Yaw, Pitch  float64
}

// Apply maps a point from the transform's source frame to its target.
func (t Transform) Apply(p geom.Vec3) geom.Vec3 {
	// Pitch about Y, then yaw about Z, then translate.
	cp, sp := math.Cos(t.Pitch), math.Sin(t.Pitch)
	x := p.X*cp + p.Z*sp
	z := -p.X*sp + p.Z*cp
	y := p.Y
	cy, sy := math.Cos(t.Yaw), math.Sin(t.Yaw)
	return geom.Vec3{
		X: x*cy - y*sy + t.Translation.X,
		Y: x*sy + y*cy + t.Translation.Y,
		Z: z + t.Translation.Z,
	}
}

// ApplyAll transforms every point, appending into dst (which may be nil).
func (t Transform) ApplyAll(dst, points []geom.Vec3) []geom.Vec3 {
	for _, p := range points {
		dst = append(dst, t.Apply(p))
	}
	return dst
}

// Downsample thins the cloud to at most one point per cubic cell of edge
// leaf (meters), keeping the first point seen in each cell — the common
// voxel-filter used to cap mapping cost. Order of survivors follows
// first appearance. leaf <= 0 returns the input unchanged.
func Downsample(points []geom.Vec3, leaf float64) []geom.Vec3 {
	if leaf <= 0 || len(points) == 0 {
		return points
	}
	type cell struct{ x, y, z int32 }
	seen := make(map[cell]struct{}, len(points))
	out := make([]geom.Vec3, 0, len(points))
	for _, p := range points {
		c := cell{
			x: int32(math.Floor(p.X / leaf)),
			y: int32(math.Floor(p.Y / leaf)),
			z: int32(math.Floor(p.Z / leaf)),
		}
		if _, ok := seen[c]; ok {
			continue
		}
		seen[c] = struct{}{}
		out = append(out, p)
	}
	return out
}

// Centroid returns the arithmetic mean of the points; ok is false for an
// empty cloud.
func Centroid(points []geom.Vec3) (geom.Vec3, bool) {
	if len(points) == 0 {
		return geom.Vec3{}, false
	}
	var sum geom.Vec3
	for _, p := range points {
		sum = sum.Add(p)
	}
	return sum.Scale(1 / float64(len(points))), true
}

// Bounds returns the axis-aligned bounds of the cloud; ok is false for an
// empty cloud.
func Bounds(points []geom.Vec3) (geom.AABB, bool) {
	if len(points) == 0 {
		return geom.AABB{}, false
	}
	box := geom.AABB{Min: points[0], Max: points[0]}
	for _, p := range points[1:] {
		box.Min = box.Min.Min(p)
		box.Max = box.Max.Max(p)
	}
	return box, true
}
