package pointcloud

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"octocache/internal/geom"
)

func TestTransformIdentity(t *testing.T) {
	var id Transform
	p := geom.V(1, 2, 3)
	if got := id.Apply(p); got.Dist(p) > 1e-12 {
		t.Errorf("identity transform moved point: %v", got)
	}
}

func TestTransformYaw(t *testing.T) {
	tr := Transform{Yaw: math.Pi / 2}
	got := tr.Apply(geom.V(1, 0, 0))
	if got.Dist(geom.V(0, 1, 0)) > 1e-12 {
		t.Errorf("yaw 90°: %v", got)
	}
}

func TestTransformPitch(t *testing.T) {
	tr := Transform{Pitch: math.Pi / 2}
	// Pitch rotates the forward axis upward: +X maps to -Z in this
	// convention... verify against the Pose convention: forward with
	// pitch π/2 points +Z, so a +X point should map to +Z? Apply uses
	// x' = x cos + z sin, z' = -x sin + z cos → (0,0,-1).
	got := tr.Apply(geom.V(1, 0, 0))
	if math.Abs(got.Norm()-1) > 1e-12 {
		t.Errorf("pitch should preserve length, got %v", got.Norm())
	}
}

func TestTransformTranslation(t *testing.T) {
	tr := Transform{Translation: geom.V(10, -5, 2)}
	got := tr.Apply(geom.V(1, 1, 1))
	if got.Dist(geom.V(11, -4, 3)) > 1e-12 {
		t.Errorf("translation: %v", got)
	}
}

// Property: rigid transforms preserve pairwise distances.
func TestTransformIsRigid(t *testing.T) {
	f := func(yaw, pitch, ax, ay, az, bx, by, bz float64) bool {
		yaw = math.Mod(yaw, math.Pi)
		pitch = math.Mod(pitch, math.Pi)
		if math.IsNaN(yaw) || math.IsNaN(pitch) {
			return true
		}
		tr := Transform{Yaw: yaw, Pitch: pitch, Translation: geom.V(1, 2, 3)}
		a := geom.V(math.Mod(ax, 100), math.Mod(ay, 100), math.Mod(az, 100))
		b := geom.V(math.Mod(bx, 100), math.Mod(by, 100), math.Mod(bz, 100))
		d0 := a.Dist(b)
		d1 := tr.Apply(a).Dist(tr.Apply(b))
		return math.Abs(d0-d1) < 1e-9*(1+d0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestApplyAll(t *testing.T) {
	tr := Transform{Translation: geom.V(1, 0, 0)}
	pts := []geom.Vec3{geom.V(0, 0, 0), geom.V(1, 1, 1)}
	out := tr.ApplyAll(nil, pts)
	if len(out) != 2 || out[0] != geom.V(1, 0, 0) || out[1] != geom.V(2, 1, 1) {
		t.Errorf("ApplyAll = %v", out)
	}
}

func TestDownsample(t *testing.T) {
	pts := []geom.Vec3{
		geom.V(0.01, 0.01, 0.01),
		geom.V(0.02, 0.03, 0.04), // same 0.1-cell as the first
		geom.V(0.15, 0.01, 0.01), // different cell
		geom.V(-0.01, 0, 0),      // negative side: its own cell
	}
	out := Downsample(pts, 0.1)
	if len(out) != 3 {
		t.Fatalf("got %d survivors, want 3: %v", len(out), out)
	}
	if out[0] != pts[0] || out[1] != pts[2] || out[2] != pts[3] {
		t.Errorf("first-wins order broken: %v", out)
	}
}

func TestDownsampleDegenerate(t *testing.T) {
	pts := []geom.Vec3{geom.V(1, 2, 3)}
	if got := Downsample(pts, 0); len(got) != 1 {
		t.Error("leaf=0 should be a no-op")
	}
	if got := Downsample(nil, 0.1); got != nil {
		t.Error("empty cloud should stay empty")
	}
}

func TestDownsampleBoundsDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := make([]geom.Vec3, 5000)
	for i := range pts {
		pts[i] = geom.V(rng.Float64(), rng.Float64(), rng.Float64())
	}
	out := Downsample(pts, 0.25)
	// A unit cube at 0.25 leaves has at most 5^3 boundary-padded cells.
	if len(out) > 125 {
		t.Errorf("downsample left %d points for ≤125 cells", len(out))
	}
	// Survivors are a subset of the input.
	seen := map[geom.Vec3]bool{}
	for _, p := range pts {
		seen[p] = true
	}
	for _, p := range out {
		if !seen[p] {
			t.Fatal("downsample invented a point")
		}
	}
}

func TestCentroidAndBounds(t *testing.T) {
	if _, ok := Centroid(nil); ok {
		t.Error("empty centroid should fail")
	}
	if _, ok := Bounds(nil); ok {
		t.Error("empty bounds should fail")
	}
	pts := []geom.Vec3{geom.V(0, 0, 0), geom.V(2, 4, 6)}
	c, _ := Centroid(pts)
	if c.Dist(geom.V(1, 2, 3)) > 1e-12 {
		t.Errorf("centroid = %v", c)
	}
	b, _ := Bounds(pts)
	if b.Min != geom.V(0, 0, 0) || b.Max != geom.V(2, 4, 6) {
		t.Errorf("bounds = %+v", b)
	}
}
