package raytrace

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"octocache/internal/geom"
	"octocache/internal/voxel"
)

// maxBoundaryBits caps each rasterization plane (free and occupied) at
// 2 MB per tracer. Scans whose padded key-space bounding box exceeds it
// fall back to hash-map deduplication, which is slower but needs memory
// proportional to the batch, not the box.
const maxBoundaryBits = 1 << 24

// ddaSlack is the step budget traceRay grants beyond the Manhattan
// distance to absorb float pathology. A ray's marks can overshoot its
// start/end box by at most this many voxels, so padding the scan box by
// it keeps every mark inside the rasterization planes.
const ddaSlack = 6

// rayEnd is one binned endpoint: where the (possibly MaxRange-truncated)
// ray stops, and whether that voxel was measured occupied.
type rayEnd struct {
	end      geom.Vec3
	key      voxel.Key
	occupied bool
}

// Boundary rasterizes a scan's free space once per batch instead of
// appending every ray's voxels individually (the D-BDM idea): endpoints
// are binned into two bit planes spanning the scan's key-space bounding
// box — surface voxels in the occupied plane, the region bounded by the
// origin and the surface in the free plane — and the planes are swept
// out in scanline order. The emitted batch is inherently deduplicated
// with occupied observations winning, set-equal to Tracer.TraceRT by
// construction: the marking pass walks each ray with the identical DDA,
// so the union of bits is exactly the union of per-ray visits, at bit-OR
// cost instead of hash-map cost and without the duplicated appends.
//
// Like Tracer, a Boundary reuses all internal storage: it is not safe
// for concurrent use and the returned batch aliases a buffer the next
// call overwrites. With workers > 1 the marking pass fans the rays
// across goroutines OR-ing into the shared planes atomically — the
// result is bit-identical to the serial pass because bit-union commutes.
type Boundary struct {
	cfg     Config
	workers int

	ends []rayEnd // binned endpoints, reused
	free []uint64 // free-space plane over the scan box, reused
	occ  []uint64 // surface plane over the scan box, reused
	out  []Voxel  // swept batch storage, reused

	// fb handles scans whose bounding box exceeds maxBoundaryBits.
	fb *Tracer
}

// NewBoundary constructs a boundary tracer; workers <= 1 marks rays
// serially.
func NewBoundary(cfg Config, workers int) *Boundary {
	if workers < 1 {
		workers = 1
	}
	return &Boundary{cfg: cfg, workers: workers}
}

// Config returns the tracer's configuration.
func (b *Boundary) Config() Config { return b.cfg }

// Trace returns the same deduplicated batch as TraceRT: a boundary
// rasterization cannot preserve duplicate observations — removing them
// is what makes it cheaper than per-ray marching.
func (b *Boundary) Trace(origin geom.Vec3, points []geom.Vec3) []Voxel {
	return b.TraceRT(origin, points)
}

// rasterGrid is the per-scan view of the bit planes: the padded
// key-space box and the word geometry of one x-major row.
type rasterGrid struct {
	min        [3]int
	dx, dy, dz int
	rowWords   int
	free, occ  []uint64
}

// mark sets one voxel's bit. Marks outside the padded box are impossible
// by the step-budget argument (see ddaSlack), but are dropped rather
// than ever touching memory out of plane bounds.
func (g *rasterGrid) mark(c [3]int, occupied, shared bool) {
	x, y, z := c[0]-g.min[0], c[1]-g.min[1], c[2]-g.min[2]
	if uint(x) >= uint(g.dx) || uint(y) >= uint(g.dy) || uint(z) >= uint(g.dz) {
		return
	}
	w := (z*g.dy+y)*g.rowWords + x>>6
	bit := uint64(1) << (x & 63)
	plane := g.free
	if occupied {
		plane = g.occ
	}
	if shared {
		orUint64(&plane[w], bit)
	} else {
		plane[w] |= bit
	}
}

// orUint64 is an atomic bit-OR via CAS (sync/atomic's OrUint64 needs a
// newer language version than this module targets).
func orUint64(p *uint64, v uint64) {
	for {
		old := atomic.LoadUint64(p)
		if old&v == v || atomic.CompareAndSwapUint64(p, old, old|v) {
			return
		}
	}
}

// TraceRT converts a point cloud into a deduplicated voxel batch via
// boundary rasterization. The batch holds each observed voxel exactly
// once, occupied observations winning over free, in scanline (x-fastest)
// order over the scan's bounding box.
func (b *Boundary) TraceRT(origin geom.Vec3, points []geom.Vec3) []Voxel {
	b.out = b.out[:0]
	startKey, startOK := voxel.CoordToKey(origin, b.cfg.Resolution, b.cfg.Depth)
	if !startOK {
		// Every ray of the scan starts outside the mapped cube and
		// carries no usable evidence, exactly as traceRay skips them.
		return b.out
	}

	// Pass A: bin endpoints — MaxRange truncation identical to traceRay —
	// and gather the scan's key-space bounding box, origin included.
	ends := b.ends[:0]
	lo := [3]int{int(startKey.X), int(startKey.Y), int(startKey.Z)}
	hi := lo
	for _, p := range points {
		end := p
		occupied := true
		if b.cfg.MaxRange > 0 {
			d := p.Sub(origin)
			if n := d.Norm(); n > b.cfg.MaxRange {
				end = origin.Add(d.Scale(b.cfg.MaxRange / n))
				occupied = false
			}
		}
		key, ok := voxel.CoordToKey(end, b.cfg.Resolution, b.cfg.Depth)
		if !ok {
			continue
		}
		ends = append(ends, rayEnd{end: end, key: key, occupied: occupied})
		c := [3]int{int(key.X), int(key.Y), int(key.Z)}
		for i := 0; i < 3; i++ {
			lo[i] = min(lo[i], c[i])
			hi[i] = max(hi[i], c[i])
		}
	}
	b.ends = ends
	if len(ends) == 0 {
		return b.out
	}

	// Pad by the DDA's step slack and clamp to the grid; with the
	// in-march bounds bail no mark can land outside the clamped box.
	limit := 1 << b.cfg.Depth
	for i := 0; i < 3; i++ {
		lo[i] = max(lo[i]-ddaSlack, 0)
		hi[i] = min(hi[i]+ddaSlack, limit-1)
	}
	g := rasterGrid{
		min: lo,
		dx:  hi[0] - lo[0] + 1,
		dy:  hi[1] - lo[1] + 1,
		dz:  hi[2] - lo[2] + 1,
	}
	g.rowWords = (g.dx + 63) / 64
	words := g.rowWords * g.dy * g.dz
	if words*64 > maxBoundaryBits {
		// The scan spans too large a box to rasterize densely (sparse
		// long-range scans); dedup through the hash path instead.
		if b.fb == nil {
			b.fb = NewTracer(b.cfg)
		}
		return b.fb.TraceRT(origin, points)
	}
	if cap(b.free) < words {
		b.free = make([]uint64, words)
		b.occ = make([]uint64, words)
	}
	g.free, g.occ = b.free[:words], b.occ[:words]
	clear(g.free)
	clear(g.occ)

	// Pass B: mark each ray — the same Amanatides–Woo march as traceRay,
	// setting bits instead of appending voxels.
	if b.workers > 1 && len(ends) >= 2*b.workers {
		var wg sync.WaitGroup
		chunk := (len(ends) + b.workers - 1) / b.workers
		for w := 0; w*chunk < len(ends); w++ {
			part := ends[w*chunk : min((w+1)*chunk, len(ends))]
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range part {
					b.markRay(&g, origin, startKey, part[i], true)
				}
			}()
		}
		wg.Wait()
	} else {
		for i := range ends {
			b.markRay(&g, origin, startKey, ends[i], false)
		}
	}

	// Pass C: sweep the box in scanline order. Occupied wins: a voxel
	// both on the surface and crossed by another ray emits occupied.
	out := b.out
	for z := 0; z < g.dz; z++ {
		for y := 0; y < g.dy; y++ {
			base := (z*g.dy + y) * g.rowWords
			for w := 0; w < g.rowWords; w++ {
				f, o := g.free[base+w], g.occ[base+w]
				for m := f | o; m != 0; m &= m - 1 {
					bit := bits.TrailingZeros64(m)
					out = append(out, Voxel{
						Key: voxel.Key{
							X: uint16(lo[0] + w<<6 + bit),
							Y: uint16(lo[1] + y),
							Z: uint16(lo[2] + z),
						},
						Occupied: o>>uint(bit)&1 == 1,
					})
				}
			}
		}
	}
	b.out = out
	return out
}

// markRay rasterizes one ray: free bits from the origin up to (but
// excluding) the endpoint voxel, then the endpoint bit in the occupied
// or free plane per the measurement. The march is structurally identical
// to Tracer.traceRay — same step budget, same bounds bail — so the bit
// union equals the per-ray visit union exactly.
func (b *Boundary) markRay(g *rasterGrid, origin geom.Vec3, startKey voxel.Key, r rayEnd, shared bool) {
	endC := [3]int{int(r.key.X), int(r.key.Y), int(r.key.Z)}
	if startKey == r.key {
		g.mark(endC, r.occupied, shared)
		return
	}

	res := b.cfg.Resolution
	dir := r.end.Sub(origin)
	length := dir.Norm()
	dirN := dir.Scale(1 / length)

	cur := [3]int{int(startKey.X), int(startKey.Y), int(startKey.Z)}
	o := [3]float64{origin.X, origin.Y, origin.Z}
	d := [3]float64{dirN.X, dirN.Y, dirN.Z}
	half := 1 << (b.cfg.Depth - 1)

	var step [3]int
	var tMax, tDelta [3]float64
	for i := 0; i < 3; i++ {
		switch {
		case d[i] > 0:
			step[i] = 1
			boundary := float64(cur[i]-half+1) * res
			tMax[i] = (boundary - o[i]) / d[i]
			tDelta[i] = res / d[i]
		case d[i] < 0:
			step[i] = -1
			boundary := float64(cur[i]-half) * res
			tMax[i] = (boundary - o[i]) / d[i]
			tDelta[i] = -res / d[i]
		default:
			step[i] = 0
			tMax[i] = math.Inf(1)
			tDelta[i] = math.Inf(1)
		}
	}

	maxSteps := (abs(endC[0]-cur[0]) + abs(endC[1]-cur[1]) + abs(endC[2]-cur[2])) + ddaSlack
	limit := 1 << b.cfg.Depth
	// The free-bit set is inlined (g.mark is too hot a call at one voxel
	// per step): same index math, same drop-don't-wrap guard.
	free, rowW := g.free, g.rowWords
	for steps := 0; steps < maxSteps && cur != endC; steps++ {
		if x, y, z := cur[0]-g.min[0], cur[1]-g.min[1], cur[2]-g.min[2]; uint(x) < uint(g.dx) && uint(y) < uint(g.dy) && uint(z) < uint(g.dz) {
			w := (z*g.dy+y)*rowW + x>>6
			if shared {
				orUint64(&free[w], uint64(1)<<(x&63))
			} else {
				free[w] |= uint64(1) << (x & 63)
			}
		}
		axis := 0
		if tMax[1] < tMax[axis] {
			axis = 1
		}
		if tMax[2] < tMax[axis] {
			axis = 2
		}
		cur[axis] += step[axis]
		tMax[axis] += tDelta[axis]
		if cur[axis] < 0 || cur[axis] >= limit {
			break
		}
	}
	g.mark(endC, r.occupied, shared)
}
