package raytrace

import (
	"math"
	"math/rand"
	"testing"

	"octocache/internal/geom"
	"octocache/internal/voxel"
)

// batchSet folds a batch into its deduplicated observation set with the
// occupied-wins rule — the canonical form both tracing algorithms must
// agree on.
func batchSet(b []Voxel) map[voxel.Key]bool {
	set := make(map[voxel.Key]bool, len(b))
	for _, v := range b {
		set[v.Key] = set[v.Key] || v.Occupied
	}
	return set
}

func sameSet(t *testing.T, want, got map[voxel.Key]bool, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d voxels, want %d", label, len(got), len(want))
	}
	for k, occ := range want {
		g, ok := got[k]
		if !ok {
			t.Fatalf("%s: missing voxel %v", label, k)
		}
		if g != occ {
			t.Fatalf("%s: voxel %v occupied=%v, want %v", label, k, g, occ)
		}
	}
}

// coneScan fans n rays from origin over a quarter-sphere at radius r.
func coneScan(origin geom.Vec3, n int, r float64) []geom.Vec3 {
	pts := make([]geom.Vec3, 0, n)
	for i := 0; i < n; i++ {
		yaw := float64(i) / float64(n) * math.Pi / 2
		pitch := (float64(i%7)/7 - 0.5) * math.Pi / 6
		pts = append(pts, origin.Add(geom.V(
			r*math.Cos(pitch)*math.Cos(yaw),
			r*math.Cos(pitch)*math.Sin(yaw),
			r*math.Sin(pitch))))
	}
	return pts
}

// TestTraceEdgeCases drives both tracing algorithms through the
// degenerate ray shapes — axis-aligned, endpoint exactly on a voxel
// boundary, MaxRange-truncated, zero-length, grid-edge grazing — and
// asserts every emitted key is inside the grid, the endpoint occupancy
// rule holds, and the two algorithms agree on the observation set.
func TestTraceEdgeCases(t *testing.T) {
	// Depth 10 keeps the grid small (51.2 m half-range at 0.1 m) so the
	// in-grid assertion has teeth: a wrapped or unclamped key would land
	// outside [0, 1024).
	const depth = 10
	const res = 0.1
	half := res * float64(int(1)<<(depth-1)) // 51.2

	cases := []struct {
		name     string
		origin   geom.Vec3
		points   []geom.Vec3
		maxRange float64
		// truncated marks rays whose endpoints must NOT be occupied.
		truncated bool
	}{
		{name: "axis-aligned-x", origin: geom.V(0.05, 0.05, 0.05),
			points: []geom.Vec3{geom.V(2.05, 0.05, 0.05)}},
		{name: "axis-aligned-neg-y", origin: geom.V(0.05, 0.05, 0.05),
			points: []geom.Vec3{geom.V(0.05, -3.05, 0.05)}},
		{name: "axis-aligned-z", origin: geom.V(0.05, 0.05, 0.05),
			points: []geom.Vec3{geom.V(0.05, 0.05, 4.05)}},
		{name: "endpoint-on-voxel-boundary", origin: geom.V(0.05, 0.05, 0.05),
			points: []geom.Vec3{geom.V(1.0, 0.2, 0.3), geom.V(0.5, 0.5, 0.5)}},
		{name: "origin-on-voxel-boundary", origin: geom.V(0, 0, 0),
			points: []geom.Vec3{geom.V(1.55, 0.75, 0.35)}},
		{name: "maxrange-truncated", origin: geom.V(0.05, 0.05, 0.05),
			points:   []geom.Vec3{geom.V(10.05, 0.05, 0.05), geom.V(0.05, 12.05, 3.05)},
			maxRange: 2.5, truncated: true},
		{name: "zero-length", origin: geom.V(0.25, 0.25, 0.25),
			points: []geom.Vec3{geom.V(0.25, 0.25, 0.25)}},
		{name: "same-voxel", origin: geom.V(0.21, 0.22, 0.23),
			points: []geom.Vec3{geom.V(0.27, 0.28, 0.29)}},
		{name: "grid-edge-grazing", origin: geom.V(half-0.45, half-0.45, 0.05),
			points: []geom.Vec3{
				geom.V(half-0.05, half-0.05, 0.05), // ends in the outermost voxel
				geom.V(half+5, half+5, 0.05),       // leaves the cube: skipped
			}},
		{name: "near-corner-diagonal", origin: geom.V(-half+0.15, -half+0.15, -half+0.15),
			points: []geom.Vec3{geom.V(-half+2.05, -half+1.55, -half+0.95)}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := Config{Resolution: res, Depth: depth, MaxRange: tc.maxRange}
			dda := NewTracer(c)
			boundary := NewBoundary(c, 1)

			raw := dda.Trace(tc.origin, tc.points)
			limit := uint16(1) << depth
			for i, v := range raw {
				if v.Key.X >= limit || v.Key.Y >= limit || v.Key.Z >= limit {
					t.Fatalf("DDA emitted out-of-grid key %v at %d", v.Key, i)
				}
			}

			// Endpoint occupancy: every in-cube, untruncated endpoint must
			// be observed occupied; truncated rays must observe nothing
			// occupied at all.
			want := batchSet(raw)
			if tc.truncated {
				for k, occ := range want {
					if occ {
						t.Fatalf("truncated scan observed occupied voxel %v", k)
					}
				}
			} else {
				for _, p := range tc.points {
					ek, ok := voxel.CoordToKey(p, res, depth)
					if !ok {
						continue
					}
					if !want[ek] {
						t.Fatalf("endpoint voxel %v not observed occupied", ek)
					}
				}
			}

			got := boundary.TraceRT(tc.origin, tc.points)
			for i, v := range got {
				if v.Key.X >= limit || v.Key.Y >= limit || v.Key.Z >= limit {
					t.Fatalf("boundary emitted out-of-grid key %v at %d", v.Key, i)
				}
			}
			if CountDistinct(got) != len(got) {
				t.Fatal("boundary batch contains duplicates")
			}
			sameSet(t, want, batchSet(got), "boundary vs DDA")

			// And the deduplicated DDA stream agrees too.
			rt := NewTracer(c).TraceRT(tc.origin, tc.points)
			sameSet(t, want, batchSet(rt), "TraceRT vs raw")
		})
	}
}

// TestBoundaryMatchesTraceRT is the core differential property: on
// random conical scans the boundary rasterization and the deduplicated
// per-ray march must produce the same observation set, at any worker
// count.
func TestBoundaryMatchesTraceRT(t *testing.T) {
	for _, workers := range []int{1, 4} {
		c := Config{Resolution: 0.1, Depth: 16, MaxRange: 6}
		dda := NewTracer(c)
		boundary := NewBoundary(c, workers)
		rng := rand.New(rand.NewSource(77))
		for trial := 0; trial < 40; trial++ {
			origin := geom.V(rng.Float64()*8-4, rng.Float64()*8-4, rng.Float64()*2)
			pts := make([]geom.Vec3, 0, 120)
			for i := 0; i < 120; i++ {
				yaw := rng.Float64() * 2 * math.Pi
				pitch := (rng.Float64() - 0.5) * math.Pi / 3
				r := 0.5 + rng.Float64()*7 // some rays exceed MaxRange
				pts = append(pts, origin.Add(geom.V(
					r*math.Cos(pitch)*math.Cos(yaw),
					r*math.Cos(pitch)*math.Sin(yaw),
					r*math.Sin(pitch))))
			}
			want := batchSet(dda.TraceRT(origin, pts))
			got := boundary.TraceRT(origin, pts)
			if CountDistinct(got) != len(got) {
				t.Fatalf("workers=%d trial %d: boundary batch has duplicates", workers, trial)
			}
			sameSet(t, want, batchSet(got), "boundary")
		}
	}
}

// TestBoundaryScanlineOrder pins the sweep order: within a batch, keys
// ascend in (Z, Y, X) — the deterministic order the consistency matrix
// and the shard router's stable partition see.
func TestBoundaryScanlineOrder(t *testing.T) {
	c := Config{Resolution: 0.1, Depth: 16}
	b := NewBoundary(c, 1)
	batch := b.TraceRT(geom.V(0.05, 0.05, 1.05), coneScan(geom.V(0.05, 0.05, 1.05), 90, 3))
	if len(batch) == 0 {
		t.Fatal("empty batch")
	}
	for i := 1; i < len(batch); i++ {
		p, q := batch[i-1].Key, batch[i].Key
		pk := uint64(p.Z)<<32 | uint64(p.Y)<<16 | uint64(p.X)
		qk := uint64(q.Z)<<32 | uint64(q.Y)<<16 | uint64(q.X)
		if qk <= pk {
			t.Fatalf("batch not in scanline order at %d: %v then %v", i, p, q)
		}
	}
}

// TestBoundaryBufferReuse re-traces different scans through one Boundary
// and checks nothing bleeds between calls: each batch equals a fresh
// tracer's answer for the same scan.
func TestBoundaryBufferReuse(t *testing.T) {
	c := Config{Resolution: 0.1, Depth: 16, MaxRange: 8}
	b := NewBoundary(c, 1)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		origin := geom.V(rng.Float64()*20-10, rng.Float64()*20-10, 1)
		pts := coneScan(origin, 30+trial*11, 0.5+rng.Float64()*4)
		got := batchSet(b.TraceRT(origin, pts))
		want := batchSet(NewBoundary(c, 1).TraceRT(origin, pts))
		sameSet(t, want, got, "reused tracer")
	}
}

// TestBoundaryOversizedBoxFallback forces the scan's bounding box past
// the rasterization cap (a sparse scan spanning kilometers) and checks
// the fallback path still produces the deduplicated set.
func TestBoundaryOversizedBoxFallback(t *testing.T) {
	c := Config{Resolution: 0.1, Depth: 16} // no MaxRange: endpoints keep full spread
	dda := NewTracer(c)
	b := NewBoundary(c, 1)
	origin := geom.V(0.05, 0.05, 0.05)
	pts := []geom.Vec3{
		geom.V(900.05, 0.05, 0.05),
		geom.V(0.05, 900.05, 0.05),
		geom.V(0.05, 0.05, 900.05),
		geom.V(-700.05, -700.05, 0.05),
	}
	got := b.TraceRT(origin, pts)
	if len(got) == 0 {
		t.Fatal("fallback produced an empty batch")
	}
	sameSet(t, batchSet(dda.TraceRT(origin, pts)), batchSet(got), "fallback")
}

// TestBoundaryOutOfCube mirrors the DDA's skip rules: an origin outside
// the mapped cube yields nothing, and out-of-cube endpoints drop only
// their own rays.
func TestBoundaryOutOfCube(t *testing.T) {
	c := Config{Resolution: 0.1, Depth: 10}
	b := NewBoundary(c, 1)
	if batch := b.TraceRT(geom.V(1e5, 0, 0), coneScan(geom.V(1e5, 0, 0), 10, 2)); len(batch) != 0 {
		t.Errorf("out-of-cube origin produced %d voxels", len(batch))
	}
	if batch := b.TraceRT(geom.V(0, 0, 0), nil); len(batch) != 0 {
		t.Errorf("empty cloud produced %d voxels", len(batch))
	}
	mixed := b.TraceRT(geom.V(0.05, 0.05, 0.05),
		[]geom.Vec3{geom.V(1e5, 0, 0), geom.V(1.05, 0.05, 0.05)})
	want := batchSet(NewTracer(c).TraceRT(geom.V(0.05, 0.05, 0.05),
		[]geom.Vec3{geom.V(1e5, 0, 0), geom.V(1.05, 0.05, 0.05)}))
	sameSet(t, want, batchSet(mixed), "mixed in/out-of-cube scan")
}

// TestFanTracerMatchesSerial checks the worker fan is invisible: the
// concatenated chunk batches equal the serial Tracer's stream exactly —
// duplicates, ordering, occupancy — and the deduplicated stream too.
func TestFanTracerMatchesSerial(t *testing.T) {
	c := Config{Resolution: 0.1, Depth: 16, MaxRange: 6}
	serial := NewTracer(c)
	fan := newFanTracer(c, 4)
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		origin := geom.V(rng.Float64()*4-2, rng.Float64()*4-2, 1)
		pts := coneScan(origin, 3+trial*17, 0.5+rng.Float64()*6)
		want := serial.Trace(origin, pts)
		got := fan.Trace(origin, pts)
		if len(want) != len(got) {
			t.Fatalf("trial %d: fan batch %d voxels, serial %d", trial, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: batches differ at %d: %v vs %v", trial, i, got[i], want[i])
			}
		}
		wantRT := serial.TraceRT(origin, pts)
		gotRT := fan.TraceRT(origin, pts)
		if len(wantRT) != len(gotRT) {
			t.Fatalf("trial %d: fan RT %d voxels, serial %d", trial, len(gotRT), len(wantRT))
		}
		for i := range wantRT {
			if wantRT[i] != gotRT[i] {
				t.Fatalf("trial %d: RT batches differ at %d", trial, i)
			}
		}
	}
}

// TestNewScannerSelection pins New's dispatch.
func TestNewScannerSelection(t *testing.T) {
	c := Config{Resolution: 0.1, Depth: 16}
	if _, ok := New(c, ModeDDA, 0).(*Tracer); !ok {
		t.Error("ModeDDA workers=0 should be a serial Tracer")
	}
	if _, ok := New(c, ModeDDA, 4).(*fanTracer); !ok {
		t.Error("ModeDDA workers=4 should be a fanTracer")
	}
	if _, ok := New(c, ModeBoundary, 0).(*Boundary); !ok {
		t.Error("ModeBoundary should be a Boundary")
	}
	if ModeDDA.String() != "dda" || ModeBoundary.String() != "boundary" {
		t.Error("mode names wrong")
	}
}

// FuzzTraceModes is the DDA-vs-boundary differential fuzz: any scan the
// fuzzer invents must produce the same deduplicated observation set from
// both algorithms.
func FuzzTraceModes(f *testing.F) {
	f.Add(0.0, 0.0, 1.0, int64(1), uint8(30), 4.0)
	f.Add(2.5, -1.5, 0.5, int64(99), uint8(90), 0.0)
	f.Add(-4.0, 4.0, 2.0, int64(7), uint8(1), 1.5)
	f.Add(50.0, -50.0, 0.0, int64(1234), uint8(200), 8.0)
	f.Fuzz(func(t *testing.T, ox, oy, oz float64, seed int64, n uint8, maxRange float64) {
		if math.IsNaN(ox) || math.IsInf(ox, 0) ||
			math.IsNaN(oy) || math.IsInf(oy, 0) ||
			math.IsNaN(oz) || math.IsInf(oz, 0) ||
			math.IsNaN(maxRange) || math.IsInf(maxRange, 0) {
			t.Skip()
		}
		c := Config{Resolution: 0.1, Depth: 12, MaxRange: maxRange}
		origin := geom.V(ox, oy, oz)
		rng := rand.New(rand.NewSource(seed))
		pts := make([]geom.Vec3, 0, int(n))
		for i := 0; i < int(n); i++ {
			// Mostly local structure with occasional wild endpoints so both
			// the rasterized and fallback paths get exercised.
			r := rng.Float64() * 6
			if rng.Intn(16) == 0 {
				r = rng.Float64() * 1000
			}
			yaw := rng.Float64() * 2 * math.Pi
			pitch := (rng.Float64() - 0.5) * math.Pi
			pts = append(pts, origin.Add(geom.V(
				r*math.Cos(pitch)*math.Cos(yaw),
				r*math.Cos(pitch)*math.Sin(yaw),
				r*math.Sin(pitch))))
		}
		want := batchSet(NewTracer(c).TraceRT(origin, pts))
		got := NewBoundary(c, 1).TraceRT(origin, pts)
		if CountDistinct(got) != len(got) {
			t.Fatal("boundary batch contains duplicates")
		}
		gotSet := batchSet(got)
		if len(want) != len(gotSet) {
			t.Fatalf("boundary set %d voxels, DDA-RT %d", len(gotSet), len(want))
		}
		for k, occ := range want {
			g, ok := gotSet[k]
			if !ok || g != occ {
				t.Fatalf("voxel %v: boundary (%v,%v) vs DDA (%v,true)", k, g, ok, occ)
			}
		}
	})
}

func BenchmarkTraceBoundary(b *testing.B) {
	tr := NewBoundary(cfg(0.1), 1)
	origin := geom.V(0, 0, 1)
	var pts []geom.Vec3
	for i := 0; i < 500; i++ {
		ang := float64(i) / 500 * math.Pi
		pts = append(pts, geom.V(5*math.Cos(ang), 5*math.Sin(ang), 1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.TraceRT(origin, pts)
	}
}
