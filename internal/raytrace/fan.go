package raytrace

import (
	"sync"

	"octocache/internal/geom"
	"octocache/internal/voxel"
)

// fanTracer fans the per-ray DDA across workers: the scan is split into
// contiguous point chunks, each traced by its own sub-Tracer, and the
// per-chunk batches are concatenated in chunk order. Because traceRay
// appends rays strictly in point order, the concatenation is
// bit-identical to a serial Tracer's batch — duplicates, ordering, and
// all — so every downstream consumer (dedup, cache admission, shard
// routing) sees exactly the serial stream.
//
// The fan allocates its join state (goroutines, closures) per call; it
// backs TraceWorkers > 1, which the allocation-gated default path does
// not use.
type fanTracer struct {
	cfg     Config
	workers int
	sub     []*Tracer
	out     []Voxel
	seen    map[voxel.Key]int
}

func newFanTracer(cfg Config, workers int) *fanTracer {
	ft := &fanTracer{
		cfg:     cfg,
		workers: workers,
		sub:     make([]*Tracer, workers),
		seen:    make(map[voxel.Key]int),
	}
	for i := range ft.sub {
		ft.sub[i] = NewTracer(cfg)
	}
	return ft
}

// Config returns the tracer's configuration.
func (t *fanTracer) Config() Config { return t.cfg }

// Trace converts a point cloud into a voxel batch, preserving duplicate
// observations exactly as the serial Tracer does.
func (t *fanTracer) Trace(origin geom.Vec3, points []geom.Vec3) []Voxel {
	if len(points) < 2*t.workers {
		return t.sub[0].Trace(origin, points)
	}
	chunk := (len(points) + t.workers - 1) / t.workers
	var wg sync.WaitGroup
	n := 0
	for w := 0; w*chunk < len(points); w++ {
		part := points[w*chunk : min((w+1)*chunk, len(points))]
		tr := t.sub[w]
		n = w + 1
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr.Trace(origin, part)
		}()
	}
	wg.Wait()
	out := t.out[:0]
	for _, tr := range t.sub[:n] {
		out = append(out, tr.buf...)
	}
	t.out = out
	return out
}

// TraceRT converts a point cloud into a deduplicated batch, occupied
// observations winning, in first-observation order — identical to the
// serial Tracer's TraceRT because the raw stream is.
func (t *fanTracer) TraceRT(origin geom.Vec3, points []geom.Vec3) []Voxel {
	return dedupRT(t.seen, t.Trace(origin, points))
}
