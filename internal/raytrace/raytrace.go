// Package raytrace converts sensor point clouds into voxel update batches,
// the front half of the OctoMap workflow (paper Figure 4).
//
// For every point in a cloud, a ray is cast from the sensor origin to the
// point: each voxel the ray passes through is observed free, and the
// voxel containing the point is observed occupied. Rays from one scan
// form a cone and revisit the same voxels near the origin, and the point
// density exceeds the voxel resolution near surfaces — the two sources of
// the heavy intra-batch duplication (2.78–31.32× in §3.1) that OctoCache
// exploits.
//
// The package offers two tracing algorithms behind the Scanner
// interface, selected by Mode:
//
//   - ModeDDA (Tracer): every ray is marched voxel-by-voxel with an
//     Amanatides–Woo DDA. Tracer.Trace preserves duplicates, matching
//     vanilla OctoMap's per-ray update stream; Tracer.TraceRT
//     eliminates duplicates within the batch (occupied observations win
//     over free, OctoMap's discrete-update rule), standing in for
//     OctoMap-RT's deduplicating GPU ray tracer.
//   - ModeBoundary (Boundary): the scan's free space is rasterized once
//     per batch from the measured surface (D-BDM style): endpoints are
//     binned into per-scan occupancy bitmaps, the region bounded by the
//     origin and the surface is marked free, and the result is swept
//     out in scanline order. The emitted batch is inherently
//     deduplicated and set-equal to Tracer.TraceRT's.
//
// New(cfg, mode, workers) picks the implementation; workers > 1 fans
// the per-ray work of either mode across goroutines.
package raytrace

import (
	"math"

	"octocache/internal/geom"
	"octocache/internal/voxel"
)

// Voxel is one observation: a voxel key plus whether it was seen occupied.
// This is the unit that flows from ray tracing into the cache and octree.
type Voxel struct {
	Key      voxel.Key
	Occupied bool
}

// Config describes the discretization a tracer targets.
type Config struct {
	// Resolution is the voxel edge length in meters.
	Resolution float64
	// Depth is the octree depth defining the key space.
	Depth int
	// MaxRange truncates rays longer than this many meters; the truncated
	// endpoint is recorded free (no obstacle evidence), following
	// OctoMap's maxrange handling. Zero or negative disables truncation.
	MaxRange float64
}

// Mode selects the tracing algorithm a Scanner uses.
type Mode int

const (
	// ModeDDA marches every ray voxel-by-voxel (Amanatides–Woo); the
	// default, matching vanilla OctoMap's update stream.
	ModeDDA Mode = iota
	// ModeBoundary rasterizes the scan's free space once per batch from
	// the measured surface and sweeps it out in scanline order; the
	// batch is inherently deduplicated (occupied-wins), set-equal to
	// ModeDDA's TraceRT output.
	ModeBoundary
)

// String names the mode the way pipeline names and flags spell it.
func (m Mode) String() string {
	if m == ModeBoundary {
		return "boundary"
	}
	return "dda"
}

// Scanner converts sensor scans into voxel observation batches. All
// implementations share the Tracer's reuse contract: a Scanner is not
// safe for concurrent use and the returned batch aliases internal
// buffers that the next call overwrites.
type Scanner interface {
	// Trace converts one scan into a voxel batch. ModeDDA preserves
	// duplicate observations; ModeBoundary cannot (deduplication is the
	// point of rasterizing), so its Trace equals its TraceRT.
	Trace(origin geom.Vec3, points []geom.Vec3) []Voxel
	// TraceRT converts one scan into a deduplicated batch: each voxel
	// at most once, occupied observations outranking free ones.
	TraceRT(origin geom.Vec3, points []geom.Vec3) []Voxel
	// Config returns the discretization the scanner targets.
	Config() Config
}

// New constructs the Scanner for a mode. workers > 1 fans the per-ray
// work across that many goroutines per call (the fan allocates its
// join state per call, so leave workers at 0 or 1 on allocation-gated
// paths); 0 and 1 both mean serial.
func New(cfg Config, mode Mode, workers int) Scanner {
	if mode == ModeBoundary {
		return NewBoundary(cfg, workers)
	}
	if workers > 1 {
		return newFanTracer(cfg, workers)
	}
	return NewTracer(cfg)
}

// Tracer casts point-cloud rays into voxel batches. The zero value is not
// usable; construct with NewTracer. A Tracer reuses internal buffers, so
// it is not safe for concurrent use, and the returned batches alias an
// internal buffer that the next Trace/TraceRT call overwrites — callers
// must copy or fully consume a batch before re-tracing. Both pipelines in
// this repository do: the engine admits the batch synchronously and the
// shard router scatters it into per-shard scratch before returning the
// tracer to its pool. The reuse is what keeps the steady-state trace
// stage allocation-free (one warmed buffer per tracer, no per-scan
// make).
type Tracer struct {
	cfg Config
	// buf is the recycled batch storage Trace appends into.
	buf []Voxel
	// scratch for per-batch dedup in TraceRT
	seen map[voxel.Key]int
}

// NewTracer constructs a Tracer for the given configuration.
func NewTracer(cfg Config) *Tracer {
	return &Tracer{cfg: cfg, seen: make(map[voxel.Key]int)}
}

// Config returns the tracer's configuration.
func (t *Tracer) Config() Config { return t.cfg }

// Trace converts a point cloud into a voxel batch, preserving duplicate
// observations exactly as vanilla OctoMap's per-ray update stream does.
// Points are in world coordinates; origin is the sensor position.
func (t *Tracer) Trace(origin geom.Vec3, points []geom.Vec3) []Voxel {
	batch := t.buf[:0]
	for _, p := range points {
		batch = t.traceRay(batch, origin, p)
	}
	t.buf = batch
	return batch
}

// TraceRT converts a point cloud into a deduplicated voxel batch: each
// voxel appears at most once, and an occupied observation anywhere in the
// batch outranks free observations of the same voxel. Batch order follows
// first observation, matching the paper's description of OctoMap-RT.
func (t *Tracer) TraceRT(origin geom.Vec3, points []geom.Vec3) []Voxel {
	return dedupRT(t.seen, t.Trace(origin, points))
}

// dedupRT compacts raw in place to one entry per voxel, occupied
// observations winning, preserving first-observation order. seen is the
// caller's recycled scratch index.
func dedupRT(seen map[voxel.Key]int, raw []Voxel) []Voxel {
	clear(seen)
	out := raw[:0]
	for _, v := range raw {
		if i, ok := seen[v.Key]; ok {
			if v.Occupied {
				out[i].Occupied = true
			}
			continue
		}
		seen[v.Key] = len(out)
		out = append(out, v)
	}
	return out
}

// traceRay appends the voxels of one ray to batch: free voxels from the
// origin up to (but excluding) the endpoint voxel, then the endpoint
// voxel marked occupied — unless the ray was truncated by MaxRange, in
// which case the endpoint is free.
func (t *Tracer) traceRay(batch []Voxel, origin, point geom.Vec3) []Voxel {
	end := point
	occupiedEnd := true
	if t.cfg.MaxRange > 0 {
		d := point.Sub(origin)
		if n := d.Norm(); n > t.cfg.MaxRange {
			end = origin.Add(d.Scale(t.cfg.MaxRange / n))
			occupiedEnd = false
		}
	}
	endKey, endOK := voxel.CoordToKey(end, t.cfg.Resolution, t.cfg.Depth)
	startKey, startOK := voxel.CoordToKey(origin, t.cfg.Resolution, t.cfg.Depth)
	if !startOK || !endOK {
		// Rays leaving the mapped cube carry no usable evidence; skip, as
		// OctoMap does for unmappable coordinates.
		return batch
	}
	if startKey == endKey {
		return append(batch, Voxel{Key: endKey, Occupied: occupiedEnd})
	}

	// Amanatides–Woo DDA through the voxel grid from origin to end.
	res := t.cfg.Resolution
	dir := end.Sub(origin)
	length := dir.Norm()
	dirN := dir.Scale(1 / length)

	cur := [3]int{int(startKey.X), int(startKey.Y), int(startKey.Z)}
	last := [3]int{int(endKey.X), int(endKey.Y), int(endKey.Z)}
	o := [3]float64{origin.X, origin.Y, origin.Z}
	d := [3]float64{dirN.X, dirN.Y, dirN.Z}
	half := 1 << (t.cfg.Depth - 1)

	var step [3]int
	var tMax, tDelta [3]float64
	for i := 0; i < 3; i++ {
		switch {
		case d[i] > 0:
			step[i] = 1
			// Distance along the ray to the voxel's upper boundary.
			boundary := float64(cur[i]-half+1) * res
			tMax[i] = (boundary - o[i]) / d[i]
			tDelta[i] = res / d[i]
		case d[i] < 0:
			step[i] = -1
			boundary := float64(cur[i]-half) * res
			tMax[i] = (boundary - o[i]) / d[i]
			tDelta[i] = -res / d[i]
		default:
			step[i] = 0
			tMax[i] = math.Inf(1)
			tDelta[i] = math.Inf(1)
		}
	}

	// March. The step bound guards against pathological float behaviour:
	// a straight ray can cross at most one voxel boundary per axis per
	// resolution step plus slack. Checking cur != last at the top keeps
	// the endpoint voxel out of the free marks and guarantees it is
	// emitted exactly once, however the loop exits; the bounds bail
	// mirrors CastRayKeys so a pathological step past the grid edge can
	// never wrap uint16(cur[i]) into a corrupted in-grid key.
	maxSteps := (abs(last[0]-cur[0]) + abs(last[1]-cur[1]) + abs(last[2]-cur[2])) + 6
	limit := 1 << t.cfg.Depth
	for steps := 0; steps < maxSteps && cur != last; steps++ {
		batch = append(batch, Voxel{
			Key: voxel.Key{X: uint16(cur[0]), Y: uint16(cur[1]), Z: uint16(cur[2])},
		})
		axis := 0
		if tMax[1] < tMax[axis] {
			axis = 1
		}
		if tMax[2] < tMax[axis] {
			axis = 2
		}
		cur[axis] += step[axis]
		tMax[axis] += tDelta[axis]
		if cur[axis] < 0 || cur[axis] >= limit {
			break
		}
	}
	return append(batch, Voxel{Key: endKey, Occupied: occupiedEnd})
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// CountDistinct returns the number of distinct voxel keys in a batch —
// the "non-duplicate voxel" count of Table 2.
func CountDistinct(batch []Voxel) int {
	seen := make(map[voxel.Key]struct{}, len(batch))
	for _, v := range batch {
		seen[v.Key] = struct{}{}
	}
	return len(seen)
}

// DistinctKeys returns the set of distinct voxel keys in a batch.
func DistinctKeys(batch []Voxel) map[voxel.Key]struct{} {
	seen := make(map[voxel.Key]struct{}, len(batch))
	for _, v := range batch {
		seen[v.Key] = struct{}{}
	}
	return seen
}
