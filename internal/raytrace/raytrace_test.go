package raytrace

import (
	"math"
	"math/rand"
	"testing"

	"octocache/internal/geom"
	"octocache/internal/octree"
)

func cfg(res float64) Config { return Config{Resolution: res, Depth: 16} }

func TestSingleVoxelRay(t *testing.T) {
	tr := NewTracer(cfg(0.1))
	// Origin and endpoint in the same voxel: only the occupied endpoint.
	b := tr.Trace(geom.V(0.01, 0.01, 0.01), []geom.Vec3{geom.V(0.02, 0.03, 0.04)})
	if len(b) != 1 {
		t.Fatalf("batch size %d, want 1", len(b))
	}
	if !b[0].Occupied {
		t.Error("endpoint should be occupied")
	}
}

func TestAxisAlignedRay(t *testing.T) {
	tr := NewTracer(cfg(0.1))
	origin := geom.V(0.05, 0.05, 0.05)
	end := geom.V(1.05, 0.05, 0.05) // 10 voxels along +X
	b := tr.Trace(origin, []geom.Vec3{end})
	if len(b) != 11 {
		t.Fatalf("batch size %d, want 11 (10 free + 1 occupied)", len(b))
	}
	for i, v := range b[:10] {
		if v.Occupied {
			t.Errorf("voxel %d should be free", i)
		}
	}
	if !b[10].Occupied {
		t.Error("endpoint should be occupied")
	}
	// Keys must advance by exactly one voxel in X.
	for i := 1; i < len(b); i++ {
		if b[i].Key.X != b[i-1].Key.X+1 || b[i].Key.Y != b[i-1].Key.Y || b[i].Key.Z != b[i-1].Key.Z {
			t.Fatalf("non-contiguous keys at %d: %v -> %v", i, b[i-1].Key, b[i].Key)
		}
	}
}

func TestNegativeDirectionRay(t *testing.T) {
	tr := NewTracer(cfg(0.1))
	b := tr.Trace(geom.V(0.05, 0.05, 0.05), []geom.Vec3{geom.V(-0.95, 0.05, 0.05)})
	if len(b) != 11 {
		t.Fatalf("batch size %d, want 11", len(b))
	}
	for i := 1; i < len(b); i++ {
		if b[i].Key.X != b[i-1].Key.X-1 {
			t.Fatalf("keys should descend in X: %v -> %v", b[i-1].Key, b[i].Key)
		}
	}
}

// Property: the ray's free voxels are 6-connected (each step moves to a
// face-adjacent voxel), start at the origin voxel, and end adjacent to
// or at the endpoint voxel.
func TestRayConnectivity(t *testing.T) {
	tr := NewTracer(cfg(0.05))
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 500; trial++ {
		origin := geom.V(rng.Float64()*4-2, rng.Float64()*4-2, rng.Float64()*4-2)
		end := geom.V(rng.Float64()*4-2, rng.Float64()*4-2, rng.Float64()*4-2)
		b := tr.Trace(origin, []geom.Vec3{end})
		if len(b) == 0 {
			t.Fatal("empty batch for in-bounds ray")
		}
		ok, _ := octree.CoordToKey(origin, 0.05, 16)
		if b[0].Key != ok && len(b) > 1 {
			t.Fatalf("trial %d: ray does not start at origin voxel", trial)
		}
		ek, _ := octree.CoordToKey(end, 0.05, 16)
		if b[len(b)-1].Key != ek {
			t.Fatalf("trial %d: ray does not end at endpoint voxel", trial)
		}
		for i := 1; i < len(b); i++ {
			dx := absInt(int(b[i].Key.X) - int(b[i-1].Key.X))
			dy := absInt(int(b[i].Key.Y) - int(b[i-1].Key.Y))
			dz := absInt(int(b[i].Key.Z) - int(b[i-1].Key.Z))
			if dx+dy+dz != 1 {
				t.Fatalf("trial %d: step %d not face-adjacent (d=%d,%d,%d)", trial, i, dx, dy, dz)
			}
		}
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Property: every voxel reported free must actually be intersected by the
// segment (within a small tolerance).
func TestRayVoxelsOnSegment(t *testing.T) {
	const res = 0.1
	tr := NewTracer(cfg(res))
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		origin := geom.V(rng.Float64()*6-3, rng.Float64()*6-3, rng.Float64()*6-3)
		end := geom.V(rng.Float64()*6-3, rng.Float64()*6-3, rng.Float64()*6-3)
		b := tr.Trace(origin, []geom.Vec3{end})
		dir := end.Sub(origin)
		for i, v := range b {
			c := octree.KeyToCoord(v.Key, res, 16)
			// Distance from voxel center to the segment must be within the
			// voxel's circumscribed radius.
			tproj := c.Sub(origin).Dot(dir) / dir.NormSq()
			if tproj < 0 {
				tproj = 0
			}
			if tproj > 1 {
				tproj = 1
			}
			closest := origin.Add(dir.Scale(tproj))
			if c.Dist(closest) > res*math.Sqrt(3)/2+1e-9 {
				t.Fatalf("trial %d: voxel %d center %v is %.4f m from segment", trial, i, c, c.Dist(closest))
			}
		}
	}
}

func TestMaxRangeTruncation(t *testing.T) {
	c := cfg(0.1)
	c.MaxRange = 0.5
	tr := NewTracer(c)
	b := tr.Trace(geom.V(0.05, 0.05, 0.05), []geom.Vec3{geom.V(2.05, 0.05, 0.05)})
	// Ray truncated to 0.5 m: ~5 voxels, all free.
	for _, v := range b {
		if v.Occupied {
			t.Fatal("truncated ray must not report occupied voxels")
		}
	}
	if len(b) < 4 || len(b) > 7 {
		t.Errorf("truncated batch size %d, expected about 6", len(b))
	}
	// Within range: endpoint occupied as usual.
	b = tr.Trace(geom.V(0.05, 0.05, 0.05), []geom.Vec3{geom.V(0.35, 0.05, 0.05)})
	if !b[len(b)-1].Occupied {
		t.Error("in-range endpoint should be occupied")
	}
}

func TestOutOfBoundsRaySkipped(t *testing.T) {
	tr := NewTracer(cfg(0.1)) // map half-range is 3276.8 m
	b := tr.Trace(geom.V(0, 0, 0), []geom.Vec3{geom.V(1e6, 0, 0)})
	if len(b) != 0 {
		t.Errorf("out-of-bounds ray produced %d voxels", len(b))
	}
}

func TestConeDuplication(t *testing.T) {
	// Rays fanning out from one origin share voxels near it; the batch
	// must contain duplicates (the §3.1 observation OctoCache exploits).
	tr := NewTracer(cfg(0.1))
	origin := geom.V(0, 0, 0.05)
	var pts []geom.Vec3
	for i := 0; i < 60; i++ {
		ang := float64(i) / 60 * math.Pi / 4
		pts = append(pts, geom.V(3*math.Cos(ang), 3*math.Sin(ang), 0.05))
	}
	b := tr.Trace(origin, pts)
	distinct := CountDistinct(b)
	if distinct >= len(b) {
		t.Fatalf("no duplication in conical scan: %d voxels, %d distinct", len(b), distinct)
	}
	dup := float64(len(b)) / float64(distinct)
	if dup < 1.5 {
		t.Errorf("duplication rate %.2f too low for a conical scan", dup)
	}
}

func TestTraceRTDeduplicates(t *testing.T) {
	tr := NewTracer(cfg(0.1))
	origin := geom.V(0, 0, 0.05)
	var pts []geom.Vec3
	for i := 0; i < 60; i++ {
		ang := float64(i) / 60 * math.Pi / 4
		pts = append(pts, geom.V(3*math.Cos(ang), 3*math.Sin(ang), 0.05))
	}
	rt := tr.TraceRT(origin, pts)
	if CountDistinct(rt) != len(rt) {
		t.Fatal("TraceRT batch contains duplicates")
	}
	// Trace with a second tracer: batches alias per-tracer storage, so a
	// second call on tr would overwrite rt.
	raw := NewTracer(cfg(0.1)).Trace(origin, pts)
	if len(rt) != CountDistinct(raw) {
		t.Errorf("RT batch size %d != distinct raw voxels %d", len(rt), CountDistinct(raw))
	}
}

func TestTraceRTOccupiedWins(t *testing.T) {
	tr := NewTracer(cfg(0.1))
	// Two rays: one passes through voxel V as free; the other ends in V.
	origin := geom.V(0.05, 0.05, 0.05)
	through := geom.V(2.05, 0.05, 0.05) // passes voxel at x≈1.0
	endsAt := geom.V(1.05, 0.05, 0.05)  // occupies that voxel
	rt := tr.TraceRT(origin, []geom.Vec3{through, endsAt})
	target, _ := octree.CoordToKey(endsAt, 0.1, 16)
	found := false
	for _, v := range rt {
		if v.Key == target {
			found = true
			if !v.Occupied {
				t.Error("occupied observation must outrank free in RT dedup")
			}
		}
	}
	if !found {
		t.Fatal("target voxel missing from RT batch")
	}
	// Order-independence of the winner.
	rt2 := tr.TraceRT(origin, []geom.Vec3{endsAt, through})
	for _, v := range rt2 {
		if v.Key == target && !v.Occupied {
			t.Error("occupied must win regardless of ray order")
		}
	}
}

func TestTraceIntoOctreeMatchesDirectUpdates(t *testing.T) {
	// Feeding a traced batch into the octree must equal applying the same
	// logical observations directly.
	p := octree.DefaultParams(0.1)
	tr := NewTracer(cfg(0.1))
	batch := tr.Trace(geom.V(0.05, 0.05, 0.05), []geom.Vec3{geom.V(1.55, 0.75, 0.35)})

	a := octree.New(p)
	for _, v := range batch {
		a.Update(v.Key, v.Occupied)
	}
	b := octree.New(p)
	for _, v := range batch {
		b.Update(v.Key, v.Occupied)
	}
	if !a.Equal(b) {
		t.Fatal("identical batches produced different trees")
	}
	// The endpoint voxel must be occupied, intermediate ones free.
	if !a.Occupied(batch[len(batch)-1].Key) {
		t.Error("endpoint not occupied in tree")
	}
	if a.Occupied(batch[0].Key) {
		t.Error("origin-adjacent voxel should be free")
	}
}

func TestEmptyPointCloud(t *testing.T) {
	tr := NewTracer(cfg(0.1))
	if b := tr.Trace(geom.V(0, 0, 0), nil); len(b) != 0 {
		t.Errorf("empty cloud produced %d voxels", len(b))
	}
	if b := tr.TraceRT(geom.V(0, 0, 0), nil); len(b) != 0 {
		t.Errorf("empty cloud RT produced %d voxels", len(b))
	}
}

func BenchmarkTrace(b *testing.B) {
	tr := NewTracer(cfg(0.1))
	origin := geom.V(0, 0, 1)
	var pts []geom.Vec3
	for i := 0; i < 500; i++ {
		ang := float64(i) / 500 * math.Pi
		pts = append(pts, geom.V(5*math.Cos(ang), 5*math.Sin(ang), 1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Trace(origin, pts)
	}
}

func BenchmarkTraceRT(b *testing.B) {
	tr := NewTracer(cfg(0.1))
	origin := geom.V(0, 0, 1)
	var pts []geom.Vec3
	for i := 0; i < 500; i++ {
		ang := float64(i) / 500 * math.Pi
		pts = append(pts, geom.V(5*math.Cos(ang), 5*math.Sin(ang), 1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.TraceRT(origin, pts)
	}
}
