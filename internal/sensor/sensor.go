// Package sensor simulates the depth camera / LiDAR that feeds the
// mapping pipelines. Given a world and a pose it casts a grid of rays
// across the sensor's field of view and returns the obstacle-surface
// sample points — the point cloud of paper Figure 4.
//
// The ray grid is intentionally denser than typical mapping resolutions,
// so multiple returns land in the same voxel near surfaces; combined with
// the conical beam geometry this reproduces the intra-batch duplication
// of §3.1 that OctoCache exploits.
package sensor

import (
	"math"
	"math/rand"

	"octocache/internal/geom"
	"octocache/internal/world"
)

// Model describes a range sensor.
type Model struct {
	// HFOV and VFOV are the horizontal and vertical fields of view in
	// radians.
	HFOV, VFOV float64
	// HRays and VRays are the ray-grid dimensions (angular resolution).
	HRays, VRays int
	// MaxRange is the maximum sensing range in meters — the paper's
	// per-environment "sensing range" parameter.
	MaxRange float64
	// FPS is the sensor frame rate (both UAVs use 50 Hz sensors, §5.1).
	FPS float64
	// RangeNoise is the standard deviation of Gaussian noise applied
	// along each ray, in meters. Zero disables noise.
	RangeNoise float64
}

// DefaultModel returns a forward depth camera comparable to the MAVBench
// setup: 90°x60° FOV at 50 Hz with the given range and ray density.
func DefaultModel(maxRange float64, hRays, vRays int) Model {
	return Model{
		HFOV:     math.Pi / 2,
		VFOV:     math.Pi / 3,
		HRays:    hRays,
		VRays:    vRays,
		MaxRange: maxRange,
		FPS:      50,
	}
}

// Panoramic returns a wide-FOV scanning laser comparable to the sensors
// behind the public OctoMap datasets (FR-079 and Freiburg campus were
// captured with panoramic laser scanners): 240°x60° FOV. The wide
// horizontal sweep is what gives consecutive dataset scans their extreme
// voxel overlap (paper Figure 8).
func Panoramic(maxRange float64, hRays, vRays int) Model {
	return Model{
		HFOV:     4 * math.Pi / 3,
		VFOV:     math.Pi / 3,
		HRays:    hRays,
		VRays:    vRays,
		MaxRange: maxRange,
		FPS:      50,
	}
}

// Scan casts the sensor's ray grid from the pose into w and returns the
// surface points hit within MaxRange, in world coordinates. rng is used
// only when RangeNoise > 0 and may be nil otherwise. The returned slice
// is freshly allocated.
func (m Model) Scan(w *world.World, pose geom.Pose, rng *rand.Rand) []geom.Vec3 {
	pts := make([]geom.Vec3, 0, m.HRays*m.VRays/2)
	for vi := 0; vi < m.VRays; vi++ {
		dPitch := 0.0
		if m.VRays > 1 {
			dPitch = (float64(vi)/float64(m.VRays-1) - 0.5) * m.VFOV
		}
		for hi := 0; hi < m.HRays; hi++ {
			dYaw := 0.0
			if m.HRays > 1 {
				dYaw = (float64(hi)/float64(m.HRays-1) - 0.5) * m.HFOV
			}
			dir := pose.Direction(dYaw, dPitch)
			hit, ok := w.Raycast(pose.Position, dir, m.MaxRange)
			if !ok {
				continue
			}
			if m.RangeNoise > 0 && rng != nil {
				r := hit.Sub(pose.Position).Norm()
				r += rng.NormFloat64() * m.RangeNoise
				if r < 0.05 {
					r = 0.05
				}
				hit = pose.Position.Add(dir.Scale(r))
			}
			pts = append(pts, hit)
		}
	}
	return pts
}

// Rays returns the total number of rays per scan.
func (m Model) Rays() int { return m.HRays * m.VRays }

// Period returns the time between frames.
func (m Model) Period() float64 {
	if m.FPS <= 0 {
		return 0
	}
	return 1 / m.FPS
}
