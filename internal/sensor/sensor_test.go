package sensor

import (
	"math"
	"math/rand"
	"testing"

	"octocache/internal/geom"
	"octocache/internal/world"
)

// wallWorld is a single wall 5 m in front of the origin.
func wallWorld() *world.World {
	return &world.World{
		Name:      "wall",
		Bounds:    geom.Box(geom.V(-10, -10, -10), geom.V(10, 10, 10)),
		Obstacles: []world.Obstacle{world.B(geom.V(5, -10, -10), geom.V(5.5, 10, 10))},
	}
}

func TestScanHitsWall(t *testing.T) {
	m := DefaultModel(8, 21, 11)
	pts := m.Scan(wallWorld(), geom.Pose{Position: geom.V(0, 0, 0)}, nil)
	if len(pts) == 0 {
		t.Fatal("no returns from wall")
	}
	for _, p := range pts {
		if math.Abs(p.X-5) > 1e-6 {
			t.Fatalf("return %v not on wall face x=5", p)
		}
		if p.Sub(geom.V(0, 0, 0)).Norm() > 8+1e-9 {
			t.Fatalf("return %v beyond max range", p)
		}
	}
}

func TestScanRespectsMaxRange(t *testing.T) {
	m := DefaultModel(3, 21, 11) // wall at 5 m is out of range
	pts := m.Scan(wallWorld(), geom.Pose{Position: geom.V(0, 0, 0)}, nil)
	if len(pts) != 0 {
		t.Errorf("%d returns beyond max range", len(pts))
	}
}

func TestScanYawAims(t *testing.T) {
	// Facing away from the wall: no returns.
	m := DefaultModel(8, 21, 11)
	pts := m.Scan(wallWorld(), geom.Pose{Position: geom.V(0, 0, 0), Yaw: math.Pi}, nil)
	if len(pts) != 0 {
		t.Errorf("%d returns while facing away", len(pts))
	}
}

func TestScanDeterministicWithoutNoise(t *testing.T) {
	m := DefaultModel(8, 15, 9)
	w := wallWorld()
	a := m.Scan(w, geom.Pose{Position: geom.V(0, 0, 0)}, nil)
	b := m.Scan(w, geom.Pose{Position: geom.V(0, 0, 0)}, nil)
	if len(a) != len(b) {
		t.Fatal("nondeterministic scan size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic scan points")
		}
	}
}

func TestScanNoisePerturbsAlongRay(t *testing.T) {
	m := DefaultModel(8, 15, 9)
	m.RangeNoise = 0.02
	w := wallWorld()
	origin := geom.V(0, 0, 0)
	pts := m.Scan(w, geom.Pose{Position: origin}, rand.New(rand.NewSource(1)))
	if len(pts) == 0 {
		t.Fatal("no returns")
	}
	var maxDev float64
	for _, p := range pts {
		// Noisy points should lie near the wall but not exactly on it.
		dev := math.Abs(p.X - 5)
		if dev > maxDev {
			maxDev = dev
		}
		if dev > 0.3 {
			t.Fatalf("noise deviation %.3f too large", dev)
		}
	}
	if maxDev == 0 {
		t.Error("noise had no effect")
	}
}

func TestScanFromRealEnvironmentsProducesPoints(t *testing.T) {
	for _, e := range append(world.MAVBenchEnvs(), world.DatasetEnvs()...) {
		w := world.Build(e, 1)
		m := DefaultModel(8, 31, 15)
		pose := geom.Pose{Position: w.Start, Pitch: -0.15}
		pts := m.Scan(w, pose, nil)
		if len(pts) == 0 {
			t.Errorf("%v: scan from start produced no points", e)
		}
	}
}

func TestModelHelpers(t *testing.T) {
	m := DefaultModel(8, 10, 5)
	if m.Rays() != 50 {
		t.Errorf("Rays = %d", m.Rays())
	}
	if p := m.Period(); math.Abs(p-0.02) > 1e-12 {
		t.Errorf("Period = %v, want 0.02 (50 Hz)", p)
	}
	m.FPS = 0
	if m.Period() != 0 {
		t.Error("Period with FPS=0 should be 0")
	}
}

func TestSingleRayModel(t *testing.T) {
	// HRays = VRays = 1 must not divide by zero and aims straight ahead.
	m := Model{HFOV: 1, VFOV: 1, HRays: 1, VRays: 1, MaxRange: 10}
	pts := m.Scan(wallWorld(), geom.Pose{Position: geom.V(0, 0, 0)}, nil)
	if len(pts) != 1 {
		t.Fatalf("got %d points, want 1", len(pts))
	}
	if math.Abs(pts[0].Y) > 1e-9 || math.Abs(pts[0].Z) > 1e-9 {
		t.Errorf("single ray not straight ahead: %v", pts[0])
	}
}
