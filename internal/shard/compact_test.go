package shard

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"octocache/internal/core"
	"octocache/internal/geom"
	"octocache/internal/octree"
)

// fragment drives a sharded map through a prune-heavy stream: arcs from
// shifting origins grow structure, repeated re-observation saturates
// free-space octants to the clamp so they prune, loading the per-shard
// arena free lists.
func fragment(t testing.TB, m *Map) {
	t.Helper()
	for i := 0; i < 5; i++ {
		origin := geom.V(0.5*float64(i), 0.4*float64(i%2), 1)
		pts := scanArc(origin, 1.5+0.3*float64(i), 220, float64(i))
		for rep := 0; rep < 10; rep++ {
			if err := m.Insert(origin, pts); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestCompactInvariants runs explicit compaction across the shard-count
// × pipeline matrix and checks the arena post-conditions per shard:
// free list empty, live == capacity, aggregate capacity strictly
// smaller, and the map's observable state (queries and the merged
// serialized tree) untouched.
func TestCompactInvariants(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		for _, pl := range []Pipeline{PipelineSerial, PipelineAsync, PipelineDirect} {
			t.Run(fmt.Sprintf("shards=%d/pipeline=%d", shards, pl), func(t *testing.T) {
				sm, err := New(Config{Core: testConfig(), Shards: shards, Pipeline: pl})
				if err != nil {
					t.Fatal(err)
				}
				ref, err := New(Config{Core: testConfig(), Shards: shards, Pipeline: pl})
				if err != nil {
					t.Fatal(err)
				}
				defer sm.Close()
				defer ref.Close()
				fragment(t, sm)
				fragment(t, ref)

				before := sm.ArenaStats()
				if before.FreeSlots == 0 {
					t.Fatal("fragmenting stream left no free slots")
				}
				if err := sm.Compact(); err != nil {
					t.Fatalf("Compact: %v", err)
				}

				after := sm.ArenaStats()
				if after.FreeSlots != 0 || after.LiveNodes != after.Capacity {
					t.Errorf("aggregate arena not dense: %+v", after)
				}
				if after.Capacity >= before.Capacity {
					t.Errorf("capacity did not shrink: %d -> %d", before.Capacity, after.Capacity)
				}
				if after.LiveNodes != before.LiveNodes {
					t.Errorf("live nodes changed: %d -> %d", before.LiveNodes, after.LiveNodes)
				}
				cs := sm.CompactionStats()
				if cs.Runs != int64(sm.NumShards()) || cs.SlotsReclaimed == 0 {
					t.Errorf("CompactionStats = %+v, want one run per shard (%d)", cs, sm.NumShards())
				}
				for _, s := range sm.ShardStats() {
					if s.Arena.FreeSlots != 0 || s.Arena.LiveNodes != s.Arena.Capacity {
						t.Errorf("shard %d arena not dense: %+v", s.Shard, s.Arena)
					}
					// A dense shard recounts exactly: the per-shard node
					// count must survive a leaf walk into a fresh tree.
					if s.Arena.LiveNodes > 0 && s.Compaction.Runs != 1 {
						t.Errorf("shard %d ran %d compactions, want 1", s.Shard, s.Compaction.Runs)
					}
				}

				// Queries and the merged serialized tree are unchanged.
				for _, p := range scanArc(geom.V(0.5, 0.2, 1), 1.8, 40, 0.3) {
					lw, kw := ref.Occupancy(p)
					if lg, kg := sm.Occupancy(p); lg != lw || kg != kw {
						t.Fatalf("query at %v changed across Compact", p)
					}
				}
				var a, b bytes.Buffer
				if _, err := ref.Snapshot().WriteTo(&a); err != nil {
					t.Fatal(err)
				}
				if _, err := sm.Snapshot().WriteTo(&b); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(a.Bytes(), b.Bytes()) {
					t.Error("merged serialization changed across Compact")
				}

				// The compacted shards keep accepting writes.
				if err := sm.Insert(geom.V(0, 0, 1), scanArc(geom.V(0, 0, 1), 2.2, 60, 1)); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestAutoCompactionPerShard wires the policy through Config.Core: every
// shard that crosses the threshold compacts itself behind its own
// applier quiesce, and answers stay identical to an uncompacted twin.
func TestAutoCompactionPerShard(t *testing.T) {
	cfg := testConfig()
	ref, err := New(Config{Core: cfg, Shards: 4, Pipeline: PipelineAsync})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Compaction = octree.CompactionPolicy{MinFreeFraction: 0.01, MinFreeSlots: 1}
	sm, err := New(Config{Core: cfg, Shards: 4, Pipeline: PipelineAsync})
	if err != nil {
		t.Fatal(err)
	}
	fragment(t, ref)
	fragment(t, sm)
	if runs := sm.CompactionStats().Runs; runs == 0 {
		t.Error("aggressive per-shard policy never compacted")
	}
	if runs := ref.CompactionStats().Runs; runs != 0 {
		t.Errorf("zero policy compacted %d times", runs)
	}
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sm.Close(); err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if _, err := ref.Snapshot().WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := sm.Snapshot().WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("auto-compaction changed the merged serialization")
	}
}

// TestCompactCloseLifecycle: Compact after Close returns ErrClosed, and
// Compact racing Close (and concurrent Compacts racing each other) never
// panics or deadlocks — every call lands on nil or ErrClosed.
func TestCompactCloseLifecycle(t *testing.T) {
	sm, err := New(Config{Core: testConfig(), Shards: 2, Pipeline: PipelineAsync})
	if err != nil {
		t.Fatal(err)
	}
	if err := sm.Insert(geom.V(0, 0, 1), scanArc(geom.V(0, 0, 1), 2, 60, 0)); err != nil {
		t.Fatal(err)
	}
	if err := sm.Compact(); err != nil {
		t.Fatalf("Compact on live map: %v", err)
	}
	if err := sm.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sm.Compact(); !errors.Is(err, ErrClosed) {
		t.Errorf("Compact after Close = %v, want ErrClosed", err)
	}
	if got := sm.CompactionStats(); got.Runs != 2 {
		t.Errorf("Runs = %d after one whole-map Compact over 2 shards", got.Runs)
	}

	for trial := 0; trial < 10; trial++ {
		sm, err := New(Config{Core: testConfig(), Shards: 4, Pipeline: PipelineAsync})
		if err != nil {
			t.Fatal(err)
		}
		fragment(t, sm)
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := sm.Compact(); err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("Compact: %v", err)
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := sm.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
		wg.Wait()
	}
}

// TestCompactionStatsAdd pins the aggregate semantics ShardStats relies
// on: counts sum, LastDuration keeps the worst shard.
func TestCompactionStatsAdd(t *testing.T) {
	a := core.CompactionStats{Runs: 2, SlotsReclaimed: 100, LastDuration: 5}
	b := core.CompactionStats{Runs: 1, SlotsReclaimed: 7, LastDuration: 9}
	got := a.Add(b)
	if got.Runs != 3 || got.SlotsReclaimed != 107 || got.LastDuration != 9 {
		t.Errorf("Add = %+v", got)
	}
}
