// Package shard implements the sharded concurrent map service: space is
// partitioned across N independent OctoCache pipelines keyed by the top
// bits of the voxel Morton code, so many producer goroutines can ingest
// point clouds concurrently and a query only contends on the single
// shard that owns the queried voxel — instead of every caller serializing
// behind one pipeline and one global octree mutex.
//
// Why Morton-prefix sharding: the high bits of a Morton code address the
// coarsest octree subdivisions, so each shard owns a union of whole
// subtrees. The partition is therefore locality-preserving (a shard's
// eviction sweep still emits near-Morton runs into its own octree) and
// exact (every voxel has exactly one owner, so the per-voxel update
// stream stays ordered under the shard's lock and answers remain
// bit-identical to the serial pipeline — see the consistency tests).
//
// Ingest path per producer: the scan is ray-traced once outside any
// lock, the traced cells are partitioned by shard index with a stable
// counting sort into a pooled flat scratch (count per shard, prefix-sum
// offsets, ordered scatter — no per-shard slice growth, no allocation in
// steady state), and each shard's contiguous segment is applied under
// that shard's write lock through the pipeline's ApplyTraced entry
// point. The scatter preserves each voxel's observation order, which is
// what keeps sharded answers bit-identical to the serial pipeline.
// Distinct producers mostly touch distinct shards (scans are spatially
// compact), so ingest scales with the shard count until producers
// collide on hot regions.
//
// Locking is a per-shard RWMutex: mutators (the apply slice of an
// Insert, Close's flush) take the write side, queries take the read
// side. Combined with the engine's internal tree lock and batch-gap
// handshake, a query that hits the shard's cache touches no lock shared
// with octree writers at all, and a cache miss only waits for already
// handed-off eviction batches to land — so with PipelineAsync, octree
// application runs on a background goroutine per shard (the paper's
// Figure 14 schedule) while queries keep flowing.
package shard

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"octocache/internal/cache"
	"octocache/internal/core"
	"octocache/internal/geom"
	"octocache/internal/morton"
	"octocache/internal/raytrace"
	"octocache/internal/voxel"
)

// ErrClosed is returned by Insert once the map has been closed (or
// finalized): the map remains queryable forever, but accepts no further
// observations. It is the same value core pipelines return, so errors.Is
// works across layers.
var ErrClosed = core.ErrClosed

// MaxShards bounds the shard count.
const MaxShards = 1 << morton.ShardMaxBits

// MinShardBuckets floors the per-shard cache width when the configured
// bucket budget is divided across shards.
const MinShardBuckets = 64

// Pipeline selects the per-shard pipeline composition.
type Pipeline int

const (
	// PipelineSerial runs the serial OctoCache per shard: octree
	// application happens inline, inside the shard's write lock.
	PipelineSerial Pipeline = iota
	// PipelineAsync runs the paper's two-thread schedule per shard:
	// octree application moves to a background applier goroutine behind
	// the SPSC buffer, overlapping the router's out-of-lock work.
	PipelineAsync
	// PipelineDirect runs the cache-less OctoMap baseline per shard.
	PipelineDirect
)

func (p Pipeline) kind() (core.Kind, error) {
	switch p {
	case PipelineSerial:
		return core.KindSerial, nil
	case PipelineAsync:
		return core.KindParallel, nil
	case PipelineDirect:
		return core.KindOctoMap, nil
	default:
		return 0, fmt.Errorf("shard: unknown pipeline %d", int(p))
	}
}

// Config configures a sharded map.
type Config struct {
	// Core configures the per-shard pipelines (resolution, sensor model,
	// cache shape, RT tracing). The cache bucket budget
	// Core.CacheBuckets is divided evenly across shards (floored at
	// MinShardBuckets), so total cache memory is shard-count independent.
	Core core.Config
	// Shards is the number of spatial partitions, rounded up to a power
	// of two. Values below 1 mean 1; values above MaxShards are an error.
	Shards int
	// Pipeline selects the per-shard composition. The zero value is
	// PipelineSerial, the seed behaviour.
	Pipeline Pipeline
}

// shardState is one spatial partition: an engine-backed pipeline guarded
// by its own RWMutex — mutators exclusive, queries shared. With
// PipelineAsync the pipeline's background applier runs outside this lock
// entirely; the engine's own tree lock and gap handshake order its
// octree writes against queries.
type shardState struct {
	mu   sync.RWMutex
	pipe core.BatchMapper
	// win caches the pipeline's windowing capability, asserted once at
	// construction and non-nil only when the map's window is enabled, so
	// the per-insert recenter loop is a nil check for unwindowed maps.
	win core.Windower
	// dur likewise caches the pipeline's durability capability (non-nil
	// only when the map's Durable policy is enabled).
	dur core.Durabler
}

// Map is a sharded occupancy map. All exported methods are safe for
// concurrent use by any number of goroutines; consistency is per-voxel
// sequential (each voxel's update stream is serialized by its owning
// shard's write lock). Cross-shard snapshots (Timings, ShardStats,
// CastRay) are composed shard-by-shard and so reflect a slightly
// time-smeared view while producers are active — exact once quiescent.
type Map struct {
	cfg      core.Config
	pipeline Pipeline
	bits     int

	shards []*shardState

	// tracers and routes recycle the per-producer scratch (a ray tracer
	// and a counting-sort partition buffer) so concurrent Insert calls
	// don't allocate per scan.
	tracers sync.Pool
	routes  sync.Pool

	// closeMu lets Insert run shared while Close runs exclusive, so the
	// final flush never overlaps an in-flight insertion.
	closeMu sync.RWMutex
	closed  bool

	batches atomic.Int64
	rayNS   atomic.Int64
	critNS  atomic.Int64
}

// New creates a sharded map. The shard count is rounded up to a power of
// two so the shard index is a Morton-prefix extraction.
func New(cfg Config) (*Map, error) {
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	if n > MaxShards {
		return nil, fmt.Errorf("shard: Shards must be <= %d, got %d", MaxShards, cfg.Shards)
	}
	kind, err := cfg.Pipeline.kind()
	if err != nil {
		return nil, err
	}
	bits := 0
	for 1<<bits < n {
		bits++
	}
	n = 1 << bits

	shardCfg := cfg.Core
	if per := shardCfg.CacheBuckets / n; per >= MinShardBuckets {
		shardCfg.CacheBuckets = per
	} else if shardCfg.CacheBuckets > 0 {
		shardCfg.CacheBuckets = MinShardBuckets
	}

	m := &Map{cfg: shardCfg, pipeline: cfg.Pipeline, bits: bits, shards: make([]*shardState, n)}
	for i := range m.shards {
		perShard := shardCfg
		if perShard.Window.Enabled() || perShard.Durable.Enabled() {
			// One log per shard: shards own disjoint key regions, so their
			// tile sets and batch streams never collide, and per-shard logs
			// keep each store single-writer under the shard's own lock.
			// Recovery proceeds shard-by-shard from the same tags.
			perShard.Tag = fmt.Sprintf("shard-%03d", i)
		}
		pipe, err := core.NewShardPipeline(kind, perShard)
		if err != nil {
			return nil, err
		}
		sh := &shardState{pipe: pipe}
		if perShard.Window.Enabled() {
			sh.win, _ = pipe.(core.Windower)
		}
		if perShard.Durable.Enabled() {
			sh.dur, _ = pipe.(core.Durabler)
		}
		m.shards[i] = sh
	}
	tracerCfg := raytrace.Config{
		Resolution: shardCfg.Octree.Resolution,
		Depth:      shardCfg.Octree.Depth,
		MaxRange:   shardCfg.MaxRange,
	}
	m.tracers.New = func() any {
		return raytrace.New(tracerCfg, shardCfg.Trace, shardCfg.TraceWorkers)
	}
	m.routes.New = func() any {
		return &routeScratch{ends: make([]int, n)}
	}
	return m, nil
}

// routeScratch is one producer's partition buffer: the traced batch is
// counting-sorted into flat, shard-major, with ends[i] marking the end
// of shard i's segment.
type routeScratch struct {
	ends []int
	sidx []uint16         // shard index per batch element (avoids re-deriving Morton codes)
	flat []raytrace.Voxel // partitioned copy of the batch, shard-major
}

// partition stable-sorts batch by owning shard: a count pass, prefix
// sums, then an ordered scatter. Within a shard, voxels keep their batch
// order — the property the consistency matrix depends on.
func (rs *routeScratch) partition(batch []raytrace.Voxel, bits int) {
	ends := rs.ends
	for i := range ends {
		ends[i] = 0
	}
	if cap(rs.sidx) < len(batch) {
		rs.sidx = make([]uint16, len(batch))
		rs.flat = make([]raytrace.Voxel, len(batch))
	}
	sidx := rs.sidx[:len(batch)]
	flat := rs.flat[:len(batch)]
	for i, v := range batch {
		s := morton.ShardIndex(v.Key.Morton(), bits)
		sidx[i] = uint16(s)
		ends[s]++
	}
	sum := 0
	for i, c := range ends {
		ends[i] = sum // start offset for now; advanced to the end below
		sum += c
	}
	for i, v := range batch {
		s := sidx[i]
		flat[ends[s]] = v
		ends[s]++ // after the scatter, ends[s] is the segment end
	}
}

// segment returns shard i's contiguous slice of the partitioned batch.
func (rs *routeScratch) segment(i int) []raytrace.Voxel {
	start := 0
	if i > 0 {
		start = rs.ends[i-1]
	}
	return rs.flat[start:rs.ends[i]:rs.ends[i]]
}

// NumShards returns the shard count (a power of two).
func (m *Map) NumShards() int { return len(m.shards) }

// Name identifies the service for reports.
func (m *Map) Name() string {
	switch m.pipeline {
	case PipelineAsync:
		return fmt.Sprintf("octocache-sharded-%d-async", len(m.shards))
	case PipelineDirect:
		return fmt.Sprintf("octomap-sharded-%d", len(m.shards))
	default:
		return fmt.Sprintf("octocache-sharded-%d", len(m.shards))
	}
}

// Resolution returns the voxel edge length in meters.
func (m *Map) Resolution() float64 { return m.cfg.Octree.Resolution }

func (m *Map) shardFor(k voxel.Key) *shardState {
	return m.shards[morton.ShardIndex(k.Morton(), m.bits)]
}

// Insert integrates one sensor scan. It is safe to call from many
// goroutines concurrently: the scan is traced once with a pooled tracer,
// the traced cells are routed by Morton prefix, and each shard's slice is
// applied under that shard's write lock. Returns ErrClosed after Close.
func (m *Map) Insert(origin geom.Vec3, points []geom.Vec3) error {
	m.closeMu.RLock()
	defer m.closeMu.RUnlock()
	if m.closed {
		return ErrClosed
	}
	start := time.Now()

	tracer := m.tracers.Get().(raytrace.Scanner)
	t0 := time.Now()
	var batch []raytrace.Voxel
	if m.cfg.RT {
		batch = tracer.TraceRT(origin, points)
	} else {
		batch = tracer.Trace(origin, points)
	}
	m.rayNS.Add(int64(time.Since(t0)))

	rs := m.routes.Get().(*routeScratch)
	rs.partition(batch, m.bits)
	// The partition copied the batch into rs.flat, so the tracer (and the
	// batch buffer it owns) can go back to the pool before the apply loop.
	m.tracers.Put(tracer)

	var err error
	for i, sh := range m.shards {
		cells := rs.segment(i)
		if len(cells) == 0 {
			continue
		}
		sh.mu.Lock()
		// With PipelineAsync, ApplyTraced hands the eviction batch to the
		// shard's background applier on the way out, so the octree update
		// overlaps the router's work on the remaining shards.
		if e := sh.pipe.ApplyTraced(cells); e != nil && err == nil {
			err = e
		}
		sh.mu.Unlock()
	}
	m.routes.Put(rs)
	if err != nil {
		return err
	}

	// Recenter every shard's window on the new origin. Each shard owns a
	// disjoint key region, so most shards evict nothing; the loop still
	// visits all of them because a shard whose region fell behind the
	// sensor must spill even when this scan routed it no cells.
	for _, sh := range m.shards {
		if sh.win == nil {
			continue
		}
		sh.mu.Lock()
		e := sh.win.Recenter(origin)
		sh.mu.Unlock()
		if e != nil {
			return e
		}
	}

	m.batches.Add(1)
	m.critNS.Add(int64(time.Since(start)))
	return nil
}

// Recenter moves every shard's window to the tile containing origin and
// evicts out-of-window tiles — the explicit form of the recentering each
// Insert performs. A no-op on unwindowed maps. Returns ErrClosed after
// Close and any sticky pager error.
func (m *Map) Recenter(origin geom.Vec3) error {
	m.closeMu.RLock()
	defer m.closeMu.RUnlock()
	if m.closed {
		return ErrClosed
	}
	for _, sh := range m.shards {
		if sh.win == nil {
			continue
		}
		sh.mu.Lock()
		err := sh.win.Recenter(origin)
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// WindowStats aggregates the per-shard paging activity; Enabled is false
// (and everything zero) for unwindowed maps.
func (m *Map) WindowStats() core.WindowStats {
	var s core.WindowStats
	for _, sh := range m.shards {
		if sh.win == nil {
			continue
		}
		sh.mu.RLock()
		s = s.Add(sh.win.WindowStats())
		sh.mu.RUnlock()
	}
	return s
}

// WindowErr returns the first shard's sticky pager error, if any.
func (m *Map) WindowErr() error {
	for _, sh := range m.shards {
		if sh.win == nil {
			continue
		}
		sh.mu.RLock()
		err := sh.win.WindowErr()
		sh.mu.RUnlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Checkpoint takes a consistent-cut snapshot of every durable shard,
// one shard at a time under that shard's write lock, retiring the WAL
// each snapshot covers. A no-op on non-durable maps. Returns ErrClosed
// after Close and any sticky durable error.
func (m *Map) Checkpoint() error {
	m.closeMu.RLock()
	defer m.closeMu.RUnlock()
	if m.closed {
		return ErrClosed
	}
	for _, sh := range m.shards {
		if sh.dur == nil {
			continue
		}
		sh.mu.Lock()
		err := sh.dur.Checkpoint()
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// DurableStats aggregates the per-shard logging activity; Enabled is
// false (and everything zero) for non-durable maps. The sequence fields
// report the minimum across shards — what the whole map is guaranteed
// durable (and snapshotted) through.
func (m *Map) DurableStats() core.DurableStats {
	var s core.DurableStats
	for _, sh := range m.shards {
		if sh.dur == nil {
			continue
		}
		sh.mu.RLock()
		s = s.Add(sh.dur.DurableStats())
		sh.mu.RUnlock()
	}
	return s
}

// DurableErr returns the first shard's sticky durable error, if any.
func (m *Map) DurableErr() error {
	for _, sh := range m.shards {
		if sh.dur == nil {
			continue
		}
		sh.mu.RLock()
		err := sh.dur.DurableErr()
		sh.mu.RUnlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// OccupancyKey returns the accumulated log-odds of the voxel at k,
// resolved by its owning shard (cache first, shard octree on miss). Only
// the shard's read lock is taken, so queries never serialize behind each
// other — and on the cache-hit path never behind octree writes either.
func (m *Map) OccupancyKey(k voxel.Key) (logOdds float32, known bool) {
	sh := m.shardFor(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.pipe.OccupancyKey(k)
}

// Occupancy is the coordinate-space variant of OccupancyKey.
func (m *Map) Occupancy(p geom.Vec3) (logOdds float32, known bool) {
	k, ok := voxel.CoordToKey(p, m.cfg.Octree.Resolution, m.cfg.Octree.Depth)
	if !ok {
		return 0, false
	}
	return m.OccupancyKey(k)
}

// OccupiedKey reports whether the voxel at k is known-occupied.
func (m *Map) OccupiedKey(k voxel.Key) bool {
	l, known := m.OccupancyKey(k)
	return known && l >= m.cfg.Octree.OccupancyThreshold
}

// Occupied reports whether the voxel containing p is known-occupied.
func (m *Map) Occupied(p geom.Vec3) bool {
	l, known := m.Occupancy(p)
	return known && l >= m.cfg.Octree.OccupancyThreshold
}

// CastRay walks from origin along dir until it enters a known-occupied
// voxel or exceeds maxRange. Each step queries the voxel's owning shard,
// so the walk crosses shard boundaries transparently; voxels are sampled
// one at a time, so a ray racing concurrent producers sees each voxel's
// freshest state rather than one atomic snapshot of all shards.
func (m *Map) CastRay(origin, dir geom.Vec3, maxRange float64, ignoreUnknown bool) (hit geom.Vec3, ok bool) {
	return core.CastRayKeys(m.cfg.Octree, m.OccupancyKey, origin, dir, maxRange, ignoreUnknown)
}

// Close flushes every shard's cache into its octree, stops background
// appliers, and rejects further insertions with ErrClosed. The map
// remains queryable. Close is idempotent and safe to call concurrently
// with Insert: it waits for in-flight insertions to drain before
// flushing.
func (m *Map) Close() error {
	m.closeMu.Lock()
	defer m.closeMu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	for _, sh := range m.shards {
		sh.mu.Lock()
		sh.pipe.Close()
		sh.mu.Unlock()
	}
	return nil
}

// LoadSnapshot splits a whole-map snapshot across the shards, each leaf
// going to its owning shard — the inverse of Snapshot, used by map
// loading. Aggregate (pruned) leaves spanning more than one shard's
// region are expanded into the per-shard sub-cubes first, so no shard
// ever holds space it does not own. Returns ErrClosed after Close.
func (m *Map) LoadSnapshot(src *core.Snapshot) error {
	m.closeMu.RLock()
	defer m.closeMu.RUnlock()
	if m.closed {
		return ErrClosed
	}
	if p := src.Params(); p != m.cfg.Octree {
		return fmt.Errorf("shard: loaded snapshot params %+v differ from map params %+v", p, m.cfg.Octree)
	}

	// A leaf routes to a single shard iff its depth reaches splitDepth:
	// the shard index is the top `bits` bits of the 48-bit Morton code,
	// of which the top 3·(16−Depth) are always zero, so the index is
	// decided by the first ceil(bits/3) − (16−Depth) key triples.
	depth := m.cfg.Octree.Depth
	splitDepth := (m.bits+2)/3 - (16 - depth)
	if splitDepth < 0 {
		splitDepth = 0
	}

	var err error
	src.Walk(func(l voxel.Leaf) bool {
		if l.Depth >= splitDepth {
			err = m.loadLeaf(l)
			return err == nil
		}
		side := 1 << (depth - l.Depth) // leaf cube edge, in voxels
		sub := 1 << (depth - splitDepth)
		for dx := 0; dx < side; dx += sub {
			for dy := 0; dy < side; dy += sub {
				for dz := 0; dz < side; dz += sub {
					k := voxel.Key{
						X: l.Key.X + uint16(dx),
						Y: l.Key.Y + uint16(dy),
						Z: l.Key.Z + uint16(dz),
					}
					if err = m.loadLeaf(voxel.Leaf{Key: k, Depth: splitDepth, LogOdds: l.LogOdds}); err != nil {
						return false
					}
				}
			}
		}
		return true
	})
	return err
}

func (m *Map) loadLeaf(l voxel.Leaf) error {
	sh := m.shardFor(l.Key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.pipe.LoadLeaf(l)
}

// Timings aggregates the per-shard stage decompositions. RayTracing,
// Critical and Batches accrue at the router (tracing happens outside
// shard locks); the remaining stages sum over shards, so with concurrent
// producers the stage times represent total work, not wall clock.
func (m *Map) Timings() core.Timings {
	var t core.Timings
	for _, sh := range m.shards {
		sh.mu.RLock()
		t = t.Add(sh.pipe.Timings())
		sh.mu.RUnlock()
	}
	t.Batches = m.batches.Load()
	t.RayTracing = time.Duration(m.rayNS.Load())
	t.Critical = time.Duration(m.critNS.Load())
	return t
}

// WorkCounters sums the per-shard work counts; Batches accrues at the
// router, like in Timings. With a single driver the snapshot is exact
// and its cycle-to-cycle deltas deterministic, which is what lets a
// virtual-clock mission (internal/clock) run against a sharded map.
func (m *Map) WorkCounters() core.Counters {
	var c core.Counters
	for _, sh := range m.shards {
		sh.mu.RLock()
		sc := sh.pipe.WorkCounters()
		sh.mu.RUnlock()
		c.VoxelsTraced += sc.VoxelsTraced
		c.VoxelsToOctree += sc.VoxelsToOctree
	}
	c.Batches = m.batches.Load()
	return c
}

// CacheStats merges the per-shard cache counters.
func (m *Map) CacheStats() cache.Stats {
	var s cache.Stats
	for _, sh := range m.shards {
		sh.mu.RLock()
		s = s.Add(sh.pipe.CacheStats())
		sh.mu.RUnlock()
	}
	return s
}

// Compact rebuilds every shard's octree arenas into dense Morton/DFS-
// ordered prefixes, one shard at a time under that shard's write lock, so
// queries on other shards keep flowing throughout. Observable map state
// is unchanged. Returns ErrClosed after Close.
func (m *Map) Compact() error {
	m.closeMu.RLock()
	defer m.closeMu.RUnlock()
	if m.closed {
		return ErrClosed
	}
	for _, sh := range m.shards {
		sh.mu.Lock()
		err := sh.pipe.Compact()
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// CompactionStats sums the per-shard compaction activity (automatic and
// explicit runs alike).
func (m *Map) CompactionStats() core.CompactionStats {
	var s core.CompactionStats
	for _, sh := range m.shards {
		sh.mu.RLock()
		s = s.Add(sh.pipe.CompactionStats())
		sh.mu.RUnlock()
	}
	return s
}

// ArenaStats sums the per-shard arena snapshots; each pipeline quiesces
// its applier before reading, so the counters are exact per shard.
func (m *Map) ArenaStats() core.ArenaStats {
	var s core.ArenaStats
	for _, sh := range m.shards {
		sh.mu.RLock()
		s = s.Add(sh.pipe.ArenaStats())
		sh.mu.RUnlock()
	}
	return s
}

// Backend reports which voxel store backs the per-shard pipelines.
func (m *Map) Backend() core.BackendKind { return m.cfg.Backend }

// ShardStat describes one shard's live state.
type ShardStat struct {
	// Shard is the shard index (its Morton prefix).
	Shard int
	// Backend identifies the voxel store behind the shard's pipeline.
	Backend core.BackendKind
	// Arena is the shard store's arena snapshot: live units (octree
	// nodes or resident grid bricks), recycled free slots, total
	// capacity, and estimated heap bytes.
	Arena core.ArenaStats
	// QueueDepth is the number of cells parked in the shard's cache
	// awaiting eviction or the Close flush — the shard's pending-write
	// backlog.
	QueueDepth int
	// Cache holds the shard's cache behaviour counters.
	Cache cache.Stats
	// Compaction holds the shard's arena-compaction counters.
	Compaction core.CompactionStats
	// Window holds the shard's paging counters (zero when the map is
	// unwindowed).
	Window core.WindowStats
	// Durable holds the shard's WAL and snapshot counters (zero when the
	// map is not durable).
	Durable core.DurableStats
}

// ShardStats snapshots every shard. Shards are visited one at a time
// (quiescing each shard's applier before reading its tree), so the slice
// is exact per-shard but time-smeared across shards while producers are
// active.
func (m *Map) ShardStats() []ShardStat {
	out := make([]ShardStat, len(m.shards))
	for i, sh := range m.shards {
		// The read lock keeps mutators out, so no new batches can be
		// handed off; each pipeline quiesces its applier before reading.
		sh.mu.RLock()
		out[i] = ShardStat{
			Shard:      i,
			Backend:    sh.pipe.Backend(),
			Arena:      sh.pipe.ArenaStats(),
			QueueDepth: sh.pipe.CacheLen(),
			Cache:      sh.pipe.CacheStats(),
			Compaction: sh.pipe.CompactionStats(),
		}
		if sh.win != nil {
			out[i].Window = sh.win.WindowStats()
		}
		if sh.dur != nil {
			out[i].Durable = sh.dur.DurableStats()
		}
		sh.mu.RUnlock()
	}
	return out
}

// Snapshot builds one canonical snapshot holding every shard's flushed
// state, for serialization and whole-map consumers. Shards own disjoint
// unions of subtrees, so the merge is a lossless leaf-by-leaf replay
// that converges to the same canonical structure regardless of shard
// count or backend. Each shard's walk folds in its cache-resident
// cells, so the snapshot answers like the live map at any point in the
// stream, not just after Close.
func (m *Map) Snapshot() *core.Snapshot {
	dst := core.NewSnapshot(m.cfg.Octree)
	for _, sh := range m.shards {
		sh.mu.RLock()
		sh.pipe.WalkLeaves(func(l voxel.Leaf) bool {
			dst.Add(l)
			return true
		})
		sh.mu.RUnlock()
	}
	return dst
}

// WriteTo serializes the merged map in the .bt format. Bytes are
// identical across shard counts and backends for content-equal maps —
// and across window policies: each shard's walk folds its spilled tiles
// back in. A shard whose spill file failed to read surfaces its sticky
// pager error here instead of serializing a partial map.
func (m *Map) WriteTo(w io.Writer) (int64, error) {
	snap := m.Snapshot()
	if err := m.WindowErr(); err != nil {
		return 0, err
	}
	return snap.WriteTo(w)
}
