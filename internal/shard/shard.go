// Package shard implements the sharded concurrent map service: space is
// partitioned across N independent OctoCache pipelines keyed by the top
// bits of the voxel Morton code, so many producer goroutines can ingest
// point clouds concurrently and a query only contends on the single
// shard that owns the queried voxel — instead of every caller serializing
// behind one pipeline and one global octree mutex.
//
// Why Morton-prefix sharding: the high bits of a Morton code address the
// coarsest octree subdivisions, so each shard owns a union of whole
// subtrees. The partition is therefore locality-preserving (a shard's
// eviction sweep still emits near-Morton runs into its own octree) and
// exact (every voxel has exactly one owner, so the per-voxel update
// stream stays ordered under the shard's lock and answers remain
// bit-identical to the serial pipeline — see the consistency tests).
//
// Ingest path per producer: the scan is ray-traced once outside any
// lock, the traced cells are partitioned by shard index, and each
// shard's slice is applied under that shard's mutex through the
// pipeline's ApplyTraced entry point. Distinct producers mostly touch
// distinct shards (scans are spatially compact), so ingest scales with
// the shard count until producers collide on hot regions.
package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"octocache/internal/cache"
	"octocache/internal/core"
	"octocache/internal/geom"
	"octocache/internal/morton"
	"octocache/internal/octree"
	"octocache/internal/raytrace"
)

// ErrClosed is returned by Insert once the map has been closed (or
// finalized): the map remains queryable forever, but accepts no further
// observations.
var ErrClosed = errors.New("octocache: map is closed")

// MaxShards bounds the shard count.
const MaxShards = 1 << morton.ShardMaxBits

// MinShardBuckets floors the per-shard cache width when the configured
// bucket budget is divided across shards.
const MinShardBuckets = 64

// Config configures a sharded map.
type Config struct {
	// Core configures the per-shard pipelines (resolution, sensor model,
	// cache shape, RT tracing, arena allocation). The cache bucket budget
	// Core.CacheBuckets is divided evenly across shards (floored at
	// MinShardBuckets), so total cache memory is shard-count independent.
	Core core.Config
	// Shards is the number of spatial partitions, rounded up to a power
	// of two. Values below 1 mean 1; values above MaxShards are an error.
	Shards int
}

// shardState is one spatial partition: a single-threaded serial OctoCache
// pipeline guarded by its own mutex.
type shardState struct {
	mu   sync.Mutex
	pipe core.BatchMapper
}

// Map is a sharded occupancy map. All exported methods are safe for
// concurrent use by any number of goroutines; consistency is per-voxel
// sequential (each voxel's update stream is serialized by its owning
// shard's mutex). Cross-shard snapshots (Timings, ShardStats, CastRay)
// are composed shard-by-shard and so reflect a slightly time-smeared view
// while producers are active — exact once quiescent.
type Map struct {
	cfg  core.Config
	bits int

	shards []*shardState

	// tracers and routes recycle the per-producer scratch (a ray tracer
	// and one pending-cells slice per shard) so concurrent Insert calls
	// don't allocate per scan.
	tracers sync.Pool
	routes  sync.Pool

	// closeMu lets Insert run shared while Close runs exclusive, so the
	// final flush never overlaps an in-flight insertion.
	closeMu sync.RWMutex
	closed  bool

	batches atomic.Int64
	rayNS   atomic.Int64
	critNS  atomic.Int64
}

// New creates a sharded map. The shard count is rounded up to a power of
// two so the shard index is a Morton-prefix extraction.
func New(cfg Config) (*Map, error) {
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	if n > MaxShards {
		return nil, fmt.Errorf("shard: Shards must be <= %d, got %d", MaxShards, cfg.Shards)
	}
	bits := 0
	for 1<<bits < n {
		bits++
	}
	n = 1 << bits

	shardCfg := cfg.Core
	if per := shardCfg.CacheBuckets / n; per >= MinShardBuckets {
		shardCfg.CacheBuckets = per
	} else if shardCfg.CacheBuckets > 0 {
		shardCfg.CacheBuckets = MinShardBuckets
	}

	m := &Map{cfg: shardCfg, bits: bits, shards: make([]*shardState, n)}
	for i := range m.shards {
		pipe, err := core.NewShardPipeline(shardCfg)
		if err != nil {
			return nil, err
		}
		m.shards[i] = &shardState{pipe: pipe}
	}
	tracerCfg := raytrace.Config{
		Resolution: shardCfg.Octree.Resolution,
		Depth:      shardCfg.Octree.Depth,
		MaxRange:   shardCfg.MaxRange,
	}
	m.tracers.New = func() any { return raytrace.NewTracer(tracerCfg) }
	m.routes.New = func() any {
		r := make([][]raytrace.Voxel, n)
		return &r
	}
	return m, nil
}

// NumShards returns the shard count (a power of two).
func (m *Map) NumShards() int { return len(m.shards) }

// Name identifies the service for reports.
func (m *Map) Name() string {
	return fmt.Sprintf("octocache-sharded-%d", len(m.shards))
}

// Resolution returns the voxel edge length in meters.
func (m *Map) Resolution() float64 { return m.cfg.Octree.Resolution }

func (m *Map) shardFor(k octree.Key) *shardState {
	return m.shards[morton.ShardIndex(k.Morton(), m.bits)]
}

// Insert integrates one sensor scan. It is safe to call from many
// goroutines concurrently: the scan is traced once with a pooled tracer,
// the traced cells are routed by Morton prefix, and each shard's slice is
// applied under that shard's lock. Returns ErrClosed after Close.
func (m *Map) Insert(origin geom.Vec3, points []geom.Vec3) error {
	m.closeMu.RLock()
	defer m.closeMu.RUnlock()
	if m.closed {
		return ErrClosed
	}
	start := time.Now()

	tracer := m.tracers.Get().(*raytrace.Tracer)
	t0 := time.Now()
	var batch []raytrace.Voxel
	if m.cfg.RT {
		batch = tracer.TraceRT(origin, points)
	} else {
		batch = tracer.Trace(origin, points)
	}
	m.rayNS.Add(int64(time.Since(t0)))

	rp := m.routes.Get().(*[][]raytrace.Voxel)
	route := *rp
	for _, v := range batch {
		s := morton.ShardIndex(v.Key.Morton(), m.bits)
		route[s] = append(route[s], v)
	}
	m.tracers.Put(tracer)

	for i, cells := range route {
		if len(cells) == 0 {
			continue
		}
		sh := m.shards[i]
		sh.mu.Lock()
		sh.pipe.ApplyTraced(cells)
		sh.mu.Unlock()
		route[i] = cells[:0]
	}
	m.routes.Put(rp)

	m.batches.Add(1)
	m.critNS.Add(int64(time.Since(start)))
	return nil
}

// InsertPointCloud is Insert with the seed API's panic-on-misuse
// behaviour, so a sharded map slots in wherever a core pipeline is
// driven.
//
// Deprecated: use Insert, which reports ErrClosed instead of panicking.
func (m *Map) InsertPointCloud(origin geom.Vec3, points []geom.Vec3) {
	if err := m.Insert(origin, points); err != nil {
		panic(err)
	}
}

// OccupancyKey returns the accumulated log-odds of the voxel at k,
// resolved by its owning shard (cache first, shard octree on miss).
func (m *Map) OccupancyKey(k octree.Key) (logOdds float32, known bool) {
	sh := m.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.pipe.OccupancyKey(k)
}

// Occupancy is the coordinate-space variant of OccupancyKey.
func (m *Map) Occupancy(p geom.Vec3) (logOdds float32, known bool) {
	k, ok := octree.CoordToKey(p, m.cfg.Octree.Resolution, m.cfg.Octree.Depth)
	if !ok {
		return 0, false
	}
	return m.OccupancyKey(k)
}

// OccupiedKey reports whether the voxel at k is known-occupied.
func (m *Map) OccupiedKey(k octree.Key) bool {
	l, known := m.OccupancyKey(k)
	return known && l >= m.cfg.Octree.OccupancyThreshold
}

// Occupied reports whether the voxel containing p is known-occupied.
func (m *Map) Occupied(p geom.Vec3) bool {
	l, known := m.Occupancy(p)
	return known && l >= m.cfg.Octree.OccupancyThreshold
}

// CastRay walks from origin along dir until it enters a known-occupied
// voxel or exceeds maxRange. Each step queries the voxel's owning shard,
// so the walk crosses shard boundaries transparently; voxels are sampled
// one at a time, so a ray racing concurrent producers sees each voxel's
// freshest state rather than one atomic snapshot of all shards.
func (m *Map) CastRay(origin, dir geom.Vec3, maxRange float64, ignoreUnknown bool) (hit geom.Vec3, ok bool) {
	return core.CastRayKeys(m.cfg.Octree, m.OccupancyKey, origin, dir, maxRange, ignoreUnknown)
}

// Close flushes every shard's cache into its octree and rejects further
// insertions with ErrClosed. The map remains queryable. Close is
// idempotent and safe to call concurrently with Insert: it waits for
// in-flight insertions to drain before flushing.
func (m *Map) Close() error {
	m.closeMu.Lock()
	defer m.closeMu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	for _, sh := range m.shards {
		sh.mu.Lock()
		sh.pipe.Finalize()
		sh.mu.Unlock()
	}
	return nil
}

// Finalize is Close for call sites written against the core.Mapper
// lifecycle; Close never fails, so the error is discarded.
func (m *Map) Finalize() { _ = m.Close() }

// Timings aggregates the per-shard stage decompositions. RayTracing,
// Critical and Batches accrue at the router (tracing happens outside
// shard locks); the remaining stages sum over shards, so with concurrent
// producers the stage times represent total work, not wall clock.
func (m *Map) Timings() core.Timings {
	var t core.Timings
	for _, sh := range m.shards {
		sh.mu.Lock()
		t = t.Add(sh.pipe.Timings())
		sh.mu.Unlock()
	}
	t.Batches = m.batches.Load()
	t.RayTracing = time.Duration(m.rayNS.Load())
	t.Critical = time.Duration(m.critNS.Load())
	return t
}

// CacheStats merges the per-shard cache counters.
func (m *Map) CacheStats() cache.Stats {
	var s cache.Stats
	for _, sh := range m.shards {
		sh.mu.Lock()
		s = s.Add(sh.pipe.CacheStats())
		sh.mu.Unlock()
	}
	return s
}

// ShardStat describes one shard's live state.
type ShardStat struct {
	// Shard is the shard index (its Morton prefix).
	Shard int
	// TreeNodes is the shard octree's node count.
	TreeNodes int
	// TreeBytes estimates the shard octree's heap footprint.
	TreeBytes int64
	// QueueDepth is the number of cells parked in the shard's cache
	// awaiting eviction or the Close flush — the shard's pending-write
	// backlog.
	QueueDepth int
	// Cache holds the shard's cache behaviour counters.
	Cache cache.Stats
}

// ShardStats snapshots every shard. Shards are locked one at a time, so
// the slice is exact per-shard but time-smeared across shards while
// producers are active.
func (m *Map) ShardStats() []ShardStat {
	out := make([]ShardStat, len(m.shards))
	for i, sh := range m.shards {
		sh.mu.Lock()
		tree := sh.pipe.Tree()
		out[i] = ShardStat{
			Shard:      i,
			TreeNodes:  tree.NumNodes(),
			TreeBytes:  tree.MemoryBytes(),
			QueueDepth: sh.pipe.CacheLen(),
			Cache:      sh.pipe.CacheStats(),
		}
		sh.mu.Unlock()
	}
	return out
}

// MergedTree builds a single octree holding every shard's flushed state,
// for serialization and whole-map consumers. Shards own disjoint unions
// of subtrees, so the merge is a lossless leaf-by-leaf replay. Call after
// Close for a complete map — before that, cells still parked in shard
// caches are not yet in any octree and are absent from the merge.
func (m *Map) MergedTree() *octree.Tree {
	dst := octree.New(m.cfg.Octree)
	for _, sh := range m.shards {
		sh.mu.Lock()
		sh.pipe.Tree().Walk(func(l octree.Leaf) bool {
			dst.SetLeafAt(l.Key, l.Depth, l.LogOdds)
			return true
		})
		sh.mu.Unlock()
	}
	return dst
}
