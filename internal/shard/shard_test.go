package shard

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"octocache/internal/core"
	"octocache/internal/geom"
	"octocache/internal/morton"
	"octocache/internal/voxel"
)

func testConfig() core.Config {
	cfg := core.DefaultConfig(0.1)
	cfg.CacheBuckets = 1 << 10
	return cfg
}

// scanArc generates points on a partial cylindrical wall around center.
func scanArc(center geom.Vec3, radius float64, n int, phase float64) []geom.Vec3 {
	pts := make([]geom.Vec3, 0, n)
	for i := 0; i < n; i++ {
		ang := phase + float64(i)/float64(n)*2*math.Pi
		pts = append(pts, center.Add(geom.V(radius*math.Cos(ang), radius*math.Sin(ang), math.Sin(ang*3))))
	}
	return pts
}

// TestShardedMatchesSerial is the headline consistency property: a
// sharded map with 1, 2, and 8 shards answers occupancy queries
// bit-identically to the single-threaded serial pipeline over an
// interleaved insert/query stream, at every point in the stream.
func TestShardedMatchesSerial(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		ref := core.MustNew(core.KindSerial, testConfig())
		sm, err := New(Config{Core: testConfig(), Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got := sm.NumShards(); got != shards {
			t.Fatalf("NumShards = %d, want %d", got, shards)
		}

		rng := rand.New(rand.NewSource(int64(42 + shards)))
		// Scans straddle the map origin so the Morton-prefix partition
		// actually splits them across shards.
		origins := []geom.Vec3{
			geom.V(0, 0, 0.5), geom.V(-3, 2, -0.5), geom.V(2, -3, 1),
		}
		var probes []geom.Vec3
		for batch := 0; batch < 8; batch++ {
			origin := origins[batch%len(origins)]
			pts := scanArc(origin, 1.5+2*rng.Float64(), 120, rng.Float64())
			ref.Insert(origin, pts)
			if err := sm.Insert(origin, pts); err != nil {
				t.Fatalf("shards=%d: Insert: %v", shards, err)
			}
			probes = append(probes, pts[:20]...)
			probes = append(probes, origin)

			// Interleaved queries: every probe must agree mid-stream.
			for _, p := range probes {
				lw, kw := ref.Occupancy(p)
				lg, kg := sm.Occupancy(p)
				if lw != lg || kw != kg {
					t.Fatalf("shards=%d batch=%d: disagree at %v: (%v,%v) vs (%v,%v)",
						shards, batch, p, lg, kg, lw, kw)
				}
			}
			// Key-space and ray queries agree too.
			k, ok := voxel.CoordToKey(probes[0], 0.1, 16)
			if !ok {
				t.Fatal("probe outside map")
			}
			if sm.OccupiedKey(k) != ref.OccupiedKey(k) {
				t.Fatalf("shards=%d: OccupiedKey disagrees at %v", shards, k)
			}
			hitW, okW := ref.CastRay(origin, geom.V(1, 0.3, 0), 10, true)
			hitG, okG := sm.CastRay(origin, geom.V(1, 0.3, 0), 10, true)
			if okW != okG || hitW != hitG {
				t.Fatalf("shards=%d: CastRay disagrees: (%v,%v) vs (%v,%v)",
					shards, hitG, okG, hitW, okW)
			}
		}

		// After finalize/close the maps must still agree...
		ref.Close()
		if err := sm.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		for _, p := range probes {
			lw, kw := ref.Occupancy(p)
			lg, kg := sm.Occupancy(p)
			if lw != lg || kw != kg {
				t.Fatalf("shards=%d post-close: disagree at %v", shards, p)
			}
		}
		// ...and the merged octree must be structurally identical to the
		// serial pipeline's: same canonical pruned form, same bytes.
		merged := sm.Snapshot()
		if merged.NumNodes() != ref.Snapshot().NumNodes() {
			t.Errorf("shards=%d: merged tree %d nodes, serial %d",
				shards, merged.NumNodes(), ref.Snapshot().NumNodes())
		}
		var a, b bytes.Buffer
		if _, err := merged.WriteTo(&a); err != nil {
			t.Fatalf("merged WriteTo: %v", err)
		}
		if _, err := ref.WriteTo(&b); err != nil {
			t.Fatalf("serial WriteTo: %v", err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("shards=%d: merged serialization differs from serial pipeline's", shards)
		}
	}
}

// TestPipelineCompositionsConsistent asserts the full composition
// matrix answers bit-identically on one interleaved scan stream: the
// serial and parallel single-driver pipelines, and sharded maps running
// the serial and async pipelines per shard at 1, 2, and 8 shards — all
// compared against each other after every batch, and all producing the
// same serialized octree at the end.
func TestPipelineCompositionsConsistent(t *testing.T) {
	type variant struct {
		name   string
		insert func(geom.Vec3, []geom.Vec3) error
		occ    func(geom.Vec3) (float32, bool)
		ray    func(geom.Vec3, geom.Vec3) (geom.Vec3, bool)
		close  func() error
		tree   func() *core.Snapshot
	}
	var variants []variant

	ref := core.MustNew(core.KindSerial, testConfig())
	variants = append(variants, variant{
		name:   "serial",
		insert: ref.Insert,
		occ:    ref.Occupancy,
		ray: func(o, d geom.Vec3) (geom.Vec3, bool) {
			return ref.CastRay(o, d, 10, true)
		},
		close: ref.Close,
		tree:  ref.Snapshot,
	})
	par := core.MustNew(core.KindParallel, testConfig())
	variants = append(variants, variant{
		name:   "parallel",
		insert: par.Insert,
		occ:    par.Occupancy,
		ray: func(o, d geom.Vec3) (geom.Vec3, bool) {
			return par.CastRay(o, d, 10, true)
		},
		close: par.Close,
		tree:  par.Snapshot,
	})
	for _, shards := range []int{1, 2, 8} {
		for _, pl := range []Pipeline{PipelineSerial, PipelineAsync} {
			sm, err := New(Config{Core: testConfig(), Shards: shards, Pipeline: pl})
			if err != nil {
				t.Fatal(err)
			}
			variants = append(variants, variant{
				name:   sm.Name(),
				insert: sm.Insert,
				occ:    sm.Occupancy,
				ray: func(o, d geom.Vec3) (geom.Vec3, bool) {
					return sm.CastRay(o, d, 10, true)
				},
				close: sm.Close,
				tree:  sm.Snapshot,
			})
		}
	}

	rng := rand.New(rand.NewSource(7))
	origins := []geom.Vec3{
		geom.V(0, 0, 0.5), geom.V(-3, 2, -0.5), geom.V(2, -3, 1),
	}
	var probes []geom.Vec3
	for batch := 0; batch < 6; batch++ {
		origin := origins[batch%len(origins)]
		pts := scanArc(origin, 1.5+2*rng.Float64(), 120, rng.Float64())
		for _, v := range variants {
			if err := v.insert(origin, pts); err != nil {
				t.Fatalf("%s: Insert: %v", v.name, err)
			}
		}
		probes = append(probes, pts[:15]...)
		probes = append(probes, origin)

		for _, p := range probes {
			lw, kw := variants[0].occ(p)
			for _, v := range variants[1:] {
				if lg, kg := v.occ(p); lg != lw || kg != kw {
					t.Fatalf("batch %d: %s disagrees with %s at %v: (%v,%v) vs (%v,%v)",
						batch, v.name, variants[0].name, p, lg, kg, lw, kw)
				}
			}
		}
		dir := geom.V(1, 0.3, 0)
		hitW, okW := variants[0].ray(origin, dir)
		for _, v := range variants[1:] {
			if hitG, okG := v.ray(origin, dir); hitG != hitW || okG != okW {
				t.Fatalf("batch %d: %s CastRay disagrees with %s", batch, v.name, variants[0].name)
			}
		}
	}

	var want bytes.Buffer
	variants[0].close()
	if _, err := variants[0].tree().WriteTo(&want); err != nil {
		t.Fatal(err)
	}
	for _, v := range variants[1:] {
		v.close()
		var got bytes.Buffer
		if _, err := v.tree().WriteTo(&got); err != nil {
			t.Fatalf("%s: WriteTo: %v", v.name, err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Errorf("%s: serialized octree differs from %s", v.name, variants[0].name)
		}
	}
}

// TestConcurrentProducers drives one sharded map from several producer
// goroutines while query goroutines hammer the read paths — the test the
// race target (go test -race ./internal/shard/...) exists for. It runs
// once per pipeline composition, so the async per-shard applier is
// exercised against concurrent producers and queriers too.
func TestConcurrentProducers(t *testing.T) {
	for _, pl := range []Pipeline{PipelineSerial, PipelineAsync} {
		name := "serial"
		if pl == PipelineAsync {
			name = "async"
		}
		t.Run(name, func(t *testing.T) { testConcurrentProducers(t, pl) })
	}
}

func testConcurrentProducers(t *testing.T, pl Pipeline) {
	const producers = 4
	const batches = 6
	sm, err := New(Config{Core: testConfig(), Shards: 8, Pipeline: pl})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Two query goroutines: point queries and ray casts, concurrent with
	// all producers.
	for q := 0; q < 2; q++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				p := geom.V(rng.Float64()*8-4, rng.Float64()*8-4, rng.Float64()*2-1)
				sm.Occupied(p)
				sm.CastRay(geom.V(0, 0, 0.5), p, 6, true)
			}
		}(int64(q))
	}

	var pwg sync.WaitGroup
	for w := 0; w < producers; w++ {
		pwg.Add(1)
		go func(w int) {
			defer pwg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			origin := geom.V(float64(w)*2-3, float64(w%2)*2-1, 0.5)
			for b := 0; b < batches; b++ {
				pts := scanArc(origin, 1+2*rng.Float64(), 100, rng.Float64())
				if err := sm.Insert(origin, pts); err != nil {
					t.Errorf("producer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	pwg.Wait()
	close(stop)
	wg.Wait()

	tm := sm.Timings()
	if tm.Batches != producers*batches {
		t.Errorf("Batches = %d, want %d", tm.Batches, producers*batches)
	}
	if tm.VoxelsTraced == 0 || tm.CacheInsert == 0 {
		t.Errorf("timings not aggregated: %+v", tm)
	}
	if cs := sm.CacheStats(); cs.Inserts != tm.VoxelsTraced {
		t.Errorf("merged cache inserts %d != voxels traced %d", cs.Inserts, tm.VoxelsTraced)
	}

	if err := sm.Close(); err != nil {
		t.Fatal(err)
	}
	// All shards flushed: no pending cells anywhere, and the observed
	// space is queryable.
	stats := sm.ShardStats()
	if len(stats) != 8 {
		t.Fatalf("ShardStats len = %d", len(stats))
	}
	totalNodes := 0
	for _, s := range stats {
		if s.QueueDepth != 0 {
			t.Errorf("shard %d: queue depth %d after Close", s.Shard, s.QueueDepth)
		}
		totalNodes += s.Arena.LiveNodes
	}
	if totalNodes == 0 {
		t.Error("no octree nodes after ingesting scans")
	}
	for w := 0; w < producers; w++ {
		origin := geom.V(float64(w)*2-3, float64(w%2)*2-1, 0.5)
		if _, known := sm.Occupancy(origin); !known {
			t.Errorf("producer %d origin still unknown after ingest", w)
		}
	}
}

// TestCloseLifecycle: Close is idempotent, Insert after Close returns
// ErrClosed (also from concurrent goroutines), and queries keep working.
func TestCloseLifecycle(t *testing.T) {
	sm, err := New(Config{Core: testConfig(), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	origin := geom.V(0, 0, 0.5)
	pts := scanArc(origin, 2, 50, 0)
	if err := sm.Insert(origin, pts); err != nil {
		t.Fatal(err)
	}
	if err := sm.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sm.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := sm.Insert(origin, pts); !errors.Is(err, ErrClosed) {
				t.Errorf("Insert after Close = %v, want ErrClosed", err)
			}
		}()
	}
	wg.Wait()
	if !sm.Occupied(pts[0]) {
		t.Error("closed map lost its content")
	}
}

// TestLoadTreeRoutesToOwningShards: loading a serialized whole-map tree
// into a sharded map places every leaf in the shard that owns its key
// space — no shard's octree claims foreign voxels — and the loaded map
// answers exactly like the original.
func TestLoadTreeRoutesToOwningShards(t *testing.T) {
	src, err := New(Config{Core: testConfig(), Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var probes []geom.Vec3
	for batch := 0; batch < 4; batch++ {
		origin := geom.V(rng.Float64()*6-3, rng.Float64()*6-3, 0.5)
		pts := scanArc(origin, 1+2*rng.Float64(), 100, rng.Float64())
		if err := src.Insert(origin, pts); err != nil {
			t.Fatal(err)
		}
		probes = append(probes, pts[:20]...)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	whole := src.Snapshot()

	for _, shards := range []int{2, 8} {
		for _, pl := range []Pipeline{PipelineSerial, PipelineAsync} {
			sm, err := New(Config{Core: testConfig(), Shards: shards, Pipeline: pl})
			if err != nil {
				t.Fatal(err)
			}
			if err := sm.LoadSnapshot(whole); err != nil {
				t.Fatalf("shards=%d: LoadSnapshot: %v", shards, err)
			}
			// Every leaf of every shard's tree must belong to that shard.
			for i, sh := range sm.shards {
				sh.pipe.WalkLeaves(func(l voxel.Leaf) bool {
					if owner := sm.shards[morton.ShardIndex(l.Key.Morton(), sm.bits)]; owner != sh {
						t.Errorf("shards=%d: shard %d holds leaf %v owned elsewhere", shards, i, l.Key)
						return false
					}
					return true
				})
			}
			// The loaded map answers like the original, keeps accepting
			// scans, and still merges back to the same serialization.
			for _, p := range probes {
				lw, kw := src.Occupancy(p)
				if lg, kg := sm.Occupancy(p); lg != lw || kg != kw {
					t.Fatalf("shards=%d: loaded map disagrees at %v", shards, p)
				}
			}
			if err := sm.Insert(geom.V(0, 0, 0.5), scanArc(geom.V(0, 0, 0.5), 2, 50, 0)); err != nil {
				t.Fatalf("shards=%d: Insert after load: %v", shards, err)
			}
			if err := sm.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}

	// A closed map refuses to load.
	if err := src.LoadSnapshot(whole); !errors.Is(err, ErrClosed) {
		t.Errorf("LoadSnapshot after Close = %v, want ErrClosed", err)
	}
}

// TestShardRounding: shard counts round up to powers of two and the
// bucket budget is divided without falling below the floor.
func TestShardRounding(t *testing.T) {
	sm, err := New(Config{Core: testConfig(), Shards: 5})
	if err != nil {
		t.Fatal(err)
	}
	if sm.NumShards() != 8 {
		t.Errorf("NumShards = %d, want 8", sm.NumShards())
	}
	if _, err := New(Config{Core: testConfig(), Shards: MaxShards * 2}); err == nil {
		t.Error("oversized shard count accepted")
	}
	sm, err = New(Config{Core: testConfig(), Shards: 0})
	if err != nil {
		t.Fatal(err)
	}
	if sm.NumShards() != 1 {
		t.Errorf("NumShards = %d, want 1", sm.NumShards())
	}
}
