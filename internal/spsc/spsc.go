// Package spsc provides a lock-free single-producer/single-consumer ring
// buffer, the Go counterpart of the moodycamel readerwriterqueue the
// paper uses as the shared buffer between OctoCache's two threads
// (§4.4): thread 1 enqueues evicted voxels, thread 2 dequeues them for
// octree insertion. Enqueue and dequeue are wait-free when the queue is
// neither full nor empty, so the inter-thread transmission overhead stays
// negligible (paper Table 3).
//
// In this codebase the queue feeds the engine's async applier
// (internal/core): each mutator hands eviction batches through one Queue
// to the applier goroutine that writes them into the octree — one such
// pair per pipeline, and with sharded async maps one per shard. Elements
// are whole batch slices, one enqueue per hand-off, so the transfer cost
// is independent of batch size and the slices recycle through the
// engine's buffer free list after application. The SPSC restriction
// holds because engine mutators are serialized by contract (single
// driver, or the shard's write lock), making the mutator side the one
// producer and the applier goroutine the one consumer.
package spsc

import (
	"runtime"
	"sync/atomic"
)

// Queue is a bounded SPSC FIFO. Exactly one goroutine may call the
// producer methods (TryEnqueue, Enqueue) and exactly one goroutine the
// consumer methods (TryDequeue, Dequeue); the two may run concurrently.
type Queue[T any] struct {
	buf  []T
	mask uint64

	// head is the next slot to read (owned by the consumer); tail is the
	// next slot to write (owned by the producer). Each side caches the
	// other's counter to avoid touching the shared cache line on every
	// operation — the standard SPSC optimization.
	_        [64]byte // keep head and tail on separate cache lines
	head     atomic.Uint64
	_        [64]byte
	tail     atomic.Uint64
	_        [64]byte
	headSeen uint64 // producer's cache of head
	_        [64]byte
	tailSeen uint64 // consumer's cache of tail
}

// New creates a queue with at least the given capacity (rounded up to a
// power of two, minimum 2).
func New[T any](capacity int) *Queue[T] {
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &Queue[T]{buf: make([]T, n), mask: uint64(n - 1)}
}

// Cap returns the queue's fixed capacity.
func (q *Queue[T]) Cap() int { return len(q.buf) }

// Len returns a best-effort snapshot of the number of queued elements;
// exact only when producer and consumer are quiescent. head is loaded
// before tail: head never passes tail, so a dequeue racing between the
// two loads can only make the estimate stale-high, never drive the
// subtraction negative (the old tail-first order returned -1 in exactly
// that race). The result is still clamped to the queue's capacity,
// since enqueues landing between the loads can overshoot it.
func (q *Queue[T]) Len() int {
	h := q.head.Load()
	t := q.tail.Load()
	n := int(t - h)
	if n < 0 {
		n = 0 // unreachable given the load order; keep Len's range contract anyway
	}
	if n > len(q.buf) {
		n = len(q.buf)
	}
	return n
}

// TryEnqueue appends v and reports success; it fails only when the queue
// is full. Producer-side only.
func (q *Queue[T]) TryEnqueue(v T) bool {
	t := q.tail.Load()
	if t-q.headSeen == uint64(len(q.buf)) {
		q.headSeen = q.head.Load()
		if t-q.headSeen == uint64(len(q.buf)) {
			return false
		}
	}
	q.buf[t&q.mask] = v
	q.tail.Store(t + 1)
	return true
}

// Enqueue appends v, spinning (with cooperative yields) while the queue
// is full. Producer-side only.
func (q *Queue[T]) Enqueue(v T) {
	for !q.TryEnqueue(v) {
		runtime.Gosched()
	}
}

// TryDequeue removes and returns the oldest element; ok is false when the
// queue is empty. Consumer-side only.
func (q *Queue[T]) TryDequeue() (v T, ok bool) {
	h := q.head.Load()
	if h == q.tailSeen {
		q.tailSeen = q.tail.Load()
		if h == q.tailSeen {
			return v, false
		}
	}
	v = q.buf[h&q.mask]
	var zero T
	q.buf[h&q.mask] = zero // release references for the GC
	q.head.Store(h + 1)
	return v, true
}

// Dequeue removes and returns the oldest element, spinning (with
// cooperative yields) while the queue is empty. Consumer-side only.
func (q *Queue[T]) Dequeue() T {
	for {
		if v, ok := q.TryDequeue(); ok {
			return v
		}
		runtime.Gosched()
	}
}

// Drain dequeues everything currently visible into dst and returns the
// extended slice. Consumer-side only.
func (q *Queue[T]) Drain(dst []T) []T {
	for {
		v, ok := q.TryDequeue()
		if !ok {
			return dst
		}
		dst = append(dst, v)
	}
}
