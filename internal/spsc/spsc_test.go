package spsc

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

func TestCapacityRounding(t *testing.T) {
	cases := []struct{ ask, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024},
	}
	for _, c := range cases {
		if got := New[int](c.ask).Cap(); got != c.want {
			t.Errorf("New(%d).Cap() = %d, want %d", c.ask, got, c.want)
		}
	}
}

func TestFIFOOrder(t *testing.T) {
	q := New[int](8)
	for i := 0; i < 8; i++ {
		if !q.TryEnqueue(i) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	if q.TryEnqueue(99) {
		t.Error("enqueue into full queue succeeded")
	}
	for i := 0; i < 8; i++ {
		v, ok := q.TryDequeue()
		if !ok || v != i {
			t.Fatalf("dequeue %d: got %d,%v", i, v, ok)
		}
	}
	if _, ok := q.TryDequeue(); ok {
		t.Error("dequeue from empty queue succeeded")
	}
}

func TestWrapAround(t *testing.T) {
	q := New[int](4)
	next := 0
	out := 0
	for round := 0; round < 100; round++ {
		n := rand.Intn(4) + 1
		for i := 0; i < n; i++ {
			if q.TryEnqueue(next) {
				next++
			}
		}
		m := rand.Intn(4) + 1
		for i := 0; i < m; i++ {
			if v, ok := q.TryDequeue(); ok {
				if v != out {
					t.Fatalf("out of order: got %d want %d", v, out)
				}
				out++
			}
		}
	}
	for {
		v, ok := q.TryDequeue()
		if !ok {
			break
		}
		if v != out {
			t.Fatalf("tail drain out of order: got %d want %d", v, out)
		}
		out++
	}
	if out != next {
		t.Fatalf("lost elements: enqueued %d, dequeued %d", next, out)
	}
}

func TestLen(t *testing.T) {
	q := New[string](8)
	if q.Len() != 0 {
		t.Error("fresh queue not empty")
	}
	q.TryEnqueue("a")
	q.TryEnqueue("b")
	if q.Len() != 2 {
		t.Errorf("Len = %d, want 2", q.Len())
	}
	q.TryDequeue()
	if q.Len() != 1 {
		t.Errorf("Len = %d, want 1", q.Len())
	}
}

// TestLenNeverNegativeUnderRace hammers Len from a third goroutine
// while a producer/consumer pair streams through a tiny queue.
// Regression test for the tail-before-head load order, where a dequeue
// landing between the two loads made tail-head underflow and Len
// report -1; the fixed load order plus clamping bounds every snapshot
// to [0, Cap]. Run with -race to also certify Len's loads are clean.
func TestLenNeverNegativeUnderRace(t *testing.T) {
	const total = 20000
	q := New[int](4)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // producer
		defer wg.Done()
		for i := 0; i < total; i++ {
			q.Enqueue(i)
		}
	}()
	go func() { // consumer
		defer wg.Done()
		for i := 0; i < total; i++ {
			q.Dequeue()
		}
	}()
	stop := make(chan struct{})
	var bad error
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := q.Len(); n < 0 || n > q.Cap() {
				bad = fmt.Errorf("Len snapshot %d outside [0, %d]", n, q.Cap())
				return
			}
			// Yield between probes: on a single-CPU box an unyielding
			// spin loop starves the producer/consumer pair into a crawl.
			runtime.Gosched()
		}
	}()
	wg.Wait()
	close(stop)
	<-done
	if bad != nil {
		t.Fatal(bad)
	}
	if q.Len() != 0 {
		t.Errorf("quiescent Len = %d, want 0", q.Len())
	}
}

func TestDrain(t *testing.T) {
	q := New[int](16)
	for i := 0; i < 10; i++ {
		q.TryEnqueue(i)
	}
	got := q.Drain(nil)
	if len(got) != 10 {
		t.Fatalf("drained %d, want 10", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("drain out of order at %d: %d", i, v)
		}
	}
	if q.Len() != 0 {
		t.Error("queue not empty after drain")
	}
}

// TestConcurrentTransfer streams a large sequence through a small queue
// with a real producer and consumer goroutine pair and verifies exact
// order and completeness — the contract the parallel pipeline relies on.
func TestConcurrentTransfer(t *testing.T) {
	const n = 1 << 20
	q := New[int](256)
	var wg sync.WaitGroup
	wg.Add(1)
	errCh := make(chan error, 1)
	go func() {
		defer wg.Done()
		for want := 0; want < n; want++ {
			v := q.Dequeue()
			if v != want {
				select {
				case errCh <- fmt.Errorf("got %d want %d", v, want):
				default:
				}
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		q.Enqueue(i)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if q.Len() != 0 {
		t.Errorf("queue holds %d leftover elements", q.Len())
	}
}

// TestConcurrentStructTransfer repeats the transfer with a struct payload
// (like the pipeline's evicted-voxel records) and checksums the fields.
func TestConcurrentStructTransfer(t *testing.T) {
	type rec struct {
		a uint32
		b float32
	}
	const n = 200000
	q := New[rec](128)
	done := make(chan [2]float64)
	go func() {
		var sa, sb float64
		for i := 0; i < n; i++ {
			r := q.Dequeue()
			sa += float64(r.a)
			sb += float64(r.b)
		}
		done <- [2]float64{sa, sb}
	}()
	var wa, wb float64
	for i := 0; i < n; i++ {
		r := rec{a: uint32(i), b: float32(i%97) * 0.5}
		wa += float64(r.a)
		wb += float64(r.b)
		q.Enqueue(r)
	}
	got := <-done
	if got[0] != wa || got[1] != wb {
		t.Fatalf("checksum mismatch: got %v want [%v %v]", got, wa, wb)
	}
}

func BenchmarkPingPong(b *testing.B) {
	q := New[uint64](1024)
	done := make(chan struct{})
	go func() {
		for i := 0; i < b.N; i++ {
			q.Dequeue()
		}
		close(done)
	}()
	for i := 0; i < b.N; i++ {
		q.Enqueue(uint64(i))
	}
	<-done
}
