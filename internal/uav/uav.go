// Package uav models the two quadrotor airframes of §5.1 and the
// velocity roofline of Krishnan et al. that links mapping-system latency
// to flight performance: a UAV may only fly as fast as it can stop
// within its sensing range after reacting, and the reaction time includes
// the full perception-planning compute latency. Faster map updates →
// shorter reaction time → higher safe velocity → shorter missions.
package uav

import "math"

// G is standard gravity in m/s².
const G = 9.80665

// Airframe describes a UAV platform.
type Airframe struct {
	Name string
	// MassKg is the takeoff mass.
	MassKg float64
	// ThrustN is the maximum total rotor thrust. The paper lists "rotor
	// pull" of 3600 and 588 for the Pelican and Spark; interpreting the
	// figures as gram-force yields thrust-to-weight ratios of 1.92 and
	// 1.68, consistent with both airframes' published capabilities.
	ThrustN float64
	// SensorFPS is the onboard sensor frame rate (50 Hz for both).
	SensorFPS float64
	// VMax is the manufacturer's top speed in m/s: the actuation bound
	// that caps the roofline regardless of compute speed.
	VMax float64
	// HoverPowerW is the rotor power draw near hover in watts, used for
	// mission energy estimates (95% of UAV energy goes to the rotors
	// during flight, per Krishnan et al. — the paper's justification for
	// mission time as an energy proxy).
	HoverPowerW float64
}

// AscTecPelican returns the paper's research quadrotor: 1872 g, 3600 gf
// rotor pull.
func AscTecPelican() Airframe {
	return Airframe{
		Name:        "asctec-pelican",
		MassKg:      1.872,
		ThrustN:     3.600 * G, // 3600 gram-force
		SensorFPS:   50,
		VMax:        16.0,
		HoverPowerW: 200,
	}
}

// DJISpark returns the paper's consumer quadrotor: 350 g, 588 gf rotor
// pull.
func DJISpark() Airframe {
	return Airframe{
		Name:        "dji-spark",
		MassKg:      0.350,
		ThrustN:     0.588 * G, // 588 gram-force
		SensorFPS:   50,
		VMax:        13.9,
		HoverPowerW: 50,
	}
}

// ThrustToWeight returns T/(mg).
func (a Airframe) ThrustToWeight() float64 {
	return a.ThrustN / (a.MassKg * G)
}

// MaxDecel returns the maximum horizontal braking deceleration in m/s²:
// while hovering consumes one g of thrust vertically, the remaining
// envelope √((T/m)² − g²) can brake horizontally.
func (a Airframe) MaxDecel() float64 {
	tm := a.ThrustN / a.MassKg
	if tm <= G {
		return 0.1 // cannot sustain hover margin; crawl
	}
	return math.Sqrt(tm*tm - G*G)
}

// SensorLatency returns the per-frame sensing delay in seconds.
func (a Airframe) SensorLatency() float64 {
	if a.SensorFPS <= 0 {
		return 0
	}
	return 1 / a.SensorFPS
}

// MaxSafeVelocity returns the highest velocity from which the UAV can
// come to a full stop within stopDist meters, given a total response
// latency tResp seconds (sensor period + compute). During the response
// latency the UAV travels at full speed; afterwards it brakes at
// MaxDecel. Solving v·t + v²/(2a) = d for v:
//
//	v = a·(−t + √(t² + 2d/a))
//
// The result is clamped to [0, VMax] — the actuation roofline. When the
// compute term of tResp shrinks (OctoCache's contribution) the bound
// rises until VMax or the braking envelope takes over, which is exactly
// the Spark-on-Openland saturation the paper reports.
func (a Airframe) MaxSafeVelocity(stopDist, tResp float64) float64 {
	if stopDist <= 0 {
		return 0
	}
	if tResp < 0 {
		tResp = 0
	}
	acc := a.MaxDecel()
	v := acc * (-tResp + math.Sqrt(tResp*tResp+2*stopDist/acc))
	if v < 0 {
		v = 0
	}
	if a.VMax > 0 && v > a.VMax {
		v = a.VMax
	}
	return v
}

// MissionTime returns the idealized completion time for a path of the
// given length flown at velocity v.
func MissionTime(pathLength, v float64) float64 {
	if v <= 0 {
		return math.Inf(1)
	}
	return pathLength / v
}

// MissionEnergy estimates the total energy in joules for a mission of
// the given duration: rotor draw at hover power for the whole flight,
// inflated by the ~5% non-rotor share (95% of UAV energy is consumed by
// the rotors, Krishnan et al.). Shorter missions mean proportionally
// less energy — the paper's link from mapping latency to battery life.
func (a Airframe) MissionEnergy(seconds float64) float64 {
	return a.HoverPowerW * seconds / 0.95
}
