package uav

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAirframeParameters(t *testing.T) {
	p := AscTecPelican()
	s := DJISpark()
	if math.Abs(p.MassKg-1.872) > 1e-9 || math.Abs(s.MassKg-0.35) > 1e-9 {
		t.Error("masses wrong")
	}
	// Thrust-to-weight per the gram-force interpretation (§5.1).
	if tw := p.ThrustToWeight(); math.Abs(tw-3600.0/1872.0) > 1e-6 {
		t.Errorf("Pelican T/W = %v", tw)
	}
	if tw := s.ThrustToWeight(); math.Abs(tw-588.0/350.0) > 1e-6 {
		t.Errorf("Spark T/W = %v", tw)
	}
	// The Pelican out-accelerates the Spark.
	if p.MaxDecel() <= s.MaxDecel() {
		t.Errorf("Pelican decel %v <= Spark %v", p.MaxDecel(), s.MaxDecel())
	}
	if p.SensorLatency() != 0.02 {
		t.Errorf("50 Hz sensor latency = %v", p.SensorLatency())
	}
}

func TestMaxDecelDegenerate(t *testing.T) {
	weak := Airframe{MassKg: 1, ThrustN: 5} // cannot hover
	if d := weak.MaxDecel(); d <= 0 || d > 1 {
		t.Errorf("sub-hover airframe decel = %v", d)
	}
	if (Airframe{}).SensorLatency() != 0 {
		t.Error("zero-FPS latency should be 0")
	}
}

func TestMaxSafeVelocityStopsInTime(t *testing.T) {
	// Property: flying at the returned velocity, travel during the
	// response window plus the braking distance must not exceed stopDist.
	a := AscTecPelican()
	f := func(d, tr float64) bool {
		d = math.Mod(math.Abs(d), 30) + 0.5    // 0.5..30.5 m
		tr = math.Mod(math.Abs(tr), 1) + 0.001 // ~0..1 s
		v := a.MaxSafeVelocity(d, tr)
		if v < 0 {
			return false
		}
		if v == a.VMax {
			return true // actuation-capped; stopping margin only grows
		}
		travel := v*tr + v*v/(2*a.MaxDecel())
		return travel <= d+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestVelocityMonotoneInLatency(t *testing.T) {
	a := AscTecPelican()
	prev := math.Inf(1)
	for _, tr := range []float64{0.01, 0.05, 0.1, 0.3, 0.6, 1.0} {
		v := a.MaxSafeVelocity(8, tr)
		if v > prev {
			t.Fatalf("velocity increased with latency at %v", tr)
		}
		prev = v
	}
}

func TestVelocityMonotoneInRange(t *testing.T) {
	a := DJISpark()
	prev := 0.0
	for _, d := range []float64{1, 2, 4, 8, 16} {
		v := a.MaxSafeVelocity(d, 0.2)
		if v < prev {
			t.Fatalf("velocity decreased with range at %v", d)
		}
		prev = v
	}
}

func TestVMaxCapCreatesActuationBound(t *testing.T) {
	// The paper's Spark-on-Openland effect: once compute is fast enough
	// the velocity saturates at VMax and further speedups buy nothing.
	s := DJISpark()
	vFast := s.MaxSafeVelocity(8, 0.02) // near-zero compute latency
	vFaster := s.MaxSafeVelocity(8, 0.01)
	if vFast != s.VMax {
		t.Skipf("velocity %v not saturated at VMax %v for this envelope", vFast, s.VMax)
	}
	if vFaster != vFast {
		t.Errorf("saturated velocity still improved: %v -> %v", vFast, vFaster)
	}
}

func TestSparkGainsLessThanPelican(t *testing.T) {
	// Reducing compute latency must help the higher-thrust Pelican at
	// least as much (relatively) as the Spark — the root cause of the
	// paper's "bottleneck shifts to rotor power" observation.
	p, s := AscTecPelican(), DJISpark()
	const d = 8.0
	slow, fast := 0.5, 0.05
	gain := func(a Airframe) float64 {
		return a.MaxSafeVelocity(d, fast) / a.MaxSafeVelocity(d, slow)
	}
	if gain(p) < gain(s)-1e-9 {
		t.Errorf("Pelican gain %.3f < Spark gain %.3f", gain(p), gain(s))
	}
}

func TestMaxSafeVelocityEdgeCases(t *testing.T) {
	a := AscTecPelican()
	if v := a.MaxSafeVelocity(0, 0.1); v != 0 {
		t.Errorf("zero stop distance velocity = %v", v)
	}
	if v := a.MaxSafeVelocity(-5, 0.1); v != 0 {
		t.Errorf("negative stop distance velocity = %v", v)
	}
	if v := a.MaxSafeVelocity(8, -1); v <= 0 {
		t.Errorf("negative latency should clamp to 0, got v=%v", v)
	}
}

func TestMissionTime(t *testing.T) {
	if MissionTime(100, 10) != 10 {
		t.Error("MissionTime wrong")
	}
	if !math.IsInf(MissionTime(100, 0), 1) {
		t.Error("zero velocity should give infinite time")
	}
}
