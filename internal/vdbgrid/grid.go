// Package vdbgrid implements a VDB-style voxel store: a shallow, wide
// hierarchy of hash-indexed dense bricks, the alternative backend behind
// core's Backend interface. Where the octree resolves a voxel through a
// 16-level root-to-leaf walk, the grid reaches it in two steps — one
// hash probe for the 8×8×8 brick, one array index within it — trading
// the octree's adaptive pruning for flat, query-friendly storage (the
// "Efficient Global Occupancy Mapping using OpenVDB" trade-off).
//
// Two representations back a brick:
//
//   - dense: 512 float32 values plus a known-voxel bitmask, the state
//     every point write lands in;
//   - uniform: a single value standing in for an entire known brick,
//     produced by coarse aggregate loads (SetLeafAt at or above brick
//     granularity) and split back to dense on the first point write.
//
// Both apply the same voxel.Params.Clamp on every write the octree
// applies, so accumulated log-odds agree bit-for-bit with the octree
// backend — the property the cross-backend consistency suite pins down.
// Aggregates coarser than a brick cost one uniform record per covered
// brick, so loading a snapshot dominated by huge pruned free-space cubes
// is memory-proportional to the covered volume; for sensor-scale maps
// (range-bounded observed space) this stays small.
//
// The concurrency contract mirrors the octree's: one mutator at a time,
// any number of concurrent Lookup calls (visit counting for reads goes
// through an atomic side counter).
package vdbgrid

import (
	"sort"
	"sync/atomic"

	"octocache/internal/voxel"
)

const (
	// BrickBits is the per-axis brick subdivision: bricks span
	// 2^BrickBits voxels per axis.
	BrickBits = 3
	// BrickSide is the brick edge length in voxels.
	BrickSide = 1 << BrickBits
	// BrickVoxels is the number of voxels in one brick.
	BrickVoxels = BrickSide * BrickSide * BrickSide

	brickWords = BrickVoxels / 64
	// brickBytes estimates one dense brick's heap footprint: values,
	// known bitmask, and ~2 words of map-entry overhead.
	brickBytes = BrickVoxels*4 + brickWords*8 + 16
	// uniformBytes estimates one uniform record's map-entry footprint.
	uniformBytes = 16
)

// brickKey addresses a brick: the voxel key right-shifted by BrickBits.
type brickKey struct {
	X, Y, Z uint16
}

// brick is one dense 8×8×8 block. Voxels are linearly indexed as
// x | y<<3 | z<<6; known bits track which voxels have been observed.
type brick struct {
	vals  [BrickVoxels]float32
	known [brickWords]uint64
}

// mortonSlots lists the 512 linear brick slots in ascending local Morton
// order, so Walk emits voxels in the same global order an octree's
// in-order traversal would.
var mortonSlots = func() [BrickVoxels]uint16 {
	var slots [BrickVoxels]uint16
	for x := 0; x < BrickSide; x++ {
		for y := 0; y < BrickSide; y++ {
			for z := 0; z < BrickSide; z++ {
				m := 0
				for b := 0; b < BrickBits; b++ {
					m |= (x >> b & 1) << (3 * b)
					m |= (y >> b & 1) << (3*b + 1)
					m |= (z >> b & 1) << (3*b + 2)
				}
				slots[m] = uint16(x | y<<BrickBits | z<<(2*BrickBits))
			}
		}
	}
	return slots
}()

// Grid is a brick-grid occupancy map holding the same log-odds content
// model as octree.Tree. The zero value is not usable; construct with New.
type Grid struct {
	params  voxel.Params
	dense   map[brickKey]*brick
	uniform map[brickKey]float32

	// visits counts brick+voxel touches by mutators; Lookup counts into
	// the atomic side counter so concurrent readers stay race-free —
	// the same split octree.Tree uses.
	visits       int64
	searchVisits atomic.Int64
}

// New creates an empty grid. It panics if params are invalid, matching
// octree.New.
func New(params voxel.Params) *Grid {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	return &Grid{
		params:  params,
		dense:   make(map[brickKey]*brick),
		uniform: make(map[brickKey]float32),
	}
}

// Params returns the grid's occupancy model.
func (g *Grid) Params() voxel.Params { return g.params }

func brickOf(k voxel.Key) brickKey {
	return brickKey{k.X >> BrickBits, k.Y >> BrickBits, k.Z >> BrickBits}
}

func slotOf(k voxel.Key) int {
	const m = BrickSide - 1
	return int(k.X&m) | int(k.Y&m)<<BrickBits | int(k.Z&m)<<(2*BrickBits)
}

// cell returns the dense brick and linear slot for k, materializing the
// brick — from its uniform record when one covers it — on first write.
func (g *Grid) cell(k voxel.Key) (*brick, int) {
	bk := brickOf(k)
	b := g.dense[bk]
	if b == nil {
		b = new(brick)
		if v, ok := g.uniform[bk]; ok {
			for i := range b.vals {
				b.vals[i] = v
			}
			for i := range b.known {
				b.known[i] = ^uint64(0)
			}
			delete(g.uniform, bk)
		}
		g.dense[bk] = b
	}
	return b, slotOf(k)
}

// UpdateCell integrates one observation for the voxel at k: the sensor
// model's hit or miss delta, accumulated and clamped exactly as the
// octree's incremental update does.
func (g *Grid) UpdateCell(k voxel.Key, occupied bool) {
	g.visits += 2 // brick probe + voxel touch: the grid's two-level walk
	delta := g.params.LogOddsMiss
	if occupied {
		delta = g.params.LogOddsHit
	}
	b, s := g.cell(k)
	w, bit := s>>6, uint64(1)<<(uint(s)&63)
	old := float32(0)
	if b.known[w]&bit != 0 {
		old = b.vals[s]
	}
	b.vals[s] = g.params.Clamp(old + delta)
	b.known[w] |= bit
}

// SetCell overwrites the voxel's accumulated log-odds, clamped — the
// eviction-path write (cache cells carry accumulated values).
func (g *Grid) SetCell(k voxel.Key, logOdds float32) {
	g.visits += 2
	b, s := g.cell(k)
	b.vals[s] = g.params.Clamp(logOdds)
	b.known[s>>6] |= 1 << (uint(s) & 63)
}

// Lookup returns the voxel's accumulated log-odds; known is false for
// never-observed voxels. Safe for concurrent callers while no mutator is
// active.
func (g *Grid) Lookup(k voxel.Key) (logOdds float32, known bool) {
	g.searchVisits.Add(2)
	bk := brickOf(k)
	if v, ok := g.uniform[bk]; ok {
		return v, true
	}
	b := g.dense[bk]
	if b == nil {
		return 0, false
	}
	s := slotOf(k)
	if b.known[s>>6]&(1<<(uint(s)&63)) == 0 {
		return 0, false
	}
	return b.vals[s], true
}

// Occupied reports whether the voxel at k is known and at or above the
// occupancy threshold.
func (g *Grid) Occupied(k voxel.Key) bool {
	l, known := g.Lookup(k)
	return known && l >= g.params.OccupancyThreshold
}

// SetLeafAt writes a (possibly aggregate) leaf: the cube of edge
// 2^(Depth-depth) voxels whose minimum-corner key is k, as emitted by a
// backend Walk — the seam snapshot loading is built on. Sub-brick cubes
// fill voxels within one brick; brick-or-coarser cubes become one
// uniform record per covered brick, replacing any dense content there.
func (g *Grid) SetLeafAt(k voxel.Key, depth int, logOdds float32) {
	d := g.params.Depth
	if depth < 0 || depth > d {
		panic("vdbgrid: SetLeafAt depth out of range")
	}
	v := g.params.Clamp(logOdds)
	side := 1 << uint(d-depth)
	if side < BrickSide {
		// The cube's alignment (multiples of its edge) keeps it inside a
		// single brick.
		b, _ := g.cell(k)
		for dz := 0; dz < side; dz++ {
			for dy := 0; dy < side; dy++ {
				for dx := 0; dx < side; dx++ {
					s := slotOf(voxel.Key{X: k.X + uint16(dx), Y: k.Y + uint16(dy), Z: k.Z + uint16(dz)})
					b.vals[s] = v
					b.known[s>>6] |= 1 << (uint(s) & 63)
				}
			}
		}
		return
	}
	nb := side >> BrickBits
	base := brickOf(k)
	for dz := 0; dz < nb; dz++ {
		for dy := 0; dy < nb; dy++ {
			for dx := 0; dx < nb; dx++ {
				bk := brickKey{base.X + uint16(dx), base.Y + uint16(dy), base.Z + uint16(dz)}
				delete(g.dense, bk)
				g.uniform[bk] = v
			}
		}
	}
}

// Walk visits every known voxel in ascending Morton order: uniform
// bricks as one aggregate leaf at brick depth, dense bricks
// voxel-by-voxel. The stream is content-equal to an octree walk of the
// same map but not structurally canonical (no cross-brick pruning);
// serialization canonicalizes it through core's Snapshot rebuild.
func (g *Grid) Walk(fn func(voxel.Leaf) bool) {
	keys := make([]brickKey, 0, len(g.dense)+len(g.uniform))
	for bk := range g.dense {
		keys = append(keys, bk)
	}
	for bk := range g.uniform {
		keys = append(keys, bk)
	}
	sort.Slice(keys, func(i, j int) bool {
		return originKey(keys[i]).Morton() < originKey(keys[j]).Morton()
	})
	for _, bk := range keys {
		if !g.emitBrick(bk, fn) {
			return
		}
	}
}

// emitBrick streams one resident brick's leaves in ascending Morton
// order: a uniform record as one aggregate leaf at brick depth, a dense
// brick voxel-by-voxel. It returns false when fn stops the walk.
func (g *Grid) emitBrick(bk brickKey, fn func(voxel.Leaf) bool) bool {
	origin := originKey(bk)
	d := g.params.Depth
	if v, ok := g.uniform[bk]; ok {
		return fn(voxel.Leaf{Key: origin, Depth: d - BrickBits, LogOdds: v})
	}
	b := g.dense[bk]
	for _, s := range mortonSlots {
		if b.known[s>>6]&(1<<(uint(s)&63)) == 0 {
			continue
		}
		const m = BrickSide - 1
		k := voxel.Key{
			X: origin.X | uint16(s)&m,
			Y: origin.Y | uint16(s)>>BrickBits&m,
			Z: origin.Z | uint16(s)>>(2*BrickBits)&m,
		}
		if !fn(voxel.Leaf{Key: k, Depth: d, LogOdds: b.vals[s]}) {
			return false
		}
	}
	return true
}

// EvictTile removes every brick of the tile at tileDepth containing
// corner, appending their canonical leaf run (exactly what Walk would
// emit for that cube, in Morton order) to dst — the grid's spill
// primitive, mirroring octree.Tree.EvictSubtree. Tiles must be at least
// one brick wide (tileDepth ≤ Depth−BrickBits); reinstalling the run via
// SetLeafAt restores identical content. Eviction is a hash-index sweep:
// cost is proportional to resident bricks, independent of tile volume.
func (g *Grid) EvictTile(corner voxel.Key, tileDepth int, dst []voxel.Leaf) []voxel.Leaf {
	d := g.params.Depth
	if tileDepth < 0 || tileDepth > d-BrickBits {
		panic("vdbgrid: EvictTile depth out of range")
	}
	corner = voxel.TileOf(corner, tileDepth, d)
	var keys []brickKey
	for bk := range g.dense {
		if voxel.TileOf(originKey(bk), tileDepth, d) == corner {
			keys = append(keys, bk)
		}
	}
	for bk := range g.uniform {
		if voxel.TileOf(originKey(bk), tileDepth, d) == corner {
			keys = append(keys, bk)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		return originKey(keys[i]).Morton() < originKey(keys[j]).Morton()
	})
	for _, bk := range keys {
		g.emitBrick(bk, func(l voxel.Leaf) bool {
			dst = append(dst, l)
			return true
		})
		delete(g.dense, bk)
		delete(g.uniform, bk)
	}
	return dst
}

func originKey(bk brickKey) voxel.Key {
	return voxel.Key{X: bk.X << BrickBits, Y: bk.Y << BrickBits, Z: bk.Z << BrickBits}
}

// NumBricks returns the resident brick count (dense plus uniform).
func (g *Grid) NumBricks() int { return len(g.dense) + len(g.uniform) }

// ArenaStats reports brick residency in arena vocabulary: every resident
// brick is live, and hash addressing never fragments, so the free count
// is always zero and compaction has nothing to reclaim — the grid
// backend deliberately lacks the compaction capability.
func (g *Grid) ArenaStats() (live, free, capacity int) {
	n := g.NumBricks()
	return n, 0, n
}

// MemoryBytes estimates the grid's heap footprint.
func (g *Grid) MemoryBytes() int64 {
	return int64(len(g.dense))*brickBytes + int64(len(g.uniform))*uniformBytes
}

// NodeVisits returns the cumulative brick/voxel touches by mutators and
// lookups since construction (or the last ResetNodeVisits) — the grid's
// analogue of the octree's node-visit counter.
func (g *Grid) NodeVisits() int64 { return g.visits + g.searchVisits.Load() }

// ResetNodeVisits zeroes the visit counter. Call it only while no
// lookups are in flight.
func (g *Grid) ResetNodeVisits() {
	g.visits = 0
	g.searchVisits.Store(0)
}
