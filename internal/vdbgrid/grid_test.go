package vdbgrid

import (
	"bytes"
	"math/rand"
	"testing"

	"octocache/internal/octree"
	"octocache/internal/voxel"
)

// The tests are differential: the octree is the semantics oracle (its
// own suite pins it to OctoMap), and the grid must agree with it
// bit-for-bit on every lookup and — after the canonical Snapshot-style
// rebuild — byte-for-byte on serialization.

func testParams(depth int) voxel.Params {
	p := voxel.DefaultParams(0.1)
	p.Depth = depth
	return p
}

func randKey(rng *rand.Rand, depth int) voxel.Key {
	lim := 1 << depth
	return voxel.Key{
		X: uint16(rng.Intn(lim)),
		Y: uint16(rng.Intn(lim)),
		Z: uint16(rng.Intn(lim)),
	}
}

// rebuild replays the grid's walk into a fresh octree — what
// core.Snapshot does when serializing a grid-backed map.
func rebuild(g *Grid) *octree.Tree {
	tr := octree.New(g.Params())
	g.Walk(func(l voxel.Leaf) bool {
		tr.SetLeafAt(l.Key, l.Depth, l.LogOdds)
		return true
	})
	return tr
}

func TestUpdateLookupMatchesOctree(t *testing.T) {
	p := testParams(6)
	g := New(p)
	tr := octree.New(p)
	rng := rand.New(rand.NewSource(1))

	var keys []voxel.Key
	for i := 0; i < 4000; i++ {
		// A small key range forces repeated updates so accumulation and
		// clamp saturation both happen.
		k := voxel.Key{X: uint16(rng.Intn(12)), Y: uint16(rng.Intn(12)), Z: uint16(rng.Intn(12))}
		occ := rng.Intn(3) > 0
		g.UpdateCell(k, occ)
		tr.Update(k, occ)
		keys = append(keys, k)
	}
	for _, k := range keys {
		lg, kg := g.Lookup(k)
		lt, kt := tr.Search(k)
		if lg != lt || kg != kt {
			t.Fatalf("Lookup(%v) = (%v,%v), octree (%v,%v)", k, lg, kg, lt, kt)
		}
		if g.Occupied(k) != tr.Occupied(k) {
			t.Fatalf("Occupied(%v) disagrees with octree", k)
		}
	}
	if l, known := g.Lookup(voxel.Key{X: 63, Y: 63, Z: 63}); known || l != 0 {
		t.Errorf("never-observed voxel = (%v,%v), want (0,false)", l, known)
	}
}

func TestSetCellMatchesOctree(t *testing.T) {
	p := testParams(5)
	g := New(p)
	tr := octree.New(p)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		k := randKey(rng, 5)
		// Values beyond the clamp range must saturate identically.
		v := float32(rng.NormFloat64() * 4)
		g.SetCell(k, v)
		tr.SetNodeValue(k, v)
		lg, kg := g.Lookup(k)
		lt, kt := tr.Search(k)
		if lg != lt || kg != kt {
			t.Fatalf("after SetCell(%v, %v): grid (%v,%v), octree (%v,%v)", k, v, lg, kg, lt, kt)
		}
	}
}

func TestSetLeafAtAggregates(t *testing.T) {
	p := testParams(6)
	g := New(p)

	// A brick-sized cube becomes one uniform record, not 512 values.
	g.SetLeafAt(voxel.Key{X: 8, Y: 0, Z: 0}, p.Depth-BrickBits, p.ClampMin)
	if n := g.NumBricks(); n != 1 {
		t.Fatalf("brick-sized leaf occupies %d bricks, want 1", n)
	}
	if mem := g.MemoryBytes(); mem >= brickBytes {
		t.Errorf("uniform brick costs %d bytes, want < %d (dense)", mem, brickBytes)
	}
	if l, known := g.Lookup(voxel.Key{X: 15, Y: 7, Z: 7}); !known || l != p.ClampMin {
		t.Errorf("voxel inside uniform brick = (%v,%v)", l, known)
	}

	// A coarser cube covers multiple bricks: one record each.
	g2 := New(p)
	g2.SetLeafAt(voxel.Key{X: 0, Y: 0, Z: 0}, p.Depth-BrickBits-1, p.ClampMax)
	if n := g2.NumBricks(); n != 8 {
		t.Fatalf("2-brick-wide leaf occupies %d bricks, want 8", n)
	}

	// A point write into a uniform brick materializes it densely and
	// keeps the surrounding values.
	g.UpdateCell(voxel.Key{X: 8, Y: 0, Z: 0}, true)
	want := p.Clamp(p.ClampMin + p.LogOddsHit)
	if l, _ := g.Lookup(voxel.Key{X: 8, Y: 0, Z: 0}); l != want {
		t.Errorf("update into uniform brick = %v, want %v", l, want)
	}
	if l, known := g.Lookup(voxel.Key{X: 9, Y: 0, Z: 0}); !known || l != p.ClampMin {
		t.Errorf("neighbor after materialize = (%v,%v), want (%v,true)", l, known, p.ClampMin)
	}

	// Sub-brick cubes fill the covered voxels only.
	g3 := New(p)
	g3.SetLeafAt(voxel.Key{X: 4, Y: 4, Z: 4}, p.Depth-2, 0.5)
	if l, known := g3.Lookup(voxel.Key{X: 7, Y: 7, Z: 7}); !known || l != 0.5 {
		t.Errorf("inside sub-brick cube = (%v,%v)", l, known)
	}
	if _, known := g3.Lookup(voxel.Key{X: 3, Y: 4, Z: 4}); known {
		t.Error("outside sub-brick cube is known")
	}

	defer func() {
		if recover() == nil {
			t.Error("SetLeafAt with out-of-range depth did not panic")
		}
	}()
	g.SetLeafAt(voxel.Key{}, p.Depth+1, 0)
}

func TestWalkAscendingMortonAndRebuildEquality(t *testing.T) {
	p := testParams(6)
	g := New(p)
	tr := octree.New(p)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		k := randKey(rng, 6)
		occ := rng.Intn(2) == 0
		g.UpdateCell(k, occ)
		tr.Update(k, occ)
	}
	// One aggregate region too, so the walk mixes leaf depths.
	g.SetLeafAt(voxel.Key{X: 56, Y: 56, Z: 56}, p.Depth-BrickBits, p.ClampMin)
	tr.SetLeafAt(voxel.Key{X: 56, Y: 56, Z: 56}, p.Depth-BrickBits, p.ClampMin)

	last := uint64(0)
	first := true
	n := 0
	g.Walk(func(l voxel.Leaf) bool {
		m := l.Key.Morton()
		if !first && m <= last {
			t.Fatalf("walk not strictly ascending: %d after %d", m, last)
		}
		first, last = false, m
		n++
		return true
	})
	if n == 0 {
		t.Fatal("walk visited nothing")
	}

	// The canonical rebuild of the grid's walk must equal the octree
	// built from the same update stream — same structure, same bytes.
	var a, b bytes.Buffer
	if _, err := rebuild(g).WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("grid rebuild serializes differently from the octree oracle")
	}

	// Early termination stops the walk.
	n = 0
	g.Walk(func(voxel.Leaf) bool { n++; return false })
	if n != 1 {
		t.Errorf("terminated walk visited %d leaves, want 1", n)
	}
}

func TestArenaAndVisitAccounting(t *testing.T) {
	p := testParams(6)
	g := New(p)
	if live, free, capacity := g.ArenaStats(); live != 0 || free != 0 || capacity != 0 {
		t.Errorf("empty grid arena = %d/%d/%d", live, free, capacity)
	}
	g.UpdateCell(voxel.Key{X: 1, Y: 2, Z: 3}, true)
	g.Lookup(voxel.Key{X: 1, Y: 2, Z: 3})
	live, free, capacity := g.ArenaStats()
	if live != 1 || free != 0 || capacity != 1 {
		t.Errorf("one-brick arena = %d/%d/%d, want 1/0/1", live, free, capacity)
	}
	if g.MemoryBytes() <= 0 {
		t.Error("MemoryBytes not positive for a resident brick")
	}
	if g.NodeVisits() != 4 {
		t.Errorf("NodeVisits = %d, want 4 (2 per touch)", g.NodeVisits())
	}
	g.ResetNodeVisits()
	if g.NodeVisits() != 0 {
		t.Error("ResetNodeVisits did not zero the counter")
	}
}

// TestEvictTileRoundTrip pins the grid's spill primitive to the octree
// oracle: evicting a tile must remove exactly its content (the rest of
// the grid answers unchanged), the run must reinstall losslessly, and
// the canonical rebuild after a full evict/reload cycle must serialize
// to the oracle's exact bytes.
func TestEvictTileRoundTrip(t *testing.T) {
	p := testParams(6)
	g := New(p)
	tr := octree.New(p)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 3000; i++ {
		k := randKey(rng, 6)
		occ := rng.Intn(2) == 0
		g.UpdateCell(k, occ)
		tr.Update(k, occ)
	}
	// Mix in aggregates so uniform records get evicted too.
	g.SetLeafAt(voxel.Key{X: 16, Y: 16, Z: 16}, p.Depth-BrickBits, p.ClampMin)
	tr.SetLeafAt(voxel.Key{X: 16, Y: 16, Z: 16}, p.Depth-BrickBits, p.ClampMin)

	const tileDepth = 2 // tile side 16 = 2 bricks
	corner := voxel.Key{X: 16, Y: 16, Z: 16}
	run := g.EvictTile(corner, tileDepth, nil)
	if len(run) == 0 {
		t.Fatal("tile was empty; pick a different seed")
	}
	last := uint64(0)
	for i, l := range run {
		if voxel.TileOf(l.Key, tileDepth, p.Depth) != corner {
			t.Fatalf("leaf %v escaped tile %v", l.Key, corner)
		}
		if m := l.Key.Morton(); i > 0 && m <= last {
			t.Fatal("evicted run not in ascending Morton order")
		} else {
			last = m
		}
	}
	lim := 1 << p.Depth
	for x := 0; x < lim; x += 3 {
		for y := 0; y < lim; y += 3 {
			for z := 0; z < lim; z += 3 {
				k := voxel.Key{X: uint16(x), Y: uint16(y), Z: uint16(z)}
				lg, kg := g.Lookup(k)
				if voxel.TileOf(k, tileDepth, p.Depth) == corner {
					if kg {
						t.Fatalf("evicted voxel %v still known", k)
					}
					continue
				}
				if lt, kt := tr.Search(k); lg != lt || kg != kt {
					t.Fatalf("untouched voxel %v changed: (%v,%v) vs (%v,%v)", k, lg, kg, lt, kt)
				}
			}
		}
	}
	for _, l := range run {
		g.SetLeafAt(l.Key, l.Depth, l.LogOdds)
	}
	var a, b bytes.Buffer
	if _, err := rebuild(g).WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("post-reload rebuild serializes differently from the oracle")
	}

	// A second evict of the same tile finds it empty: no-op, nothing
	// emitted.
	g.EvictTile(voxel.Key{X: 48, Y: 48, Z: 48}, tileDepth, nil)
	if run := g.EvictTile(voxel.Key{X: 48, Y: 48, Z: 48}, tileDepth, nil); len(run) != 0 {
		t.Fatalf("empty tile emitted %d leaves", len(run))
	}
	// Whole-map evict at tileDepth 0 drains the grid.
	run = g.EvictTile(voxel.Key{}, 0, nil)
	if g.NumBricks() != 0 || len(run) == 0 {
		t.Fatal("tileDepth-0 evict did not drain the grid")
	}

	defer func() {
		if recover() == nil {
			t.Error("EvictTile finer than a brick did not panic")
		}
	}()
	g.EvictTile(voxel.Key{}, p.Depth-BrickBits+1, nil)
}

func TestNewPanicsOnInvalidParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid params did not panic")
		}
	}()
	New(voxel.Params{})
}

// FuzzOpStream is the grid variant of the octree's op-stream fuzz: the
// same decoded op stream drives a grid and an octree side by side, and
// after every op the two must agree on every voxel in the (small) key
// cube; on serialize ops the grid's canonical rebuild must emit the
// octree's exact bytes. Any divergence in clamp math, unknown-voxel
// handling, aggregate splitting, or walk ordering surfaces here.
func FuzzOpStream(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x83, 0xc4, 0x05, 0x46, 0x87, 0xff, 0x00})
	f.Add([]byte{0xc0, 0xc1, 0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7, 0xe0, 0x01})
	f.Add(bytes.Repeat([]byte{0x40, 0xe1, 0x81}, 30))

	f.Fuzz(func(t *testing.T, ops []byte) {
		p := testParams(4)
		g := New(p)
		tr := octree.New(p)
		sweep := func(step int) {
			lim := 1 << p.Depth
			for x := 0; x < lim; x++ {
				for y := 0; y < lim; y++ {
					for z := 0; z < lim; z++ {
						k := voxel.Key{X: uint16(x), Y: uint16(y), Z: uint16(z)}
						lg, kg := g.Lookup(k)
						lt, kt := tr.Search(k)
						if lg != lt || kg != kt {
							t.Fatalf("op %d: %v grid (%v,%v) octree (%v,%v)", step, k, lg, kg, lt, kt)
						}
					}
				}
			}
		}
		for i, b := range ops {
			// Same op decoding as the octree fuzz: 2 op bits, 6 bits of
			// position/value salt.
			k := voxel.Key{X: uint16(b & 0x3), Y: uint16(b >> 2 & 0x3), Z: uint16(b >> 4 & 0x3)}
			switch b >> 6 {
			case 0:
				g.UpdateCell(k, b&1 == 0)
				tr.Update(k, b&1 == 0)
			case 1:
				for d := uint16(0); d < 8; d++ {
					sat := voxel.Key{X: k.X&^1 | d&1, Y: k.Y&^1 | d>>1&1, Z: k.Z&^1 | d>>2&1}
					g.SetCell(sat, p.ClampMax)
					tr.SetNodeValue(sat, p.ClampMax)
				}
			case 2:
				depth := int(b>>2&0x3) + 1 // 1..4
				mask := uint16(0xffff) << uint(p.Depth-depth)
				ak := voxel.Key{X: k.X & mask, Y: k.Y & mask, Z: k.Z & mask}
				v := float32(int(b&0x3f)-32) / 8
				g.SetLeafAt(ak, depth, v)
				tr.SetLeafAt(ak, depth, v)
			case 3:
				if b&4 != 0 {
					// Evict the tile containing k from both structures and
					// reinstall: the spill cycle must be invisible to the
					// per-voxel sweep and the serialize compare below.
					tileDepth := int(b >> 3 & 1) // 0..1: grid tiles are ≥ one brick
					grun := g.EvictTile(k, tileDepth, nil)
					trun := tr.EvictSubtree(k, tileDepth, nil)
					for _, l := range grun {
						g.SetLeafAt(l.Key, l.Depth, l.LogOdds)
					}
					for _, l := range trun {
						tr.SetLeafAt(l.Key, l.Depth, l.LogOdds)
					}
				}
				var a, bb bytes.Buffer
				if _, err := rebuild(g).WriteTo(&a); err != nil {
					t.Fatalf("op %d: grid rebuild WriteTo: %v", i, err)
				}
				if _, err := tr.WriteTo(&bb); err != nil {
					t.Fatalf("op %d: octree WriteTo: %v", i, err)
				}
				if !bytes.Equal(a.Bytes(), bb.Bytes()) {
					t.Fatalf("op %d: grid and octree serializations diverge", i)
				}
			}
			sweep(i)
		}
	})
}
