// Package viz renders horizontal slices of occupancy maps as ASCII art
// or PGM images — the debugging/visualization aid for the examples and
// the mapbuilder tool. A slice samples the map on a regular grid at a
// fixed height and classifies each sample as occupied, free, or unknown.
package viz

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"octocache/internal/geom"
)

// Occupancy classifications of a sampled cell.
const (
	Unknown = iota
	Free
	Occupied
)

// Slice is a sampled horizontal cross-section of a map.
type Slice struct {
	// Min is the world coordinate of cell (0, 0)'s center; Z its height.
	Min geom.Vec3
	// Cell is the sampling pitch in meters.
	Cell float64
	// Cells[y][x] holds Unknown, Free, or Occupied.
	Cells [][]uint8
}

// Querier is anything that can answer occupancy point queries; core's
// pipelines, the sharded map, and *core.Snapshot all satisfy it.
type Querier interface {
	Occupancy(p geom.Vec3) (logOdds float32, known bool)
}

// Sample builds a slice of the region [min, max] at height z with the
// given cell pitch, classifying against the occupancy threshold.
func Sample(q Querier, min, max geom.Vec3, z, cell float64, threshold float32) *Slice {
	if cell <= 0 {
		cell = 0.1
	}
	nx := int((max.X-min.X)/cell) + 1
	ny := int((max.Y-min.Y)/cell) + 1
	if nx < 1 || ny < 1 {
		return &Slice{Min: geom.V(min.X, min.Y, z), Cell: cell}
	}
	s := &Slice{
		Min:   geom.V(min.X, min.Y, z),
		Cell:  cell,
		Cells: make([][]uint8, ny),
	}
	for y := 0; y < ny; y++ {
		row := make([]uint8, nx)
		for x := 0; x < nx; x++ {
			p := geom.V(min.X+float64(x)*cell, min.Y+float64(y)*cell, z)
			l, known := q.Occupancy(p)
			switch {
			case !known:
				row[x] = Unknown
			case l >= threshold:
				row[x] = Occupied
			default:
				row[x] = Free
			}
		}
		s.Cells[y] = row
	}
	return s
}

// Counts returns the number of unknown, free, and occupied cells.
func (s *Slice) Counts() (unknown, free, occupied int) {
	for _, row := range s.Cells {
		for _, c := range row {
			switch c {
			case Occupied:
				occupied++
			case Free:
				free++
			default:
				unknown++
			}
		}
	}
	return
}

// ASCII renders the slice top-down ('#' occupied, '.' free, ' ' unknown),
// with y increasing upward.
func (s *Slice) ASCII() string {
	var sb strings.Builder
	for y := len(s.Cells) - 1; y >= 0; y-- {
		for _, c := range s.Cells[y] {
			switch c {
			case Occupied:
				sb.WriteByte('#')
			case Free:
				sb.WriteByte('.')
			default:
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// WritePGM writes the slice as a binary PGM image (occupied=0 black,
// unknown=128 gray, free=255 white), y increasing downward as is
// conventional for images.
func (s *Slice) WritePGM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	ny := len(s.Cells)
	nx := 0
	if ny > 0 {
		nx = len(s.Cells[0])
	}
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", nx, ny); err != nil {
		return err
	}
	for y := ny - 1; y >= 0; y-- {
		for _, c := range s.Cells[y] {
			var px byte
			switch c {
			case Occupied:
				px = 0
			case Free:
				px = 255
			default:
				px = 128
			}
			if err := bw.WriteByte(px); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
