package viz

import (
	"bytes"
	"strings"
	"testing"

	"octocache/internal/geom"
	"octocache/internal/octree"
)

// treeQuerier adapts the white-box octree fixture to the Querier
// surface (production callers pass pipelines or snapshots).
type treeQuerier struct{ t *octree.Tree }

func (q treeQuerier) Occupancy(p geom.Vec3) (float32, bool) { return q.t.OccupancyAt(p) }

func sliceTree(t *testing.T) *octree.Tree {
	t.Helper()
	tr := octree.New(octree.DefaultParams(0.1))
	// Occupied wall at x≈1, free cell at origin.
	for y := -5; y <= 5; y++ {
		k, ok := tr.CoordToKey(geom.V(1.05, float64(y)*0.1, 0.05))
		if !ok {
			t.Fatal("key out of range")
		}
		tr.UpdateOccupied(k)
	}
	k, _ := tr.CoordToKey(geom.V(0.05, 0.05, 0.05))
	tr.UpdateFree(k)
	return tr
}

func TestSampleClassification(t *testing.T) {
	tr := sliceTree(t)
	s := Sample(treeQuerier{tr}, geom.V(-0.5, -0.5, 0), geom.V(1.5, 0.5, 0), 0.05, 0.1, 0)
	un, fr, oc := s.Counts()
	if oc == 0 {
		t.Error("no occupied cells sampled")
	}
	if fr == 0 {
		t.Error("no free cells sampled")
	}
	if un == 0 {
		t.Error("no unknown cells sampled")
	}
	total := un + fr + oc
	if total != len(s.Cells)*len(s.Cells[0]) {
		t.Error("counts do not cover the grid")
	}
}

func TestASCIIRendering(t *testing.T) {
	tr := sliceTree(t)
	s := Sample(treeQuerier{tr}, geom.V(-0.5, -0.5, 0), geom.V(1.5, 0.5, 0), 0.05, 0.1, 0)
	art := s.ASCII()
	if !strings.Contains(art, "#") {
		t.Error("ASCII lacks occupied cells")
	}
	if !strings.Contains(art, ".") {
		t.Error("ASCII lacks free cells")
	}
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != len(s.Cells) {
		t.Errorf("ASCII has %d lines, want %d", len(lines), len(s.Cells))
	}
}

func TestWritePGM(t *testing.T) {
	tr := sliceTree(t)
	s := Sample(treeQuerier{tr}, geom.V(-0.5, -0.5, 0), geom.V(1.5, 0.5, 0), 0.05, 0.1, 0)
	var buf bytes.Buffer
	if err := s.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if !bytes.HasPrefix(data, []byte("P5\n")) {
		t.Error("missing PGM magic")
	}
	// Pixels present for all three classes.
	body := data[bytes.Index(data, []byte("255\n"))+4:]
	seen := map[byte]bool{}
	for _, b := range body {
		seen[b] = true
	}
	for _, px := range []byte{0, 128, 255} {
		if !seen[px] {
			t.Errorf("pixel value %d missing", px)
		}
	}
	if nx, ny := len(s.Cells[0]), len(s.Cells); len(body) != nx*ny {
		t.Errorf("body %d bytes, want %d", len(body), nx*ny)
	}
}

func TestSampleDegenerate(t *testing.T) {
	tr := octree.New(octree.DefaultParams(0.1))
	s := Sample(treeQuerier{tr}, geom.V(1, 1, 0), geom.V(0, 0, 0), 0, 0, 0)
	if len(s.Cells) != 1 && s.Cells != nil {
		// Inverted bounds yield a minimal grid; just don't panic.
		t.Logf("degenerate slice: %d rows", len(s.Cells))
	}
	if s.Cell <= 0 {
		t.Error("cell pitch not defaulted")
	}
}
