// Package voxel holds the backend-neutral voxel vocabulary shared by
// every map storage backend: the discretized voxel Key and its Morton
// code, the occupancy sensor model (Params), and the Leaf unit emitted
// by leaf walks. It sits below both internal/octree and internal/vdbgrid
// so the cache, the ray tracer, the sharded service, and the public API
// can address voxels without depending on any particular backing store —
// the seam the core.Backend interface is built on.
package voxel

import (
	"fmt"
	"math"

	"octocache/internal/geom"
	"octocache/internal/morton"
)

// Key addresses a voxel at the finest map resolution. Following OctoMap,
// each axis is a 16-bit discretized coordinate with the map origin at the
// center of the key range.
type Key struct {
	X, Y, Z uint16
}

// Morton returns the 48-bit Morton code of the key, the quantity
// OctoCache uses for bucket indexing, eviction ordering, and sharding.
func (k Key) Morton() uint64 {
	return morton.Encode(k.X, k.Y, k.Z)
}

// KeyFromMorton reconstructs the key encoded by Key.Morton.
func KeyFromMorton(m uint64) Key {
	x, y, z := morton.Decode(m)
	return Key{x, y, z}
}

// ChildIndex returns which of the eight octants of a cube at the given
// depth contains k, for a key space leafDepth levels deep. Bit 0 selects
// the x half, bit 1 the y half, bit 2 the z half — matching the Morton
// bit layout, so ascending Morton order is exactly an octree's in-order
// leaf traversal.
func ChildIndex(k Key, depth, leafDepth int) int {
	b := uint(leafDepth - 1 - depth)
	return int(k.X>>b&1) | int(k.Y>>b&1)<<1 | int(k.Z>>b&1)<<2
}

// CoordToKey discretizes a world coordinate to a voxel key at resolution
// res for a key space of the given depth. ok is false when the
// coordinate is outside the mapped volume.
func CoordToKey(p geom.Vec3, res float64, depth int) (Key, bool) {
	half := 1 << (depth - 1)
	kx, okx := axisKey(p.X, res, half)
	ky, oky := axisKey(p.Y, res, half)
	kz, okz := axisKey(p.Z, res, half)
	if !okx || !oky || !okz {
		return Key{}, false
	}
	return Key{kx, ky, kz}, true
}

func axisKey(c, res float64, half int) (uint16, bool) {
	v := int(math.Floor(c/res)) + half
	if v < 0 || v >= half*2 {
		return 0, false
	}
	return uint16(v), true
}

// KeyToCoord returns the center coordinate of the voxel addressed by k.
func KeyToCoord(k Key, res float64, depth int) geom.Vec3 {
	half := 1 << (depth - 1)
	return geom.Vec3{
		X: (float64(int(k.X)-half) + 0.5) * res,
		Y: (float64(int(k.Y)-half) + 0.5) * res,
		Z: (float64(int(k.Z)-half) + 0.5) * res,
	}
}

// String implements fmt.Stringer.
func (k Key) String() string { return fmt.Sprintf("key(%d,%d,%d)", k.X, k.Y, k.Z) }
