package voxel

// Leaf describes one leaf emitted by a backend's leaf walk: either a
// finest-resolution voxel or an aggregate covering a whole axis-aligned
// cube of equal-valued voxels (an octree's pruned subtree, a grid's
// uniform brick). Leaf streams are the backend-neutral exchange format:
// serialization, map loading, shard merging, and the public WalkLeaves
// accessor all speak it.
type Leaf struct {
	// Key is the minimum-corner key of the leaf's extent at the finest
	// resolution. For a finest-resolution leaf it addresses the voxel
	// itself.
	Key Key
	// Depth is the leaf's depth in the subdivision hierarchy; Depth ==
	// Params.Depth for finest-resolution voxels, smaller for aggregates
	// (the cube spans 2^(Params.Depth-Depth) voxels per axis).
	Depth int
	// LogOdds is the leaf's accumulated occupancy.
	LogOdds float32
}

// Size returns the edge length in meters of the leaf's cube under the
// given params.
func (l Leaf) Size(p Params) float64 {
	return p.Resolution * float64(int(1)<<(p.Depth-l.Depth))
}
