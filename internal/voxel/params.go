package voxel

import (
	"fmt"
	"math"
)

// Params configures the occupancy model of a voxel map. The defaults
// mirror the OctoMap reference implementation (Hornung et al. 2013).
// Every backend shares this model, which is what keeps query answers and
// serialized bytes bit-identical across backends.
type Params struct {
	// Resolution is the leaf voxel edge length in meters.
	Resolution float64
	// Depth is the number of subdivision levels; the mapped cube spans
	// Resolution * 2^Depth meters per axis. OctoMap's standard depth is
	// 16, giving the "up to 32 memory accesses" round trip of §3.2.
	Depth int
	// LogOddsHit is δ_occupied: added when a voxel is observed occupied.
	LogOddsHit float32
	// LogOddsMiss is δ_free (negative): added when observed free.
	LogOddsMiss float32
	// ClampMin / ClampMax bound accumulated log-odds (min_occ / max_occ),
	// which keeps the map responsive in dynamic environments.
	ClampMin, ClampMax float32
	// OccupancyThreshold is t: log-odds at or above it mean "occupied".
	OccupancyThreshold float32
}

// LogOdds converts a probability in (0,1) to log-odds.
func LogOdds(p float64) float32 {
	return float32(math.Log(p / (1 - p)))
}

// Probability converts log-odds back to a probability.
func Probability(l float32) float64 {
	return 1 / (1 + math.Exp(-float64(l)))
}

// DefaultParams returns OctoMap's default sensor model at the given
// resolution: P(hit)=0.7, P(miss)=0.4, clamps at P=0.12 and P=0.97,
// occupancy threshold P=0.5, depth 16.
func DefaultParams(resolution float64) Params {
	return Params{
		Resolution:         resolution,
		Depth:              16,
		LogOddsHit:         LogOdds(0.7),
		LogOddsMiss:        LogOdds(0.4),
		ClampMin:           LogOdds(0.12),
		ClampMax:           LogOdds(0.97),
		OccupancyThreshold: LogOdds(0.5),
	}
}

// Validate reports whether the parameter set is internally consistent.
func (p Params) Validate() error {
	switch {
	case p.Resolution <= 0:
		return fmt.Errorf("voxel: resolution must be positive, got %g", p.Resolution)
	case p.Depth < 1 || p.Depth > 16:
		return fmt.Errorf("voxel: depth must be in [1,16], got %d", p.Depth)
	case p.LogOddsHit <= 0:
		return fmt.Errorf("voxel: LogOddsHit must be positive, got %g", p.LogOddsHit)
	case p.LogOddsMiss >= 0:
		return fmt.Errorf("voxel: LogOddsMiss must be negative, got %g", p.LogOddsMiss)
	case p.ClampMin >= p.ClampMax:
		return fmt.Errorf("voxel: ClampMin %g must be below ClampMax %g", p.ClampMin, p.ClampMax)
	}
	return nil
}

// Clamp bounds a log-odds value to [ClampMin, ClampMax]. Backends apply
// it on every write so accumulated values agree bit-for-bit.
func (p Params) Clamp(l float32) float32 {
	if l < p.ClampMin {
		return p.ClampMin
	}
	if l > p.ClampMax {
		return p.ClampMax
	}
	return l
}

// MapSize returns the edge length in meters of the mapped cube.
func (p Params) MapSize() float64 {
	return p.Resolution * float64(int(1)<<p.Depth)
}
