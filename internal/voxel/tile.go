package voxel

// Tiles are the windowed-map eviction unit: axis-aligned cubes of
// 2^(depth-tileDepth) voxels per axis, aligned to their own size — i.e.
// the cubes of the subdivision hierarchy at tileDepth. A tile is
// addressed by its minimum-corner key, exactly like an aggregate Leaf at
// that depth, so one tile corresponds to one whole octree subtree (or
// one aligned block of grid bricks) and its Morton codes form one
// contiguous range. The windowed engine spills and reloads whole tiles.

// TileOf returns the minimum-corner key of the tile at tileDepth that
// contains k, in a key space depth levels deep. tileDepth must lie in
// [0, depth].
func TileOf(k Key, tileDepth, depth int) Key {
	shift := uint(depth - tileDepth)
	if shift >= 16 {
		return Key{}
	}
	mask := ^uint16(0) << shift
	return Key{X: k.X & mask, Y: k.Y & mask, Z: k.Z & mask}
}

// TileDist returns the Chebyshev (L∞) distance between the tiles
// containing a and b, in whole tiles: 0 for the same tile, 1 for any
// neighbour (faces, edges, corners). A window of radius R keeps every
// tile with TileDist ≤ R from the center tile resident — a cube of
// (2R+1)³ tiles.
func TileDist(a, b Key, tileDepth, depth int) int {
	shift := uint(depth - tileDepth)
	if shift >= 16 {
		return 0
	}
	d := axisDist(a.X>>shift, b.X>>shift)
	if dy := axisDist(a.Y>>shift, b.Y>>shift); dy > d {
		d = dy
	}
	if dz := axisDist(a.Z>>shift, b.Z>>shift); dz > d {
		d = dz
	}
	return d
}

func axisDist(a, b uint16) int {
	if a > b {
		return int(a - b)
	}
	return int(b - a)
}
