package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"octocache/internal/geom"
	"octocache/internal/voxel"
)

// Type is the first payload byte of every frame.
type Type uint8

// Frame types. Requests flow client→server, responses server→client;
// every request carries a client-chosen ID echoed by its response(s),
// so responses multiplex freely on one connection.
const (
	// THello opens a connection (client→server): magic + version.
	THello Type = 0x01
	// TWelcome accepts the handshake (server→client).
	TWelcome Type = 0x02
	// TErr reports a failed request: ID, machine code, human message.
	TErr Type = 0x03
	// TOK acknowledges a request with no other payload (Drop,
	// Checkpoint).
	TOK Type = 0x04

	// TCreate creates (or, with IfAbsent, attaches to) a named tenant.
	TCreate Type = 0x10
	// TAttach attaches the connection to an existing tenant.
	TAttach Type = 0x11
	// TDrop closes and forgets a tenant.
	TDrop Type = 0x12
	// TTenantInfo answers TCreate/TAttach with the tenant's effective
	// shape.
	TTenantInfo Type = 0x13

	// TInsert streams one scan batch into the attached tenant; the ID is
	// the client's insert sequence, acked by TOK (or failed by TErr)
	// once the batch has been applied.
	TInsert Type = 0x20

	// TQueryOccupied asks point-space occupied/not for a batch of world
	// coordinates; answered by TOccupiedResp.
	TQueryOccupied Type = 0x30
	// TOccupiedResp carries one bit per queried point.
	TOccupiedResp Type = 0x31
	// TQueryOccupancy asks key-space log-odds occupancy for a batch of
	// voxel keys; answered by TOccupancyResp.
	TQueryOccupancy Type = 0x32
	// TOccupancyResp carries (logOdds, known) per queried key.
	TOccupancyResp Type = 0x33
	// TCastRay casts one ray; answered by TCastRayResp.
	TCastRay Type = 0x34
	// TCastRayResp carries the hit voxel center, if any.
	TCastRayResp Type = 0x35

	// TSnapshotReq asks for a chunked snapshot stream; answered by one
	// TSnapBegin, zero or more TSnapChunk, and one TSnapEnd, all
	// carrying the request ID.
	TSnapshotReq Type = 0x40
	// TSnapBegin opens the stream with the map's occupancy model.
	TSnapBegin Type = 0x41
	// TSnapChunk carries a run of leaves in ascending Morton order.
	TSnapChunk Type = 0x42
	// TSnapEnd closes the stream with the total leaf count, so a
	// truncated download can never pass for a complete one.
	TSnapEnd Type = 0x43

	// TCheckpoint takes a consistent-cut snapshot of a durable tenant;
	// answered by TOK.
	TCheckpoint Type = 0x50
)

// Error codes carried by TErr.
const (
	// CodeInternal is a server-side failure applying the request.
	CodeInternal uint16 = 1
	// CodeBadRequest is a malformed or out-of-protocol request.
	CodeBadRequest uint16 = 2
	// CodeNoTenant means the named tenant does not exist.
	CodeNoTenant uint16 = 3
	// CodeTenantExists means TCreate hit an existing name without
	// IfAbsent.
	CodeTenantExists uint16 = 4
	// CodeNotAttached means a data request arrived before Create/Attach.
	CodeNotAttached uint16 = 5
	// CodeTenantBusy means TDrop hit a tenant other connections are
	// attached to.
	CodeTenantBusy uint16 = 6
	// CodeVersion means the handshake versions are incompatible.
	CodeVersion uint16 = 7
)

// TenantOptions is the wire shape of a tenant's map configuration — the
// subset of octocache.Options that makes sense to choose remotely.
// Directories are the server's business: Durable says "make it
// durable", and the server places the log under its own data dir.
//
// The enum fields carry the public package's canonical flag spellings
// (octocache.ParseMode/ParseBackend/ParseTraceMode/ParseSyncPolicy and
// the matching String methods), not numeric values: the handshake stays
// self-describing, and an enum renumbering can never silently change
// what a stored manifest or an old client means. Empty strings mean
// "the default".
type TenantOptions struct {
	Resolution    float64
	MaxRange      float64
	Mode          string // octocache.Mode spelling ("parallel", ...)
	Backend       string // octocache.Backend spelling ("octree", ...)
	Trace         string // octocache.TraceMode spelling ("dda", ...)
	Sync          string // octocache.SyncPolicy spelling ("none", ...)
	Shards        uint16
	CacheBuckets  uint32
	CacheTau      uint16
	Durable       bool
	SnapshotEvery uint32
}

// Params is the wire shape of the occupancy model a snapshot stream is
// built under (voxel.Params).
type Params struct {
	Resolution         float64
	Depth              uint8
	LogOddsHit         float32
	LogOddsMiss        float32
	ClampMin           float32
	ClampMax           float32
	OccupancyThreshold float32
}

// ToVoxel converts to the map-layer parameter struct.
func (p Params) ToVoxel() voxel.Params {
	return voxel.Params{
		Resolution:         p.Resolution,
		Depth:              int(p.Depth),
		LogOddsHit:         p.LogOddsHit,
		LogOddsMiss:        p.LogOddsMiss,
		ClampMin:           p.ClampMin,
		ClampMax:           p.ClampMax,
		OccupancyThreshold: p.OccupancyThreshold,
	}
}

// ParamsFromVoxel converts from the map-layer parameter struct.
func ParamsFromVoxel(p voxel.Params) Params {
	return Params{
		Resolution:         p.Resolution,
		Depth:              uint8(p.Depth),
		LogOddsHit:         p.LogOddsHit,
		LogOddsMiss:        p.LogOddsMiss,
		ClampMin:           p.ClampMin,
		ClampMax:           p.ClampMax,
		OccupancyThreshold: p.OccupancyThreshold,
	}
}

// Leaf is the wire shape of one snapshot leaf: minimum-corner key,
// depth, accumulated log-odds.
type Leaf struct {
	Key     voxel.Key
	Depth   uint8
	LogOdds float32
}

// leafSize is the encoded byte width of one Leaf.
const leafSize = 3*2 + 1 + 4

// SnapChunkLeaves sizes snapshot chunks: enough leaves per frame to
// amortize framing, small enough that a chunk stays far under MaxFrame
// and the sender never holds more than one chunk of encoded bytes.
const SnapChunkLeaves = 8192

// ---------------------------------------------------------------------
// Encoding. All encoders append to dst and return the payload starting
// with the type byte; wrap with AppendFrame to put it on a wire.

func appendU16(dst []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(dst, v) }
func appendU32(dst []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(dst, v) }
func appendU64(dst []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(dst, v) }
func appendF32(dst []byte, v float32) []byte {
	return binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
}
func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}
func appendVec(dst []byte, v geom.Vec3) []byte {
	dst = appendF64(dst, v.X)
	dst = appendF64(dst, v.Y)
	return appendF64(dst, v.Z)
}
func appendKey(dst []byte, k voxel.Key) []byte {
	dst = appendU16(dst, k.X)
	dst = appendU16(dst, k.Y)
	return appendU16(dst, k.Z)
}
func appendStr(dst []byte, s string) []byte {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	dst = appendU16(dst, uint16(len(s)))
	return append(dst, s...)
}

// AppendHello encodes the client's opening frame.
func AppendHello(dst []byte) []byte {
	dst = append(dst, byte(THello))
	dst = appendU32(dst, Magic)
	return appendU16(dst, Version)
}

// AppendWelcome encodes the server's handshake acceptance.
func AppendWelcome(dst []byte) []byte {
	dst = append(dst, byte(TWelcome))
	return appendU16(dst, Version)
}

// AppendErr encodes a failure response.
func AppendErr(dst []byte, id uint64, code uint16, msg string) []byte {
	dst = append(dst, byte(TErr))
	dst = appendU64(dst, id)
	dst = appendU16(dst, code)
	return appendStr(dst, msg)
}

// AppendOK encodes a bare acknowledgment.
func AppendOK(dst []byte, id uint64) []byte {
	dst = append(dst, byte(TOK))
	return appendU64(dst, id)
}

func appendTenantOptions(dst []byte, o TenantOptions) []byte {
	dst = appendF64(dst, o.Resolution)
	dst = appendF64(dst, o.MaxRange)
	dst = appendStr(dst, o.Mode)
	dst = appendStr(dst, o.Backend)
	dst = appendStr(dst, o.Trace)
	dst = appendStr(dst, o.Sync)
	dst = appendU16(dst, o.Shards)
	dst = appendU32(dst, o.CacheBuckets)
	dst = appendU16(dst, o.CacheTau)
	var dur uint8
	if o.Durable {
		dur = 1
	}
	dst = append(dst, dur)
	return appendU32(dst, o.SnapshotEvery)
}

// AppendCreate encodes a tenant-creation request.
func AppendCreate(dst []byte, id uint64, name string, ifAbsent bool, o TenantOptions) []byte {
	dst = append(dst, byte(TCreate))
	dst = appendU64(dst, id)
	dst = appendStr(dst, name)
	var fl uint8
	if ifAbsent {
		fl = 1
	}
	dst = append(dst, fl)
	return appendTenantOptions(dst, o)
}

// AppendAttach encodes an attach request.
func AppendAttach(dst []byte, id uint64, name string) []byte {
	dst = append(dst, byte(TAttach))
	dst = appendU64(dst, id)
	return appendStr(dst, name)
}

// AppendDrop encodes a drop request.
func AppendDrop(dst []byte, id uint64, name string) []byte {
	dst = append(dst, byte(TDrop))
	dst = appendU64(dst, id)
	return appendStr(dst, name)
}

// AppendTenantInfo encodes the response to Create/Attach: the tenant's
// effective options (shard count rounded, defaults resolved) and its
// occupancy model.
func AppendTenantInfo(dst []byte, id uint64, name string, o TenantOptions, p Params) []byte {
	dst = append(dst, byte(TTenantInfo))
	dst = appendU64(dst, id)
	dst = appendStr(dst, name)
	dst = appendTenantOptions(dst, o)
	return appendParams(dst, p)
}

// AppendInsert encodes one scan batch.
func AppendInsert(dst []byte, id uint64, origin geom.Vec3, points []geom.Vec3) []byte {
	dst = append(dst, byte(TInsert))
	dst = appendU64(dst, id)
	dst = appendVec(dst, origin)
	dst = appendU32(dst, uint32(len(points)))
	for _, p := range points {
		dst = appendVec(dst, p)
	}
	return dst
}

// AppendQueryOccupied encodes a point-space occupied batch query.
func AppendQueryOccupied(dst []byte, id uint64, points []geom.Vec3) []byte {
	dst = append(dst, byte(TQueryOccupied))
	dst = appendU64(dst, id)
	dst = appendU32(dst, uint32(len(points)))
	for _, p := range points {
		dst = appendVec(dst, p)
	}
	return dst
}

// AppendOccupiedResp encodes the bitmask answer: bit i of bits[i/8] is
// point i's occupancy.
func AppendOccupiedResp(dst []byte, id uint64, n int, bits []byte) []byte {
	dst = append(dst, byte(TOccupiedResp))
	dst = appendU64(dst, id)
	dst = appendU32(dst, uint32(n))
	return append(dst, bits...)
}

// AppendQueryOccupancy encodes a key-space occupancy batch query.
func AppendQueryOccupancy(dst []byte, id uint64, keys []voxel.Key) []byte {
	dst = append(dst, byte(TQueryOccupancy))
	dst = appendU64(dst, id)
	dst = appendU32(dst, uint32(len(keys)))
	for _, k := range keys {
		dst = appendKey(dst, k)
	}
	return dst
}

// CellState is one key's occupancy answer.
type CellState struct {
	LogOdds float32
	Known   bool
}

// AppendOccupancyResp encodes the per-key answers.
func AppendOccupancyResp(dst []byte, id uint64, cells []CellState) []byte {
	dst = append(dst, byte(TOccupancyResp))
	dst = appendU64(dst, id)
	dst = appendU32(dst, uint32(len(cells)))
	for _, c := range cells {
		dst = appendF32(dst, c.LogOdds)
		var k uint8
		if c.Known {
			k = 1
		}
		dst = append(dst, k)
	}
	return dst
}

// AppendCastRay encodes a ray-cast request.
func AppendCastRay(dst []byte, id uint64, origin, dir geom.Vec3, maxRange float64, ignoreUnknown bool) []byte {
	dst = append(dst, byte(TCastRay))
	dst = appendU64(dst, id)
	dst = appendVec(dst, origin)
	dst = appendVec(dst, dir)
	dst = appendF64(dst, maxRange)
	var ig uint8
	if ignoreUnknown {
		ig = 1
	}
	return append(dst, ig)
}

// AppendCastRayResp encodes a ray-cast answer.
func AppendCastRayResp(dst []byte, id uint64, hit geom.Vec3, ok bool) []byte {
	dst = append(dst, byte(TCastRayResp))
	dst = appendU64(dst, id)
	var okb uint8
	if ok {
		okb = 1
	}
	dst = append(dst, okb)
	return appendVec(dst, hit)
}

// AppendSnapshotReq encodes a snapshot-stream request.
func AppendSnapshotReq(dst []byte, id uint64) []byte {
	dst = append(dst, byte(TSnapshotReq))
	return appendU64(dst, id)
}

func appendParams(dst []byte, p Params) []byte {
	dst = appendF64(dst, p.Resolution)
	dst = append(dst, p.Depth)
	dst = appendF32(dst, p.LogOddsHit)
	dst = appendF32(dst, p.LogOddsMiss)
	dst = appendF32(dst, p.ClampMin)
	dst = appendF32(dst, p.ClampMax)
	return appendF32(dst, p.OccupancyThreshold)
}

// AppendSnapBegin opens a snapshot stream.
func AppendSnapBegin(dst []byte, id uint64, p Params) []byte {
	dst = append(dst, byte(TSnapBegin))
	dst = appendU64(dst, id)
	return appendParams(dst, p)
}

// AppendSnapChunk encodes one leaf run.
func AppendSnapChunk(dst []byte, id uint64, leaves []Leaf) []byte {
	dst = append(dst, byte(TSnapChunk))
	dst = appendU64(dst, id)
	dst = appendU32(dst, uint32(len(leaves)))
	for _, l := range leaves {
		dst = appendKey(dst, l.Key)
		dst = append(dst, l.Depth)
		dst = appendF32(dst, l.LogOdds)
	}
	return dst
}

// AppendSnapEnd closes a snapshot stream with the total leaf count.
func AppendSnapEnd(dst []byte, id uint64, leaves uint64) []byte {
	dst = append(dst, byte(TSnapEnd))
	dst = appendU64(dst, id)
	return appendU64(dst, leaves)
}

// AppendCheckpoint encodes a checkpoint request.
func AppendCheckpoint(dst []byte, id uint64) []byte {
	dst = append(dst, byte(TCheckpoint))
	return appendU64(dst, id)
}

// ---------------------------------------------------------------------
// Decoding. A cursor consumes the payload after the type byte; any
// overrun, short field, or trailing garbage fails with an ErrCorrupt
// wrap and never panics (the fuzz suite pins that).

type cursor struct {
	b   []byte
	off int
	bad bool
}

func (c *cursor) take(n int) []byte {
	if c.bad || n < 0 || len(c.b)-c.off < n {
		c.bad = true
		return nil
	}
	s := c.b[c.off : c.off+n]
	c.off += n
	return s
}

func (c *cursor) u8() uint8 {
	s := c.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

func (c *cursor) u16() uint16 {
	s := c.take(2)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(s)
}

func (c *cursor) u32() uint32 {
	s := c.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (c *cursor) u64() uint64 {
	s := c.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

func (c *cursor) f32() float32 { return math.Float32frombits(c.u32()) }
func (c *cursor) f64() float64 { return math.Float64frombits(c.u64()) }

func (c *cursor) vec() geom.Vec3 {
	return geom.Vec3{X: c.f64(), Y: c.f64(), Z: c.f64()}
}

func (c *cursor) key() voxel.Key {
	return voxel.Key{X: c.u16(), Y: c.u16(), Z: c.u16()}
}

func (c *cursor) str() string {
	n := int(c.u16())
	s := c.take(n)
	if s == nil {
		return ""
	}
	return string(s)
}

func (c *cursor) bool() bool { return c.u8() != 0 }

// count validates a declared element count against the bytes actually
// present, so a corrupt count can never drive a huge allocation.
func (c *cursor) count(elemSize int) (int, bool) {
	n := int(c.u32())
	if c.bad || n < 0 || len(c.b)-c.off < n*elemSize {
		c.bad = true
		return 0, false
	}
	return n, true
}

// done fails unless the payload was consumed exactly.
func (c *cursor) done(what string) error {
	if c.bad {
		return fmt.Errorf("%w: truncated %s payload", ErrCorrupt, what)
	}
	if c.off != len(c.b) {
		return fmt.Errorf("%w: %d trailing bytes after %s payload", ErrCorrupt, len(c.b)-c.off, what)
	}
	return nil
}

// PayloadType returns the frame type of a raw payload.
func PayloadType(payload []byte) (Type, error) {
	if len(payload) == 0 {
		return 0, fmt.Errorf("%w: empty payload", ErrCorrupt)
	}
	return Type(payload[0]), nil
}

func open(payload []byte, want Type) (*cursor, error) {
	t, err := PayloadType(payload)
	if err != nil {
		return nil, err
	}
	if t != want {
		return nil, fmt.Errorf("%w: frame type 0x%02x, want 0x%02x", ErrCorrupt, uint8(t), uint8(want))
	}
	return &cursor{b: payload, off: 1}, nil
}

// Hello is the decoded THello payload.
type Hello struct {
	Magic   uint32
	Version uint16
}

// DecodeHello parses a THello payload.
func DecodeHello(payload []byte) (Hello, error) {
	c, err := open(payload, THello)
	if err != nil {
		return Hello{}, err
	}
	h := Hello{Magic: c.u32(), Version: c.u16()}
	return h, c.done("hello")
}

// Welcome is the decoded TWelcome payload.
type Welcome struct {
	Version uint16
}

// DecodeWelcome parses a TWelcome payload.
func DecodeWelcome(payload []byte) (Welcome, error) {
	c, err := open(payload, TWelcome)
	if err != nil {
		return Welcome{}, err
	}
	w := Welcome{Version: c.u16()}
	return w, c.done("welcome")
}

// ErrMsg is the decoded TErr payload.
type ErrMsg struct {
	ID   uint64
	Code uint16
	Msg  string
}

// DecodeErr parses a TErr payload.
func DecodeErr(payload []byte) (ErrMsg, error) {
	c, err := open(payload, TErr)
	if err != nil {
		return ErrMsg{}, err
	}
	e := ErrMsg{ID: c.u64(), Code: c.u16(), Msg: c.str()}
	return e, c.done("err")
}

// OK is the decoded TOK payload.
type OK struct {
	ID uint64
}

// DecodeOK parses a TOK payload.
func DecodeOK(payload []byte) (OK, error) {
	c, err := open(payload, TOK)
	if err != nil {
		return OK{}, err
	}
	o := OK{ID: c.u64()}
	return o, c.done("ok")
}

func decodeTenantOptions(c *cursor) TenantOptions {
	return TenantOptions{
		Resolution:    c.f64(),
		MaxRange:      c.f64(),
		Mode:          c.str(),
		Backend:       c.str(),
		Trace:         c.str(),
		Sync:          c.str(),
		Shards:        c.u16(),
		CacheBuckets:  c.u32(),
		CacheTau:      c.u16(),
		Durable:       c.bool(),
		SnapshotEvery: c.u32(),
	}
}

// Create is the decoded TCreate payload.
type Create struct {
	ID       uint64
	Name     string
	IfAbsent bool
	Opts     TenantOptions
}

// DecodeCreate parses a TCreate payload.
func DecodeCreate(payload []byte) (Create, error) {
	c, err := open(payload, TCreate)
	if err != nil {
		return Create{}, err
	}
	m := Create{ID: c.u64(), Name: c.str(), IfAbsent: c.bool(), Opts: decodeTenantOptions(c)}
	return m, c.done("create")
}

// Attach is the decoded TAttach payload.
type Attach struct {
	ID   uint64
	Name string
}

// DecodeAttach parses a TAttach payload.
func DecodeAttach(payload []byte) (Attach, error) {
	c, err := open(payload, TAttach)
	if err != nil {
		return Attach{}, err
	}
	m := Attach{ID: c.u64(), Name: c.str()}
	return m, c.done("attach")
}

// Drop is the decoded TDrop payload.
type Drop struct {
	ID   uint64
	Name string
}

// DecodeDrop parses a TDrop payload.
func DecodeDrop(payload []byte) (Drop, error) {
	c, err := open(payload, TDrop)
	if err != nil {
		return Drop{}, err
	}
	m := Drop{ID: c.u64(), Name: c.str()}
	return m, c.done("drop")
}

// TenantInfo is the decoded TTenantInfo payload.
type TenantInfo struct {
	ID     uint64
	Name   string
	Opts   TenantOptions
	Params Params
}

func decodeParams(c *cursor) Params {
	return Params{
		Resolution:         c.f64(),
		Depth:              c.u8(),
		LogOddsHit:         c.f32(),
		LogOddsMiss:        c.f32(),
		ClampMin:           c.f32(),
		ClampMax:           c.f32(),
		OccupancyThreshold: c.f32(),
	}
}

// DecodeTenantInfo parses a TTenantInfo payload.
func DecodeTenantInfo(payload []byte) (TenantInfo, error) {
	c, err := open(payload, TTenantInfo)
	if err != nil {
		return TenantInfo{}, err
	}
	m := TenantInfo{ID: c.u64(), Name: c.str(), Opts: decodeTenantOptions(c), Params: decodeParams(c)}
	return m, c.done("tenant-info")
}

// Insert is the decoded TInsert payload. Points aliases the frame
// buffer's decoded copy and is owned by the caller.
type Insert struct {
	ID     uint64
	Origin geom.Vec3
	Points []geom.Vec3
}

// DecodeInsert parses a TInsert payload.
func DecodeInsert(payload []byte) (Insert, error) {
	c, err := open(payload, TInsert)
	if err != nil {
		return Insert{}, err
	}
	m := Insert{ID: c.u64(), Origin: c.vec()}
	n, ok := c.count(24)
	if !ok {
		return Insert{}, c.done("insert")
	}
	m.Points = make([]geom.Vec3, n)
	for i := range m.Points {
		m.Points[i] = c.vec()
	}
	return m, c.done("insert")
}

// QueryOccupied is the decoded TQueryOccupied payload.
type QueryOccupied struct {
	ID     uint64
	Points []geom.Vec3
}

// DecodeQueryOccupied parses a TQueryOccupied payload.
func DecodeQueryOccupied(payload []byte) (QueryOccupied, error) {
	c, err := open(payload, TQueryOccupied)
	if err != nil {
		return QueryOccupied{}, err
	}
	m := QueryOccupied{ID: c.u64()}
	n, ok := c.count(24)
	if !ok {
		return QueryOccupied{}, c.done("query-occupied")
	}
	m.Points = make([]geom.Vec3, n)
	for i := range m.Points {
		m.Points[i] = c.vec()
	}
	return m, c.done("query-occupied")
}

// OccupiedResp is the decoded TOccupiedResp payload.
type OccupiedResp struct {
	N    int
	Bits []byte
}

// Occupied reports bit i of the mask.
func (r OccupiedResp) Occupied(i int) bool {
	return i >= 0 && i < r.N && r.Bits[i/8]&(1<<(i%8)) != 0
}

// DecodeOccupiedResp parses a TOccupiedResp payload.
func DecodeOccupiedResp(payload []byte) (uint64, OccupiedResp, error) {
	c, err := open(payload, TOccupiedResp)
	if err != nil {
		return 0, OccupiedResp{}, err
	}
	id := c.u64()
	n := int(c.u32())
	if c.bad || n < 0 {
		return 0, OccupiedResp{}, c.done("occupied-resp")
	}
	bits := c.take((n + 7) / 8)
	m := OccupiedResp{N: n, Bits: append([]byte(nil), bits...)}
	return id, m, c.done("occupied-resp")
}

// QueryOccupancy is the decoded TQueryOccupancy payload.
type QueryOccupancy struct {
	ID   uint64
	Keys []voxel.Key
}

// DecodeQueryOccupancy parses a TQueryOccupancy payload.
func DecodeQueryOccupancy(payload []byte) (QueryOccupancy, error) {
	c, err := open(payload, TQueryOccupancy)
	if err != nil {
		return QueryOccupancy{}, err
	}
	m := QueryOccupancy{ID: c.u64()}
	n, ok := c.count(6)
	if !ok {
		return QueryOccupancy{}, c.done("query-occupancy")
	}
	m.Keys = make([]voxel.Key, n)
	for i := range m.Keys {
		m.Keys[i] = c.key()
	}
	return m, c.done("query-occupancy")
}

// DecodeOccupancyResp parses a TOccupancyResp payload.
func DecodeOccupancyResp(payload []byte) (uint64, []CellState, error) {
	c, err := open(payload, TOccupancyResp)
	if err != nil {
		return 0, nil, err
	}
	id := c.u64()
	n, ok := c.count(5)
	if !ok {
		return 0, nil, c.done("occupancy-resp")
	}
	cells := make([]CellState, n)
	for i := range cells {
		cells[i] = CellState{LogOdds: c.f32(), Known: c.bool()}
	}
	return id, cells, c.done("occupancy-resp")
}

// CastRay is the decoded TCastRay payload.
type CastRay struct {
	ID            uint64
	Origin, Dir   geom.Vec3
	MaxRange      float64
	IgnoreUnknown bool
}

// DecodeCastRay parses a TCastRay payload.
func DecodeCastRay(payload []byte) (CastRay, error) {
	c, err := open(payload, TCastRay)
	if err != nil {
		return CastRay{}, err
	}
	m := CastRay{ID: c.u64(), Origin: c.vec(), Dir: c.vec(), MaxRange: c.f64(), IgnoreUnknown: c.bool()}
	return m, c.done("cast-ray")
}

// CastRayResp is the decoded TCastRayResp payload.
type CastRayResp struct {
	Hit geom.Vec3
	OK  bool
}

// DecodeCastRayResp parses a TCastRayResp payload.
func DecodeCastRayResp(payload []byte) (uint64, CastRayResp, error) {
	c, err := open(payload, TCastRayResp)
	if err != nil {
		return 0, CastRayResp{}, err
	}
	id := c.u64()
	m := CastRayResp{OK: c.bool(), Hit: c.vec()}
	return id, m, c.done("cast-ray-resp")
}

// SnapshotReq is the decoded TSnapshotReq payload.
type SnapshotReq struct {
	ID uint64
}

// DecodeSnapshotReq parses a TSnapshotReq payload.
func DecodeSnapshotReq(payload []byte) (SnapshotReq, error) {
	c, err := open(payload, TSnapshotReq)
	if err != nil {
		return SnapshotReq{}, err
	}
	m := SnapshotReq{ID: c.u64()}
	return m, c.done("snapshot-req")
}

// DecodeSnapBegin parses a TSnapBegin payload.
func DecodeSnapBegin(payload []byte) (uint64, Params, error) {
	c, err := open(payload, TSnapBegin)
	if err != nil {
		return 0, Params{}, err
	}
	id := c.u64()
	p := decodeParams(c)
	return id, p, c.done("snap-begin")
}

// DecodeSnapChunk parses a TSnapChunk payload, appending its leaves to
// dst.
func DecodeSnapChunk(payload []byte, dst []Leaf) (uint64, []Leaf, error) {
	c, err := open(payload, TSnapChunk)
	if err != nil {
		return 0, dst, err
	}
	id := c.u64()
	n, ok := c.count(leafSize)
	if !ok {
		return 0, dst, c.done("snap-chunk")
	}
	for i := 0; i < n; i++ {
		dst = append(dst, Leaf{Key: c.key(), Depth: c.u8(), LogOdds: c.f32()})
	}
	return id, dst, c.done("snap-chunk")
}

// DecodeSnapEnd parses a TSnapEnd payload.
func DecodeSnapEnd(payload []byte) (id, leaves uint64, err error) {
	c, err := open(payload, TSnapEnd)
	if err != nil {
		return 0, 0, err
	}
	id = c.u64()
	leaves = c.u64()
	return id, leaves, c.done("snap-end")
}

// Checkpoint is the decoded TCheckpoint payload.
type Checkpoint struct {
	ID uint64
}

// DecodeCheckpoint parses a TCheckpoint payload.
func DecodeCheckpoint(payload []byte) (Checkpoint, error) {
	c, err := open(payload, TCheckpoint)
	if err != nil {
		return Checkpoint{}, err
	}
	m := Checkpoint{ID: c.u64()}
	return m, c.done("checkpoint")
}

// DecodeAny parses whichever message the payload carries, returning it
// as one of the typed structs above (responses come back as the
// response struct with the ID folded in where the decoder returns one).
// It exists for the fuzz suite and for generic logging; protocol loops
// switch on PayloadType and call the specific decoder.
func DecodeAny(payload []byte) (any, error) {
	t, err := PayloadType(payload)
	if err != nil {
		return nil, err
	}
	switch t {
	case THello:
		return DecodeHello(payload)
	case TWelcome:
		return DecodeWelcome(payload)
	case TErr:
		return DecodeErr(payload)
	case TOK:
		return DecodeOK(payload)
	case TCreate:
		return DecodeCreate(payload)
	case TAttach:
		return DecodeAttach(payload)
	case TDrop:
		return DecodeDrop(payload)
	case TTenantInfo:
		return DecodeTenantInfo(payload)
	case TInsert:
		return DecodeInsert(payload)
	case TQueryOccupied:
		return DecodeQueryOccupied(payload)
	case TOccupiedResp:
		_, m, err := DecodeOccupiedResp(payload)
		return m, err
	case TQueryOccupancy:
		return DecodeQueryOccupancy(payload)
	case TOccupancyResp:
		_, m, err := DecodeOccupancyResp(payload)
		return m, err
	case TCastRay:
		return DecodeCastRay(payload)
	case TCastRayResp:
		_, m, err := DecodeCastRayResp(payload)
		return m, err
	case TSnapshotReq:
		return DecodeSnapshotReq(payload)
	case TSnapBegin:
		_, p, err := DecodeSnapBegin(payload)
		return p, err
	case TSnapChunk:
		_, leaves, err := DecodeSnapChunk(payload, nil)
		return leaves, err
	case TSnapEnd:
		_, n, err := DecodeSnapEnd(payload)
		return n, err
	case TCheckpoint:
		return DecodeCheckpoint(payload)
	default:
		return nil, fmt.Errorf("%w: unknown frame type 0x%02x", ErrCorrupt, uint8(t))
	}
}
