// Package wire is the binary frame protocol spoken between the
// octocache map service (octocache/server) and its typed client
// (octocache/client) — and by nothing else; the Makefile's lint-imports
// gate enforces that boundary.
//
// A connection carries a stream of self-delimiting frames:
//
//	uint32  length   — payload byte count, little-endian, 1..MaxFrame
//	payload          — length bytes; payload[0] is the frame Type
//	uint32  checksum — CRC-32C (Castagnoli) of the payload
//
// The length prefix makes frames skippable without understanding them;
// the trailing CRC turns line noise, truncation, and framing bugs into
// typed errors instead of silently corrupt maps. Every multi-byte
// integer anywhere in the protocol is little-endian; strings are a
// uint16 length followed by raw bytes; world coordinates are float64
// bits (coordinate discretization must agree bit-for-bit across the
// wire, so nothing is ever narrowed to float32 except log-odds values,
// which are float32 end-to-end in the map itself).
//
// The protocol is versioned by the Hello/Welcome handshake (Version);
// a server refuses clients it cannot speak with rather than guessing.
// Decoding never panics on corrupt input — the fuzz suite holds the
// codec to that — and fails with errors wrapping ErrCorrupt so callers
// can distinguish a poisoned stream from ordinary I/O errors.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Version is the protocol revision carried by the handshake. Bump it on
// any incompatible frame-format or message-layout change.
const Version uint16 = 1

// Magic opens every Hello frame — a cheap guard against pointing the
// client at something that is not an octocache server (and vice versa).
const Magic uint32 = 0x4f43_4d50 // "OCMP"

// MaxFrame bounds a single frame's payload: large enough for a dense
// scan batch (≈700k points at 24 bytes each) or a fat snapshot chunk,
// small enough that a corrupt length prefix cannot make a peer try to
// allocate gigabytes.
const MaxFrame = 16 << 20

// ErrCorrupt marks a stream that can no longer be trusted: a bad CRC, a
// malformed payload, an out-of-range length prefix. Peers close the
// connection on it — frame boundaries are unrecoverable once framing is
// in doubt. Test with errors.Is.
var ErrCorrupt = errors.New("wire: corrupt stream")

// ErrTooLarge marks a length prefix beyond MaxFrame. It wraps
// ErrCorrupt: an oversized frame is indistinguishable from framing
// desync.
var ErrTooLarge = fmt.Errorf("%w: frame exceeds %d bytes", ErrCorrupt, MaxFrame)

// crcTable is the Castagnoli polynomial, hardware-accelerated on
// everything this is likely to run on.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// AppendFrame appends one complete frame carrying payload to dst and
// returns the extended slice. payload must be non-empty (payload[0] is
// the type byte) and at most MaxFrame bytes.
func AppendFrame(dst, payload []byte) []byte {
	if len(payload) == 0 || len(payload) > MaxFrame {
		// Caller bug, not wire data: all payloads are built by this
		// package's encoders.
		panic(fmt.Sprintf("wire: invalid payload length %d", len(payload)))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
}

// ReadFrame reads one frame from r, reusing buf when it is large
// enough, and returns the verified payload (valid until the next call
// that reuses buf). io.EOF is returned untouched at a clean frame
// boundary; a stream that ends mid-frame fails with
// io.ErrUnexpectedEOF; CRC and length violations fail with errors
// wrapping ErrCorrupt.
func ReadFrame(r io.Reader, buf []byte) (payload, newBuf []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, buf, err // io.EOF here is a clean close
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, buf, fmt.Errorf("%w: zero-length frame", ErrCorrupt)
	}
	if n > MaxFrame {
		return nil, buf, ErrTooLarge
	}
	need := int(n) + 4 // payload + trailing CRC
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, buf, err
	}
	payload = buf[:n]
	want := binary.LittleEndian.Uint32(buf[n:])
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, buf, fmt.Errorf("%w: frame CRC mismatch (got %08x, want %08x)", ErrCorrupt, got, want)
	}
	return payload, buf, nil
}
