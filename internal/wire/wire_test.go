package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"octocache/internal/geom"
	"octocache/internal/voxel"
)

// frame round-trips one payload through AppendFrame/ReadFrame.
func frame(t *testing.T, payload []byte) []byte {
	t.Helper()
	return AppendFrame(nil, payload)
}

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		AppendHello(nil),
		AppendWelcome(nil),
		AppendOK(nil, 42),
		AppendErr(nil, 7, CodeNoTenant, "no such tenant"),
		AppendInsert(nil, 3, geom.V(1, 2, 3), []geom.Vec3{{X: 4, Y: 5, Z: 6}, {X: 7, Y: 8, Z: 9}}),
		AppendSnapEnd(nil, 9, 12345),
	}
	var stream []byte
	for _, p := range payloads {
		stream = AppendFrame(stream, p)
	}
	r := bytes.NewReader(stream)
	var buf []byte
	for i, want := range payloads {
		var got []byte
		var err error
		got, buf, err = ReadFrame(r, buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: payload mismatch", i)
		}
	}
	if _, _, err := ReadFrame(r, buf); err != io.EOF {
		t.Fatalf("after last frame: got %v, want io.EOF", err)
	}
}

func TestFrameCorruption(t *testing.T) {
	good := frame(t, AppendOK(nil, 1))

	t.Run("flipped byte", func(t *testing.T) {
		for i := range good {
			bad := append([]byte(nil), good...)
			bad[i] ^= 0x40
			_, _, err := ReadFrame(bytes.NewReader(bad), nil)
			// A flipped length byte may also surface as an unexpected
			// EOF (the reader waits for bytes that never come) or as a
			// too-large frame; a clean read of a corrupted frame is the
			// only failure.
			if err == nil {
				t.Fatalf("byte %d flipped: frame still decoded", i)
			}
		}
	})

	t.Run("truncation", func(t *testing.T) {
		for n := 1; n < len(good); n++ {
			_, _, err := ReadFrame(bytes.NewReader(good[:n]), nil)
			if err == nil {
				t.Fatalf("truncated at %d: no error", n)
			}
			if errors.Is(err, ErrCorrupt) {
				continue // a mangled tail CRC read is fine too
			}
			if err != io.ErrUnexpectedEOF {
				t.Fatalf("truncated at %d: got %v", n, err)
			}
		}
	})

	t.Run("oversized", func(t *testing.T) {
		var hdr [4]byte
		hdr[3] = 0xff // length prefix far beyond MaxFrame
		_, _, err := ReadFrame(bytes.NewReader(append(hdr[:], good...)), nil)
		if !errors.Is(err, ErrTooLarge) || !errors.Is(err, ErrCorrupt) {
			t.Fatalf("oversized frame: got %v", err)
		}
	})

	t.Run("zero length", func(t *testing.T) {
		_, _, err := ReadFrame(bytes.NewReader(make([]byte, 8)), nil)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("zero-length frame: got %v", err)
		}
	})
}

func TestMessageRoundTrips(t *testing.T) {
	opts := TenantOptions{
		Resolution: 0.25, MaxRange: 12.5, Mode: "octomap", Backend: "grid",
		Trace: "boundary", Sync: "batch", Shards: 8, CacheBuckets: 4096,
		CacheTau: 4, Durable: true, SnapshotEvery: 64,
	}
	params := ParamsFromVoxel(voxel.DefaultParams(0.25))

	t.Run("create", func(t *testing.T) {
		m, err := DecodeCreate(AppendCreate(nil, 11, "alpha", true, opts))
		if err != nil {
			t.Fatal(err)
		}
		if m.ID != 11 || m.Name != "alpha" || !m.IfAbsent || m.Opts != opts {
			t.Fatalf("round trip mismatch: %+v", m)
		}
	})

	t.Run("tenant info", func(t *testing.T) {
		m, err := DecodeTenantInfo(AppendTenantInfo(nil, 12, "alpha", opts, params))
		if err != nil {
			t.Fatal(err)
		}
		if m.Opts != opts || m.Params != params || m.Name != "alpha" {
			t.Fatalf("round trip mismatch: %+v", m)
		}
		if m.Params.ToVoxel() != voxel.DefaultParams(0.25) {
			t.Fatalf("params conversion not lossless: %+v", m.Params.ToVoxel())
		}
	})

	t.Run("insert", func(t *testing.T) {
		pts := []geom.Vec3{{X: 1.5, Y: -2, Z: 3}, {X: 0, Y: 0, Z: 0}, {X: -9, Y: 9, Z: 0.125}}
		m, err := DecodeInsert(AppendInsert(nil, 77, geom.V(1, 2, 3), pts))
		if err != nil {
			t.Fatal(err)
		}
		if m.ID != 77 || m.Origin != geom.V(1, 2, 3) || len(m.Points) != len(pts) {
			t.Fatalf("round trip mismatch: %+v", m)
		}
		for i := range pts {
			if m.Points[i] != pts[i] {
				t.Fatalf("point %d: got %v, want %v", i, m.Points[i], pts[i])
			}
		}
	})

	t.Run("occupancy", func(t *testing.T) {
		keys := []voxel.Key{{X: 1, Y: 2, Z: 3}, {X: 65535, Y: 0, Z: 32768}}
		q, err := DecodeQueryOccupancy(AppendQueryOccupancy(nil, 5, keys))
		if err != nil {
			t.Fatal(err)
		}
		if q.ID != 5 || len(q.Keys) != 2 || q.Keys[1] != keys[1] {
			t.Fatalf("query mismatch: %+v", q)
		}
		cells := []CellState{{LogOdds: 1.25, Known: true}, {LogOdds: 0, Known: false}}
		id, got, err := DecodeOccupancyResp(AppendOccupancyResp(nil, 5, cells))
		if err != nil {
			t.Fatal(err)
		}
		if id != 5 || len(got) != 2 || got[0] != cells[0] || got[1] != cells[1] {
			t.Fatalf("resp mismatch: %v %+v", id, got)
		}
	})

	t.Run("occupied bitmask", func(t *testing.T) {
		bits := []byte{0b0000_0101, 0b0000_0001}
		id, m, err := DecodeOccupiedResp(AppendOccupiedResp(nil, 4, 9, bits))
		if err != nil {
			t.Fatal(err)
		}
		if id != 4 || m.N != 9 {
			t.Fatalf("resp mismatch: %v %+v", id, m)
		}
		for i, want := range []bool{true, false, true, false, false, false, false, false, true} {
			if m.Occupied(i) != want {
				t.Fatalf("bit %d: got %v, want %v", i, m.Occupied(i), want)
			}
		}
	})

	t.Run("cast ray", func(t *testing.T) {
		m, err := DecodeCastRay(AppendCastRay(nil, 6, geom.V(0, 0, 1), geom.V(1, 0, 0), 30, true))
		if err != nil {
			t.Fatal(err)
		}
		if m.ID != 6 || !m.IgnoreUnknown || m.MaxRange != 30 {
			t.Fatalf("cast-ray mismatch: %+v", m)
		}
		id, r, err := DecodeCastRayResp(AppendCastRayResp(nil, 6, geom.V(2, 0, 1), true))
		if err != nil {
			t.Fatal(err)
		}
		if id != 6 || !r.OK || r.Hit != geom.V(2, 0, 1) {
			t.Fatalf("cast-ray-resp mismatch: %v %+v", id, r)
		}
	})

	t.Run("snapshot stream", func(t *testing.T) {
		id, p, err := DecodeSnapBegin(AppendSnapBegin(nil, 8, params))
		if err != nil || id != 8 || p != params {
			t.Fatalf("snap-begin mismatch: %v %v %+v", err, id, p)
		}
		leaves := []Leaf{
			{Key: voxel.Key{X: 1, Y: 2, Z: 3}, Depth: 16, LogOdds: 2.5},
			{Key: voxel.Key{X: 8, Y: 8, Z: 8}, Depth: 13, LogOdds: -1},
		}
		id, got, err := DecodeSnapChunk(AppendSnapChunk(nil, 8, leaves), nil)
		if err != nil || id != 8 || len(got) != 2 || got[0] != leaves[0] || got[1] != leaves[1] {
			t.Fatalf("snap-chunk mismatch: %v %v %+v", err, id, got)
		}
		id, n, err := DecodeSnapEnd(AppendSnapEnd(nil, 8, 2))
		if err != nil || id != 8 || n != 2 {
			t.Fatalf("snap-end mismatch: %v %v %v", err, id, n)
		}
	})
}

// TestDecodeRejectsTrailingGarbage pins the strict-length discipline:
// extra bytes after a well-formed message are corruption, not slack.
func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	payload := append(AppendOK(nil, 1), 0xee)
	if _, err := DecodeOK(payload); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte: got %v", err)
	}
	if _, err := DecodeAny(payload); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("DecodeAny trailing byte: got %v", err)
	}
}

// TestDecodeWrongType pins that decoders refuse other messages' frames.
func TestDecodeWrongType(t *testing.T) {
	if _, err := DecodeAttach(AppendDrop(nil, 1, "x")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrong type: got %v", err)
	}
}

// FuzzFrameDecode feeds arbitrary bytes through the frame reader and
// every message decoder: nothing may panic, allocate absurdly, or
// return success for garbage the encoders could not have produced.
func FuzzFrameDecode(f *testing.F) {
	seed := [][]byte{
		frameBytes(AppendHello(nil)),
		frameBytes(AppendWelcome(nil)),
		frameBytes(AppendErr(nil, 1, CodeInternal, "boom")),
		frameBytes(AppendCreate(nil, 2, "tenant", false, TenantOptions{Resolution: 0.1, Shards: 4})),
		frameBytes(AppendInsert(nil, 3, geom.V(0, 0, 0), []geom.Vec3{{X: 1, Y: 1, Z: 1}})),
		frameBytes(AppendQueryOccupancy(nil, 4, []voxel.Key{{X: 5, Y: 6, Z: 7}})),
		frameBytes(AppendSnapChunk(nil, 5, []Leaf{{Key: voxel.Key{X: 1}, Depth: 16, LogOdds: 1}})),
		frameBytes(AppendSnapEnd(nil, 6, 1)),
		{0, 0, 0, 0},
		{0xff, 0xff, 0xff, 0xff},
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		var buf []byte
		for {
			payload, nb, err := ReadFrame(r, buf)
			buf = nb
			if err != nil {
				// Every failure must be a typed corruption error or a
				// (possibly unexpected) EOF — never anything else and
				// never a panic.
				if !errors.Is(err, ErrCorrupt) && err != io.EOF && err != io.ErrUnexpectedEOF {
					t.Fatalf("unexpected error class: %v", err)
				}
				return
			}
			// A structurally valid frame: every decoder must either
			// parse it or fail with a typed corruption error.
			if _, err := DecodeAny(payload); err != nil && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("DecodeAny error class: %v", err)
			}
			decoders := []func([]byte) error{
				func(p []byte) error { _, err := DecodeHello(p); return err },
				func(p []byte) error { _, err := DecodeWelcome(p); return err },
				func(p []byte) error { _, err := DecodeErr(p); return err },
				func(p []byte) error { _, err := DecodeOK(p); return err },
				func(p []byte) error { _, err := DecodeCreate(p); return err },
				func(p []byte) error { _, err := DecodeAttach(p); return err },
				func(p []byte) error { _, err := DecodeDrop(p); return err },
				func(p []byte) error { _, err := DecodeTenantInfo(p); return err },
				func(p []byte) error { _, err := DecodeInsert(p); return err },
				func(p []byte) error { _, err := DecodeQueryOccupied(p); return err },
				func(p []byte) error { _, _, err := DecodeOccupiedResp(p); return err },
				func(p []byte) error { _, err := DecodeQueryOccupancy(p); return err },
				func(p []byte) error { _, _, err := DecodeOccupancyResp(p); return err },
				func(p []byte) error { _, err := DecodeCastRay(p); return err },
				func(p []byte) error { _, _, err := DecodeCastRayResp(p); return err },
				func(p []byte) error { _, err := DecodeSnapshotReq(p); return err },
				func(p []byte) error { _, _, err := DecodeSnapBegin(p); return err },
				func(p []byte) error { _, _, err := DecodeSnapChunk(p, nil); return err },
				func(p []byte) error { _, _, err := DecodeSnapEnd(p); return err },
				func(p []byte) error { _, err := DecodeCheckpoint(p); return err },
			}
			for i, dec := range decoders {
				if err := dec(payload); err != nil && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("decoder %d error class: %v", i, err)
				}
			}
		}
	})
}

func frameBytes(payload []byte) []byte { return AppendFrame(nil, payload) }
