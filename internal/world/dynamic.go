package world

import "octocache/internal/geom"

// Moving wraps an obstacle with a linear motion, supporting the dynamic
// environments OctoMap's clamped log-odds model exists for (§2.2): a
// voxel occupied by a passing obstacle must decay back to free within a
// bounded number of contradicting scans, because the accumulated
// log-odds is clamped rather than unbounded.
//
// Advance the scene clock with World.SetTime; Raycast/Contains evaluate
// at the current offset.
type Moving struct {
	Base Obstacle
	// Velocity is the obstacle's displacement per second.
	Velocity geom.Vec3

	offset geom.Vec3
}

// setTime positions the obstacle for scene time t (seconds).
func (m *Moving) setTime(t float64) {
	m.offset = m.Velocity.Scale(t)
}

// Raycast implements Obstacle: the ray is cast in the obstacle's local
// frame by shifting the origin.
func (m *Moving) Raycast(origin, dir geom.Vec3) (float64, bool) {
	return m.Base.Raycast(origin.Sub(m.offset), dir)
}

// Bounds implements Obstacle at the current scene time.
func (m *Moving) Bounds() geom.AABB {
	b := m.Base.Bounds()
	return geom.AABB{Min: b.Min.Add(m.offset), Max: b.Max.Add(m.offset)}
}

// Contains implements Obstacle at the current scene time.
func (m *Moving) Contains(p geom.Vec3) bool {
	return m.Base.Contains(p.Sub(m.offset))
}

// SetTime advances every Moving obstacle in the world to scene time t.
// Static obstacles are unaffected.
func (w *World) SetTime(t float64) {
	for _, o := range w.Obstacles {
		if m, ok := o.(*Moving); ok {
			m.setTime(t)
		}
	}
}
