package world

import (
	"math"
	"testing"

	"octocache/internal/geom"
)

func TestMovingObstacle(t *testing.T) {
	m := &Moving{
		Base:     B(geom.V(5, -1, -1), geom.V(6, 1, 1)),
		Velocity: geom.V(0, 2, 0),
	}
	w := &World{Obstacles: []Obstacle{m}}

	// At t=0 the box is at y∈[-1,1]: a ray along +X at y=0 hits it.
	w.SetTime(0)
	if _, ok := w.Raycast(geom.V(0, 0, 0), geom.V(1, 0, 0), 20); !ok {
		t.Fatal("t=0: ray should hit the box")
	}
	if !m.Contains(geom.V(5.5, 0, 0)) {
		t.Error("t=0: containment wrong")
	}

	// At t=2 it has moved to y∈[3,5]: the same ray misses; a shifted one hits.
	w.SetTime(2)
	if _, ok := w.Raycast(geom.V(0, 0, 0), geom.V(1, 0, 0), 20); ok {
		t.Error("t=2: ray should miss the moved box")
	}
	hit, ok := w.Raycast(geom.V(0, 4, 0), geom.V(1, 0, 0), 20)
	if !ok || math.Abs(hit.X-5) > 1e-9 {
		t.Errorf("t=2: shifted ray hit = %v,%v", hit, ok)
	}
	if !m.Contains(geom.V(5.5, 4, 0)) || m.Contains(geom.V(5.5, 0, 0)) {
		t.Error("t=2: containment did not move")
	}
	// Bounds move too.
	if b := m.Bounds(); b.Min.Y != 3 || b.Max.Y != 5 {
		t.Errorf("t=2: bounds %+v", b)
	}

	// Rewinding the clock restores the original pose.
	w.SetTime(0)
	if _, ok := w.Raycast(geom.V(0, 0, 0), geom.V(1, 0, 0), 20); !ok {
		t.Error("t back to 0: ray should hit again")
	}
}

func TestWorldCollidesWithMoving(t *testing.T) {
	m := &Moving{Base: B(geom.V(0, 0, 0), geom.V(1, 1, 1)), Velocity: geom.V(10, 0, 0)}
	w := &World{Obstacles: []Obstacle{m}}
	box := geom.Box(geom.V(0.2, 0.2, 0.2), geom.V(0.8, 0.8, 0.8))
	w.SetTime(0)
	if !w.Collides(box) {
		t.Error("t=0: should collide")
	}
	w.SetTime(1)
	if w.Collides(box) {
		t.Error("t=1: obstacle moved away; should not collide")
	}
}
