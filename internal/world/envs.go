package world

import (
	"math"
	"math/rand"

	"octocache/internal/geom"
)

// Env enumerates the built-in environments.
type Env int

const (
	// Openland is the structured outdoor MAVBench scene: flat terrain,
	// sparse obstacles, 100 m goal. Easiest task.
	Openland Env = iota
	// Farm is the unstructured outdoor scene: tree rows, fences,
	// scattered crates, 50 m goal.
	Farm
	// Room is the indoor scene: enclosed volume, dense furniture, 12 m
	// goal. Hardest task.
	Room
	// Factory is the mixed scene: a hall with columns and machinery plus
	// an outdoor yard, 70 m goal.
	Factory
	// FR079 emulates the FR-079 corridor scan dataset: a long office
	// corridor with doorways and cabinets.
	FR079
	// Campus emulates the Freiburg campus dataset: buildings, trees, and
	// open walkways over a large extent.
	Campus
	// NewCollege emulates the New College dataset: a walled quad with
	// trees and a central lawn.
	NewCollege
)

var envNames = map[Env]string{
	Openland:   "openland",
	Farm:       "farm",
	Room:       "room",
	Factory:    "factory",
	FR079:      "fr079",
	Campus:     "campus",
	NewCollege: "newcollege",
}

func (e Env) String() string {
	if n, ok := envNames[e]; ok {
		return n
	}
	return "unknown"
}

// MAVBenchEnvs returns the four UAV simulation environments in the
// paper's difficulty order (§5.1): Room > Factory > Farm > Openland.
func MAVBenchEnvs() []Env { return []Env{Openland, Farm, Room, Factory} }

// DatasetEnvs returns the three scan-dataset stand-ins.
func DatasetEnvs() []Env { return []Env{FR079, Campus, NewCollege} }

// Build constructs the environment deterministically from the seed.
func Build(e Env, seed int64) *World {
	rng := rand.New(rand.NewSource(seed))
	switch e {
	case Openland:
		return buildOpenland(rng)
	case Farm:
		return buildFarm(rng)
	case Room:
		return buildRoom(rng)
	case Factory:
		return buildFactory(rng)
	case FR079:
		return buildCorridor(rng)
	case Campus:
		return buildCampus(rng)
	case NewCollege:
		return buildNewCollege(rng)
	default:
		return buildOpenland(rng)
	}
}

// ground adds a thin slab at z in [-0.2, 0] spanning the bounds.
func ground(b geom.AABB) Box {
	return B(geom.V(b.Min.X, b.Min.Y, -0.2), geom.V(b.Max.X, b.Max.Y, 0))
}

func buildOpenland(rng *rand.Rand) *World {
	bounds := geom.Box(geom.V(-10, -30, -0.2), geom.V(115, 30, 20))
	w := &World{
		Name:   "openland",
		Bounds: bounds,
		Start:  geom.V(0, 0, 2),
		Goal:   geom.V(100, 0, 2),
	}
	w.Obstacles = append(w.Obstacles, ground(bounds))
	// Sparse boulders and a few lone trees, kept off the direct line so
	// the environment stays "structured and easy".
	for i := 0; i < 14; i++ {
		x := 8 + rng.Float64()*90
		y := rng.Float64()*40 - 20
		if math.Abs(y) < 3 {
			y += math.Copysign(4, y)
		}
		s := 0.8 + rng.Float64()*1.6
		w.Obstacles = append(w.Obstacles, B(geom.V(x-s, y-s, 0), geom.V(x+s, y+s, s*1.5)))
	}
	for i := 0; i < 8; i++ {
		x := 10 + rng.Float64()*85
		y := rng.Float64()*44 - 22
		if math.Abs(y) < 4 {
			continue
		}
		trunk := Cylinder{CX: x, CY: y, R: 0.25, ZMin: 0, ZMax: 4 + rng.Float64()*2}
		w.Obstacles = append(w.Obstacles,
			trunk,
			Sphere{C: geom.V(x, y, trunk.ZMax+1), R: 1.5 + rng.Float64()},
		)
	}
	return w
}

func buildFarm(rng *rand.Rand) *World {
	bounds := geom.Box(geom.V(-10, -25, -0.2), geom.V(60, 25, 15))
	w := &World{
		Name:   "farm",
		Bounds: bounds,
		Start:  geom.V(0, 0, 1.5),
		Goal:   geom.V(50, 0, 1.5),
	}
	w.Obstacles = append(w.Obstacles, ground(bounds))
	// Orchard rows: irregular tree lines crossing the flight direction.
	for row := 0; row < 5; row++ {
		x := 8 + float64(row)*9 + rng.Float64()*2
		for y := -20.0; y < 20; y += 3 + rng.Float64()*2 {
			if rng.Float64() < 0.25 {
				continue // gaps the planner can use
			}
			h := 3 + rng.Float64()*2.5
			w.Obstacles = append(w.Obstacles,
				Cylinder{CX: x + rng.Float64() - 0.5, CY: y, R: 0.2 + rng.Float64()*0.15, ZMin: 0, ZMax: h},
				Sphere{C: geom.V(x, y, h+0.8), R: 1.2 + rng.Float64()*0.8},
			)
		}
	}
	// Fences: low thin boxes with gaps.
	for _, x := range []float64{22.5, 40.5} {
		for y := -22.0; y < 22; y += 8 {
			w.Obstacles = append(w.Obstacles, B(geom.V(x, y, 0), geom.V(x+0.15, y+5.5, 1.4)))
		}
	}
	// Scattered crates and a barn.
	for i := 0; i < 10; i++ {
		x := 5 + rng.Float64()*45
		y := rng.Float64()*36 - 18
		s := 0.5 + rng.Float64()*1.2
		w.Obstacles = append(w.Obstacles, B(geom.V(x, y, 0), geom.V(x+s, y+s, s)))
	}
	w.Obstacles = append(w.Obstacles, B(geom.V(30, -20, 0), geom.V(38, -12, 5)))
	return w
}

func buildRoom(rng *rand.Rand) *World {
	// A 14x8x3 m room; goal 12 m away through furniture.
	bounds := geom.Box(geom.V(-1, -4, -0.2), geom.V(13, 4, 3))
	w := &World{
		Name:   "room",
		Bounds: bounds,
		Start:  geom.V(0, 0, 1.2),
		Goal:   geom.V(12, 0, 1.2),
	}
	const wt = 0.15 // wall thickness
	w.Obstacles = append(w.Obstacles,
		ground(bounds),
		B(geom.V(-1, -4, 2.9), geom.V(13, 4, 3.1)), // ceiling
		B(geom.V(-1-wt, -4, 0), geom.V(-1, 4, 3)),  // west wall
		B(geom.V(13, -4, 0), geom.V(13+wt, 4, 3)),  // east wall
		B(geom.V(-1, -4-wt, 0), geom.V(13, -4, 3)), // south wall
		B(geom.V(-1, 4, 0), geom.V(13, 4+wt, 3)),   // north wall
	)
	// Furniture: tables, shelves, and boxes the UAV must thread through.
	for i := 0; i < 12; i++ {
		x := 1.5 + rng.Float64()*10
		y := rng.Float64()*6.4 - 3.2
		sx := 0.4 + rng.Float64()*1.0
		sy := 0.4 + rng.Float64()*1.0
		h := 0.5 + rng.Float64()*1.7
		// Keep a thin corridor near the start so missions are feasible.
		if x < 2.5 && math.Abs(y) < 1 {
			continue
		}
		w.Obstacles = append(w.Obstacles, B(geom.V(x, y, 0), geom.V(x+sx, y+sy, h)))
	}
	// Two tall shelves forcing detours.
	w.Obstacles = append(w.Obstacles,
		B(geom.V(4, -4, 0), geom.V(4.4, 0.5, 2.6)),
		B(geom.V(8, -0.5, 0), geom.V(8.4, 4, 2.6)),
	)
	return w
}

func buildFactory(rng *rand.Rand) *World {
	// Outdoor yard (x in [0,30)) then a hall (x in [30,75]) with columns.
	bounds := geom.Box(geom.V(-5, -15, -0.2), geom.V(80, 15, 12))
	w := &World{
		Name:   "factory",
		Bounds: bounds,
		Start:  geom.V(0, 0, 1.5),
		Goal:   geom.V(70, 0, 1.5),
	}
	w.Obstacles = append(w.Obstacles, ground(bounds))
	// Yard: stacked pallets and containers.
	for i := 0; i < 8; i++ {
		x := 4 + rng.Float64()*22
		y := rng.Float64()*24 - 12
		if math.Abs(y) < 2 {
			continue
		}
		w.Obstacles = append(w.Obstacles, B(geom.V(x, y, 0), geom.V(x+2.4, y+1.2, 1.2+rng.Float64()*1.8)))
	}
	// Hall shell with an entrance aligned with the flight line.
	const wt = 0.2
	w.Obstacles = append(w.Obstacles,
		B(geom.V(30, -15, 6.8), geom.V(75, 15, 7.2)), // roof
		B(geom.V(30, -15, 0), geom.V(30+wt, -2, 7)),  // front wall south of door
		B(geom.V(30, 2, 0), geom.V(30+wt, 15, 7)),    // front wall north of door
		B(geom.V(75, -15, 0), geom.V(75+wt, 15, 7)),  // back wall
		B(geom.V(30, -15-wt, 0), geom.V(75, -15, 7)), // south wall
		B(geom.V(30, 15, 0), geom.V(75, 15+wt, 7)),   // north wall
	)
	// Columns on a grid and machinery blocks.
	for x := 36.0; x < 72; x += 9 {
		for y := -10.0; y <= 10; y += 10 {
			w.Obstacles = append(w.Obstacles, Cylinder{CX: x, CY: y, R: 0.35, ZMin: 0, ZMax: 7})
		}
	}
	for i := 0; i < 9; i++ {
		x := 33 + rng.Float64()*38
		y := rng.Float64()*22 - 11
		if math.Abs(y) < 1.5 {
			continue
		}
		w.Obstacles = append(w.Obstacles, B(geom.V(x, y, 0), geom.V(x+2+rng.Float64()*2, y+1.5, 2+rng.Float64()*2)))
	}
	return w
}

func buildCorridor(rng *rand.Rand) *World {
	// FR-079: a 30 m office corridor, 2.2 m wide, with door alcoves and
	// cabinets — a tight indoor scene with massive scan overlap.
	bounds := geom.Box(geom.V(-2, -3, -0.2), geom.V(32, 3, 3))
	w := &World{
		Name:   "fr079",
		Bounds: bounds,
		Start:  geom.V(0, 0, 1.2),
		Goal:   geom.V(30, 0, 1.2),
	}
	const wt = 0.15
	w.Obstacles = append(w.Obstacles,
		ground(bounds),
		B(geom.V(-2, -3, 2.5), geom.V(32, 3, 2.7)), // ceiling
		B(geom.V(-2-wt, -3, 0), geom.V(-2, 3, 2.5)),
		B(geom.V(32, -3, 0), geom.V(32+wt, 3, 2.5)),
	)
	// Corridor walls with door alcoves every few meters.
	for x := -2.0; x < 32; x += 4 {
		seg := 4.0
		if x+seg > 32 {
			seg = 32 - x
		}
		doorAt := rng.Float64()*2 + 0.5
		// South wall: split around a 0.9 m doorway.
		w.Obstacles = append(w.Obstacles,
			B(geom.V(x, -1.1-wt, 0), geom.V(x+doorAt, -1.1, 2.5)),
			B(geom.V(x+doorAt+0.9, -1.1-wt, 0), geom.V(x+seg, -1.1, 2.5)),
			B(geom.V(x, 1.1, 0), geom.V(x+seg, 1.1+wt, 2.5)),
		)
	}
	// Cabinets along the walls.
	for i := 0; i < 6; i++ {
		x := 2 + rng.Float64()*27
		side := -1.05
		if rng.Intn(2) == 0 {
			side = 0.65
		}
		w.Obstacles = append(w.Obstacles, B(geom.V(x, side, 0), geom.V(x+1.2, side+0.4, 1.8)))
	}
	return w
}

func buildCampus(rng *rand.Rand) *World {
	// Freiburg campus: large outdoor extent with buildings and tree
	// clusters; low overlap between distant scans.
	bounds := geom.Box(geom.V(-10, -60, -0.2), geom.V(150, 60, 25))
	w := &World{
		Name:   "campus",
		Bounds: bounds,
		Start:  geom.V(0, 0, 1.5),
		Goal:   geom.V(140, 0, 1.5),
	}
	w.Obstacles = append(w.Obstacles, ground(bounds))
	// Buildings: large boxes flanking a central walkway.
	for i := 0; i < 7; i++ {
		x := 10 + float64(i)*18 + rng.Float64()*4
		side := 1.0
		if i%2 == 0 {
			side = -1
		}
		y := side * (12 + rng.Float64()*25)
		sx := 8 + rng.Float64()*8
		sy := 6 + rng.Float64()*8
		h := 6 + rng.Float64()*10
		w.Obstacles = append(w.Obstacles, B(geom.V(x, y-sy/2, 0), geom.V(x+sx, y+sy/2, h)))
	}
	// Tree clusters.
	for i := 0; i < 35; i++ {
		x := rng.Float64() * 145
		y := rng.Float64()*100 - 50
		if math.Abs(y) < 4 {
			continue
		}
		h := 4 + rng.Float64()*4
		w.Obstacles = append(w.Obstacles,
			Cylinder{CX: x, CY: y, R: 0.3, ZMin: 0, ZMax: h},
			Sphere{C: geom.V(x, y, h+1.2), R: 1.8 + rng.Float64()*1.4},
		)
	}
	// Low campus walls.
	for i := 0; i < 5; i++ {
		x := 15 + rng.Float64()*110
		y := rng.Float64()*70 - 35
		w.Obstacles = append(w.Obstacles, B(geom.V(x, y, 0), geom.V(x+10+rng.Float64()*10, y+0.3, 1.8)))
	}
	return w
}

func buildNewCollege(rng *rand.Rand) *World {
	// New College: a walled quadrangle with a central lawn and perimeter
	// trees; the sensor loops around the quad, giving medium overlap.
	bounds := geom.Box(geom.V(-40, -40, -0.2), geom.V(40, 40, 20))
	w := &World{
		Name:   "newcollege",
		Bounds: bounds,
		Start:  geom.V(-30, -30, 1.5),
		Goal:   geom.V(30, 30, 1.5),
	}
	w.Obstacles = append(w.Obstacles, ground(bounds))
	// Perimeter buildings (the college walls).
	const t = 2.5
	w.Obstacles = append(w.Obstacles,
		B(geom.V(-38, -38, 0), geom.V(38, -38+t, 9)),
		B(geom.V(-38, 38-t, 0), geom.V(38, 38, 9)),
		B(geom.V(-38, -38, 0), geom.V(-38+t, 38, 9)),
		B(geom.V(38-t, -38, 0), geom.V(38, 38, 9)),
	)
	// Central monument and lawn borders.
	w.Obstacles = append(w.Obstacles,
		Cylinder{CX: 0, CY: 0, R: 1.2, ZMin: 0, ZMax: 5},
		B(geom.V(-12, -12, 0), geom.V(12, -11.7, 0.5)),
		B(geom.V(-12, 11.7, 0), geom.V(12, 12, 0.5)),
		B(geom.V(-12, -12, 0), geom.V(-11.7, 12, 0.5)),
		B(geom.V(11.7, -12, 0), geom.V(12, 12, 0.5)),
	)
	// Perimeter trees inside the walls.
	for i := 0; i < 24; i++ {
		ang := float64(i) / 24 * 2 * math.Pi
		r := 24 + rng.Float64()*6
		x, y := r*math.Cos(ang), r*math.Sin(ang)
		h := 5 + rng.Float64()*3
		w.Obstacles = append(w.Obstacles,
			Cylinder{CX: x, CY: y, R: 0.35, ZMin: 0, ZMax: h},
			Sphere{C: geom.V(x, y, h+1.5), R: 2 + rng.Float64()},
		)
	}
	return w
}
