// Package world provides analytic 3D scenes that substitute for the
// paper's data sources: the MAVBench/Unreal simulation environments
// (Openland, Farm, Room, Factory) and the public 3D-scan datasets
// (FR-079 corridor, Freiburg campus, New College).
//
// A World is a set of solid obstacles supporting exact ray casting —
// enough to drive a simulated range sensor, which in turn produces the
// point-cloud streams the mapping pipelines consume. Obstacle geometry
// is procedural and seeded, so every experiment is reproducible.
package world

import (
	"math"

	"octocache/internal/geom"
)

// Obstacle is a solid body supporting ray queries.
type Obstacle interface {
	// Raycast returns the smallest t >= 0 with origin + t*dir on the
	// obstacle's surface, if any. dir must be unit length.
	Raycast(origin, dir geom.Vec3) (t float64, hit bool)
	// Bounds returns an AABB enclosing the obstacle.
	Bounds() geom.AABB
	// Contains reports whether p is inside the obstacle.
	Contains(p geom.Vec3) bool
}

// World is a named collection of obstacles plus mission endpoints.
type World struct {
	Name      string
	Bounds    geom.AABB
	Obstacles []Obstacle
	// Start and Goal are the mission endpoints used by the UAV
	// experiments; GoalDistance mirrors the paper's per-environment goal
	// distances (100 m Openland, 50 m Farm, 12 m Room, 70 m Factory).
	Start, Goal geom.Vec3
}

// Raycast returns the nearest obstacle hit along the ray, capped at
// maxRange. dir must be unit length.
func (w *World) Raycast(origin, dir geom.Vec3, maxRange float64) (geom.Vec3, bool) {
	best := maxRange
	hitAny := false
	for _, o := range w.Obstacles {
		// Cheap reject: ray vs obstacle bounds.
		if _, _, ok := o.Bounds().RayIntersect(origin, dir); !ok {
			continue
		}
		if t, ok := o.Raycast(origin, dir); ok && t < best {
			best = t
			hitAny = true
		}
	}
	if !hitAny {
		return geom.Vec3{}, false
	}
	return origin.Add(dir.Scale(best)), true
}

// Collides reports whether the box intersects any obstacle — the ground
// truth used to validate planner paths.
func (w *World) Collides(box geom.AABB) bool {
	for _, o := range w.Obstacles {
		if !o.Bounds().Intersects(box) {
			continue
		}
		if boxTouches(o, box) {
			return true
		}
	}
	return false
}

// boxTouches samples the query box against the obstacle. For AABB
// obstacles an exact test is used; for cylinders a dense corner/center
// sample suffices for planner validation.
func boxTouches(o Obstacle, box geom.AABB) bool {
	if b, ok := o.(Box); ok {
		return geom.AABB(b).Intersects(box)
	}
	// Sample the box volume.
	const n = 3
	sz := box.Size()
	for i := 0; i <= n; i++ {
		for j := 0; j <= n; j++ {
			for k := 0; k <= n; k++ {
				p := box.Min.Add(geom.Vec3{
					X: sz.X * float64(i) / n,
					Y: sz.Y * float64(j) / n,
					Z: sz.Z * float64(k) / n,
				})
				if o.Contains(p) {
					return true
				}
			}
		}
	}
	return false
}

// Box is an axis-aligned solid obstacle.
type Box geom.AABB

// B constructs a Box from min/max corners.
func B(min, max geom.Vec3) Box { return Box(geom.Box(min, max)) }

// Raycast implements Obstacle.
func (b Box) Raycast(origin, dir geom.Vec3) (float64, bool) {
	tmin, tmax, ok := geom.AABB(b).RayIntersect(origin, dir)
	if !ok || tmax < 0 {
		return 0, false
	}
	if tmin < 0 {
		// Origin inside: surface is at the exit point.
		return tmax, true
	}
	return tmin, true
}

// Bounds implements Obstacle.
func (b Box) Bounds() geom.AABB { return geom.AABB(b) }

// Contains implements Obstacle.
func (b Box) Contains(p geom.Vec3) bool { return geom.AABB(b).Contains(p) }

// Cylinder is a vertical solid cylinder (tree trunks, columns, crop
// rows' posts).
type Cylinder struct {
	CX, CY     float64 // axis position
	R          float64 // radius
	ZMin, ZMax float64 // vertical extent
}

// Bounds implements Obstacle.
func (c Cylinder) Bounds() geom.AABB {
	return geom.AABB{
		Min: geom.V(c.CX-c.R, c.CY-c.R, c.ZMin),
		Max: geom.V(c.CX+c.R, c.CY+c.R, c.ZMax),
	}
}

// Contains implements Obstacle.
func (c Cylinder) Contains(p geom.Vec3) bool {
	if p.Z < c.ZMin || p.Z > c.ZMax {
		return false
	}
	dx, dy := p.X-c.CX, p.Y-c.CY
	return dx*dx+dy*dy <= c.R*c.R
}

// Raycast implements Obstacle: side surface plus end caps.
func (c Cylinder) Raycast(origin, dir geom.Vec3) (float64, bool) {
	best := math.Inf(1)
	// Side: |(o.xy + t*d.xy) - c| = R.
	ox, oy := origin.X-c.CX, origin.Y-c.CY
	a := dir.X*dir.X + dir.Y*dir.Y
	if a > 1e-12 {
		b := 2 * (ox*dir.X + oy*dir.Y)
		cc := ox*ox + oy*oy - c.R*c.R
		disc := b*b - 4*a*cc
		if disc >= 0 {
			sq := math.Sqrt(disc)
			for _, t := range [2]float64{(-b - sq) / (2 * a), (-b + sq) / (2 * a)} {
				if t < 0 || t >= best {
					continue
				}
				z := origin.Z + t*dir.Z
				if z >= c.ZMin && z <= c.ZMax {
					best = t
				}
			}
		}
	}
	// Caps.
	if dir.Z != 0 {
		for _, zc := range [2]float64{c.ZMin, c.ZMax} {
			t := (zc - origin.Z) / dir.Z
			if t < 0 || t >= best {
				continue
			}
			x := origin.X + t*dir.X - c.CX
			y := origin.Y + t*dir.Y - c.CY
			if x*x+y*y <= c.R*c.R {
				best = t
			}
		}
	}
	if math.IsInf(best, 1) {
		return 0, false
	}
	return best, true
}

// Sphere is a solid ball (tree canopies).
type Sphere struct {
	C geom.Vec3
	R float64
}

// Bounds implements Obstacle.
func (s Sphere) Bounds() geom.AABB {
	r := geom.V(s.R, s.R, s.R)
	return geom.AABB{Min: s.C.Sub(r), Max: s.C.Add(r)}
}

// Contains implements Obstacle.
func (s Sphere) Contains(p geom.Vec3) bool {
	return p.Sub(s.C).NormSq() <= s.R*s.R
}

// Raycast implements Obstacle.
func (s Sphere) Raycast(origin, dir geom.Vec3) (float64, bool) {
	oc := origin.Sub(s.C)
	b := 2 * oc.Dot(dir)
	c := oc.NormSq() - s.R*s.R
	disc := b*b - 4*c
	if disc < 0 {
		return 0, false
	}
	sq := math.Sqrt(disc)
	if t := (-b - sq) / 2; t >= 0 {
		return t, true
	}
	if t := (-b + sq) / 2; t >= 0 {
		return t, true
	}
	return 0, false
}
