package world

import (
	"math"
	"math/rand"
	"testing"

	"octocache/internal/geom"
)

func TestBoxRaycast(t *testing.T) {
	b := B(geom.V(2, -1, -1), geom.V(3, 1, 1))
	tt, ok := b.Raycast(geom.V(0, 0, 0), geom.V(1, 0, 0))
	if !ok || math.Abs(tt-2) > 1e-9 {
		t.Errorf("Raycast = %v,%v want 2,true", tt, ok)
	}
	// From inside: exit surface.
	tt, ok = b.Raycast(geom.V(2.5, 0, 0), geom.V(1, 0, 0))
	if !ok || math.Abs(tt-0.5) > 1e-9 {
		t.Errorf("inside Raycast = %v,%v want 0.5,true", tt, ok)
	}
	if _, ok := b.Raycast(geom.V(0, 5, 0), geom.V(1, 0, 0)); ok {
		t.Error("miss reported hit")
	}
}

func TestCylinderRaycast(t *testing.T) {
	c := Cylinder{CX: 5, CY: 0, R: 1, ZMin: 0, ZMax: 3}
	// Horizontal ray at z=1 hits the side at x=4.
	tt, ok := c.Raycast(geom.V(0, 0, 1), geom.V(1, 0, 0))
	if !ok || math.Abs(tt-4) > 1e-9 {
		t.Errorf("side hit = %v,%v want 4,true", tt, ok)
	}
	// Ray above the cylinder misses.
	if _, ok := c.Raycast(geom.V(0, 0, 5), geom.V(1, 0, 0)); ok {
		t.Error("ray above cylinder hit")
	}
	// Vertical ray from above hits the top cap at z=3.
	tt, ok = c.Raycast(geom.V(5, 0, 10), geom.V(0, 0, -1))
	if !ok || math.Abs(tt-7) > 1e-9 {
		t.Errorf("cap hit = %v,%v want 7,true", tt, ok)
	}
	// Tangential offset miss.
	if _, ok := c.Raycast(geom.V(0, 1.5, 1), geom.V(1, 0, 0)); ok {
		t.Error("offset ray hit cylinder")
	}
}

func TestCylinderContains(t *testing.T) {
	c := Cylinder{CX: 0, CY: 0, R: 1, ZMin: 0, ZMax: 2}
	if !c.Contains(geom.V(0.5, 0.5, 1)) {
		t.Error("inside point not contained")
	}
	if c.Contains(geom.V(0.9, 0.9, 1)) {
		t.Error("outside-radius point contained")
	}
	if c.Contains(geom.V(0, 0, 3)) {
		t.Error("above-top point contained")
	}
}

func TestSphereRaycast(t *testing.T) {
	s := Sphere{C: geom.V(0, 0, 10), R: 2}
	tt, ok := s.Raycast(geom.V(0, 0, 0), geom.V(0, 0, 1))
	if !ok || math.Abs(tt-8) > 1e-9 {
		t.Errorf("sphere hit = %v,%v want 8,true", tt, ok)
	}
	// From inside.
	tt, ok = s.Raycast(geom.V(0, 0, 10), geom.V(0, 0, 1))
	if !ok || math.Abs(tt-2) > 1e-9 {
		t.Errorf("inside sphere hit = %v,%v want 2,true", tt, ok)
	}
	if _, ok := s.Raycast(geom.V(5, 5, 0), geom.V(0, 0, 1)); ok {
		t.Error("miss reported hit")
	}
}

// Property: for every obstacle type, the hit point returned by Raycast
// lies on (within epsilon of) the obstacle surface: it is contained by a
// slightly inflated obstacle but not strictly inside a deflated one.
func TestRaycastHitsOnSurface(t *testing.T) {
	obstacles := []Obstacle{
		B(geom.V(1, 1, 1), geom.V(3, 4, 2)),
		Cylinder{CX: 2, CY: -3, R: 1.5, ZMin: 0, ZMax: 4},
		Sphere{C: geom.V(-3, 2, 2), R: 1.8},
	}
	rng := rand.New(rand.NewSource(13))
	for _, o := range obstacles {
		hits := 0
		for trial := 0; trial < 2000; trial++ {
			origin := geom.V(rng.Float64()*20-10, rng.Float64()*20-10, rng.Float64()*16-4)
			if o.Contains(origin) {
				continue
			}
			// Aim at a jittered point near the obstacle so most rays hit.
			target := o.Bounds().Center().Add(geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()))
			dir := target.Sub(origin).Normalize()
			if dir.Norm() == 0 {
				continue
			}
			tt, ok := o.Raycast(origin, dir)
			if !ok {
				continue
			}
			hits++
			p := origin.Add(dir.Scale(tt))
			// Walk slightly backwards: must be outside; slightly forwards:
			// must be inside.
			if o.Contains(origin.Add(dir.Scale(tt - 1e-6))) {
				t.Fatalf("%T: point just before hit already inside", o)
			}
			if !o.Contains(origin.Add(dir.Scale(tt + 1e-6))) {
				t.Fatalf("%T: point just past hit %v not inside", o, p)
			}
		}
		if hits < 50 {
			t.Errorf("%T: only %d hits in 2000 trials; test underpowered", o, hits)
		}
	}
}

func TestWorldRaycastNearest(t *testing.T) {
	w := &World{Obstacles: []Obstacle{
		B(geom.V(5, -1, -1), geom.V(6, 1, 1)),
		B(geom.V(2, -1, -1), geom.V(3, 1, 1)), // nearer
	}}
	p, ok := w.Raycast(geom.V(0, 0, 0), geom.V(1, 0, 0), 100)
	if !ok || math.Abs(p.X-2) > 1e-9 {
		t.Errorf("nearest hit = %v,%v want x=2", p, ok)
	}
	// Max range cuts off the hit.
	if _, ok := w.Raycast(geom.V(0, 0, 0), geom.V(1, 0, 0), 1.5); ok {
		t.Error("hit beyond max range reported")
	}
}

func TestWorldCollides(t *testing.T) {
	w := &World{Obstacles: []Obstacle{
		B(geom.V(0, 0, 0), geom.V(1, 1, 1)),
		Cylinder{CX: 5, CY: 5, R: 1, ZMin: 0, ZMax: 3},
	}}
	if !w.Collides(geom.Box(geom.V(0.5, 0.5, 0.5), geom.V(2, 2, 2))) {
		t.Error("box overlapping obstacle not detected")
	}
	if w.Collides(geom.Box(geom.V(2, 2, 2), geom.V(3, 3, 3))) {
		t.Error("free box reported colliding")
	}
	if !w.Collides(geom.Box(geom.V(4.5, 4.5, 0.5), geom.V(5.5, 5.5, 1.5))) {
		t.Error("box overlapping cylinder not detected")
	}
}

func TestBuildDeterministic(t *testing.T) {
	for _, e := range append(MAVBenchEnvs(), DatasetEnvs()...) {
		a := Build(e, 42)
		b := Build(e, 42)
		if len(a.Obstacles) != len(b.Obstacles) {
			t.Errorf("%v: nondeterministic obstacle count", e)
		}
		if a.Name != e.String() {
			t.Errorf("%v: name %q", e, a.Name)
		}
		// Different seed should (generically) differ for randomized envs.
		if len(a.Obstacles) == 0 {
			t.Errorf("%v: no obstacles", e)
		}
	}
}

func TestEnvironmentsSane(t *testing.T) {
	for _, e := range append(MAVBenchEnvs(), DatasetEnvs()...) {
		w := Build(e, 1)
		if !w.Bounds.Contains(w.Start) {
			t.Errorf("%v: start outside bounds", e)
		}
		if !w.Bounds.Contains(w.Goal) {
			t.Errorf("%v: goal outside bounds", e)
		}
		// Start and goal must be collision-free with a small margin.
		m := geom.V(0.3, 0.3, 0.3)
		if w.Collides(geom.BoxAt(w.Start, m)) {
			t.Errorf("%v: start pose collides", e)
		}
		if w.Collides(geom.BoxAt(w.Goal, m)) {
			t.Errorf("%v: goal pose collides", e)
		}
		// Every obstacle must be inside (or at least touch) the bounds.
		for i, o := range w.Obstacles {
			if !w.Bounds.Expand(1).Intersects(o.Bounds()) {
				t.Errorf("%v: obstacle %d outside bounds", e, i)
			}
		}
	}
}

func TestGoalDistancesMatchPaper(t *testing.T) {
	// §5.1: Openland 100 m, Farm 50 m, Room 12 m, Factory 70 m.
	want := map[Env]float64{Openland: 100, Farm: 50, Room: 12, Factory: 70}
	for e, d := range want {
		w := Build(e, 1)
		got := w.Goal.Sub(w.Start).Norm()
		if math.Abs(got-d) > 0.5 {
			t.Errorf("%v: goal distance %.1f m, want %.0f m", e, got, d)
		}
	}
}

func TestScanFromStartSeesObstacles(t *testing.T) {
	// From the start pose, a forward fan of rays must hit something in
	// every environment (otherwise the mapping workload is vacuous).
	for _, e := range append(MAVBenchEnvs(), DatasetEnvs()...) {
		w := Build(e, 1)
		hits := 0
		for i := 0; i < 100; i++ {
			yaw := (float64(i)/100 - 0.5) * math.Pi
			dir := geom.Pose{Yaw: yaw, Pitch: -0.1}.Forward()
			if _, ok := w.Raycast(w.Start, dir, 50); ok {
				hits++
			}
		}
		if hits < 10 {
			t.Errorf("%v: only %d/100 rays hit anything from start", e, hits)
		}
	}
}

func TestEnvString(t *testing.T) {
	if Openland.String() != "openland" || Env(99).String() != "unknown" {
		t.Error("Env.String wrong")
	}
}
