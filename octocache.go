// Package octocache is a Go implementation of OctoCache (ASPLOS '25): a
// software caching layer that accelerates OctoMap-style 3D occupancy
// mapping for autonomous systems.
//
// An occupancy map ingests point-cloud scans from a range sensor and
// answers "is this voxel occupied?" queries for planners. The classic
// OctoMap stores occupancy in an octree, so every voxel update costs a
// root-to-leaf memory walk. OctoCache puts a flat, bounded, bucketed
// cache in front of the octree:
//
//   - Duplicate voxel updates (the overwhelming majority in real scan
//     streams) are absorbed by cache hits instead of tree walks.
//   - Queries are served right after the fast cache insertion — they no
//     longer wait for the octree update.
//   - Evicted voxels reach the octree in Morton-code order, the provably
//     locality-optimal insertion order.
//   - Optionally, the octree update runs on a second goroutine, fully off
//     the query critical path, synchronized by a single mutex.
//
// Quick start:
//
//	m, err := octocache.New(octocache.Options{Resolution: 0.1})
//	m.Insert(sensorOrigin, points) // []octocache.Vec3 world coords
//	if m.Occupied(p) { ... }       // consistent with OctoMap
//	m.Close()                      // flush into the octree
//
// Query results are bit-identical to vanilla OctoMap's at every point in
// the stream — the repository's consistency tests enforce it.
//
// # Concurrent use
//
// By default a Map must be driven from one goroutine (ModeParallel
// manages its own background worker internally). Setting Options.Shards
// to 1 or more turns the Map into a sharded concurrent service: space is
// partitioned across that many independent OctoCache pipelines keyed by
// the top bits of each voxel's Morton code, every method becomes safe
// for concurrent use by any number of goroutines, and Insert calls from
// distinct producers contend only when their scans land on the same
// shard. Queries contend only on the shard that owns the queried voxel.
//
// Mode composes with Shards (it is no longer ignored when Shards >= 1):
// every shard runs the selected pipeline, so ModeParallel — the default
// — gives each shard its own background octree applier and SPSC buffer,
// the paper's two-thread schedule replicated per shard. Shard locking is
// read/write: queries share a shard's read lock, and a query answered
// from the shard's cache touches no lock shared with octree writers at
// all.
//
// Sharded maps answer queries bit-identical to the single-driver
// pipelines when driven sequentially; under concurrent producers each
// voxel's update stream is serialized by its owning shard, so per-voxel
// results remain exact while cross-voxel snapshots are only as atomic
// as the caller's own synchronization.
//
// The public API wraps internal/core and internal/shard; the substrate
// packages (octree, cache, Morton codes, ray tracing, simulation stack)
// live under internal/ and are exercised through the examples, the cmd/
// tools, and the benchmark harness that regenerates the paper's
// evaluation.
package octocache

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"octocache/internal/cache"
	"octocache/internal/core"
	"octocache/internal/geom"
	"octocache/internal/shard"
	"octocache/internal/voxel"
)

// Vec3 is a world-space point or direction in meters.
type Vec3 = geom.Vec3

// V constructs a Vec3.
func V(x, y, z float64) Vec3 { return geom.V(x, y, z) }

// Key addresses a single voxel: the discretized (X, Y, Z) coordinate in
// the map's key space. Obtain one with Map.CoordToKey; key-space queries
// (Map.OccupiedKey) skip the coordinate discretization on hot paths that
// already work in voxel units.
type Key = voxel.Key

// ErrClosed is returned by Insert once the map has been closed: the map
// remains queryable forever, but accepts no further observations.
var ErrClosed = shard.ErrClosed

// ErrPager marks failures of a windowed map's spill store: errors
// wrapping it surface on Insert, Recenter, and WriteTo when a spill or
// page-in hits an I/O error or on-disk corruption. The error is sticky —
// the map keeps answering queries from resident state but stops
// accepting observations. Test with errors.Is(err, ErrPager).
var ErrPager = core.ErrPager

// ErrDurable marks failures of a durable map's log or snapshot store:
// errors wrapping it surface on Insert, Checkpoint, and Recover when a
// WAL append, snapshot write, or recovery read hits an I/O error or
// on-disk corruption. Like ErrPager the error is sticky — the map keeps
// answering queries but stops accepting observations rather than
// diverging from its log. Test with errors.Is(err, ErrDurable).
var ErrDurable = core.ErrDurable

// Durable is the persistence policy for Options.Durable: every admitted
// observation batch is logged before it is applied, and consistent-cut
// snapshots bound recovery replay. A map lost to a crash comes back with
// Recover. The zero value disables durability. See Options.Durable for
// how it composes with Mode, Shards, Backend, and Window.
type Durable = core.Durable

// DurableStats reports a durable map's logging activity (Stats.Durable).
type DurableStats = core.DurableStats

// SyncPolicy selects when WAL appends reach stable storage
// (Durable.Sync).
type SyncPolicy = core.SyncPolicy

const (
	// SyncNone (the default) leaves WAL durability to the OS page cache:
	// a process crash loses nothing, a power loss may lose the most
	// recent batches. Snapshot commits always fsync.
	SyncNone = core.SyncNone
	// SyncEveryBatch fsyncs the log after every admitted batch, bounding
	// power-loss data loss to the batch in flight at the cost of one
	// device flush per scan.
	SyncEveryBatch = core.SyncEveryBatch
)

// Window is the bounded-memory policy for Options.Window: keep an
// ego-centric window of the map resident and spill everything else to
// disk, paging spilled regions back in transparently when an insert,
// query, or ray touches them. The zero value keeps the whole map in
// memory. See Options.Window for how it composes with Mode, Shards, and
// Backend.
type Window = core.Window

// WindowStats reports a windowed map's paging activity (Stats.Window).
type WindowStats = core.WindowStats

// Leaf is one entry of a leaf walk: a voxel (or pruned aggregate cube)
// with its accumulated log-odds occupancy.
type Leaf = core.Leaf

// Snapshot is a backend-neutral, canonically pruned copy of a map's
// contents — the way map contents leave a Map for serialization,
// merging, and read-only consumers. Content-equal snapshots serialize to
// identical bytes regardless of the backend or shard count that produced
// them.
type Snapshot = core.Snapshot

// ReadSnapshot deserializes a snapshot written by Map.WriteTo (or
// Snapshot.WriteTo) without constructing a live map.
func ReadSnapshot(r io.Reader) (*Snapshot, error) { return core.ReadSnapshot(r) }

// Backend selects the voxel store behind a Map.
type Backend = core.BackendKind

const (
	// BackendOctree is the OctoMap-style arena octree: adaptive pruning,
	// compaction support, the paper's target structure. The default.
	BackendOctree = core.BackendOctree
	// BackendGrid is a VDB-style grid of dense 8x8x8 bricks behind a hash
	// index: flat lookups, no pruning, no compaction. Query answers and
	// serialized bytes are bit-identical to the octree backend's.
	BackendGrid = core.BackendGrid
)

// TraceMode selects the scan-tracing algorithm behind Insert.
type TraceMode = core.TraceMode

const (
	// TraceDDA marches every sensor ray voxel-by-voxel (Amanatides–Woo),
	// matching vanilla OctoMap's per-ray update stream. The default.
	TraceDDA = core.TraceDDA
	// TraceBoundary rasterizes each scan's free space once per batch
	// from the measured surface (D-BDM style): endpoints are binned into
	// bit planes over the scan's bounding box, the region bounded by the
	// origin and the surface is marked free, and the batch is swept out
	// in scanline order. Batches come out deduplicated — each voxel at
	// most once, occupied observations winning — so map state is
	// bit-identical to TraceDDA with DedupRays enabled, at a fraction of
	// the per-ray marching and cache-admission work.
	TraceBoundary = core.TraceBoundary
)

// Mode selects the pipeline variant.
type Mode int

const (
	// ModeParallel is the two-threaded OctoCache: octree updates run on a
	// background goroutine, off the query critical path. This is the
	// paper's full design and the default (zero value).
	ModeParallel Mode = iota
	// ModeSerial is the single-threaded OctoCache.
	ModeSerial
	// ModeOctoMap is the vanilla baseline: no cache, every traced voxel
	// updates the octree directly. Useful for comparison.
	ModeOctoMap
)

// Options configures a Map. The zero value is not valid; Resolution is
// required.
type Options struct {
	// Resolution is the voxel edge length in meters (e.g. 0.05–1.0).
	Resolution float64
	// Mode selects the pipeline; the default is ModeParallel. It
	// composes with Shards: a sharded map runs the selected pipeline in
	// every shard (ModeParallel gives each shard its own background
	// octree applier — the paper's two-thread schedule, per shard).
	Mode Mode
	// Shards, when 1 or more, partitions space across that many
	// independent pipelines (rounded up to a power of two, at most
	// MaxShards) and makes the Map safe for concurrent use — see the
	// package documentation's "Concurrent use" section. A 1-shard map
	// is still concurrency-safe; 0 selects the classic single-driver
	// pipelines.
	Shards int
	// MaxRange truncates sensor rays beyond this distance in meters;
	// 0 disables truncation.
	MaxRange float64
	// CacheBuckets is the cache width w (rounded up to a power of two).
	// 0 uses the paper's UAV setting of 512K buckets. Size it at roughly
	// 3-4x the distinct voxels per scan divided by CacheTau. Sharded maps
	// divide the budget evenly across shards.
	CacheBuckets int
	// CacheTau is the per-bucket cell bound τ after eviction; 0 uses the
	// paper's default of 4.
	CacheTau int
	// DedupRays enables OctoMap-RT-style deduplicating ray tracing.
	// TraceBoundary batches are deduplicated regardless of this flag.
	DedupRays bool
	// Trace selects the scan-tracing algorithm: TraceDDA (the zero
	// value) marches per ray, TraceBoundary rasterizes free space per
	// batch. Map state is identical across modes once DedupRays is
	// enabled for TraceDDA (TraceBoundary output is inherently
	// deduplicated).
	Trace TraceMode
	// TraceWorkers fans the trace stage of each Insert across this many
	// goroutines; 0 or 1 traces on the calling goroutine. Results are
	// bit-identical at any worker count. The fan allocates per call, so
	// leave it at 0 on allocation-sensitive paths.
	TraceWorkers int
	// Backend selects the voxel store behind the map; the zero value is
	// BackendOctree. Query answers and serialized bytes are independent
	// of the choice; speed, memory shape, and compaction support are not.
	Backend Backend
	// Compaction enables automatic octree arena compaction: whenever a
	// batch leaves an arena with at least MinFreeSlots recycled slots
	// making up at least MinFreeFraction of its capacity, the arena is
	// rebuilt into a dense Morton-ordered prefix and the tail capacity
	// released. The zero value disables automatic compaction; explicit
	// Map.Compact calls always run. Sharded maps apply the policy per
	// shard. Backends without compaction support (BackendGrid) ignore
	// the policy.
	Compaction CompactionPolicy
	// Window bounds resident memory: only tiles (aligned sub-cubes of
	// Window.TileDepth) within Window.Radius of the most recent insert
	// origin stay in memory, and everything else spills to files under
	// Window.Dir, paging back in transparently on touch. Query answers
	// and serialized bytes are unchanged by the policy. Composes with
	// Mode, Shards (each shard pages its own region into its own file),
	// and Backend; the zero value keeps the whole map resident.
	Window Window
	// Durable makes the map crash-recoverable: admitted batches are
	// appended to a write-ahead log under Durable.Dir before they are
	// applied, and snapshots every Durable.SnapshotEvery batches bound
	// recovery replay. Reopen with Recover. Composes with Mode, Shards
	// (one log per shard, recovered shard-by-shard), and Backend; with
	// Window the spill file and the WAL share one log per pipeline
	// (leave Window.Dir empty to inherit Durable.Dir). The zero value
	// disables durability.
	Durable Durable
}

// CompactionPolicy sets the automatic-compaction trigger: compact when
// free slots are at least MinFreeFraction of arena capacity (0 disables)
// and number at least MinFreeSlots (a floor that keeps tiny arenas from
// compacting constantly).
type CompactionPolicy = core.CompactionPolicy

// MaxShards bounds Options.Shards.
const MaxShards = shard.MaxShards

// Map is a 3D occupancy map with an OctoMap-compatible query interface.
// With Options.Shards == 0 a Map must be driven from one goroutine
// (ModeParallel manages its own background worker internally); with
// Shards >= 1 all methods are safe for concurrent use.
type Map struct {
	// Exactly one of mapper/sharded is non-nil.
	mapper  core.Mapper
	sharded *shard.Map
	cfg     core.Config
	closed  atomic.Bool // single-driver lifecycle; sharded tracks its own
}

// New creates a Map, validating the options. Invalid options — a missing
// Resolution, negative counts, an out-of-range compaction policy —
// return an error rather than a partially constructed map.
func New(opts Options) (*Map, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	return newMap(opts, cfg)
}

// MustNew is New for statically known-valid options; it panics on error.
// Prefer New anywhere the options come from configuration or user input.
func MustNew(opts Options) *Map {
	m, err := New(opts)
	if err != nil {
		panic(err)
	}
	return m
}

// Open reads a map serialized with WriteTo and makes it live again: the
// loaded contents are replayed into the pipeline's (or, sharded, each
// owning shard's) backing store — whichever backend the options select,
// regardless of which backend wrote the stream. The stream's parameters
// (resolution, tree depth, sensor model) are authoritative;
// Options.Resolution is ignored. The remaining options — Mode, Shards,
// Backend, cache shape — configure the reopened map exactly as they
// would a new one.
func Open(r io.Reader, opts Options) (*Map, error) {
	src, err := core.ReadSnapshot(r)
	if err != nil {
		return nil, err
	}
	params := src.Params()
	opts.Resolution = params.Resolution
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	cfg.Octree = params
	m, err := newMap(opts, cfg)
	if err != nil {
		return nil, err
	}
	if m.sharded != nil {
		if err := m.sharded.LoadSnapshot(src); err != nil {
			return nil, err
		}
	} else {
		loader, ok := m.mapper.(interface{ LoadSnapshot(*core.Snapshot) error })
		if !ok {
			return nil, fmt.Errorf("octocache: pipeline %s does not support loading", m.mapper.Name())
		}
		if err := loader.LoadSnapshot(src); err != nil {
			return nil, err
		}
	}
	if opts.Durable.Enabled() {
		// Loaded leaves bypass the WAL, so checkpoint now: without a
		// snapshot covering the load, a crash before the first explicit
		// Checkpoint would recover an empty map.
		if err := m.Checkpoint(); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Recover reopens the durable map stored under dir: each pipeline loads
// its last consistent-cut snapshot and replays the write-ahead log's
// surviving suffix, restoring exactly the admitted batches that reached
// disk — bit-identical queries and serialized bytes to a map that
// ingested only that surviving prefix. The options must describe the
// map as it was created (same Resolution; Shards matching the on-disk
// layout, which Recover verifies before opening any log); Durable.Dir
// may be left empty to inherit dir. A directory with no durable map
// yields a fresh empty map, so services can call Recover
// unconditionally at startup. Stats.Durable.ReplayedBatches reports how
// much log was replayed.
func Recover(dir string, opts Options) (*Map, error) {
	if dir == "" {
		return nil, fmt.Errorf("octocache: Recover requires a directory")
	}
	switch opts.Durable.Dir {
	case "", dir:
		opts.Durable.Dir = dir
	default:
		return nil, fmt.Errorf("octocache: Recover dir %q conflicts with Options.Durable.Dir %q", dir, opts.Durable.Dir)
	}
	single, shardLogs, err := core.ScanDurableDir(dir)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDurable, err)
	}
	if single && opts.Shards >= 1 {
		return nil, fmt.Errorf("octocache: %s holds a single-driver map; Recover with Shards == 0", dir)
	}
	if shardLogs > 0 {
		if opts.Shards < 1 {
			return nil, fmt.Errorf("octocache: %s holds a %d-shard map; Recover with Shards >= 1", dir, shardLogs)
		}
		want := 1
		for want < opts.Shards {
			want <<= 1
		}
		if want != shardLogs {
			return nil, fmt.Errorf("octocache: %s holds a %d-shard map, options ask for %d shards", dir, shardLogs, want)
		}
	}
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	cfg.DurableRecover = true
	return newMap(opts, cfg)
}

// ScanDurableDir reports which durable-map logs dir holds: whether a
// single-driver log exists, and how many per-shard logs were found. A
// missing or empty directory reports none. It is the layout probe
// Recover itself uses, exported so services and tools can tell "fresh
// directory" from "existing map" before (or without) opening one —
// never by globbing log files themselves.
func ScanDurableDir(dir string) (single bool, shards int, err error) {
	return core.ScanDurableDir(dir)
}

// buildConfig validates the options and derives the pipeline config.
func buildConfig(opts Options) (core.Config, error) {
	if opts.CacheBuckets < 0 {
		return core.Config{}, fmt.Errorf("octocache: CacheBuckets must be >= 0, got %d", opts.CacheBuckets)
	}
	if opts.CacheTau < 0 {
		return core.Config{}, fmt.Errorf("octocache: CacheTau must be >= 0, got %d", opts.CacheTau)
	}
	if opts.Shards < 0 {
		return core.Config{}, fmt.Errorf("octocache: Shards must be >= 0, got %d", opts.Shards)
	}
	if err := opts.Compaction.Validate(); err != nil {
		return core.Config{}, err
	}
	if opts.TraceWorkers < 0 {
		return core.Config{}, fmt.Errorf("octocache: TraceWorkers must be >= 0, got %d", opts.TraceWorkers)
	}
	if opts.Trace != TraceDDA && opts.Trace != TraceBoundary {
		return core.Config{}, fmt.Errorf("octocache: unknown trace mode %v", opts.Trace)
	}
	cfg := core.DefaultConfig(opts.Resolution)
	cfg.Backend = opts.Backend
	cfg.MaxRange = opts.MaxRange
	cfg.RT = opts.DedupRays
	cfg.Trace = opts.Trace
	cfg.TraceWorkers = opts.TraceWorkers
	cfg.Compaction = opts.Compaction
	if opts.CacheBuckets > 0 {
		cfg.CacheBuckets = opts.CacheBuckets
	}
	if opts.CacheTau > 0 {
		cfg.CacheTau = opts.CacheTau
	}
	cfg.Window = opts.Window
	cfg.Durable = opts.Durable
	if err := cfg.Durable.Validate(); err != nil {
		return core.Config{}, err
	}
	win := cfg.Window
	if win.Enabled() && cfg.Durable.Enabled() && win.Dir == "" {
		win.Dir = cfg.Durable.Dir // the spill file and WAL share one log
	}
	if err := win.Validate(cfg.Octree.Depth); err != nil {
		return core.Config{}, err
	}
	return cfg, nil
}

// newMap assembles the pipeline (or sharded service) the options select.
func newMap(opts Options, cfg core.Config) (*Map, error) {
	if opts.Shards >= 1 {
		pl := shard.PipelineAsync
		switch opts.Mode {
		case ModeSerial:
			pl = shard.PipelineSerial
		case ModeOctoMap:
			pl = shard.PipelineDirect
		}
		sm, err := shard.New(shard.Config{Core: cfg, Shards: opts.Shards, Pipeline: pl})
		if err != nil {
			return nil, err
		}
		return &Map{sharded: sm, cfg: cfg}, nil
	}

	kind := core.KindParallel
	switch opts.Mode {
	case ModeOctoMap:
		kind = core.KindOctoMap
	case ModeSerial:
		kind = core.KindSerial
	}
	mapper, err := core.New(kind, cfg)
	if err != nil {
		return nil, err
	}
	return &Map{mapper: mapper, cfg: cfg}, nil
}

// Insert integrates one sensor scan: points (world coordinates) observed
// from origin. Each point contributes an occupied observation at its
// voxel and free observations along the ray from origin. It returns
// ErrClosed after Close; sharded maps accept concurrent Insert calls
// from any number of goroutines.
func (m *Map) Insert(origin Vec3, points []Vec3) error {
	if m.sharded != nil {
		return m.sharded.Insert(origin, points)
	}
	if m.closed.Load() {
		return ErrClosed
	}
	return m.mapper.Insert(origin, points)
}

// Occupied reports whether the voxel containing p is known and occupied.
func (m *Map) Occupied(p Vec3) bool {
	if m.sharded != nil {
		return m.sharded.Occupied(p)
	}
	return m.mapper.Occupied(p)
}

// Occupancy returns the voxel's accumulated log-odds occupancy; known is
// false for never-observed voxels. Use Probability to convert.
func (m *Map) Occupancy(p Vec3) (logOdds float32, known bool) {
	if m.sharded != nil {
		return m.sharded.Occupancy(p)
	}
	return m.mapper.Occupancy(p)
}

// OccupiedKey is the key-space variant of Occupied, for planners that
// discretize once and probe many voxels.
func (m *Map) OccupiedKey(k Key) bool {
	if m.sharded != nil {
		return m.sharded.OccupiedKey(k)
	}
	return m.mapper.OccupiedKey(k)
}

// OccupancyKey is the key-space variant of Occupancy, for consumers
// that discretize once and probe many voxels.
func (m *Map) OccupancyKey(k Key) (logOdds float32, known bool) {
	if m.sharded != nil {
		return m.sharded.OccupancyKey(k)
	}
	if kq, ok := m.mapper.(interface {
		OccupancyKey(voxel.Key) (float32, bool)
	}); ok {
		return kq.OccupancyKey(k)
	}
	return m.mapper.Occupancy(m.KeyToCoord(k))
}

// CellState is one voxel's occupancy answer in a batched query: the
// accumulated log-odds and whether the voxel has ever been observed.
type CellState struct {
	// LogOdds is the accumulated occupancy; meaningful only when Known.
	LogOdds float32 `json:"log_odds"`
	// Known is false for never-observed voxels.
	Known bool `json:"known"`
}

// OccupancyBatch answers one occupancy query per key, appending to dst
// (pass nil to allocate) and returning the extended slice with
// dst[i] answering keys[i]. It is the amortized form of OccupancyKey
// for batch consumers — the network query protocol, bulk exporters,
// planners probing a corridor — and, like the point queries, is safe
// for concurrent use on sharded maps.
func (m *Map) OccupancyBatch(keys []Key, dst []CellState) []CellState {
	for _, k := range keys {
		l, known := m.OccupancyKey(k)
		dst = append(dst, CellState{LogOdds: l, Known: known})
	}
	return dst
}

// CoordToKey discretizes a world coordinate into the map's key space; ok
// is false when p lies outside the mapped volume.
func (m *Map) CoordToKey(p Vec3) (k Key, ok bool) {
	return voxel.CoordToKey(p, m.cfg.Octree.Resolution, m.cfg.Octree.Depth)
}

// KeyToCoord returns the center of the voxel addressed by k.
func (m *Map) KeyToCoord(k Key) Vec3 {
	return voxel.KeyToCoord(k, m.cfg.Octree.Resolution, m.cfg.Octree.Depth)
}

// CastRay walks from origin along dir until it enters a known-occupied
// voxel or exceeds maxRange (0 means the map diameter), returning the
// hit voxel's center. Unknown space is traversed when ignoreUnknown is
// true and terminates the ray otherwise. Results reflect the freshest
// combined cache+octree state, like point queries.
func (m *Map) CastRay(origin, dir Vec3, maxRange float64, ignoreUnknown bool) (hit Vec3, ok bool) {
	if m.sharded != nil {
		return m.sharded.CastRay(origin, dir, maxRange, ignoreUnknown)
	}
	return m.mapper.CastRay(origin, dir, maxRange, ignoreUnknown)
}

// Probability converts a log-odds occupancy to a probability in (0, 1).
func Probability(logOdds float32) float64 { return voxel.Probability(logOdds) }

// Resolution returns the voxel edge length in meters.
func (m *Map) Resolution() float64 { return m.cfg.Octree.Resolution }

// Params is the resolved occupancy model a map runs under: resolution,
// tree depth, the sensor's log-odds deltas, the clamping bounds, and
// the occupancy threshold.
type Params = voxel.Params

// Model returns the map's effective occupancy model — the parameters a
// snapshot of this map is built under. Unlike Snapshot().Params() it
// does not materialize anything.
func (m *Map) Model() Params { return m.cfg.Octree }

// Backend reports which voxel store backs the map.
func (m *Map) Backend() Backend { return m.cfg.Backend }

// Shards returns the effective shard count: 1 for single-driver maps,
// the rounded-up power of two otherwise.
func (m *Map) Shards() int {
	if m.sharded != nil {
		return m.sharded.NumShards()
	}
	return 1
}

// Close flushes all cached voxels into the octree and stops background
// work. The Map remains queryable; further Insert calls return
// ErrClosed. Close is idempotent and never fails; it returns an error
// only to satisfy io.Closer-style call sites.
func (m *Map) Close() error {
	if m.sharded != nil {
		return m.sharded.Close()
	}
	if !m.closed.Swap(true) {
		m.mapper.Close()
	}
	return nil
}

// WriteTo serializes the map, including updates still resident in the
// voxel cache; sharded maps are merged into one canonical snapshot
// (shards own disjoint subtrees, so the merge is lossless). Bytes are
// identical across backends and shard counts for content-equal maps,
// so a stream written by any configuration Opens under any other.
// Serializing after Close is cheapest (the flushed octree streams in
// place); a live map goes through the snapshot rebuild.
func (m *Map) WriteTo(w io.Writer) (int64, error) {
	if m.sharded != nil {
		return m.sharded.WriteTo(w)
	}
	return m.mapper.WriteTo(w)
}

// Snapshot captures the map's current contents as a canonical,
// backend-neutral snapshot — for serialization, diffing, and read-only
// consumers. It answers queries exactly like the live map at the
// moment of capture: updates still resident in the voxel cache are
// folded in. Single-driver maps treat Snapshot as a mutator call, like
// Insert; sharded maps may call it from any goroutine.
func (m *Map) Snapshot() *Snapshot {
	if m.sharded != nil {
		return m.sharded.Snapshot()
	}
	return m.mapper.Snapshot()
}

// WalkLeaves visits every leaf of the map's canonical snapshot in
// ascending Morton order. It carries Snapshot's caveats.
func (m *Map) WalkLeaves(fn func(Leaf) bool) { m.Snapshot().Walk(fn) }

// Recenter moves a windowed map's resident window to the tile containing
// origin and spills what fell outside — the explicit form of the
// recentering every Insert performs, for consumers that query far from
// where they insert (or insert rarely). A no-op on unwindowed maps.
// Sharded maps recenter every shard. Like Insert it is a mutator call on
// single-driver maps; it returns ErrClosed after Close and any sticky
// pager error (see ErrPager).
func (m *Map) Recenter(origin Vec3) error {
	if m.sharded != nil {
		return m.sharded.Recenter(origin)
	}
	if m.closed.Load() {
		return ErrClosed
	}
	if w, ok := m.mapper.(core.Windower); ok {
		return w.Recenter(origin)
	}
	return nil
}

// Checkpoint takes a consistent-cut snapshot of a durable map now,
// retiring the write-ahead log it covers — for services that want a
// recovery bound tighter than Durable.SnapshotEvery (or that disabled
// the cadence). Sharded maps checkpoint one shard at a time under that
// shard's write lock. A no-op on non-durable maps; single-driver maps
// treat it as a mutator call, like Insert. Returns ErrClosed after
// Close and any sticky durable error (see ErrDurable).
func (m *Map) Checkpoint() error {
	if m.sharded != nil {
		return m.sharded.Checkpoint()
	}
	if m.closed.Load() {
		return ErrClosed
	}
	if d, ok := m.mapper.(core.Durabler); ok {
		return d.Checkpoint()
	}
	return nil
}

// Compact rebuilds the octree arenas into dense Morton-ordered prefixes
// and releases the fragmented tail capacity, without changing any query
// answer or serialized byte. Sharded maps compact one shard at a time
// under that shard's write lock, so queries on other shards keep flowing;
// single-driver maps treat Compact as a mutator call, like Insert.
// Automatic compaction (Options.Compaction) runs the same rebuild behind
// each batch. Returns ErrClosed after Close.
func (m *Map) Compact() error {
	if m.sharded != nil {
		return m.sharded.Compact()
	}
	if m.closed.Load() {
		return ErrClosed
	}
	return m.mapper.Compact()
}

// Stats reports map behaviour counters, grouped by subsystem. The
// struct marshals to a stable JSON encoding (the json tags below are
// the canonical field names the server's /metrics endpoint serves and
// dashboards may rely on; a shape-locking test pins them).
type Stats struct {
	// Cache summarizes the voxel cache in front of the octree.
	Cache CacheStats `json:"cache"`
	// Pipeline summarizes ingest volume.
	Pipeline PipelineStats `json:"pipeline"`
	// Arena summarizes octree arena occupancy (summed over shards).
	Arena ArenaStats `json:"arena"`
	// Compaction summarizes arena-compaction activity (summed over
	// shards; LastDuration is the worst shard's most recent pause).
	Compaction CompactionStats `json:"compaction"`
	// Shards is the effective shard count (1 for single-driver maps).
	Shards int `json:"shards"`
	// Backend identifies the voxel store behind the map. It marshals as
	// its flag spelling ("octree", "grid").
	Backend Backend `json:"backend"`
	// Window summarizes the bounded-memory window's paging activity
	// (summed over shards); Window.Enabled is false for unwindowed maps.
	Window WindowStats `json:"window"`
	// Durable summarizes the write-ahead log and snapshot activity
	// (counters summed over shards, sequences the minimum across them);
	// Durable.Enabled is false for non-durable maps.
	Durable DurableStats `json:"durable"`
}

// CacheStats summarizes cache behaviour.
type CacheStats struct {
	// HitRate is the fraction of voxel updates absorbed by the cache.
	HitRate float64 `json:"hit_rate"`
	// Hits counts voxel updates absorbed by an existing cache cell.
	Hits int64 `json:"hits"`
	// Inserts counts all voxel updates offered to the cache.
	Inserts int64 `json:"inserts"`
	// Evicted counts cells evicted from the cache into the octree.
	Evicted int64 `json:"evicted"`
}

// PipelineStats summarizes ingest volume.
type PipelineStats struct {
	// Batches counts inserted point clouds.
	Batches int64 `json:"batches"`
	// VoxelsTraced counts voxel observations produced by ray tracing.
	VoxelsTraced int64 `json:"voxels_traced"`
	// VoxelsToOctree counts voxel writes that reached the octree.
	VoxelsToOctree int64 `json:"voxels_to_octree"`
}

// ArenaStats describes octree arena occupancy: the octree stores nodes
// in contiguous handle-addressed slot arenas, and pruning recycles slots
// through free lists. A persistently large free share signals heavy
// pruning churn — the fragmentation Compact reclaims.
type ArenaStats struct {
	// LiveNodes is the octree's current node count.
	LiveNodes int `json:"live_nodes"`
	// FreeSlots counts recycled arena slots awaiting reuse.
	FreeSlots int `json:"free_slots"`
	// Capacity is the arena's total node slots: LiveNodes + FreeSlots.
	Capacity int `json:"capacity"`
	// Bytes estimates the octree's heap footprint.
	Bytes int64 `json:"bytes"`
}

// Occupancy is the live fraction of the arena, 1 for a dense (or empty)
// arena.
func (a ArenaStats) Occupancy() float64 {
	if a.Capacity == 0 {
		return 1
	}
	return float64(a.LiveNodes) / float64(a.Capacity)
}

// Fragmentation is the free fraction of the arena — the value a
// CompactionPolicy's MinFreeFraction is compared against.
func (a ArenaStats) Fragmentation() float64 {
	if a.Capacity == 0 {
		return 0
	}
	return float64(a.FreeSlots) / float64(a.Capacity)
}

// CompactionStats summarizes arena-compaction activity.
type CompactionStats struct {
	// Runs counts completed compactions, automatic and explicit.
	Runs int64 `json:"runs"`
	// SlotsReclaimed totals the arena slots released across all runs.
	SlotsReclaimed int64 `json:"slots_reclaimed"`
	// LastDuration is the wall time of the most recent run — the pause
	// producers on the compacted shard experienced. It marshals as
	// nanoseconds.
	LastDuration time.Duration `json:"last_duration_ns"`
}

func publicArena(a core.ArenaStats) ArenaStats {
	return ArenaStats{LiveNodes: a.LiveNodes, FreeSlots: a.FreeSlots, Capacity: a.Capacity, Bytes: a.Bytes}
}

func publicCompaction(c core.CompactionStats) CompactionStats {
	return CompactionStats{Runs: c.Runs, SlotsReclaimed: c.SlotsReclaimed, LastDuration: c.LastDuration}
}

func publicCache(c cache.Stats) CacheStats {
	return CacheStats{HitRate: c.HitRate(), Hits: c.Hits, Inserts: c.Inserts, Evicted: c.Evicted}
}

// Stats returns a snapshot of behaviour counters. With ModeParallel,
// call it between insertions or after Close; sharded maps may call it
// at any time from any goroutine.
func (m *Map) Stats() Stats {
	if m.sharded != nil {
		tm := m.sharded.Timings()
		return Stats{
			Cache: publicCache(m.sharded.CacheStats()),
			Pipeline: PipelineStats{
				Batches:        tm.Batches,
				VoxelsTraced:   tm.VoxelsTraced,
				VoxelsToOctree: tm.VoxelsToOctree,
			},
			Arena:      publicArena(m.sharded.ArenaStats()),
			Compaction: publicCompaction(m.sharded.CompactionStats()),
			Shards:     m.sharded.NumShards(),
			Backend:    m.sharded.Backend(),
			Window:     m.sharded.WindowStats(),
			Durable:    m.sharded.DurableStats(),
		}
	}
	tm := m.mapper.Timings()
	var ws WindowStats
	if w, ok := m.mapper.(core.Windower); ok {
		ws = w.WindowStats()
	}
	var ds DurableStats
	if d, ok := m.mapper.(core.Durabler); ok {
		ds = d.DurableStats()
	}
	return Stats{
		Cache: publicCache(m.mapper.CacheStats()),
		Pipeline: PipelineStats{
			Batches:        tm.Batches,
			VoxelsTraced:   tm.VoxelsTraced,
			VoxelsToOctree: tm.VoxelsToOctree,
		},
		// ArenaStats drains the background applier before reading.
		Arena:      publicArena(m.mapper.ArenaStats()),
		Compaction: publicCompaction(m.mapper.CompactionStats()),
		Shards:     1,
		Backend:    m.mapper.Backend(),
		Window:     ws,
		Durable:    ds,
	}
}

// ShardStat describes one shard of a sharded map. Like Stats it
// marshals to a stable JSON encoding.
type ShardStat struct {
	// Shard is the shard index (its Morton prefix).
	Shard int `json:"shard"`
	// Backend identifies the voxel store behind the shard's pipeline.
	Backend Backend `json:"backend"`
	// Arena is the shard store's arena snapshot.
	Arena ArenaStats `json:"arena"`
	// QueueDepth is the number of cells parked in the shard's cache
	// awaiting eviction or the Close flush.
	QueueDepth int `json:"queue_depth"`
	// Cache summarizes the shard's cache behaviour.
	Cache CacheStats `json:"cache"`
	// Compaction summarizes the shard's arena-compaction activity.
	Compaction CompactionStats `json:"compaction"`
	// Window summarizes the shard's paging activity (zero when the map
	// is unwindowed).
	Window WindowStats `json:"window"`
	// Durable summarizes the shard's WAL and snapshot activity (zero
	// when the map is not durable).
	Durable DurableStats `json:"durable"`
}

// ShardStats snapshots every shard of a sharded map; it returns nil for
// single-driver maps.
func (m *Map) ShardStats() []ShardStat {
	if m.sharded == nil {
		return nil
	}
	raw := m.sharded.ShardStats()
	out := make([]ShardStat, len(raw))
	for i, s := range raw {
		out[i] = ShardStat{
			Shard:      s.Shard,
			Backend:    s.Backend,
			Arena:      publicArena(s.Arena),
			QueueDepth: s.QueueDepth,
			Cache:      publicCache(s.Cache),
			Compaction: publicCompaction(s.Compaction),
			Window:     s.Window,
			Durable:    s.Durable,
		}
	}
	return out
}
