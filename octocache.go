// Package octocache is a Go implementation of OctoCache (ASPLOS '25): a
// software caching layer that accelerates OctoMap-style 3D occupancy
// mapping for autonomous systems.
//
// An occupancy map ingests point-cloud scans from a range sensor and
// answers "is this voxel occupied?" queries for planners. The classic
// OctoMap stores occupancy in an octree, so every voxel update costs a
// root-to-leaf memory walk. OctoCache puts a flat, bounded, bucketed
// cache in front of the octree:
//
//   - Duplicate voxel updates (the overwhelming majority in real scan
//     streams) are absorbed by cache hits instead of tree walks.
//   - Queries are served right after the fast cache insertion — they no
//     longer wait for the octree update.
//   - Evicted voxels reach the octree in Morton-code order, the provably
//     locality-optimal insertion order.
//   - Optionally, the octree update runs on a second goroutine, fully off
//     the query critical path, synchronized by a single mutex.
//
// Quick start:
//
//	m := octocache.New(octocache.Options{Resolution: 0.1})
//	m.InsertPointCloud(sensorOrigin, points) // []geom.Vec3 world coords
//	if m.Occupied(p) { ... }                 // consistent with OctoMap
//	m.Finalize()                             // flush into the octree
//
// Query results are bit-identical to vanilla OctoMap's at every point in
// the stream — the repository's consistency tests enforce it.
//
// The public API wraps internal/core; the substrate packages (octree,
// cache, Morton codes, ray tracing, simulation stack) live under
// internal/ and are exercised through the examples, the cmd/ tools, and
// the benchmark harness that regenerates the paper's evaluation.
package octocache

import (
	"io"

	"octocache/internal/core"
	"octocache/internal/geom"
	"octocache/internal/octree"
)

// Vec3 is a world-space point or direction in meters.
type Vec3 = geom.Vec3

// V constructs a Vec3.
func V(x, y, z float64) Vec3 { return geom.V(x, y, z) }

// Mode selects the pipeline variant.
type Mode int

const (
	// ModeOctoMap is the vanilla baseline: no cache, every traced voxel
	// updates the octree directly. Useful for comparison.
	ModeOctoMap Mode = iota
	// ModeSerial is the single-threaded OctoCache.
	ModeSerial
	// ModeParallel is the two-threaded OctoCache: octree updates run on a
	// background goroutine, off the query critical path. This is the
	// paper's full design and the default.
	ModeParallel
)

// Options configures a Map. The zero value is not valid; Resolution is
// required.
type Options struct {
	// Resolution is the voxel edge length in meters (e.g. 0.05–1.0).
	Resolution float64
	// Mode selects the pipeline; the default is ModeParallel.
	Mode Mode
	// MaxRange truncates sensor rays beyond this distance in meters;
	// 0 disables truncation.
	MaxRange float64
	// CacheBuckets is the cache width w (rounded up to a power of two).
	// 0 uses the paper's UAV setting of 512K buckets. Size it at roughly
	// 3-4x the distinct voxels per scan divided by CacheTau.
	CacheBuckets int
	// CacheTau is the per-bucket cell bound τ after eviction; 0 uses the
	// paper's default of 4.
	CacheTau int
	// DedupRays enables OctoMap-RT-style deduplicating ray tracing.
	DedupRays bool
	// Arena allocates octree nodes from chunked slabs with
	// prune-recycling instead of the general heap, reducing GC pressure
	// on long-running maps.
	Arena bool
}

// Map is a 3D occupancy map with an OctoMap-compatible query interface.
// A Map must be driven from one goroutine; ModeParallel manages its own
// background worker internally.
type Map struct {
	mapper core.Mapper
	cfg    core.Config
}

// New creates a Map. It panics on invalid options; use NewChecked to
// receive the error instead.
func New(opts Options) *Map {
	m, err := NewChecked(opts)
	if err != nil {
		panic(err)
	}
	return m
}

// NewChecked creates a Map, validating the options.
func NewChecked(opts Options) (*Map, error) {
	cfg := core.DefaultConfig(opts.Resolution)
	cfg.MaxRange = opts.MaxRange
	cfg.RT = opts.DedupRays
	cfg.Arena = opts.Arena
	if opts.CacheBuckets > 0 {
		cfg.CacheBuckets = opts.CacheBuckets
	}
	if opts.CacheTau > 0 {
		cfg.CacheTau = opts.CacheTau
	}
	kind := core.KindParallel
	switch opts.Mode {
	case ModeOctoMap:
		kind = core.KindOctoMap
	case ModeSerial:
		kind = core.KindSerial
	}
	mapper, err := core.New(kind, cfg)
	if err != nil {
		return nil, err
	}
	return &Map{mapper: mapper, cfg: cfg}, nil
}

// InsertPointCloud integrates one sensor scan: points (world coordinates)
// observed from origin. Each point contributes an occupied observation at
// its voxel and free observations along the ray from origin.
func (m *Map) InsertPointCloud(origin Vec3, points []Vec3) {
	m.mapper.InsertPointCloud(origin, points)
}

// Occupied reports whether the voxel containing p is known and occupied.
func (m *Map) Occupied(p Vec3) bool { return m.mapper.Occupied(p) }

// Occupancy returns the voxel's accumulated log-odds occupancy; known is
// false for never-observed voxels. Use Probability to convert.
func (m *Map) Occupancy(p Vec3) (logOdds float32, known bool) {
	return m.mapper.Occupancy(p)
}

// Probability converts a log-odds occupancy to a probability in (0, 1).
func Probability(logOdds float32) float64 { return octree.Probability(logOdds) }

// Resolution returns the voxel edge length in meters.
func (m *Map) Resolution() float64 { return m.cfg.Octree.Resolution }

// Finalize flushes all cached voxels into the octree and stops background
// work. The Map remains queryable; further insertions panic.
func (m *Map) Finalize() { m.mapper.Finalize() }

// WriteTo serializes the finished octree. Call Finalize first so the
// octree holds the complete map.
func (m *Map) WriteTo(w io.Writer) (int64, error) { return m.mapper.Tree().WriteTo(w) }

// Stats reports cache and pipeline behaviour counters.
type Stats struct {
	// CacheHitRate is the fraction of voxel updates absorbed by the cache.
	CacheHitRate float64
	// VoxelsTraced counts voxel observations produced by ray tracing.
	VoxelsTraced int64
	// VoxelsToOctree counts voxel writes that reached the octree.
	VoxelsToOctree int64
	// Batches counts inserted point clouds.
	Batches int64
	// TreeNodes is the octree's current node count.
	TreeNodes int
	// TreeBytes estimates the octree's heap footprint.
	TreeBytes int64
}

// Stats returns a snapshot of behaviour counters. With ModeParallel, call
// it between insertions or after Finalize.
func (m *Map) Stats() Stats {
	tm := m.mapper.Timings()
	cs := m.mapper.CacheStats()
	tree := m.mapper.Tree()
	return Stats{
		CacheHitRate:   cs.HitRate(),
		VoxelsTraced:   tm.VoxelsTraced,
		VoxelsToOctree: tm.VoxelsToOctree,
		Batches:        tm.Batches,
		TreeNodes:      tree.NumNodes(),
		TreeBytes:      tree.MemoryBytes(),
	}
}
